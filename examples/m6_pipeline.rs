//! The paper's flagship workload: M6-10B with hybrid pipeline + data
//! parallelism (§5.1, Example 7).
//!
//! Run with: `cargo run --example m6_pipeline`
//!
//! Four annotation "lines" scale the local M6 model: `cluster` → `replica`
//! → `pipeline(num_micro_batch=35)` over auto-partitioned stages, with
//! recomputation and Adafactor exactly as in the paper.

use whale::{models, strategies, Optimizer, Session, TrainingConfig};
use whale_sim::ascii_timeline;

fn main() -> whale::Result<()> {
    let nodes = 4;
    let session = Session::on_cluster(&format!("{nodes}x(8xV100)"))?
        .training(TrainingConfig {
            optimizer: Optimizer::Adafactor,
            amp: false,
            recompute: true,
            ..TrainingConfig::default()
        })
        .outer_dp(nodes);

    let per_node_batch = 70;
    let global_batch = per_node_batch * nodes;
    println!("building M6-10B ({} encoder + decoder layers)...", 48);
    let graph = models::m6_10b(global_batch).expect("build M6-10B");
    println!(
        "  {:.1}B parameters, {:.1} TFLOPs forward per sample",
        graph.total_params() as f64 / 1e9,
        graph.total_forward_flops() / global_batch as f64 / 1e12
    );

    // Example 7: replica { pipeline(num_micro_batch=35) { model } }.
    let ir = strategies::pipeline_with_dp(graph, global_batch, 35)?;
    let plan = session.plan(&ir)?;
    session.check_memory(&plan)?;
    println!(
        "\nplanned: {} pipeline stages x {} plan replicas, {} micro batches",
        plan.stages.len(),
        nodes,
        plan.num_micro_batches
    );

    let out = session.step_plan(&plan)?;
    println!("  step time:  {:.2} s", out.stats.step_time);
    println!("  throughput: {:.2} samples/s", out.stats.throughput);
    println!("  bubble:     {:.1} %", out.stats.bubble_ratio() * 100.0);

    // A small pipeline rendered as ASCII (Fig. 12 style) for intuition; the
    // 35-micro-batch timeline is too wide to print, so redo with 6.
    let tiny = strategies::pipeline_with_dp(models::bert_base(64, 64).expect("build bert"), 64, 6)?;
    let tiny_session = Session::on_cluster("1x(4xV100)")?.outer_dp(1);
    let tiny_out = tiny_session.step(&tiny)?;
    println!("\nbackward-first schedule, 4 stages x 6 micro batches (F=fwd, B=bwd):");
    print!("{}", ascii_timeline(&tiny_out, 96));
    Ok(())
}
