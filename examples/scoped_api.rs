//! The paper-faithful scoped annotation API (§3.3 Examples 1-5).
//!
//! Run with: `cargo run --example scoped_api`
//!
//! Builds a small two-part model inside closure scopes that mirror the
//! paper's Python context managers, then plans and simulates it.

use whale::{Primitive, ScopedBuilder, Session};
use whale_graph::OpId;

fn main() -> whale::Result<()> {
    // Example 5: replica { replica(features), split(classifier) }.
    let mut sb = ScopedBuilder::new("image_classifier", 64);
    sb.replica(|sb| {
        sb.replica(|sb| {
            sb.ops(|b| {
                let x = b.input("images", &[64, 2048])?;
                let h = b.dense("features/fc1", x, 64, 2048, 1024)?;
                b.dense("features/fc2", h, 64, 1024, 2048)
            })
        })?;
        sb.split(|sb| {
            sb.ops(|b| {
                let features = OpId(2);
                let logits = b.dense("classifier/fc", features, 64, 2048, 100_000)?;
                b.softmax("classifier/softmax", logits)
            })
        })
    })?;
    let ir = sb.finish()?;

    println!("scoped IR:");
    println!("  outer replica: {}", ir.outer_replica);
    for tg in &ir.task_graphs {
        println!(
            "  TaskGraph {}: {} ops, strategies {:?}",
            tg.index,
            tg.ops.len(),
            tg.strategies
        );
    }
    assert!(ir.outer_replica);
    assert!(ir
        .task_graphs
        .iter()
        .any(|tg| tg.innermost() == Primitive::Split));

    let session = Session::on_cluster("2x(4xV100)")?;
    let out = session.step(&ir)?;
    println!(
        "\nsimulated on 2x(4xV100): step {:.1} ms, throughput {:.0} samples/s",
        out.stats.step_time * 1e3,
        out.stats.throughput
    );
    Ok(())
}
