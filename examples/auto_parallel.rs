//! Automatic parallelism (paper Example 6: `wh.auto_parallel()`).
//!
//! Run with: `cargo run --example auto_parallel`
//!
//! Lets Whale explore strategies for two very different models: BERT-Base
//! (fits everywhere → DP should win) and M6-10B (cannot fit a replica →
//! pipelines are mandatory). Prints every evaluated candidate with its
//! verdict.

use whale::{auto_parallel, models, Session};

fn explore(
    title: &str,
    cluster: &str,
    batch: usize,
    build: impl Fn() -> whale::Result<whale::Graph> + Sync,
) -> whale::Result<()> {
    println!("== {title} on {cluster}, global batch {batch}");
    let session = Session::on_cluster(cluster)?;
    let report = auto_parallel(&session, batch, build)?;
    for c in &report.candidates {
        match (&c.stats, &c.rejected) {
            (Some(s), _) => println!(
                "  {:<24} step {:>8.3} s  throughput {:>8.1}/s",
                c.name, s.step_time, s.throughput
            ),
            (None, Some(why)) => println!("  {:<24} rejected: {why}", c.name),
            _ => {}
        }
    }
    println!("  → chose {}\n", report.chosen);
    Ok(())
}

fn main() -> whale::Result<()> {
    explore("BERT-Base", "2x(4xV100)", 256, || {
        Ok(models::bert_base(256, 128).expect("build"))
    })?;
    explore("M6-10B", "2x(8xV100)", 64, || {
        Ok(models::m6_10b(64).expect("build"))
    })?;
    Ok(())
}
