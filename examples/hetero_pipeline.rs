//! Heterogeneous pipeline training (Fig. 18's scenario), end to end.
//!
//! Run with: `cargo run --example hetero_pipeline`
//!
//! Partitions BERT-Large into 4 stages over mixed P100/V100 GPUs and shows
//! what Algorithm 3 changes: the FLOP share of each stage, the per-stage
//! memory, and the resulting step time against the FLOP-even baseline.

use whale::{models, strategies, Session};
use whale_graph::TrainingConfig;
use whale_hardware::Cluster;
use whale_planner::{pipeline_partition, stage_flops};

fn main() -> whale::Result<()> {
    let cluster = Cluster::parse("2x(2xP100,2xV100)")?;
    let graph = models::bert_large(512, 128).expect("build BERT-Large");

    // Inspect the stage cuts directly (Algorithm 3).
    let stage_gpus: Vec<_> = cluster.gpus()[0..4].to_vec();
    let cfg = TrainingConfig::default();
    for (label, aware) in [("baseline (FLOP-even)", false), ("hardware-aware", true)] {
        let part = pipeline_partition(&graph, &cfg, &stage_gpus, 32, 16, false, 512, aware)
            .expect("partition");
        let flops = stage_flops(&graph, &part);
        let total: f64 = flops.iter().sum();
        println!("{label} stage FLOP shares:");
        for (i, f) in flops.iter().enumerate() {
            let gpu = &stage_gpus[i];
            println!(
                "  stage {i} on {:<10} {:>5.1}% of model FLOPs",
                gpu.model.to_string(),
                100.0 * f / total
            );
        }
    }

    // Full end-to-end comparison with DP over the pipeline.
    for (label, aware) in [("baseline", false), ("hardware-aware", true)] {
        let session = Session::on_cluster("2x(2xP100,2xV100)")?
            .hardware_aware(aware)
            .outer_dp(2);
        let graph = models::bert_large(512, 128).expect("build BERT-Large");
        let ir = strategies::pipeline_with_dp(graph, 512, 16)?;
        let out = session.step(&ir)?;
        println!(
            "\n{label}: step {:.2} s, bubble {:.1}%, utilization by model: {:?}",
            out.stats.step_time,
            out.stats.bubble_ratio() * 100.0,
            out.stats
                .utilization_by_model()
                .into_iter()
                .map(|(k, v)| format!("{k}={v:.2}"))
                .collect::<Vec<_>>()
        );
    }
    Ok(())
}
