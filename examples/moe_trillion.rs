//! Scaling to a trillion parameters with sparse experts (§5.2, Example 8).
//!
//! Run with: `cargo run --example moe_trillion`
//!
//! Builds M6-MoE-100B and M6-MoE-1T with the exact Table 1 configurations,
//! applies the MoE hybrid strategy (`split` on the expert layers, `replica`
//! by default everywhere else), and simulates training steps on the paper's
//! 128- and 480-GPU clusters.

use whale::{strategies, LossModel, Optimizer, Session, TrainingConfig};
use whale_graph::models::{m6_moe, MoeConfig};

fn main() -> whale::Result<()> {
    let training = TrainingConfig {
        optimizer: Optimizer::Adafactor,
        amp: true,
        recompute: true,
        ..TrainingConfig::default()
    };
    for (name, cfg, cluster) in [
        ("M6-MoE-100B", MoeConfig::m6_moe_100b(), "16x(8xV100)"),
        ("M6-MoE-1T", MoeConfig::m6_moe_1t(), "60x(8xV100)"),
    ] {
        let session = Session::on_cluster(cluster)?.training(training);
        let batch = 1024;
        let graph = m6_moe(cfg, batch).expect("build MoE");
        let params = graph.total_params();

        // Example 8: three added lines — set_default(replica) + split around
        // the expert computation.
        let ir = strategies::moe_hybrid(graph, batch)?;
        let plan = session.plan(&ir)?;
        session.check_memory(&plan)?;
        let out = session.step_plan(&plan)?;

        println!(
            "{name}: {:.2}B parameters on {} GPUs",
            params as f64 / 1e9,
            session.cluster().num_gpus()
        );
        println!(
            "  TaskGraphs: {} (replica/split interleaved per layer)",
            ir.num_task_graphs()
        );
        println!(
            "  step time:  {:.2} s at batch {batch}",
            out.stats.step_time
        );
        println!("  throughput: {:.0} samples/s", out.stats.throughput);

        // A short simulated loss curve from the scaling-law model.
        let loss = LossModel::for_params(params as f64 * 0.1);
        let run = session.train(&ir, &loss, 10e6, 5, 1)?;
        print!("  loss curve:");
        for p in &run.points {
            print!("  {:.2}@{:.0e}", p.loss, p.samples);
        }
        println!("\n");
    }
    Ok(())
}
