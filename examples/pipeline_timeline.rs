//! Pipeline schedules visualized (Figs. 3 and 12).
//!
//! Run with: `cargo run --example pipeline_timeline`
//!
//! Renders backward-first (Whale's default, Fig. 12) and GPipe schedules as
//! ASCII timelines, on homogeneous and heterogeneous stage devices — the
//! heterogeneous baseline reproduces Fig. 3's "slow stage2 starves the
//! others" effect.

use whale::{models, strategies, ScheduleKind, Session};
use whale_sim::ascii_timeline;

fn render(title: &str, cluster: &str, schedule: ScheduleKind, aware: bool) -> whale::Result<()> {
    let session = Session::on_cluster(cluster)?
        .schedule(schedule)
        .hardware_aware(aware);
    let graph = models::bert_base(48, 64).expect("build");
    let ir = strategies::pipeline_only(graph, 48, 6)?;
    let out = session.step(&ir)?;
    println!("{title}");
    println!(
        "  (cluster {cluster}, bubble ratio {:.1}%)",
        out.stats.bubble_ratio() * 100.0
    );
    print!("{}", ascii_timeline(&out, 100));
    println!();
    Ok(())
}

fn main() -> whale::Result<()> {
    render(
        "backward-first (1F1B), 4 homogeneous stages — Fig. 12",
        "1x(4xV100)",
        ScheduleKind::BackwardFirst,
        true,
    )?;
    render(
        "GPipe flush, same pipeline — all forwards then all backwards",
        "1x(4xV100)",
        ScheduleKind::GPipe,
        true,
    )?;
    render(
        "FLOP-even stages on mixed GPUs — the slow P100 stages starve V100s (Fig. 3)",
        "1x(2xP100,2xV100)",
        ScheduleKind::BackwardFirst,
        false,
    )?;
    render(
        "hardware-aware stages on the same mixed GPUs (Algorithm 3)",
        "1x(2xP100,2xV100)",
        ScheduleKind::BackwardFirst,
        true,
    )?;
    Ok(())
}
