//! Quickstart: annotate a model with one line, plan, and simulate a step.
//!
//! Run with: `cargo run --example quickstart`
//!
//! Mirrors the paper's Example 1 (pure data parallelism): the local model is
//! built as usual, `replica` wraps the whole thing, and Whale turns it into
//! a distributed plan — here on the heterogeneous 8×V100 + 8×P100 testbed of
//! Fig. 17.

use whale::{models, strategies, Session};

fn main() -> whale::Result<()> {
    // A cluster spec, exactly like the paper's `cluster()` scope.
    let session = Session::on_cluster("1x(8xV100)+1x(8xP100)")?;

    // The "three lines" experience: build the model, annotate, run.
    let graph = models::resnet50(512).expect("build ResNet-50");
    let ir = strategies::data_parallel(graph, 512)?;
    let outcome = session.step(&ir)?;

    let stats = &outcome.stats;
    println!("ResNet-50, global batch 512, data parallelism on 16 mixed GPUs");
    println!("  step time:   {:.1} ms", stats.step_time * 1e3);
    println!("  throughput:  {:.0} samples/s", stats.throughput);
    println!(
        "  gradient sync: {:.1} ms total, {:.1} ms exposed",
        stats.sync_time_total * 1e3,
        stats.sync_time_exposed * 1e3
    );

    // The hardware-aware partitioner (Algorithm 2) gave the faster V100s
    // bigger batches; print the per-GPU split.
    println!("\n  per-GPU batch shares (V100s first, then P100s):");
    let plan = session.plan(&ir)?;
    for d in &plan.stages[0].devices {
        let gpu = session.cluster().gpu(d.gpu)?;
        println!(
            "    gpu{:<2} {:<10} batch {:>3}  mem {:>5.1} GiB",
            d.gpu,
            gpu.model.to_string(),
            d.samples_per_step,
            d.mem_bytes as f64 / (1u64 << 30) as f64
        );
    }

    // Compare against the paper's baseline: uniform batches.
    let baseline = Session::on_cluster("1x(8xV100)+1x(8xP100)")?.hardware_aware(false);
    let graph = models::resnet50(512).expect("build ResNet-50");
    let ir = strategies::data_parallel(graph, 512)?;
    let base = baseline.step(&ir)?;
    println!(
        "\n  baseline (uniform batch) step: {:.1} ms → hardware-aware speedup {:.2}x",
        base.stats.step_time * 1e3,
        base.stats.step_time / stats.step_time
    );
    Ok(())
}
