//! Bridge layers and fusion (Figs. 7-9).
//!
//! Run with: `cargo run --example bridge_demo`
//!
//! Shows the bridge chains Whale inserts between TaskGraphs with different
//! parallelism and how opposite bridges fuse away: DP(3)→DP(2) (Fig. 9)
//! keeps its Gather/Partition pair, while DP(4)→DP(4) fuses to nothing.

use whale::Primitive;
use whale_planner::bridge::{bridge_pattern, chain_bytes, connect, fuse, Bridge};

fn show(label: &str, producer: Primitive, n: usize, consumer: Primitive, m: usize, bytes: u64) {
    let raw = [
        bridge_pattern(producer, n).output,
        bridge_pattern(consumer, m).input,
    ];
    let fused = connect(producer, n, consumer, m);
    println!("{label}:");
    println!("  raw chain:   {raw:?}");
    println!("  fused chain: {fused:?}");
    println!(
        "  bytes moved: {} MB raw → {} MB fused",
        chain_bytes(&raw, bytes) >> 20,
        chain_bytes(&fused, bytes) >> 20
    );
}

fn main() {
    let tensor = 256u64 << 20; // a 256 MB activation tensor

    show(
        "Fig. 8 — replica(4) → replica(4), same degree",
        Primitive::Replica,
        4,
        Primitive::Replica,
        4,
        tensor,
    );
    show(
        "\nFig. 9 — replica(3) → replica(2), mismatched degree",
        Primitive::Replica,
        3,
        Primitive::Replica,
        2,
        tensor,
    );
    show(
        "\nsplit(2) → replica(4)",
        Primitive::Split,
        2,
        Primitive::Replica,
        4,
        tensor,
    );
    show(
        "\nstage → stage (pipeline neighbours)",
        Primitive::Stage,
        1,
        Primitive::Stage,
        1,
        tensor,
    );

    // Fusion is not just pair-wise: longer chains collapse too.
    let chain = [
        Bridge::Gather(4),
        Bridge::Partition(4),
        Bridge::Gather(2),
        Bridge::Partition(2),
    ];
    println!("\nlong chain {chain:?}\n  fuses to {:?}", fuse(&chain));
}
