//! Breaking the memory wall: recompute + AMP + ZeRO + offload (§4).
//!
//! Run with: `cargo run --example memory_wall`
//!
//! Shows the per-GPU memory bars for BERT-Large data parallelism as each of
//! Whale's integrated memory optimizations is switched on, ending with a
//! 10-billion-parameter dense replica fitting a single 32 GB V100.

use whale::{models, strategies, Optimizer, Session, TrainingConfig, ZeroStage};
use whale_sim::memory_profile;

fn show(label: &str, training: TrainingConfig) -> whale::Result<()> {
    let session = Session::on_cluster("1x(4xV100)")?.training(training);
    let batch = 128;
    let ir = strategies::data_parallel(models::bert_large(batch, 128).unwrap(), batch)?;
    let plan = session.plan(&ir)?;
    println!("{label}:");
    print!("{}", memory_profile(&plan, session.cluster(), 48));
    println!();
    Ok(())
}

fn main() -> whale::Result<()> {
    let base = TrainingConfig {
        optimizer: Optimizer::Adam,
        ..TrainingConfig::default()
    };
    show("baseline (Adam, fp32, full activations)", base)?;
    show(
        "recompute + AMP",
        TrainingConfig {
            recompute: true,
            amp: true,
            ..base
        },
    )?;
    show(
        "recompute + AMP + ZeRO-2",
        TrainingConfig {
            recompute: true,
            amp: true,
            zero: ZeroStage::Gradients,
            ..base
        },
    )?;
    show(
        "recompute + AMP + ZeRO-3 + offload",
        TrainingConfig {
            recompute: true,
            amp: true,
            zero: ZeroStage::Parameters,
            offload: true,
            ..base
        },
    )?;

    // The finale: M6-10B data-parallel on plain V100s.
    let stack = TrainingConfig {
        optimizer: Optimizer::Adafactor,
        recompute: true,
        amp: true,
        zero: ZeroStage::Parameters,
        offload: true,
        ..TrainingConfig::default()
    };
    let session = Session::on_cluster("1x(8xV100)")?.training(stack);
    let ir = strategies::data_parallel(models::m6_10b(32).unwrap(), 32)?;
    let plan = session.plan(&ir)?;
    println!("M6-10B (9.9B params) data-parallel with the full stack:");
    print!("{}", memory_profile(&plan, session.cluster(), 48));
    session.check_memory(&plan)?;
    println!("\n→ a dense 10B replica fits a 32 GiB V100. Without the stack it");
    println!("  needs ~150 GiB and only pipelines can host it (see m6_pipeline).");
    Ok(())
}
