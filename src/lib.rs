//! Umbrella package hosting the runnable examples (`examples/`) and the
//! cross-crate integration tests (`tests/`) for the Whale reproduction.
//!
//! The actual library lives in the `whale` crate and its substrates; this
//! package only re-exports the façade so examples can `use whale_repro::*`.

pub use whale::*;
