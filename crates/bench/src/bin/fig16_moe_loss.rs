//! Fig. 16 — training loss of M6-MoE-100B vs M6-MoE-1T.
//!
//! Paper setup: both models trained on V100 clusters (128 GPUs for 100B,
//! 480 for 1T); at equal samples the 1T model reaches visibly lower loss.
//! Real loss curves require real training; per the substitution rule we use
//! a Kaplan-style scaling-law loss model with effective capacity from the
//! parameter count (MoE params discounted since only top-2 experts activate
//! per token).

use whale::{strategies, LossModel, Optimizer, Session, TrainingConfig};
use whale_bench::{fmt_count, header, row};
use whale_graph::models::{m6_moe, MoeConfig};

/// Effective parameters of a sparse MoE: dense params plus expert params at
/// a sub-linear discount (top-2 of E experts active).
fn effective_params(total: f64, experts: usize, top_k: usize) -> f64 {
    let sparsity = (top_k as f64 / experts as f64).powf(0.35);
    total * sparsity.max(0.05)
}

fn main() {
    header(
        "Figure 16",
        "training loss of M6-MoE-100B vs M6-MoE-1T over 100M samples",
    );
    let training = TrainingConfig {
        optimizer: Optimizer::Adafactor,
        amp: true,
        recompute: true,
        ..TrainingConfig::default()
    };
    let runs = [
        (
            "M6-MoE-100B",
            MoeConfig::m6_moe_100b(),
            "16x(8xV100)",
            1024usize,
        ),
        (
            "M6-MoE-1T",
            MoeConfig::m6_moe_1t(),
            "60x(8xV100)",
            1024usize,
        ),
    ];
    let mut curves = Vec::new();
    for (name, cfg, cluster, batch) in runs {
        let session = Session::on_cluster(cluster).unwrap().training(training);
        let graph = m6_moe(cfg, batch).expect("build MoE");
        let params = graph.total_params() as f64;
        let ir = strategies::moe_hybrid(graph, batch).expect("annotate");
        let loss = LossModel::for_params(effective_params(params, cfg.experts, cfg.top_k));
        let run = session
            .train(&ir, &loss, 100e6, 12, 42)
            .expect("simulate training");
        row(
            &format!("{name} ({} params)", fmt_count(params)),
            format!(
                "final loss {:.3} after {}",
                run.final_loss(),
                whale_bench::fmt_secs(run.total_seconds())
            ),
        );
        curves.push((name, run));
    }

    println!("\n  loss curve (log-spaced checkpoints):");
    println!(
        "  {:>14} {:>14} {:>14}",
        "samples", curves[0].0, curves[1].0
    );
    for i in 0..curves[0].1.points.len() {
        let p0 = &curves[0].1.points[i];
        // Match the 1T curve at the nearest sample count.
        let p1 = curves[1]
            .1
            .points
            .iter()
            .min_by(|a, b| {
                (a.samples - p0.samples)
                    .abs()
                    .total_cmp(&(b.samples - p0.samples).abs())
            })
            .unwrap();
        println!(
            "  {:>14} {:>14.3} {:>14.3}",
            fmt_count(p0.samples),
            p0.loss,
            p1.loss
        );
    }
    let final_gap = curves[0].1.final_loss() - curves[1].1.final_loss();
    row("final loss gap (1T below 100B)", format!("{final_gap:.3}"));
    println!("\n  paper Fig. 16 shape: both curves fall with samples; the 1T curve");
    println!("  sits strictly below the 100B curve at every sample count.");
}
