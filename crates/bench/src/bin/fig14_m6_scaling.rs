//! Fig. 14 — M6-10B training with hybrid pipeline + data parallelism.
//!
//! Paper setup: the 10-billion-parameter M6 model trained with pipeline
//! parallelism inside each 8×V100-32GB node and data parallelism across
//! nodes, 35 micro batches, recomputation enabled, Adafactor optimizer
//! (§5.1). Scaling nodes 1 → 32 (8 → 256 GPUs), Whale achieves 91 %
//! scalability.
//!
//! Scalability here is throughput(N) / (N · throughput(1)) — the same
//! definition that yields the paper's 91 % at 32 nodes.

use whale::{strategies, Optimizer, Session, TrainingConfig};
use whale_bench::{fmt_secs, header};

fn main() {
    header(
        "Figure 14",
        "M6-10B pipeline+DP scaling on 8xV100 nodes (paper: 91% at 32 nodes)",
    );
    // §5.1 applies recomputation (AMP/XLA are only cited for the MoE runs
    // of §5.2), and Adafactor is the stated optimizer.
    let training = TrainingConfig {
        optimizer: Optimizer::Adafactor,
        amp: false,
        recompute: true,
        ..TrainingConfig::default()
    };
    // Per-node batch stays constant (weak scaling); 35 micro batches as in
    // §5.1.
    let per_node_batch = 70;
    let micro = 35;

    let mut base_throughput = None;
    println!(
        "\n  {:>6} {:>6} {:>12} {:>16} {:>13}",
        "nodes", "GPUs", "step time", "samples/sec", "scalability"
    );
    for nodes in [1usize, 2, 4, 8, 16, 32] {
        let spec = format!("{nodes}x(8xV100)");
        // Gradient AllReduce overlaps with the pipeline drain at partial
        // efficiency: each stage's sync starts once its backward finishes,
        // but the per-stage groups share each node's single 50 Gb/s NIC and
        // real overlap is imperfect (DAPPLE reports the same effect).
        let session = Session::on_cluster(&spec)
            .unwrap()
            .training(training)
            .sync_overlap(0.6)
            .outer_dp(nodes);
        let global_batch = per_node_batch * nodes;
        let graph = whale::models::m6_10b(global_batch).expect("build M6-10B");
        let ir = strategies::pipeline_with_dp(graph, global_batch, micro).expect("annotate");
        let out = session.step(&ir).expect("simulate");
        let s = &out.stats;
        assert!(!s.has_oom(), "M6-10B plan must fit in 32 GB with recompute");
        let scalability = match base_throughput {
            None => {
                base_throughput = Some(s.throughput);
                1.0
            }
            Some(base) => s.throughput / (base * nodes as f64),
        };
        println!(
            "  {:>6} {:>6} {:>12} {:>16.2} {:>12.1}%",
            nodes,
            nodes * 8,
            fmt_secs(s.step_time),
            s.throughput,
            scalability * 100.0
        );
    }
    println!("\n  paper: 91% scalability at 32 nodes (256 GPUs), Fig. 14.");
    println!("  expected shape: monotone decline from 100% flattening out near ~90%.");
}
