//! Resilient runtime vs restart-from-scratch under injected faults.
//!
//! Scenario: the paper's heterogeneous testbed scaled to 32 GPUs
//! (2×(8×V100) + 2×(8×P100)) trains through a deterministic fault trace —
//! degradations, crashes, congestion, restores, joins — generated from
//! MTBF/MTTR parameters and a fixed seed. Two runtimes consume the *same*
//! trace:
//!
//! * **resilient** — `Session::train_resilient`: periodic checkpoints,
//!   rollback to the last one, delta replanning through the plan cache's
//!   invalidation fast path, full recompile only when verification fails;
//! * **naive** — `Session::train_restart_baseline`: a static plan that
//!   straggles through rate faults and restarts from sample zero on any
//!   membership change.
//!
//! Both runs are pure simulation, so the comparison is deterministic and
//! the metric is *goodput*: committed samples per wall-clock second. The
//! acceptance target (resilient ≥ 1.5× naive, median across the model set)
//! is asserted; the binary exits non-zero if it is missed. Writes
//! `BENCH_faults.json` so later PRs can track the numbers.

use whale::{
    models, strategies, Cluster, LossModel, RecoveryPolicy, ResilientRun, Session, WhaleIr,
};
use whale_bench::{header, row};
use whale_sim::json::{num, obj, s, JsonValue};
use whale_sim::{FaultModel, FaultTrace};

const CLUSTER: &str = "2x(8xV100)+2x(8xP100)";
const TARGET_RATIO: f64 = 1.5;
const TOTAL_SAMPLES: f64 = 2e6;

fn run_json(r: &ResilientRun) -> JsonValue {
    let st = &r.stats;
    obj(vec![
        ("goodput", num(st.goodput)),
        ("raw_throughput", num(st.raw_throughput)),
        ("availability", num(st.availability)),
        ("wall_seconds", num(st.wall_seconds)),
        ("downtime_seconds", num(st.downtime_seconds)),
        ("samples_lost", num(st.samples_lost)),
        ("replans_cached", num(st.replans_cached as f64)),
        ("replans_full", num(st.replans_full as f64)),
        ("faults", num(st.faults.len() as f64)),
    ])
}

fn main() {
    header(
        "fault_bench",
        "resilient (checkpoint + delta replan) vs restart-from-scratch goodput",
    );

    let cluster = Cluster::parse(CLUSTER).expect("cluster");
    let model = FaultModel {
        mtbf_samples: 3e5,
        mttr_samples: 1e5,
        seed: 42,
    };
    let policy = RecoveryPolicy {
        checkpoint_interval: 5e4,
        ..RecoveryPolicy::default()
    };
    // Horizon past the target: rollbacks push the processed-samples axis
    // beyond the committed total, and the naive baseline re-earns far more.
    let trace = FaultTrace::generate(&cluster, &model, TOTAL_SAMPLES * 4.0);
    row("cluster", CLUSTER);
    row(
        "trace",
        format!(
            "{} event(s), mtbf {:.0}, mttr {:.0}, seed {}",
            trace.len(),
            model.mtbf_samples,
            model.mttr_samples,
            model.seed
        ),
    );

    // Strategies must stay plannable on *any* surviving GPU count — crashes
    // and joins change the fleet size, and `pipeline_with_dp` pins a replica
    // count that 31 GPUs cannot satisfy. dp and pipeline adapt.
    type Case = (&'static str, f64, fn() -> WhaleIr);
    let zoo: Vec<Case> = vec![
        ("resnet50/dp", 25e6, || {
            strategies::data_parallel(models::resnet50(256).expect("build"), 256).expect("annotate")
        }),
        ("bert_large/dp", 340e6, || {
            strategies::data_parallel(models::bert_large(128, 128).expect("build"), 128)
                .expect("annotate")
        }),
        ("gpt2_xl/pipeline", 1.5e9, || {
            strategies::pipeline_only(models::gpt2_xl(64, 128).expect("build"), 64, 8)
                .expect("annotate")
        }),
    ];

    let mut rows = Vec::new();
    let mut ratios = Vec::new();
    for (name, params, build) in &zoo {
        let ir = build();
        let loss = LossModel::for_params(*params);

        let mut resilient_session = Session::new(cluster.clone());
        let resilient = resilient_session
            .train_resilient(&ir, &loss, TOTAL_SAMPLES, &trace, &policy)
            .expect("resilient run");
        let mut naive_session = Session::new(cluster.clone());
        let naive = naive_session
            .train_restart_baseline(&ir, &loss, TOTAL_SAMPLES, &trace, &policy)
            .expect("baseline run");

        let ratio = resilient.stats.goodput / naive.stats.goodput;
        row(
            name,
            format!(
                "resilient {:.0} vs naive {:.0} samples/s  ({ratio:.2}x, lost {:.0} vs {:.0})",
                resilient.stats.goodput,
                naive.stats.goodput,
                resilient.stats.samples_lost,
                naive.stats.samples_lost
            ),
        );
        ratios.push(ratio);
        rows.push(obj(vec![
            ("name", s(*name)),
            ("resilient", run_json(&resilient)),
            ("naive", run_json(&naive)),
            ("goodput_ratio", num(ratio)),
        ]));
    }

    let mut sorted = ratios.clone();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let median = sorted[sorted.len() / 2];
    let met = median >= TARGET_RATIO;
    row(
        "median goodput ratio",
        format!("{median:.2}x{}", if met { "" } else { "  << below target" }),
    );

    let doc = obj(vec![
        ("bench", s("fault_bench")),
        ("cluster", s(CLUSTER)),
        ("total_samples", num(TOTAL_SAMPLES)),
        ("mtbf_samples", num(model.mtbf_samples)),
        ("mttr_samples", num(model.mttr_samples)),
        ("seed", num(model.seed as f64)),
        ("trace_events", num(trace.len() as f64)),
        ("models", JsonValue::Array(rows)),
        ("median_goodput_ratio", num(median)),
        ("target_ratio", num(TARGET_RATIO)),
        ("targets_met", JsonValue::Bool(met)),
    ]);
    let path = "BENCH_faults.json";
    std::fs::write(path, doc.to_string_pretty() + "\n").expect("write BENCH_faults.json");
    row("artifact", path);

    assert!(
        met,
        "resilient goodput must be >= {TARGET_RATIO}x the restart baseline (median {median:.2}x)"
    );
}
