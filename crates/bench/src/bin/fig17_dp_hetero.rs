//! Fig. 17 + Table 2 — hardware-aware data parallelism on heterogeneous
//! GPUs.
//!
//! Paper setup: ResNet-50, BERT-Large, and GNMT trained data-parallel on
//! 8 NVIDIA V100-32GB plus 8 P100-16GB. Baseline uses the same batch size on
//! every replica; the hardware-aware policy applies Algorithm 2. Paper
//! results: 1.3–1.4× speedup (Fig. 17) and V100 SMACT up 1.39–1.96× with a
//! slight P100 dip (Table 2).

use whale::{strategies, Session, StepStats};
use whale_bench::{fmt_secs, header, row};
use whale_graph::Graph;

fn run(session: &Session, graph: Graph, batch: usize) -> StepStats {
    let ir = strategies::data_parallel(graph, batch).expect("annotate");
    session.step(&ir).expect("simulate").stats
}

type Workload = (&'static str, Box<dyn Fn(usize) -> Graph>, usize, f64);

fn main() {
    header(
        "Figure 17 + Table 2",
        "hardware-aware DP speedup and SMACT on 8xV100 + 8xP100",
    );
    let cluster = "1x(8xV100)+1x(8xP100)";
    let aware = Session::on_cluster(cluster).unwrap().hardware_aware(true);
    let base = Session::on_cluster(cluster).unwrap().hardware_aware(false);

    // (name, builder, global batch, paper speedup)
    let workloads: Vec<Workload> = vec![
        (
            "ResNet50",
            Box::new(|b| whale::models::resnet50(b).unwrap()),
            1024,
            1.3,
        ),
        (
            "Bert-Large",
            Box::new(|b| whale::models::bert_large(b, 128).unwrap()),
            256,
            1.3,
        ),
        (
            "GNMT",
            Box::new(|b| whale::models::gnmt(b, 50).unwrap()),
            512,
            1.4,
        ),
    ];

    println!("\nFig. 17 — speedup of hardware-aware over same-batch baseline");
    println!(
        "  {:<12} {:>12} {:>14} {:>9} {:>9}",
        "model", "baseline", "hardware-aware", "speedup", "paper"
    );
    let mut results = Vec::new();
    for (name, build, batch, paper) in &workloads {
        let sb = run(&base, build(*batch), *batch);
        let sa = run(&aware, build(*batch), *batch);
        let speedup = sb.step_time / sa.step_time;
        println!(
            "  {:<12} {:>12} {:>14} {:>8.2}x {:>8.1}x",
            name,
            fmt_secs(sb.step_time),
            fmt_secs(sa.step_time),
            speedup,
            paper
        );
        results.push((*name, sb, sa));
    }

    println!("\nTable 2 — mean GPU utilization (SMACT proxy) per GPU type");
    println!(
        "  {:<12} {:>14} {:>14} {:>14} {:>14}",
        "model", "base P100", "base V100", "aware P100", "aware V100"
    );
    for (name, sb, sa) in &results {
        let ub = sb.utilization_by_model();
        let ua = sa.utilization_by_model();
        println!(
            "  {:<12} {:>14.2} {:>14.2} {:>14.2} {:>14.2}",
            name, ub["P100-16GB"], ub["V100-32GB"], ua["P100-16GB"], ua["V100-32GB"]
        );
    }
    println!("\n  paper Table 2 (SMACT): ResNet50 0.68/0.56 → 0.62/0.87,");
    println!("  GNMT 0.63/0.48 → 0.56/0.94, Bert-Large 0.71/0.57 → 0.62/0.79");
    println!("  expected shape: V100 utilization rises sharply (paper: 1.39-1.96x),");
    println!("  P100 dips slightly while overall step time improves 1.3-1.4x.");

    for (name, sb, sa) in &results {
        let ub = sb.utilization_by_model();
        let ua = sa.utilization_by_model();
        let v_gain = ua["V100-32GB"] / ub["V100-32GB"];
        row(
            &format!("{name}: V100 utilization gain"),
            format!("{v_gain:.2}x"),
        );
    }
}
