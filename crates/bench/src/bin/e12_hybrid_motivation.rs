//! E12 (§1 / Fig. 4 motivation) — hybrid DP+split on the 100k-class
//! classifier cuts parameter-synchronization traffic by ~90 %.
//!
//! The paper's opening example: ResNet-50 features (~90 MB of parameters)
//! plus a 100,000-class FC layer (~782 MB). Pure DP AllReduces all 872 MB
//! every step; applying `split` to the FC updates it locally and only the
//! feature gradients are synchronized.

use whale::{strategies, Session};
use whale_bench::{fmt_secs, header, row};
use whale_graph::models;

fn main() {
    header(
        "E12 (§1 / Fig. 4)",
        "hybrid DP+split vs pure DP on ResNet-50 + 100k-class FC",
    );
    let batch = 512;
    let session = Session::on_cluster("1x(8xV100)").unwrap();

    let dp_ir = strategies::data_parallel(models::imagenet_100k(batch).unwrap(), batch).unwrap();
    let dp_plan = session.plan(&dp_ir).unwrap();
    let dp_out = session.step_plan(&dp_plan).unwrap();

    let hy_ir = strategies::feature_dp_classifier_split(
        models::imagenet_100k(batch).unwrap(),
        batch,
        "fc_big",
    )
    .unwrap();
    let hy_plan = session.plan(&hy_ir).unwrap();
    let hy_out = session.step_plan(&hy_plan).unwrap();

    let dp_sync = dp_plan.grad_sync_bytes();
    let hy_sync = hy_plan.grad_sync_bytes();
    println!();
    row(
        "pure DP: gradient sync per step",
        format!("{} MB", dp_sync >> 20),
    );
    row(
        "hybrid:  gradient sync per step",
        format!("{} MB", hy_sync >> 20),
    );
    let reduction = 100.0 * (1.0 - hy_sync as f64 / dp_sync as f64);
    row("sync traffic reduction", format!("{reduction:.1}%"));
    row("paper claim", "~90% (FC updated locally)");
    println!();
    row("pure DP step time", fmt_secs(dp_out.stats.step_time));
    row("hybrid step time", fmt_secs(hy_out.stats.step_time));
    assert!(
        reduction > 80.0,
        "hybrid must eliminate the FC from the sync path"
    );
    println!("\n  expected shape: the 782MB FC disappears from the AllReduce,");
    println!("  leaving only the ~90MB feature extractor to synchronize.");
}
