//! Micro-benchmarks for the planner's hot paths: model construction,
//! profiling, stage partitioning (Algorithm 3), DP partitioning
//! (Algorithm 2), and full plan assembly.
//!
//! Formerly a Criterion bench; now runs on the in-repo harness
//! (`whale_bench::time_fn`) so the build needs no registry access.

use std::hint::black_box;
use whale::{models, strategies, Session};
use whale_bench::{header, time_fn};
use whale_graph::{CostProfile, TrainingConfig};
use whale_hardware::Cluster;
use whale_planner::{dp_partition, pipeline_partition};

fn main() {
    let (warmup, iters) = (3, 15);

    header(
        "planner_bench",
        "planner hot paths (median/p95 over timed iterations)",
    );

    time_fn("model_build/resnet50", warmup, iters, || {
        black_box(models::resnet50(32).unwrap())
    })
    .print();
    time_fn("model_build/bert_large", warmup, iters, || {
        black_box(models::bert_large(32, 128).unwrap())
    })
    .print();
    time_fn("model_build/m6_moe_100b", warmup, iters, || {
        black_box(models::m6_moe_100b(32).unwrap())
    })
    .print();

    let graph = models::bert_large(32, 128).unwrap();
    time_fn("profile_bert_large", warmup, iters, || {
        black_box(CostProfile::from_graph(&graph, 32))
    })
    .print();

    let cluster = Cluster::parse("8xV100+8xP100").unwrap();
    let graph64 = models::bert_large(64, 128).unwrap();
    let profile = CostProfile::from_graph(&graph64, 64);
    let cfg = TrainingConfig::default();
    time_fn("alg2_dp_partition_16gpu", warmup, iters, || {
        black_box(dp_partition(&profile, &cfg, cluster.gpus(), 512, 1.0, true).unwrap())
    })
    .print();

    let stage_cluster = Cluster::parse("2xP100,2xV100").unwrap();
    time_fn("alg3_pipeline_partition_4stage", warmup, iters, || {
        black_box(
            pipeline_partition(&graph64, &cfg, stage_cluster.gpus(), 4, 8, false, 64, true)
                .unwrap(),
        )
    })
    .print();

    type Case = (&'static str, &'static str, fn() -> whale::WhaleIr);
    let cases: Vec<Case> = vec![
        ("dp_hetero_16gpu", "8xV100+8xP100", || {
            strategies::data_parallel(models::resnet50(256).unwrap(), 256).unwrap()
        }),
        ("pipeline_8stage", "1x(8xV100)", || {
            strategies::pipeline_only(models::bert_large(64, 128).unwrap(), 64, 8).unwrap()
        }),
        ("moe_49tg_32gpu", "4x(8xV100)", || {
            strategies::moe_hybrid(models::m6_moe(models::MoeConfig::tiny(), 64).unwrap(), 64)
                .unwrap()
        }),
    ];
    for (name, cluster, mk) in cases {
        let session = Session::on_cluster(cluster).unwrap();
        let ir = mk();
        time_fn(&format!("full_plan/{name}"), warmup, iters, || {
            black_box(session.plan(&ir).unwrap())
        })
        .print();
    }
}
