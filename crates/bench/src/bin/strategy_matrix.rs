//! Strategy matrix — every zoo model × every applicable strategy on a
//! reference cluster, in one table.
//!
//! This is the "which parallelism should I use?" overview the paper's
//! primitives make cheap to answer: annotate, plan, simulate, compare.

use whale::{models, strategies, Session, WhaleIr};
use whale_bench::{fmt_secs, header};
use whale_graph::Graph;

type Builder = fn(usize) -> Graph;

fn build_ir(strategy: &str, graph: Graph, batch: usize) -> whale::Result<WhaleIr> {
    match strategy {
        "dp" => strategies::data_parallel(graph, batch),
        "pipeline" => strategies::pipeline_only(graph, batch, 8),
        "pipeline+dp" => strategies::pipeline_with_dp(graph, batch, 8),
        "moe" => strategies::moe_hybrid(graph, batch),
        _ => unreachable!(),
    }
}

fn main() {
    header(
        "Strategy matrix",
        "step time per model × strategy on 2x(4xV100) (— = OOM/N.A.)",
    );
    let cluster = "2x(4xV100)";
    let zoo: Vec<(&str, Builder, usize)> = vec![
        ("resnet50", |b| models::resnet50(b).unwrap(), 256),
        ("bert-large", |b| models::bert_large(b, 128).unwrap(), 128),
        ("gnmt", |b| models::gnmt(b, 50).unwrap(), 128),
        ("t5-large", |b| models::t5_large(b, 128, 128).unwrap(), 64),
        ("vit-large", |b| models::vit_large(b).unwrap(), 128),
        ("gpt2-xl", |b| models::gpt2_xl(b, 256).unwrap(), 32),
        ("m6-10b", |b| models::m6_10b(b).unwrap(), 16),
        (
            "moe-tiny",
            |b| models::m6_moe(models::MoeConfig::tiny(), b).unwrap(),
            128,
        ),
    ];
    let strategies_list = ["dp", "pipeline", "pipeline+dp", "moe"];
    println!(
        "\n  {:<12} {:>12} {:>12} {:>12} {:>12}",
        "model", "dp", "pipeline", "pipeline+dp", "moe"
    );
    for (name, build, batch) in &zoo {
        let mut cells = Vec::new();
        for strat in strategies_list {
            let is_moe_model = name.contains("moe");
            if (strat == "moe") != is_moe_model && strat == "moe" {
                cells.push("—".to_string());
                continue;
            }
            let cell = (|| -> Option<String> {
                let session = Session::on_cluster(cluster).ok()?;
                let ir = build_ir(strat, build(*batch), *batch).ok()?;
                let out = session.step(&ir).ok()?;
                if out.stats.has_oom() {
                    return None;
                }
                Some(fmt_secs(out.stats.step_time))
            })()
            .unwrap_or_else(|| "—".to_string());
            cells.push(cell);
        }
        println!(
            "  {:<12} {:>12} {:>12} {:>12} {:>12}",
            name, cells[0], cells[1], cells[2], cells[3]
        );
    }
    println!("\n  reading: small models prefer pure DP (no bubbles); the 10B dense");
    println!("  model only runs under pipelines; MoE models pair expert-split with DP.");
}
