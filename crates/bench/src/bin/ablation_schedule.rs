//! Ablation — backward-first (1F1B) vs GPipe-flush scheduling (§4,
//! "TaskGraph Schedule", Fig. 12).
//!
//! Backward-first is a *memory* optimization: makespans are nearly equal,
//! but GPipe must hold all M micro-batch activations on every stage while
//! backward-first holds at most `min(S−s, M)`.

use whale::{models, strategies, ScheduleKind, Session};
use whale_bench::{fmt_secs, header};

fn main() {
    header(
        "Ablation",
        "backward-first (1F1B) vs GPipe flush: time and memory",
    );
    println!(
        "\n  {:>7} {:>14} {:>14} {:>16} {:>16}",
        "micros", "1F1B step", "GPipe step", "1F1B peak mem", "GPipe peak mem"
    );
    for micros in [4usize, 8, 16, 32] {
        let mut row = Vec::new();
        for schedule in [ScheduleKind::BackwardFirst, ScheduleKind::GPipe] {
            let session = Session::on_cluster("1x(8xV100)")
                .unwrap()
                .schedule(schedule);
            let ir = strategies::pipeline_only(models::bert_large(128, 128).unwrap(), 128, micros)
                .unwrap();
            let plan = session.plan(&ir).unwrap();
            let out = session.step_plan(&plan).unwrap();
            let peak = plan.memory_per_gpu().values().copied().max().unwrap_or(0);
            row.push((out.stats.step_time, peak));
        }
        println!(
            "  {:>7} {:>14} {:>14} {:>13.1} GiB {:>13.1} GiB",
            micros,
            fmt_secs(row[0].0),
            fmt_secs(row[1].0),
            row[0].1 as f64 / (1u64 << 30) as f64,
            row[1].1 as f64 / (1u64 << 30) as f64,
        );
    }
    println!("\n  expected shape: step times stay within a few percent; GPipe peak");
    println!("  memory grows linearly with the micro-batch count while 1F1B's is");
    println!("  bounded by the pipeline depth — exactly why Whale defaults to 1F1B.");
}
