//! Concurrent plan-service benchmark: global-mutex cache vs sharded
//! single-flight service.
//!
//! Scenario: a multi-tenant planning front end replays a zoo×cluster
//! request mix from 1/2/4/8/16 client threads, in three phases per arm:
//!
//! * **cold** — empty cache, every thread walks every key from a barrier
//!   start: maximal same-key contention. The sharded service must compile
//!   each unique `PlanKey` exactly once (single-flight; the `coalesced`
//!   counter accounts for the drafting requests).
//! * **hot** — every key cached; the phase that dominates steady-state
//!   serving. The baseline arm reproduces the pre-PR behavior faithfully:
//!   one global `Mutex<PlanCache>` and a deep `ExecutionPlan` clone per hit
//!   under the lock (the old `plan()` returned the plan by value). The
//!   service arm returns `Arc` handles — a hit is a refcount bump.
//! * **degrade/replan** — every thread replans every key through one
//!   `GpuDegraded` delta; concurrent replans single-flight on the
//!   post-delta key.
//!
//! Both arms serve requests through caller-computed keys (`plan_keyed`), so
//! fingerprinting — identical work on either path — is kept out of the
//! comparison. The acceptance target (≥3× QPS at 8 threads on the hot mix)
//! is deliberately about *work under the lock*, not parallelism: on a
//! single-core host the speedup comes entirely from not deep-cloning plans
//! in the serial section. Writes `BENCH_serve.json`; `--quick` shrinks the
//! workload, skips the perf target, and writes `BENCH_serve_quick.json`
//! instead (CI smoke: no panic + consistent counters).

use std::hint::black_box;
use std::sync::{Barrier, Mutex};
use std::time::Instant;

use whale::{models, strategies, Cluster, ClusterDelta, PlanCache, PlannerConfig, WhaleIr};
use whale_bench::{header, row};
use whale_planner::{ExecutionPlan, PlanKey, PlanService};
use whale_sim::json::{num, obj, s, JsonValue};

const TARGET_SPEEDUP_AT_8: f64 = 3.0;
const DELTA: ClusterDelta = ClusterDelta::GpuDegraded { id: 0, scale: 0.5 };

/// One replayable request: inputs, precomputed key, and the serial cold
/// compile every served plan must be bit-identical to.
struct Request {
    name: String,
    ir: WhaleIr,
    cluster: Cluster,
    key: PlanKey,
    reference: ExecutionPlan,
}

fn build_workload(quick: bool, config: &PlannerConfig) -> Vec<Request> {
    type Case = (&'static str, fn() -> WhaleIr);
    let mut zoo: Vec<Case> = vec![
        ("resnet50/dp", || {
            strategies::data_parallel(models::resnet50(256).expect("build"), 256).expect("annotate")
        }),
        ("bert_large/pipeline_dp", || {
            strategies::pipeline_with_dp(models::bert_large(128, 128).expect("build"), 128, 8)
                .expect("annotate")
        }),
    ];
    let mut clusters = vec!["2x(8xV100)+2x(8xP100)"];
    if !quick {
        zoo.push(("gpt2_xl/pipeline_dp", || {
            strategies::pipeline_with_dp(models::gpt2_xl(64, 128).expect("build"), 64, 8)
                .expect("annotate")
        }));
        zoo.push(("t5_large/pipeline_dp", || {
            strategies::pipeline_with_dp(models::t5_large(64, 128, 128).expect("build"), 64, 8)
                .expect("annotate")
        }));
        zoo.push(("m6_10b/pipeline_dp", || {
            strategies::pipeline_with_dp(models::m6_10b(32).expect("build"), 32, 8)
                .expect("annotate")
        }));
        clusters.push("2x(8xV100)");
    }

    let mut reqs = Vec::new();
    for spec in &clusters {
        let cluster = Cluster::parse(spec).expect("cluster");
        for (name, build) in &zoo {
            let ir = build();
            let key = PlanKey::new(&ir, &cluster, config);
            let reference = whale_planner::plan(&ir, &cluster, config).expect("cold plan");
            reqs.push(Request {
                name: format!("{name}@{spec}"),
                ir,
                cluster: cluster.clone(),
                key,
                reference,
            });
        }
    }
    reqs
}

/// Fan `threads` workers over `reqs` from a barrier start and return the
/// aggregate QPS. Each worker issues `laps × reqs.len()` requests; with
/// `stagger` the workers start at distinct offsets (a mixed hot stream),
/// without it they walk the same order (maximal same-key contention).
fn replay(
    threads: usize,
    laps: usize,
    stagger: bool,
    reqs: &[Request],
    serve: &(impl Fn(&Request) + Sync),
) -> f64 {
    let barrier = Barrier::new(threads + 1);
    let mut elapsed = 0.0;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let barrier = &barrier;
                scope.spawn(move || {
                    let offset = if stagger { t * reqs.len() / threads } else { 0 };
                    barrier.wait();
                    for lap in 0..laps {
                        for i in 0..reqs.len() {
                            serve(&reqs[(offset + lap + i) % reqs.len()]);
                        }
                    }
                })
            })
            .collect();
        // The clock must start before the workers are released — they run
        // the moment the last party reaches the barrier, and on a loaded
        // host they can finish before this thread is rescheduled.
        let start = Instant::now();
        barrier.wait();
        for h in handles {
            h.join().expect("worker");
        }
        elapsed = start.elapsed().as_secs_f64();
    });
    (threads * laps * reqs.len()) as f64 / elapsed
}

/// Median of three replays (one warm-up lap is implicit in phase order).
fn replay_median(
    threads: usize,
    laps: usize,
    reqs: &[Request],
    serve: &(impl Fn(&Request) + Sync),
) -> f64 {
    let mut qps: Vec<f64> = (0..3)
        .map(|_| replay(threads, laps, true, reqs, serve))
        .collect();
    qps.sort_by(|a, b| a.total_cmp(b));
    qps[1]
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    header(
        "serve_bench",
        "concurrent plan serving: global-mutex deep-clone cache vs sharded single-flight service",
    );
    let config = PlannerConfig::default();
    let reqs = build_workload(quick, &config);
    let n_keys = reqs.len();
    row("unique keys", format!("{n_keys}"));
    let thread_counts: &[usize] = if quick { &[1, 2, 8] } else { &[1, 2, 4, 8, 16] };
    // Fixed request budget per replay, split across threads, so every
    // thread count measures comparable total work and the phase runs long
    // enough to swamp barrier/spawn overhead.
    let hot_total = if quick { 16_000 } else { 120_000 };

    // ---- Cold contention (service arm, 8 threads): single-flight check.
    let cold_service = PlanService::default();
    replay(8, 1, false, &reqs, &|r: &Request| {
        let plan = cold_service
            .plan_keyed(r.key, &r.ir, &r.cluster, &config)
            .expect("plan");
        assert_eq!(
            *plan, r.reference,
            "{}: served plan != serial cold compile",
            r.name
        );
    });
    let cold_stats = cold_service.stats();
    row("cold contention (8 threads)", format!("{cold_stats}"));
    assert_eq!(
        cold_stats.misses, n_keys as u64,
        "single-flight must compile each unique key exactly once"
    );
    assert_eq!(
        cold_stats.passes_run,
        6 * n_keys as u64, // full pipeline: DegreeInference … Schedule, CommOpt
        "only the elected leaders may run compile passes"
    );
    assert_eq!(
        cold_stats.requests(),
        8 * n_keys as u64,
        "every request accounted"
    );
    assert_eq!(cold_stats.hits + cold_stats.coalesced, 7 * n_keys as u64);

    // ---- Thread sweep: hot + replan phases on both arms.
    let mut sweep_rows = Vec::new();
    let mut speedup_at_8 = 0.0;
    for &threads in thread_counts {
        let hot_laps = (hot_total / (threads * n_keys)).max(1);
        // Baseline arm: the pre-PR serving path — one global mutex, a deep
        // plan clone per hit inside the critical section.
        let baseline = Mutex::new(PlanCache::default());
        for r in &reqs {
            baseline
                .lock()
                .unwrap()
                .plan_keyed(r.key, &r.ir, &r.cluster, &config)
                .expect("warm");
        }
        let baseline_hot = replay_median(threads, hot_laps, &reqs, &|r: &Request| {
            let mut cache = baseline.lock().unwrap();
            let plan = cache
                .plan_keyed(r.key, &r.ir, &r.cluster, &config)
                .expect("plan");
            let owned: ExecutionPlan = (*plan).clone();
            drop(cache);
            black_box(owned);
        });
        let baseline_replan = replay(threads, 1, true, &reqs, &|r: &Request| {
            let mut cache = baseline.lock().unwrap();
            let (plan, _) = cache
                .replan(&r.ir, &r.cluster, &config, DELTA)
                .expect("replan");
            let owned: ExecutionPlan = (*plan).clone();
            drop(cache);
            black_box(owned);
        });

        // Service arm: sharded, single-flight, Arc hits.
        let service = PlanService::default();
        for r in &reqs {
            service
                .plan_keyed(r.key, &r.ir, &r.cluster, &config)
                .expect("warm");
        }
        let service_hot = replay_median(threads, hot_laps, &reqs, &|r: &Request| {
            let plan = service
                .plan_keyed(r.key, &r.ir, &r.cluster, &config)
                .expect("plan");
            black_box(plan);
        });
        let service_replan = replay(threads, 1, true, &reqs, &|r: &Request| {
            let (plan, _) = service
                .replan(&r.ir, &r.cluster, &config, DELTA)
                .expect("replan");
            black_box(plan);
        });
        // Warm-up (n_keys) + three hot replays + one replan lap, all threads.
        let stats = service.stats();
        let expected = n_keys + 3 * threads * hot_laps * n_keys + threads * n_keys;
        assert_eq!(
            stats.requests(),
            expected as u64,
            "service counters must account every request (threads={threads})"
        );

        let hot_speedup = service_hot / baseline_hot;
        if threads == 8 {
            speedup_at_8 = hot_speedup;
        }
        row(
            &format!("{threads} thread(s) hot"),
            format!(
                "baseline {:.0} qps · service {:.0} qps · {hot_speedup:.2}x",
                baseline_hot, service_hot
            ),
        );
        sweep_rows.push(obj(vec![
            ("threads", num(threads as f64)),
            (
                "baseline",
                obj(vec![
                    ("hot_qps", num(baseline_hot)),
                    ("replan_qps", num(baseline_replan)),
                ]),
            ),
            (
                "service",
                obj(vec![
                    ("hot_qps", num(service_hot)),
                    ("replan_qps", num(service_replan)),
                ]),
            ),
            ("hot_speedup", num(hot_speedup)),
        ]));
    }

    let met = quick || speedup_at_8 >= TARGET_SPEEDUP_AT_8;
    if !quick {
        row(
            "hot speedup at 8 threads",
            format!(
                "{speedup_at_8:.2}x{}",
                if met { "" } else { "  << below target" }
            ),
        );
    }

    let doc = obj(vec![
        ("bench", s("serve_bench")),
        ("quick", JsonValue::Bool(quick)),
        ("unique_keys", num(n_keys as f64)),
        (
            "cold_contention",
            obj(vec![
                ("threads", num(8.0)),
                ("requests", num(cold_stats.requests() as f64)),
                ("misses", num(cold_stats.misses as f64)),
                ("coalesced", num(cold_stats.coalesced as f64)),
                ("hits", num(cold_stats.hits as f64)),
                ("passes_run", num(cold_stats.passes_run as f64)),
                (
                    "one_compile_per_key",
                    JsonValue::Bool(cold_stats.misses == n_keys as u64),
                ),
            ]),
        ),
        ("sweep", JsonValue::Array(sweep_rows)),
        ("hot_speedup_at_8_threads", num(speedup_at_8)),
        ("target_speedup", num(TARGET_SPEEDUP_AT_8)),
        ("targets_met", JsonValue::Bool(met)),
    ]);
    // Quick runs (CI smoke) must not clobber the committed full-run artifact.
    let path = if quick {
        "BENCH_serve_quick.json"
    } else {
        "BENCH_serve.json"
    };
    std::fs::write(path, doc.to_string_pretty() + "\n").expect("write bench artifact");
    row("artifact", path);

    assert!(
        met,
        "sharded service must serve the hot mix >= {TARGET_SPEEDUP_AT_8}x faster than the \
         global-mutex cache at 8 threads (measured {speedup_at_8:.2}x)"
    );
}
