//! Delta-replan vs cold-plan benchmark for the staged compile pipeline.
//!
//! Scenario: the auto-parallel evaluation cluster (2×(8×V100) + 2×(8×P100),
//! §7) loses part of one GPU's throughput mid-training (a
//! `ClusterDelta::GpuDegraded`). Reacting from scratch runs all five compile
//! passes on the new topology; the delta path (`PlanCache::replan`) clones
//! the cached artifacts and re-runs only Balance + Schedule. Both arms are
//! timed at the pipeline layer, on the *post-delta* cluster, so they differ
//! in exactly one thing: the passes executed. Content-addressing (the
//! `PlanKey` fingerprints) costs the same on either path and is reported as
//! a context row, not folded into the speedup.
//!
//! For pure-DP plans Balance *is* most of the planner, so there is little
//! to skip — that case is reported honestly. The acceptance target (≥ 2×)
//! is asserted on the median across the auto-parallel model set, where the
//! pipelined giant models dominate; the binary exits non-zero if it is
//! missed. Writes `BENCH_replan.json` so later PRs can track the numbers.

use std::hint::black_box;

use whale::{models, strategies, Cluster, ClusterDelta, PlanCache, PlannerConfig, WhaleIr};
use whale_bench::{header, row, time_fn, Timing};
use whale_planner::{compile, invalidation_start, CompilePipeline, PassContext, PlanKey};
use whale_sim::json::{num, obj, s, JsonValue};

const CLUSTER: &str = "2x(8xV100)+2x(8xP100)";
const TARGET_SPEEDUP: f64 = 2.0;

fn timing_json(t: &Timing) -> JsonValue {
    obj(vec![
        ("median_s", num(t.median_s)),
        ("p95_s", num(t.p95_s)),
        ("min_s", num(t.min_s)),
        ("iters", num(t.iters as f64)),
    ])
}

fn main() {
    let (warmup, iters) = (5, 31);
    header(
        "replan_bench",
        "cold plan (5 passes) vs delta replan (Balance+Schedule) on GPU degradation",
    );

    let cluster = Cluster::parse(CLUSTER).expect("cluster");
    let config = PlannerConfig::default();
    let delta = ClusterDelta::GpuDegraded { id: 0, scale: 0.5 };
    let mut after = cluster.clone();
    after.apply_delta(delta).expect("delta");

    type Case = (&'static str, fn() -> WhaleIr);
    let zoo: Vec<Case> = vec![
        ("resnet50/dp", || {
            strategies::data_parallel(models::resnet50(256).expect("build"), 256).expect("annotate")
        }),
        ("bert_large/pipeline_dp", || {
            strategies::pipeline_with_dp(models::bert_large(128, 128).expect("build"), 128, 8)
                .expect("annotate")
        }),
        ("gpt2_xl/pipeline_dp", || {
            strategies::pipeline_with_dp(models::gpt2_xl(64, 128).expect("build"), 64, 8)
                .expect("annotate")
        }),
        ("t5_large/pipeline_dp", || {
            strategies::pipeline_with_dp(models::t5_large(64, 128, 128).expect("build"), 64, 8)
                .expect("annotate")
        }),
        ("m6_10b/pipeline_dp", || {
            strategies::pipeline_with_dp(models::m6_10b(32).expect("build"), 32, 8)
                .expect("annotate")
        }),
    ];

    let mut rows = Vec::new();
    let mut speedups = Vec::new();
    for (name, build) in &zoo {
        let ir = build();

        // Sanity: the cache-level replan conserves every stage's sample
        // total and the result still simulates on the degraded cluster.
        {
            let mut cache = PlanCache::default();
            let old = cache.plan(&ir, &cluster, &config).expect("plan");
            let (new, degraded) = cache.replan(&ir, &cluster, &config, delta).expect("replan");
            let report =
                whale_sim::check_replan(&old, &new, &degraded, &whale::SimConfig::default());
            assert!(
                report.is_consistent(),
                "{name}: inconsistent replan: {:?}",
                report.issues
            );
        }

        // Cold: all five passes on the post-delta cluster.
        let cold = time_fn(&format!("{name}/cold"), warmup, iters, || {
            black_box(compile(&ir, &after, &config).expect("compile"))
        });

        // Delta: clone the artifacts cached for the pre-delta cluster
        // (exactly what `PlanCache::replan` does on a partial hit), then
        // re-run only the passes the degradation invalidates.
        let cached = compile(&ir, &cluster, &config).expect("compile");
        let cx = PassContext {
            ir: &ir,
            cluster: &after,
            config: &config,
        };
        let start = invalidation_start(&delta);
        let pipeline = CompilePipeline::standard();
        let replan = time_fn(&format!("{name}/replan"), warmup, iters, || {
            let mut state = cached.clone();
            pipeline.run_from(&cx, &mut state, start).expect("replan");
            black_box(state)
        });
        cold.print();
        replan.print();

        let speedup = cold.median_s / replan.median_s;
        row(name, format!("{speedup:.2}x (median)"));
        speedups.push(speedup);
        rows.push(obj(vec![
            ("name", s(*name)),
            ("cold", timing_json(&cold)),
            ("replan", timing_json(&replan)),
            ("speedup_median", num(speedup)),
        ]));
    }

    // Context: the content-addressing cost both paths pay identically.
    let key_ir = zoo.last().expect("zoo").1();
    let key_timing = time_fn("plan_key/m6_10b", warmup, iters, || {
        black_box(PlanKey::new(&key_ir, &after, &config))
    });
    key_timing.print();

    let mut sorted = speedups.clone();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let median = sorted[sorted.len() / 2];
    let met = median >= TARGET_SPEEDUP;
    row(
        "median speedup (auto-parallel model set)",
        format!("{median:.2}x{}", if met { "" } else { "  << below target" }),
    );

    let doc = obj(vec![
        ("bench", s("replan_bench")),
        ("cluster", s(CLUSTER)),
        ("delta", s("GpuDegraded { id: 0, scale: 0.5 }")),
        ("models", JsonValue::Array(rows)),
        ("plan_key_fingerprint", timing_json(&key_timing)),
        ("median_speedup", num(median)),
        ("target_speedup", num(TARGET_SPEEDUP)),
        ("targets_met", JsonValue::Bool(met)),
    ]);
    let path = "BENCH_replan.json";
    std::fs::write(path, doc.to_string_pretty() + "\n").expect("write BENCH_replan.json");
    row("artifact", path);

    assert!(
        met,
        "delta replan must be >= {TARGET_SPEEDUP}x faster than a cold plan (median {median:.2}x)"
    );
}
