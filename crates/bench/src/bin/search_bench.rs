//! Gate benchmark for the branch-and-bound auto-parallel search
//! (`auto_parallel_search`) against the narrow enumeration it widens
//! (`auto_parallel`).
//!
//! Runs the model zoo across heterogeneous clusters and checks, per the
//! search's acceptance targets:
//!
//! 1. the best-found simulated throughput never regresses on any cell and
//!    is strictly better on at least two;
//! 2. total wall clock stays within 3x the narrow enumeration despite
//!    covering >= 20x as many strategies;
//! 3. at least half of the expanded leaves are bounded away without a full
//!    plan + simulate.
//!
//! Writes `BENCH_search.json` (committed) in full mode; `--quick` runs a
//! 3-model single-cluster smoke with looser noise margins and writes
//! `BENCH_search_quick.json` (gitignored) for CI.

use std::hint::black_box;

use whale::{auto_parallel, auto_parallel_search, models, SearchOptions, Session};
use whale_bench::{header, row, time_fn, Timing};
use whale_sim::json::{num, obj, s, JsonValue};

const CLUSTERS: [&str; 2] = ["2x(8xV100)+2x(8xP100)", "1x(8xV100)+1x(8xP100)"];
const QUICK_CLUSTER: &str = "1x(8xV100)+1x(8xP100)";

fn timing_json(t: &Timing) -> JsonValue {
    obj(vec![
        ("median_s", num(t.median_s)),
        ("p95_s", num(t.p95_s)),
        ("min_s", num(t.min_s)),
        ("iters", num(t.iters as f64)),
    ])
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (warmup, iters) = if quick { (1, 3) } else { (2, 7) };
    header(
        "search_bench",
        "branch-and-bound strategy search vs narrow enumeration",
    );

    type ModelCase = (&'static str, usize, fn() -> whale::Graph);
    let mut zoo: Vec<ModelCase> = vec![
        ("resnet50", 256, || models::resnet50(256).expect("build")),
        ("bert_base", 256, || {
            models::bert_base(256, 128).expect("build")
        }),
        ("bert_large", 128, || {
            models::bert_large(128, 128).expect("build")
        }),
        ("gpt2_xl", 64, || models::gpt2_xl(64, 128).expect("build")),
        ("t5_large", 64, || {
            models::t5_large(64, 128, 128).expect("build")
        }),
        ("m6_10b", 32, || models::m6_10b(32).expect("build")),
    ];
    let clusters: Vec<&str> = if quick {
        zoo = vec![zoo[0], zoo[3], zoo[4]];
        vec![QUICK_CLUSTER]
    } else {
        CLUSTERS.to_vec()
    };

    let opts = SearchOptions::default();
    let mut cells = Vec::new();
    let mut narrow_total = 0.0_f64;
    let mut search_total = 0.0_f64;
    let mut narrow_strategies = 0usize;
    let mut search_strategies = 0usize;
    let mut strict_wins = 0usize;
    let mut min_bounded_fraction = 1.0_f64;
    let mut regressed = false;

    for cluster in &clusters {
        // The content-addressed plan cache would serve iterations 2+
        // without planning; disable it so both arms measure cold search.
        let session = Session::on_cluster(cluster)
            .expect("cluster")
            .plan_cache(false);
        for (name, batch, build) in &zoo {
            let narrow = auto_parallel(&session, *batch, || Ok(build())).expect("narrow");
            let wide =
                auto_parallel_search(&session, *batch, &opts, || Ok(build())).expect("search");
            let stats = wide.search.expect("search stats");
            let n_tp = narrow.stats.throughput;
            let w_tp = wide.stats.throughput;
            if w_tp < n_tp * (1.0 - 1e-9) {
                regressed = true;
            }
            if w_tp > n_tp * 1.01 {
                strict_wins += 1;
            }
            narrow_strategies += narrow.candidates.len();
            search_strategies += stats.nodes_expanded;
            min_bounded_fraction = min_bounded_fraction.min(stats.bounded_fraction());

            let t_narrow = time_fn(&format!("narrow/{name}"), warmup, iters, || {
                black_box(auto_parallel(&session, *batch, || Ok(build())).unwrap())
            });
            let t_search = time_fn(&format!("search/{name}"), warmup, iters, || {
                black_box(auto_parallel_search(&session, *batch, &opts, || Ok(build())).unwrap())
            });
            narrow_total += t_narrow.median_s;
            search_total += t_search.median_s;
            row(
                &format!("{name} @ {cluster}"),
                format!(
                    "tp {:.1} -> {:.1} samples/s, {} leaves ({} bounded), {:.2}x time",
                    n_tp,
                    w_tp,
                    stats.nodes_expanded,
                    stats.nodes_bounded,
                    t_search.median_s / t_narrow.median_s
                ),
            );
            cells.push(obj(vec![
                ("model", s(*name)),
                ("cluster", s(*cluster)),
                ("batch", num(*batch as f64)),
                (
                    "narrow",
                    obj(vec![
                        ("chosen", s(&narrow.chosen)),
                        ("throughput", num(n_tp)),
                        ("strategies", num(narrow.candidates.len() as f64)),
                        ("time", timing_json(&t_narrow)),
                    ]),
                ),
                (
                    "search",
                    obj(vec![
                        ("chosen", s(&wide.chosen)),
                        ("throughput", num(w_tp)),
                        ("leaves", num(stats.nodes_expanded as f64)),
                        ("bounded", num(stats.nodes_bounded as f64)),
                        ("planned", num(stats.nodes_planned as f64)),
                        ("pruned_planned", num(stats.nodes_pruned_planned as f64)),
                        ("simulated", num(stats.nodes_simulated as f64)),
                        ("bounded_fraction", num(stats.bounded_fraction())),
                        ("time", timing_json(&t_search)),
                    ]),
                ),
                ("throughput_ratio", num(w_tp / n_tp)),
                ("time_ratio", num(t_search.median_s / t_narrow.median_s)),
            ]));
        }
    }

    let wallclock_ratio = search_total / narrow_total;
    let strategies_ratio = search_strategies as f64 / narrow_strategies.max(1) as f64;
    row("wall-clock ratio", format!("{wallclock_ratio:.2}x"));
    row("strategies ratio", format!("{strategies_ratio:.1}x"));
    row("strict wins", format!("{strict_wins}"));
    row("min bounded fraction", format!("{min_bounded_fraction:.2}"));

    // Quick mode is a CI smoke on a 1-core container: same structure, but
    // looser wall-clock margin (noise) and a subset of the matrix.
    let (t_wallclock, t_strategies, t_strict) = if quick {
        (4.0, 15.0, 1.0)
    } else {
        (3.0, 20.0, 2.0)
    };
    let met_no_regression = !regressed;
    let met_strict = strict_wins as f64 >= t_strict;
    let met_wallclock = wallclock_ratio <= t_wallclock;
    let met_strategies = strategies_ratio >= t_strategies;
    let met_bounded = min_bounded_fraction >= 0.5;

    let doc = obj(vec![
        ("bench", s("search_bench")),
        ("mode", s(if quick { "quick" } else { "full" })),
        (
            "clusters",
            JsonValue::Array(clusters.iter().map(|c| s(*c)).collect()),
        ),
        ("cells", JsonValue::Array(cells)),
        (
            "aggregate",
            obj(vec![
                ("narrow_total_s", num(narrow_total)),
                ("search_total_s", num(search_total)),
                ("wallclock_ratio", num(wallclock_ratio)),
                ("strategies_ratio", num(strategies_ratio)),
                ("strict_wins", num(strict_wins as f64)),
                ("min_bounded_fraction", num(min_bounded_fraction)),
            ]),
        ),
        (
            "targets",
            obj(vec![
                ("no_throughput_regression", JsonValue::Bool(true)),
                ("strict_wins", num(t_strict)),
                ("wallclock_ratio_max", num(t_wallclock)),
                ("strategies_ratio_min", num(t_strategies)),
                ("bounded_fraction_min", num(0.5)),
            ]),
        ),
        (
            "targets_met",
            obj(vec![
                (
                    "no_throughput_regression",
                    JsonValue::Bool(met_no_regression),
                ),
                ("strict_wins", JsonValue::Bool(met_strict)),
                ("wallclock_ratio", JsonValue::Bool(met_wallclock)),
                ("strategies_ratio", JsonValue::Bool(met_strategies)),
                ("bounded_fraction", JsonValue::Bool(met_bounded)),
            ]),
        ),
    ]);
    let path = if quick {
        "BENCH_search_quick.json"
    } else {
        "BENCH_search.json"
    };
    std::fs::write(path, doc.to_string_pretty() + "\n").expect("write artifact");
    row("artifact", path);

    assert!(met_no_regression, "search regressed throughput on a cell");
    assert!(met_strict, "fewer than {t_strict} strictly-better cells");
    assert!(
        met_wallclock,
        "wall-clock ratio {wallclock_ratio:.2}x exceeds {t_wallclock}x"
    );
    assert!(
        met_strategies,
        "strategies ratio {strategies_ratio:.1}x below {t_strategies}x"
    );
    assert!(
        met_bounded,
        "bounded fraction {min_bounded_fraction:.2} below 0.5"
    );
}
