//! Micro-benchmarks for the discrete-event simulator: step simulation
//! across micro-batch counts, collective cost models, and the scaling-law
//! trainer.
//!
//! Formerly a Criterion bench; now runs on the in-repo harness
//! (`whale_bench::time_fn`) so the build needs no registry access.

use std::hint::black_box;
use whale::{models, strategies, Session};
use whale_bench::{header, time_fn};
use whale_hardware::{Cluster, CommModel, GpuModel};
use whale_sim::{simulate_step, simulate_training, LossModel, SimConfig};

fn main() {
    let (warmup, iters) = (3, 15);

    header(
        "sim_bench",
        "simulator hot paths (median/p95 over timed iterations)",
    );

    for micros in [4usize, 16, 35] {
        let session = Session::on_cluster("4x(8xV100)").unwrap().outer_dp(4);
        let ir = strategies::pipeline_with_dp(models::bert_large(128, 128).unwrap(), 128, micros)
            .unwrap();
        let plan = session.plan(&ir).unwrap();
        let cluster = session.cluster().clone();
        time_fn(
            &format!("simulate_step/pipeline8_micro{micros}"),
            warmup,
            iters,
            || black_box(simulate_step(&plan, &cluster, &SimConfig::default()).unwrap()),
        )
        .print();
    }

    let cluster = Cluster::homogeneous(GpuModel::V100_32GB, 32, 8);
    let comm = CommModel::new(&cluster);
    let group: Vec<usize> = (0..256).collect();
    time_fn("hierarchical_allreduce_256", warmup, iters, || {
        black_box(comm.hierarchical_allreduce(&group, 1 << 30).unwrap())
    })
    .print();

    let session = Session::on_cluster("1x(8xV100)").unwrap();
    let ir = strategies::data_parallel(models::resnet50(256).unwrap(), 256).unwrap();
    let plan = session.plan(&ir).unwrap();
    let cluster = session.cluster().clone();
    let loss = LossModel::for_params(25e6);
    time_fn("training_run_64ckpt", warmup, iters, || {
        black_box(
            simulate_training(&plan, &cluster, &SimConfig::default(), &loss, 1e7, 64, 3).unwrap(),
        )
    })
    .print();
}
