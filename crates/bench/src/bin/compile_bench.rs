//! Cold-compile benchmark: interned graph core vs the pre-refactor path.
//!
//! A *cold compile* is everything a plan service does for a never-seen
//! request: build the model graph, annotate it into Whale IR, fingerprint
//! the IR for the cache key, and run the planner. This benchmark times that
//! end-to-end path twice per zoo member:
//!
//! * **baseline** — the pre-refactor pipeline, reproduced faithfully:
//!   graph construction with interning disabled
//!   ([`whale_graph::set_default_interning`]), the original O(layers × ops)
//!   MoE annotation (retained below as `moe_hybrid_quadratic`), a flat
//!   whole-graph fingerprint walk, and the retained monolithic
//!   `plan_reference`.
//! * **interned** — the current path: structurally shared graph blocks
//!   (identical layers intern to one allocation, fingerprinted once),
//!   linear annotation, memoized per-block fingerprints, and the staged
//!   `plan()` pipeline with the Balance memo.
//!
//! Both arms must produce **bit-identical plans and fingerprints** — the
//! refactor buys time and allocations, never different output — and the
//! interned arm must allocate **strictly fewer** heap blocks (counted by a
//! wrapping global allocator, not inferred from timings).
//!
//! The headline gate is the **median cold-compile speedup across the
//! trillion-parameter zoo members** (`m6-moe-1t`, `m6-moe-1t-deep`): ≥4×.
//! The deep member is the stress case the interner exists for — 1024
//! structurally identical thin layers — while the fat 24-layer `m6-moe-1t`
//! on a 480-GPU cluster is planner-bound and shows a smaller win; both are
//! reported honestly. Writes `BENCH_compile.json`; `--quick` shrinks the
//! workload, skips the perf target (CI smoke: bit-identity + allocation
//! assertions only), and writes `BENCH_compile_quick.json` instead.

use std::alloc::{GlobalAlloc, Layout, System};
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use whale::{models, strategies, Cluster, PlannerConfig, WhaleIr};
use whale_bench::{fmt_secs, header, row};
use whale_graph::{set_default_interning, Graph};
use whale_ir::{Annotator, Primitive};
use whale_planner::ExecutionPlan;
use whale_sim::json::{num, obj, s, JsonValue};

const TARGET_MEDIAN_SPEEDUP: f64 = 4.0;

/// Constant allocation headroom granted to dense (no block reuse) members:
/// the staged pipeline retains one artifact per pass for incremental
/// replanning and the interned representation carries one extra `Arc`, a
/// model-size-independent handful of allocations that dense shallow models
/// cannot win back through block sharing.
const DENSE_ALLOC_TOLERANCE: u64 = 16;

/// Pass-through allocator that counts allocation events. `dealloc` is
/// uncounted: the assertion below is about pressure on the allocator's
/// fast path during a cold compile, and every counted event is a malloc
/// or realloc the interned path was supposed to avoid.
struct CountingAlloc;

static ALLOC_EVENTS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_EVENTS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_EVENTS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn alloc_events() -> u64 {
    ALLOC_EVENTS.load(Ordering::Relaxed)
}

/// The pre-refactor MoE annotation, retained verbatim for the baseline
/// arm: one `annotate_named` substring scan over *all* ops per expert
/// layer — O(layers × ops), the term that dominated deep-MoE cold
/// compiles before `strategies::moe_hybrid` went linear.
fn moe_hybrid_quadratic(graph: Graph, global_batch: usize) -> WhaleIr {
    let markers: Vec<String> = graph
        .ops()
        .iter()
        .filter(|op| op.name.ends_with("/moe_ffn"))
        .map(|op| op.name.trim_end_matches("moe_ffn").to_string())
        .collect();
    let mut annot = Annotator::new(graph, global_batch).set_default(Primitive::Replica);
    for layer in &markers {
        let marker = format!("{layer}moe_ffn");
        annot = annot
            .annotate_named(&marker, vec![Primitive::Split])
            .expect("annotate");
    }
    annot.finish().expect("finish")
}

#[derive(Clone, Copy)]
enum Strat {
    Moe,
    DataParallel,
}

struct Member {
    name: &'static str,
    cluster: &'static str,
    batch: usize,
    strat: Strat,
    /// Counts toward the trillion-scale median gate.
    trillion_scale: bool,
    build: fn(usize) -> Graph,
}

fn member_set(quick: bool) -> Vec<Member> {
    if quick {
        // Shrunken stand-ins with the same shape contrast: one deep MoE
        // (interner stress), one dense DP model.
        return vec![
            Member {
                name: "moe-deep-64L",
                cluster: "1x(4xV100)",
                batch: 16,
                strat: Strat::Moe,
                trillion_scale: false,
                build: |batch| {
                    models::m6_moe(
                        models::MoeConfig {
                            layers: 64,
                            seq: 64,
                            ..models::MoeConfig::m6_moe_1t_deep()
                        },
                        batch,
                    )
                    .expect("build")
                },
            },
            Member {
                name: "bert-base",
                cluster: "1x(4xV100)",
                batch: 32,
                strat: Strat::DataParallel,
                trillion_scale: false,
                build: |batch| models::bert_base(batch, 64).expect("build"),
            },
        ];
    }
    vec![
        Member {
            name: "m6-moe-1t",
            cluster: "60x(8xV100)",
            batch: 1024,
            strat: Strat::Moe,
            trillion_scale: true,
            build: |batch| models::m6_moe_1t(batch).expect("build"),
        },
        Member {
            name: "m6-moe-1t-deep",
            cluster: "1x(8xV100)",
            batch: 64,
            strat: Strat::Moe,
            trillion_scale: true,
            build: |batch| models::m6_moe_1t_deep(batch).expect("build"),
        },
        Member {
            name: "m6-moe-100b",
            cluster: "16x(8xV100)",
            batch: 1024,
            strat: Strat::Moe,
            trillion_scale: false,
            build: |batch| models::m6_moe_100b(batch).expect("build"),
        },
        Member {
            name: "memory-wall/bert-large",
            cluster: "1x(4xV100)",
            batch: 128,
            strat: Strat::DataParallel,
            trillion_scale: false,
            build: |batch| models::bert_large(batch, 128).expect("build"),
        },
    ]
}

/// One cold compile: build → annotate → fingerprint → plan. Returns the
/// plan and the IR fingerprint words for the bit-identity checks.
fn cold_compile(
    m: &Member,
    cluster: &Cluster,
    config: &PlannerConfig,
    baseline: bool,
) -> (ExecutionPlan, u64) {
    let was = set_default_interning(!baseline);
    let graph = (m.build)(m.batch);
    let ir = match (m.strat, baseline) {
        (Strat::Moe, true) => moe_hybrid_quadratic(graph, m.batch),
        (Strat::Moe, false) => strategies::moe_hybrid(graph, m.batch).expect("annotate"),
        (Strat::DataParallel, _) => strategies::data_parallel(graph, m.batch).expect("annotate"),
    };
    let fp = ir.fingerprint();
    let plan = if baseline {
        whale_planner::planner::plan_reference(&ir, cluster, config).expect("plan")
    } else {
        whale_planner::plan(&ir, cluster, config).expect("plan")
    };
    set_default_interning(was);
    (plan, fp.0)
}

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.total_cmp(b));
    let n = samples.len();
    if n % 2 == 1 {
        samples[n / 2]
    } else {
        0.5 * (samples[n / 2 - 1] + samples[n / 2])
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    header(
        "compile_bench",
        "cold compile (build + annotate + fingerprint + plan): interned graph core vs pre-refactor path",
    );
    let config = PlannerConfig::default();
    let members = member_set(quick);
    let rounds = if quick { 2 } else { 5 };

    let mut member_rows = Vec::new();
    let mut trillion_speedups: Vec<f64> = Vec::new();
    let mut total_base_allocs = 0u64;
    let mut total_fast_allocs = 0u64;
    for m in &members {
        let cluster = Cluster::parse(m.cluster).expect("cluster");

        // Warm-up round: pin down bit-identity of plan and fingerprint
        // across arms, and prime the process-global interner — the first
        // interned compile of a model *pays* allocations to populate the
        // table; every later request amortizes them, which is the hot path
        // the allocation gate is about.
        let (base_plan, base_fp) = cold_compile(m, &cluster, &config, true);
        let (fast_plan, fast_fp) = cold_compile(m, &cluster, &config, false);
        assert_eq!(
            base_fp, fast_fp,
            "{}: interned fingerprint must equal the flat-walk fingerprint",
            m.name
        );
        assert_eq!(
            base_plan, fast_plan,
            "{}: interned-path plan must be bit-identical to plan_reference",
            m.name
        );
        drop((base_plan, fast_plan));

        // Timing rounds, arms interleaved so clock drift and allocator
        // state hit both equally; each round also counts allocation
        // events. The interner table is process-global and append-only, so
        // these rounds measure the steady state a plan service lives in
        // (blocks already interned by earlier requests); the allocation
        // assertion uses the per-arm minimum (the deterministic floor,
        // free of one-off lazy-init noise).
        let mut base_times = Vec::with_capacity(rounds);
        let mut fast_times = Vec::with_capacity(rounds);
        let mut base_allocs = u64::MAX;
        let mut fast_allocs = u64::MAX;
        for _ in 0..rounds {
            let a = alloc_events();
            let t = Instant::now();
            black_box(cold_compile(m, &cluster, &config, true));
            base_times.push(t.elapsed().as_secs_f64());
            base_allocs = base_allocs.min(alloc_events() - a);
            let a = alloc_events();
            let t = Instant::now();
            black_box(cold_compile(m, &cluster, &config, false));
            fast_times.push(t.elapsed().as_secs_f64());
            fast_allocs = fast_allocs.min(alloc_events() - a);
        }
        // Allocation gate. Block-structured members (the interner's
        // target) must be strictly below the baseline: every repeated
        // layer block collapses to one inline segment instead of per-op
        // storage. Dense DP members have almost no block reuse to win
        // from, so for them only the *constant* overhead of the staged
        // pipeline (per-pass artifacts kept for incremental replanning,
        // plus the interned graph's second `Arc`) is tolerated; it must
        // not scale with the model. The member-set total is gated
        // strictly below the baseline after the loop.
        match m.strat {
            Strat::Moe => assert!(
                fast_allocs < base_allocs,
                "{}: a warm-interner cold compile of a block-structured model must \
                 allocate strictly less than the baseline (baseline {base_allocs}, \
                 interned {fast_allocs})",
                m.name
            ),
            Strat::DataParallel => assert!(
                fast_allocs <= base_allocs + DENSE_ALLOC_TOLERANCE,
                "{}: a warm-interner cold compile of a dense model may exceed the \
                 baseline only by the fixed pipeline overhead of {DENSE_ALLOC_TOLERANCE} \
                 allocations (baseline {base_allocs}, interned {fast_allocs})",
                m.name
            ),
        }
        total_base_allocs += base_allocs;
        total_fast_allocs += fast_allocs;
        let base_med = median(&mut base_times);
        let fast_med = median(&mut fast_times);
        let speedup = base_med / fast_med;
        if m.trillion_scale {
            trillion_speedups.push(speedup);
        }
        row(
            m.name,
            format!(
                "baseline {} · interned {} · {speedup:.2}x · allocs {} -> {}",
                fmt_secs(base_med),
                fmt_secs(fast_med),
                base_allocs,
                fast_allocs
            ),
        );
        member_rows.push(obj(vec![
            ("name", s(m.name)),
            ("cluster", s(m.cluster)),
            ("batch", num(m.batch as f64)),
            ("trillion_scale", JsonValue::Bool(m.trillion_scale)),
            ("baseline_cold_s", num(base_med)),
            ("interned_cold_s", num(fast_med)),
            ("speedup", num(speedup)),
            ("baseline_allocs", num(base_allocs as f64)),
            ("interned_allocs", num(fast_allocs as f64)),
            ("fingerprint", s(format!("{base_fp:016x}"))),
            ("plan_bit_identical", JsonValue::Bool(true)),
        ]));
    }

    assert!(
        total_fast_allocs < total_base_allocs,
        "across the member set, the interned hot path must allocate strictly less \
         than the baseline (baseline {total_base_allocs}, interned {total_fast_allocs})"
    );
    row(
        "allocs (all members)",
        format!("{total_base_allocs} -> {total_fast_allocs}"),
    );

    let median_trillion = if trillion_speedups.is_empty() {
        f64::NAN
    } else {
        median(&mut trillion_speedups)
    };
    let met = quick || median_trillion >= TARGET_MEDIAN_SPEEDUP;
    if !quick {
        row(
            "median speedup (trillion-scale members)",
            format!(
                "{median_trillion:.2}x{}",
                if met { "" } else { "  << below target" }
            ),
        );
    }

    let doc = obj(vec![
        ("bench", s("compile_bench")),
        ("quick", JsonValue::Bool(quick)),
        ("rounds", num(rounds as f64)),
        ("members", JsonValue::Array(member_rows)),
        (
            "median_speedup_trillion_scale",
            if median_trillion.is_nan() {
                JsonValue::Null
            } else {
                num(median_trillion)
            },
        ),
        ("target_median_speedup", num(TARGET_MEDIAN_SPEEDUP)),
        ("total_baseline_allocs", num(total_base_allocs as f64)),
        ("total_interned_allocs", num(total_fast_allocs as f64)),
        ("targets_met", JsonValue::Bool(met)),
    ]);
    // Quick runs (CI smoke) must not clobber the committed full-run artifact.
    let path = if quick {
        "BENCH_compile_quick.json"
    } else {
        "BENCH_compile.json"
    };
    std::fs::write(path, doc.to_string_pretty() + "\n").expect("write bench artifact");
    row("artifact", path);

    assert!(
        met,
        "interned cold compiles must be >= {TARGET_MEDIAN_SPEEDUP}x faster (median over \
         trillion-scale zoo members; measured {median_trillion:.2}x)"
    );
}
