//! Before/after micro-benchmarks for the planner/simulator fast path.
//!
//! Two measurements, both on the in-repo harness (no Criterion):
//!
//! 1. `auto_parallel` on a 32-GPU heterogeneous cluster across the model
//!    zoo. "Before" disables every fast-path ingredient — serial candidate
//!    loop, no cost memoization, polling sim scheduler — reproducing the
//!    seed search; "after" is the default fast path.
//! 2. `simulate_step` on a deep pipeline (16 stages × 64 micro batches),
//!    heap scheduler vs the polling reference.
//!
//! Writes `BENCH_planner.json` (pretty, stable key order) so later PRs can
//! track the perf trajectory; see EXPERIMENTS.md for how to read it.

use std::hint::black_box;

use whale::{auto_parallel_opts, models, strategies, AutoOptions, Session};
use whale_bench::{header, row, time_fn, Timing};
use whale_sim::json::{num, obj, s, JsonValue};

const AUTO_CLUSTER: &str = "2x(8xV100)+2x(8xP100)";
const PIPE_CLUSTER: &str = "16xV100";
const PIPE_MICRO: usize = 64;

/// Seed-equivalent search: serial, uncached, polling scheduler.
const BEFORE: AutoOptions = AutoOptions {
    search_threads: 1,
    memoize: false,
    reference_sim: true,
};

fn timing_json(t: &Timing) -> JsonValue {
    obj(vec![
        ("median_s", num(t.median_s)),
        ("p95_s", num(t.p95_s)),
        ("min_s", num(t.min_s)),
        ("iters", num(t.iters as f64)),
    ])
}

fn speedup_row(label: &str, before: &Timing, after: &Timing) -> (f64, JsonValue) {
    let speedup = before.median_s / after.median_s;
    row(label, format!("{speedup:.2}x (median)"));
    let json = obj(vec![
        ("name", s(label)),
        ("before", timing_json(before)),
        ("after", timing_json(after)),
        ("speedup_median", num(speedup)),
    ]);
    (speedup, json)
}

fn main() {
    let (warmup, iters) = (2, 9);
    header(
        "fastpath_bench",
        "planner/simulator fast path, before (seed-equivalent) vs after",
    );

    // --- auto_parallel across the model zoo on 32 heterogeneous GPUs ---
    // The paper's evaluation workloads (§7): ResNet50 for the hetero-DP
    // experiment, BERT/T5/GPT/M6-10B for giant-model search.
    type ModelCase = (&'static str, usize, fn() -> whale::Graph);
    let zoo: Vec<ModelCase> = vec![
        ("resnet50", 256, || models::resnet50(256).expect("build")),
        ("bert_base", 256, || {
            models::bert_base(256, 128).expect("build")
        }),
        ("bert_large", 128, || {
            models::bert_large(128, 128).expect("build")
        }),
        ("gpt2_xl", 64, || models::gpt2_xl(64, 128).expect("build")),
        ("t5_large", 64, || {
            models::t5_large(64, 128, 128).expect("build")
        }),
        ("m6_10b", 32, || models::m6_10b(32).expect("build")),
    ];
    // The content-addressed plan cache would serve iterations 2+ without
    // planning at all; disable it so both arms measure cold planning.
    let session = Session::on_cluster(AUTO_CLUSTER)
        .expect("cluster")
        .plan_cache(false);
    let mut auto_rows = Vec::new();
    let mut auto_speedups = Vec::new();
    for (name, batch, build) in zoo {
        // The merge is deterministic and the caches bit-identical, so both
        // arms must agree on the full report — cheap end-to-end sanity.
        let slow = auto_parallel_opts(&session, batch, &BEFORE, || Ok(build()));
        let fast = auto_parallel_opts(&session, batch, &AutoOptions::default(), || Ok(build()));
        match (&slow, &fast) {
            (Ok(a), Ok(b)) => assert_eq!(a, b, "{name}: fast path changed the report"),
            (a, b) => panic!("{name}: search failed (before {a:?} / after {b:?})"),
        }
        let before = time_fn(&format!("auto/{name}/before"), warmup, iters, || {
            black_box(auto_parallel_opts(&session, batch, &BEFORE, || Ok(build())).unwrap())
        });
        let after = time_fn(&format!("auto/{name}/after"), warmup, iters, || {
            black_box(
                auto_parallel_opts(&session, batch, &AutoOptions::default(), || Ok(build()))
                    .unwrap(),
            )
        });
        before.print();
        after.print();
        let (speedup, json) = speedup_row(&format!("auto/{name}"), &before, &after);
        auto_speedups.push(speedup);
        auto_rows.push(json);
    }
    auto_speedups.sort_by(|a, b| a.total_cmp(b));
    let auto_median = auto_speedups[auto_speedups.len() / 2];
    row("auto_parallel median speedup", format!("{auto_median:.2}x"));

    // --- deep-pipeline simulate_step: heap vs polling scheduler ---
    let pipe_session = Session::on_cluster(PIPE_CLUSTER)
        .expect("cluster")
        .plan_cache(false);
    let ir = strategies::pipeline_only(
        models::bert_large(256, 128).expect("build"),
        256,
        PIPE_MICRO,
    )
    .expect("annotate");
    let plan = pipe_session.plan(&ir).expect("plan");
    let stages = plan.stages.len();
    row(
        "deep pipeline",
        format!("{stages} stages x {PIPE_MICRO} micro"),
    );
    assert_eq!(
        pipe_session.step_plan(&plan).unwrap(),
        pipe_session.step_plan_reference(&plan).unwrap(),
        "heap scheduler diverged from the polling reference"
    );
    let sim_before = time_fn("sim/deep_pipeline/before", warmup, iters * 3, || {
        black_box(pipe_session.step_plan_reference(&plan).unwrap())
    });
    let sim_after = time_fn("sim/deep_pipeline/after", warmup, iters * 3, || {
        black_box(pipe_session.step_plan(&plan).unwrap())
    });
    sim_before.print();
    sim_after.print();
    let (sim_speedup, sim_json) = speedup_row("sim/deep_pipeline", &sim_before, &sim_after);

    // --- artifact ---
    let doc = obj(vec![
        ("bench", s("fastpath_bench")),
        ("auto_cluster", s(AUTO_CLUSTER)),
        ("auto_parallel", JsonValue::Array(auto_rows)),
        ("auto_parallel_median_speedup", num(auto_median)),
        (
            "deep_pipeline_sim",
            obj(vec![
                ("cluster", s(PIPE_CLUSTER)),
                ("stages", num(stages as f64)),
                ("micro_batches", num(PIPE_MICRO as f64)),
                ("detail", sim_json),
            ]),
        ),
        (
            "targets",
            obj(vec![
                ("auto_parallel_speedup", num(3.0)),
                ("deep_pipeline_sim_speedup", num(2.0)),
            ]),
        ),
        (
            "targets_met",
            obj(vec![
                ("auto_parallel", JsonValue::Bool(auto_median >= 3.0)),
                ("deep_pipeline_sim", JsonValue::Bool(sim_speedup >= 2.0)),
            ]),
        ),
    ]);
    let path = "BENCH_planner.json";
    std::fs::write(path, doc.to_string_pretty() + "\n").expect("write BENCH_planner.json");
    row("artifact", path);
}
