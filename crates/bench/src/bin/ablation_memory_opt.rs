//! Ablation — the memory-optimization stack Whale integrates (§4):
//! recomputation \[9\], AMP \[26\], ZeRO stages \[31\], and ZeRO-Offload \[34\].
//!
//! Measures per-GPU memory and step time for BERT-Large data parallelism on
//! 8 V100s under each option, and shows which combinations unlock an
//! otherwise-OOM M6-10B replica.

use whale::{models, strategies, Optimizer, Session, TrainingConfig, ZeroStage};
use whale_bench::{fmt_secs, header};

fn run(label: &str, training: TrainingConfig) {
    let session = Session::on_cluster("1x(8xV100)")
        .unwrap()
        .training(training);
    let batch = 256;
    let ir = strategies::data_parallel(models::bert_large(batch, 128).unwrap(), batch).unwrap();
    let plan = session.plan(&ir).unwrap();
    let out = session.step_plan(&plan).unwrap();
    let peak = plan.memory_per_gpu().values().copied().max().unwrap_or(0);
    println!(
        "  {:<34} {:>9.1} GiB {:>12} {:>6}",
        label,
        peak as f64 / (1u64 << 30) as f64,
        fmt_secs(out.stats.step_time),
        if out.stats.has_oom() { "OOM" } else { "ok" }
    );
}

fn main() {
    header(
        "Ablation",
        "memory optimizations: recompute / AMP / ZeRO / offload (BERT-Large DP x8 V100)",
    );
    let base = TrainingConfig {
        optimizer: Optimizer::Adam,
        ..TrainingConfig::default()
    };
    println!(
        "\n  {:<34} {:>13} {:>12} {:>6}",
        "configuration", "peak mem/GPU", "step", ""
    );
    run("baseline (Adam, fp32)", base);
    run(
        "+ recompute",
        TrainingConfig {
            recompute: true,
            ..base
        },
    );
    run("+ AMP", TrainingConfig { amp: true, ..base });
    run(
        "+ ZeRO-1 (optimizer states)",
        TrainingConfig {
            zero: ZeroStage::OptimizerState,
            ..base
        },
    );
    run(
        "+ ZeRO-2 (grads + states)",
        TrainingConfig {
            zero: ZeroStage::Gradients,
            ..base
        },
    );
    run(
        "+ ZeRO-3 (params too)",
        TrainingConfig {
            zero: ZeroStage::Parameters,
            ..base
        },
    );
    run(
        "+ ZeRO-Offload",
        TrainingConfig {
            offload: true,
            amp: true,
            ..base
        },
    );
    run(
        "everything",
        TrainingConfig {
            recompute: true,
            amp: true,
            zero: ZeroStage::Parameters,
            offload: true,
            ..base
        },
    );

    // The unlock test: a 10B dense replica cannot fit a 32 GB V100 without
    // the stack.
    println!("\n  M6-10B single DP replica on 8xV100 (needs ~150 GiB naive):");
    for (label, t) in [
        (
            "recompute + AMP only",
            TrainingConfig {
                optimizer: Optimizer::Adafactor,
                recompute: true,
                amp: true,
                ..TrainingConfig::default()
            },
        ),
        (
            "recompute + AMP + ZeRO-3 + offload",
            TrainingConfig {
                optimizer: Optimizer::Adafactor,
                recompute: true,
                amp: true,
                zero: ZeroStage::Parameters,
                offload: true,
                ..TrainingConfig::default()
            },
        ),
    ] {
        let session = Session::on_cluster("1x(8xV100)").unwrap().training(t);
        let ir = strategies::data_parallel(models::m6_10b(32).unwrap(), 32).unwrap();
        let plan = session.plan(&ir);
        match plan {
            Ok(plan) => {
                let out = session.step_plan(&plan).unwrap();
                let peak = plan.memory_per_gpu().values().copied().max().unwrap_or(0);
                println!(
                    "  {:<34} {:>9.1} GiB  {}",
                    label,
                    peak as f64 / (1u64 << 30) as f64,
                    if out.stats.has_oom() { "OOM" } else { "fits!" }
                );
            }
            Err(e) => println!("  {label:<34} planning failed: {e}"),
        }
    }
    println!("\n  expected shape: each optimization peels off its own slice of the");
    println!("  footprint; the full ZeRO stack turns a 10B dense replica from");
    println!("  impossible to feasible — exactly why Whale integrates them (§4).");
}
