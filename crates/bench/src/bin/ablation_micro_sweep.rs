//! Ablation — micro-batch count sweep (pipeline bubble amortization).
//!
//! §5.1 trains M6-10B with 35 micro batches. This sweep shows why: bubbles
//! shrink as `(S−1)/(S−1+M)` while activation memory grows with the warm-up
//! depth, so throughput saturates.

use whale::{models, strategies, Session};
use whale_bench::{fmt_secs, header};

fn main() {
    header(
        "Ablation",
        "micro-batch sweep for an 8-stage BERT-Large pipeline",
    );
    println!(
        "\n  {:>7} {:>12} {:>14} {:>10} {:>14}",
        "micros", "step", "throughput", "bubble", "peak memory"
    );
    for micros in [1usize, 2, 4, 8, 16, 35, 64] {
        let session = Session::on_cluster("1x(8xV100)").unwrap();
        let batch = 128;
        let ir = strategies::pipeline_only(models::bert_large(batch, 128).unwrap(), batch, micros)
            .unwrap();
        let plan = session.plan(&ir).unwrap();
        let out = session.step_plan(&plan).unwrap();
        let peak = plan.memory_per_gpu().values().copied().max().unwrap_or(0);
        println!(
            "  {:>7} {:>12} {:>11.1}/s {:>9.1}% {:>11.1} GiB",
            micros,
            fmt_secs(out.stats.step_time),
            out.stats.throughput,
            out.stats.bubble_ratio() * 100.0,
            peak as f64 / (1u64 << 30) as f64
        );
    }
    println!("\n  expected shape: bubble falls roughly as (S-1)/(S-1+M); throughput");
    println!("  saturates past M ≈ 4·S, which is why the paper settles at 35.");
}
