//! Ablation — synchronous vs asynchronous pipelining (§6, "Asynchronous
//! Training" / PipeMare \[46\]).
//!
//! The paper leaves asynchronous pipelines to future work because stale
//! gradients threaten convergence. This extension quantifies the trade:
//! removing the flush removes the bubble (pure throughput win), but each
//! sample is worth less, so *time to a target loss* can go either way.

use whale::{models, strategies, LossModel, ScheduleKind, Session};
use whale_bench::{fmt_secs, header, row};

fn main() {
    header(
        "Ablation (extension)",
        "synchronous 1F1B vs asynchronous no-flush pipeline (PipeMare-style)",
    );
    let batch = 128;
    let micros = 8;
    let ir = || {
        strategies::pipeline_only(models::bert_large(batch, 128).unwrap(), batch, micros).unwrap()
    };

    let sync_session = Session::on_cluster("1x(8xV100)")
        .unwrap()
        .schedule(ScheduleKind::BackwardFirst);
    let async_session = Session::on_cluster("1x(8xV100)")
        .unwrap()
        .schedule(ScheduleKind::AsyncNoFlush);

    let sync_stats = sync_session.step(&ir()).unwrap().stats;
    let async_stats = async_session.step(&ir()).unwrap().stats;

    println!();
    row("1F1B step time", fmt_secs(sync_stats.step_time));
    row("async step time", fmt_secs(async_stats.step_time));
    row(
        "raw throughput gain",
        format!("{:.2}x", sync_stats.step_time / async_stats.step_time),
    );
    row(
        "1F1B bubble",
        format!("{:.1}%", sync_stats.bubble_ratio() * 100.0),
    );

    // Time-to-loss: the async run discounts each sample (stale gradients).
    let target_loss = 9.0;
    let sync_loss = LossModel::for_params(340e6);
    let async_loss = sync_loss.with_sample_efficiency(0.7);
    let solve_samples = |m: &LossModel| {
        // Invert L(D) = target for the data term.
        let residual = target_loss
            - m.l_infinity
            - m.capacity_coeff * m.effective_params.powf(-m.capacity_exponent);
        (m.data_coeff / residual).powf(1.0 / m.data_exponent) / m.sample_efficiency
    };
    let sync_need = solve_samples(&sync_loss);
    let async_need = solve_samples(&async_loss);
    let sync_wall = sync_need / sync_stats.throughput;
    let async_wall = async_need / async_stats.throughput;
    println!();
    row(
        "samples to reach loss 9.0 (sync)",
        format!("{:.1}M", sync_need / 1e6),
    );
    row(
        "samples to reach loss 9.0 (async, 0.7 efficiency)",
        format!("{:.1}M", async_need / 1e6),
    );
    row("wall time to loss 9.0 (sync)", fmt_secs(sync_wall));
    row("wall time to loss 9.0 (async)", fmt_secs(async_wall));
    row(
        "async net win",
        format!(
            "{:.2}x {}",
            sync_wall / async_wall,
            if async_wall < sync_wall {
                "(faster)"
            } else {
                "(slower!)"
            }
        ),
    );
    println!("\n  expected shape: async wins raw steps/sec by exactly the bubble");
    println!("  ratio, but stale-gradient inefficiency can erase the win — which");
    println!("  is why the paper (§6) sticks to synchronous training for now.");
}
