//! Fleet-scale multi-tenant serving under continuous churn.
//!
//! Scenario: a 4-node heterogeneous pool (2×(4×V100) + 2×(4×P100)) serves a
//! saturating Poisson stream of training jobs — models sampled from the
//! fleet zoo, 2–8 GPU requests, priorities, SLOs — while a seeded fault
//! trace degrades, crashes, heals, and joins hardware underneath them. Two
//! fleets consume the *same* workload and the *same* churn:
//!
//! * **elastic** — the `whale_sim::fleet` scheduler: partial grants,
//!   shrink/preempt carving for high-priority arrivals, re-expansion on
//!   heal, checkpoint rollback plus cached delta replans on crashes, all
//!   compiled through one shared `PlanService`;
//! * **kill-and-requeue** — all-or-nothing admission with head-of-line
//!   blocking, static plans that straggle through degradations, and any
//!   crash inside a binding restarts the job from sample zero.
//!
//! Both runs are deterministic, so the headline — committed samples per
//! wall-clock second, fleet-wide — is exactly reproducible. Three gates:
//!
//! 1. elastic goodput ≥ 1.5× the kill-and-requeue baseline on the pinned
//!    scenario (secondary seeds are reported for context, not gated);
//! 2. recovery stays bounded: elastic p99 time-to-recover under
//!    `TTR_P99_BOUND_S` and zero failed (non-rejected) jobs;
//! 3. the shared compile service sustains a concurrent burst — every
//!    request accounted (`requests()` matches issuers × issues, i.e. zero
//!    hung or dropped), counters consistent.
//!
//! Writes `BENCH_fleet.json`; `--quick` shrinks the horizon, skips the
//! perf gate, and writes `BENCH_fleet_quick.json` (CI smoke).

use std::sync::Arc;

use whale_bench::{header, row};
use whale_hardware::Cluster;
use whale_planner::{PlanService, PlannerConfig};
use whale_sim::json::{num, obj, s, JsonValue};
use whale_sim::{default_templates, FaultModel, FleetConfig, FleetReport, FleetSim};

const POOL: &str = "2x(4xV100)+2x(4xP100)";
const TARGET_RATIO: f64 = 1.5;
const TTR_P99_BOUND_S: f64 = 600.0;
const HORIZON_S: f64 = 20_000.0;
const ARRIVAL_MEAN_S: f64 = 150.0;
const MTBF_S: f64 = 500.0;
const MTTR_S: f64 = 800.0;
const PRIMARY_SEED: u64 = 42;
const CONTEXT_SEEDS: &[u64] = &[7, 1776];
const BURST_THREADS: usize = 8;
const BURST_ROUNDS: usize = 4;

fn config(seed: u64, horizon: f64, elastic: bool) -> FleetConfig {
    FleetConfig {
        seed,
        horizon_s: horizon,
        arrival_mean_s: ARRIVAL_MEAN_S,
        gpu_choices: vec![2, 4, 8],
        elastic,
        faults: FaultModel {
            mtbf_samples: MTBF_S,
            mttr_samples: MTTR_S,
            seed: seed + 1,
        },
        ..FleetConfig::default()
    }
}

fn run(seed: u64, horizon: f64, elastic: bool) -> FleetReport {
    let pool = Cluster::parse(POOL).expect("pool");
    FleetSim::new(pool, default_templates(), config(seed, horizon, elastic))
        .expect("fleet setup")
        .run()
        .expect("fleet run")
}

fn fleet_json(r: &FleetReport) -> JsonValue {
    let st = &r.stats;
    obj(vec![
        ("goodput", num(st.goodput)),
        ("submitted", num(st.submitted as f64)),
        ("completed", num(st.completed as f64)),
        ("rejected", num(st.rejected as f64)),
        ("failed", num(st.failed as f64)),
        ("kills", num(st.kills as f64)),
        ("shrinks", num(st.shrinks as f64)),
        ("expands", num(st.expands as f64)),
        ("preemptions", num(st.preemptions as f64)),
        ("insufficient_events", num(st.insufficient_events as f64)),
        ("samples_lost", num(st.samples_lost)),
        ("mean_queue_wait_s", num(st.mean_queue_wait_s)),
        ("slo_met", num(st.slo_met as f64)),
        ("slo_missed", num(st.slo_missed as f64)),
        (
            "ttr_p50_s",
            st.recovery.ttr_p50().map_or(JsonValue::Null, num),
        ),
        (
            "ttr_p99_s",
            st.recovery.ttr_p99().map_or(JsonValue::Null, num),
        ),
        ("replans_cached", num(st.recovery.replans_cached as f64)),
        ("replans_full", num(st.recovery.replans_full as f64)),
    ])
}

/// Concurrent burst against one shared service: every thread plans the
/// whole zoo-on-slices mix repeatedly. Returns (qps, requests_issued,
/// requests_accounted).
fn compile_burst(quick: bool) -> (f64, u64, u64) {
    let pool = Cluster::parse(POOL).expect("pool");
    let templates = default_templates();
    let planner_cfg = PlannerConfig::default();
    let service = Arc::new(PlanService::default());
    // The slice shapes an elastic fleet actually compiles: leading prefixes
    // of the pool at several sizes.
    let sizes: &[usize] = if quick { &[1, 2] } else { &[1, 2, 4, 8] };
    let slices: Vec<Cluster> = sizes
        .iter()
        .map(|&n| pool.subcluster(&(0..n).collect::<Vec<_>>()).expect("slice"))
        .collect();
    let rounds = if quick { 1 } else { BURST_ROUNDS };
    let threads = if quick { 2 } else { BURST_THREADS };

    let start = std::time::Instant::now();
    let issued_per_thread = (rounds * slices.len() * templates.len()) as u64;
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let service = Arc::clone(&service);
            let templates = &templates;
            let slices = &slices;
            let planner_cfg = &planner_cfg;
            scope.spawn(move || {
                for _ in 0..rounds {
                    for slice in slices {
                        for t in templates {
                            service.plan(&t.ir, slice, planner_cfg).expect("burst plan");
                        }
                    }
                }
            });
        }
    });
    let elapsed = start.elapsed().as_secs_f64();
    let issued = issued_per_thread * threads as u64;
    let accounted = service.stats().requests();
    (issued as f64 / elapsed.max(1e-9), issued, accounted)
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let horizon = if quick { 4_000.0 } else { HORIZON_S };
    header(
        "fleet_bench",
        "elastic multi-tenant fleet vs kill-and-requeue under continuous churn",
    );
    row("pool", POOL);
    row(
        "scenario",
        format!(
            "horizon {horizon:.0}s, arrival {ARRIVAL_MEAN_S:.0}s, \
             mtbf {MTBF_S:.0}s, mttr {MTTR_S:.0}s, seed {PRIMARY_SEED}"
        ),
    );

    let elastic = run(PRIMARY_SEED, horizon, true);
    let baseline = run(PRIMARY_SEED, horizon, false);
    let ratio = elastic.stats.goodput / baseline.stats.goodput.max(1e-9);
    row(
        "elastic",
        format!(
            "{:.0} samples/s ({} completed, {} shrinks, {} expands, {} preempts)",
            elastic.stats.goodput,
            elastic.stats.completed,
            elastic.stats.shrinks,
            elastic.stats.expands,
            elastic.stats.preemptions
        ),
    );
    row(
        "kill-and-requeue",
        format!(
            "{:.0} samples/s ({} completed, {} kills, lost {:.0})",
            baseline.stats.goodput,
            baseline.stats.completed,
            baseline.stats.kills,
            baseline.stats.samples_lost
        ),
    );
    row("goodput ratio", format!("{ratio:.2}x"));

    let mut context_rows = Vec::new();
    if !quick {
        for &seed in CONTEXT_SEEDS {
            let e = run(seed, horizon, true);
            let b = run(seed, horizon, false);
            let r = e.stats.goodput / b.stats.goodput.max(1e-9);
            row(
                format!("context seed {seed}").as_str(),
                format!(
                    "{:.0} vs {:.0} samples/s ({r:.2}x)",
                    e.stats.goodput, b.stats.goodput
                ),
            );
            context_rows.push(obj(vec![
                ("seed", num(seed as f64)),
                ("elastic_goodput", num(e.stats.goodput)),
                ("baseline_goodput", num(b.stats.goodput)),
                ("goodput_ratio", num(r)),
            ]));
        }
    }

    let p99 = elastic.stats.recovery.ttr_p99();
    row(
        "elastic ttr",
        match (elastic.stats.recovery.ttr_p50(), p99) {
            (Some(p50), Some(p99)) => format!("p50 {p50:.1}s, p99 {p99:.1}s"),
            _ => "no faults struck".into(),
        },
    );

    let (qps, issued, accounted) = compile_burst(quick);
    row(
        "compile burst",
        format!("{qps:.0} req/s across {issued} requests, {accounted} accounted"),
    );

    let ttr_bounded = p99.is_none_or(|p| p <= TTR_P99_BOUND_S);
    let zero_hung = issued == accounted;
    let no_failures = elastic.stats.failed == 0;
    let perf_met = quick || ratio >= TARGET_RATIO;
    let met = perf_met && ttr_bounded && zero_hung && no_failures;

    let doc = obj(vec![
        ("bench", s("fleet_bench")),
        ("quick", JsonValue::Bool(quick)),
        ("pool", s(POOL)),
        ("horizon_s", num(horizon)),
        ("arrival_mean_s", num(ARRIVAL_MEAN_S)),
        ("mtbf_s", num(MTBF_S)),
        ("mttr_s", num(MTTR_S)),
        ("seed", num(PRIMARY_SEED as f64)),
        ("elastic", fleet_json(&elastic)),
        ("baseline", fleet_json(&baseline)),
        ("goodput_ratio", num(ratio)),
        ("target_ratio", num(TARGET_RATIO)),
        ("context_seeds", JsonValue::Array(context_rows)),
        ("ttr_p99_bound_s", num(TTR_P99_BOUND_S)),
        ("burst_qps", num(qps)),
        ("burst_issued", num(issued as f64)),
        ("burst_accounted", num(accounted as f64)),
        ("targets_met", JsonValue::Bool(met)),
    ]);
    let path = if quick {
        "BENCH_fleet_quick.json"
    } else {
        "BENCH_fleet.json"
    };
    std::fs::write(path, doc.to_string_pretty() + "\n").expect("write artifact");
    row("artifact", path);

    assert!(
        zero_hung,
        "compile burst dropped requests: issued {issued}, accounted {accounted}"
    );
    assert!(
        no_failures,
        "elastic fleet must not fail jobs (got {})",
        elastic.stats.failed
    );
    assert!(
        ttr_bounded,
        "elastic p99 TTR {:.1}s exceeds the {TTR_P99_BOUND_S:.0}s bound",
        p99.unwrap_or(f64::NAN)
    );
    assert!(
        perf_met,
        "elastic goodput must be >= {TARGET_RATIO}x kill-and-requeue (got {ratio:.2}x)"
    );
}
