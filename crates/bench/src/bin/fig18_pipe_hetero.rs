//! Fig. 18 + Table 3 — hardware-aware pipeline parallelism on heterogeneous
//! GPUs.
//!
//! Paper setup: BERT-Large and T5-Large partitioned into 4 pipeline stages
//! over 4 V100-32GB + 4 P100-16GB, with data parallelism over the whole
//! pipeline. The baseline partitions stages FLOP-evenly and places the
//! lower-memory GPUs (P100) on the earlier stages (which hold more in-flight
//! activations); the hardware-aware policy applies Algorithm 3. Paper
//! results: ~20 % speedup (Fig. 18) and ~1.4× V100 utilization (Table 3).

use whale::{strategies, ScheduleKind, Session, StepStats};
use whale_bench::{fmt_secs, header};
use whale_graph::Graph;

fn run(session: &Session, graph: Graph, batch: usize, micro: usize) -> StepStats {
    let ir = strategies::pipeline_with_dp(graph, batch, micro).expect("annotate");
    session.step(&ir).expect("simulate").stats
}

type Workload = (&'static str, Box<dyn Fn(usize) -> Graph>, usize, usize, f64);

fn main() {
    header(
        "Figure 18 + Table 3",
        "hardware-aware pipeline speedup and SMACT on 4xV100 + 4xP100",
    );
    // Two pipeline replicas (DP over the pipeline), each with stages on
    // [P100, P100, V100, V100] — the paper's baseline places low-memory GPUs
    // on the earlier, activation-heavy stages.
    let cluster = "2x(2xP100,2xV100)";
    let mk = |aware: bool| {
        Session::on_cluster(cluster)
            .unwrap()
            .hardware_aware(aware)
            .schedule(ScheduleKind::BackwardFirst)
            .outer_dp(2)
    };
    let aware = mk(true);
    let base = mk(false);

    let workloads: Vec<Workload> = vec![
        (
            "Bert-Large",
            Box::new(|b| whale::models::bert_large(b, 128).unwrap()),
            512,
            16,
            1.2,
        ),
        (
            "T5-Large",
            Box::new(|b| whale::models::t5_large(b, 128, 128).unwrap()),
            512,
            16,
            1.2,
        ),
    ];

    println!("\nFig. 18 — speedup of hardware-aware stage partitioning");
    println!(
        "  {:<12} {:>12} {:>14} {:>9} {:>9}",
        "model", "baseline", "hardware-aware", "speedup", "paper"
    );
    let mut results = Vec::new();
    for (name, build, batch, micro, paper) in &workloads {
        let sb = run(&base, build(*batch), *batch, *micro);
        let sa = run(&aware, build(*batch), *batch, *micro);
        let speedup = sb.step_time / sa.step_time;
        println!(
            "  {:<12} {:>12} {:>14} {:>8.2}x {:>8.1}x",
            name,
            fmt_secs(sb.step_time),
            fmt_secs(sa.step_time),
            speedup,
            paper
        );
        results.push((*name, sb, sa));
    }

    println!("\nTable 3 — mean GPU utilization (SMACT proxy) per GPU type");
    println!(
        "  {:<12} {:>14} {:>14} {:>14} {:>14}",
        "model", "base P100", "base V100", "aware P100", "aware V100"
    );
    for (name, sb, sa) in &results {
        let ub = sb.utilization_by_model();
        let ua = sa.utilization_by_model();
        println!(
            "  {:<12} {:>14.2} {:>14.2} {:>14.2} {:>14.2}",
            name, ub["P100-16GB"], ub["V100-32GB"], ua["P100-16GB"], ua["V100-32GB"]
        );
    }
    println!("\n  paper Table 3 (SMACT): Bert-Large 0.68/0.63 → 0.71/0.77,");
    println!("  T5 0.70/0.58 → 0.88/0.83");
    println!("  expected shape: ~20% step speedup; V100 utilization up ~1.2-1.4x;");
    println!("  P100 utilization rises too (stages shrink but bubbles shrink more).");

    for (name, sb, sa) in &results {
        let bubble_b = sb.bubble_ratio();
        let bubble_a = sa.bubble_ratio();
        println!(
            "  {name}: pipeline bubble ratio {bubble_b:.3} (baseline) -> {bubble_a:.3} (aware)"
        );
    }
}
