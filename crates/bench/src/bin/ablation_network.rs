//! Ablation — fabric sensitivity of the Fig. 14 scaling result.
//!
//! The paper's 91% scalability depends on the 50 Gb/s fabric absorbing the
//! per-stage gradient AllReduce. This sweep re-runs the M6-10B pipeline+DP
//! experiment on 10 Gb/s, 50 Gb/s, and 100 Gb/s networks.

use whale::{strategies, Optimizer, Session, TrainingConfig};
use whale_bench::header;
use whale_hardware::{Cluster, ClusterBuilder, GpuModel, Interconnect};

fn cluster(nodes: usize, ic: Interconnect) -> Cluster {
    let mut b = ClusterBuilder::new().interconnect(ic);
    for _ in 0..nodes {
        b = b.add_node(vec![GpuModel::V100_32GB; 8]);
    }
    b.build()
}

fn main() {
    header(
        "Ablation",
        "Fig. 14 scalability vs inter-node fabric (M6-10B, pipeline+DP)",
    );
    let training = TrainingConfig {
        optimizer: Optimizer::Adafactor,
        recompute: true,
        ..TrainingConfig::default()
    };
    let fabrics = [
        ("10 Gb/s", Interconnect::ethernet_10g()),
        ("50 Gb/s (paper)", Interconnect::ethernet_50g()),
        ("100 Gb/s IB", Interconnect::infiniband_100g()),
    ];
    println!(
        "\n  {:<16} {:>12} {:>12} {:>14}",
        "fabric", "1 node", "8 nodes", "scalability"
    );
    for (name, ic) in fabrics {
        let step = |nodes: usize| {
            let session = Session::new(cluster(nodes, ic.clone()))
                .training(training)
                .sync_overlap(0.6)
                .outer_dp(nodes);
            let batch = 70 * nodes;
            let ir = strategies::pipeline_with_dp(whale::models::m6_10b(batch).unwrap(), batch, 35)
                .unwrap();
            session.step(&ir).unwrap().stats
        };
        let one = step(1);
        let eight = step(8);
        let scal = eight.throughput / (8.0 * one.throughput);
        println!(
            "  {:<16} {:>10.1} s {:>10.1} s {:>13.1}%",
            name,
            one.step_time,
            eight.step_time,
            scal * 100.0
        );
    }
    println!("\n  expected shape: scalability degrades sharply on 10 Gb/s (gradient");
    println!("  sync dominates) and approaches ideal on 100 Gb/s fabrics.");
}
