//! E8 (§5.2 claim) — M6-MoE-100B trains 100 M samples in ≈1.5 days on
//! 128 V100s; M6-MoE-1T runs on 480 V100s (10× parameters for 3.75× GPUs).

use whale::{strategies, Optimizer, Session, TrainingConfig};
use whale_bench::{fmt_count, fmt_secs, header, row};
use whale_graph::models::{m6_moe, MoeConfig};

fn main() {
    header(
        "E8 (§5.2)",
        "M6-MoE training throughput: 100M samples on 128/480 V100s",
    );
    // §5.2 enables recomputation, AMP, and XLA for the MoE runs.
    let training = TrainingConfig {
        optimizer: Optimizer::Adafactor,
        amp: true,
        recompute: true,
        ..TrainingConfig::default()
    };
    let runs = [
        (
            "M6-MoE-100B",
            MoeConfig::m6_moe_100b(),
            "16x(8xV100)",
            128usize,
        ),
        ("M6-MoE-1T", MoeConfig::m6_moe_1t(), "60x(8xV100)", 480usize),
    ];
    for (name, cfg, cluster, gpus) in runs {
        let session = Session::on_cluster(cluster).unwrap().training(training);
        let batch = 1024;
        let graph = m6_moe(cfg, batch).expect("build");
        let params = graph.total_params();
        let ir = strategies::moe_hybrid(graph, batch).expect("annotate");
        let out = session.step(&ir).expect("simulate");
        let s = &out.stats;
        assert!(!s.has_oom(), "{name} must fit");
        let wall_100m = 100e6 / s.throughput;
        println!();
        row(&format!("{name}: parameters"), fmt_count(params as f64));
        row(&format!("{name}: GPUs"), gpus);
        row(
            &format!("{name}: step time (batch {batch})"),
            fmt_secs(s.step_time),
        );
        row(
            &format!("{name}: throughput"),
            format!("{:.0} samples/s", s.throughput),
        );
        row(
            &format!("{name}: wall time for 100M samples"),
            fmt_secs(wall_100m),
        );
    }
    println!("\n  paper: M6-MoE-100B processes 100M samples in ~1.5 days on 128 V100s;");
    println!("  expected shape: our estimate lands within a small factor (same order),");
    println!("  and the 1T model stays trainable on 3.75x the GPUs.");
}
