//! Bucketed gradient fusion vs monolithic AllReduce across the model zoo
//! and heterogeneous clusters.
//!
//! Two arms per (model, cluster) cell, identical except for the gradient
//! sync model:
//!
//! * **monolithic** — fusion disabled; each replica group synchronizes its
//!   full gradient payload as one AllReduce that cannot start before the
//!   last backward task finishes (`sync_overlap = 0.0`, the physically
//!   honest bound for an unfused collective);
//! * **bucketed** — `CommConfig::fused()`: ~25 MB fusion buckets in reverse
//!   backward order, per-bucket ring/tree/hierarchical selection, and the
//!   event-driven simulator overlapping each bucket with the backward
//!   compute that has not yet produced the later buckets.
//!
//! The acceptance target (≥ 1.3× median simulated throughput over the model
//! zoo on at least one heterogeneous bandwidth-bound cluster) is asserted on
//! the multi-node heterogeneous clusters at their stock interconnect —
//! gigabyte gradient payloads crossing the network make those steps
//! bandwidth-bound while backward compute is still long enough to hide
//! buckets behind. Saturated-network (10 GbE) variants are reported as
//! context but not gated: when sync dwarfs compute, no collective schedule
//! can hide more than the backward pass, so the ratio tends to 1.
//!
//! A second gate holds the planner honest: with the plan cache enabled (the
//! production planning path — comm config is part of every `PlanKey`, so
//! cached entries stay valid), enabling CommOpt must keep planning
//! wall-clock within 5% of the fusion-off pipeline. The cold-compile delta
//! (a few µs of bucketing + algorithm selection per compile) is reported as
//! a context row. Writes `BENCH_comm.json`; `--quick` runs a 1-cell smoke
//! (equivalence + bucket invariants, no timing loops) and writes the
//! gitignored `BENCH_comm_quick.json` instead.

use whale::{models, strategies, Cluster, CommConfig, Session, SyncMode, WhaleIr};
use whale_bench::{header, row, time_fn};
use whale_hardware::Interconnect;
use whale_sim::json::{num, obj, s, JsonValue};

const TARGET_SPEEDUP: f64 = 1.3;
const PLANNER_OVERHEAD_CAP: f64 = 1.05;

type Case = (&'static str, fn() -> WhaleIr);

fn zoo() -> Vec<Case> {
    // Paper-scale batches (Fig. 17 runs ResNet-50 at 512): the backward pass
    // must be long enough to hide buckets behind — fusion cannot speed up a
    // step whose compute is negligible next to its synchronization.
    vec![
        ("resnet50/dp", || {
            strategies::data_parallel(models::resnet50(512).expect("build"), 512).expect("annotate")
        }),
        ("bert_base/dp", || {
            strategies::data_parallel(models::bert_base(256, 64).expect("build"), 256)
                .expect("annotate")
        }),
        ("bert_large/dp", || {
            strategies::data_parallel(models::bert_large(256, 64).expect("build"), 256)
                .expect("annotate")
        }),
        ("bert_large/pipeline_dp", || {
            strategies::pipeline_with_dp(models::bert_large(256, 64).expect("build"), 256, 8)
                .expect("annotate")
        }),
        ("gpt2_xl/pipeline_dp", || {
            strategies::pipeline_with_dp(models::gpt2_xl(128, 64).expect("build"), 128, 8)
                .expect("annotate")
        }),
        ("m6_10b/pipeline_dp", || {
            strategies::pipeline_with_dp(models::m6_10b(16).expect("build"), 16, 4)
                .expect("annotate")
        }),
    ]
}

/// (label, cluster, counts toward the bandwidth-bound acceptance gate).
///
/// The gated configurations are the heterogeneous multi-node clusters at
/// their stock interconnect: gigabyte gradient payloads crossing the network
/// make the step bandwidth-bound while backward compute is still long enough
/// to hide buckets behind. The 10 GbE variants are reported as context but
/// not gated — on a saturated network the only hideable time is the backward
/// pass itself, so the achievable ratio tends to 1 as bandwidth tends to 0
/// no matter how the collectives are scheduled.
fn clusters() -> Vec<(String, Cluster, bool)> {
    let mut out = Vec::new();
    for spec in ["8xV100+8xP100", "2x(8xV100)+2x(8xP100)"] {
        out.push((
            spec.to_string(),
            Cluster::parse(spec).expect("cluster"),
            true,
        ));
        let mut slow = Cluster::parse(spec).expect("cluster");
        slow.interconnect = Interconnect::ethernet_10g();
        out.push((format!("{spec} @10GbE"), slow, false));
    }
    out
}

/// Monolithic arm: fusion off, and no interpolated overlap — an unfused
/// AllReduce cannot start before the last gradient is ready.
fn baseline_session(cluster: &Cluster) -> Session {
    Session::new(cluster.clone()).sync_overlap(0.0)
}

fn bucketed_session(cluster: &Cluster) -> Session {
    Session::new(cluster.clone()).comm(CommConfig::fused())
}

fn median(xs: &[f64]) -> f64 {
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    sorted[sorted.len() / 2]
}

fn quick() {
    header(
        "comm_bench --quick",
        "smoke: fusion-off equivalence + bucket invariants (no timing loops)",
    );
    let cluster = {
        let mut c = Cluster::parse("2x(8xV100)+2x(8xP100)").expect("cluster");
        c.interconnect = Interconnect::ethernet_10g();
        c
    };
    let ir = strategies::data_parallel(models::bert_large(128, 64).expect("build"), 128)
        .expect("annotate");

    // Fusion off ⇒ the attached schedule is Legacy and the simulated step is
    // bit-identical to a plan with no schedule at all (the pre-fusion model).
    let plain = Session::new(cluster.clone());
    let plan = plain.plan(&ir).expect("plan");
    let sched = plan.grad_sync_schedule.as_ref().expect("schedule attached");
    assert_eq!(
        sched.mode,
        SyncMode::Legacy,
        "default config must be legacy"
    );
    let mut stripped = (*plan).clone();
    stripped.grad_sync_schedule = None;
    let with = plain.step_plan(&plan).expect("sim");
    let without = plain.step_plan(&stripped).expect("sim");
    assert_eq!(with, without, "legacy schedule must not change the step");
    row("fusion-off equivalence", "bit-identical step outcome");

    // Fusion on ⇒ multiple size-capped buckets that telescope to the exact
    // payload, each with a selected algorithm, and a faster step than the
    // monolithic baseline on this bandwidth-bound cluster.
    let fused = bucketed_session(&cluster);
    let fplan = fused.plan(&ir).expect("plan");
    let fsched = fplan.grad_sync_schedule.as_ref().expect("schedule");
    assert_eq!(fsched.mode, SyncMode::Bucketed);
    assert!(
        fsched.buckets.len() > 1,
        "bert-large must split into buckets"
    );
    for (i, sync) in fplan.grad_syncs.iter().enumerate() {
        let total: u64 = fsched.buckets_of(i).map(|b| b.bytes).sum();
        assert_eq!(total, sync.bytes, "bucket bytes must telescope exactly");
        assert!(fsched.buckets_of(i).all(|b| b.algo.is_some()));
    }
    row(
        "buckets",
        format!(
            "{} over {} group(s)",
            fsched.buckets.len(),
            fplan.grad_syncs.len()
        ),
    );

    let base_out = baseline_session(&cluster).step(&ir).expect("sim");
    let fused_out = fused.step_plan(&fplan).expect("sim");
    let speedup = fused_out.stats.throughput / base_out.stats.throughput;
    assert!(
        speedup > 1.0,
        "bucketing must beat monolithic here, got {speedup:.3}x"
    );
    row("speedup (1 cell)", format!("{speedup:.2}x"));

    let doc = obj(vec![
        ("bench", s("comm_bench --quick")),
        ("speedup", num(speedup)),
        ("buckets", num(fsched.buckets.len() as f64)),
        ("equivalence", JsonValue::Bool(true)),
    ]);
    std::fs::write("BENCH_comm_quick.json", doc.to_string_pretty() + "\n")
        .expect("write BENCH_comm_quick.json");
    row("artifact", "BENCH_comm_quick.json (gitignored)");
}

fn main() {
    if std::env::args().any(|a| a == "--quick") {
        quick();
        return;
    }
    header(
        "comm_bench",
        "bucketed fusion + algorithm selection vs monolithic AllReduce",
    );

    let mut rows = Vec::new();
    let mut per_cluster: Vec<(String, Vec<f64>)> = Vec::new();
    for (cluster_label, cluster, bandwidth_bound) in &clusters() {
        let mut cluster_speedups = Vec::new();
        for (name, build) in &zoo() {
            let ir = build();
            let base = baseline_session(cluster);
            let fused = bucketed_session(cluster);
            let base_out = base.step(&ir).expect("baseline sim");
            let fused_plan = fused.plan(&ir).expect("fused plan");
            let fused_out = fused.step_plan(&fused_plan).expect("fused sim");

            let buckets = fused_plan
                .grad_sync_schedule
                .as_ref()
                .map(|sched| sched.buckets.len())
                .unwrap_or(0);
            let speedup = fused_out.stats.throughput / base_out.stats.throughput;
            if *bandwidth_bound {
                cluster_speedups.push(speedup);
            }
            row(
                &format!("{name} @ {cluster_label}"),
                format!(
                    "{speedup:.2}x  ({:.4}s -> {:.4}s, {buckets} bucket(s))",
                    base_out.stats.step_time, fused_out.stats.step_time
                ),
            );
            rows.push(obj(vec![
                ("model", s(*name)),
                ("cluster", s(cluster_label.as_str())),
                ("bandwidth_bound", JsonValue::Bool(*bandwidth_bound)),
                ("baseline_step_s", num(base_out.stats.step_time)),
                ("bucketed_step_s", num(fused_out.stats.step_time)),
                (
                    "baseline_sync_exposed_s",
                    num(base_out.stats.sync_time_exposed),
                ),
                (
                    "bucketed_sync_exposed_s",
                    num(fused_out.stats.sync_time_exposed),
                ),
                ("buckets", num(buckets as f64)),
                ("speedup", num(speedup)),
            ]));
        }
        if *bandwidth_bound {
            per_cluster.push((cluster_label.clone(), cluster_speedups));
        }
    }

    // Planner overhead gate: the production planning path — the plan cache
    // is on, exactly as `Session` ships — must not slow down when CommOpt is
    // enabled. Comm config is fingerprinted into every `PlanKey`, so the
    // cached-plan fast path stays a pure hit either way; this measures that
    // claim end to end. The cold-compile delta (bucketing + algorithm
    // selection, paid once per cache miss) is reported as context below.
    let (warmup, iters) = (5, 31);
    let overhead_cluster = Cluster::parse("2x(8xV100)+2x(8xP100)").expect("cluster");
    let mut overheads = Vec::new();
    let mut cold_deltas = Vec::new();
    for (name, build) in &zoo() {
        let ir = build();
        let off = Session::new(overhead_cluster.clone());
        let on = Session::new(overhead_cluster.clone()).comm(CommConfig::fused());
        let t_off = time_fn(&format!("{name}/plan comm-off"), warmup, iters, || {
            off.plan(&ir).expect("plan")
        });
        let t_on = time_fn(&format!("{name}/plan comm-on"), warmup, iters, || {
            on.plan(&ir).expect("plan")
        });
        overheads.push(t_on.median_s / t_off.median_s);

        // Context: one uncached compile per arm.
        let cold_off = Session::new(overhead_cluster.clone()).plan_cache(false);
        let cold_on = Session::new(overhead_cluster.clone())
            .plan_cache(false)
            .comm(CommConfig::fused());
        let c_off = time_fn(&format!("{name}/cold comm-off"), warmup, iters, || {
            cold_off.plan(&ir).expect("plan")
        });
        let c_on = time_fn(&format!("{name}/cold comm-on"), warmup, iters, || {
            cold_on.plan(&ir).expect("plan")
        });
        cold_deltas.push((c_on.median_s - c_off.median_s).max(0.0));
    }
    let overhead = median(&overheads);
    row(
        "planner wall-clock (comm on / off, plan cache on)",
        format!("{overhead:.3}x (median)"),
    );
    let cold_delta = median(&cold_deltas);
    row(
        "cold-compile delta (context)",
        format!("+{:.1} us per uncached compile (median)", cold_delta * 1e6),
    );

    let mut cluster_rows = Vec::new();
    let mut best: Option<(String, f64)> = None;
    for (label, speedups) in &per_cluster {
        let m = median(speedups);
        row(&format!("median speedup @ {label}"), format!("{m:.2}x"));
        cluster_rows.push(obj(vec![
            ("cluster", s(label.as_str())),
            ("median_speedup", num(m)),
        ]));
        if best.as_ref().is_none_or(|(_, b)| m > *b) {
            best = Some((label.clone(), m));
        }
    }
    let (best_cluster, best_median) = best.expect("gated clusters");
    let met = best_median >= TARGET_SPEEDUP && overhead <= PLANNER_OVERHEAD_CAP;
    row(
        "best bandwidth-bound cluster",
        format!(
            "{best_cluster}: {best_median:.2}x{}",
            if best_median >= TARGET_SPEEDUP {
                ""
            } else {
                "  << below target"
            }
        ),
    );

    let doc = obj(vec![
        ("bench", s("comm_bench")),
        ("cells", JsonValue::Array(rows)),
        ("gated_clusters", JsonValue::Array(cluster_rows)),
        ("best_cluster", s(best_cluster.as_str())),
        ("best_cluster_median_speedup", num(best_median)),
        ("target_speedup", num(TARGET_SPEEDUP)),
        ("planner_overhead_median", num(overhead)),
        ("planner_overhead_cap", num(PLANNER_OVERHEAD_CAP)),
        ("cold_compile_delta_s", num(cold_delta)),
        ("targets_met", JsonValue::Bool(met)),
    ]);
    let path = "BENCH_comm.json";
    std::fs::write(path, doc.to_string_pretty() + "\n").expect("write BENCH_comm.json");
    row("artifact", path);

    assert!(
        best_median >= TARGET_SPEEDUP,
        "bucketed fusion must reach >= {TARGET_SPEEDUP}x median on a bandwidth-bound cluster \
         (best: {best_cluster} at {best_median:.2}x)"
    );
    assert!(
        overhead <= PLANNER_OVERHEAD_CAP,
        "CommOpt must keep planning within {PLANNER_OVERHEAD_CAP}x (measured {overhead:.3}x)"
    );
}
