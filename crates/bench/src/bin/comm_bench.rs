//! Bucketed gradient fusion vs monolithic AllReduce across the model zoo
//! and heterogeneous clusters.
//!
//! Two arms per (model, cluster) cell, identical except for the gradient
//! sync model:
//!
//! * **monolithic** — fusion disabled; each replica group synchronizes its
//!   full gradient payload as one AllReduce that cannot start before the
//!   last backward task finishes (`sync_overlap = 0.0`, the physically
//!   honest bound for an unfused collective);
//! * **bucketed** — `CommConfig::fused()`: ~25 MB fusion buckets in reverse
//!   backward order, per-bucket ring/tree/hierarchical selection, and the
//!   event-driven simulator overlapping each bucket with the backward
//!   compute that has not yet produced the later buckets.
//!
//! The acceptance target (≥ 1.3× median simulated throughput over the model
//! zoo on at least one heterogeneous bandwidth-bound cluster) is asserted on
//! the multi-node heterogeneous clusters at their stock interconnect —
//! gigabyte gradient payloads crossing the network make those steps
//! bandwidth-bound while backward compute is still long enough to hide
//! buckets behind. Saturated-network (10 GbE) variants are reported as
//! context but not gated: when sync dwarfs compute, no collective schedule
//! can hide more than the backward pass, so the ratio tends to 1.
//!
//! A **mixed-precision** sweep turns the previously ungated 10 GbE cells
//! into gated ones: with `CommConfig::fused().bf16()` the wire payload
//! halves, so on a saturated network — where exposed sync dominates the
//! step — throughput must reach ≥ 1.5× the fp32-bucketed arm (median over
//! the zoo, per 10 GbE cluster). fp8 cells are reported as context. Every
//! cell records exposed-sync seconds, and per-bucket algorithm flips
//! (fp32 vs dtype schedule over identical logical buckets) are counted; a
//! dedicated latency-dominated crossover cell (32 single-GPU nodes on
//! 10 GbE, ~1 MiB buckets) must record at least one ring → tree flip
//! attributable purely to dtype scaling.
//!
//! A further gate holds the planner honest: with the plan cache enabled
//! (the production planning path — comm config is part of every `PlanKey`,
//! so cached entries stay valid), enabling CommOpt must keep planning
//! wall-clock within 5% of the fusion-off pipeline. The cold-compile delta
//! (a few µs of bucketing + algorithm selection per compile) is reported as
//! a context row. Writes `BENCH_comm.json`; `--quick` runs a 2-cell smoke
//! (equivalence + bucket invariants + one bf16 cell, no timing loops) and
//! writes the gitignored `BENCH_comm_quick.json` instead.

use whale::{models, strategies, Cluster, CommConfig, Session, SyncMode, WhaleIr};
use whale_bench::{header, row, time_fn};
use whale_hardware::{AllReduceAlgo, Interconnect};
use whale_sim::json::{num, obj, s, JsonValue};

const TARGET_SPEEDUP: f64 = 1.3;
const PLANNER_OVERHEAD_CAP: f64 = 1.05;
const MIXED_PRECISION_TARGET: f64 = 1.5;

type Case = (&'static str, fn() -> WhaleIr);

fn zoo() -> Vec<Case> {
    // Paper-scale batches (Fig. 17 runs ResNet-50 at 512): the backward pass
    // must be long enough to hide buckets behind — fusion cannot speed up a
    // step whose compute is negligible next to its synchronization.
    vec![
        ("resnet50/dp", || {
            strategies::data_parallel(models::resnet50(512).expect("build"), 512).expect("annotate")
        }),
        ("bert_base/dp", || {
            strategies::data_parallel(models::bert_base(256, 64).expect("build"), 256)
                .expect("annotate")
        }),
        ("bert_large/dp", || {
            strategies::data_parallel(models::bert_large(256, 64).expect("build"), 256)
                .expect("annotate")
        }),
        ("bert_large/pipeline_dp", || {
            strategies::pipeline_with_dp(models::bert_large(256, 64).expect("build"), 256, 8)
                .expect("annotate")
        }),
        ("gpt2_xl/pipeline_dp", || {
            strategies::pipeline_with_dp(models::gpt2_xl(128, 64).expect("build"), 128, 8)
                .expect("annotate")
        }),
        ("m6_10b/pipeline_dp", || {
            strategies::pipeline_with_dp(models::m6_10b(16).expect("build"), 16, 4)
                .expect("annotate")
        }),
    ]
}

/// (label, cluster, counts toward the bandwidth-bound acceptance gate).
///
/// The gated configurations are the heterogeneous multi-node clusters at
/// their stock interconnect: gigabyte gradient payloads crossing the network
/// make the step bandwidth-bound while backward compute is still long enough
/// to hide buckets behind. The 10 GbE variants are reported as context but
/// not gated — on a saturated network the only hideable time is the backward
/// pass itself, so the achievable ratio tends to 1 as bandwidth tends to 0
/// no matter how the collectives are scheduled.
fn clusters() -> Vec<(String, Cluster, bool)> {
    let mut out = Vec::new();
    for spec in ["8xV100+8xP100", "2x(8xV100)+2x(8xP100)"] {
        out.push((
            spec.to_string(),
            Cluster::parse(spec).expect("cluster"),
            true,
        ));
        let mut slow = Cluster::parse(spec).expect("cluster");
        slow.interconnect = Interconnect::ethernet_10g();
        out.push((format!("{spec} @10GbE"), slow, false));
    }
    out
}

/// Monolithic arm: fusion off, and no interpolated overlap — an unfused
/// AllReduce cannot start before the last gradient is ready.
fn baseline_session(cluster: &Cluster) -> Session {
    Session::new(cluster.clone()).sync_overlap(0.0)
}

fn bucketed_session(cluster: &Cluster) -> Session {
    Session::new(cluster.clone()).comm(CommConfig::fused())
}

fn median(xs: &[f64]) -> f64 {
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    sorted[sorted.len() / 2]
}

fn quick() {
    header(
        "comm_bench --quick",
        "smoke: fusion-off equivalence + bucket invariants (no timing loops)",
    );
    let cluster = {
        let mut c = Cluster::parse("2x(8xV100)+2x(8xP100)").expect("cluster");
        c.interconnect = Interconnect::ethernet_10g();
        c
    };
    let ir = strategies::data_parallel(models::bert_large(128, 64).expect("build"), 128)
        .expect("annotate");

    // Fusion off ⇒ the attached schedule is Legacy and the simulated step is
    // bit-identical to a plan with no schedule at all (the pre-fusion model).
    let plain = Session::new(cluster.clone());
    let plan = plain.plan(&ir).expect("plan");
    let sched = plan.grad_sync_schedule.as_ref().expect("schedule attached");
    assert_eq!(
        sched.mode,
        SyncMode::Legacy,
        "default config must be legacy"
    );
    let mut stripped = (*plan).clone();
    stripped.grad_sync_schedule = None;
    let with = plain.step_plan(&plan).expect("sim");
    let without = plain.step_plan(&stripped).expect("sim");
    assert_eq!(with, without, "legacy schedule must not change the step");
    row("fusion-off equivalence", "bit-identical step outcome");

    // Fusion on ⇒ multiple size-capped buckets that telescope to the exact
    // payload, each with a selected algorithm, and a faster step than the
    // monolithic baseline on this bandwidth-bound cluster.
    let fused = bucketed_session(&cluster);
    let fplan = fused.plan(&ir).expect("plan");
    let fsched = fplan.grad_sync_schedule.as_ref().expect("schedule");
    assert_eq!(fsched.mode, SyncMode::Bucketed);
    assert!(
        fsched.buckets.len() > 1,
        "bert-large must split into buckets"
    );
    for (i, sync) in fplan.grad_syncs.iter().enumerate() {
        let total: u64 = fsched.buckets_of(i).map(|b| b.bytes).sum();
        assert_eq!(total, sync.bytes, "bucket bytes must telescope exactly");
        assert!(fsched.buckets_of(i).all(|b| b.algo.is_some()));
    }
    row(
        "buckets",
        format!(
            "{} over {} group(s)",
            fsched.buckets.len(),
            fplan.grad_syncs.len()
        ),
    );

    let base_out = baseline_session(&cluster).step(&ir).expect("sim");
    let fused_out = fused.step_plan(&fplan).expect("sim");
    let speedup = fused_out.stats.throughput / base_out.stats.throughput;
    assert!(
        speedup > 1.0,
        "bucketing must beat monolithic here, got {speedup:.3}x"
    );
    row("speedup (1 cell)", format!("{speedup:.2}x"));

    // Mixed-precision smoke: bf16 halves the wire exactly (per-sync wire
    // bytes telescope to scale(sync.bytes)) and beats the fp32-bucketed arm
    // on this saturated fabric, where exposed sync dominates the step.
    let mp_cfg = CommConfig::fused().bf16();
    let mp = Session::new(cluster.clone()).comm(mp_cfg);
    let mp_plan = mp.plan(&ir).expect("bf16 plan");
    let mp_sched = mp_plan.grad_sync_schedule.as_ref().expect("schedule");
    assert!(mp_sched.wire_scaled(), "bf16 must scale the wire");
    for (i, sync) in mp_plan.grad_syncs.iter().enumerate() {
        assert_eq!(
            mp_sched.wire_bytes_of(i),
            Some(mp_cfg.wire_bytes(sync.bytes)),
            "bf16 wire bytes must telescope to half the payload"
        );
    }
    let mp_out = mp.step_plan(&mp_plan).expect("bf16 sim");
    let mp_speedup = mp_out.stats.throughput / fused_out.stats.throughput;
    assert!(
        mp_speedup > 1.0,
        "bf16 must beat fp32 bucketed on a saturated network, got {mp_speedup:.3}x"
    );
    row(
        "bf16 speedup (1 cell, vs fp32 bucketed)",
        format!(
            "{mp_speedup:.2}x  ({:.0} -> {:.0} MB on wire)",
            mp_plan.grad_sync_bytes() as f64 / 1e6,
            mp_sched.total_wire_bytes() as f64 / 1e6
        ),
    );

    let doc = obj(vec![
        ("bench", s("comm_bench --quick")),
        ("speedup", num(speedup)),
        ("buckets", num(fsched.buckets.len() as f64)),
        ("bf16_speedup_vs_fp32_bucketed", num(mp_speedup)),
        (
            "bf16_wire_mb",
            num(mp_sched.total_wire_bytes() as f64 / 1e6),
        ),
        ("equivalence", JsonValue::Bool(true)),
    ]);
    std::fs::write("BENCH_comm_quick.json", doc.to_string_pretty() + "\n")
        .expect("write BENCH_comm_quick.json");
    row("artifact", "BENCH_comm_quick.json (gitignored)");
}

fn main() {
    if std::env::args().any(|a| a == "--quick") {
        quick();
        return;
    }
    header(
        "comm_bench",
        "bucketed fusion + algorithm selection vs monolithic AllReduce",
    );

    let mut rows = Vec::new();
    let mut per_cluster: Vec<(String, Vec<f64>)> = Vec::new();
    for (cluster_label, cluster, bandwidth_bound) in &clusters() {
        let mut cluster_speedups = Vec::new();
        for (name, build) in &zoo() {
            let ir = build();
            let base = baseline_session(cluster);
            let fused = bucketed_session(cluster);
            let base_out = base.step(&ir).expect("baseline sim");
            let fused_plan = fused.plan(&ir).expect("fused plan");
            let fused_out = fused.step_plan(&fused_plan).expect("fused sim");

            let buckets = fused_plan
                .grad_sync_schedule
                .as_ref()
                .map(|sched| sched.buckets.len())
                .unwrap_or(0);
            let speedup = fused_out.stats.throughput / base_out.stats.throughput;
            if *bandwidth_bound {
                cluster_speedups.push(speedup);
            }
            row(
                &format!("{name} @ {cluster_label}"),
                format!(
                    "{speedup:.2}x  ({:.4}s -> {:.4}s, {buckets} bucket(s))",
                    base_out.stats.step_time, fused_out.stats.step_time
                ),
            );
            rows.push(obj(vec![
                ("model", s(*name)),
                ("cluster", s(cluster_label.as_str())),
                ("bandwidth_bound", JsonValue::Bool(*bandwidth_bound)),
                ("baseline_step_s", num(base_out.stats.step_time)),
                ("bucketed_step_s", num(fused_out.stats.step_time)),
                (
                    "baseline_sync_exposed_s",
                    num(base_out.stats.sync_time_exposed),
                ),
                (
                    "bucketed_sync_exposed_s",
                    num(fused_out.stats.sync_time_exposed),
                ),
                ("buckets", num(buckets as f64)),
                ("speedup", num(speedup)),
            ]));
        }
        if *bandwidth_bound {
            per_cluster.push((cluster_label.clone(), cluster_speedups));
        }
    }

    // --- mixed precision over the saturated-network cells ----------------
    // On 10 GbE exposed sync dominates the step, so shrinking the wire is
    // the only lever left — these cells were ungated above precisely
    // because bucketing alone cannot help once the network saturates. With
    // bf16 the payload halves and the gate flips on: ≥ 1.5× median
    // throughput vs the fp32-bucketed arm per 10 GbE cluster. fp8 is
    // reported as context, and per-bucket algorithm flips (identical
    // logical buckets, scaled wire) are counted for the crossover gate.
    let mut mp_rows = Vec::new();
    let mut mp_cluster_rows = Vec::new();
    let mut mp_medians: Vec<(String, f64)> = Vec::new();
    let mut flips_total: u64 = 0;
    for (cluster_label, cluster, bandwidth_bound) in &clusters() {
        if *bandwidth_bound {
            continue; // stock fabrics stay gated on the fp32 sweep above
        }
        let mut bf16_speedups = Vec::new();
        for (name, build) in &zoo() {
            let ir = build();
            let fp32 = bucketed_session(cluster);
            let fp32_plan = fp32.plan(&ir).expect("fp32 plan");
            let fp32_out = fp32.step_plan(&fp32_plan).expect("fp32 sim");
            let fp32_sched = fp32_plan.grad_sync_schedule.clone().expect("fp32 schedule");
            for (dtype, cfg) in [
                ("bf16", CommConfig::fused().bf16()),
                ("fp8", CommConfig::fused().fp8()),
            ] {
                let sess = Session::new(cluster.clone()).comm(cfg);
                let plan = sess.plan(&ir).expect("mixed-precision plan");
                let out = sess.step_plan(&plan).expect("mixed-precision sim");
                let sched = plan.grad_sync_schedule.as_ref().expect("schedule");
                let flips = fp32_sched
                    .buckets
                    .iter()
                    .zip(sched.buckets.iter())
                    .filter(|(a, b)| a.algo != b.algo)
                    .count() as u64;
                flips_total += flips;
                let speedup = out.stats.throughput / fp32_out.stats.throughput;
                if dtype == "bf16" {
                    bf16_speedups.push(speedup);
                }
                row(
                    &format!("{name} {dtype} @ {cluster_label}"),
                    format!(
                        "{speedup:.2}x vs fp32-bucketed  ({:.4}s -> {:.4}s, \
                         {:.0} -> {:.0} MB wire, {flips} flip(s))",
                        fp32_out.stats.step_time,
                        out.stats.step_time,
                        fp32_sched.total_wire_bytes() as f64 / 1e6,
                        sched.total_wire_bytes() as f64 / 1e6,
                    ),
                );
                mp_rows.push(obj(vec![
                    ("model", s(*name)),
                    ("cluster", s(cluster_label.as_str())),
                    ("grad_dtype", s(dtype)),
                    ("step_s", num(out.stats.step_time)),
                    ("sync_exposed_s", num(out.stats.sync_time_exposed)),
                    ("fp32_step_s", num(fp32_out.stats.step_time)),
                    ("fp32_sync_exposed_s", num(fp32_out.stats.sync_time_exposed)),
                    ("wire_mb", num(sched.total_wire_bytes() as f64 / 1e6)),
                    ("algo_flips", num(flips as f64)),
                    ("speedup_vs_fp32_bucketed", num(speedup)),
                ]));
            }
        }
        let m = median(&bf16_speedups);
        row(
            &format!("median bf16 speedup @ {cluster_label}"),
            format!(
                "{m:.2}x vs fp32-bucketed{}",
                if m >= MIXED_PRECISION_TARGET {
                    ""
                } else {
                    "  << below target"
                }
            ),
        );
        mp_cluster_rows.push(obj(vec![
            ("cluster", s(cluster_label.as_str())),
            ("grad_dtype", s("bf16")),
            ("median_speedup_vs_fp32_bucketed", num(m)),
        ]));
        mp_medians.push((cluster_label.clone(), m));
    }

    // Dedicated crossover cell: 32 single-GPU nodes on 10 GbE put the
    // ring/tree break-even near 320 KB, so ~1 MiB fp32 buckets ride the
    // ring while their 256 KiB fp8 images flip to the tree — an algorithm
    // change attributable purely to dtype scaling (the logical buckets are
    // identical by construction).
    let mut xcluster = Cluster::parse("32x(1xV100)").expect("cluster");
    xcluster.interconnect = Interconnect::ethernet_10g();
    let xir =
        strategies::data_parallel(models::resnet50(64).expect("build"), 64).expect("annotate");
    let xcfg = CommConfig {
        fusion_bytes: 1 << 20,
        auto_algorithm: true,
        ..CommConfig::default()
    };
    let xplan32 = Session::new(xcluster.clone())
        .comm(xcfg)
        .plan(&xir)
        .expect("crossover fp32 plan");
    let xplan8 = Session::new(xcluster.clone())
        .comm(xcfg.fp8())
        .plan(&xir)
        .expect("crossover fp8 plan");
    let xs32 = xplan32.grad_sync_schedule.as_ref().expect("schedule");
    let xs8 = xplan8.grad_sync_schedule.as_ref().expect("schedule");
    let ring_to_tree = xs32
        .buckets
        .iter()
        .zip(xs8.buckets.iter())
        .filter(|(a, b)| a.algo == Some(AllReduceAlgo::Ring) && b.algo == Some(AllReduceAlgo::Tree))
        .count() as u64;
    flips_total += ring_to_tree;
    row(
        "crossover cell (resnet50/dp @ 32x(1xV100) @10GbE, 1 MiB cap)",
        format!(
            "{ring_to_tree} ring->tree flip(s) over {} bucket(s)",
            xs32.buckets.len()
        ),
    );
    let crossover = obj(vec![
        ("model", s("resnet50/dp")),
        ("cluster", s("32x(1xV100) @10GbE")),
        ("fusion_mb", num(1.0)),
        ("buckets", num(xs32.buckets.len() as f64)),
        ("ring_to_tree_flips", num(ring_to_tree as f64)),
    ]);

    // Planner overhead gate: the production planning path — the plan cache
    // is on, exactly as `Session` ships — must not slow down when CommOpt is
    // enabled. Comm config is fingerprinted into every `PlanKey`, so the
    // cached-plan fast path stays a pure hit either way; this measures that
    // claim end to end. The cold-compile delta (bucketing + algorithm
    // selection, paid once per cache miss) is reported as context below.
    let (warmup, iters) = (5, 31);
    let overhead_cluster = Cluster::parse("2x(8xV100)+2x(8xP100)").expect("cluster");
    let mut overheads = Vec::new();
    let mut cold_deltas = Vec::new();
    for (name, build) in &zoo() {
        let ir = build();
        let off = Session::new(overhead_cluster.clone());
        let on = Session::new(overhead_cluster.clone()).comm(CommConfig::fused());
        let t_off = time_fn(&format!("{name}/plan comm-off"), warmup, iters, || {
            off.plan(&ir).expect("plan")
        });
        let t_on = time_fn(&format!("{name}/plan comm-on"), warmup, iters, || {
            on.plan(&ir).expect("plan")
        });
        overheads.push(t_on.median_s / t_off.median_s);

        // Context: one uncached compile per arm.
        let cold_off = Session::new(overhead_cluster.clone()).plan_cache(false);
        let cold_on = Session::new(overhead_cluster.clone())
            .plan_cache(false)
            .comm(CommConfig::fused());
        let c_off = time_fn(&format!("{name}/cold comm-off"), warmup, iters, || {
            cold_off.plan(&ir).expect("plan")
        });
        let c_on = time_fn(&format!("{name}/cold comm-on"), warmup, iters, || {
            cold_on.plan(&ir).expect("plan")
        });
        cold_deltas.push((c_on.median_s - c_off.median_s).max(0.0));
    }
    let overhead = median(&overheads);
    row(
        "planner wall-clock (comm on / off, plan cache on)",
        format!("{overhead:.3}x (median)"),
    );
    let cold_delta = median(&cold_deltas);
    row(
        "cold-compile delta (context)",
        format!("+{:.1} us per uncached compile (median)", cold_delta * 1e6),
    );

    let mut cluster_rows = Vec::new();
    let mut best: Option<(String, f64)> = None;
    for (label, speedups) in &per_cluster {
        let m = median(speedups);
        row(&format!("median speedup @ {label}"), format!("{m:.2}x"));
        cluster_rows.push(obj(vec![
            ("cluster", s(label.as_str())),
            ("median_speedup", num(m)),
        ]));
        if best.as_ref().is_none_or(|(_, b)| m > *b) {
            best = Some((label.clone(), m));
        }
    }
    let (best_cluster, best_median) = best.expect("gated clusters");
    let mp_met = mp_medians.iter().all(|(_, m)| *m >= MIXED_PRECISION_TARGET);
    let met = best_median >= TARGET_SPEEDUP
        && overhead <= PLANNER_OVERHEAD_CAP
        && mp_met
        && flips_total >= 1;
    row(
        "best bandwidth-bound cluster",
        format!(
            "{best_cluster}: {best_median:.2}x{}",
            if best_median >= TARGET_SPEEDUP {
                ""
            } else {
                "  << below target"
            }
        ),
    );

    let doc = obj(vec![
        ("bench", s("comm_bench")),
        ("cells", JsonValue::Array(rows)),
        ("gated_clusters", JsonValue::Array(cluster_rows)),
        ("best_cluster", s(best_cluster.as_str())),
        ("best_cluster_median_speedup", num(best_median)),
        ("target_speedup", num(TARGET_SPEEDUP)),
        ("mixed_precision_cells", JsonValue::Array(mp_rows)),
        ("mixed_precision_gates", JsonValue::Array(mp_cluster_rows)),
        ("mixed_precision_target", num(MIXED_PRECISION_TARGET)),
        ("crossover", crossover),
        ("algo_flips_total", num(flips_total as f64)),
        ("planner_overhead_median", num(overhead)),
        ("planner_overhead_cap", num(PLANNER_OVERHEAD_CAP)),
        ("cold_compile_delta_s", num(cold_delta)),
        ("targets_met", JsonValue::Bool(met)),
    ]);
    let path = "BENCH_comm.json";
    std::fs::write(path, doc.to_string_pretty() + "\n").expect("write BENCH_comm.json");
    row("artifact", path);

    assert!(
        best_median >= TARGET_SPEEDUP,
        "bucketed fusion must reach >= {TARGET_SPEEDUP}x median on a bandwidth-bound cluster \
         (best: {best_cluster} at {best_median:.2}x)"
    );
    assert!(
        overhead <= PLANNER_OVERHEAD_CAP,
        "CommOpt must keep planning within {PLANNER_OVERHEAD_CAP}x (measured {overhead:.3}x)"
    );
    for (label, m) in &mp_medians {
        assert!(
            *m >= MIXED_PRECISION_TARGET,
            "bf16 must reach >= {MIXED_PRECISION_TARGET}x median vs fp32 bucketed on {label} \
             (got {m:.2}x)"
        );
    }
    assert!(
        flips_total >= 1,
        "at least one per-bucket algorithm flip must be attributable to dtype scaling"
    );
}
