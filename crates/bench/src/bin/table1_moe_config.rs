//! Table 1 — model configurations of M6-MoE-100B and M6-MoE-1T.
//!
//! Prints the paper's configuration table and verifies that the built graphs
//! reach the advertised 100-billion and 1-trillion parameter scales.

use whale_bench::{fmt_count, header, row};
use whale_graph::models::{m6_moe, MoeConfig};

fn main() {
    header(
        "Table 1",
        "model configuration for M6-MoE-100B and M6-MoE-1T",
    );
    let configs = [
        ("M6-MoE-100B", MoeConfig::m6_moe_100b()),
        ("M6-MoE-1T", MoeConfig::m6_moe_1t()),
    ];
    println!(
        "\n  {:<22} {:>14} {:>12}",
        "config", "M6-MoE-100B", "M6-MoE-1T"
    );
    let get = |f: fn(&MoeConfig) -> usize| (f(&configs[0].1), f(&configs[1].1));
    let (a, b) = get(|c| c.hidden);
    println!("  {:<22} {:>14} {:>12}", "hidden_size", a, b);
    let (a, b) = get(|c| c.heads);
    println!("  {:<22} {:>14} {:>12}", "num_attention_heads", a, b);
    let (a, b) = get(|c| c.intermediate);
    println!("  {:<22} {:>14} {:>12}", "intermediate_size", a, b);
    let (a, b) = get(|c| c.experts);
    println!("  {:<22} {:>14} {:>12}", "num_experts", a, b);
    println!();

    for (name, cfg) in configs {
        let analytic = cfg.analytic_params();
        let graph = m6_moe(cfg, 1).expect("build MoE graph");
        let built = graph.total_params();
        row(
            &format!("{name}: parameters (closed form / built graph)"),
            format!(
                "{} / {}",
                fmt_count(analytic as f64),
                fmt_count(built as f64)
            ),
        );
    }
    let ratio = MoeConfig::m6_moe_1t().analytic_params() as f64
        / MoeConfig::m6_moe_100b().analytic_params() as f64;
    row(
        "1T / 100B parameter ratio (paper: ~10x)",
        format!("{ratio:.1}x"),
    );
    println!("\n  paper §5.2: scaled parameters 10x while GPUs only grew 3.75x (128 → 480).");
}
