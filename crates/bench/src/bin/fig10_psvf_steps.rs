//! Fig. 10 — the PSVF walkthrough: computation-balanced partition followed
//! by peak shaving and valley filling on a 4-GPU data-parallel job.
//!
//! The paper's figure shows memory-utilization curves stepping below the
//! OOM line over three shift steps. We reproduce the walk with BERT-Large
//! replicas on a mixed 2×V100-32GB + 2×P100-16GB virtual device at a batch
//! chosen so the FLOP-proportional split overflows the P100s.

use whale_bench::header;
use whale_graph::{models, CostProfile, TrainingConfig};
use whale_hardware::Cluster;
use whale_planner::{dp_partition_traced, partition::proportional_split};

fn main() {
    header(
        "Figure 10",
        "hardware-aware DP: FLOP-balanced split + PSVF steps",
    );
    let cluster = Cluster::parse("2xV100,2xP100").unwrap();
    let cfg = TrainingConfig::default();
    let graph = models::bert_large(8, 128).unwrap();
    let profile = CostProfile::from_graph(&graph, 8);

    // Find a global batch where the FLOP-proportional split OOMs the P100s
    // but the total memory still fits the cluster.
    let weights: Vec<f64> = cluster.gpus().iter().map(|g| g.flops()).collect();
    let mut global = 32;
    loop {
        let split = proportional_split(global, &weights).unwrap();
        let p100 = &cluster.gpus()[2];
        if cfg.memory_bytes(&profile, split[2], 1.0) > p100.memory_bytes() {
            break;
        }
        global += 16;
        assert!(global < 4096, "never overflowed");
    }
    println!("\n  global batch {global} on [V100, V100, P100, P100]");
    let split = proportional_split(global, &weights).unwrap();
    println!("  FLOP-proportional batches: {split:?}");
    let ratios: Vec<f64> = split
        .iter()
        .zip(cluster.gpus())
        .map(|(&b, g)| cfg.memory_bytes(&profile, b, 1.0) as f64 / g.memory_bytes() as f64)
        .collect();
    println!(
        "  initial mem ratios:        {:?}",
        ratios.iter().map(|r| format!("{r:.2}")).collect::<Vec<_>>()
    );

    // The traced variant records every step's per-device ratio snapshot —
    // exactly the walk the figure plots (the planner's own PSVF runs lean).
    let dp = dp_partition_traced(&profile, &cfg, cluster.gpus(), global, 1.0, true)
        .expect("PSVF must find a feasible layout");
    let report = dp.psvf.expect("PSVF should have engaged");
    println!("\n  PSVF steps (peak → valley, memory ratios after):");
    for (i, step) in report.steps.iter().enumerate() {
        println!(
            "  step {:>2}: GPU{} → GPU{}   {:?}",
            i + 1,
            step.peak,
            step.valley,
            step.mem_ratios
                .iter()
                .map(|r| format!("{r:.2}"))
                .collect::<Vec<_>>()
        );
    }
    println!("\n  final batches: {:?}", dp.batch_sizes);
    println!(
        "  final ratios:  {:?}",
        report
            .mem_ratios
            .iter()
            .map(|r| format!("{r:.2}"))
            .collect::<Vec<_>>()
    );
    assert!(report.feasible());
    assert_eq!(dp.batch_sizes.iter().sum::<usize>(), global);
    println!("\n  paper Fig. 10 shape: peaks above the OOM line are shaved one");
    println!("  sample at a time into the lowest-FLOP valleys until all fit.");
}
