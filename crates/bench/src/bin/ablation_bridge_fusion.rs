//! Ablation — bridge fusion (§3.4, Fig. 8).
//!
//! Counts the communication the Gather∘Partition fusion removes when
//! chaining TaskGraphs at various parallelism degrees.

use whale::Primitive;
use whale_bench::header;
use whale_planner::bridge::{bridge_pattern, chain_bytes, connect};

fn main() {
    header(
        "Ablation",
        "bytes moved by TaskGraph bridges, with and without fusion",
    );
    let tensor = 512u64 << 20;
    println!(
        "\n  {:<28} {:>13} {:>13} {:>9}",
        "transition", "unfused", "fused", "saved"
    );
    let cases = [
        (
            "replica(8) → replica(8)",
            Primitive::Replica,
            8,
            Primitive::Replica,
            8,
        ),
        (
            "replica(8) → replica(4)",
            Primitive::Replica,
            8,
            Primitive::Replica,
            4,
        ),
        (
            "replica(4) → split(4)",
            Primitive::Replica,
            4,
            Primitive::Split,
            4,
        ),
        (
            "split(4) → replica(4)",
            Primitive::Split,
            4,
            Primitive::Replica,
            4,
        ),
        (
            "split(8) → split(8)",
            Primitive::Split,
            8,
            Primitive::Split,
            8,
        ),
        ("stage → stage", Primitive::Stage, 1, Primitive::Stage, 1),
    ];
    for (label, p, n, q, m) in cases {
        let raw = [bridge_pattern(p, n).output, bridge_pattern(q, m).input];
        let fused = connect(p, n, q, m);
        let raw_b = chain_bytes(&raw, tensor);
        let fused_b = chain_bytes(&fused, tensor);
        let saved = if raw_b > 0 {
            100.0 * (raw_b - fused_b) as f64 / raw_b as f64
        } else {
            0.0
        };
        println!(
            "  {:<28} {:>10} MB {:>10} MB {:>8.0}%",
            label,
            raw_b >> 20,
            fused_b >> 20,
            saved
        );
    }
    println!("\n  expected shape: same-degree replica chains fuse to zero traffic");
    println!("  (Fig. 8); mismatched degrees keep their Gather/Partition pair (Fig. 9).");
}
