//! E13 (§2.2 motivation) — queueing for homogeneous vs heterogeneous GPU
//! allocations on a fragmented shared cluster.
//!
//! The paper motivates heterogeneity-aware training by observing that large
//! homogeneous allocations queue for a long time while mixed-type GPUs are
//! readily available (citing the MLaaS workload study). This bench replays
//! a synthetic FCFS job trace on a mixed 8xV100 + 8xP100 cluster under both
//! allocation policies.

use whale_bench::{fmt_secs, header, row};
use whale_hardware::Cluster;
use whale_sim::{replay, synthetic_trace, AllocPolicy};

fn main() {
    header(
        "E13 (§2.2)",
        "FCFS queueing delay: homogeneous-only vs any-mix allocations",
    );
    let cluster = Cluster::parse("1x(8xV100)+1x(8xP100)").unwrap();
    let jobs = synthetic_trace(500, 42);
    let homo = replay(&cluster, &jobs, AllocPolicy::HomogeneousOnly);
    let any = replay(&cluster, &jobs, AllocPolicy::AnyMix);

    println!("\n  500 synthetic jobs on 8xV100 + 8xP100 (seeded, deterministic)\n");
    row(
        "mean delay, all jobs (homogeneous-only)",
        fmt_secs(homo.mean_delay()),
    );
    row("mean delay, all jobs (any mix)", fmt_secs(any.mean_delay()));
    for min in [4usize, 8] {
        row(
            &format!("mean delay, jobs ≥ {min} GPUs (homogeneous-only)"),
            fmt_secs(homo.mean_delay_large(min)),
        );
        row(
            &format!("mean delay, jobs ≥ {min} GPUs (any mix)"),
            fmt_secs(any.mean_delay_large(min)),
        );
    }
    let ratio = homo.mean_delay_large(8) / any.mean_delay_large(8).max(1e-9);
    row("large-job delay ratio (homo / mix)", format!("{ratio:.1}x"));
    println!("\n  expected shape: delays rise with job size under both policies, but");
    println!("  the homogeneous-only restriction adds ~40-50% queueing across the");
    println!("  board (and makes any job larger than one pool impossible) — the");
    println!("  fragmentation §2.2 describes, and the reason Whale trains on mixes.");
}
