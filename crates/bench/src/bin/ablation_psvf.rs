//! Ablation — PSVF on vs off (§3.5, Algorithm 1).
//!
//! Without peak shaving, the FLOP-proportional batch split OOMs mixed
//! clusters at large batches; PSVF recovers feasibility at a small
//! throughput cost relative to the (infeasible) pure-FLOP split and still
//! beats the uniform baseline.

use whale::{strategies, Session};
use whale_bench::{fmt_secs, header, row};
use whale_graph::{models, CostProfile, TrainingConfig};
use whale_hardware::Cluster;
use whale_planner::dp_partition;
use whale_planner::partition::proportional_split;

fn main() {
    header(
        "Ablation",
        "PSVF on/off for hardware-aware DP under memory pressure",
    );
    let spec = "2xV100,2xP100";
    let cluster = Cluster::parse(spec).unwrap();
    let cfg = TrainingConfig::default();
    let graph = models::bert_large(8, 128).unwrap();
    let profile = CostProfile::from_graph(&graph, 8);

    // Pick a batch where the pure FLOP split overflows P100s.
    let weights: Vec<f64> = cluster.gpus().iter().map(|g| g.flops()).collect();
    let mut global = 64;
    while {
        let split = proportional_split(global, &weights).unwrap();
        cfg.memory_bytes(&profile, split[2], 1.0) <= cluster.gpus()[2].memory_bytes()
    } {
        global += 16;
    }
    println!("\n  BERT-Large on [{spec}], global batch {global}\n");

    let flop_only = proportional_split(global, &weights).unwrap();
    let oom = flop_only
        .iter()
        .zip(cluster.gpus())
        .filter(|(&b, g)| cfg.memory_bytes(&profile, b, 1.0) > g.memory_bytes())
        .count();
    row(
        "FLOP-proportional split (no PSVF)",
        format!("{flop_only:?} — {oom} GPU(s) OOM"),
    );

    let with = dp_partition(&profile, &cfg, cluster.gpus(), global, 1.0, true).unwrap();
    row(
        "with PSVF (Algorithm 1)",
        format!(
            "{:?} — {} shift steps, feasible",
            with.batch_sizes,
            with.psvf.as_ref().map(|r| r.steps.len()).unwrap_or(0)
        ),
    );

    // Step-time comparison: uniform baseline vs PSVF-repaired hardware-aware.
    let mk = |aware: bool| Session::on_cluster(spec).unwrap().hardware_aware(aware);
    let ir = strategies::data_parallel(models::bert_large(global, 128).unwrap(), global).unwrap();
    let base = mk(false).step(&ir).unwrap().stats;
    let aware = mk(true).step(&ir).unwrap().stats;
    row("uniform baseline step", fmt_secs(base.step_time));
    row(
        "hardware-aware (PSVF) step",
        format!(
            "{} ({:.2}x)",
            fmt_secs(aware.step_time),
            base.step_time / aware.step_time
        ),
    );
    println!("\n  expected shape: PSVF keeps the plan feasible where the pure FLOP");
    println!("  split OOMs, while retaining most of the hardware-aware speedup.");
}
