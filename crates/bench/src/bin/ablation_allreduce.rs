//! Ablation — hierarchical vs flat AllReduce (§4, "Gradient Aggregation").
//!
//! Whale first AllReduces inside each worker, then across workers. This
//! ablation quantifies the win of that two-level scheme over a flat ring for
//! gradient tensors of realistic sizes on multi-node clusters.

use whale_bench::{fmt_secs, header};
use whale_hardware::{Cluster, CommModel, GpuModel};

fn main() {
    header(
        "Ablation",
        "hierarchical vs flat ring AllReduce across cluster sizes",
    );
    println!(
        "\n  {:>6} {:>10} {:>12} {:>14} {:>9}",
        "nodes", "bytes", "flat ring", "hierarchical", "speedup"
    );
    for nodes in [2usize, 4, 8, 16, 32] {
        let cluster = Cluster::homogeneous(GpuModel::V100_32GB, nodes, 8);
        let comm = CommModel::new(&cluster);
        let group: Vec<usize> = (0..cluster.num_gpus()).collect();
        for mb in [100u64, 1340] {
            let bytes = mb << 20;
            let flat = comm.allreduce(&group, bytes).unwrap();
            let hier = comm.hierarchical_allreduce(&group, bytes).unwrap();
            println!(
                "  {:>6} {:>8}MB {:>12} {:>14} {:>8.2}x",
                nodes,
                mb,
                fmt_secs(flat),
                fmt_secs(hier),
                flat / hier
            );
        }
    }
    println!("\n  expected shape: hierarchical wins on every multi-node group because");
    println!("  only 1/8 of the tensor crosses the 50Gb/s fabric; the win grows with");
    println!("  tensor size and stays roughly constant in node count.");
}
