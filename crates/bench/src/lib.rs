//! Shared helpers for the benchmark binaries.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the paper
//! (see DESIGN.md §4 for the experiment index). The helpers here keep the
//! output format consistent: a header naming the paper artifact, aligned
//! rows, and a `paper vs measured` note where the paper gives numbers.

use std::time::Instant;

/// Timing summary of one benchmarked closure.
#[derive(Debug, Clone)]
pub struct Timing {
    /// Benchmark label.
    pub name: String,
    /// Number of timed iterations.
    pub iters: usize,
    /// Median iteration time, seconds.
    pub median_s: f64,
    /// 95th-percentile iteration time, seconds.
    pub p95_s: f64,
    /// Fastest iteration, seconds.
    pub min_s: f64,
}

impl Timing {
    /// `  name   median 12.3 ms   p95 14.0 ms` — matches `row` alignment.
    pub fn print(&self) {
        row(
            &self.name,
            format!(
                "median {:<12} p95 {:<12} ({} iters)",
                fmt_secs(self.median_s),
                fmt_secs(self.p95_s),
                self.iters
            ),
        );
    }
}

/// Linear-interpolated percentile of an ascending-sorted sample set.
pub fn percentile(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty());
    let rank = (p / 100.0) * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

/// Criterion-free micro-benchmark: `warmup` untimed runs, then `iters` timed
/// runs; reports median/p95/min. The closure's result is black-boxed so the
/// optimizer cannot elide the work.
pub fn time_fn<T>(name: &str, warmup: usize, iters: usize, mut f: impl FnMut() -> T) -> Timing {
    for _ in 0..warmup {
        std::hint::black_box(f());
    }
    let iters = iters.max(1);
    let mut samples = Vec::with_capacity(iters);
    for _ in 0..iters {
        let start = Instant::now();
        std::hint::black_box(f());
        samples.push(start.elapsed().as_secs_f64());
    }
    samples.sort_by(|a, b| a.total_cmp(b));
    Timing {
        name: name.to_string(),
        iters,
        median_s: percentile(&samples, 50.0),
        p95_s: percentile(&samples, 95.0),
        min_s: samples[0],
    }
}

/// Print a section header naming the paper artifact being regenerated.
pub fn header(artifact: &str, description: &str) {
    println!("================================================================");
    println!("{artifact} — {description}");
    println!("================================================================");
}

/// Print one aligned key/value row.
pub fn row(key: &str, value: impl std::fmt::Display) {
    println!("  {key:<44} {value}");
}

/// Format seconds adaptively.
pub fn fmt_secs(s: f64) -> String {
    if s >= 86_400.0 {
        format!("{:.2} days", s / 86_400.0)
    } else if s >= 3600.0 {
        format!("{:.2} h", s / 3600.0)
    } else if s >= 1.0 {
        format!("{s:.3} s")
    } else {
        format!("{:.3} ms", s * 1e3)
    }
}

/// Format a big count with engineering suffixes.
pub fn fmt_count(v: f64) -> String {
    if v >= 1e12 {
        format!("{:.2}T", v / 1e12)
    } else if v >= 1e9 {
        format!("{:.2}B", v / 1e9)
    } else if v >= 1e6 {
        format!("{:.2}M", v / 1e6)
    } else {
        format!("{v:.0}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_interpolate() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 50.0), 3.0);
        assert_eq!(percentile(&xs, 100.0), 5.0);
        assert_eq!(percentile(&xs, 95.0), 4.8);
    }

    #[test]
    fn time_fn_counts_iterations_and_orders_stats() {
        let t = time_fn("noop", 2, 9, || 1 + 1);
        assert_eq!(t.iters, 9);
        assert!(t.min_s <= t.median_s && t.median_s <= t.p95_s);
    }

    #[test]
    fn formatting() {
        assert_eq!(fmt_count(1.0027e12), "1.00T");
        assert_eq!(fmt_count(103.4e9), "103.40B");
        assert_eq!(fmt_secs(0.0123), "12.300 ms");
        assert_eq!(fmt_secs(129_600.0), "1.50 days");
    }
}
