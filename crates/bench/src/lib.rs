//! Shared helpers for the benchmark binaries.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the paper
//! (see DESIGN.md §4 for the experiment index). The helpers here keep the
//! output format consistent: a header naming the paper artifact, aligned
//! rows, and a `paper vs measured` note where the paper gives numbers.

/// Print a section header naming the paper artifact being regenerated.
pub fn header(artifact: &str, description: &str) {
    println!("================================================================");
    println!("{artifact} — {description}");
    println!("================================================================");
}

/// Print one aligned key/value row.
pub fn row(key: &str, value: impl std::fmt::Display) {
    println!("  {key:<44} {value}");
}

/// Format seconds adaptively.
pub fn fmt_secs(s: f64) -> String {
    if s >= 86_400.0 {
        format!("{:.2} days", s / 86_400.0)
    } else if s >= 3600.0 {
        format!("{:.2} h", s / 3600.0)
    } else if s >= 1.0 {
        format!("{s:.3} s")
    } else {
        format!("{:.3} ms", s * 1e3)
    }
}

/// Format a big count with engineering suffixes.
pub fn fmt_count(v: f64) -> String {
    if v >= 1e12 {
        format!("{:.2}T", v / 1e12)
    } else if v >= 1e9 {
        format!("{:.2}B", v / 1e9)
    } else if v >= 1e6 {
        format!("{:.2}M", v / 1e6)
    } else {
        format!("{v:.0}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting() {
        assert_eq!(fmt_count(1.0027e12), "1.00T");
        assert_eq!(fmt_count(103.4e9), "103.40B");
        assert_eq!(fmt_secs(0.0123), "12.300 ms");
        assert_eq!(fmt_secs(129_600.0), "1.50 days");
    }
}
