//! Criterion benchmarks for the planner's hot paths: model construction,
//! profiling, stage partitioning (Algorithm 3), DP partitioning
//! (Algorithm 2), and full plan assembly.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use whale::{models, strategies, Session};
use whale_graph::{CostProfile, TrainingConfig};
use whale_hardware::Cluster;
use whale_planner::{dp_partition, pipeline_partition};

fn bench_model_build(c: &mut Criterion) {
    let mut g = c.benchmark_group("model_build");
    g.bench_function("resnet50", |b| {
        b.iter(|| black_box(models::resnet50(32).unwrap()))
    });
    g.bench_function("bert_large", |b| {
        b.iter(|| black_box(models::bert_large(32, 128).unwrap()))
    });
    g.bench_function("m6_moe_100b", |b| {
        b.iter(|| black_box(models::m6_moe_100b(32).unwrap()))
    });
    g.finish();
}

fn bench_profile(c: &mut Criterion) {
    let graph = models::bert_large(32, 128).unwrap();
    c.bench_function("profile_bert_large", |b| {
        b.iter(|| black_box(CostProfile::from_graph(&graph, 32)))
    });
}

fn bench_algorithms(c: &mut Criterion) {
    let cluster = Cluster::parse("8xV100+8xP100").unwrap();
    let graph = models::bert_large(64, 128).unwrap();
    let profile = CostProfile::from_graph(&graph, 64);
    let cfg = TrainingConfig::default();

    c.bench_function("alg2_dp_partition_16gpu", |b| {
        b.iter(|| {
            black_box(dp_partition(&profile, &cfg, cluster.gpus(), 512, 1.0, true).unwrap())
        })
    });

    let stage_cluster = Cluster::parse("2xP100,2xV100").unwrap();
    c.bench_function("alg3_pipeline_partition_4stage", |b| {
        b.iter(|| {
            black_box(
                pipeline_partition(&graph, &cfg, stage_cluster.gpus(), 4, 8, false, 64, true)
                    .unwrap(),
            )
        })
    });
}

fn bench_full_plan(c: &mut Criterion) {
    let mut g = c.benchmark_group("full_plan");
    type Case = (&'static str, &'static str, fn() -> whale::WhaleIr);
    let cases: Vec<Case> = vec![
        ("dp_hetero_16gpu", "8xV100+8xP100", || {
            strategies::data_parallel(models::resnet50(256).unwrap(), 256).unwrap()
        }),
        ("pipeline_8stage", "1x(8xV100)", || {
            strategies::pipeline_only(models::bert_large(64, 128).unwrap(), 64, 8).unwrap()
        }),
        ("moe_49tg_32gpu", "4x(8xV100)", || {
            strategies::moe_hybrid(models::m6_moe(models::MoeConfig::tiny(), 64).unwrap(), 64)
                .unwrap()
        }),
    ];
    for (name, cluster, mk) in cases {
        let session = Session::on_cluster(cluster).unwrap();
        let ir = mk();
        g.bench_with_input(BenchmarkId::from_parameter(name), &ir, |b, ir| {
            b.iter(|| black_box(session.plan(ir).unwrap()))
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_model_build,
    bench_profile,
    bench_algorithms,
    bench_full_plan
);
criterion_main!(benches);
