//! Criterion benchmarks for the discrete-event simulator: step simulation
//! across pipeline depths and micro-batch counts, collective cost models,
//! and the scaling-law trainer.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use whale::{models, strategies, Session};
use whale_hardware::{Cluster, CommModel, GpuModel};
use whale_sim::{simulate_step, simulate_training, LossModel, SimConfig};

fn bench_simulate_step(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulate_step");
    for micros in [4usize, 16, 35] {
        let session = Session::on_cluster("4x(8xV100)").unwrap().outer_dp(4);
        let ir = strategies::pipeline_with_dp(
            models::bert_large(128, 128).unwrap(),
            128,
            micros,
        )
        .unwrap();
        let plan = session.plan(&ir).unwrap();
        let cluster = session.cluster().clone();
        g.bench_with_input(
            BenchmarkId::new("pipeline8_micro", micros),
            &plan,
            |b, plan| {
                b.iter(|| black_box(simulate_step(plan, &cluster, &SimConfig::default()).unwrap()))
            },
        );
    }
    g.finish();
}

fn bench_collectives(c: &mut Criterion) {
    let cluster = Cluster::homogeneous(GpuModel::V100_32GB, 32, 8);
    let comm = CommModel::new(&cluster);
    let group: Vec<usize> = (0..256).collect();
    c.bench_function("hierarchical_allreduce_256", |b| {
        b.iter(|| black_box(comm.hierarchical_allreduce(&group, 1 << 30).unwrap()))
    });
}

fn bench_training_run(c: &mut Criterion) {
    let session = Session::on_cluster("1x(8xV100)").unwrap();
    let ir = strategies::data_parallel(models::resnet50(256).unwrap(), 256).unwrap();
    let plan = session.plan(&ir).unwrap();
    let cluster = session.cluster().clone();
    let loss = LossModel::for_params(25e6);
    c.bench_function("training_run_64ckpt", |b| {
        b.iter(|| {
            black_box(
                simulate_training(&plan, &cluster, &SimConfig::default(), &loss, 1e7, 64, 3)
                    .unwrap(),
            )
        })
    });
}

criterion_group!(benches, bench_simulate_step, bench_collectives, bench_training_run);
criterion_main!(benches);
