//! Small, dependency-free PRNG for seeded simulations.
//!
//! The sandboxed build has no crates.io access, so the simulator carries its
//! own generator instead of depending on `rand`. SplitMix64 (Steele et al.,
//! "Fast splittable pseudorandom number generators", OOPSLA 2014) is tiny,
//! passes BigCrush when used as a 64-bit stream, and — most importantly for
//! this repo — is trivially reproducible: a seed fully determines the stream
//! on every platform, which the trace and trainer tests rely on.

/// SplitMix64 pseudorandom number generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seed the generator. Equal seeds produce equal streams.
    pub fn seed_from_u64(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)` built from the top 53 bits.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }

    /// Uniform index in `[0, n)`. `n` must be non-zero.
    pub fn index(&mut self, n: usize) -> usize {
        debug_assert!(n > 0, "index() needs a non-empty range");
        // Multiply-shift rejection-free mapping; bias is < 2^-32 for the
        // small `n` used here (trace sizes, zoo picks) — irrelevant next to
        // determinism, which is what the tests pin.
        ((self.next_u64() as u128 * n as u128) >> 64) as usize
    }

    /// Uniform `usize` in `[lo, hi)`.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        lo + self.index(hi - lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SplitMix64::seed_from_u64(42);
        let mut b = SplitMix64::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::seed_from_u64(1);
        let mut b = SplitMix64::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn f64_stays_in_unit_interval() {
        let mut r = SplitMix64::seed_from_u64(7);
        for _ in 0..4096 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_and_index_respect_bounds() {
        let mut r = SplitMix64::seed_from_u64(9);
        for _ in 0..4096 {
            let x = r.range_f64(60.0, 900.0);
            assert!((60.0..900.0).contains(&x));
            let i = r.index(9);
            assert!(i < 9);
            let u = r.range_usize(3, 11);
            assert!((3..11).contains(&u));
        }
    }

    #[test]
    fn output_is_roughly_uniform() {
        // Coarse sanity: 8 buckets over 64k draws each land near 8192.
        let mut r = SplitMix64::seed_from_u64(1234);
        let mut buckets = [0usize; 8];
        for _ in 0..65536 {
            buckets[r.index(8)] += 1;
        }
        for b in buckets {
            assert!((7000..9500).contains(&b), "bucket {b}");
        }
    }
}
