//! Fleet-scale multi-tenant serving under continuous churn.
//!
//! This module composes everything the repo has built — the shared
//! [`PlanService`], [`FaultTrace`] churn, delta replanning, and the
//! detect → rollback → replan → resume recovery loop — into one
//! long-running scenario: a shared heterogeneous GPU pool serving a
//! stochastic stream of training jobs while hardware continuously
//! degrades, heals, dies, and joins underneath them.
//!
//! The moving parts, in the order a job meets them:
//!
//! 1. **Arrivals.** Jobs arrive on a seeded Poisson process. Each samples a
//!    model from its [`JobTemplate`] zoo, a GPU request, a priority, a job
//!    size, and an SLO slack factor — all from one [`SplitMix64`] stream,
//!    so a seed fully determines the workload.
//! 2. **Admission.** An admission controller prices the request against
//!    free pool capacity: granted when capacity covers it (the elastic
//!    fleet may grant a *shrunken* allocation rather than block), queued
//!    behind a bounded priority queue otherwise, rejected only when the
//!    queue overflows.
//! 3. **Binding.** An admitted job binds a [`VirtualDevice`] over pool GPU
//!    ids — VirtualFlow-style decoupling: the job's code (its IR) never
//!    changes; only the binding does. [`Cluster::subcluster`] carves the
//!    binding into a standalone cluster and the plan comes from the one
//!    shared `Arc<PlanService>`, so tenants with the same (model, slice
//!    shape) share compiles.
//! 4. **Churn.** A shared [`FaultTrace`] generated over the pool plays out
//!    on the wall clock (the trace's monotone sample axis is reinterpreted
//!    as seconds — the pool as a whole never rolls back). The
//!    `FleetSim` scheduler reacts at step boundaries: degradations and
//!    congestion trigger cached replans of the affected tenants; a removal
//!    inside a binding runs the full rollback-to-checkpoint recovery; a
//!    heal or join re-expands shrunken tenants and drains the queue.
//! 5. **Elastic resizing.** On capacity loss the scheduler shrinks victims
//!    — lowest priority first — issuing [`ClusterDelta`]s and cached
//!    replans through the service rather than killing jobs; on capacity
//!    return it grows under-allocated jobs back toward their request.
//!    `InsufficientCapacity` surfaces only when the pool itself falls
//!    below the policy floor and no legal shrink exists.
//!
//! The non-elastic foil ([`FleetConfig::elastic`]` = false`) is the
//! conventional kill-and-requeue fleet: static plans that straggle through
//! rate faults, full-allocation-or-nothing admission, and a crash inside a
//! binding kills the job and requeues it from sample zero. `fleet_bench`
//! gates the elastic fleet's goodput against it.
//!
//! Everything is deterministic: equal `(pool, templates, FleetConfig)`
//! give bit-identical [`FleetStats`].

use std::sync::Arc;

use whale_hardware::{Cluster, ClusterDelta, VirtualDevice};
use whale_ir::WhaleIr;
use whale_planner::{plan as cold_plan, CacheStats, ExecutionPlan, PlanService, PlannerConfig};

use crate::engine::{simulate_step, SimConfig};
use crate::error::{Result, SimError};
use crate::faults::{exponential, FaultEvent, FaultModel, FaultTrace};
use crate::json::{num, obj, JsonValue};
use crate::recovery::{RecoveryEvent, RecoveryPolicy, RecoveryStats, ReplanPath};
use crate::replan::check_replan;
use crate::rng::SplitMix64;

/// One entry of the fleet's model zoo: an annotated IR jobs can sample.
///
/// Templates must be replicable at any parallelism degree ≥ 1 (data
/// parallelism via `replicate_all` qualifies) because the elastic scheduler
/// resizes allocations freely between 1 GPU and the request.
#[derive(Debug, Clone)]
pub struct JobTemplate {
    /// Display name (zoo entry).
    pub name: String,
    /// The annotated model; shared by every job sampled from this template.
    pub ir: WhaleIr,
    /// Nominal single-V100-class-GPU duration of a size-1.0 job, seconds.
    /// The fleet converts this to a sample count at startup by measuring
    /// the template's single-GPU throughput, so job durations stay
    /// meaningful regardless of model FLOPs.
    pub nominal_duration_s: f64,
    /// Relative sampling weight in the arrival process.
    pub weight: f64,
}

impl JobTemplate {
    /// Build a template with weight 1.
    pub fn new(name: impl Into<String>, ir: WhaleIr, nominal_duration_s: f64) -> JobTemplate {
        JobTemplate {
            name: name.into(),
            ir,
            nominal_duration_s,
            weight: 1.0,
        }
    }
}

/// The stock zoo used by the CLI and `fleet_bench`: two ResNet-50 batch
/// sizes plus BERT-base, all data-parallel so any allocation size plans.
pub fn default_templates() -> Vec<JobTemplate> {
    let dp = |g: whale_graph::Graph, batch: usize| {
        whale_ir::Annotator::new(g, batch)
            .replicate_all()
            .expect("replicate_all on a zoo model")
            .finish()
            .expect("zoo IR finishes")
    };
    let r32 = whale_graph::models::resnet50(32).expect("resnet50@32");
    let r64 = whale_graph::models::resnet50(64).expect("resnet50@64");
    let bert = whale_graph::models::bert_base(16, 64).expect("bert_base@16");
    vec![
        JobTemplate::new("resnet50@32", dp(r32, 32), 1200.0),
        JobTemplate::new("resnet50@64", dp(r64, 64), 2000.0),
        JobTemplate {
            name: "bert_base@16".into(),
            ir: dp(bert, 16),
            nominal_duration_s: 1600.0,
            weight: 0.7,
        },
    ]
}

/// Knobs of one fleet run.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetConfig {
    /// Seed of the arrival/workload stream (the fault stream has its own
    /// seed in [`FleetConfig::faults`]). Equal seeds ⇒ identical runs.
    pub seed: u64,
    /// Wall-clock length of the run, seconds.
    pub horizon_s: f64,
    /// Mean seconds between job arrivals (exponential inter-arrival).
    pub arrival_mean_s: f64,
    /// GPU-count choices an arriving job draws its request from (each is
    /// clamped to the pool size).
    pub gpu_choices: Vec<usize>,
    /// Admission queue bound; an overflow rejects the lowest-priority,
    /// youngest queued job.
    pub max_queue: usize,
    /// Elastic resizing (the tentpole) vs the kill-and-requeue baseline.
    pub elastic: bool,
    /// Recovery knobs inherited by every tenant's resilient loop:
    /// checkpoint interval, detection latency, bounded retry/backoff, and
    /// the pool-wide capacity floor.
    pub policy: RecoveryPolicy,
    /// Churn parameters. The fault timeline is generated over the *pool*,
    /// with [`FaultModel::mtbf_samples`]/`mttr_samples` reinterpreted as
    /// **seconds** on the fleet's wall clock (the pool as a whole never
    /// rolls back, so its monotone axis is time).
    pub faults: FaultModel,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            seed: 0,
            horizon_s: 20_000.0,
            arrival_mean_s: 600.0,
            gpu_choices: vec![1, 2, 4],
            max_queue: 16,
            elastic: true,
            policy: RecoveryPolicy {
                // A fleet prefers queueing over aborting: only a
                // near-total pool loss is fatal.
                min_capacity: 0.05,
                ..RecoveryPolicy::default()
            },
            faults: FaultModel {
                mtbf_samples: 1500.0,
                mttr_samples: 600.0,
                seed: 1,
            },
        }
    }
}

/// Lifecycle of one tenant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobPhase {
    /// Waiting in the admission queue for capacity.
    Queued,
    /// Bound to a virtual device and making progress.
    Running,
    /// Reached its sample target.
    Completed,
    /// Rejected at admission or died unrecoverably.
    Failed,
}

impl JobPhase {
    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            JobPhase::Queued => "queued",
            JobPhase::Running => "running",
            JobPhase::Completed => "completed",
            JobPhase::Failed => "failed",
        }
    }
}

/// Mutable per-tenant state.
#[derive(Debug, Clone)]
struct Job {
    id: usize,
    template: usize,
    priority: u8,
    arrival_s: f64,
    requested_gpus: usize,
    total_samples: f64,
    slo_slack: f64,

    phase: JobPhase,
    committed: f64,
    processed: f64,
    lost: f64,
    binding: Option<VirtualDevice>,
    sub: Option<Cluster>,
    plan: Option<Arc<ExecutionPlan>>,
    throughput: f64,
    /// No progress accrues before this wall-clock instant (detection
    /// latency + backoff of the tenant's latest recovery).
    paused_until: f64,
    /// Deadline in wall-clock seconds, fixed at first bind:
    /// `arrival + slo_slack · total/throughput(first binding)`.
    deadline_s: Option<f64>,
    queued_since: f64,
    queue_wait_s: f64,
    active_s: f64,
    downtime_s: f64,
    started_s: Option<f64>,
    finished_s: Option<f64>,
    restarts: u32,
    shrinks: u32,
    expands: u32,
    recoveries: Vec<RecoveryEvent>,
    error: Option<String>,
}

impl Job {
    fn is_running(&self) -> bool {
        self.phase == JobPhase::Running
    }

    fn allocated(&self) -> usize {
        self.binding.as_ref().map_or(0, |b| b.num_gpus())
    }
}

/// Public per-tenant outcome, one row per submitted job.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSummary {
    /// Submission index (arrival order).
    pub id: usize,
    /// Zoo entry the job sampled.
    pub template: String,
    /// 0 (lowest) to 2 (highest).
    pub priority: u8,
    /// GPUs the job asked for.
    pub requested_gpus: usize,
    /// GPUs held when the run ended (0 unless still running).
    pub allocated_gpus: usize,
    /// Terminal (or end-of-horizon) phase.
    pub phase: JobPhase,
    /// Committed samples at the end.
    pub committed_samples: f64,
    /// The job's sample target.
    pub total_samples: f64,
    /// Seconds spent in the admission queue.
    pub queue_wait_s: f64,
    /// Seconds lost to detection latency and backoff.
    pub downtime_s: f64,
    /// Kill-and-requeue restarts (baseline) or forced requeues (elastic).
    pub restarts: u32,
    /// Elastic shrink events applied to this job.
    pub shrinks: u32,
    /// Elastic expand events applied to this job.
    pub expands: u32,
    /// Faults this job recovered from.
    pub faults: usize,
    /// `Some(met?)` once decidable: completed, or deadline expired.
    pub slo_met: Option<bool>,
    /// Failure reason, when the job failed.
    pub error: Option<String>,
}

/// Fleet-wide outcome metrics. Deterministic for equal inputs.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetStats {
    /// Wall-clock length of the run, seconds.
    pub horizon_s: f64,
    /// Jobs that arrived.
    pub submitted: u64,
    /// Jobs that reached their sample target.
    pub completed: u64,
    /// Jobs rejected by admission (queue overflow).
    pub rejected: u64,
    /// Jobs that died unrecoverably (excludes rejections).
    pub failed: u64,
    /// Still queued when the horizon closed.
    pub queued_at_end: u64,
    /// Still running when the horizon closed.
    pub running_at_end: u64,
    /// Whole-job preemptions by higher-priority admissions (elastic).
    pub preemptions: u64,
    /// Kill-and-requeue restarts (baseline reaction to owned crashes).
    pub kills: u64,
    /// Elastic shrink resizes.
    pub shrinks: u64,
    /// Elastic expand resizes.
    pub expands: u64,
    /// Times a displaced job found no free GPU, no legal shrink, and no
    /// preemptable victim and had to queue for a heal.
    pub insufficient_events: u64,
    /// Fault-trace events the pool absorbed.
    pub fault_events: u64,
    /// Samples committed fleet-wide (completed totals plus the partial
    /// progress of jobs still running at the horizon).
    pub committed_samples: f64,
    /// Samples worked on, including rolled-back work.
    pub processed_samples: f64,
    /// Samples lost to rollbacks and kills.
    pub samples_lost: f64,
    /// Committed samples per wall-clock second — the bench's headline.
    pub goodput: f64,
    /// Mean queue wait over submitted jobs, seconds.
    pub mean_queue_wait_s: f64,
    /// Jobs whose SLO outcome is decidable and met.
    pub slo_met: u64,
    /// Jobs whose SLO outcome is decidable and missed.
    pub slo_missed: u64,
    /// Aggregated recovery accounting (every tenant fault in fleet-time
    /// order; `ttr_p50`/`ttr_p99` come from here).
    pub recovery: RecoveryStats,
    /// Shared compile-service counters at the end of the run.
    pub cache: CacheStats,
}

impl FleetStats {
    /// Serialize through the repo's JSON layer.
    pub fn to_json(&self) -> JsonValue {
        obj(vec![
            ("horizon_s", num(self.horizon_s)),
            ("submitted", num(self.submitted as f64)),
            ("completed", num(self.completed as f64)),
            ("rejected", num(self.rejected as f64)),
            ("failed", num(self.failed as f64)),
            ("queued_at_end", num(self.queued_at_end as f64)),
            ("running_at_end", num(self.running_at_end as f64)),
            ("preemptions", num(self.preemptions as f64)),
            ("kills", num(self.kills as f64)),
            ("shrinks", num(self.shrinks as f64)),
            ("expands", num(self.expands as f64)),
            ("insufficient_events", num(self.insufficient_events as f64)),
            ("fault_events", num(self.fault_events as f64)),
            ("committed_samples", num(self.committed_samples)),
            ("processed_samples", num(self.processed_samples)),
            ("samples_lost", num(self.samples_lost)),
            ("goodput", num(self.goodput)),
            ("mean_queue_wait_s", num(self.mean_queue_wait_s)),
            ("slo_met", num(self.slo_met as f64)),
            ("slo_missed", num(self.slo_missed as f64)),
            ("recovery", self.recovery.to_json()),
            (
                "cache",
                obj(vec![
                    ("hits", num(self.cache.hits as f64)),
                    ("misses", num(self.cache.misses as f64)),
                    ("partial_hits", num(self.cache.partial_hits as f64)),
                    ("coalesced", num(self.cache.coalesced as f64)),
                    ("evictions", num(self.cache.evictions as f64)),
                    ("passes_run", num(self.cache.passes_run as f64)),
                ]),
            ),
        ])
    }
}

/// A completed fleet run: the aggregate stats plus one summary per job.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetReport {
    /// Fleet-wide metrics.
    pub stats: FleetStats,
    /// Per-job outcomes in arrival order.
    pub jobs: Vec<JobSummary>,
}

/// An arrival drawn before the run starts (the workload is data).
#[derive(Debug, Clone)]
struct ArrivalSpec {
    at_s: f64,
    template: usize,
    requested_gpus: usize,
    priority: u8,
    size_factor: f64,
    slo_slack: f64,
}

/// What the event loop does next.
#[derive(Debug, Clone, Copy, PartialEq)]
enum NextEvent {
    Completion(usize, f64),
    Fault(f64),
    Arrival(f64),
    Horizon,
}

/// The fleet simulator. Construct with [`FleetSim::new`], run with
/// [`FleetSim::run`].
///
/// # Examples
///
/// ```
/// use whale_hardware::Cluster;
/// use whale_sim::fleet::{default_templates, FleetConfig, FleetSim};
///
/// let pool = Cluster::parse("2x(4xV100)+2x(4xP100)").unwrap();
/// let cfg = FleetConfig {
///     horizon_s: 4000.0,
///     arrival_mean_s: 500.0,
///     ..FleetConfig::default()
/// };
/// let report = FleetSim::new(pool, default_templates(), cfg)
///     .unwrap()
///     .run()
///     .unwrap();
/// assert!(report.stats.submitted > 0);
/// ```
pub struct FleetSim {
    pool: Cluster,
    start_flops: f64,
    templates: Vec<JobTemplate>,
    /// Samples a size-1.0 job of template *i* targets (measured at startup
    /// from single-GPU throughput × nominal duration).
    base_samples: Vec<f64>,
    cfg: FleetConfig,
    planner_cfg: PlannerConfig,
    sim_cfg: SimConfig,
    service: Arc<PlanService>,
    jobs: Vec<Job>,
    /// Queued job ids; drained highest priority first, then FIFO.
    queue: Vec<usize>,
    /// Free pool GPU ids, ascending.
    free: Vec<usize>,
    arrivals: Vec<ArrivalSpec>,
    next_arrival: usize,
    trace: FaultTrace,
    next_fault: usize,
    now: f64,
    preemptions: u64,
    kills: u64,
    shrinks: u64,
    expands: u64,
    rejected: u64,
    insufficient: u64,
}

impl FleetSim {
    /// Set up a run over `pool` with a private [`PlanService`].
    pub fn new(pool: Cluster, templates: Vec<JobTemplate>, cfg: FleetConfig) -> Result<FleetSim> {
        FleetSim::with_service(pool, templates, cfg, Arc::new(PlanService::default()))
    }

    /// Set up a run compiling through a caller-provided shared service —
    /// several fleets (or a fleet plus external traffic) can share one
    /// cache.
    pub fn with_service(
        pool: Cluster,
        templates: Vec<JobTemplate>,
        cfg: FleetConfig,
        service: Arc<PlanService>,
    ) -> Result<FleetSim> {
        if templates.is_empty() {
            return Err(SimError::BadPlan(
                "fleet needs at least one template".into(),
            ));
        }
        if cfg.gpu_choices.is_empty() || cfg.gpu_choices.contains(&0) {
            return Err(SimError::BadPlan(
                "gpu_choices must be non-empty and positive".into(),
            ));
        }
        // NaN fails these comparisons too, which is exactly what we want.
        let positive = |x: f64| x > 0.0 && x.is_finite();
        if !positive(cfg.horizon_s) || !positive(cfg.arrival_mean_s) {
            return Err(SimError::BadPlan(
                "horizon and arrival mean must be positive".into(),
            ));
        }
        let planner_cfg = PlannerConfig::default();
        let sim_cfg = SimConfig::default();

        // Calibrate each template: one GPU of the pool defines the sample
        // target of a size-1.0 job. This also warms the shared cache with
        // the most common slice shape.
        let probe = pool.subcluster(&[0])?;
        let mut base_samples = Vec::with_capacity(templates.len());
        for t in &templates {
            let plan = service
                .plan(&t.ir, &probe, &planner_cfg)
                .map_err(|e| SimError::BadPlan(format!("template {}: {e}", t.name)))?;
            let out = simulate_step(&plan, &probe, &sim_cfg)?;
            base_samples.push(out.stats.throughput * t.nominal_duration_s.max(1.0));
        }

        let mut sim = FleetSim {
            start_flops: pool.total_flops(),
            free: (0..pool.num_gpus()).collect(),
            trace: FaultTrace::generate(&pool, &cfg.faults, cfg.horizon_s),
            arrivals: Vec::new(),
            pool,
            templates,
            base_samples,
            planner_cfg,
            sim_cfg,
            service,
            jobs: Vec::new(),
            queue: Vec::new(),
            next_arrival: 0,
            next_fault: 0,
            now: 0.0,
            preemptions: 0,
            kills: 0,
            shrinks: 0,
            expands: 0,
            rejected: 0,
            insufficient: 0,
            cfg,
        };
        sim.arrivals = sim.draw_arrivals();
        Ok(sim)
    }

    /// The shared compile service (e.g. to read its counters mid-run).
    pub fn service(&self) -> &Arc<PlanService> {
        &self.service
    }

    /// The generated fault timeline (events at wall-clock seconds).
    pub fn trace(&self) -> &FaultTrace {
        &self.trace
    }

    fn draw_arrivals(&mut self) -> Vec<ArrivalSpec> {
        let mut rng = SplitMix64::seed_from_u64(self.cfg.seed);
        let total_weight: f64 = self.templates.iter().map(|t| t.weight.max(0.0)).sum();
        let mut specs = Vec::new();
        let mut t = 0.0;
        loop {
            t += exponential(&mut rng, self.cfg.arrival_mean_s);
            if t >= self.cfg.horizon_s || t.is_nan() {
                break;
            }
            // Weighted template pick.
            let mut roll = rng.next_f64() * total_weight;
            let mut template = self.templates.len() - 1;
            for (i, tpl) in self.templates.iter().enumerate() {
                roll -= tpl.weight.max(0.0);
                if roll < 0.0 {
                    template = i;
                    break;
                }
            }
            let choice = self.cfg.gpu_choices[rng.index(self.cfg.gpu_choices.len())];
            specs.push(ArrivalSpec {
                at_s: t,
                template,
                requested_gpus: choice.min(self.pool.num_gpus()).max(1),
                priority: rng.index(3) as u8,
                size_factor: rng.range_f64(0.5, 2.0),
                slo_slack: rng.range_f64(1.5, 4.0),
            });
        }
        specs
    }

    /// Run to the horizon and report.
    pub fn run(mut self) -> Result<FleetReport> {
        loop {
            let next = self.next_event();
            let t = match next {
                NextEvent::Completion(_, t) | NextEvent::Fault(t) | NextEvent::Arrival(t) => {
                    t.min(self.cfg.horizon_s)
                }
                NextEvent::Horizon => self.cfg.horizon_s,
            };
            self.advance_to(t);
            self.now = t;
            match next {
                NextEvent::Horizon => break,
                _ if t >= self.cfg.horizon_s => break,
                NextEvent::Completion(id, _) => self.complete(id),
                NextEvent::Arrival(_) => {
                    let spec = self.arrivals[self.next_arrival].clone();
                    self.next_arrival += 1;
                    self.admit(spec);
                }
                NextEvent::Fault(_) => {
                    let ev = self.trace.events[self.next_fault];
                    self.next_fault += 1;
                    self.apply_fault(ev)?;
                }
            }
            self.rebalance();
        }
        Ok(self.finish())
    }

    /// The earliest of: a running job finishing, the next fault, the next
    /// arrival, the horizon. Ties break completion < fault < arrival so
    /// capacity frees before it is claimed and churn lands before new work.
    fn next_event(&self) -> NextEvent {
        let mut best = NextEvent::Horizon;
        let mut best_t = self.cfg.horizon_s;
        if let Some(i) = self.next_arrival.checked_sub(0) {
            if let Some(a) = self.arrivals.get(i) {
                if a.at_s < best_t {
                    best_t = a.at_s;
                    best = NextEvent::Arrival(a.at_s);
                }
            }
        }
        if let Some(f) = self.trace.events.get(self.next_fault) {
            if f.at_samples <= best_t {
                best_t = f.at_samples;
                best = NextEvent::Fault(f.at_samples);
            }
        }
        for j in &self.jobs {
            if !j.is_running() || j.throughput <= 0.0 {
                continue;
            }
            let start = self.now.max(j.paused_until);
            let t = start + (j.total_samples - j.committed).max(0.0) / j.throughput;
            if t <= best_t {
                best_t = t;
                best = NextEvent::Completion(j.id, t);
            }
        }
        best
    }

    /// Accrue linear progress on every running job up to wall-clock `t`.
    fn advance_to(&mut self, t: f64) {
        for j in &mut self.jobs {
            if !j.is_running() || j.throughput <= 0.0 {
                continue;
            }
            let start = self.now.max(j.paused_until);
            let dt = (t - start).max(0.0);
            if dt <= 0.0 {
                continue;
            }
            let earned = (j.throughput * dt).min((j.total_samples - j.committed).max(0.0));
            j.committed += earned;
            j.processed += earned;
            j.active_s += dt;
        }
    }

    fn complete(&mut self, id: usize) {
        let j = &mut self.jobs[id];
        j.processed += j.total_samples - j.committed;
        j.committed = j.total_samples;
        j.phase = JobPhase::Completed;
        j.finished_s = Some(self.now);
        self.release(id);
    }

    /// Return a job's GPUs to the free pool and drop its binding.
    fn release(&mut self, id: usize) {
        let j = &mut self.jobs[id];
        if let Some(b) = j.binding.take() {
            self.free.extend_from_slice(b.gpu_ids());
            self.free.sort_unstable();
        }
        j.sub = None;
        j.plan = None;
        j.throughput = 0.0;
    }

    /// Admission: enqueue the arrival, evicting the worst queued job on
    /// overflow. Binding happens in `rebalance`.
    fn admit(&mut self, spec: ArrivalSpec) {
        let id = self.jobs.len();
        self.jobs.push(Job {
            id,
            template: spec.template,
            priority: spec.priority,
            arrival_s: spec.at_s,
            requested_gpus: spec.requested_gpus,
            total_samples: self.base_samples[spec.template] * spec.size_factor,
            slo_slack: spec.slo_slack,
            phase: JobPhase::Queued,
            committed: 0.0,
            processed: 0.0,
            lost: 0.0,
            binding: None,
            sub: None,
            plan: None,
            throughput: 0.0,
            paused_until: 0.0,
            deadline_s: None,
            queued_since: spec.at_s,
            queue_wait_s: 0.0,
            active_s: 0.0,
            downtime_s: 0.0,
            started_s: None,
            finished_s: None,
            restarts: 0,
            shrinks: 0,
            expands: 0,
            recoveries: Vec::new(),
            error: None,
        });
        self.queue.push(id);
        if self.queue.len() > self.cfg.max_queue {
            // Evict the lowest-priority, youngest queued job.
            let victim_pos = (0..self.queue.len())
                .min_by_key(|&p| {
                    let j = &self.jobs[self.queue[p]];
                    (j.priority, std::cmp::Reverse(j.id))
                })
                .expect("queue is non-empty");
            let victim = self.queue.remove(victim_pos);
            let j = &mut self.jobs[victim];
            j.phase = JobPhase::Failed;
            j.error = Some("rejected: admission queue full".into());
            j.finished_s = Some(self.now);
            self.rejected += 1;
        }
    }

    /// Queue order: highest priority first, then earliest queued, then id.
    fn queue_head(&self) -> Option<usize> {
        self.queue.iter().copied().min_by(|&a, &b| {
            let (ja, jb) = (&self.jobs[a], &self.jobs[b]);
            jb.priority
                .cmp(&ja.priority)
                .then(ja.queued_since.total_cmp(&jb.queued_since))
                .then(ja.id.cmp(&jb.id))
        })
    }

    /// Drain the queue and re-expand shrunken tenants. Called after every
    /// event (step boundary): this is the `FleetScheduler`'s reaction.
    fn rebalance(&mut self) {
        // 1. Admit queued jobs while capacity can be found.
        while let Some(head) = self.queue_head() {
            let requested = self.jobs[head].requested_gpus;
            let priority = self.jobs[head].priority;
            let grant: Vec<usize> = if !self.free.is_empty() {
                let n = if self.cfg.elastic {
                    requested.min(self.free.len())
                } else if self.free.len() >= requested {
                    requested
                } else {
                    break; // baseline: all-or-nothing, head-of-line blocks
                };
                self.free.drain(..n).collect()
            } else if self.cfg.elastic {
                // No free capacity: carve one GPU from a lower-priority
                // tenant (shrink first, whole-job preemption last).
                match self.carve_gpu(priority) {
                    Some(gpu) => vec![gpu],
                    None => {
                        self.insufficient += 1;
                        break;
                    }
                }
            } else {
                break;
            };
            self.queue.retain(|&q| q != head);
            self.bind(head, grant);
        }
        // 2. Elastic: grow under-allocated running jobs, highest priority
        //    first, one GPU at a time.
        if self.cfg.elastic {
            loop {
                if self.free.is_empty() {
                    break;
                }
                let candidate = self
                    .jobs
                    .iter()
                    .filter(|j| j.is_running() && j.allocated() < j.requested_gpus)
                    .min_by(|a, b| {
                        b.priority
                            .cmp(&a.priority)
                            .then(a.arrival_s.total_cmp(&b.arrival_s))
                            .then(a.id.cmp(&b.id))
                    })
                    .map(|j| j.id);
                let Some(id) = candidate else { break };
                let gpu = self.free.remove(0);
                if !self.expand(id, gpu) {
                    // Expansion failed to plan; put the GPU back and stop
                    // rather than retry the same candidate forever.
                    self.free.push(gpu);
                    self.free.sort_unstable();
                    break;
                }
            }
        }
    }

    /// Find one GPU for a queued job of `priority` when the free list is
    /// empty: shrink the lowest-priority multi-GPU tenant, else preempt the
    /// lowest-priority tenant outright. Only strictly lower priorities are
    /// victims. Returns the freed GPU id.
    fn carve_gpu(&mut self, priority: u8) -> Option<usize> {
        // Shrink path: lowest priority, then largest allocation.
        let shrink = self
            .jobs
            .iter()
            .filter(|j| j.is_running() && j.priority < priority && j.allocated() > 1)
            .min_by(|a, b| {
                a.priority
                    .cmp(&b.priority)
                    .then(b.allocated().cmp(&a.allocated()))
                    .then(a.id.cmp(&b.id))
            })
            .map(|j| j.id);
        if let Some(id) = shrink {
            return self.shrink(id);
        }
        // Preemption path: lowest priority, then latest arrival.
        let preempt = self
            .jobs
            .iter()
            .filter(|j| j.is_running() && j.priority < priority)
            .min_by(|a, b| {
                a.priority
                    .cmp(&b.priority)
                    .then(b.arrival_s.total_cmp(&a.arrival_s))
                    .then(a.id.cmp(&b.id))
            })
            .map(|j| j.id);
        let id = preempt?;
        self.preemptions += 1;
        self.jobs[id].phase = JobPhase::Queued;
        self.jobs[id].queued_since = self.now;
        self.release(id);
        self.queue.push(id);
        let gpu = self.free.remove(0);
        Some(gpu)
    }

    /// Planned shrink at a step boundary: drop the tenant's highest pool
    /// id, replan through the service (cached suffix when warm), no
    /// rollback. Returns the freed pool GPU id, or `None` if the replan
    /// could not produce a runnable plan (tenant state is left untouched).
    fn shrink(&mut self, id: usize) -> Option<usize> {
        let (binding, sub) = {
            let j = &self.jobs[id];
            (j.binding.clone()?, j.sub.clone()?)
        };
        let local = binding.num_gpus() - 1; // highest pool id == last local id
        let freed = *binding.gpu_ids().last().expect("non-empty binding");
        let ir = self.templates[self.jobs[id].template].ir.clone();
        let delta = ClusterDelta::GpuRemoved { id: local };
        let Ok((plan, after)) = self.service.replan(&ir, &sub, &self.planner_cfg, delta) else {
            return None;
        };
        let report = check_replan(&plan, &plan, &after, &self.sim_cfg);
        let outcome = report.outcome?;
        let j = &mut self.jobs[id];
        // The freed GPU returns to the pool, so pool ids do not shift —
        // the binding just loses its largest member.
        j.binding = Some(
            VirtualDevice::new(
                binding
                    .gpu_ids()
                    .iter()
                    .copied()
                    .filter(|&g| g != freed)
                    .collect(),
            )
            .expect("shrink keeps at least one GPU"),
        );
        j.sub = Some(after);
        j.plan = Some(plan);
        j.throughput = outcome.stats.throughput;
        j.shrinks += 1;
        self.shrinks += 1;
        Some(freed)
    }

    /// Planned expand at a step boundary: add `gpu` to the binding and
    /// compile the grown slice through the shared service (a repeat shape
    /// is a cache hit). Returns false — with the tenant untouched — when
    /// the grown slice fails to plan.
    fn expand(&mut self, id: usize, gpu: usize) -> bool {
        let Some(binding) = self.jobs[id].binding.clone() else {
            return false;
        };
        let mut ids: Vec<usize> = binding.gpu_ids().to_vec();
        ids.push(gpu);
        ids.sort_unstable();
        let ir = self.templates[self.jobs[id].template].ir.clone();
        let Ok(sub) = self.pool.subcluster(&ids) else {
            return false;
        };
        let Ok(plan) = self.service.plan(&ir, &sub, &self.planner_cfg) else {
            return false;
        };
        let Ok(out) = simulate_step(&plan, &sub, &self.sim_cfg) else {
            return false;
        };
        let j = &mut self.jobs[id];
        j.binding = Some(VirtualDevice::new(ids).expect("non-empty expansion"));
        j.sub = Some(sub);
        j.plan = Some(plan);
        j.throughput = out.stats.throughput;
        j.expands += 1;
        self.expands += 1;
        true
    }

    /// Bind a queued job to `gpu_ids` and start (or resume) it.
    fn bind(&mut self, id: usize, mut gpu_ids: Vec<usize>) {
        gpu_ids.sort_unstable();
        let ir = self.templates[self.jobs[id].template].ir.clone();
        let planned = self
            .pool
            .subcluster(&gpu_ids)
            .map_err(|e| e.to_string())
            .and_then(|sub| {
                self.service
                    .plan(&ir, &sub, &self.planner_cfg)
                    .map_err(|e| e.to_string())
                    .map(|plan| (sub, plan))
            })
            .and_then(|(sub, plan)| {
                simulate_step(&plan, &sub, &self.sim_cfg)
                    .map_err(|e| e.to_string())
                    .map(|out| (sub, plan, out.stats.throughput))
            });
        match planned {
            Ok((sub, plan, throughput)) => {
                let now = self.now;
                let j = &mut self.jobs[id];
                j.queue_wait_s += now - j.queued_since;
                j.phase = JobPhase::Running;
                j.binding = Some(VirtualDevice::new(gpu_ids).expect("non-empty grant"));
                j.sub = Some(sub);
                j.plan = Some(plan);
                j.throughput = throughput;
                if j.started_s.is_none() {
                    j.started_s = Some(now);
                    if throughput > 0.0 {
                        j.deadline_s =
                            Some(j.arrival_s + j.slo_slack * j.total_samples / throughput);
                    }
                }
            }
            Err(e) => {
                // Should not happen for replicable templates; fail the job
                // rather than wedge the queue.
                self.free.extend_from_slice(&gpu_ids);
                self.free.sort_unstable();
                let now = self.now;
                let j = &mut self.jobs[id];
                j.phase = JobPhase::Failed;
                j.error = Some(format!("bind failed: {e}"));
                j.finished_s = Some(now);
            }
        }
    }

    /// Which running job owns pool GPU `gpu`, if any.
    fn owner_of(&self, gpu: usize) -> Option<usize> {
        self.jobs
            .iter()
            .find(|j| j.is_running() && j.binding.as_ref().is_some_and(|b| b.contains(gpu)))
            .map(|j| j.id)
    }

    /// Apply one fault-trace event to the pool and to affected tenants.
    fn apply_fault(&mut self, ev: FaultEvent) -> Result<()> {
        match ev.delta {
            ClusterDelta::GpuDegraded { id, scale } => {
                self.pool.apply_delta(ev.delta)?;
                if let Some(job) = self.owner_of(id) {
                    let local = self.local_id(job, id);
                    self.recover_rate(job, ev, ClusterDelta::GpuDegraded { id: local, scale });
                }
            }
            ClusterDelta::GpuRestored { id } => {
                self.pool.apply_delta(ev.delta)?;
                if let Some(job) = self.owner_of(id) {
                    let local = self.local_id(job, id);
                    self.recover_rate(job, ev, ClusterDelta::GpuRestored { id: local });
                }
            }
            ClusterDelta::LinkBandwidth { .. } => {
                self.pool.apply_delta(ev.delta)?;
                let running: Vec<usize> = self
                    .jobs
                    .iter()
                    .filter(|j| j.is_running())
                    .map(|j| j.id)
                    .collect();
                for job in running {
                    self.recover_rate(job, ev, ev.delta);
                }
            }
            ClusterDelta::GpuRemoved { id } => {
                let owner = self.owner_of(id);
                let local = owner.map(|job| self.local_id(job, id));
                self.pool.apply_delta(ev.delta)?;
                // Pool ids above `id` shifted down; remap the free list and
                // every binding (the owner loses the member outright).
                self.free.retain(|&g| g != id);
                for g in &mut self.free {
                    if *g > id {
                        *g -= 1;
                    }
                }
                for j in &mut self.jobs {
                    if let Some(b) = &j.binding {
                        j.binding = b.remap_removed(id);
                    }
                }
                if let (Some(job), Some(local)) = (owner, local) {
                    self.recover_structural(job, ev, local);
                }
            }
            ClusterDelta::GpuAdded { node, .. } => {
                let at = self.pool.insertion_id(node)?;
                self.pool.apply_delta(ev.delta)?;
                for g in &mut self.free {
                    if *g >= at {
                        *g += 1;
                    }
                }
                for j in &mut self.jobs {
                    if let Some(b) = &j.binding {
                        j.binding = Some(b.remap_inserted(at));
                    }
                }
                self.free.push(at);
                self.free.sort_unstable();
            }
        }
        let capacity = self.pool.total_flops();
        if capacity < self.cfg.policy.min_capacity * self.start_flops {
            return Err(SimError::InsufficientCapacity {
                available: capacity / self.start_flops,
                required: self.cfg.policy.min_capacity,
            });
        }
        Ok(())
    }

    /// Local (sub-cluster) id of pool GPU `gpu` inside `job`'s binding.
    fn local_id(&self, job: usize, gpu: usize) -> usize {
        self.jobs[job]
            .binding
            .as_ref()
            .and_then(|b| b.gpu_ids().iter().position(|&g| g == gpu))
            .expect("owner_of guarantees membership")
    }

    /// A rate fault (degrade / restore / link) hit a tenant. The elastic
    /// runtime replans through the service's delta fast path with bounded
    /// retry/backoff; the baseline rides it out on the static plan and
    /// merely re-measures its (straggling) throughput.
    fn recover_rate(&mut self, job: usize, ev: FaultEvent, local_delta: ClusterDelta) {
        let ir = self.templates[self.jobs[job].template].ir.clone();
        if !self.cfg.elastic {
            // Static runtime: same plan, slower hardware underneath.
            let j = &mut self.jobs[job];
            let Some(sub) = j.sub.as_mut() else { return };
            if sub.apply_delta(local_delta).is_err() {
                return;
            }
            if let (Some(plan), Some(sub)) = (j.plan.clone(), j.sub.clone()) {
                if let Ok(out) = simulate_step(&plan, &sub, &self.sim_cfg) {
                    j.throughput = out.stats.throughput;
                }
            }
            return;
        }
        let Some(sub) = self.jobs[job].sub.clone() else {
            return;
        };
        let old_plan = self.jobs[job].plan.clone();
        let policy = self.cfg.policy;
        let mut downtime = policy.detection_latency_s;
        let mut retries = 0u32;
        let replanned = loop {
            let before = self.service.stats();
            match self
                .service
                .replan(&ir, &sub, &self.planner_cfg, local_delta)
            {
                Ok((plan, after)) => {
                    break Some((plan, after, classify(&before, &self.service.stats())))
                }
                Err(e) => {
                    if ev.kind.is_transient() && retries < policy.max_retries {
                        retries += 1;
                        downtime += policy.backoff_s(retries);
                    } else {
                        self.fail_job(job, format!("replan failed: {e}"));
                        return;
                    }
                }
            }
        };
        let Some((plan, after, mut path)) = replanned else {
            return;
        };
        // Verify the fast path against the old plan (rate faults preserve
        // stage shapes); fall back to a cold compile if it broke the plan.
        let reference = old_plan.as_deref().unwrap_or(&plan);
        let report = check_replan(reference, &plan, &after, &self.sim_cfg);
        let (plan, outcome) = if report.is_consistent() {
            (plan, report.outcome.expect("consistent reports simulate"))
        } else {
            let Ok(cold) = cold_plan(&ir, &after, &self.planner_cfg).map(Arc::new) else {
                self.fail_job(job, "rate-fault recovery failed to recompile".into());
                return;
            };
            let audit = check_replan(&cold, &cold, &after, &self.sim_cfg);
            let Some(outcome) = audit.outcome else {
                self.fail_job(job, "recovery failed verification after recompile".into());
                return;
            };
            path = ReplanPath::Full;
            (cold, outcome)
        };
        let now = self.now;
        let j = &mut self.jobs[job];
        j.sub = Some(after);
        j.plan = Some(plan);
        j.throughput = outcome.stats.throughput;
        j.paused_until = j.paused_until.max(now + downtime);
        j.downtime_s += downtime;
        j.recoveries.push(RecoveryEvent {
            kind: ev.kind,
            at_samples: j.processed,
            samples_lost: 0.0,
            downtime_s: downtime,
            time_to_recover_s: downtime,
            retries,
            replan: path,
        });
    }

    /// A crash removed a GPU out of a tenant's binding (already remapped).
    /// Elastic: rollback to the last checkpoint, replan the shrunken slice
    /// (cached suffix when warm), resume — or requeue gracefully when the
    /// whole binding died. Baseline: kill and requeue from sample zero.
    fn recover_structural(&mut self, job: usize, ev: FaultEvent, local: usize) {
        let policy = self.cfg.policy;
        let old_throughput = self.jobs[job].throughput;
        if !self.cfg.elastic {
            // Kill-and-requeue: all committed progress is gone; the job
            // waits for a *full* allocation again.
            let now = self.now;
            let j = &mut self.jobs[job];
            let lost = j.committed;
            j.committed = 0.0;
            j.lost += lost;
            j.restarts += 1;
            j.phase = JobPhase::Queued;
            j.queued_since = now;
            j.downtime_s += policy.detection_latency_s;
            j.recoveries.push(RecoveryEvent {
                kind: ev.kind,
                at_samples: j.processed,
                samples_lost: lost,
                downtime_s: policy.detection_latency_s,
                time_to_recover_s: policy.detection_latency_s + ratio(lost, old_throughput),
                retries: 0,
                replan: ReplanPath::Full,
            });
            self.kills += 1;
            self.release(job);
            self.queue.push(job);
            return;
        }

        // Elastic: rollback to checkpoint.
        let interval = policy.checkpoint_interval.max(1.0);
        let (lost, downtime) = {
            let j = &mut self.jobs[job];
            let checkpoint = (j.committed / interval).floor() * interval;
            let lost = j.committed - checkpoint;
            j.committed = checkpoint;
            j.lost += lost;
            (lost, policy.detection_latency_s)
        };

        if self.jobs[job].binding.is_none() {
            // The binding dissolved entirely: queue for reacquisition
            // rather than failing — `rebalance` will find capacity (or
            // count an insufficient event and wait for a heal).
            let now = self.now;
            let j = &mut self.jobs[job];
            j.phase = JobPhase::Queued;
            j.queued_since = now;
            j.sub = None;
            j.plan = None;
            j.throughput = 0.0;
            j.restarts += 1;
            j.downtime_s += downtime;
            j.recoveries.push(RecoveryEvent {
                kind: ev.kind,
                at_samples: j.processed,
                samples_lost: lost,
                downtime_s: downtime,
                time_to_recover_s: downtime + ratio(lost, old_throughput),
                retries: 0,
                replan: ReplanPath::Full,
            });
            self.queue.push(job);
            return;
        }

        // Replan the surviving slice via the delta fast path.
        let ir = self.templates[self.jobs[job].template].ir.clone();
        let sub = self.jobs[job].sub.clone().expect("running job has a slice");
        let before = self.service.stats();
        let delta = ClusterDelta::GpuRemoved { id: local };
        let mut path;
        let (plan, after) = match self.service.replan(&ir, &sub, &self.planner_cfg, delta) {
            Ok((plan, after)) => {
                path = classify(&before, &self.service.stats());
                (plan, after)
            }
            Err(_) => {
                // Graceful degradation: cached path failed, compile the
                // surviving slice from scratch.
                let binding = self.jobs[job].binding.clone().expect("non-empty binding");
                let Ok(after) = self.pool.subcluster(binding.gpu_ids()) else {
                    self.fail_job(job, "surviving slice is not a legal sub-cluster".into());
                    return;
                };
                match cold_plan(&ir, &after, &self.planner_cfg) {
                    Ok(plan) => {
                        path = ReplanPath::Full;
                        (Arc::new(plan), after)
                    }
                    Err(e) => {
                        self.fail_job(job, format!("crash recovery failed: {e}"));
                        return;
                    }
                }
            }
        };
        // Structural deltas legitimately change stage shapes: verify
        // executability, not equivalence with the old plan.
        let report = check_replan(&plan, &plan, &after, &self.sim_cfg);
        let (plan, outcome) = if report.is_consistent() {
            (plan, report.outcome.expect("consistent reports simulate"))
        } else {
            let Ok(cold) = cold_plan(&ir, &after, &self.planner_cfg).map(Arc::new) else {
                self.fail_job(job, "crash recovery failed to recompile".into());
                return;
            };
            let audit = check_replan(&cold, &cold, &after, &self.sim_cfg);
            let Some(outcome) = audit.outcome else {
                self.fail_job(job, "crash recovery failed verification".into());
                return;
            };
            path = ReplanPath::Full;
            (cold, outcome)
        };
        let now = self.now;
        let j = &mut self.jobs[job];
        j.sub = Some(after);
        j.plan = Some(plan);
        j.throughput = outcome.stats.throughput;
        j.paused_until = j.paused_until.max(now + downtime);
        j.downtime_s += downtime;
        j.recoveries.push(RecoveryEvent {
            kind: ev.kind,
            at_samples: j.processed,
            samples_lost: lost,
            downtime_s: downtime,
            time_to_recover_s: downtime + ratio(lost, outcome.stats.throughput),
            retries: 0,
            replan: path,
        });
    }

    fn fail_job(&mut self, job: usize, error: String) {
        self.release(job);
        let now = self.now;
        let j = &mut self.jobs[job];
        j.phase = JobPhase::Failed;
        j.error = Some(error);
        j.finished_s = Some(now);
    }

    /// Close the books at the horizon.
    fn finish(mut self) -> FleetReport {
        // Terminal queue time counts as waiting.
        for &id in &self.queue {
            let j = &mut self.jobs[id];
            j.queue_wait_s += self.cfg.horizon_s - j.queued_since;
        }
        let horizon = self.cfg.horizon_s;
        let mut stats = FleetStats {
            horizon_s: horizon,
            submitted: self.jobs.len() as u64,
            completed: 0,
            rejected: self.rejected,
            failed: 0,
            queued_at_end: 0,
            running_at_end: 0,
            preemptions: self.preemptions,
            kills: self.kills,
            shrinks: self.shrinks,
            expands: self.expands,
            insufficient_events: self.insufficient,
            fault_events: self.next_fault as u64,
            committed_samples: 0.0,
            processed_samples: 0.0,
            samples_lost: 0.0,
            goodput: 0.0,
            mean_queue_wait_s: 0.0,
            slo_met: 0,
            slo_missed: 0,
            recovery: RecoveryStats::default(),
            cache: self.service.stats(),
        };
        let mut faults: Vec<(f64, RecoveryEvent)> = Vec::new();
        let mut total_wait = 0.0;
        let mut jobs = Vec::with_capacity(self.jobs.len());
        let mut training_s = 0.0;
        let mut downtime_s = 0.0;
        for j in &self.jobs {
            match j.phase {
                JobPhase::Completed => stats.completed += 1,
                JobPhase::Failed
                    if j.error
                        .as_deref()
                        .is_some_and(|e| e.starts_with("rejected")) => {}
                JobPhase::Failed => stats.failed += 1,
                JobPhase::Queued => stats.queued_at_end += 1,
                JobPhase::Running => stats.running_at_end += 1,
            }
            stats.committed_samples += j.committed;
            stats.processed_samples += j.processed;
            stats.samples_lost += j.lost;
            total_wait += j.queue_wait_s;
            training_s += j.active_s;
            downtime_s += j.downtime_s;
            let slo_met = match (j.finished_s, j.deadline_s) {
                (Some(f), Some(d)) if j.phase == JobPhase::Completed => Some(f <= d),
                (_, Some(d)) if horizon > d || j.phase == JobPhase::Failed => Some(false),
                _ => None,
            };
            match slo_met {
                Some(true) => stats.slo_met += 1,
                Some(false) => stats.slo_missed += 1,
                None => {}
            }
            for e in &j.recoveries {
                faults.push((e.at_samples, *e));
            }
            jobs.push(JobSummary {
                id: j.id,
                template: self.templates[j.template].name.clone(),
                priority: j.priority,
                requested_gpus: j.requested_gpus,
                allocated_gpus: j.allocated(),
                phase: j.phase,
                committed_samples: j.committed,
                total_samples: j.total_samples,
                queue_wait_s: j.queue_wait_s,
                downtime_s: j.downtime_s,
                restarts: j.restarts,
                shrinks: j.shrinks,
                expands: j.expands,
                faults: j.recoveries.len(),
                slo_met,
                error: j.error.clone(),
            });
        }
        faults.sort_by(|a, b| a.0.total_cmp(&b.0));
        let faults: Vec<RecoveryEvent> = faults.into_iter().map(|(_, e)| e).collect();
        stats.goodput = ratio(stats.committed_samples, horizon);
        stats.mean_queue_wait_s = ratio(total_wait, stats.submitted as f64);
        stats.recovery = RecoveryStats {
            committed_samples: stats.committed_samples,
            processed_samples: stats.processed_samples,
            samples_lost: stats.samples_lost,
            wall_seconds: horizon,
            training_seconds: training_s,
            downtime_seconds: downtime_s,
            goodput: stats.goodput,
            raw_throughput: ratio(stats.processed_samples, training_s),
            availability: ratio(training_s, training_s + downtime_s),
            replans_cached: faults
                .iter()
                .filter(|e| e.replan == ReplanPath::CachedSuffix)
                .count() as u64,
            replans_full: faults
                .iter()
                .filter(|e| e.replan == ReplanPath::Full)
                .count() as u64,
            faults,
        };
        FleetReport { stats, jobs }
    }

    /// Invariant check for tests: bindings plus the free list form an exact
    /// partition of the pool.
    #[doc(hidden)]
    pub fn audit_partition(&self) -> std::result::Result<(), String> {
        let mut vds: Vec<VirtualDevice> =
            self.jobs.iter().filter_map(|j| j.binding.clone()).collect();
        if !self.free.is_empty() {
            vds.push(VirtualDevice::new(self.free.clone()).expect("non-empty free list"));
        }
        whale_hardware::validate_partition(&self.pool, &vds).map_err(|e| e.to_string())
    }
}

fn ratio(a: f64, b: f64) -> f64 {
    if b > 0.0 {
        a / b
    } else {
        0.0
    }
}

/// Which path a sequential `PlanService::replan` took, read off the shared
/// counters: a hit or partial hit means cached artifacts served it.
fn classify(before: &CacheStats, after: &CacheStats) -> ReplanPath {
    if after.partial_hits > before.partial_hits || after.hits > before.hits {
        ReplanPath::CachedSuffix
    } else {
        ReplanPath::Full
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool() -> Cluster {
        Cluster::parse("2x(4xV100)+2x(4xP100)").unwrap()
    }

    fn quick_cfg() -> FleetConfig {
        FleetConfig {
            horizon_s: 6000.0,
            arrival_mean_s: 400.0,
            ..FleetConfig::default()
        }
    }

    #[test]
    fn fleet_run_is_deterministic() {
        let run = || {
            FleetSim::new(pool(), default_templates(), quick_cfg())
                .unwrap()
                .run()
                .unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a.stats, b.stats, "same seeds ⇒ identical stats");
        assert_eq!(a.jobs, b.jobs);
        assert!(a.stats.submitted > 0);
        assert!(a.stats.fault_events > 0, "churn must actually strike");
    }

    #[test]
    fn different_seeds_differ() {
        let a = FleetSim::new(pool(), default_templates(), quick_cfg())
            .unwrap()
            .run()
            .unwrap();
        let b = FleetSim::new(
            pool(),
            default_templates(),
            FleetConfig {
                seed: 7,
                ..quick_cfg()
            },
        )
        .unwrap()
        .run()
        .unwrap();
        assert_ne!(a.stats, b.stats);
    }

    #[test]
    fn calm_fleet_completes_jobs_without_loss() {
        // No faults at all: every admitted job should run clean.
        let cfg = FleetConfig {
            faults: FaultModel {
                mtbf_samples: 1e12,
                mttr_samples: 1.0,
                seed: 1,
            },
            ..quick_cfg()
        };
        let report = FleetSim::new(pool(), default_templates(), cfg)
            .unwrap()
            .run()
            .unwrap();
        assert!(report.stats.completed > 0);
        assert_eq!(report.stats.samples_lost, 0.0);
        assert_eq!(report.stats.kills, 0);
        assert!(report.stats.recovery.faults.is_empty());
        assert!(report.stats.goodput > 0.0);
    }

    #[test]
    fn elastic_beats_kill_and_requeue_under_churn() {
        let elastic = FleetSim::new(pool(), default_templates(), quick_cfg())
            .unwrap()
            .run()
            .unwrap();
        let baseline = FleetSim::new(
            pool(),
            default_templates(),
            FleetConfig {
                elastic: false,
                ..quick_cfg()
            },
        )
        .unwrap()
        .run()
        .unwrap();
        assert!(
            elastic.stats.goodput > baseline.stats.goodput,
            "elastic {} vs baseline {}",
            elastic.stats.goodput,
            baseline.stats.goodput
        );
    }

    #[test]
    fn stats_json_round_trips() {
        let report = FleetSim::new(pool(), default_templates(), quick_cfg())
            .unwrap()
            .run()
            .unwrap();
        let text = report.stats.to_json().to_string_pretty();
        let parsed = crate::json::parse(&text).unwrap();
        assert_eq!(
            parsed.get("goodput").as_f64().unwrap(),
            report.stats.goodput
        );
        assert_eq!(
            parsed.get("submitted").as_f64().unwrap() as u64,
            report.stats.submitted
        );
    }

    #[test]
    fn rejects_only_on_queue_overflow() {
        // A tiny queue and a flood of arrivals forces rejections.
        let cfg = FleetConfig {
            arrival_mean_s: 20.0,
            max_queue: 2,
            horizon_s: 3000.0,
            ..FleetConfig::default()
        };
        let report = FleetSim::new(pool(), default_templates(), cfg)
            .unwrap()
            .run()
            .unwrap();
        assert!(report.stats.rejected > 0, "{:?}", report.stats);
        // Rejections are not failures.
        let rejected_rows = report
            .jobs
            .iter()
            .filter(|j| {
                j.error
                    .as_deref()
                    .is_some_and(|e| e.starts_with("rejected"))
            })
            .count() as u64;
        assert_eq!(rejected_rows, report.stats.rejected);
    }

    #[test]
    fn bad_configs_are_rejected() {
        assert!(FleetSim::new(pool(), vec![], quick_cfg()).is_err());
        assert!(FleetSim::new(
            pool(),
            default_templates(),
            FleetConfig {
                gpu_choices: vec![],
                ..quick_cfg()
            },
        )
        .is_err());
        assert!(FleetSim::new(
            pool(),
            default_templates(),
            FleetConfig {
                horizon_s: 0.0,
                ..quick_cfg()
            },
        )
        .is_err());
    }
}
