//! Discrete-event cluster simulator for the Whale reproduction.
//!
//! The paper evaluates on real V100/P100 clusters; this crate substitutes a
//! deterministic simulator that executes an
//! [`whale_planner::ExecutionPlan`] against the analytic hardware model:
//!
//! * [`schedule`] — the backward-first (1F1B) and GPipe pipeline orders and
//!   the control/data dependency structure of §4 (Fig. 12);
//! * [`engine`] — per-step simulation: compute via `t = MF/(GF·α)`,
//!   inter-stage transfers, intra-stage collectives, hierarchical gradient
//!   AllReduce overlapped with backward compute, memory audit;
//! * [`metrics`] — step time, throughput, per-GPU utilization (the SMACT
//!   proxy of Tables 2-3), bubble ratio;
//! * [`trainer`] — multi-step runs with a scaling-law loss model (Fig. 16);
//! * [`trace`] — ASCII pipeline diagrams and Chrome-trace export.
//!
//! # Examples
//!
//! ```
//! use whale_graph::models;
//! use whale_hardware::Cluster;
//! use whale_ir::Annotator;
//! use whale_planner::{plan, PlannerConfig};
//! use whale_sim::{simulate_step, SimConfig};
//!
//! let g = models::resnet50(64).unwrap();
//! let ir = Annotator::new(g, 64).replicate_all().unwrap().finish().unwrap();
//! let cluster = Cluster::parse("8xV100+8xP100").unwrap();
//! let p = plan(&ir, &cluster, &PlannerConfig::default()).unwrap();
//! let out = simulate_step(&p, &cluster, &SimConfig::default()).unwrap();
//! assert!(out.stats.throughput > 0.0);
//! ```

pub mod engine;
pub mod error;
pub mod faults;
pub mod fleet;
pub mod json;
pub mod metrics;
pub mod queue;
pub mod recovery;
pub mod replan;
pub mod rng;
pub mod schedule;
pub mod trace;
pub mod trainer;

pub use engine::{simulate_step, simulate_step_reference, SimConfig, StepOutcome, TaskRecord};
pub use error::{Result, SimError};
pub use faults::{FaultEvent, FaultKind, FaultModel, FaultTrace};
pub use fleet::{default_templates, FleetConfig, FleetReport, FleetSim, FleetStats, JobTemplate};
pub use json::JsonValue;
pub use metrics::{GpuStat, StepStats};
pub use queue::{replay, synthetic_trace, AllocPolicy, Job, JobOutcome, QueueStats};
pub use recovery::{
    time_to_recover_quantile, RecoveryEvent, RecoveryPolicy, RecoveryStats, ReplanPath,
};
pub use replan::{check_replan, ReplanReport};
pub use rng::SplitMix64;
pub use schedule::{data_deps, stage_order, TaskKind};
pub use trace::{ascii_timeline, chrome_trace, memory_profile};
pub use trainer::{simulate_training, LossModel, TrainPoint, TrainingRun};
