//! Error type for simulation.

use std::fmt;

/// Errors raised while simulating an execution plan.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// The plan referenced devices or structure the cluster lacks.
    BadPlan(String),
    /// Hardware-model failure (unknown device, bad group).
    Hardware(String),
    /// Scheduling produced an inconsistent task graph (a bug if it happens).
    Schedule(String),
    /// A fleet run fell below its capacity floor: the pool's surviving
    /// FLOPS dropped under `required` (a fraction of the starting
    /// capacity), so no legal shrink can keep the tenants running.
    InsufficientCapacity {
        /// Surviving capacity as a fraction of the starting capacity.
        available: f64,
        /// The configured floor ([`crate::recovery::RecoveryPolicy::min_capacity`]).
        required: f64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::BadPlan(s) => write!(f, "bad plan: {s}"),
            SimError::Hardware(s) => write!(f, "hardware error: {s}"),
            SimError::Schedule(s) => write!(f, "schedule error: {s}"),
            SimError::InsufficientCapacity {
                available,
                required,
            } => write!(
                f,
                "insufficient capacity: {available:.3} of starting FLOPS survive, \
                 below the {required:.3} floor"
            ),
        }
    }
}

impl std::error::Error for SimError {}

impl From<whale_hardware::HardwareError> for SimError {
    fn from(e: whale_hardware::HardwareError) -> Self {
        SimError::Hardware(e.to_string())
    }
}

impl From<whale_planner::PlanError> for SimError {
    fn from(e: whale_planner::PlanError) -> Self {
        SimError::BadPlan(e.to_string())
    }
}

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, SimError>;
