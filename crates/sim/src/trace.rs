//! Timeline export: ASCII pipeline diagrams and Chrome-trace JSON.
//!
//! The ASCII renderer reproduces the paper's pipeline figures (Figs. 3, 12):
//! one row per stage, `F` cells for forward micro batches, `B` for backward,
//! `.` for bubbles.

use crate::engine::{StepOutcome, TaskRecord};
use crate::schedule::TaskKind;
use whale_hardware::Cluster;
use whale_planner::ExecutionPlan;

/// Render the step timeline as an ASCII pipeline diagram with `width`
/// character columns.
pub fn ascii_timeline(outcome: &StepOutcome, width: usize) -> String {
    let width = width.max(10);
    let end = outcome
        .timeline
        .iter()
        .map(|r| r.end)
        .fold(0.0f64, f64::max);
    if end <= 0.0 {
        return String::from("(empty timeline)\n");
    }
    let num_stages = outcome
        .timeline
        .iter()
        .map(|r| r.kind.stage())
        .max()
        .map(|s| s + 1)
        .unwrap_or(0);
    let col = |t: f64| ((t / end) * width as f64).floor() as usize;
    let mut out = String::new();
    for s in 0..num_stages {
        let mut row = vec!['.'; width + 1];
        for r in outcome.timeline.iter().filter(|r| r.kind.stage() == s) {
            let (a, b) = (col(r.start), col(r.end).max(col(r.start) + 1));
            let ch = if r.kind.is_backward() { 'B' } else { 'F' };
            for cell in row.iter_mut().take(b.min(width + 1)).skip(a) {
                *cell = ch;
            }
        }
        out.push_str(&format!("stage{s:<2} |"));
        out.extend(row);
        out.push('\n');
    }
    out
}

/// Export the timeline as Chrome `chrome://tracing` JSON (one row per
/// stage, microseconds).
pub fn chrome_trace(outcome: &StepOutcome) -> String {
    let mut events = Vec::new();
    for r in &outcome.timeline {
        events.push(format!(
            r#"{{"name":"{}","ph":"X","ts":{:.3},"dur":{:.3},"pid":0,"tid":{}}}"#,
            task_label(r),
            r.start * 1e6,
            (r.end - r.start) * 1e6,
            r.kind.stage()
        ));
    }
    format!("[{}]", events.join(","))
}

/// Render each GPU's memory demand as an ASCII bar chart against capacity.
///
/// One row per GPU: `#` cells for used memory, `.` for headroom, `!` marking
/// overflow past capacity.
pub fn memory_profile(plan: &ExecutionPlan, cluster: &Cluster, width: usize) -> String {
    let width = width.max(10);
    let mut out = String::new();
    for (gpu_id, bytes) in plan.memory_per_gpu() {
        let (cap, model) = match cluster.gpu(gpu_id) {
            Ok(g) => (g.memory_bytes(), g.model.to_string()),
            Err(_) => (0, "gpu?".into()),
        };
        let frac = if cap > 0 {
            bytes as f64 / cap as f64
        } else {
            1.0
        };
        let used = ((frac.min(1.0)) * width as f64).round() as usize;
        let over = frac > 1.0;
        let mut bar: String = "#".repeat(used);
        bar.push_str(&".".repeat(width - used));
        if over {
            bar.push('!');
        }
        out.push_str(&format!(
            "gpu{gpu_id:<3} {model:<10} |{bar}| {:.1}/{:.0} GiB{}
",
            bytes as f64 / (1u64 << 30) as f64,
            cap as f64 / (1u64 << 30) as f64,
            if over { "  OUT OF MEMORY" } else { "" }
        ));
    }
    out
}

fn task_label(r: &TaskRecord) -> String {
    match r.kind {
        TaskKind::Forward { stage, micro } => format!("F{stage},{micro}"),
        TaskKind::Backward { stage, micro } => format!("B{stage},{micro}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{simulate_step, SimConfig};
    use whale_graph::models;
    use whale_hardware::Cluster;
    use whale_ir::Annotator;
    use whale_planner::{plan, PlannerConfig};

    fn outcome() -> StepOutcome {
        let g = models::bert_base(16, 64).unwrap();
        let ir = Annotator::new(g, 16)
            .auto_pipeline(4)
            .unwrap()
            .finish()
            .unwrap();
        let cluster = Cluster::parse("4xV100").unwrap();
        let p = plan(&ir, &cluster, &PlannerConfig::default()).unwrap();
        simulate_step(&p, &cluster, &SimConfig::default()).unwrap()
    }

    #[test]
    fn ascii_has_one_row_per_stage() {
        let a = ascii_timeline(&outcome(), 80);
        assert_eq!(a.lines().count(), 4);
        assert!(a.contains('F') && a.contains('B'));
        // Later stages start later: stage 3's row begins with bubbles.
        let last = a.lines().last().unwrap();
        let body = last.split('|').nth(1).unwrap();
        assert!(body.starts_with('.'), "stage 3 should idle first: {last}");
    }

    #[test]
    fn memory_profile_bars() {
        let g = models::bert_base(16, 64).unwrap();
        let ir = Annotator::new(g, 16)
            .auto_pipeline(4)
            .unwrap()
            .finish()
            .unwrap();
        let cluster = Cluster::parse("4xV100").unwrap();
        let p = plan(&ir, &cluster, &PlannerConfig::default()).unwrap();
        let prof = memory_profile(&p, &cluster, 40);
        assert_eq!(prof.lines().count(), 4);
        assert!(prof.contains("V100-32GB"));
        assert!(prof.contains('#'));
        assert!(!prof.contains("OUT OF MEMORY"));
    }

    #[test]
    fn memory_profile_flags_oom() {
        let g = models::gpt2_xl(128, 256).unwrap();
        let ir = Annotator::new(g, 128)
            .replicate_all()
            .unwrap()
            .finish()
            .unwrap();
        let cluster = Cluster::parse("2xP100").unwrap();
        let cfg = PlannerConfig {
            hardware_aware: false,
            ..PlannerConfig::default()
        };
        let p = plan(&ir, &cluster, &cfg).unwrap();
        let prof = memory_profile(&p, &cluster, 30);
        assert!(prof.contains("OUT OF MEMORY"));
        assert!(prof.contains('!'));
    }

    #[test]
    fn chrome_trace_is_json_array() {
        let j = chrome_trace(&outcome());
        assert!(j.starts_with('[') && j.ends_with(']'));
        assert!(j.contains("\"name\":\"F0,0\""));
        assert!(j.contains("\"name\":\"B3,0\""));
    }
}
