//! Pipeline task DAG construction (§4, "TaskGraph Schedule").
//!
//! Whale groups operations into forward/backward/optimizer phases and
//! controls their order by adding control dependencies between entrance and
//! exit tensors — e.g. making `B₀,₀` execute before `F₀,₄` under the
//! backward-first policy (Fig. 12). We reproduce that as an explicit task
//! DAG: one forward and one backward task per (stage, micro batch), data
//! dependencies along the pipeline, and per-device control edges encoding
//! the chosen schedule.

use whale_planner::ScheduleKind;

/// A schedulable unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TaskKind {
    /// Forward pass of one micro batch on one stage (`F_{s,m}`).
    Forward {
        /// Stage index.
        stage: usize,
        /// Micro-batch index.
        micro: usize,
    },
    /// Backward pass of one micro batch on one stage (`B_{s,m}`).
    Backward {
        /// Stage index.
        stage: usize,
        /// Micro-batch index.
        micro: usize,
    },
}

impl TaskKind {
    /// Stage this task runs on.
    pub fn stage(&self) -> usize {
        match *self {
            TaskKind::Forward { stage, .. } | TaskKind::Backward { stage, .. } => stage,
        }
    }

    /// Micro-batch index.
    pub fn micro(&self) -> usize {
        match *self {
            TaskKind::Forward { micro, .. } | TaskKind::Backward { micro, .. } => micro,
        }
    }

    /// Whether this is a backward task.
    pub fn is_backward(&self) -> bool {
        matches!(self, TaskKind::Backward { .. })
    }
}

/// The control order of tasks on one stage's device(s).
///
/// * Backward-first (1F1B/DAPPLE, Whale's default): stage `s` of `S` admits
///   `min(S−s, M)` warm-up forwards, then strictly alternates backward and
///   forward so activations drain as early as possible.
/// * GPipe: all forwards, then all backwards.
pub fn stage_order(
    stage: usize,
    num_stages: usize,
    num_micro: usize,
    schedule: ScheduleKind,
) -> Vec<TaskKind> {
    let mut order = Vec::with_capacity(2 * num_micro);
    match schedule {
        ScheduleKind::GPipe => {
            for m in 0..num_micro {
                order.push(TaskKind::Forward { stage, micro: m });
            }
            for m in 0..num_micro {
                order.push(TaskKind::Backward { stage, micro: m });
            }
        }
        // The async schedule's steady state interleaves exactly like 1F1B;
        // the absent flush is modelled by the engine's makespan formula.
        ScheduleKind::BackwardFirst | ScheduleKind::AsyncNoFlush => {
            let warmup = (num_stages - stage).min(num_micro);
            for m in 0..warmup {
                order.push(TaskKind::Forward { stage, micro: m });
            }
            let mut bw = 0;
            let mut fw = warmup;
            while bw < num_micro {
                order.push(TaskKind::Backward { stage, micro: bw });
                bw += 1;
                if fw < num_micro {
                    order.push(TaskKind::Forward { stage, micro: fw });
                    fw += 1;
                }
            }
        }
    }
    order
}

/// Data dependencies of a task (cross-stage tensor edges).
pub fn data_deps(task: TaskKind, num_stages: usize) -> Vec<TaskKind> {
    match task {
        TaskKind::Forward { stage, micro } => {
            if stage == 0 {
                vec![]
            } else {
                vec![TaskKind::Forward {
                    stage: stage - 1,
                    micro,
                }]
            }
        }
        TaskKind::Backward { stage, micro } => {
            let mut deps = vec![TaskKind::Forward { stage, micro }];
            if stage + 1 < num_stages {
                deps.push(TaskKind::Backward {
                    stage: stage + 1,
                    micro,
                });
            }
            deps
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gpipe_order_is_flush() {
        let order = stage_order(0, 2, 3, ScheduleKind::GPipe);
        assert_eq!(
            order,
            vec![
                TaskKind::Forward { stage: 0, micro: 0 },
                TaskKind::Forward { stage: 0, micro: 1 },
                TaskKind::Forward { stage: 0, micro: 2 },
                TaskKind::Backward { stage: 0, micro: 0 },
                TaskKind::Backward { stage: 0, micro: 1 },
                TaskKind::Backward { stage: 0, micro: 2 },
            ]
        );
    }

    #[test]
    fn backward_first_fig12_shape() {
        // Fig. 12: with 2 stages and many micro batches, stage 0 admits two
        // warm-up forwards then alternates B/F — so B₀,₀ runs before F₀,₂.
        let order = stage_order(0, 2, 6, ScheduleKind::BackwardFirst);
        let pos = |t: TaskKind| order.iter().position(|&x| x == t).unwrap();
        assert!(
            pos(TaskKind::Backward { stage: 0, micro: 0 })
                < pos(TaskKind::Forward { stage: 0, micro: 2 })
        );
        // Warm-up depth is min(S−s, M) = 2.
        assert_eq!(order[0], TaskKind::Forward { stage: 0, micro: 0 });
        assert_eq!(order[1], TaskKind::Forward { stage: 0, micro: 1 });
        assert_eq!(order[2], TaskKind::Backward { stage: 0, micro: 0 });
    }

    #[test]
    fn last_stage_strictly_alternates() {
        // Stage S−1 has warm-up 1: F,B,F,B,...
        let order = stage_order(3, 4, 4, ScheduleKind::BackwardFirst);
        assert_eq!(order[0], TaskKind::Forward { stage: 3, micro: 0 });
        assert_eq!(order[1], TaskKind::Backward { stage: 3, micro: 0 });
        assert_eq!(order[2], TaskKind::Forward { stage: 3, micro: 1 });
    }

    #[test]
    fn every_task_appears_exactly_once() {
        for schedule in [ScheduleKind::BackwardFirst, ScheduleKind::GPipe] {
            for stage in 0..4 {
                let order = stage_order(stage, 4, 7, schedule);
                assert_eq!(order.len(), 14);
                let fw = order.iter().filter(|t| !t.is_backward()).count();
                assert_eq!(fw, 7);
                let mut seen = std::collections::HashSet::new();
                for t in &order {
                    assert!(seen.insert(*t));
                }
            }
        }
    }

    #[test]
    fn data_dependency_structure() {
        // F_{s,m} waits on F_{s−1,m}; B_{s,m} on B_{s+1,m} and F_{s,m}.
        assert!(data_deps(TaskKind::Forward { stage: 0, micro: 2 }, 3).is_empty());
        assert_eq!(
            data_deps(TaskKind::Forward { stage: 2, micro: 1 }, 3),
            vec![TaskKind::Forward { stage: 1, micro: 1 }]
        );
        let d = data_deps(TaskKind::Backward { stage: 1, micro: 0 }, 3);
        assert!(d.contains(&TaskKind::Backward { stage: 2, micro: 0 }));
        assert!(d.contains(&TaskKind::Forward { stage: 1, micro: 0 }));
        // The last stage's backward only needs its own forward.
        assert_eq!(
            data_deps(TaskKind::Backward { stage: 2, micro: 0 }, 3),
            vec![TaskKind::Forward { stage: 2, micro: 0 }]
        );
    }
}
