//! Multi-step training simulation with a scaling-law loss model.
//!
//! Fig. 16 of the paper compares the training-loss curves of M6-MoE-100B and
//! M6-MoE-1T over 100 M samples. The real curves come from real training; we
//! substitute a Kaplan-style scaling law — loss falls as a power law in
//! samples seen, with a floor that shrinks with (effective) parameter count —
//! which reproduces the figure's claim: at equal samples, the 1 T model sits
//! strictly below the 100 B model.

use crate::rng::SplitMix64;
use whale_hardware::Cluster;
use whale_planner::ExecutionPlan;

use crate::engine::{simulate_step, SimConfig};
use crate::error::Result;

/// Scaling-law loss model `L(D) = L∞ + A·D^(−β) + B·N_eff^(−γ)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LossModel {
    /// Irreducible loss floor.
    pub l_infinity: f64,
    /// Data-term coefficient.
    pub data_coeff: f64,
    /// Data-term exponent (Kaplan et al. report ≈0.095 for LM loss).
    pub data_exponent: f64,
    /// Capacity-term coefficient.
    pub capacity_coeff: f64,
    /// Capacity-term exponent (≈0.076).
    pub capacity_exponent: f64,
    /// Effective parameter count (sparse models count activated params at a
    /// discount; we use total params with a 0.25 MoE discount exponent
    /// applied by the caller).
    pub effective_params: f64,
    /// Gaussian noise amplitude on the reported curve.
    pub noise: f64,
    /// Sample efficiency in `(0, 1]`: asynchronous training with stale
    /// gradients (PipeMare, §6) makes each sample worth less; 1.0 for
    /// synchronous training.
    pub sample_efficiency: f64,
}

impl LossModel {
    /// A language-modeling-flavoured default for `effective_params`.
    pub fn for_params(effective_params: f64) -> LossModel {
        LossModel {
            l_infinity: 1.7,
            data_coeff: 120.0,
            data_exponent: 0.19,
            capacity_coeff: 65.0,
            capacity_exponent: 0.13,
            effective_params,
            noise: 0.004,
            sample_efficiency: 1.0,
        }
    }

    /// Discount each sample's contribution (stale-gradient training).
    pub fn with_sample_efficiency(mut self, eff: f64) -> LossModel {
        self.sample_efficiency = eff.clamp(1e-6, 1.0);
        self
    }

    /// Expected loss after `samples` training samples (no noise).
    pub fn loss_at(&self, samples: f64) -> f64 {
        let d = (samples * self.sample_efficiency).max(1.0);
        let n = self.effective_params.max(1.0);
        self.l_infinity
            + self.data_coeff * d.powf(-self.data_exponent)
            + self.capacity_coeff * n.powf(-self.capacity_exponent)
    }
}

/// One point of a simulated training run.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainPoint {
    /// Training step index.
    pub step: u64,
    /// Cumulative samples seen.
    pub samples: f64,
    /// Cumulative wall-clock seconds.
    pub wall_seconds: f64,
    /// Reported training loss (scaling law + seeded noise).
    pub loss: f64,
}

/// A full simulated training run.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainingRun {
    /// Sampled curve (log-spaced checkpoints).
    pub points: Vec<TrainPoint>,
    /// Seconds per training step (constant under this simulator).
    pub step_time: f64,
    /// Samples per second.
    pub throughput: f64,
}

impl TrainingRun {
    /// Total wall-clock time of the run, seconds.
    pub fn total_seconds(&self) -> f64 {
        self.points.last().map(|p| p.wall_seconds).unwrap_or(0.0)
    }

    /// Final loss.
    pub fn final_loss(&self) -> f64 {
        self.points.last().map(|p| p.loss).unwrap_or(f64::NAN)
    }
}

/// Simulate training until `total_samples`, recording up to `checkpoints`
/// log-spaced curve points. Deterministic for a fixed `seed`.
///
/// Checkpoint steps are strictly increasing: when the run is short enough
/// that log spacing rounds several checkpoints onto the same step (e.g.
/// 16 checkpoints over 10 steps), the duplicates are skipped rather than
/// emitted twice, so `points` may be shorter than `checkpoints`. Noise is
/// drawn only for emitted points, keeping a given `(seed, curve)` pair
/// stable regardless of how many candidates collapsed.
pub fn simulate_training(
    plan: &ExecutionPlan,
    cluster: &Cluster,
    sim: &SimConfig,
    loss: &LossModel,
    total_samples: f64,
    checkpoints: usize,
    seed: u64,
) -> Result<TrainingRun> {
    let step = simulate_step(plan, cluster, sim)?.stats;
    let step_time = step.step_time;
    let per_step = plan.global_batch as f64;
    let total_steps = (total_samples / per_step).ceil().max(1.0) as u64;
    let mut rng = SplitMix64::seed_from_u64(seed);
    let n = checkpoints.max(2);
    let mut points = Vec::with_capacity(n);
    for i in 0..n {
        // Log-spaced steps from 1 to total_steps.
        let frac = i as f64 / (n - 1) as f64;
        let s = (total_steps as f64).powf(frac).round().max(1.0) as u64;
        if points.last().is_some_and(|p: &TrainPoint| p.step >= s) {
            continue;
        }
        let samples = s as f64 * per_step;
        let noise: f64 = rng.range_f64(-1.0, 1.0) * loss.noise;
        points.push(TrainPoint {
            step: s,
            samples,
            wall_seconds: s as f64 * step_time,
            loss: loss.loss_at(samples) * (1.0 + noise),
        });
    }
    Ok(TrainingRun {
        points,
        step_time,
        throughput: step.throughput,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use whale_graph::models;
    use whale_ir::Annotator;
    use whale_planner::{plan, PlannerConfig};

    #[test]
    fn loss_decreases_with_samples() {
        let m = LossModel::for_params(1e11);
        assert!(m.loss_at(1e6) > m.loss_at(1e8));
        assert!(m.loss_at(1e8) > m.l_infinity);
    }

    #[test]
    fn bigger_models_reach_lower_loss() {
        // The Fig. 16 claim at equal samples.
        let small = LossModel::for_params(100e9);
        let big = LossModel::for_params(1000e9);
        for samples in [1e6, 1e7, 1e8] {
            assert!(big.loss_at(samples) < small.loss_at(samples));
        }
    }

    #[test]
    fn training_run_is_deterministic_and_monotone_in_time() {
        let g = models::resnet50(64).unwrap();
        let ir = Annotator::new(g, 64)
            .replicate_all()
            .unwrap()
            .finish()
            .unwrap();
        let cluster = Cluster::parse("8xV100").unwrap();
        let p = plan(&ir, &cluster, &PlannerConfig::default()).unwrap();
        let lm = LossModel::for_params(25e6);
        let run1 = simulate_training(&p, &cluster, &SimConfig::default(), &lm, 1e6, 16, 7).unwrap();
        let run2 = simulate_training(&p, &cluster, &SimConfig::default(), &lm, 1e6, 16, 7).unwrap();
        assert_eq!(run1, run2, "same seed ⇒ same run");
        for w in run1.points.windows(2) {
            assert!(w[1].wall_seconds >= w[0].wall_seconds);
            assert!(w[1].samples >= w[0].samples);
        }
        assert!(run1.final_loss() < run1.points[0].loss);
    }

    #[test]
    fn short_runs_deduplicate_checkpoints() {
        let g = models::resnet50(64).unwrap();
        let ir = Annotator::new(g, 64)
            .replicate_all()
            .unwrap()
            .finish()
            .unwrap();
        let cluster = Cluster::parse("8xV100").unwrap();
        let p = plan(&ir, &cluster, &PlannerConfig::default()).unwrap();
        let lm = LossModel::for_params(25e6);
        // 10 steps (640 samples / batch 64) but 16 requested checkpoints:
        // log spacing rounds several onto the same step.
        let run =
            simulate_training(&p, &cluster, &SimConfig::default(), &lm, 640.0, 16, 7).unwrap();
        assert!(run.points.len() <= 16);
        for w in run.points.windows(2) {
            assert!(w[1].step > w[0].step, "duplicate checkpoint: {w:?}");
        }
        assert_eq!(run.points.first().unwrap().step, 1);
        assert_eq!(run.points.last().unwrap().step, 10);
        // Dedup keeps determinism.
        let again =
            simulate_training(&p, &cluster, &SimConfig::default(), &lm, 640.0, 16, 7).unwrap();
        assert_eq!(run, again);
    }
}
