//! Recovery accounting shared by the resilient trainer and the fleet.
//!
//! [`RecoveryPolicy`], [`ReplanPath`], [`RecoveryEvent`], and
//! [`RecoveryStats`] started life in `whale::resilient` (the single-job
//! recovery state machine). The fleet simulator ([`crate::fleet`]) runs the
//! same detect → rollback → replan → resume loop per tenant, so the data
//! types live here in the sim crate where both consumers can reach them;
//! `whale::resilient` re-exports them under the original paths.

use crate::faults::FaultKind;
use crate::json::{num, obj, s, JsonValue};

/// Knobs of the recovery state machine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoveryPolicy {
    /// Committed samples between periodic checkpoints; a rollback loses at
    /// most this many samples.
    pub checkpoint_interval: f64,
    /// Seconds between a fault striking and the runtime noticing it.
    pub detection_latency_s: f64,
    /// Recovery attempts for transient faults before giving up (a permanent
    /// fault that cannot be recovered fails immediately).
    pub max_retries: u32,
    /// Backoff before the first retry, seconds; doubles per attempt.
    pub backoff_base_s: f64,
    /// Upper bound on a single backoff wait, seconds.
    pub backoff_cap_s: f64,
    /// Abort the run when cluster capacity (sum of per-GPU FLOPS, including
    /// degradations) falls below this fraction of the starting capacity.
    pub min_capacity: f64,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy {
            checkpoint_interval: 5e4,
            detection_latency_s: 5.0,
            max_retries: 3,
            backoff_base_s: 1.0,
            backoff_cap_s: 30.0,
            min_capacity: 0.25,
        }
    }
}

impl RecoveryPolicy {
    /// The bounded exponential backoff before retry number `retry`
    /// (1-based): `backoff_base_s · 2^(retry−1)`, capped at
    /// `backoff_cap_s`.
    pub fn backoff_s(&self, retry: u32) -> f64 {
        (self.backoff_base_s * 2f64.powi(retry.saturating_sub(1) as i32)).min(self.backoff_cap_s)
    }
}

/// Which compile path a recovery took.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplanPath {
    /// The delta-invalidation fast path: cached artifacts were reused and
    /// only the invalidated pass suffix re-ran (or the post-delta state was
    /// already cached outright).
    CachedSuffix,
    /// A full from-scratch compile: nothing cached for the pre-delta state,
    /// the cache was disabled, or fast-path verification failed.
    Full,
}

impl ReplanPath {
    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            ReplanPath::CachedSuffix => "cached-suffix",
            ReplanPath::Full => "full",
        }
    }
}

/// What one fault cost.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoveryEvent {
    /// Fault class.
    pub kind: FaultKind,
    /// Processed-samples offset at which the fault struck.
    pub at_samples: f64,
    /// Committed samples rolled back (re-earned later).
    pub samples_lost: f64,
    /// Detection latency plus backoff waits, seconds.
    pub downtime_s: f64,
    /// Downtime plus the time to re-earn the lost samples at the
    /// post-recovery throughput: how long until the run is back to where
    /// the fault found it.
    pub time_to_recover_s: f64,
    /// Retries spent before recovery succeeded.
    pub retries: u32,
    /// Whether the recovery replanned via cached suffix or a full compile.
    pub replan: ReplanPath,
}

/// Nearest-rank quantile of `time_to_recover_s` over `events`.
///
/// `p` is clamped to `[0, 1]`; returns `None` when `events` is empty. The
/// nearest-rank definition (`⌈p·n⌉`-th smallest, with `p = 0` mapping to
/// the minimum) always returns an observed value, so a reported p99 is an
/// actual recovery the fleet survived, not an interpolation.
pub fn time_to_recover_quantile(events: &[RecoveryEvent], p: f64) -> Option<f64> {
    if events.is_empty() {
        return None;
    }
    let mut ttrs: Vec<f64> = events.iter().map(|e| e.time_to_recover_s).collect();
    ttrs.sort_by(f64::total_cmp);
    let p = p.clamp(0.0, 1.0);
    let rank = (p * ttrs.len() as f64).ceil() as usize;
    Some(ttrs[rank.max(1) - 1])
}

/// Outcome metrics of a resilient (or baseline) run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RecoveryStats {
    /// Samples that count toward training (the run's target).
    pub committed_samples: f64,
    /// Samples the cluster actually worked on, including rolled-back work.
    pub processed_samples: f64,
    /// Samples lost to rollbacks (`processed - committed`).
    pub samples_lost: f64,
    /// Total wall-clock seconds, downtime included.
    pub wall_seconds: f64,
    /// Seconds the cluster spent computing (committed or not).
    pub training_seconds: f64,
    /// Seconds lost to detection latency and backoff waits.
    pub downtime_seconds: f64,
    /// Committed samples per wall-clock second — the number that matters.
    pub goodput: f64,
    /// Processed samples per computing second: what the hardware sustained
    /// while up. The gap to `goodput` is the price of the faults.
    pub raw_throughput: f64,
    /// Fraction of wall-clock time spent computing.
    pub availability: f64,
    /// Recoveries served by the delta-invalidation fast path.
    pub replans_cached: u64,
    /// Recoveries that ran a full from-scratch compile.
    pub replans_full: u64,
    /// Per-fault breakdown, in timeline order.
    pub faults: Vec<RecoveryEvent>,
}

impl RecoveryStats {
    /// Nearest-rank quantile of time-to-recovery over [`RecoveryStats::faults`];
    /// `None` when the run saw no faults. See [`time_to_recover_quantile`].
    pub fn ttr_quantile(&self, p: f64) -> Option<f64> {
        time_to_recover_quantile(&self.faults, p)
    }

    /// Median time-to-recovery, seconds.
    pub fn ttr_p50(&self) -> Option<f64> {
        self.ttr_quantile(0.5)
    }

    /// 99th-percentile time-to-recovery, seconds — the tail the fleet bench
    /// gates on.
    pub fn ttr_p99(&self) -> Option<f64> {
        self.ttr_quantile(0.99)
    }

    /// Serialize through the repo's JSON layer (same shape the CLI and
    /// `fault_bench` emit). Quantiles are `null` for fault-free runs.
    pub fn to_json(&self) -> JsonValue {
        let quantile = |p| self.ttr_quantile(p).map(num).unwrap_or(JsonValue::Null);
        obj(vec![
            ("committed_samples", num(self.committed_samples)),
            ("processed_samples", num(self.processed_samples)),
            ("samples_lost", num(self.samples_lost)),
            ("wall_seconds", num(self.wall_seconds)),
            ("training_seconds", num(self.training_seconds)),
            ("downtime_seconds", num(self.downtime_seconds)),
            ("goodput", num(self.goodput)),
            ("raw_throughput", num(self.raw_throughput)),
            ("availability", num(self.availability)),
            ("replans_cached", num(self.replans_cached as f64)),
            ("replans_full", num(self.replans_full as f64)),
            ("ttr_p50_s", quantile(0.5)),
            ("ttr_p99_s", quantile(0.99)),
            (
                "faults",
                JsonValue::Array(
                    self.faults
                        .iter()
                        .map(|e| {
                            obj(vec![
                                ("kind", s(e.kind.name())),
                                ("at_samples", num(e.at_samples)),
                                ("samples_lost", num(e.samples_lost)),
                                ("downtime_s", num(e.downtime_s)),
                                ("time_to_recover_s", num(e.time_to_recover_s)),
                                ("retries", num(e.retries as f64)),
                                ("replan", s(e.replan.name())),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(ttr: f64) -> RecoveryEvent {
        RecoveryEvent {
            kind: FaultKind::Degrade,
            at_samples: 0.0,
            samples_lost: 0.0,
            downtime_s: ttr,
            time_to_recover_s: ttr,
            retries: 0,
            replan: ReplanPath::CachedSuffix,
        }
    }

    #[test]
    fn quantiles_are_nearest_rank_observed_values() {
        // 1..=100, shuffled order must not matter.
        let mut ttrs: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        ttrs.reverse();
        let events: Vec<RecoveryEvent> = ttrs.into_iter().map(event).collect();
        assert_eq!(time_to_recover_quantile(&events, 0.5), Some(50.0));
        assert_eq!(time_to_recover_quantile(&events, 0.99), Some(99.0));
        assert_eq!(time_to_recover_quantile(&events, 1.0), Some(100.0));
        assert_eq!(time_to_recover_quantile(&events, 0.0), Some(1.0));
        // Out-of-range p clamps instead of panicking.
        assert_eq!(time_to_recover_quantile(&events, 7.0), Some(100.0));
        assert_eq!(time_to_recover_quantile(&events, -1.0), Some(1.0));
    }

    #[test]
    fn quantile_of_no_faults_is_none() {
        assert_eq!(time_to_recover_quantile(&[], 0.99), None);
        let stats = RecoveryStats::default();
        assert_eq!(stats.ttr_p50(), None);
        assert_eq!(stats.ttr_p99(), None);
        // And serializes as null, parseable.
        let text = stats.to_json().to_string_pretty();
        let parsed = crate::json::parse(&text).unwrap();
        assert_eq!(*parsed.get("ttr_p99_s"), JsonValue::Null);
    }

    #[test]
    fn single_event_is_every_quantile() {
        let events = [event(42.0)];
        for p in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(time_to_recover_quantile(&events, p), Some(42.0));
        }
    }

    #[test]
    fn stats_json_carries_quantiles() {
        let stats = RecoveryStats {
            faults: vec![event(10.0), event(20.0), event(30.0), event(40.0)],
            ..RecoveryStats::default()
        };
        assert_eq!(stats.ttr_p50(), Some(20.0));
        assert_eq!(stats.ttr_p99(), Some(40.0));
        let parsed = crate::json::parse(&stats.to_json().to_string_pretty()).unwrap();
        assert_eq!(parsed.get("ttr_p50_s").as_f64(), Some(20.0));
        assert_eq!(parsed.get("ttr_p99_s").as_f64(), Some(40.0));
        assert_eq!(parsed.get("faults").as_array().unwrap().len(), 4);
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let policy = RecoveryPolicy::default();
        assert_eq!(policy.backoff_s(1), 1.0);
        assert_eq!(policy.backoff_s(2), 2.0);
        assert_eq!(policy.backoff_s(5), 16.0);
        assert_eq!(policy.backoff_s(10), 30.0, "capped");
        assert_eq!(policy.backoff_s(0), 1.0, "retry 0 saturates to base");
    }
}
