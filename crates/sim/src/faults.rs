//! Deterministic fault injection for the cluster simulator.
//!
//! Production clusters fail in characteristic ways: a GPU is preempted or
//! dies, a device throttles thermally and later recovers, the network gets
//! congested by a co-tenant, a drained node is returned to the pool. The M6
//! runs described in §5 of the paper ride out exactly this drift; nothing in
//! the repo exercised it until now. [`FaultTrace::generate`] turns
//! MTBF/MTTR parameters and a [`SplitMix64`] seed into a reproducible
//! timeline of [`whale_hardware::ClusterDelta`]s at *sample offsets* — the
//! same seed always yields the bit-identical trace, so every recovery test
//! and benchmark built on top is replayable.
//!
//! Fault times live on the **processed-samples axis**: the cumulative number
//! of samples the cluster has worked on, including work later discarded by a
//! rollback. Unlike committed progress, that axis is monotone even when a
//! recovery loses samples, so a trace terminates any consumer — including a
//! restart-from-scratch baseline that repeatedly loses all progress.

use whale_hardware::{Cluster, ClusterDelta, GpuModel, LinkKind};

use crate::rng::SplitMix64;

/// The kind of an injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// Permanent GPU loss ([`ClusterDelta::GpuRemoved`]): preemption, an
    /// XID error, a drained node.
    Crash,
    /// Transient throughput degradation ([`ClusterDelta::GpuDegraded`]):
    /// thermal throttling, a noisy co-tenant. Heals after roughly the MTTR.
    Degrade,
    /// A transient fault heals ([`ClusterDelta::GpuRestored`] or a
    /// [`ClusterDelta::LinkBandwidth`] back to the base rate).
    Restore,
    /// Cross-node network congestion ([`ClusterDelta::LinkBandwidth`]).
    /// Heals after roughly the MTTR.
    Congestion,
    /// A GPU joins the cluster ([`ClusterDelta::GpuAdded`]): capacity
    /// returned by the scheduler, elastic scale-up.
    Join,
}

impl FaultKind {
    /// Transient faults are expected to heal on their own; the recovery
    /// runtime retries them with bounded backoff instead of giving up on
    /// the first failed recovery attempt.
    pub fn is_transient(self) -> bool {
        matches!(
            self,
            FaultKind::Degrade | FaultKind::Restore | FaultKind::Congestion
        )
    }

    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::Crash => "crash",
            FaultKind::Degrade => "degrade",
            FaultKind::Restore => "restore",
            FaultKind::Congestion => "congestion",
            FaultKind::Join => "join",
        }
    }
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One scheduled fault: a cluster change striking at a sample offset.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    /// Offset on the processed-samples axis at which the fault strikes.
    pub at_samples: f64,
    /// What class of fault this is.
    pub kind: FaultKind,
    /// The cluster change the fault inflicts.
    pub delta: ClusterDelta,
}

/// Parameters of the fault generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultModel {
    /// Mean samples between fault arrivals (exponential inter-arrival).
    pub mtbf_samples: f64,
    /// Mean samples until a transient fault heals (exponential).
    pub mttr_samples: f64,
    /// PRNG seed; equal seeds produce bit-identical traces.
    pub seed: u64,
}

impl Default for FaultModel {
    fn default() -> Self {
        FaultModel {
            mtbf_samples: 2e5,
            mttr_samples: 5e4,
            seed: 0,
        }
    }
}

/// A deterministic timeline of cluster faults, ordered by sample offset.
///
/// Every delta in the trace is valid when applied in order to the starting
/// cluster: the generator tracks a shadow copy of the topology, renumbers
/// pending heals when a crash compacts GPU ids, and drops heals whose
/// target crashed before recovering.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultTrace {
    /// Events in non-decreasing `at_samples` order.
    pub events: Vec<FaultEvent>,
}

/// A degradation or congestion waiting to heal.
struct PendingHeal {
    at: f64,
    event: FaultEvent,
}

impl FaultTrace {
    /// Generate the fault timeline for `cluster` over `horizon_samples`
    /// processed samples.
    ///
    /// Fault arrivals are exponential with mean `model.mtbf_samples`; each
    /// arrival draws a kind (degradation 45%, crash 20%, congestion 20%,
    /// join 15%) and a target that is legal on the shadow cluster at that
    /// point in the timeline. Degradations and congestions schedule their
    /// own heal an exponential `model.mttr_samples` later. Arrivals that
    /// cannot strike legally (every GPU already degraded, a congestion
    /// already active, the cluster down to one GPU) are skipped, not
    /// re-drawn, so the RNG stream — and therefore the trace — depends only
    /// on `(cluster, model, horizon_samples)`.
    pub fn generate(cluster: &Cluster, model: &FaultModel, horizon_samples: f64) -> FaultTrace {
        let mut rng = SplitMix64::seed_from_u64(model.seed);
        let mut shadow = cluster.clone();
        let base_network_bw = shadow.interconnect.network_bw;
        let mut events: Vec<FaultEvent> = Vec::new();
        let mut heals: Vec<PendingHeal> = Vec::new();
        let mtbf = model.mtbf_samples.max(1.0);
        let mttr = model.mttr_samples.max(1.0);

        let mut t = 0.0;
        loop {
            t += exponential(&mut rng, mtbf);
            if t >= horizon_samples || t.is_nan() {
                break;
            }
            // Heals scheduled before this arrival fire first.
            flush_heals(&mut heals, &mut shadow, &mut events, t);

            let roll = rng.next_f64();
            if roll < 0.45 {
                // Degrade a currently full-speed GPU.
                let healthy: Vec<usize> = shadow
                    .gpus()
                    .iter()
                    .filter(|g| g.throughput_scale >= 1.0)
                    .map(|g| g.id)
                    .collect();
                let scale = rng.range_f64(0.2, 0.8);
                let heal_after = exponential(&mut rng, mttr);
                if healthy.is_empty() {
                    continue;
                }
                let id = healthy[rng.index(healthy.len())];
                let strike = FaultEvent {
                    at_samples: t,
                    kind: FaultKind::Degrade,
                    delta: ClusterDelta::GpuDegraded { id, scale },
                };
                shadow.apply_delta(strike.delta).expect("legal degrade");
                events.push(strike);
                heals.push(PendingHeal {
                    at: t + heal_after,
                    event: FaultEvent {
                        at_samples: t + heal_after,
                        kind: FaultKind::Restore,
                        delta: ClusterDelta::GpuRestored { id },
                    },
                });
            } else if roll < 0.65 {
                // Crash: remove a GPU, keeping at least two alive so the
                // trace stays applicable (capacity policy aborts are the
                // runtime's decision, not the generator's).
                if shadow.num_gpus() <= 2 {
                    let _ = rng.next_u64();
                    continue;
                }
                let id = rng.index(shadow.num_gpus());
                let strike = FaultEvent {
                    at_samples: t,
                    kind: FaultKind::Crash,
                    delta: ClusterDelta::GpuRemoved { id },
                };
                shadow.apply_delta(strike.delta).expect("legal removal");
                events.push(strike);
                // Surviving GPUs were renumbered: fix up pending heals.
                heals.retain_mut(|h| match &mut h.event.delta {
                    ClusterDelta::GpuRestored { id: healing } => {
                        if *healing == id {
                            return false;
                        }
                        if *healing > id {
                            *healing -= 1;
                        }
                        true
                    }
                    _ => true,
                });
            } else if roll < 0.85 {
                // Network congestion; at most one active at a time.
                let factor = rng.range_f64(0.25, 0.75);
                let heal_after = exponential(&mut rng, mttr);
                let active = heals
                    .iter()
                    .any(|h| matches!(h.event.delta, ClusterDelta::LinkBandwidth { .. }));
                if active {
                    continue;
                }
                let strike = FaultEvent {
                    at_samples: t,
                    kind: FaultKind::Congestion,
                    delta: ClusterDelta::LinkBandwidth {
                        kind: LinkKind::Network,
                        bytes_per_sec: base_network_bw * factor,
                    },
                };
                shadow.apply_delta(strike.delta).expect("legal congestion");
                events.push(strike);
                heals.push(PendingHeal {
                    at: t + heal_after,
                    event: FaultEvent {
                        at_samples: t + heal_after,
                        kind: FaultKind::Restore,
                        delta: ClusterDelta::LinkBandwidth {
                            kind: LinkKind::Network,
                            bytes_per_sec: base_network_bw,
                        },
                    },
                });
            } else {
                // Join: a GPU of a model already present on the node comes
                // back (a replacement part, returned preemption).
                let node = rng.index(shadow.num_nodes());
                let model: GpuModel = {
                    let first = shadow.nodes()[node].gpu_ids[0];
                    shadow.gpus()[first].model
                };
                let strike = FaultEvent {
                    at_samples: t,
                    kind: FaultKind::Join,
                    delta: ClusterDelta::GpuAdded { node, model },
                };
                shadow.apply_delta(strike.delta).expect("legal join");
                events.push(strike);
            }
        }
        // Heals scheduled inside the horizon still fire.
        flush_heals(&mut heals, &mut shadow, &mut events, horizon_samples);
        FaultTrace { events }
    }

    /// Number of events in the trace.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace has no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Count of events per kind, in a stable order.
    pub fn census(&self) -> Vec<(FaultKind, usize)> {
        [
            FaultKind::Crash,
            FaultKind::Degrade,
            FaultKind::Restore,
            FaultKind::Congestion,
            FaultKind::Join,
        ]
        .into_iter()
        .map(|k| (k, self.events.iter().filter(|e| e.kind == k).count()))
        .filter(|&(_, n)| n > 0)
        .collect()
    }
}

/// Exponentially distributed draw with the given mean (inverse CDF).
pub(crate) fn exponential(rng: &mut SplitMix64, mean: f64) -> f64 {
    // next_f64 ∈ [0, 1) so 1 - u ∈ (0, 1] and the log is finite.
    -mean * (1.0 - rng.next_f64()).ln()
}

/// Apply and emit every pending heal scheduled strictly before `now`,
/// in timeline order.
fn flush_heals(
    heals: &mut Vec<PendingHeal>,
    shadow: &mut Cluster,
    events: &mut Vec<FaultEvent>,
    now: f64,
) {
    while let Some(i) = heals
        .iter()
        .enumerate()
        .filter(|(_, h)| h.at < now)
        .min_by(|(_, a), (_, b)| a.at.total_cmp(&b.at))
        .map(|(i, _)| i)
    {
        let heal = heals.remove(i);
        shadow.apply_delta(heal.event.delta).expect("legal heal");
        events.push(heal.event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(seed: u64) -> FaultModel {
        FaultModel {
            mtbf_samples: 1e5,
            mttr_samples: 3e4,
            seed,
        }
    }

    #[test]
    fn same_seed_bit_identical_trace() {
        let cluster = Cluster::parse("2x(8xV100)+2x(8xP100)").unwrap();
        let a = FaultTrace::generate(&cluster, &model(42), 2e6);
        let b = FaultTrace::generate(&cluster, &model(42), 2e6);
        assert_eq!(a, b);
        assert!(!a.is_empty(), "expected faults over 20 MTBFs");
    }

    #[test]
    fn different_seeds_differ() {
        let cluster = Cluster::parse("2x(8xV100)+2x(8xP100)").unwrap();
        let a = FaultTrace::generate(&cluster, &model(1), 2e6);
        let b = FaultTrace::generate(&cluster, &model(2), 2e6);
        assert_ne!(a, b);
    }

    #[test]
    fn events_are_ordered_and_legal_in_sequence() {
        let cluster = Cluster::parse("2x(4xV100)").unwrap();
        let trace = FaultTrace::generate(&cluster, &model(7), 3e6);
        let mut replay = cluster.clone();
        let mut prev = 0.0;
        for e in &trace.events {
            assert!(
                e.at_samples >= prev,
                "events out of order: {} after {prev}",
                e.at_samples
            );
            prev = e.at_samples;
            e.delta
                .validate(&replay)
                .unwrap_or_else(|err| panic!("illegal event {e:?}: {err}"));
            replay.apply_delta(e.delta).unwrap();
        }
        assert!(
            replay.num_gpus() >= 2,
            "generator never empties the cluster"
        );
    }

    #[test]
    fn transient_faults_schedule_heals() {
        let cluster = Cluster::parse("2x(8xV100)").unwrap();
        let trace = FaultTrace::generate(&cluster, &model(11), 5e6);
        let census: std::collections::HashMap<_, _> = trace.census().into_iter().collect();
        let degrades = census.get(&FaultKind::Degrade).copied().unwrap_or(0);
        let restores = census.get(&FaultKind::Restore).copied().unwrap_or(0);
        assert!(degrades > 0);
        assert!(
            restores > 0
                && restores <= degrades + census.get(&FaultKind::Congestion).copied().unwrap_or(0),
            "restores ({restores}) must pair with transients"
        );
    }

    #[test]
    fn zero_horizon_is_empty() {
        let cluster = Cluster::parse("4xV100").unwrap();
        let trace = FaultTrace::generate(&cluster, &model(5), 0.0);
        assert!(trace.is_empty());
    }

    #[test]
    fn transience_classification() {
        assert!(FaultKind::Degrade.is_transient());
        assert!(FaultKind::Congestion.is_transient());
        assert!(FaultKind::Restore.is_transient());
        assert!(!FaultKind::Crash.is_transient());
        assert!(!FaultKind::Join.is_transient());
    }
}
