//! Step-level metrics: time, throughput, utilization (SMACT proxy).

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use whale_hardware::GpuModel;

/// Per-GPU accounting for one simulated step.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpuStat {
    /// Global GPU id.
    pub gpu: usize,
    /// Hardware model.
    pub model: GpuModel,
    /// Seconds the GPU spent computing (forward + backward kernels).
    pub busy: f64,
    /// `busy / step_time` — our proxy for the paper's SMACT metric
    /// (Streaming-Multiprocessor Activity, Tables 2-3).
    pub utilization: f64,
    /// Estimated memory demand, bytes.
    pub mem_bytes: u64,
    /// Memory capacity, bytes.
    pub mem_capacity: u64,
}

/// Result of simulating one training step.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StepStats {
    /// Wall-clock seconds per training step.
    pub step_time: f64,
    /// Makespan of the compute/pipeline phase (before gradient sync).
    pub compute_makespan: f64,
    /// Total gradient-synchronization time (if run back-to-back).
    pub sync_time_total: f64,
    /// Sync time left exposed after overlapping with backward compute.
    pub sync_time_exposed: f64,
    /// Optimizer (parameter-update) time on the critical path.
    pub optimizer_time: f64,
    /// Samples per second at this plan's global batch.
    pub throughput: f64,
    /// Per-GPU stats, ordered by GPU id.
    pub per_gpu: Vec<GpuStat>,
    /// GPUs whose estimated memory demand exceeds capacity.
    pub oom_gpus: Vec<usize>,
}

impl StepStats {
    /// Mean utilization per GPU model — the shape Tables 2-3 report.
    pub fn utilization_by_model(&self) -> BTreeMap<String, f64> {
        let mut sums: BTreeMap<String, (f64, usize)> = BTreeMap::new();
        for g in &self.per_gpu {
            let e = sums.entry(g.model.to_string()).or_insert((0.0, 0));
            e.0 += g.utilization;
            e.1 += 1;
        }
        sums.into_iter()
            .map(|(k, (s, n))| (k, s / n as f64))
            .collect()
    }

    /// Pipeline bubble ratio: idle fraction of the compute phase averaged
    /// over participating GPUs.
    pub fn bubble_ratio(&self) -> f64 {
        if self.compute_makespan <= 0.0 || self.per_gpu.is_empty() {
            return 0.0;
        }
        let avg_busy: f64 =
            self.per_gpu.iter().map(|g| g.busy).sum::<f64>() / self.per_gpu.len() as f64;
        (1.0 - avg_busy / self.compute_makespan).max(0.0)
    }

    /// Whether any GPU is out of memory.
    pub fn has_oom(&self) -> bool {
        !self.oom_gpus.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stat(gpu: usize, model: GpuModel, busy: f64, util: f64) -> GpuStat {
        GpuStat {
            gpu,
            model,
            busy,
            utilization: util,
            mem_bytes: 1,
            mem_capacity: 2,
        }
    }

    #[test]
    fn utilization_groups_by_model() {
        let s = StepStats {
            step_time: 1.0,
            compute_makespan: 1.0,
            sync_time_total: 0.0,
            sync_time_exposed: 0.0,
            optimizer_time: 0.0,
            throughput: 32.0,
            per_gpu: vec![
                stat(0, GpuModel::V100_32GB, 0.5, 0.5),
                stat(1, GpuModel::V100_32GB, 0.7, 0.7),
                stat(2, GpuModel::P100_16GB, 0.9, 0.9),
            ],
            oom_gpus: vec![],
        };
        let by = s.utilization_by_model();
        assert!((by["V100-32GB"] - 0.6).abs() < 1e-12);
        assert!((by["P100-16GB"] - 0.9).abs() < 1e-12);
    }

    #[test]
    fn bubble_ratio_bounds() {
        let s = StepStats {
            step_time: 2.0,
            compute_makespan: 2.0,
            sync_time_total: 0.0,
            sync_time_exposed: 0.0,
            optimizer_time: 0.0,
            throughput: 16.0,
            per_gpu: vec![
                stat(0, GpuModel::V100_32GB, 1.0, 0.5),
                stat(1, GpuModel::V100_32GB, 2.0, 1.0),
            ],
            oom_gpus: vec![],
        };
        let b = s.bubble_ratio();
        assert!((b - 0.25).abs() < 1e-12);
        assert!(!s.has_oom());
    }
}
