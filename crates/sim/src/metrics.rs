//! Step-level metrics: time, throughput, utilization (SMACT proxy).

use std::collections::BTreeMap;
use whale_hardware::GpuModel;

use crate::json::{num, obj, s, JsonValue};

/// Per-GPU accounting for one simulated step.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuStat {
    /// Global GPU id.
    pub gpu: usize,
    /// Hardware model.
    pub model: GpuModel,
    /// Seconds the GPU spent computing (forward + backward kernels).
    pub busy: f64,
    /// `busy / step_time` — our proxy for the paper's SMACT metric
    /// (Streaming-Multiprocessor Activity, Tables 2-3).
    pub utilization: f64,
    /// Estimated memory demand, bytes.
    pub mem_bytes: u64,
    /// Memory capacity, bytes.
    pub mem_capacity: u64,
}

/// Result of simulating one training step.
#[derive(Debug, Clone, PartialEq)]
pub struct StepStats {
    /// Wall-clock seconds per training step.
    pub step_time: f64,
    /// Makespan of the compute/pipeline phase (before gradient sync).
    pub compute_makespan: f64,
    /// Total gradient-synchronization time (if run back-to-back).
    pub sync_time_total: f64,
    /// Sync time left exposed after overlapping with backward compute.
    pub sync_time_exposed: f64,
    /// Optimizer (parameter-update) time on the critical path.
    pub optimizer_time: f64,
    /// Samples per second at this plan's global batch.
    pub throughput: f64,
    /// Per-GPU stats, ordered by GPU id.
    pub per_gpu: Vec<GpuStat>,
    /// GPUs whose estimated memory demand exceeds capacity.
    pub oom_gpus: Vec<usize>,
}

impl StepStats {
    /// Mean utilization per GPU model — the shape Tables 2-3 report.
    pub fn utilization_by_model(&self) -> BTreeMap<String, f64> {
        let mut sums: BTreeMap<String, (f64, usize)> = BTreeMap::new();
        for g in &self.per_gpu {
            let e = sums.entry(g.model.to_string()).or_insert((0.0, 0));
            e.0 += g.utilization;
            e.1 += 1;
        }
        sums.into_iter()
            .map(|(k, (s, n))| (k, s / n as f64))
            .collect()
    }

    /// Pipeline bubble ratio: idle fraction of the compute phase averaged
    /// over participating GPUs.
    pub fn bubble_ratio(&self) -> f64 {
        if self.compute_makespan <= 0.0 || self.per_gpu.is_empty() {
            return 0.0;
        }
        let avg_busy: f64 =
            self.per_gpu.iter().map(|g| g.busy).sum::<f64>() / self.per_gpu.len() as f64;
        (1.0 - avg_busy / self.compute_makespan).max(0.0)
    }

    /// Whether any GPU is out of memory.
    pub fn has_oom(&self) -> bool {
        !self.oom_gpus.is_empty()
    }

    /// JSON rendering for the CLI's `--json` flag and the bench harness.
    /// Field names mirror the struct so downstream tooling can rely on them.
    pub fn to_json(&self) -> JsonValue {
        obj(vec![
            ("step_time", num(self.step_time)),
            ("compute_makespan", num(self.compute_makespan)),
            ("sync_time_total", num(self.sync_time_total)),
            ("sync_time_exposed", num(self.sync_time_exposed)),
            ("optimizer_time", num(self.optimizer_time)),
            ("throughput", num(self.throughput)),
            (
                "per_gpu",
                JsonValue::Array(self.per_gpu.iter().map(GpuStat::to_json).collect()),
            ),
            (
                "oom_gpus",
                JsonValue::Array(self.oom_gpus.iter().map(|&g| num(g as f64)).collect()),
            ),
        ])
    }
}

impl GpuStat {
    /// JSON rendering of one GPU's accounting.
    pub fn to_json(&self) -> JsonValue {
        obj(vec![
            ("gpu", num(self.gpu as f64)),
            ("model", s(self.model.to_string())),
            ("busy", num(self.busy)),
            ("utilization", num(self.utilization)),
            ("mem_bytes", num(self.mem_bytes as f64)),
            ("mem_capacity", num(self.mem_capacity as f64)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stat(gpu: usize, model: GpuModel, busy: f64, util: f64) -> GpuStat {
        GpuStat {
            gpu,
            model,
            busy,
            utilization: util,
            mem_bytes: 1,
            mem_capacity: 2,
        }
    }

    #[test]
    fn utilization_groups_by_model() {
        let s = StepStats {
            step_time: 1.0,
            compute_makespan: 1.0,
            sync_time_total: 0.0,
            sync_time_exposed: 0.0,
            optimizer_time: 0.0,
            throughput: 32.0,
            per_gpu: vec![
                stat(0, GpuModel::V100_32GB, 0.5, 0.5),
                stat(1, GpuModel::V100_32GB, 0.7, 0.7),
                stat(2, GpuModel::P100_16GB, 0.9, 0.9),
            ],
            oom_gpus: vec![],
        };
        let by = s.utilization_by_model();
        assert!((by["V100-32GB"] - 0.6).abs() < 1e-12);
        assert!((by["P100-16GB"] - 0.9).abs() < 1e-12);
    }

    #[test]
    fn bubble_ratio_bounds() {
        let s = StepStats {
            step_time: 2.0,
            compute_makespan: 2.0,
            sync_time_total: 0.0,
            sync_time_exposed: 0.0,
            optimizer_time: 0.0,
            throughput: 16.0,
            per_gpu: vec![
                stat(0, GpuModel::V100_32GB, 1.0, 0.5),
                stat(1, GpuModel::V100_32GB, 2.0, 1.0),
            ],
            oom_gpus: vec![],
        };
        let b = s.bubble_ratio();
        assert!((b - 0.25).abs() < 1e-12);
        assert!(!s.has_oom());
    }

    #[test]
    fn json_rendering_round_trips_fields() {
        let stats = StepStats {
            step_time: 0.125,
            compute_makespan: 0.1,
            sync_time_total: 0.02,
            sync_time_exposed: 0.005,
            optimizer_time: 0.01,
            throughput: 512.0,
            per_gpu: vec![
                stat(0, GpuModel::V100_32GB, 0.08, 0.64),
                stat(1, GpuModel::P100_16GB, 0.09, 0.72),
            ],
            oom_gpus: vec![1],
        };
        let text = stats.to_json().to_string_pretty();
        let v = crate::json::parse(&text).unwrap();
        assert_eq!(v.get("step_time").as_f64(), Some(0.125));
        assert_eq!(v.get("per_gpu").as_array().unwrap().len(), 2);
        let g0 = &v.get("per_gpu").as_array().unwrap()[0];
        assert_eq!(g0.get("model").as_str(), Some("V100-32GB"));
        assert_eq!(g0.get("utilization").as_f64(), Some(0.64));
        assert_eq!(v.get("oom_gpus").as_array().unwrap()[0].as_f64(), Some(1.0));
    }
}
