//! Minimal JSON value, writer, and parser — no external dependencies.
//!
//! The sandboxed build cannot reach crates.io, so the CLI's `--json` output
//! and the bench harness's `BENCH_planner.json` are produced by this module
//! instead of `serde_json`. It covers exactly what the repo needs: objects
//! with ordered keys, arrays, finite numbers, strings, and booleans, plus a
//! recursive-descent parser for the tests that read the output back.

use std::fmt::Write as _;

/// A JSON value. Object keys keep insertion order so output is stable.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any finite number (integers round-trip exactly up to 2^53).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object with insertion-ordered keys.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Member lookup on objects; `Null` for anything else.
    pub fn get(&self, key: &str) -> &JsonValue {
        const NULL: JsonValue = JsonValue::Null;
        match self {
            JsonValue::Object(members) => members
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .unwrap_or(&NULL),
            _ => &NULL,
        }
    }

    /// Numeric view.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean view.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Array view.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Compact single-line rendering.
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty rendering with two-space indentation.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Num(n) => write_number(out, *n),
            JsonValue::Str(s) => write_string(out, s),
            JsonValue::Array(items) => {
                write_seq(out, indent, depth, '[', ']', items.len(), |out, i, d| {
                    items[i].write(out, indent, d)
                })
            }
            JsonValue::Object(members) => {
                write_seq(out, indent, depth, '{', '}', members.len(), |out, i, d| {
                    write_string(out, &members[i].0);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    members[i].1.write(out, indent, d);
                })
            }
        }
    }
}

/// Convenience constructor for objects.
pub fn obj(members: Vec<(&str, JsonValue)>) -> JsonValue {
    JsonValue::Object(
        members
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

/// Convenience constructor for numbers.
pub fn num(n: f64) -> JsonValue {
    JsonValue::Num(n)
}

/// Convenience constructor for strings.
pub fn s(text: impl Into<String>) -> JsonValue {
    JsonValue::Str(text.into())
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize, usize),
) {
    out.push(open);
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * (depth + 1)));
        }
        item(out, i, depth + 1);
    }
    if len > 0 {
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * depth));
        }
    }
    out.push(close);
}

fn write_number(out: &mut String, n: f64) {
    if !n.is_finite() {
        // JSON has no Inf/NaN; null is the conventional stand-in.
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 9.0e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        // `{}` on f64 prints the shortest string that round-trips.
        let _ = write!(out, "{n}");
    }
}

fn write_string(out: &mut String, text: &str) {
    out.push('"');
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse a JSON document. Rejects trailing garbage.
pub fn parse(text: &str) -> Result<JsonValue, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => {
            *pos += 1;
            let mut members = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(JsonValue::Object(members));
            }
            loop {
                skip_ws(bytes, pos);
                let key = match parse_value(bytes, pos)? {
                    JsonValue::Str(k) => k,
                    other => return Err(format!("object key must be a string, got {other:?}")),
                };
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at byte {pos}"));
                }
                *pos += 1;
                members.push((key, parse_value(bytes, pos)?));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(JsonValue::Object(members));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(JsonValue::Array(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(JsonValue::Array(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'"') => {
            *pos += 1;
            let mut out = String::new();
            loop {
                match bytes.get(*pos) {
                    None => return Err("unterminated string".into()),
                    Some(b'"') => {
                        *pos += 1;
                        return Ok(JsonValue::Str(out));
                    }
                    Some(b'\\') => {
                        *pos += 1;
                        match bytes.get(*pos) {
                            Some(b'"') => out.push('"'),
                            Some(b'\\') => out.push('\\'),
                            Some(b'/') => out.push('/'),
                            Some(b'n') => out.push('\n'),
                            Some(b'r') => out.push('\r'),
                            Some(b't') => out.push('\t'),
                            Some(b'b') => out.push('\u{8}'),
                            Some(b'f') => out.push('\u{c}'),
                            Some(b'u') => {
                                let hex = bytes
                                    .get(*pos + 1..*pos + 5)
                                    .ok_or("truncated \\u escape")?;
                                let code = u32::from_str_radix(
                                    std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                    16,
                                )
                                .map_err(|e| e.to_string())?;
                                out.push(char::from_u32(code).ok_or("invalid \\u escape")?);
                                *pos += 4;
                            }
                            other => return Err(format!("bad escape {other:?}")),
                        }
                        *pos += 1;
                    }
                    Some(_) => {
                        // Copy a full UTF-8 scalar, not a byte.
                        let rest =
                            std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                        let c = rest.chars().next().unwrap();
                        out.push(c);
                        *pos += c.len_utf8();
                    }
                }
            }
        }
        Some(b't') if bytes[*pos..].starts_with(b"true") => {
            *pos += 4;
            Ok(JsonValue::Bool(true))
        }
        Some(b'f') if bytes[*pos..].starts_with(b"false") => {
            *pos += 5;
            Ok(JsonValue::Bool(false))
        }
        Some(b'n') if bytes[*pos..].starts_with(b"null") => {
            *pos += 4;
            Ok(JsonValue::Null)
        }
        Some(_) => {
            let start = *pos;
            while *pos < bytes.len()
                && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
            {
                *pos += 1;
            }
            let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
            text.parse::<f64>()
                .map(JsonValue::Num)
                .map_err(|_| format!("invalid number '{text}' at byte {start}"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_structures() {
        let v = obj(vec![
            ("name", s("pipeline \"deep\"")),
            ("step_time", num(0.12345)),
            ("count", num(64.0)),
            ("ok", JsonValue::Bool(true)),
            ("none", JsonValue::Null),
            (
                "per_gpu",
                JsonValue::Array(vec![num(1.0), num(2.5), s("x\ny")]),
            ),
        ]);
        for text in [v.to_string_compact(), v.to_string_pretty()] {
            assert_eq!(parse(&text).unwrap(), v, "{text}");
        }
    }

    #[test]
    fn integers_print_without_decimal_point() {
        assert_eq!(num(34359738368.0).to_string_compact(), "34359738368");
        assert_eq!(num(0.5).to_string_compact(), "0.5");
    }

    #[test]
    fn parses_scientific_notation_and_rejects_garbage() {
        assert_eq!(parse("1.5e3").unwrap().as_f64(), Some(1500.0));
        assert!(parse("{\"a\":1} x").is_err());
        assert!(parse("{'a':1}").is_err());
    }

    #[test]
    fn get_on_missing_key_is_null() {
        let v = parse("{\"a\": 1}").unwrap();
        assert_eq!(v.get("a").as_f64(), Some(1.0));
        assert_eq!(v.get("b"), &JsonValue::Null);
    }
}
