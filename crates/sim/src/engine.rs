//! The discrete-event execution engine.
//!
//! Simulates one training step of an [`ExecutionPlan`] on a [`Cluster`]:
//! pipeline tasks execute in dependency + control order, compute time follows
//! the paper's cost model `t = MF / (GF · α)`, cross-stage tensors pay the
//! interconnect, intra-stage collectives (split patterns, bridges) pay the
//! collective cost model, and gradient AllReduce runs hierarchically at the
//! end of the step, partially overlapped with backward compute.

use std::collections::BTreeMap;

use whale_hardware::{Cluster, CommModel};
use whale_planner::{ExecutionPlan, PlannedStage, ScheduleKind, SyncMode};

use crate::error::{Result, SimError};
use crate::metrics::{GpuStat, StepStats};
use crate::schedule::{data_deps, stage_order, TaskKind};

/// Simulator options.
#[derive(Debug, Clone, Copy)]
pub struct SimConfig {
    /// Pipeline schedule (must match what the plan's memory model assumed).
    pub schedule: ScheduleKind,
    /// Fraction of backward compute usable to hide gradient AllReduce
    /// (Whale overlaps sync with the tail of backward; 1.0 = full overlap,
    /// 0.0 = fully exposed sync).
    pub sync_overlap: f64,
    /// Half-saturation batch of the SM-occupancy model: kernels launched
    /// with `b` samples reach `b/(b + half_sat)` of full SM activity, which
    /// is why the paper's Table 2 shows P100 SMACT *dipping slightly* when
    /// the hardware-aware policy shrinks its batch. 0 disables the model
    /// (utilization = pure busy fraction).
    pub occupancy_half_sat: f64,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            schedule: ScheduleKind::BackwardFirst,
            sync_overlap: 1.0,
            occupancy_half_sat: 16.0,
        }
    }
}

impl SimConfig {
    /// Default config with the given pipeline schedule — the knob the
    /// auto-parallel search sweeps (backward-first vs GPipe flush change
    /// in-flight activation lifetimes and hence bubble shape).
    pub fn with_schedule(schedule: ScheduleKind) -> Self {
        Self {
            schedule,
            ..Self::default()
        }
    }
}

/// Per-task timing record from a simulated step (feeds the trace exporter).
#[derive(Debug, Clone, PartialEq)]
pub struct TaskRecord {
    /// What ran.
    pub kind: TaskKind,
    /// Start time, seconds.
    pub start: f64,
    /// End time, seconds.
    pub end: f64,
}

/// A simulated step: stats plus the task timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct StepOutcome {
    /// Aggregate metrics.
    pub stats: StepStats,
    /// Per-task records ordered by start time.
    pub timeline: Vec<TaskRecord>,
}

fn task_index(kind: TaskKind, num_micro: usize) -> usize {
    let base = kind.stage() * 2 * num_micro;
    match kind {
        TaskKind::Forward { micro, .. } => base + micro,
        TaskKind::Backward { micro, .. } => base + num_micro + micro,
    }
}

/// Inverse of [`task_index`]: decode the task at a dense index.
fn task_kind(idx: usize, num_micro: usize) -> TaskKind {
    let stage = idx / (2 * num_micro);
    let rem = idx % (2 * num_micro);
    if rem < num_micro {
        TaskKind::Forward { stage, micro: rem }
    } else {
        TaskKind::Backward {
            stage,
            micro: rem - num_micro,
        }
    }
}

/// Compute duration of one stage-task (max over its devices) plus its
/// per-micro collectives.
fn stage_task_time(
    stage: &PlannedStage,
    cluster: &Cluster,
    comm: &CommModel<'_>,
    efficiency: f64,
    backward: bool,
    recompute: bool,
    amp: bool,
) -> Result<(f64, Vec<(usize, f64)>)> {
    let mut per_device = Vec::with_capacity(stage.devices.len());
    let mut max_compute: f64 = 0.0;
    // Backward ≈ 2× forward; recomputation replays the forward first.
    let factor = if backward {
        if recompute {
            3.0
        } else {
            2.0
        }
    } else {
        1.0
    };
    for d in &stage.devices {
        let gpu = cluster.gpu(d.gpu)?;
        let amp_boost = if amp { gpu.model.amp_speedup() } else { 1.0 };
        // Roofline: compute-bound FLOPs at effective throughput plus the
        // bandwidth-bound traffic at device memory bandwidth (AMP halves
        // activation bytes).
        let flops_t = factor * d.fw_flops_per_micro / (gpu.flops() * amp_boost * efficiency);
        let traffic = d.mem_traffic_per_micro * if amp { 0.5 } else { 1.0 };
        let bw_t = factor * traffic / gpu.model.memory_bandwidth();
        let t = flops_t + bw_t;
        per_device.push((d.gpu, t));
        max_compute = max_compute.max(t);
    }
    let mut comm_time = 0.0;
    for c in &stage.collectives_per_micro {
        comm_time += comm.collective(c.kind, &c.group, per_rank_bytes(c))?;
    }
    Ok((max_compute + comm_time, per_device))
}

/// Convert a plan collective's *total logical payload* into the per-rank
/// bytes the cost model expects. AllGather and AllToAll distribute the
/// payload across ranks (each rank contributes `1/n`); AllReduce,
/// ReduceScatter, and Broadcast operate on the full tensor per rank.
fn per_rank_bytes(c: &whale_planner::CollectiveTask) -> u64 {
    use whale_hardware::Collective;
    let n = c.group.len().max(1) as u64;
    match c.kind {
        Collective::AllGather | Collective::AllToAll => (c.bytes / n).max(1),
        Collective::AllReduce | Collective::ReduceScatter | Collective::Broadcast => c.bytes,
    }
}

/// Transfer time for the tensor flowing between two adjacent stages.
fn inter_stage_transfer(
    from: &PlannedStage,
    to: &PlannedStage,
    cluster: &Cluster,
    bytes: u64,
) -> Result<f64> {
    if bytes == 0 {
        return Ok(0.0);
    }
    // Co-located stages (e.g. alternating replica/split MoE TaskGraphs on
    // the same GPUs) hand tensors over in device memory.
    let from_ids = from.gpu_ids();
    let to_ids = to.gpu_ids();
    if from_ids == to_ids {
        return Ok(0.0);
    }
    let a = cluster.gpu(from_ids[0])?;
    let b = cluster.gpu(to_ids[0])?;
    Ok(cluster.interconnect.p2p_time(a, b, bytes))
}

/// Per-stage task durations and inter-stage transfer lags, computed once per
/// simulated step and shared by both schedulers.
struct StageTimes {
    /// `(duration, per-device compute shares)` of one forward micro-task.
    fw: Vec<(f64, Vec<(usize, f64)>)>,
    /// Same for one backward micro-task.
    bw: Vec<(f64, Vec<(usize, f64)>)>,
    /// Activation/gradient transfer lag across the boundary after stage `s`.
    xfer: Vec<f64>,
}

fn stage_times(
    plan: &ExecutionPlan,
    cluster: &Cluster,
    comm: &CommModel<'_>,
) -> Result<StageTimes> {
    let num_stages = plan.stages.len();
    let recompute = plan.training.recompute;
    let mut fw = Vec::with_capacity(num_stages);
    let mut bw = Vec::with_capacity(num_stages);
    for stage in plan.stages.iter() {
        fw.push(stage_task_time(
            stage,
            cluster,
            comm,
            plan.efficiency,
            false,
            recompute,
            plan.training.amp,
        )?);
        bw.push(stage_task_time(
            stage,
            cluster,
            comm,
            plan.efficiency,
            true,
            recompute,
            plan.training.amp,
        )?);
    }
    let mut xfer = vec![0.0; num_stages];
    for (s, slot) in xfer
        .iter_mut()
        .enumerate()
        .take(num_stages.saturating_sub(1))
    {
        *slot = inter_stage_transfer(
            &plan.stages[s],
            &plan.stages[s + 1],
            cluster,
            plan.stages[s].send_bytes_per_micro,
        )?;
    }
    Ok(StageTimes { fw, bw, xfer })
}

/// Event-driven scheduler: an indegree-counted ready queue over the task
/// DAG, one visit per task, one relaxation per edge.
///
/// Produces bit-identical timelines to [`schedule_tasks_polling`]: task start
/// is `max(control-predecessor finish, data-dep finish + transfer lag)`, an
/// order-independent fold of `f64::max` over the same finish values, so the
/// traversal order cannot change any timestamp. That same order-independence
/// is why the ready queue is a plain LIFO stack rather than a `BinaryHeap`
/// keyed on ready time: a time-ordered heap costs `O(log n)` comparisons per
/// task to maintain an ordering the timestamps never observe (a heap-based
/// variant measured ~20% *slower* end to end than the polling rescan on a
/// 16×64 pipeline; the stack variant is >2× faster). Indegrees, task kinds,
/// and dependency edges all come from index arithmetic — the scheduler
/// allocates only its flat arrays, never a per-task `Vec`.
///
/// The win over polling is asymptotic and constant-factor at once: the
/// polling scheduler rescans stage cursors sweep after sweep (O(stages ×
/// tasks) on deep pipelines) and re-derives each task's dependency list via
/// `data_deps` on every readiness probe, while this one touches each DAG
/// edge exactly once.
fn schedule_tasks_event(
    num_stages: usize,
    num_micro: usize,
    times: &StageTimes,
    schedule: ScheduleKind,
) -> Result<(Vec<f64>, Vec<Option<TaskRecord>>)> {
    const NONE: u32 = u32::MAX;
    let n_tasks = num_stages * 2 * num_micro;
    let mut finish = vec![f64::NAN; n_tasks];
    let mut records: Vec<Option<TaskRecord>> = vec![None; n_tasks];

    // Control order: `order[pos] → order[pos + 1]` successor edges within
    // each stage, one slot per task.
    let mut control_next: Vec<u32> = vec![NONE; n_tasks];
    let mut has_control_pred = vec![false; n_tasks];
    for s in 0..num_stages {
        let order = stage_order(s, num_stages, num_micro, schedule);
        let mut prev = NONE;
        for kind in order {
            let idx = task_index(kind, num_micro) as u32;
            if prev != NONE {
                control_next[prev as usize] = idx;
                has_control_pred[idx as usize] = true;
            }
            prev = idx;
        }
    }

    // Indegree = control predecessor + data deps, both known from the task's
    // coordinates (see `data_deps`): F_{s,m} waits on F_{s−1,m} when s > 0;
    // B_{s,m} waits on F_{s,m} and on B_{s+1,m} when s+1 < S.
    let mut indegree: Vec<u8> = vec![0; n_tasks];
    let mut stack: Vec<u32> = Vec::with_capacity(num_stages.max(16));
    for idx in 0..n_tasks {
        let data = match task_kind(idx, num_micro) {
            TaskKind::Forward { stage, .. } => (stage > 0) as u8,
            TaskKind::Backward { stage, .. } => 1 + (stage + 1 < num_stages) as u8,
        };
        let deg = data + has_control_pred[idx] as u8;
        indegree[idx] = deg;
        if deg == 0 {
            stack.push(idx as u32);
        }
    }

    // `ready_acc[t]` accumulates max(finish + lag) over t's satisfied
    // dependencies; once the indegree hits zero it *is* the start time. The
    // LIFO pop order is just some topological order — the accumulated max is
    // complete by the time a task is visited, so every timestamp matches the
    // time-ordered traversal exactly.
    let mut ready_acc = vec![0.0f64; n_tasks];
    let mut scheduled = 0usize;
    while let Some(idx32) = stack.pop() {
        let idx = idx32 as usize;
        let kind = task_kind(idx, num_micro);
        let s = kind.stage();
        let dur = if kind.is_backward() {
            times.bw[s].0
        } else {
            times.fw[s].0
        };
        let start = ready_acc[idx];
        let done = start + dur;
        finish[idx] = done;
        records[idx] = Some(TaskRecord {
            kind,
            start,
            end: done,
        });
        scheduled += 1;

        // Release the control successor and the data dependents. Lags mirror
        // the polling scheduler: activations pay `xfer[s]` flowing into
        // stage s+1, gradients pay `xfer[s−1]` flowing back into stage s−1.
        let mut release = |dep_idx: usize, arrival: f64| {
            if arrival > ready_acc[dep_idx] {
                ready_acc[dep_idx] = arrival;
            }
            indegree[dep_idx] -= 1;
            if indegree[dep_idx] == 0 {
                stack.push(dep_idx as u32);
            }
        };
        if control_next[idx] != NONE {
            release(control_next[idx] as usize, done);
        }
        match kind {
            TaskKind::Forward { stage, .. } => {
                if stage + 1 < num_stages {
                    // F_{s+1,m} sits one stage-stride ahead.
                    release(idx + 2 * num_micro, done + times.xfer[stage]);
                }
                // B_{s,m} sits one micro-stride ahead in the same stage.
                release(idx + num_micro, done);
            }
            TaskKind::Backward { stage, .. } => {
                if stage > 0 {
                    release(idx - 2 * num_micro, done + times.xfer[stage - 1]);
                }
            }
        }
    }
    if scheduled < n_tasks {
        return Err(SimError::Schedule(
            "task DAG deadlocked (cyclic dependencies?)".into(),
        ));
    }
    Ok((finish, records))
}

/// The original polling scheduler, kept verbatim as the golden reference for
/// the event-driven one (see `tests/sim_equivalence.rs`) and as the "seed"
/// arm `fastpath_bench` measures against. Scheduled for deletion once the
/// event-driven scheduler has soaked for a few PRs.
fn schedule_tasks_polling(
    num_stages: usize,
    num_micro: usize,
    times: &StageTimes,
    schedule: ScheduleKind,
) -> Result<(Vec<f64>, Vec<Option<TaskRecord>>)> {
    // Per-stage control order, then a fixed-point pass over the task DAG.
    let orders: Vec<Vec<TaskKind>> = (0..num_stages)
        .map(|s| stage_order(s, num_stages, num_micro, schedule))
        .collect();

    let n_tasks = num_stages * 2 * num_micro;
    let mut finish = vec![f64::NAN; n_tasks];
    let mut records: Vec<Option<TaskRecord>> = vec![None; n_tasks];
    // Iterate stage orders round-robin until all tasks schedule; because the
    // control order within a stage and data deps across stages are acyclic,
    // each sweep schedules at least one task.
    let mut cursor = vec![0usize; num_stages];
    let mut stage_free = vec![0.0f64; num_stages];
    let mut scheduled = 0usize;
    while scheduled < n_tasks {
        let mut progressed = false;
        for s in 0..num_stages {
            while cursor[s] < orders[s].len() {
                let kind = orders[s][cursor[s]];
                // All data deps done?
                let deps = data_deps(kind, num_stages);
                let mut ready_at = stage_free[s];
                let mut blocked = false;
                for dep in deps {
                    let di = task_index(dep, num_micro);
                    if finish[di].is_nan() {
                        blocked = true;
                        break;
                    }
                    // Add the tensor transfer on cross-stage edges.
                    let lag = match (dep, kind) {
                        (TaskKind::Forward { stage: ds, .. }, TaskKind::Forward { .. })
                            if ds != s =>
                        {
                            times.xfer[ds]
                        }
                        (TaskKind::Backward { stage: ds, .. }, TaskKind::Backward { .. })
                            if ds != s =>
                        {
                            // Gradient tensor flows back over the same link.
                            times.xfer[s]
                        }
                        _ => 0.0,
                    };
                    ready_at = ready_at.max(finish[di] + lag);
                }
                if blocked {
                    break;
                }
                let dur = if kind.is_backward() {
                    times.bw[s].0
                } else {
                    times.fw[s].0
                };
                let idx = task_index(kind, num_micro);
                finish[idx] = ready_at + dur;
                stage_free[s] = finish[idx];
                records[idx] = Some(TaskRecord {
                    kind,
                    start: ready_at,
                    end: finish[idx],
                });
                cursor[s] += 1;
                scheduled += 1;
                progressed = true;
            }
        }
        if !progressed {
            return Err(SimError::Schedule(
                "task DAG deadlocked (cyclic dependencies?)".into(),
            ));
        }
    }
    Ok((finish, records))
}

/// Assemble the start-ordered timeline by merging the presorted runs of the
/// index-ordered record array (each stage's forward block and backward block
/// are nondecreasing in start). Output order is the unique
/// `(start, task_index)` order — identical to sorting, in `O(n log stages)`
/// sequential passes.
fn merge_timeline(records: Vec<Option<TaskRecord>>, num_micro: usize) -> Vec<TaskRecord> {
    let n_tasks = records.len();
    let starts: Vec<f64> = records
        .iter()
        .map(|r| r.as_ref().map(|r| r.start).unwrap_or(f64::INFINITY))
        .collect();

    // Bottom-up two-way merge over index runs. Every run is a contiguous,
    // ascending index range throughout (initial runs are the per-stage F/B
    // blocks `[r·M, (r+1)·M)`, and merging neighbours preserves contiguity
    // of the *covered* range), so whenever starts tie the left run's index
    // is smaller — "take left on ties" IS the `(start, task_index)` order.
    let mut order: Vec<u32> = (0..n_tasks as u32).collect();
    let mut scratch: Vec<u32> = vec![0; n_tasks];
    let mut run_len = num_micro.max(1);
    while run_len < n_tasks {
        let mut lo = 0;
        while lo < n_tasks {
            let mid = (lo + run_len).min(n_tasks);
            let hi = (lo + 2 * run_len).min(n_tasks);
            let (mut a, mut b, mut o) = (lo, mid, lo);
            while a < mid && b < hi {
                // `<=` takes left on ties; starts are never NaN and never
                // -0.0 (nonnegative max-folds), so `<=` agrees with
                // `total_cmp`.
                if starts[order[a] as usize] <= starts[order[b] as usize] {
                    scratch[o] = order[a];
                    a += 1;
                } else {
                    scratch[o] = order[b];
                    b += 1;
                }
                o += 1;
            }
            scratch[o..o + (mid - a)].copy_from_slice(&order[a..mid]);
            let o2 = o + (mid - a);
            scratch[o2..o2 + (hi - b)].copy_from_slice(&order[b..hi]);
            lo = hi;
        }
        std::mem::swap(&mut order, &mut scratch);
        run_len *= 2;
    }

    let mut records = records;
    order
        .into_iter()
        .filter_map(|idx| records[idx as usize].take())
        .collect()
}

/// Simulate one training step of `plan` on `cluster`.
pub fn simulate_step(
    plan: &ExecutionPlan,
    cluster: &Cluster,
    config: &SimConfig,
) -> Result<StepOutcome> {
    simulate_step_impl(plan, cluster, config, false)
}

/// [`simulate_step`] driven by the original polling scheduler instead of the
/// event-driven one. Exists so the golden-equivalence tests and
/// `fastpath_bench` can compare against the seed behavior; will be removed
/// once the event-driven scheduler has soaked for a few PRs.
#[doc(hidden)]
pub fn simulate_step_reference(
    plan: &ExecutionPlan,
    cluster: &Cluster,
    config: &SimConfig,
) -> Result<StepOutcome> {
    simulate_step_impl(plan, cluster, config, true)
}

fn simulate_step_impl(
    plan: &ExecutionPlan,
    cluster: &Cluster,
    config: &SimConfig,
    use_polling: bool,
) -> Result<StepOutcome> {
    plan.validate(cluster)?;
    let comm = CommModel::new(cluster);
    let num_stages = plan.stages.len();
    let num_micro = plan.num_micro_batches;

    let times = stage_times(plan, cluster, &comm)?;
    let (finish, records) = if use_polling {
        schedule_tasks_polling(num_stages, num_micro, &times, config.schedule)?
    } else {
        schedule_tasks_event(num_stages, num_micro, &times, config.schedule)?
    };
    let fw_time = &times.fw;
    let bw_time = &times.bw;

    let mut compute_makespan = finish.iter().cloned().fold(0.0f64, f64::max);
    // PipeMare-style asynchrony (§6 future work): with no flush between
    // steps the pipeline stays full, so the amortized per-step span is the
    // bottleneck stage's work — warm-up and drain vanish.
    if config.schedule == ScheduleKind::AsyncNoFlush {
        let steady = (0..num_stages)
            .map(|s| (fw_time[s].0 + bw_time[s].0) * num_micro as f64)
            .fold(0.0f64, f64::max);
        compute_makespan = steady;
    }

    // Per-GPU busy time: own compute share per task instance.
    let mut busy: BTreeMap<usize, f64> = BTreeMap::new();
    for s in 0..num_stages {
        for &(gpu, t) in &fw_time[s].1 {
            *busy.entry(gpu).or_insert(0.0) += t * num_micro as f64;
        }
        for &(gpu, t) in &bw_time[s].1 {
            *busy.entry(gpu).or_insert(0.0) += t * num_micro as f64;
        }
    }

    // Gradient synchronization. Each stage's AllReduce becomes *ready* when
    // that stage's last backward drains; syncs then serialize (they share
    // each node's NIC). `sync_overlap` interpolates readiness between fully
    // eager (1.0: start at backward completion, hiding in the pipeline
    // drain) and fully exposed (0.0: start only after the whole step's
    // compute). Backward tasks of stage `s` occupy the dense index range
    // `[s·2M + M, (s+1)·2M)`, so the drain time reads straight off `finish`.
    let stage_bw_done: Vec<f64> = (0..num_stages)
        .map(|s| {
            finish[s * 2 * num_micro + num_micro..(s + 1) * 2 * num_micro]
                .iter()
                .cloned()
                .fold(0.0f64, f64::max)
        })
        .collect();
    let compute_makespan_tmp = finish.iter().cloned().fold(0.0f64, f64::max);
    // ZeRO-3 AllGathers sharded parameters on demand (~1.5x AllReduce
    // traffic, ref [31]).
    let zero_factor = plan.training.zero.comm_factor();
    // Plans carrying a *bucketed* grad-sync schedule take the event-driven
    // per-bucket path; everything else (legacy schedules, hand-built plans)
    // takes the original scalar-overlap model unchanged — bit-identical to
    // the pre-bucketing simulator (pinned by `tests/comm_equivalence.rs`).
    let bucketed = plan
        .grad_sync_schedule
        .as_ref()
        .filter(|s| s.mode == SyncMode::Bucketed);
    let (sync_total, sync_exposed) = if let Some(sched) = bucketed {
        // Event-driven bucket overlap: a bucket becomes ready when the last
        // backward op contributing to it finishes — the owning stage's last
        // backward task spans `[done − bw_dur, done]` and gradients
        // finalize at `ready_frac` through it. No interpolation constant.
        let mut sync_total = 0.0;
        let mut events: Vec<(f64, usize, f64, Vec<usize>)> =
            Vec::with_capacity(sched.buckets.len());
        // Per-sync context (involved nodes, backward window, cost selector)
        // is derived once per group, not once per bucket.
        struct SyncCtx {
            selector: Option<whale_hardware::AllReduceSelector>,
            nodes: Vec<usize>,
            membw: f64,
            done: f64,
            bw_dur: f64,
            tie: usize,
        }
        // Mixed-precision schedules serialize *wire* bytes on the NICs and
        // charge each bucket's quantize/dequantize passes; fp32 schedules
        // have `wire_bytes == bytes` and skip the quantize term entirely
        // (bit-identical to the pre-precision simulator).
        let scaled = sched.wire_scaled();
        let mut ctxs: Vec<Option<SyncCtx>> = std::iter::repeat_with(|| None)
            .take(plan.grad_syncs.len())
            .collect();
        for b in &sched.buckets {
            let c = plan.grad_syncs.get(b.sync_index).ok_or_else(|| {
                SimError::Schedule(format!(
                    "grad-sync schedule references unknown sync {}",
                    b.sync_index
                ))
            })?;
            if ctxs[b.sync_index].is_none() {
                let stage_idx = c.stage.filter(|&s| s < num_stages);
                let mut nodes: Vec<usize> = Vec::with_capacity(2);
                let mut membw = f64::INFINITY;
                for &g in &c.group {
                    let gpu = cluster.gpu(g)?;
                    membw = membw.min(gpu.model.memory_bandwidth());
                    let n = gpu.node;
                    if !nodes.contains(&n) {
                        nodes.push(n);
                    }
                }
                nodes.sort_unstable();
                ctxs[b.sync_index] = Some(SyncCtx {
                    selector: None,
                    nodes,
                    membw,
                    done: stage_idx
                        .map(|s| stage_bw_done[s])
                        .unwrap_or(compute_makespan_tmp),
                    bw_dur: stage_idx.map(|s| bw_time[s].0).unwrap_or(0.0),
                    tie: c.group.iter().copied().min().unwrap_or(usize::MAX),
                });
            }
            let ctx = ctxs[b.sync_index].as_mut().expect("just built");
            let quant = if scaled && c.group.len() > 1 {
                whale_hardware::quantize_dequantize_cost(b.bytes, b.wire_bytes, ctx.membw)
            } else {
                0.0
            };
            let dur = match b.algo {
                // `AllReduceSelector::cost` is bit-identical to
                // `allreduce_with` with the group re-derived per call.
                Some(algo) => {
                    if ctx.selector.is_none() {
                        ctx.selector = Some(comm.allreduce_selector(&c.group)?);
                    }
                    ctx.selector
                        .as_ref()
                        .expect("just built")
                        .cost(algo, b.wire_bytes)
                }
                None => comm.collective(c.kind, &c.group, b.wire_bytes)?,
            } * zero_factor
                + quant;
            sync_total += dur;
            let ready = (ctx.done - (1.0 - b.ready_frac) * ctx.bw_dur).max(0.0);
            events.push((ready, ctx.tie, dur, ctx.nodes.clone()));
        }
        // Stable sort keeps each sync's reverse-backward bucket order on
        // ties; the min-gpu tie-break keeps cross-sync order deterministic.
        events.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        // Buckets serialize per link, not globally: a cross-node collective
        // occupies every involved node's NIC, an intra-node one only that
        // node's local fabric — disjoint groups overlap freely.
        let mut nic_free: BTreeMap<usize, f64> = BTreeMap::new();
        let mut local_free: BTreeMap<usize, f64> = BTreeMap::new();
        let mut last_finish = 0.0f64;
        for (ready, _, dur, nodes) in events {
            let fin = if nodes.len() > 1 {
                let start = nodes.iter().fold(ready, |acc, n| {
                    acc.max(nic_free.get(n).copied().unwrap_or(0.0))
                });
                let fin = start + dur;
                for n in nodes {
                    nic_free.insert(n, fin);
                }
                fin
            } else {
                let n = nodes.first().copied().unwrap_or(0);
                let start = ready.max(local_free.get(&n).copied().unwrap_or(0.0));
                let fin = start + dur;
                local_free.insert(n, fin);
                fin
            };
            last_finish = last_finish.max(fin);
        }
        (sync_total, (last_finish - compute_makespan_tmp).max(0.0))
    } else {
        // `(ready, tie-break gpu id, duration)` per sync. The explicit
        // min-gpu-id tie-break keeps the serialization order stable when two
        // stages drain at exactly the same instant — equal ready times used
        // to fall back to the incidental insertion order, which refactors
        // could silently change.
        let mut syncs: Vec<(f64, usize, f64)> = Vec::with_capacity(plan.grad_syncs.len());
        let mut sync_total = 0.0;
        // A mixed-precision legacy schedule (fusion off, but a non-fp32
        // dtype or a compression factor) still shrinks the wire: each sync
        // moves its schedule's wire bytes and pays the quantize passes.
        // fp32 schedules — and plans with no schedule at all — take the
        // exact pre-existing expression.
        let wire_sched = plan.grad_sync_schedule.as_ref().filter(|s| s.wire_scaled());
        for (sync_index, c) in plan.grad_syncs.iter().enumerate() {
            let (wire, quant) = match wire_sched.and_then(|s| s.wire_bytes_of(sync_index)) {
                Some(wire) if c.group.len() > 1 => {
                    let mut membw = f64::INFINITY;
                    for &g in &c.group {
                        membw = membw.min(cluster.gpu(g)?.model.memory_bandwidth());
                    }
                    (
                        wire,
                        whale_hardware::quantize_dequantize_cost(c.bytes, wire, membw),
                    )
                }
                _ => (c.bytes, 0.0),
            };
            let dur = comm.collective(c.kind, &c.group, wire)? * zero_factor + quant;
            sync_total += dur;
            let stage_idx = c.stage.filter(|&s| s < num_stages);
            let done = stage_idx
                .map(|s| stage_bw_done[s])
                .unwrap_or(compute_makespan_tmp);
            let ready = if num_micro == 1 {
                // Un-pipelined DP: gradients finalize layer by layer during
                // the single backward pass, so bucketed AllReduce overlaps
                // with the backward window itself (Horovod-style).
                let bw_busy = stage_idx
                    .map(|s| bw_time[s].1.iter().map(|&(_, t)| t).fold(0.0f64, f64::max))
                    .unwrap_or(0.0);
                (done - config.sync_overlap * bw_busy).max(0.0)
            } else {
                // Pipelined: gradients accumulate across micro batches and
                // are final only after the stage's last backward; imperfect
                // overlap infrastructure shifts readiness toward the end of
                // compute.
                done + (1.0 - config.sync_overlap) * (compute_makespan_tmp - done)
            };
            let tie = c.group.iter().copied().min().unwrap_or(usize::MAX);
            syncs.push((ready, tie, dur));
        }
        syncs.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        let mut nic_free = 0.0f64;
        for (ready, _, dur) in syncs {
            nic_free = nic_free.max(ready) + dur;
        }
        (sync_total, (nic_free - compute_makespan_tmp).max(0.0))
    };

    // Optimizer update: parameter read-modify-write, memory-bandwidth bound.
    // ZeRO-Offload instead updates on the host and pays a PCIe round trip of
    // gradients down and fp16 parameters back (ref [34]).
    let mut optimizer_time: f64 = 0.0;
    for stage in plan.stages.iter() {
        // ZeRO shards the update across the ranks replicating this stage.
        let shards = if plan.training.zero.shards_optimizer() || plan.training.offload {
            stage.dp_degree.max(1) as f64
        } else {
            1.0
        };
        for d in &stage.devices {
            let gpu = cluster.gpu(d.gpu)?;
            let local_params = stage.param_bytes as f64;
            let t = if plan.training.offload {
                let grad_bytes = local_params / 4.0 * if plan.training.amp { 2.0 } else { 4.0 };
                let back_bytes = local_params / 4.0 * 2.0;
                (grad_bytes + back_bytes) / (shards * cluster.interconnect.pcie_bw)
            } else {
                3.0 * local_params / (shards * gpu.model.memory_bandwidth())
            };
            optimizer_time = optimizer_time.max(t);
        }
    }

    let step_time = compute_makespan + sync_exposed + optimizer_time;

    // Per-GPU sample share, for the occupancy model.
    let mut samples: BTreeMap<usize, usize> = BTreeMap::new();
    for stage in plan.stages.iter() {
        for d in &stage.devices {
            let e = samples.entry(d.gpu).or_insert(0);
            *e = (*e).max(d.samples_per_step);
        }
    }

    // Memory audit.
    let mem = plan.memory_per_gpu();
    let mut oom = Vec::new();
    let mut per_gpu = Vec::new();
    for (&gpu_id, &bytes) in &mem {
        let gpu = cluster.gpu(gpu_id)?;
        if bytes > gpu.memory_bytes() {
            oom.push(gpu_id);
        }
        let b = busy.get(&gpu_id).copied().unwrap_or(0.0);
        let occupancy = if config.occupancy_half_sat > 0.0 {
            let s = samples.get(&gpu_id).copied().unwrap_or(0) as f64;
            s / (s + config.occupancy_half_sat)
        } else {
            1.0
        };
        per_gpu.push(GpuStat {
            gpu: gpu_id,
            model: gpu.model,
            busy: b,
            utilization: if step_time > 0.0 {
                occupancy * b / step_time
            } else {
                0.0
            },
            mem_bytes: bytes,
            mem_capacity: gpu.memory_bytes(),
        });
    }

    // Records sit in task-index order: per stage, the forward block then the
    // backward block, each nondecreasing in start time (the control order
    // forces that within a stage). The comparator `(start, task_index)` is a
    // strict total order, so any correct sort yields one unique sequence —
    // and it matches what the seed's stable start-only sort produced on
    // index-ordered input. The fast path k-way-merges the 2·stages presorted
    // runs instead of sorting from scratch; the reference path keeps the
    // seed's sort. `tests/sim_equivalence.rs` pins the two together.
    let timeline = if use_polling {
        let mut timeline: Vec<TaskRecord> = records.into_iter().flatten().collect();
        timeline.sort_by(|a, b| {
            a.start
                .total_cmp(&b.start)
                .then_with(|| task_index(a.kind, num_micro).cmp(&task_index(b.kind, num_micro)))
        });
        timeline
    } else {
        merge_timeline(records, num_micro)
    };

    Ok(StepOutcome {
        stats: StepStats {
            step_time,
            compute_makespan,
            sync_time_total: sync_total,
            sync_time_exposed: sync_exposed,
            optimizer_time,
            throughput: if step_time > 0.0 {
                plan.global_batch as f64 / step_time
            } else {
                0.0
            },
            per_gpu,
            oom_gpus: oom,
        },
        timeline,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use whale_graph::models;
    use whale_hardware::Cluster;
    use whale_ir::Annotator;
    use whale_planner::{plan, PlannerConfig};

    fn dp_plan(hardware_aware: bool) -> (ExecutionPlan, Cluster) {
        let g = models::resnet50(128).unwrap();
        let ir = Annotator::new(g, 128)
            .replicate_all()
            .unwrap()
            .finish()
            .unwrap();
        let cluster = Cluster::parse("8xV100+8xP100").unwrap();
        let cfg = PlannerConfig {
            hardware_aware,
            ..PlannerConfig::default()
        };
        (plan(&ir, &cluster, &cfg).unwrap(), cluster)
    }

    #[test]
    fn dp_step_produces_sane_stats() {
        let (p, c) = dp_plan(true);
        let out = simulate_step(&p, &c, &SimConfig::default()).unwrap();
        let s = &out.stats;
        assert!(s.step_time > 0.0);
        assert!(s.throughput > 0.0);
        assert_eq!(s.per_gpu.len(), 16);
        assert!(s.per_gpu.iter().all(|g| g.utilization <= 1.0 + 1e-9));
        assert!(!s.has_oom());
    }

    #[test]
    fn hardware_aware_dp_beats_baseline() {
        // The Fig. 17 effect: balancing batches by FLOPS shortens the step.
        let (aware, c) = dp_plan(true);
        let (base, _) = dp_plan(false);
        let cfg = SimConfig::default();
        let t_aware = simulate_step(&aware, &c, &cfg).unwrap().stats.step_time;
        let t_base = simulate_step(&base, &c, &cfg).unwrap().stats.step_time;
        let speedup = t_base / t_aware;
        assert!(
            (1.15..1.75).contains(&speedup),
            "speedup {speedup} outside the paper's 1.2-1.4 neighbourhood"
        );
    }

    #[test]
    fn hardware_aware_raises_v100_utilization() {
        let (aware, c) = dp_plan(true);
        let (base, _) = dp_plan(false);
        let cfg = SimConfig::default();
        let u_aware = simulate_step(&aware, &c, &cfg).unwrap().stats;
        let u_base = simulate_step(&base, &c, &cfg).unwrap().stats;
        let v_aware = u_aware.utilization_by_model()["V100-32GB"];
        let v_base = u_base.utilization_by_model()["V100-32GB"];
        assert!(
            v_aware > v_base * 1.25,
            "V100 utilization should rise ≥1.25×: {v_base} → {v_aware}"
        );
    }

    #[test]
    fn pipeline_bubbles_shrink_with_more_micro_batches() {
        let cluster = Cluster::parse("4xV100").unwrap();
        let mk = |micros: usize| {
            let g = models::bert_base(32, 64).unwrap();
            let ir = Annotator::new(g, 32)
                .auto_pipeline(micros)
                .unwrap()
                .finish()
                .unwrap();
            plan(&ir, &cluster, &PlannerConfig::default()).unwrap()
        };
        let cfg = SimConfig::default();
        let few = simulate_step(&mk(2), &cluster, &cfg).unwrap().stats;
        let many = simulate_step(&mk(16), &cluster, &cfg).unwrap().stats;
        assert!(
            many.bubble_ratio() < few.bubble_ratio(),
            "bubble {:.3} (m=16) vs {:.3} (m=2)",
            many.bubble_ratio(),
            few.bubble_ratio()
        );
    }

    #[test]
    fn backward_first_matches_gpipe_makespan_shape() {
        // Same pipeline: 1F1B and GPipe have similar makespans for equal
        // stage times (1F1B wins on memory, not time), so both should be
        // within a small factor.
        let cluster = Cluster::parse("4xV100").unwrap();
        let g = models::bert_base(32, 64).unwrap();
        let ir = Annotator::new(g, 32)
            .auto_pipeline(8)
            .unwrap()
            .finish()
            .unwrap();
        let p = plan(&ir, &cluster, &PlannerConfig::default()).unwrap();
        let bf = simulate_step(&p, &cluster, &SimConfig::default())
            .unwrap()
            .stats;
        let gp = simulate_step(
            &p,
            &cluster,
            &SimConfig {
                schedule: ScheduleKind::GPipe,
                ..SimConfig::default()
            },
        )
        .unwrap()
        .stats;
        let ratio = gp.compute_makespan / bf.compute_makespan;
        assert!((0.8..1.3).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn schedule_choice_changes_the_simulated_timeline() {
        // The auto-parallel search treats the pipeline schedule as a search
        // dimension via `SimConfig::with_schedule`; the axis is only
        // meaningful if the simulator actually orders work differently.
        let cluster = Cluster::parse("4xV100").unwrap();
        let g = models::bert_base(32, 64).unwrap();
        let ir = Annotator::new(g, 32)
            .auto_pipeline(8)
            .unwrap()
            .finish()
            .unwrap();
        let p = plan(&ir, &cluster, &PlannerConfig::default()).unwrap();
        let bf = simulate_step(
            &p,
            &cluster,
            &SimConfig::with_schedule(ScheduleKind::BackwardFirst),
        )
        .unwrap();
        let gp =
            simulate_step(&p, &cluster, &SimConfig::with_schedule(ScheduleKind::GPipe)).unwrap();
        assert_ne!(
            bf.timeline, gp.timeline,
            "backward-first and GPipe must order micro-batches differently"
        );
        // And the helper is the default config with only the schedule swapped.
        let c = SimConfig::with_schedule(ScheduleKind::GPipe);
        let d = SimConfig::default();
        assert_eq!(c.schedule, ScheduleKind::GPipe);
        assert_eq!(c.sync_overlap, d.sync_overlap);
        assert_eq!(c.occupancy_half_sat, d.occupancy_half_sat);
    }

    #[test]
    fn timeline_respects_pipeline_deps() {
        let cluster = Cluster::parse("4xV100").unwrap();
        let g = models::bert_base(16, 64).unwrap();
        let ir = Annotator::new(g, 16)
            .auto_pipeline(4)
            .unwrap()
            .finish()
            .unwrap();
        let p = plan(&ir, &cluster, &PlannerConfig::default()).unwrap();
        let out = simulate_step(&p, &cluster, &SimConfig::default()).unwrap();
        let find = |k: TaskKind| {
            out.timeline
                .iter()
                .find(|r| r.kind == k)
                .unwrap_or_else(|| panic!("missing {k:?}"))
                .clone()
        };
        // F_{1,0} starts after F_{0,0} ends.
        let f00 = find(TaskKind::Forward { stage: 0, micro: 0 });
        let f10 = find(TaskKind::Forward { stage: 1, micro: 0 });
        assert!(f10.start >= f00.end);
        // B_{0,0} after B_{1,0}.
        let b10 = find(TaskKind::Backward { stage: 1, micro: 0 });
        let b00 = find(TaskKind::Backward { stage: 0, micro: 0 });
        assert!(b00.start >= b10.end);
        assert_eq!(out.timeline.len(), 4 * 2 * 4);
    }

    #[test]
    fn task_kind_round_trips_through_task_index() {
        for num_micro in [1usize, 3, 8] {
            for stage in 0..5 {
                for micro in 0..num_micro {
                    for kind in [
                        TaskKind::Forward { stage, micro },
                        TaskKind::Backward { stage, micro },
                    ] {
                        assert_eq!(task_kind(task_index(kind, num_micro), num_micro), kind);
                    }
                }
            }
        }
    }

    #[test]
    fn oom_detection_reports_gpus() {
        // BERT-Large replicas at a huge per-GPU batch on 16 GB P100s.
        let g = models::bert_large(512, 128).unwrap();
        let ir = Annotator::new(g, 512)
            .replicate_all()
            .unwrap()
            .finish()
            .unwrap();
        let cluster = Cluster::parse("2xP100").unwrap();
        let cfg = PlannerConfig {
            hardware_aware: false,
            ..PlannerConfig::default()
        };
        let p = plan(&ir, &cluster, &cfg).unwrap();
        let out = simulate_step(&p, &cluster, &SimConfig::default()).unwrap();
        assert!(out.stats.has_oom());
    }
}

#[cfg(test)]
mod async_tests {
    use super::*;
    use whale_graph::models;
    use whale_hardware::Cluster;
    use whale_ir::Annotator;
    use whale_planner::{plan, PlannerConfig};

    #[test]
    fn async_schedule_removes_the_bubble() {
        let cluster = Cluster::parse("1x(4xV100)").unwrap();
        let g = models::bert_base(64, 64).unwrap();
        let ir = Annotator::new(g, 64)
            .auto_pipeline(8)
            .unwrap()
            .finish()
            .unwrap();
        let p = plan(&ir, &cluster, &PlannerConfig::default()).unwrap();
        let sync = simulate_step(&p, &cluster, &SimConfig::default())
            .unwrap()
            .stats;
        let asynch = simulate_step(
            &p,
            &cluster,
            &SimConfig {
                schedule: ScheduleKind::AsyncNoFlush,
                ..SimConfig::default()
            },
        )
        .unwrap()
        .stats;
        assert!(
            asynch.compute_makespan < sync.compute_makespan,
            "async {} vs sync {}",
            asynch.compute_makespan,
            sync.compute_makespan
        );
        // The async span equals the bottleneck stage's total work — the
        // sync span minus its bubble, approximately.
        let lower_bound = sync.compute_makespan * (1.0 - sync.bubble_ratio()) * 0.8;
        assert!(asynch.compute_makespan > lower_bound);
    }

    #[test]
    fn stale_gradient_efficiency_slows_convergence() {
        use crate::trainer::LossModel;
        let sync = LossModel::for_params(1e9);
        let stale = sync.with_sample_efficiency(0.5);
        assert!(stale.loss_at(1e7) > sync.loss_at(1e7));
        // Efficiency clamps into (0, 1].
        let clamped = sync.with_sample_efficiency(7.0);
        assert_eq!(clamped.sample_efficiency, 1.0);
    }
}
