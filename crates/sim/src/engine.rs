//! The discrete-event execution engine.
//!
//! Simulates one training step of an [`ExecutionPlan`] on a [`Cluster`]:
//! pipeline tasks execute in dependency + control order, compute time follows
//! the paper's cost model `t = MF / (GF · α)`, cross-stage tensors pay the
//! interconnect, intra-stage collectives (split patterns, bridges) pay the
//! collective cost model, and gradient AllReduce runs hierarchically at the
//! end of the step, partially overlapped with backward compute.

use std::collections::BTreeMap;

use whale_hardware::{Cluster, CommModel};
use whale_planner::{ExecutionPlan, PlannedStage, ScheduleKind};

use crate::error::{Result, SimError};
use crate::metrics::{GpuStat, StepStats};
use crate::schedule::{data_deps, stage_order, TaskKind};

/// Simulator options.
#[derive(Debug, Clone, Copy)]
pub struct SimConfig {
    /// Pipeline schedule (must match what the plan's memory model assumed).
    pub schedule: ScheduleKind,
    /// Fraction of backward compute usable to hide gradient AllReduce
    /// (Whale overlaps sync with the tail of backward; 1.0 = full overlap,
    /// 0.0 = fully exposed sync).
    pub sync_overlap: f64,
    /// Half-saturation batch of the SM-occupancy model: kernels launched
    /// with `b` samples reach `b/(b + half_sat)` of full SM activity, which
    /// is why the paper's Table 2 shows P100 SMACT *dipping slightly* when
    /// the hardware-aware policy shrinks its batch. 0 disables the model
    /// (utilization = pure busy fraction).
    pub occupancy_half_sat: f64,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            schedule: ScheduleKind::BackwardFirst,
            sync_overlap: 1.0,
            occupancy_half_sat: 16.0,
        }
    }
}

/// Per-task timing record from a simulated step (feeds the trace exporter).
#[derive(Debug, Clone, PartialEq)]
pub struct TaskRecord {
    /// What ran.
    pub kind: TaskKind,
    /// Start time, seconds.
    pub start: f64,
    /// End time, seconds.
    pub end: f64,
}

/// A simulated step: stats plus the task timeline.
#[derive(Debug, Clone)]
pub struct StepOutcome {
    /// Aggregate metrics.
    pub stats: StepStats,
    /// Per-task records ordered by start time.
    pub timeline: Vec<TaskRecord>,
}

fn task_index(kind: TaskKind, num_micro: usize) -> usize {
    let base = kind.stage() * 2 * num_micro;
    match kind {
        TaskKind::Forward { micro, .. } => base + micro,
        TaskKind::Backward { micro, .. } => base + num_micro + micro,
    }
}

/// Compute duration of one stage-task (max over its devices) plus its
/// per-micro collectives.
fn stage_task_time(
    stage: &PlannedStage,
    cluster: &Cluster,
    comm: &CommModel<'_>,
    efficiency: f64,
    backward: bool,
    recompute: bool,
    amp: bool,
) -> Result<(f64, Vec<(usize, f64)>)> {
    let mut per_device = Vec::with_capacity(stage.devices.len());
    let mut max_compute: f64 = 0.0;
    // Backward ≈ 2× forward; recomputation replays the forward first.
    let factor = if backward {
        if recompute {
            3.0
        } else {
            2.0
        }
    } else {
        1.0
    };
    for d in &stage.devices {
        let gpu = cluster.gpu(d.gpu)?;
        let amp_boost = if amp { gpu.model.amp_speedup() } else { 1.0 };
        // Roofline: compute-bound FLOPs at effective throughput plus the
        // bandwidth-bound traffic at device memory bandwidth (AMP halves
        // activation bytes).
        let flops_t = factor * d.fw_flops_per_micro / (gpu.flops() * amp_boost * efficiency);
        let traffic = d.mem_traffic_per_micro * if amp { 0.5 } else { 1.0 };
        let bw_t = factor * traffic / gpu.model.memory_bandwidth();
        let t = flops_t + bw_t;
        per_device.push((d.gpu, t));
        max_compute = max_compute.max(t);
    }
    let mut comm_time = 0.0;
    for c in &stage.collectives_per_micro {
        comm_time += comm.collective(c.kind, &c.group, per_rank_bytes(c))?;
    }
    Ok((max_compute + comm_time, per_device))
}

/// Convert a plan collective's *total logical payload* into the per-rank
/// bytes the cost model expects. AllGather and AllToAll distribute the
/// payload across ranks (each rank contributes `1/n`); AllReduce,
/// ReduceScatter, and Broadcast operate on the full tensor per rank.
fn per_rank_bytes(c: &whale_planner::CollectiveTask) -> u64 {
    use whale_hardware::Collective;
    let n = c.group.len().max(1) as u64;
    match c.kind {
        Collective::AllGather | Collective::AllToAll => (c.bytes / n).max(1),
        Collective::AllReduce | Collective::ReduceScatter | Collective::Broadcast => c.bytes,
    }
}

/// Transfer time for the tensor flowing between two adjacent stages.
fn inter_stage_transfer(
    from: &PlannedStage,
    to: &PlannedStage,
    cluster: &Cluster,
    bytes: u64,
) -> Result<f64> {
    if bytes == 0 {
        return Ok(0.0);
    }
    // Co-located stages (e.g. alternating replica/split MoE TaskGraphs on
    // the same GPUs) hand tensors over in device memory.
    let from_ids = from.gpu_ids();
    let to_ids = to.gpu_ids();
    if from_ids == to_ids {
        return Ok(0.0);
    }
    let a = cluster.gpu(from_ids[0])?;
    let b = cluster.gpu(to_ids[0])?;
    Ok(cluster.interconnect.p2p_time(a, b, bytes))
}

/// Simulate one training step of `plan` on `cluster`.
pub fn simulate_step(
    plan: &ExecutionPlan,
    cluster: &Cluster,
    config: &SimConfig,
) -> Result<StepOutcome> {
    plan.validate(cluster)?;
    let comm = CommModel::new(cluster);
    let num_stages = plan.stages.len();
    let num_micro = plan.num_micro_batches;
    let recompute = plan.training.recompute;

    // Pre-compute per-stage task durations and device shares.
    let mut fw_time = Vec::with_capacity(num_stages);
    let mut bw_time = Vec::with_capacity(num_stages);
    for stage in &plan.stages {
        fw_time.push(stage_task_time(
            stage,
            cluster,
            &comm,
            plan.efficiency,
            false,
            recompute,
            plan.training.amp,
        )?);
        bw_time.push(stage_task_time(
            stage,
            cluster,
            &comm,
            plan.efficiency,
            true,
            recompute,
            plan.training.amp,
        )?);
    }
    let mut xfer = vec![0.0; num_stages];
    for (s, slot) in xfer.iter_mut().enumerate().take(num_stages.saturating_sub(1)) {
        *slot = inter_stage_transfer(
            &plan.stages[s],
            &plan.stages[s + 1],
            cluster,
            plan.stages[s].send_bytes_per_micro,
        )?;
    }

    // Per-stage control order, then a fixed-point pass over the task DAG.
    let orders: Vec<Vec<TaskKind>> = (0..num_stages)
        .map(|s| stage_order(s, num_stages, num_micro, config.schedule))
        .collect();

    let n_tasks = num_stages * 2 * num_micro;
    let mut finish = vec![f64::NAN; n_tasks];
    let mut records: Vec<Option<TaskRecord>> = vec![None; n_tasks];
    // Iterate stage orders round-robin until all tasks schedule; because the
    // control order within a stage and data deps across stages are acyclic,
    // each sweep schedules at least one task.
    let mut cursor = vec![0usize; num_stages];
    let mut stage_free = vec![0.0f64; num_stages];
    let mut scheduled = 0usize;
    while scheduled < n_tasks {
        let mut progressed = false;
        for s in 0..num_stages {
            while cursor[s] < orders[s].len() {
                let kind = orders[s][cursor[s]];
                // All data deps done?
                let deps = data_deps(kind, num_stages);
                let mut ready_at = stage_free[s];
                let mut blocked = false;
                for dep in deps {
                    let di = task_index(dep, num_micro);
                    if finish[di].is_nan() {
                        blocked = true;
                        break;
                    }
                    // Add the tensor transfer on cross-stage edges.
                    let lag = match (dep, kind) {
                        (TaskKind::Forward { stage: ds, .. }, TaskKind::Forward { .. })
                            if ds != s =>
                        {
                            xfer[ds]
                        }
                        (TaskKind::Backward { stage: ds, .. }, TaskKind::Backward { .. })
                            if ds != s =>
                        {
                            // Gradient tensor flows back over the same link.
                            xfer[s]
                        }
                        _ => 0.0,
                    };
                    ready_at = ready_at.max(finish[di] + lag);
                }
                if blocked {
                    break;
                }
                let (dur, _) = if kind.is_backward() {
                    (bw_time[s].0, &bw_time[s].1)
                } else {
                    (fw_time[s].0, &fw_time[s].1)
                };
                let idx = task_index(kind, num_micro);
                finish[idx] = ready_at + dur;
                stage_free[s] = finish[idx];
                records[idx] = Some(TaskRecord {
                    kind,
                    start: ready_at,
                    end: finish[idx],
                });
                cursor[s] += 1;
                scheduled += 1;
                progressed = true;
            }
        }
        if !progressed {
            return Err(SimError::Schedule(
                "task DAG deadlocked (cyclic dependencies?)".into(),
            ));
        }
    }

    let mut compute_makespan = finish.iter().cloned().fold(0.0f64, f64::max);
    // PipeMare-style asynchrony (§6 future work): with no flush between
    // steps the pipeline stays full, so the amortized per-step span is the
    // bottleneck stage's work — warm-up and drain vanish.
    if config.schedule == ScheduleKind::AsyncNoFlush {
        let steady = (0..num_stages)
            .map(|s| (fw_time[s].0 + bw_time[s].0) * num_micro as f64)
            .fold(0.0f64, f64::max);
        compute_makespan = steady;
    }

    // Per-GPU busy time: own compute share per task instance.
    let mut busy: BTreeMap<usize, f64> = BTreeMap::new();
    for s in 0..num_stages {
        for &(gpu, t) in &fw_time[s].1 {
            *busy.entry(gpu).or_insert(0.0) += t * num_micro as f64;
        }
        for &(gpu, t) in &bw_time[s].1 {
            *busy.entry(gpu).or_insert(0.0) += t * num_micro as f64;
        }
    }

    // Gradient synchronization. Each stage's AllReduce becomes *ready* when
    // that stage's last backward drains; syncs then serialize (they share
    // each node's NIC). `sync_overlap` interpolates readiness between fully
    // eager (1.0: start at backward completion, hiding in the pipeline
    // drain) and fully exposed (0.0: start only after the whole step's
    // compute).
    let mut stage_bw_done = vec![0.0f64; num_stages];
    for r in records.iter().flatten() {
        if r.kind.is_backward() {
            let s = r.kind.stage();
            stage_bw_done[s] = stage_bw_done[s].max(r.end);
        }
    }
    let compute_makespan_tmp = finish.iter().cloned().fold(0.0f64, f64::max);
    let mut syncs: Vec<(f64, f64)> = Vec::with_capacity(plan.grad_syncs.len());
    let mut sync_total = 0.0;
    // ZeRO-3 AllGathers sharded parameters on demand (~1.5x AllReduce
    // traffic, ref [31]).
    let zero_factor = plan.training.zero.comm_factor();
    for c in &plan.grad_syncs {
        let dur = comm.collective(c.kind, &c.group, c.bytes)? * zero_factor;
        sync_total += dur;
        let stage_idx = c.stage.filter(|&s| s < num_stages);
        let done = stage_idx
            .map(|s| stage_bw_done[s])
            .unwrap_or(compute_makespan_tmp);
        let ready = if num_micro == 1 {
            // Un-pipelined DP: gradients finalize layer by layer during the
            // single backward pass, so bucketed AllReduce overlaps with the
            // backward window itself (Horovod-style).
            let bw_busy = stage_idx
                .map(|s| {
                    bw_time[s]
                        .1
                        .iter()
                        .map(|&(_, t)| t)
                        .fold(0.0f64, f64::max)
                })
                .unwrap_or(0.0);
            (done - config.sync_overlap * bw_busy).max(0.0)
        } else {
            // Pipelined: gradients accumulate across micro batches and are
            // final only after the stage's last backward; imperfect overlap
            // infrastructure shifts readiness toward the end of compute.
            done + (1.0 - config.sync_overlap) * (compute_makespan_tmp - done)
        };
        syncs.push((ready, dur));
    }
    syncs.sort_by(|a, b| a.0.total_cmp(&b.0));
    let mut nic_free = 0.0f64;
    for (ready, dur) in syncs {
        nic_free = nic_free.max(ready) + dur;
    }
    let sync_exposed = (nic_free - compute_makespan_tmp).max(0.0);

    // Optimizer update: parameter read-modify-write, memory-bandwidth bound.
    // ZeRO-Offload instead updates on the host and pays a PCIe round trip of
    // gradients down and fp16 parameters back (ref [34]).
    let mut optimizer_time: f64 = 0.0;
    for stage in &plan.stages {
        // ZeRO shards the update across the ranks replicating this stage.
        let shards = if plan.training.zero.shards_optimizer() || plan.training.offload {
            stage.dp_degree.max(1) as f64
        } else {
            1.0
        };
        for d in &stage.devices {
            let gpu = cluster.gpu(d.gpu)?;
            let local_params = stage.param_bytes as f64;
            let t = if plan.training.offload {
                let grad_bytes = local_params / 4.0
                    * if plan.training.amp { 2.0 } else { 4.0 };
                let back_bytes = local_params / 4.0 * 2.0;
                (grad_bytes + back_bytes) / (shards * cluster.interconnect.pcie_bw)
            } else {
                3.0 * local_params / (shards * gpu.model.memory_bandwidth())
            };
            optimizer_time = optimizer_time.max(t);
        }
    }

    let step_time = compute_makespan + sync_exposed + optimizer_time;

    // Per-GPU sample share, for the occupancy model.
    let mut samples: BTreeMap<usize, usize> = BTreeMap::new();
    for stage in &plan.stages {
        for d in &stage.devices {
            let e = samples.entry(d.gpu).or_insert(0);
            *e = (*e).max(d.samples_per_step);
        }
    }

    // Memory audit.
    let mem = plan.memory_per_gpu();
    let mut oom = Vec::new();
    let mut per_gpu = Vec::new();
    for (&gpu_id, &bytes) in &mem {
        let gpu = cluster.gpu(gpu_id)?;
        if bytes > gpu.memory_bytes() {
            oom.push(gpu_id);
        }
        let b = busy.get(&gpu_id).copied().unwrap_or(0.0);
        let occupancy = if config.occupancy_half_sat > 0.0 {
            let s = samples.get(&gpu_id).copied().unwrap_or(0) as f64;
            s / (s + config.occupancy_half_sat)
        } else {
            1.0
        };
        per_gpu.push(GpuStat {
            gpu: gpu_id,
            model: gpu.model,
            busy: b,
            utilization: if step_time > 0.0 {
                occupancy * b / step_time
            } else {
                0.0
            },
            mem_bytes: bytes,
            mem_capacity: gpu.memory_bytes(),
        });
    }

    let mut timeline: Vec<TaskRecord> = records.into_iter().flatten().collect();
    timeline.sort_by(|a, b| a.start.total_cmp(&b.start));

    Ok(StepOutcome {
        stats: StepStats {
            step_time,
            compute_makespan,
            sync_time_total: sync_total,
            sync_time_exposed: sync_exposed,
            optimizer_time,
            throughput: if step_time > 0.0 {
                plan.global_batch as f64 / step_time
            } else {
                0.0
            },
            per_gpu,
            oom_gpus: oom,
        },
        timeline,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use whale_graph::models;
    use whale_hardware::Cluster;
    use whale_ir::Annotator;
    use whale_planner::{plan, PlannerConfig};

    fn dp_plan(hardware_aware: bool) -> (ExecutionPlan, Cluster) {
        let g = models::resnet50(128).unwrap();
        let ir = Annotator::new(g, 128).replicate_all().unwrap().finish().unwrap();
        let cluster = Cluster::parse("8xV100+8xP100").unwrap();
        let cfg = PlannerConfig {
            hardware_aware,
            ..PlannerConfig::default()
        };
        (plan(&ir, &cluster, &cfg).unwrap(), cluster)
    }

    #[test]
    fn dp_step_produces_sane_stats() {
        let (p, c) = dp_plan(true);
        let out = simulate_step(&p, &c, &SimConfig::default()).unwrap();
        let s = &out.stats;
        assert!(s.step_time > 0.0);
        assert!(s.throughput > 0.0);
        assert_eq!(s.per_gpu.len(), 16);
        assert!(s.per_gpu.iter().all(|g| g.utilization <= 1.0 + 1e-9));
        assert!(!s.has_oom());
    }

    #[test]
    fn hardware_aware_dp_beats_baseline() {
        // The Fig. 17 effect: balancing batches by FLOPS shortens the step.
        let (aware, c) = dp_plan(true);
        let (base, _) = dp_plan(false);
        let cfg = SimConfig::default();
        let t_aware = simulate_step(&aware, &c, &cfg).unwrap().stats.step_time;
        let t_base = simulate_step(&base, &c, &cfg).unwrap().stats.step_time;
        let speedup = t_base / t_aware;
        assert!(
            (1.15..1.75).contains(&speedup),
            "speedup {speedup} outside the paper's 1.2-1.4 neighbourhood"
        );
    }

    #[test]
    fn hardware_aware_raises_v100_utilization() {
        let (aware, c) = dp_plan(true);
        let (base, _) = dp_plan(false);
        let cfg = SimConfig::default();
        let u_aware = simulate_step(&aware, &c, &cfg).unwrap().stats;
        let u_base = simulate_step(&base, &c, &cfg).unwrap().stats;
        let v_aware = u_aware.utilization_by_model()["V100-32GB"];
        let v_base = u_base.utilization_by_model()["V100-32GB"];
        assert!(
            v_aware > v_base * 1.25,
            "V100 utilization should rise ≥1.25×: {v_base} → {v_aware}"
        );
    }

    #[test]
    fn pipeline_bubbles_shrink_with_more_micro_batches() {
        let cluster = Cluster::parse("4xV100").unwrap();
        let mk = |micros: usize| {
            let g = models::bert_base(32, 64).unwrap();
            let ir = Annotator::new(g, 32).auto_pipeline(micros).unwrap().finish().unwrap();
            plan(&ir, &cluster, &PlannerConfig::default()).unwrap()
        };
        let cfg = SimConfig::default();
        let few = simulate_step(&mk(2), &cluster, &cfg).unwrap().stats;
        let many = simulate_step(&mk(16), &cluster, &cfg).unwrap().stats;
        assert!(
            many.bubble_ratio() < few.bubble_ratio(),
            "bubble {:.3} (m=16) vs {:.3} (m=2)",
            many.bubble_ratio(),
            few.bubble_ratio()
        );
    }

    #[test]
    fn backward_first_matches_gpipe_makespan_shape() {
        // Same pipeline: 1F1B and GPipe have similar makespans for equal
        // stage times (1F1B wins on memory, not time), so both should be
        // within a small factor.
        let cluster = Cluster::parse("4xV100").unwrap();
        let g = models::bert_base(32, 64).unwrap();
        let ir = Annotator::new(g, 32).auto_pipeline(8).unwrap().finish().unwrap();
        let p = plan(&ir, &cluster, &PlannerConfig::default()).unwrap();
        let bf = simulate_step(&p, &cluster, &SimConfig::default()).unwrap().stats;
        let gp = simulate_step(
            &p,
            &cluster,
            &SimConfig {
                schedule: ScheduleKind::GPipe,
                ..SimConfig::default()
            },
        )
        .unwrap()
        .stats;
        let ratio = gp.compute_makespan / bf.compute_makespan;
        assert!((0.8..1.3).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn timeline_respects_pipeline_deps() {
        let cluster = Cluster::parse("4xV100").unwrap();
        let g = models::bert_base(16, 64).unwrap();
        let ir = Annotator::new(g, 16).auto_pipeline(4).unwrap().finish().unwrap();
        let p = plan(&ir, &cluster, &PlannerConfig::default()).unwrap();
        let out = simulate_step(&p, &cluster, &SimConfig::default()).unwrap();
        let find = |k: TaskKind| {
            out.timeline
                .iter()
                .find(|r| r.kind == k)
                .unwrap_or_else(|| panic!("missing {k:?}"))
                .clone()
        };
        // F_{1,0} starts after F_{0,0} ends.
        let f00 = find(TaskKind::Forward { stage: 0, micro: 0 });
        let f10 = find(TaskKind::Forward { stage: 1, micro: 0 });
        assert!(f10.start >= f00.end);
        // B_{0,0} after B_{1,0}.
        let b10 = find(TaskKind::Backward { stage: 1, micro: 0 });
        let b00 = find(TaskKind::Backward { stage: 0, micro: 0 });
        assert!(b00.start >= b10.end);
        assert_eq!(out.timeline.len(), 4 * 2 * 4);
    }

    #[test]
    fn oom_detection_reports_gpus() {
        // BERT-Large replicas at a huge per-GPU batch on 16 GB P100s.
        let g = models::bert_large(512, 128).unwrap();
        let ir = Annotator::new(g, 512).replicate_all().unwrap().finish().unwrap();
        let cluster = Cluster::parse("2xP100").unwrap();
        let cfg = PlannerConfig {
            hardware_aware: false,
            ..PlannerConfig::default()
        };
        let p = plan(&ir, &cluster, &cfg).unwrap();
        let out = simulate_step(&p, &cluster, &SimConfig::default()).unwrap();
        assert!(out.stats.has_oom());
    }
}

#[cfg(test)]
mod async_tests {
    use super::*;
    use whale_graph::models;
    use whale_hardware::Cluster;
    use whale_ir::Annotator;
    use whale_planner::{plan, PlannerConfig};

    #[test]
    fn async_schedule_removes_the_bubble() {
        let cluster = Cluster::parse("1x(4xV100)").unwrap();
        let g = models::bert_base(64, 64).unwrap();
        let ir = Annotator::new(g, 64).auto_pipeline(8).unwrap().finish().unwrap();
        let p = plan(&ir, &cluster, &PlannerConfig::default()).unwrap();
        let sync = simulate_step(&p, &cluster, &SimConfig::default()).unwrap().stats;
        let asynch = simulate_step(
            &p,
            &cluster,
            &SimConfig {
                schedule: ScheduleKind::AsyncNoFlush,
                ..SimConfig::default()
            },
        )
        .unwrap()
        .stats;
        assert!(
            asynch.compute_makespan < sync.compute_makespan,
            "async {} vs sync {}",
            asynch.compute_makespan,
            sync.compute_makespan
        );
        // The async span equals the bottleneck stage's total work — the
        // sync span minus its bubble, approximately.
        let lower_bound = sync.compute_makespan * (1.0 - sync.bubble_ratio()) * 0.8;
        assert!(asynch.compute_makespan > lower_bound);
    }

    #[test]
    fn stale_gradient_efficiency_slows_convergence() {
        use crate::trainer::LossModel;
        let sync = LossModel::for_params(1e9);
        let stale = sync.with_sample_efficiency(0.5);
        assert!(stale.loss_at(1e7) > sync.loss_at(1e7));
        // Efficiency clamps into (0, 1].
        let clamped = sync.with_sample_efficiency(7.0);
        assert_eq!(clamped.sample_efficiency, 1.0);
    }
}
