//! Shared-cluster queueing simulation — the paper's §2.2 motivation.
//!
//! "Requesting large amounts of homogeneous GPUs takes a long queuing time
//! ... it is much easier to get heterogeneous GPUs with mixed GPU types."
//! (§2.2, citing the MLaaS workload study \[41\].) This module reproduces
//! that claim with a synthetic job trace over a mixed cluster: the same FCFS
//! allocator is run twice — once requiring every job's GPUs to share one
//! model (the homogeneous policy users default to) and once accepting any
//! mix (what Whale's hardware-aware training enables) — and large jobs queue
//! dramatically longer under the former.

use crate::rng::SplitMix64;
use whale_hardware::Cluster;

/// One training job in the trace.
#[derive(Debug, Clone, PartialEq)]
pub struct Job {
    /// Arrival time, seconds.
    pub arrival: f64,
    /// GPUs requested.
    pub gpus: usize,
    /// Run time once started, seconds.
    pub duration: f64,
}

/// Allocation policy for a job's GPU set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocPolicy {
    /// All GPUs of a job must share one hardware model.
    HomogeneousOnly,
    /// Any mix of models is acceptable (heterogeneous training).
    AnyMix,
}

/// Per-job outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct JobOutcome {
    /// Seconds spent waiting in the queue.
    pub queue_delay: f64,
    /// Start time.
    pub start: f64,
    /// GPUs requested (copied from the job for reporting).
    pub gpus: usize,
}

/// Aggregate results of a trace replay.
#[derive(Debug, Clone, PartialEq)]
pub struct QueueStats {
    /// Per-job outcomes in arrival order.
    pub outcomes: Vec<JobOutcome>,
}

impl QueueStats {
    /// Mean queueing delay over all jobs.
    pub fn mean_delay(&self) -> f64 {
        if self.outcomes.is_empty() {
            return 0.0;
        }
        self.outcomes.iter().map(|o| o.queue_delay).sum::<f64>() / self.outcomes.len() as f64
    }

    /// Mean queueing delay of jobs requesting at least `min_gpus`.
    pub fn mean_delay_large(&self, min_gpus: usize) -> f64 {
        let large: Vec<&JobOutcome> = self
            .outcomes
            .iter()
            .filter(|o| o.gpus >= min_gpus)
            .collect();
        if large.is_empty() {
            return 0.0;
        }
        large.iter().map(|o| o.queue_delay).sum::<f64>() / large.len() as f64
    }
}

/// Replay `jobs` (sorted by arrival) on `cluster` under `policy` with a
/// strict-FCFS allocator.
///
/// Each job takes the eligible GPUs with the earliest free times; its start
/// is the later of its arrival, the time those GPUs free up, and the
/// previous job's start (FCFS does not reorder).
pub fn replay(cluster: &Cluster, jobs: &[Job], policy: AllocPolicy) -> QueueStats {
    let mut free_at = vec![0.0f64; cluster.num_gpus()];
    let mut outcomes = Vec::with_capacity(jobs.len());
    let mut prev_start = 0.0f64;
    for job in jobs {
        let k = job.gpus.min(cluster.num_gpus()).max(1);
        // Candidate start per eligible GPU subset.
        let (start, chosen) = match policy {
            AllocPolicy::AnyMix => earliest_k(cluster, &free_at, None, k),
            AllocPolicy::HomogeneousOnly => {
                // Best over each model with enough devices.
                let mut best: Option<(f64, Vec<usize>)> = None;
                let census = cluster.model_census();
                for (model, count) in census {
                    if count < k {
                        continue;
                    }
                    let cand = earliest_k(cluster, &free_at, Some(&model), k);
                    if best.as_ref().map(|(t, _)| cand.0 < *t).unwrap_or(true) {
                        best = Some(cand);
                    }
                }
                // No single model has enough GPUs: the job can never run
                // homogeneously; charge it the full-horizon penalty of
                // waiting for the (impossible) allocation by falling back to
                // the mixed assignment at a late epoch.
                best.unwrap_or_else(|| {
                    let (t, c) = earliest_k(cluster, &free_at, None, k);
                    (t + 1e6, c)
                })
            }
        };
        let start = start.max(job.arrival).max(prev_start);
        prev_start = start;
        for &g in &chosen {
            free_at[g] = start + job.duration;
        }
        outcomes.push(JobOutcome {
            queue_delay: start - job.arrival,
            start,
            gpus: job.gpus,
        });
    }
    QueueStats { outcomes }
}

/// The `k` eligible GPUs with earliest free times; returns (start, ids).
fn earliest_k(
    cluster: &Cluster,
    free_at: &[f64],
    model: Option<&str>,
    k: usize,
) -> (f64, Vec<usize>) {
    let mut eligible: Vec<(f64, usize)> = cluster
        .gpus()
        .iter()
        .filter(|g| model.map(|m| g.model.to_string() == m).unwrap_or(true))
        .map(|g| (free_at[g.id], g.id))
        .collect();
    eligible.sort_by(|a, b| a.0.total_cmp(&b.0));
    let chosen: Vec<usize> = eligible.iter().take(k).map(|&(_, id)| id).collect();
    let start = eligible
        .get(k.saturating_sub(1))
        .map(|&(t, _)| t)
        .unwrap_or(f64::INFINITY);
    (start, chosen)
}

/// Generate a seeded synthetic trace: exponential-ish interarrivals, mixed
/// job sizes skewed small (like the MLaaS study), durations 10–120 minutes.
pub fn synthetic_trace(num_jobs: usize, seed: u64) -> Vec<Job> {
    let mut rng = SplitMix64::seed_from_u64(seed);
    // Sizes skew small and cap at 8 so every job *can* run on one model of
    // the reference 8+8 cluster — the comparison is congestion, not
    // impossibility.
    let sizes = [1usize, 1, 1, 2, 2, 2, 4, 4, 8];
    let mut t = 0.0;
    (0..num_jobs)
        .map(|_| {
            t += rng.range_f64(60.0, 900.0);
            Job {
                arrival: t,
                gpus: sizes[rng.index(sizes.len())],
                duration: rng.range_f64(600.0, 3600.0),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_cluster_of_one_model_serves_immediately() {
        let c = Cluster::parse("1x(8xV100)").unwrap();
        let jobs = vec![Job {
            arrival: 10.0,
            gpus: 4,
            duration: 100.0,
        }];
        for policy in [AllocPolicy::HomogeneousOnly, AllocPolicy::AnyMix] {
            let stats = replay(&c, &jobs, policy);
            assert_eq!(stats.outcomes[0].queue_delay, 0.0, "{policy:?}");
        }
    }

    #[test]
    fn fcfs_serializes_contending_jobs() {
        let c = Cluster::parse("1x(4xV100)").unwrap();
        let jobs = vec![
            Job {
                arrival: 0.0,
                gpus: 4,
                duration: 100.0,
            },
            Job {
                arrival: 1.0,
                gpus: 4,
                duration: 100.0,
            },
        ];
        let stats = replay(&c, &jobs, AllocPolicy::AnyMix);
        assert_eq!(stats.outcomes[0].start, 0.0);
        assert_eq!(stats.outcomes[1].start, 100.0);
        assert!((stats.outcomes[1].queue_delay - 99.0).abs() < 1e-9);
    }

    #[test]
    fn large_jobs_queue_longer_homogeneously_on_mixed_clusters() {
        // §2.2's claim: on a fragmented 8+8 mixed cluster, a 12-GPU job can
        // start immediately if it accepts the mix, but can never run on one
        // model.
        let c = Cluster::parse("1x(8xV100)+1x(8xP100)").unwrap();
        let jobs = vec![Job {
            arrival: 0.0,
            gpus: 12,
            duration: 100.0,
        }];
        let any = replay(&c, &jobs, AllocPolicy::AnyMix);
        let homo = replay(&c, &jobs, AllocPolicy::HomogeneousOnly);
        assert_eq!(any.outcomes[0].queue_delay, 0.0);
        assert!(
            homo.outcomes[0].queue_delay > 1e5,
            "impossible homogeneously"
        );
    }

    #[test]
    fn synthetic_trace_is_seeded_and_sorted() {
        let a = synthetic_trace(50, 9);
        let b = synthetic_trace(50, 9);
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[1].arrival >= w[0].arrival));
        assert!(a.iter().all(|j| j.gpus >= 1 && j.duration > 0.0));
    }

    #[test]
    fn mixed_policy_dominates_on_synthetic_traces() {
        let c = Cluster::parse("1x(8xV100)+1x(8xP100)").unwrap();
        let jobs = synthetic_trace(300, 4);
        let any = replay(&c, &jobs, AllocPolicy::AnyMix);
        let homo = replay(&c, &jobs, AllocPolicy::HomogeneousOnly);
        assert!(
            homo.mean_delay_large(8) > any.mean_delay_large(8) * 1.5,
            "homo {} vs any {}",
            homo.mean_delay_large(8),
            any.mean_delay_large(8)
        );
        // Small jobs are barely affected.
        assert!(homo.mean_delay() >= any.mean_delay());
    }
}
