//! Consistency checks for replanned execution plans.
//!
//! `whale_planner::replan` re-runs only the compile passes a
//! [`whale_hardware::ClusterDelta`] invalidates, so a replanned plan reuses
//! artifacts computed for the *pre*-delta cluster. [`check_replan`] verifies
//! that the shortcut preserved the training semantics — same global batch,
//! same micro-batching, same stage structure, every referenced GPU present
//! on the post-delta cluster — and then simulates one step on the new
//! topology to prove the plan still executes.
//!
//! The check is diagnostic (tests, the CLI `replan` demo), not part of the
//! planning hot path: every violation is reported as a human-readable issue
//! rather than an error, so callers can print all of them at once.

use whale_hardware::Cluster;
use whale_planner::ExecutionPlan;

use crate::engine::{simulate_step, SimConfig, StepOutcome};

/// Outcome of [`check_replan`]: accumulated issues plus, when the plan is
/// structurally sound, the simulated step on the post-delta cluster.
#[derive(Debug)]
pub struct ReplanReport {
    /// Human-readable consistency violations (empty = consistent).
    pub issues: Vec<String>,
    /// Non-fatal observations (e.g. the plan exceeds device memory — a
    /// property of the workload, not of the replan shortcut; the simulator
    /// reports the same set in `StepStats::oom_gpus`).
    pub warnings: Vec<String>,
    /// One simulated step of the replanned plan on the new cluster.
    /// `None` when the plan failed validation or simulation.
    pub outcome: Option<StepOutcome>,
}

impl ReplanReport {
    /// True when the replanned plan passed every check and simulated.
    /// Warnings do not count against consistency.
    pub fn is_consistent(&self) -> bool {
        self.issues.is_empty() && self.outcome.is_some()
    }
}

impl std::fmt::Display for ReplanReport {
    /// One line per finding: `issue: …` / `warning: …`, or a single `OK`
    /// line (with the simulated throughput) for a clean report. The CLI and
    /// tests print this instead of formatting `issues` by hand.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut lines: Vec<String> = self
            .issues
            .iter()
            .map(|i| format!("issue: {i}"))
            .chain(self.warnings.iter().map(|w| format!("warning: {w}")))
            .collect();
        if let (Some(out), true) = (&self.outcome, self.issues.is_empty()) {
            lines.push(format!(
                "OK ({:.1} samples/s after replan)",
                out.stats.throughput
            ));
        }
        write!(f, "{}", lines.join("\n"))
    }
}

/// Verify that `new` (a replanned plan) is semantically consistent with
/// `old` (the pre-delta plan) and executable on `cluster` (the post-delta
/// topology). Never fails: every problem becomes an entry in
/// [`ReplanReport::issues`].
pub fn check_replan(
    old: &ExecutionPlan,
    new: &ExecutionPlan,
    cluster: &Cluster,
    sim: &SimConfig,
) -> ReplanReport {
    let mut issues = Vec::new();
    let mut warnings = Vec::new();

    if new.name != old.name {
        issues.push(format!(
            "replan changed the model: '{}' -> '{}'",
            old.name, new.name
        ));
    }
    if new.global_batch != old.global_batch {
        issues.push(format!(
            "replan changed the global batch: {} -> {}",
            old.global_batch, new.global_batch
        ));
    }
    if new.num_micro_batches != old.num_micro_batches {
        issues.push(format!(
            "replan changed micro-batching: {} -> {} micro batches",
            old.num_micro_batches, new.num_micro_batches
        ));
    }
    if new.stages.len() != old.stages.len() {
        issues.push(format!(
            "replan changed the stage count: {} -> {}",
            old.stages.len(),
            new.stages.len()
        ));
    } else {
        // Rebalancing may move samples between a stage's replicas but must
        // conserve the stage's total (the batch is fixed by the IR).
        for (o, n) in old.stages.iter().zip(new.stages.iter()) {
            let old_sum: usize = o.devices.iter().map(|d| d.samples_per_step).sum();
            let new_sum: usize = n.devices.iter().map(|d| d.samples_per_step).sum();
            if old_sum != new_sum {
                issues.push(format!(
                    "stage {} lost samples in the replan: {} -> {} per step",
                    o.index, old_sum, new_sum
                ));
            }
        }
    }

    if let Err(e) = new.validate(cluster) {
        issues.push(format!("replanned plan is invalid on the new cluster: {e}"));
        return ReplanReport {
            issues,
            warnings,
            outcome: None,
        };
    }
    match new.memory_feasible(cluster) {
        Ok(false) => {
            warnings.push("plan exceeds device memory on the new cluster".to_string());
        }
        Err(e) => issues.push(format!("memory audit failed: {e}")),
        Ok(true) => {}
    }

    match simulate_step(new, cluster, sim) {
        Ok(outcome) => ReplanReport {
            issues,
            warnings,
            outcome: Some(outcome),
        },
        Err(e) => {
            issues.push(format!("replanned plan failed to simulate: {e}"));
            ReplanReport {
                issues,
                warnings,
                outcome: None,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use whale_graph::models;
    use whale_hardware::ClusterDelta;
    use whale_ir::Annotator;
    use whale_planner::{plan, PlanCache, PlannerConfig};

    fn dp_ir(batch: usize) -> whale_ir::WhaleIr {
        let g = models::resnet50(batch).unwrap();
        Annotator::new(g, batch)
            .replicate_all()
            .unwrap()
            .finish()
            .unwrap()
    }

    #[test]
    fn degradation_replan_is_consistent() {
        let ir = dp_ir(64);
        let cluster = Cluster::parse("4xV100").unwrap();
        let config = PlannerConfig::default();
        let old = plan(&ir, &cluster, &config).unwrap();

        let mut cache = PlanCache::default();
        let (new, after) = cache
            .replan(
                &ir,
                &cluster,
                &config,
                ClusterDelta::GpuDegraded { id: 0, scale: 0.5 },
            )
            .unwrap();

        let report = check_replan(&old, &new, &after, &SimConfig::default());
        assert!(report.is_consistent(), "issues: {:?}", report.issues);
        assert!(report.outcome.unwrap().stats.throughput > 0.0);
    }

    #[test]
    fn structural_replan_is_consistent_on_new_topology() {
        let ir = dp_ir(64);
        let cluster = Cluster::parse("4xV100").unwrap();
        let config = PlannerConfig::default();
        let old = plan(&ir, &cluster, &config).unwrap();

        let mut cache = PlanCache::default();
        let (new, after) = cache
            .replan(&ir, &cluster, &config, ClusterDelta::GpuRemoved { id: 3 })
            .unwrap();

        let report = check_replan(&old, &new, &after, &SimConfig::default());
        assert!(report.is_consistent(), "issues: {:?}", report.issues);
        assert_eq!(report.outcome.unwrap().stats.per_gpu.len(), 3);
    }

    #[test]
    fn tampered_plan_is_flagged() {
        let ir = dp_ir(64);
        let cluster = Cluster::parse("4xV100").unwrap();
        let config = PlannerConfig::default();
        let old = plan(&ir, &cluster, &config).unwrap();

        // Batch mismatch + sample loss.
        let mut shrunk = old.clone();
        shrunk.global_batch = 32;
        std::sync::Arc::make_mut(&mut shrunk.stages)[0].devices[0].samples_per_step = 0;
        let report = check_replan(&old, &shrunk, &cluster, &SimConfig::default());
        assert!(!report.is_consistent());
        assert!(report.issues.iter().any(|i| i.contains("global batch")));
        assert!(report.issues.iter().any(|i| i.contains("lost samples")));

        // References a GPU missing from the post-delta cluster.
        let smaller = Cluster::parse("2xV100").unwrap();
        let report = check_replan(&old, &old, &smaller, &SimConfig::default());
        assert!(!report.is_consistent());
        assert!(report.outcome.is_none());
        assert!(report.issues.iter().any(|i| i.contains("invalid")));
    }

    #[test]
    fn report_display_covers_issues_warnings_and_ok() {
        let ir = dp_ir(64);
        let cluster = Cluster::parse("4xV100").unwrap();
        let config = PlannerConfig::default();
        let old = plan(&ir, &cluster, &config).unwrap();

        let clean = check_replan(&old, &old, &cluster, &SimConfig::default());
        assert!(clean.to_string().starts_with("OK ("), "{clean}");

        let mut shrunk = old.clone();
        shrunk.global_batch = 32;
        let report = check_replan(&old, &shrunk, &cluster, &SimConfig::default());
        let text = report.to_string();
        assert!(
            text.contains("issue: replan changed the global batch"),
            "{text}"
        );
        assert!(!text.contains("OK ("), "{text}");

        let synthetic = ReplanReport {
            issues: vec![],
            warnings: vec!["plan exceeds device memory".into()],
            outcome: None,
        };
        assert_eq!(synthetic.to_string(), "warning: plan exceeds device memory");
    }
}
