//! Error type for hardware-model operations.

use std::fmt;

/// Errors produced while building or querying hardware models.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HardwareError {
    /// A cluster-spec string could not be parsed.
    ParseError(String),
    /// A device id referenced a GPU that does not exist in the cluster.
    UnknownDevice(usize),
    /// A virtual device was built over an empty GPU set.
    EmptyVirtualDevice,
    /// A virtual-device partition did not cover the cluster exactly.
    InvalidPartition(String),
    /// A communication group was invalid (e.g., fewer than one rank).
    InvalidGroup(String),
}

impl fmt::Display for HardwareError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::ParseError(s) => write!(f, "cluster spec parse error: {s}"),
            Self::UnknownDevice(id) => write!(f, "unknown device id {id}"),
            Self::EmptyVirtualDevice => write!(f, "virtual device must contain at least one GPU"),
            Self::InvalidPartition(s) => write!(f, "invalid virtual-device partition: {s}"),
            Self::InvalidGroup(s) => write!(f, "invalid communication group: {s}"),
        }
    }
}

impl std::error::Error for HardwareError {}

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, HardwareError>;
