//! Virtual devices: the resource abstraction assigned to TaskGraphs (§3.2).
//!
//! A [`VirtualDevice`] is an ordered set of physical GPU ids. The paper's
//! `cluster()` primitive slices the physical cluster into virtual devices and
//! assigns the *i*-th virtual device to the *i*-th TaskGraph; the number of
//! GPUs in the virtual device then determines the parallelism degree of that
//! TaskGraph's strategy (§3.4).

use crate::cluster::Cluster;
use crate::error::{HardwareError, Result};

/// An ordered, non-empty set of physical GPUs assigned to one TaskGraph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VirtualDevice {
    gpu_ids: Vec<usize>,
}

impl VirtualDevice {
    /// Build from an explicit GPU-id list.
    ///
    /// Fails with [`HardwareError::EmptyVirtualDevice`] on an empty list.
    pub fn new(gpu_ids: Vec<usize>) -> Result<VirtualDevice> {
        if gpu_ids.is_empty() {
            return Err(HardwareError::EmptyVirtualDevice);
        }
        Ok(VirtualDevice { gpu_ids })
    }

    /// GPU ids in this virtual device.
    pub fn gpu_ids(&self) -> &[usize] {
        &self.gpu_ids
    }

    /// Number of physical GPUs — the parallelism degree it implies.
    pub fn num_gpus(&self) -> usize {
        self.gpu_ids.len()
    }

    /// Sum of peak FLOPS of member GPUs.
    pub fn total_flops(&self, cluster: &Cluster) -> Result<f64> {
        let mut total = 0.0;
        for &id in &self.gpu_ids {
            total += cluster.gpu(id)?.flops();
        }
        Ok(total)
    }

    /// Minimum member-GPU memory, bytes — the binding constraint for
    /// replicated layouts.
    pub fn min_memory_bytes(&self, cluster: &Cluster) -> Result<u64> {
        let mut min = u64::MAX;
        for &id in &self.gpu_ids {
            min = min.min(cluster.gpu(id)?.memory_bytes());
        }
        Ok(min)
    }

    /// Whether the device contains GPU `id`.
    pub fn contains(&self, id: usize) -> bool {
        self.gpu_ids.contains(&id)
    }

    /// Rewrite member ids after the cluster removed GPU `removed` and
    /// renumbered to keep ids dense (ids above `removed` shift down by
    /// one). Returns `None` when the device contained only the removed GPU
    /// — the binding is gone and its owner must reacquire capacity.
    ///
    /// Mirrors [`ClusterDelta::GpuRemoved`](crate::delta::ClusterDelta::GpuRemoved)
    /// renumbering exactly, so a binding stays valid across any legal
    /// removal sequence (see `tests/virtual_churn.rs`).
    pub fn remap_removed(&self, removed: usize) -> Option<VirtualDevice> {
        let gpu_ids: Vec<usize> = self
            .gpu_ids
            .iter()
            .filter(|&&id| id != removed)
            .map(|&id| if id > removed { id - 1 } else { id })
            .collect();
        if gpu_ids.is_empty() {
            None
        } else {
            Some(VirtualDevice { gpu_ids })
        }
    }

    /// Rewrite member ids after the cluster inserted a GPU at global id
    /// `inserted` (existing ids at or above it shift up by one; the new GPU
    /// is not a member). `inserted` comes from
    /// [`Cluster::insertion_id`] evaluated *before* the
    /// [`ClusterDelta::GpuAdded`](crate::delta::ClusterDelta::GpuAdded)
    /// delta applies.
    pub fn remap_inserted(&self, inserted: usize) -> VirtualDevice {
        VirtualDevice {
            gpu_ids: self
                .gpu_ids
                .iter()
                .map(|&id| if id >= inserted { id + 1 } else { id })
                .collect(),
        }
    }

    /// Whether all member GPUs share one node.
    pub fn is_single_node(&self, cluster: &Cluster) -> Result<bool> {
        let mut nodes = self
            .gpu_ids
            .iter()
            .map(|&id| cluster.gpu(id).map(|g| g.node));
        let first = match nodes.next() {
            Some(n) => n?,
            None => return Ok(true),
        };
        for n in nodes {
            if n? != first {
                return Ok(false);
            }
        }
        Ok(true)
    }
}

/// Strategies for slicing a cluster into virtual devices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SliceStrategy {
    /// Equal-sized contiguous chunks in global-id order.
    EvenContiguous,
    /// One virtual device per node.
    PerNode,
    /// One virtual device per GPU.
    PerGpu,
}

/// Slice `cluster` into `parts` virtual devices using `strategy`.
///
/// `parts` is ignored for [`SliceStrategy::PerNode`] / [`SliceStrategy::PerGpu`].
///
/// # Examples
///
/// ```
/// use whale_hardware::{Cluster, GpuModel, slice_cluster, SliceStrategy};
/// let c = Cluster::homogeneous(GpuModel::V100_32GB, 2, 8);
/// let vds = slice_cluster(&c, 4, SliceStrategy::EvenContiguous).unwrap();
/// assert_eq!(vds.len(), 4);
/// assert!(vds.iter().all(|vd| vd.num_gpus() == 4));
/// ```
pub fn slice_cluster(
    cluster: &Cluster,
    parts: usize,
    strategy: SliceStrategy,
) -> Result<Vec<VirtualDevice>> {
    match strategy {
        SliceStrategy::EvenContiguous => {
            let n = cluster.num_gpus();
            if parts == 0 || !n.is_multiple_of(parts) {
                return Err(HardwareError::InvalidPartition(format!(
                    "{n} GPUs cannot be evenly sliced into {parts} virtual devices"
                )));
            }
            let chunk = n / parts;
            (0..parts)
                .map(|i| VirtualDevice::new((i * chunk..(i + 1) * chunk).collect()))
                .collect()
        }
        SliceStrategy::PerNode => cluster
            .nodes()
            .iter()
            .map(|node| VirtualDevice::new(node.gpu_ids.clone()))
            .collect(),
        SliceStrategy::PerGpu => (0..cluster.num_gpus())
            .map(|i| VirtualDevice::new(vec![i]))
            .collect(),
    }
}

/// Validate that `vds` form an exact partition of `cluster` (every GPU in
/// exactly one virtual device).
pub fn validate_partition(cluster: &Cluster, vds: &[VirtualDevice]) -> Result<()> {
    let mut seen = vec![false; cluster.num_gpus()];
    for vd in vds {
        for &id in vd.gpu_ids() {
            if id >= seen.len() {
                return Err(HardwareError::UnknownDevice(id));
            }
            if seen[id] {
                return Err(HardwareError::InvalidPartition(format!(
                    "GPU {id} appears in more than one virtual device"
                )));
            }
            seen[id] = true;
        }
    }
    if let Some(missing) = seen.iter().position(|&s| !s) {
        return Err(HardwareError::InvalidPartition(format!(
            "GPU {missing} is not covered by any virtual device"
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gpu::GpuModel;

    #[test]
    fn empty_vd_rejected() {
        assert_eq!(
            VirtualDevice::new(vec![]).unwrap_err(),
            HardwareError::EmptyVirtualDevice
        );
    }

    #[test]
    fn slice_per_node_matches_fig6() {
        // Fig. 6(b): four nodes of four GPUs → four virtual devices.
        let c = Cluster::homogeneous(GpuModel::V100_32GB, 4, 4);
        let vds = slice_cluster(&c, 0, SliceStrategy::PerNode).unwrap();
        assert_eq!(vds.len(), 4);
        validate_partition(&c, &vds).unwrap();
    }

    #[test]
    fn uneven_slice_rejected() {
        let c = Cluster::homogeneous(GpuModel::V100_32GB, 1, 8);
        assert!(slice_cluster(&c, 3, SliceStrategy::EvenContiguous).is_err());
        assert!(slice_cluster(&c, 0, SliceStrategy::EvenContiguous).is_err());
    }

    #[test]
    fn validate_detects_overlap_and_gap() {
        let c = Cluster::homogeneous(GpuModel::V100_32GB, 1, 4);
        let overlap = vec![
            VirtualDevice::new(vec![0, 1]).unwrap(),
            VirtualDevice::new(vec![1, 2, 3]).unwrap(),
        ];
        assert!(validate_partition(&c, &overlap).is_err());
        let gap = vec![VirtualDevice::new(vec![0, 1, 2]).unwrap()];
        assert!(validate_partition(&c, &gap).is_err());
    }

    #[test]
    fn flops_and_memory_aggregates() {
        let c = Cluster::parse("1xV100,1xP100").unwrap();
        let vd = VirtualDevice::new(vec![0, 1]).unwrap();
        let f = vd.total_flops(&c).unwrap();
        assert!((f - (GpuModel::V100_32GB.flops() + GpuModel::P100_16GB.flops())).abs() < 1.0);
        assert_eq!(
            vd.min_memory_bytes(&c).unwrap(),
            GpuModel::P100_16GB.memory_bytes()
        );
        assert!(vd.is_single_node(&c).unwrap());
    }

    #[test]
    fn multi_node_detection() {
        let c = Cluster::parse("1x(2xV100)+1x(2xV100)").unwrap();
        let vd = VirtualDevice::new(vec![0, 2]).unwrap();
        assert!(!vd.is_single_node(&c).unwrap());
    }

    #[test]
    fn remap_removed_shifts_drops_and_empties() {
        let vd = VirtualDevice::new(vec![1, 3, 5]).unwrap();
        // A non-member below shifts members above it down.
        assert_eq!(vd.remap_removed(2).unwrap().gpu_ids(), &[1, 2, 4]);
        // A member is dropped and the rest shift.
        assert_eq!(vd.remap_removed(3).unwrap().gpu_ids(), &[1, 4]);
        // A non-member above leaves everything alone.
        assert_eq!(vd.remap_removed(7).unwrap().gpu_ids(), &[1, 3, 5]);
        // Losing the only member dissolves the binding.
        let solo = VirtualDevice::new(vec![4]).unwrap();
        assert!(solo.remap_removed(4).is_none());
    }

    #[test]
    fn remap_inserted_shifts_at_and_above() {
        let vd = VirtualDevice::new(vec![1, 3, 5]).unwrap();
        assert_eq!(vd.remap_inserted(3).gpu_ids(), &[1, 4, 6]);
        assert_eq!(vd.remap_inserted(0).gpu_ids(), &[2, 4, 6]);
        assert_eq!(vd.remap_inserted(6).gpu_ids(), &[1, 3, 5]);
        assert!(vd.contains(3) && !vd.contains(2));
    }
}
