//! Hardware substrate for the Whale reproduction.
//!
//! The original system runs on real clusters of mixed NVIDIA GPUs; this crate
//! replaces that hardware with an analytic model carrying exactly the
//! quantities Whale's algorithms consume:
//!
//! * a **GPU catalog** with published peak-FLOPS and memory specs
//!   ([`GpuModel`], [`Gpu`]);
//! * a **cluster topology** of nodes and devices ([`Cluster`], parseable from
//!   compact spec strings such as `"2x(8xV100)+2x(8xP100)"`);
//! * **virtual devices** — the TaskGraph resource abstraction of §3.2
//!   ([`VirtualDevice`], [`slice_cluster`]);
//! * **collective cost models** — ring and hierarchical AllReduce, AllGather,
//!   ReduceScatter, Broadcast, AllToAll ([`CommModel`]).
//!
//! # Examples
//!
//! ```
//! use whale_hardware::{Cluster, CommModel};
//!
//! // Fig. 17's testbed: 8 V100-32GB plus 8 P100-16GB.
//! let cluster = Cluster::parse("8xV100+8xP100").unwrap();
//! assert!(cluster.is_heterogeneous());
//!
//! let comm = CommModel::new(&cluster);
//! let group: Vec<usize> = (0..16).collect();
//! let sync = comm.best_allreduce(&group, 100 << 20).unwrap();
//! assert!(sync > 0.0);
//! ```

pub mod cluster;
pub mod comm;
pub mod delta;
pub mod error;
pub mod fingerprint;
pub mod gpu;
pub mod interconnect;
pub mod virtual_device;

pub use cluster::{Cluster, ClusterBuilder, Node};
pub use comm::{quantize_dequantize_cost, AllReduceAlgo, AllReduceSelector, Collective, CommModel};
pub use delta::ClusterDelta;
pub use error::{HardwareError, Result};
pub use gpu::{Gpu, GpuModel, GIB, TFLOPS};
pub use interconnect::{Interconnect, LinkKind};
pub use virtual_device::{slice_cluster, validate_partition, SliceStrategy, VirtualDevice};
