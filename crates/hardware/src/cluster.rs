//! Physical cluster model: nodes of GPUs plus the connecting fabric.
//!
//! §5 of the paper describes nodes with 2/4/8 GPUs of mixed V100-32GB and
//! P100-16GB types. A [`Cluster`] is a flat list of [`Gpu`]s grouped into
//! nodes, and can be built programmatically ([`ClusterBuilder`]) or parsed
//! from a compact spec string ([`Cluster::parse`]).

use crate::error::{HardwareError, Result};
use crate::gpu::{Gpu, GpuModel};
use crate::interconnect::Interconnect;
use std::collections::BTreeMap;

/// One machine hosting several GPUs.
#[derive(Debug, Clone, PartialEq)]
pub struct Node {
    /// Node index within the cluster.
    pub index: usize,
    /// Global GPU ids hosted on this node, in local-rank order.
    pub gpu_ids: Vec<usize>,
}

/// A physical GPU cluster.
#[derive(Debug, Clone, PartialEq)]
pub struct Cluster {
    gpus: Vec<Gpu>,
    nodes: Vec<Node>,
    /// Fabric description used by communication cost models.
    pub interconnect: Interconnect,
}

impl Cluster {
    /// Build a homogeneous cluster of `num_nodes` nodes, each hosting
    /// `gpus_per_node` GPUs of the same `model`.
    ///
    /// # Examples
    ///
    /// ```
    /// use whale_hardware::{Cluster, GpuModel};
    /// let c = Cluster::homogeneous(GpuModel::V100_32GB, 4, 8);
    /// assert_eq!(c.num_gpus(), 32);
    /// assert_eq!(c.num_nodes(), 4);
    /// ```
    pub fn homogeneous(model: GpuModel, num_nodes: usize, gpus_per_node: usize) -> Cluster {
        let mut b = ClusterBuilder::new();
        for _ in 0..num_nodes {
            b = b.add_node(vec![model; gpus_per_node]);
        }
        b.build()
    }

    /// Parse a compact cluster-spec string.
    ///
    /// Grammar: `spec := group ('+' group)*`, `group := [count 'x' '('] node
    /// [')']` where `node := count 'x' model`. Examples:
    ///
    /// * `"8xV100"` — one node with eight V100-32GB.
    /// * `"2x(8xV100)+2x(8xP100)"` — two 8-V100 nodes plus two 8-P100 nodes.
    /// * `"4xV100+4xP100"` — two nodes: one with four V100, one with four P100.
    ///
    /// # Examples
    ///
    /// ```
    /// use whale_hardware::Cluster;
    /// let c = Cluster::parse("2x(8xV100)+2x(8xP100)").unwrap();
    /// assert_eq!(c.num_gpus(), 32);
    /// assert_eq!(c.num_nodes(), 4);
    /// ```
    pub fn parse(spec: &str) -> Result<Cluster> {
        let mut b = ClusterBuilder::new();
        for group in spec.split('+') {
            let group = group.trim();
            if group.is_empty() {
                return Err(HardwareError::ParseError("empty group".into()));
            }
            // `NxM` where M is `(..)` means repeat the node; otherwise it is a
            // single node of N GPUs of the named model.
            if let Some(paren) = group.find("x(") {
                let count: usize = group[..paren]
                    .trim()
                    .parse()
                    .map_err(|_| HardwareError::ParseError(format!("bad count in '{group}'")))?;
                let inner = group[paren + 2..].strip_suffix(')').ok_or_else(|| {
                    HardwareError::ParseError(format!("missing ')' in '{group}'"))
                })?;
                let models = parse_node(inner)?;
                for _ in 0..count {
                    b = b.add_node(models.clone());
                }
            } else {
                b = b.add_node(parse_node(group)?);
            }
        }
        if b.is_empty() {
            return Err(HardwareError::ParseError("empty spec".into()));
        }
        Ok(b.build())
    }

    /// All GPUs, ordered by global id.
    pub fn gpus(&self) -> &[Gpu] {
        &self.gpus
    }

    /// All nodes.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Number of GPUs in the cluster.
    pub fn num_gpus(&self) -> usize {
        self.gpus.len()
    }

    /// Number of nodes in the cluster.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Look up a GPU by global id.
    pub fn gpu(&self, id: usize) -> Result<&Gpu> {
        self.gpus.get(id).ok_or(HardwareError::UnknownDevice(id))
    }

    /// Sum of peak FLOPS over all GPUs.
    pub fn total_flops(&self) -> f64 {
        self.gpus.iter().map(|g| g.flops()).sum()
    }

    /// Whether the cluster mixes more than one GPU model.
    pub fn is_heterogeneous(&self) -> bool {
        self.gpus.windows(2).any(|w| w[0].model != w[1].model)
    }

    /// Mark GPU `id` as degraded to `scale` of its peak throughput.
    ///
    /// Load balancing then treats it like a proportionally slower device —
    /// the dynamic-heterogeneity case of §2.2 where even a "homogeneous"
    /// allocation misbehaves at runtime.
    pub fn degrade_gpu(&mut self, id: usize, scale: f64) -> Result<()> {
        if !(0.0..=1.0).contains(&scale) || scale == 0.0 {
            return Err(HardwareError::ParseError(format!(
                "degradation scale must be in (0, 1], got {scale}"
            )));
        }
        let n = self.gpus.len();
        let gpu = self
            .gpus
            .get_mut(id)
            .ok_or(HardwareError::UnknownDevice(id.min(n)))?;
        gpu.throughput_scale = scale;
        Ok(())
    }

    /// Count of GPUs per model, ordered by model name.
    pub fn model_census(&self) -> BTreeMap<String, usize> {
        let mut census = BTreeMap::new();
        for g in &self.gpus {
            *census.entry(g.model.to_string()).or_insert(0) += 1;
        }
        census
    }

    /// Extract the sub-cluster spanned by `gpu_ids`: the hosting nodes in
    /// original order (nodes contributing no GPU are dropped) with dense new
    /// global ids, preserving each GPU's model and degradation state plus
    /// the interconnect.
    ///
    /// Because global ids are dense in node order, the renumbering is
    /// order-preserving: the *i*-th smallest selected id becomes new id
    /// *i*. This is how a fleet scheduler carves a job's physical
    /// allocation (a [`VirtualDevice`](crate::virtual_device::VirtualDevice)
    /// over pool ids) into a standalone cluster the planner can compile
    /// against.
    ///
    /// # Examples
    ///
    /// ```
    /// use whale_hardware::Cluster;
    /// let pool = Cluster::parse("2x(4xV100)+1x(4xP100)").unwrap();
    /// let sub = pool.subcluster(&[1, 6, 9]).unwrap();
    /// assert_eq!(sub.num_gpus(), 3);
    /// assert_eq!(sub.num_nodes(), 3);
    /// assert!(sub.is_heterogeneous());
    /// ```
    pub fn subcluster(&self, gpu_ids: &[usize]) -> Result<Cluster> {
        if gpu_ids.is_empty() {
            return Err(HardwareError::EmptyVirtualDevice);
        }
        let mut selected = vec![false; self.gpus.len()];
        for &id in gpu_ids {
            if id >= self.gpus.len() {
                return Err(HardwareError::UnknownDevice(id));
            }
            if selected[id] {
                return Err(HardwareError::InvalidPartition(format!(
                    "GPU {id} selected more than once"
                )));
            }
            selected[id] = true;
        }
        let layout: Vec<Vec<(GpuModel, f64)>> = self
            .nodes
            .iter()
            .map(|n| {
                n.gpu_ids
                    .iter()
                    .filter(|&&g| selected[g])
                    .map(|&g| (self.gpus[g].model, self.gpus[g].throughput_scale))
                    .collect::<Vec<_>>()
            })
            .filter(|node| !node.is_empty())
            .collect();
        let mut b = ClusterBuilder::new().interconnect(self.interconnect.clone());
        for node in &layout {
            b = b.add_node(node.iter().map(|&(m, _)| m).collect());
        }
        let mut sub = b.build();
        for (id, (_, scale)) in layout.into_iter().flatten().enumerate() {
            if scale < 1.0 {
                sub.degrade_gpu(id, scale)?;
            }
        }
        Ok(sub)
    }

    /// The global id a
    /// [`GpuAdded`](crate::delta::ClusterDelta::GpuAdded) delta will assign
    /// to a GPU joining `node`: one past the node's current last GPU, or the
    /// current GPU count when `node == num_nodes()` appends a new node.
    /// Existing ids at or above the returned id shift up by one when the
    /// delta applies — callers holding id sets remap with
    /// [`VirtualDevice::remap_inserted`](crate::virtual_device::VirtualDevice::remap_inserted).
    pub fn insertion_id(&self, node: usize) -> Result<usize> {
        if node > self.nodes.len() {
            return Err(HardwareError::ParseError(format!(
                "cannot add GPU to node {node}: cluster has {} nodes",
                self.nodes.len()
            )));
        }
        if node == self.nodes.len() {
            return Ok(self.gpus.len());
        }
        Ok(self.nodes[node]
            .gpu_ids
            .last()
            .copied()
            .map_or(self.gpus.len(), |last| last + 1))
    }
}

fn parse_node(s: &str) -> Result<Vec<GpuModel>> {
    // `NxMODEL[,NxMODEL...]` — a node may itself mix GPU models.
    let mut models = Vec::new();
    for part in s.split(',') {
        let part = part.trim();
        let (count, name) = match part.split_once('x') {
            Some((c, n)) => (
                c.trim()
                    .parse::<usize>()
                    .map_err(|_| HardwareError::ParseError(format!("bad count in '{part}'")))?,
                n.trim(),
            ),
            None => (1, part),
        };
        let model = GpuModel::parse(name)
            .ok_or_else(|| HardwareError::ParseError(format!("unknown GPU model '{name}'")))?;
        models.extend(std::iter::repeat_n(model, count));
    }
    if models.is_empty() {
        return Err(HardwareError::ParseError(format!("empty node '{s}'")));
    }
    Ok(models)
}

/// Incremental builder for [`Cluster`].
#[derive(Debug, Default)]
pub struct ClusterBuilder {
    nodes: Vec<Vec<GpuModel>>,
    interconnect: Interconnect,
}

impl ClusterBuilder {
    /// Start an empty builder with the default interconnect.
    pub fn new() -> Self {
        Self {
            nodes: Vec::new(),
            interconnect: Interconnect::default(),
        }
    }

    /// Append one node hosting the given GPU models.
    pub fn add_node(mut self, models: Vec<GpuModel>) -> Self {
        self.nodes.push(models);
        self
    }

    /// Override the interconnect description.
    pub fn interconnect(mut self, ic: Interconnect) -> Self {
        self.interconnect = ic;
        self
    }

    /// Whether no nodes have been added yet.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Finalize into a [`Cluster`], assigning dense global GPU ids.
    pub fn build(self) -> Cluster {
        let mut gpus = Vec::new();
        let mut nodes = Vec::new();
        for (node_idx, models) in self.nodes.into_iter().enumerate() {
            let mut gpu_ids = Vec::with_capacity(models.len());
            for (local, model) in models.into_iter().enumerate() {
                let id = gpus.len();
                gpus.push(Gpu {
                    id,
                    node: node_idx,
                    local_rank: local,
                    model,
                    throughput_scale: 1.0,
                });
                gpu_ids.push(id);
            }
            nodes.push(Node {
                index: node_idx,
                gpu_ids,
            });
        }
        Cluster {
            gpus,
            nodes,
            interconnect: self.interconnect,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn homogeneous_builder() {
        let c = Cluster::homogeneous(GpuModel::V100_32GB, 32, 8);
        assert_eq!(c.num_gpus(), 256);
        assert!(!c.is_heterogeneous());
        assert_eq!(c.gpu(255).unwrap().node, 31);
        assert!(c.gpu(256).is_err());
    }

    #[test]
    fn parse_paper_hetero_dp_cluster() {
        // Fig. 17 setup: 8 V100-32GB + 8 P100-16GB.
        let c = Cluster::parse("8xV100+8xP100").unwrap();
        assert_eq!(c.num_gpus(), 16);
        assert_eq!(c.num_nodes(), 2);
        assert!(c.is_heterogeneous());
        let census = c.model_census();
        assert_eq!(census["V100-32GB"], 8);
        assert_eq!(census["P100-16GB"], 8);
    }

    #[test]
    fn parse_repeated_nodes() {
        let c = Cluster::parse("2x(4xV100)+1x(4xP100)").unwrap();
        assert_eq!(c.num_nodes(), 3);
        assert_eq!(c.num_gpus(), 12);
        assert_eq!(c.nodes()[2].gpu_ids.len(), 4);
        assert_eq!(c.gpu(8).unwrap().model, GpuModel::P100_16GB);
    }

    #[test]
    fn parse_mixed_node() {
        let c = Cluster::parse("2xV100,2xP100").unwrap();
        assert_eq!(c.num_nodes(), 1);
        assert_eq!(c.num_gpus(), 4);
        assert!(c.is_heterogeneous());
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Cluster::parse("").is_err());
        assert!(Cluster::parse("8xH900").is_err());
        assert!(Cluster::parse("x(4xV100").is_err());
        assert!(Cluster::parse("axV100").is_err());
    }

    #[test]
    fn global_ids_are_dense_and_consistent() {
        let c = Cluster::parse("2x(8xV100)+2x(8xP100)").unwrap();
        for (i, g) in c.gpus().iter().enumerate() {
            assert_eq!(g.id, i);
            assert!(c.nodes()[g.node].gpu_ids.contains(&i));
        }
    }

    #[test]
    fn total_flops_sums() {
        let c = Cluster::parse("1xV100+1xP100").unwrap();
        let expect = GpuModel::V100_32GB.flops() + GpuModel::P100_16GB.flops();
        assert!((c.total_flops() - expect).abs() < 1.0);
    }

    #[test]
    fn subcluster_preserves_models_scales_and_interconnect() {
        let mut pool = Cluster::parse("2x(4xV100)+1x(4xP100)").unwrap();
        pool.degrade_gpu(6, 0.5).unwrap();
        let sub = pool.subcluster(&[1, 6, 9]).unwrap();
        assert_eq!(sub.num_gpus(), 3);
        assert_eq!(sub.num_nodes(), 3);
        // Order-preserving renumbering: 1 → 0, 6 → 1, 9 → 2.
        assert_eq!(sub.gpu(0).unwrap().model, GpuModel::V100_32GB);
        assert_eq!(sub.gpu(1).unwrap().throughput_scale, 0.5);
        assert_eq!(sub.gpu(2).unwrap().model, GpuModel::P100_16GB);
        assert_eq!(sub.interconnect, pool.interconnect);
        // Ids arrive unsorted; the result depends only on the set.
        assert_eq!(sub, pool.subcluster(&[9, 1, 6]).unwrap());
    }

    #[test]
    fn subcluster_rejects_bad_selections() {
        let pool = Cluster::parse("4xV100").unwrap();
        assert_eq!(
            pool.subcluster(&[]).unwrap_err(),
            HardwareError::EmptyVirtualDevice
        );
        assert_eq!(
            pool.subcluster(&[0, 7]).unwrap_err(),
            HardwareError::UnknownDevice(7)
        );
        assert!(matches!(
            pool.subcluster(&[1, 1]).unwrap_err(),
            HardwareError::InvalidPartition(_)
        ));
    }

    #[test]
    fn insertion_id_matches_gpu_added_semantics() {
        let pool = Cluster::parse("2xV100+2xP100").unwrap();
        // Joining node 0 lands between the nodes; joining node 1 or a fresh
        // node 2 appends at the end.
        assert_eq!(pool.insertion_id(0).unwrap(), 2);
        assert_eq!(pool.insertion_id(1).unwrap(), 4);
        assert_eq!(pool.insertion_id(2).unwrap(), 4);
        assert!(pool.insertion_id(3).is_err());
        // Cross-check against an applied delta: the GPU really appears at
        // the predicted id.
        for node in 0..=pool.num_nodes() {
            let at = pool.insertion_id(node).unwrap();
            let mut c = pool.clone();
            c.apply_delta(crate::delta::ClusterDelta::GpuAdded {
                node,
                model: GpuModel::T4,
            })
            .unwrap();
            assert_eq!(c.gpu(at).unwrap().model, GpuModel::T4, "node {node}");
        }
    }
}

#[cfg(test)]
mod degradation_tests {
    use super::*;

    #[test]
    fn degraded_gpu_reports_scaled_flops() {
        let mut c = Cluster::homogeneous(GpuModel::V100_32GB, 1, 4);
        c.degrade_gpu(2, 0.5).unwrap();
        let full = c.gpu(0).unwrap().flops();
        let half = c.gpu(2).unwrap().flops();
        assert!((half - full / 2.0).abs() < 1.0);
        // Memory is unaffected by throttling.
        assert_eq!(c.gpu(2).unwrap().memory_bytes(), 32 * crate::gpu::GIB);
    }

    #[test]
    fn degrade_validates_inputs() {
        let mut c = Cluster::homogeneous(GpuModel::V100_32GB, 1, 2);
        assert!(c.degrade_gpu(9, 0.5).is_err());
        assert!(c.degrade_gpu(0, 0.0).is_err());
        assert!(c.degrade_gpu(0, 1.5).is_err());
        assert!(c.degrade_gpu(0, 1.0).is_ok());
    }
}
