//! GPU device catalog.
//!
//! The load-balancing algorithms in the paper (§3.5) consume exactly two
//! per-device quantities: peak single-precision FLOPS (`GF`) and device memory.
//! The catalog below records the published specs for the GPU types named in
//! the paper (V100, P100, P40) plus a few extras used in tests and ablations.

use std::fmt;

/// One teraFLOPS, in FLOP per second.
pub const TFLOPS: f64 = 1e12;
/// One gibibyte, in bytes.
pub const GIB: u64 = 1 << 30;

/// Known GPU models with published specifications.
///
/// The FLOPS numbers are peak single-precision (fp32) throughput, matching the
/// paper's cost model `t = α · MF / GF` which is stated in terms of
/// single-precision FLOP.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GpuModel {
    /// NVIDIA Tesla V100 with 32 GB HBM2 (15.7 fp32 TFLOPS).
    V100_32GB,
    /// NVIDIA Tesla V100 with 16 GB HBM2 (15.7 fp32 TFLOPS).
    V100_16GB,
    /// NVIDIA Tesla P100 with 16 GB HBM2 (9.3 fp32 TFLOPS, per §3.5).
    P100_16GB,
    /// NVIDIA Tesla P40 with 24 GB GDDR5 (12 fp32 TFLOPS, per §3.5).
    P40,
    /// NVIDIA Tesla T4 with 16 GB GDDR6 (8.1 fp32 TFLOPS).
    T4,
    /// NVIDIA A100 with 40 GB HBM2e (19.5 fp32 TFLOPS).
    A100_40GB,
    /// NVIDIA A100 with 80 GB HBM2e (19.5 fp32 TFLOPS).
    A100_80GB,
}

impl GpuModel {
    /// All catalog entries, useful for enumeration in tests.
    pub const ALL: [GpuModel; 7] = [
        GpuModel::V100_32GB,
        GpuModel::V100_16GB,
        GpuModel::P100_16GB,
        GpuModel::P40,
        GpuModel::T4,
        GpuModel::A100_40GB,
        GpuModel::A100_80GB,
    ];

    /// Peak single-precision throughput in FLOP per second.
    pub fn flops(self) -> f64 {
        match self {
            GpuModel::V100_32GB | GpuModel::V100_16GB => 15.7 * TFLOPS,
            GpuModel::P100_16GB => 9.3 * TFLOPS,
            GpuModel::P40 => 12.0 * TFLOPS,
            GpuModel::T4 => 8.1 * TFLOPS,
            GpuModel::A100_40GB | GpuModel::A100_80GB => 19.5 * TFLOPS,
        }
    }

    /// Device memory capacity in bytes.
    pub fn memory_bytes(self) -> u64 {
        match self {
            GpuModel::V100_32GB => 32 * GIB,
            GpuModel::V100_16GB => 16 * GIB,
            GpuModel::P100_16GB => 16 * GIB,
            GpuModel::P40 => 24 * GIB,
            GpuModel::T4 => 16 * GIB,
            GpuModel::A100_40GB => 40 * GIB,
            GpuModel::A100_80GB => 80 * GIB,
        }
    }

    /// Device-local memory bandwidth in bytes per second.
    ///
    /// Used by the simulator to bound memory-bandwidth-limited ops (e.g.,
    /// elementwise kernels) that do not reach peak FLOPS.
    pub fn memory_bandwidth(self) -> f64 {
        match self {
            GpuModel::V100_32GB | GpuModel::V100_16GB => 900e9,
            GpuModel::P100_16GB => 732e9,
            GpuModel::P40 => 346e9,
            GpuModel::T4 => 300e9,
            GpuModel::A100_40GB => 1_555e9,
            GpuModel::A100_80GB => 2_039e9,
        }
    }

    /// Throughput multiplier under automatic mixed precision.
    ///
    /// Volta/Ampere tensor cores give fp16 matmul a large practical speedup
    /// (≈2.5× end-to-end is typical); Pascal-class GPUs (P100/P40) have no
    /// tensor cores and gain essentially nothing.
    pub fn amp_speedup(self) -> f64 {
        match self {
            GpuModel::V100_32GB | GpuModel::V100_16GB => 2.5,
            GpuModel::A100_40GB | GpuModel::A100_80GB => 2.8,
            GpuModel::T4 => 2.0,
            GpuModel::P100_16GB | GpuModel::P40 => 1.0,
        }
    }

    /// Whether the model supports NVLink (affects intra-node collectives).
    pub fn has_nvlink(self) -> bool {
        matches!(
            self,
            GpuModel::V100_32GB | GpuModel::V100_16GB | GpuModel::A100_40GB | GpuModel::A100_80GB
        )
    }

    /// Parse a short model name as used in cluster-spec strings.
    ///
    /// Accepted names (case-insensitive): `V100`, `V100_32GB`, `V100_16GB`,
    /// `P100`, `P100_16GB`, `P40`, `T4`, `A100`, `A100_40GB`, `A100_80GB`.
    /// Bare `V100` means the 32 GB variant (the one used throughout §5) and
    /// bare `A100` means the 40 GB variant.
    pub fn parse(name: &str) -> Option<GpuModel> {
        match name.to_ascii_uppercase().as_str() {
            "V100" | "V100_32GB" | "V100M32" => Some(GpuModel::V100_32GB),
            "V100_16GB" | "V100M16" => Some(GpuModel::V100_16GB),
            "P100" | "P100_16GB" => Some(GpuModel::P100_16GB),
            "P40" => Some(GpuModel::P40),
            "T4" => Some(GpuModel::T4),
            "A100" | "A100_40GB" => Some(GpuModel::A100_40GB),
            "A100_80GB" => Some(GpuModel::A100_80GB),
            _ => None,
        }
    }
}

impl fmt::Display for GpuModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            GpuModel::V100_32GB => "V100-32GB",
            GpuModel::V100_16GB => "V100-16GB",
            GpuModel::P100_16GB => "P100-16GB",
            GpuModel::P40 => "P40",
            GpuModel::T4 => "T4",
            GpuModel::A100_40GB => "A100-40GB",
            GpuModel::A100_80GB => "A100-80GB",
        };
        f.write_str(s)
    }
}

/// A physical GPU instance inside a cluster.
///
/// `id` is globally unique within the [`crate::Cluster`]; `node` is the index
/// of the hosting machine; `local_rank` is the GPU's slot within that machine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Gpu {
    /// Global device id, dense in `0..cluster.num_gpus()`.
    pub id: usize,
    /// Index of the hosting node.
    pub node: usize,
    /// Slot index within the hosting node.
    pub local_rank: usize,
    /// Hardware model.
    pub model: GpuModel,
    /// Effective-throughput multiplier in `(0, 1]`; below 1 models dynamic
    /// degradation (thermal throttling, a noisy co-tenant). The paper's
    /// motivation for hardware awareness includes exactly this kind of
    /// runtime variability (§2.2).
    pub throughput_scale: f64,
}

impl Gpu {
    /// Effective single-precision FLOPS of this device (peak × scale).
    pub fn flops(&self) -> f64 {
        self.model.flops() * self.throughput_scale
    }

    /// Memory capacity of this device in bytes.
    pub fn memory_bytes(&self) -> u64 {
        self.model.memory_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_quoted_specs() {
        // §3.5 quotes P100 as 9.3 TFLOPS / (12 GB in the text's example, 16 GB
        // in §5's hardware description — we use the product spec of the
        // P100-16GB since §5 experiments use the 16 GB card) and P40 as
        // 12 TFLOPS / 24 GB.
        assert_eq!(GpuModel::P100_16GB.flops(), 9.3 * TFLOPS);
        assert_eq!(GpuModel::P40.flops(), 12.0 * TFLOPS);
        assert_eq!(GpuModel::P40.memory_bytes(), 24 * GIB);
        assert_eq!(GpuModel::V100_32GB.memory_bytes(), 32 * GIB);
    }

    #[test]
    fn parse_round_trips_common_names() {
        assert_eq!(GpuModel::parse("v100"), Some(GpuModel::V100_32GB));
        assert_eq!(GpuModel::parse("V100M32"), Some(GpuModel::V100_32GB));
        assert_eq!(GpuModel::parse("P100"), Some(GpuModel::P100_16GB));
        assert_eq!(GpuModel::parse("a100_80gb"), Some(GpuModel::A100_80GB));
        assert_eq!(GpuModel::parse("H100"), None);
    }

    #[test]
    fn all_models_have_positive_specs() {
        for m in GpuModel::ALL {
            assert!(m.flops() > 0.0, "{m} flops");
            assert!(m.memory_bytes() > 0, "{m} memory");
            assert!(m.memory_bandwidth() > 0.0, "{m} bandwidth");
        }
    }

    #[test]
    fn v100_is_faster_than_p100() {
        // The premise of §2.2: V100 outruns P100, so DP stalls on P100.
        assert!(GpuModel::V100_32GB.flops() > GpuModel::P100_16GB.flops());
    }

    #[test]
    fn display_names_are_stable() {
        assert_eq!(GpuModel::V100_32GB.to_string(), "V100-32GB");
        assert_eq!(GpuModel::P100_16GB.to_string(), "P100-16GB");
    }
}
