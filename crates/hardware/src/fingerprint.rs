//! Content fingerprints for clusters.
//!
//! The plan cache keys on `(model, cluster, config)`; this module contributes
//! the cluster side. The fingerprint covers everything the planner and cost
//! models read from a [`Cluster`]: every GPU's model, topology position and
//! `throughput_scale` (so a degraded device produces a different key than a
//! healthy one), the node grouping, and all interconnect bandwidths and
//! latencies.

use whale_fp::{Fingerprint, Fingerprinter};

use crate::cluster::Cluster;
use crate::interconnect::Interconnect;

impl Interconnect {
    /// Stable content fingerprint over all bandwidths and latencies.
    pub fn fingerprint(&self) -> Fingerprint {
        let mut fp = Fingerprinter::new("interconnect");
        fp.push_f64(self.nvlink_bw)
            .push_f64(self.pcie_bw)
            .push_f64(self.network_bw)
            .push_f64(self.nvlink_lat)
            .push_f64(self.pcie_lat)
            .push_f64(self.network_lat);
        fp.finish()
    }
}

impl Cluster {
    /// Stable content fingerprint over topology, device specs, degradation
    /// state, and fabric.
    pub fn fingerprint(&self) -> Fingerprint {
        let mut fp = Fingerprinter::new("whale-cluster");
        fp.push_len(self.num_gpus());
        for g in self.gpus() {
            fp.push_usize(g.id)
                .push_usize(g.node)
                .push_usize(g.local_rank)
                .push_str(&g.model.to_string())
                .push_f64(g.throughput_scale);
        }
        fp.push_len(self.num_nodes());
        for n in self.nodes() {
            fp.push_usize(n.index).push_len(n.gpu_ids.len());
            for &id in &n.gpu_ids {
                fp.push_usize(id);
            }
        }
        fp.push_fingerprint(self.interconnect.fingerprint());
        fp.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gpu::GpuModel;

    #[test]
    fn same_spec_parsed_twice_hashes_identically() {
        let a = Cluster::parse("2x(8xV100)+2x(8xP100)").unwrap();
        let b = Cluster::parse("2x(8xV100)+2x(8xP100)").unwrap();
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn builder_and_parse_agree_when_content_matches() {
        let parsed = Cluster::parse("8xV100").unwrap();
        let built = Cluster::homogeneous(GpuModel::V100_32GB, 1, 8);
        assert_eq!(parsed.fingerprint(), built.fingerprint());
    }

    #[test]
    fn model_change_changes_fingerprint() {
        let a = Cluster::parse("8xV100").unwrap();
        let b = Cluster::parse("8xP100").unwrap();
        let c = Cluster::parse("4xV100").unwrap();
        assert_ne!(a.fingerprint(), b.fingerprint(), "gpu model");
        assert_ne!(a.fingerprint(), c.fingerprint(), "gpu count");
    }

    #[test]
    fn degradation_changes_fingerprint() {
        let a = Cluster::parse("8xV100").unwrap();
        let mut b = a.clone();
        b.degrade_gpu(3, 0.5).unwrap();
        assert_ne!(a.fingerprint(), b.fingerprint());
        // Restoring to full throughput restores the original key.
        b.degrade_gpu(3, 1.0).unwrap();
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn interconnect_change_changes_fingerprint() {
        let a = Cluster::parse("8xV100").unwrap();
        let mut b = a.clone();
        b.interconnect = Interconnect::infiniband_100g();
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn topology_matters_not_just_census() {
        // Same 16 GPUs, different node grouping.
        let a = Cluster::parse("2x(8xV100)").unwrap();
        let b = Cluster::parse("4x(4xV100)").unwrap();
        assert_ne!(a.fingerprint(), b.fingerprint());
    }
}
