//! Analytic cost models for collective communication.
//!
//! The paper synchronizes gradients with ring AllReduce (Horovod-style,
//! ref \[35\]) executed hierarchically: a local AllReduce inside each worker
//! node followed by a global AllReduce across workers (§4, "Gradient
//! Aggregation"). This module provides the standard α–β cost models for the
//! collectives Whale inserts: AllReduce, AllGather, ReduceScatter, Broadcast,
//! and AllToAll (used by MoE expert dispatch).
//!
//! All times are in seconds, sizes in bytes. Group members are global GPU ids
//! within a [`Cluster`].

use crate::cluster::Cluster;
use crate::error::{HardwareError, Result};
use crate::interconnect::LinkKind;
use std::collections::BTreeSet;

/// Collective operations the planner can insert.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Collective {
    /// Sum-reduce then replicate: each rank ends with the full reduced tensor.
    AllReduce,
    /// Concatenate per-rank shards: each rank ends with the full tensor.
    AllGather,
    /// Reduce then shard: each rank ends with `1/n` of the reduced tensor.
    ReduceScatter,
    /// One rank sends the full tensor to all others.
    Broadcast,
    /// Every rank exchanges a distinct shard with every other rank.
    AllToAll,
}

/// AllReduce algorithm flavors the runtime can execute (NCCL-style).
///
/// [`CommModel::select_allreduce`] picks one per group, payload, and
/// topology at the latency/bandwidth crossover; the planner's comm-optimizer
/// pass records the choice per fusion bucket so the simulator prices exactly
/// the algorithm the schedule committed to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AllReduceAlgo {
    /// Flat ring: bandwidth-optimal, `2(n−1)` latency hops.
    Ring,
    /// Binary tree: latency-optimal for small payloads.
    Tree,
    /// Two-level ring (Whale §4): local phases on fast links, one leader per
    /// node rings the network.
    Hierarchical,
}

impl AllReduceAlgo {
    /// Stable display name (`"ring"`, `"tree"`, `"hierarchical"`).
    pub fn name(self) -> &'static str {
        match self {
            AllReduceAlgo::Ring => "ring",
            AllReduceAlgo::Tree => "tree",
            AllReduceAlgo::Hierarchical => "hierarchical",
        }
    }
}

/// Communication cost model over a concrete cluster.
///
/// The model picks the *bottleneck link class* of the group (network if the
/// group spans nodes, otherwise NVLink/PCIe) and applies the textbook ring
/// formulas. This first-order treatment is the same one the paper's planner
/// uses to reason about communication (it never simulates packets).
#[derive(Debug, Clone)]
pub struct CommModel<'c> {
    cluster: &'c Cluster,
}

impl<'c> CommModel<'c> {
    /// Build a cost model over `cluster`.
    pub fn new(cluster: &'c Cluster) -> Self {
        Self { cluster }
    }

    /// The slowest link class used by a ring over `group`.
    pub fn bottleneck_link(&self, group: &[usize]) -> Result<LinkKind> {
        if group.len() < 2 {
            return Ok(LinkKind::Local);
        }
        let mut nodes = BTreeSet::new();
        let mut all_nvlink = true;
        for &id in group {
            let g = self.cluster.gpu(id)?;
            nodes.insert(g.node);
            all_nvlink &= g.model.has_nvlink();
        }
        Ok(if nodes.len() > 1 {
            LinkKind::Network
        } else if all_nvlink {
            LinkKind::NvLink
        } else {
            LinkKind::Pcie
        })
    }

    fn ring_params(&self, group: &[usize]) -> Result<(f64, f64)> {
        let kind = self.bottleneck_link(group)?;
        let ic = &self.cluster.interconnect;
        Ok((ic.bandwidth(kind), ic.latency(kind)))
    }

    /// Ring AllReduce over `group` of a `bytes`-sized tensor.
    ///
    /// Cost: `2·(n−1)/n · bytes / bw + 2·(n−1)·lat` — a reduce-scatter pass
    /// followed by an all-gather pass.
    pub fn allreduce(&self, group: &[usize], bytes: u64) -> Result<f64> {
        let n = check_group(group)?;
        if n == 1 {
            return Ok(0.0);
        }
        let (bw, lat) = self.ring_params(group)?;
        let nf = n as f64;
        Ok(2.0 * (nf - 1.0) / nf * bytes as f64 / bw + 2.0 * (nf - 1.0) * lat)
    }

    /// Ring AllGather: each rank contributes `bytes_per_rank`, ends with
    /// `n·bytes_per_rank`.
    pub fn allgather(&self, group: &[usize], bytes_per_rank: u64) -> Result<f64> {
        let n = check_group(group)?;
        if n == 1 {
            return Ok(0.0);
        }
        let (bw, lat) = self.ring_params(group)?;
        let nf = n as f64;
        Ok((nf - 1.0) * bytes_per_rank as f64 / bw + (nf - 1.0) * lat)
    }

    /// Ring ReduceScatter of a `bytes`-sized tensor.
    pub fn reduce_scatter(&self, group: &[usize], bytes: u64) -> Result<f64> {
        let n = check_group(group)?;
        if n == 1 {
            return Ok(0.0);
        }
        let (bw, lat) = self.ring_params(group)?;
        let nf = n as f64;
        Ok((nf - 1.0) / nf * bytes as f64 / bw + (nf - 1.0) * lat)
    }

    /// Pipelined broadcast of a `bytes`-sized tensor from one rank.
    pub fn broadcast(&self, group: &[usize], bytes: u64) -> Result<f64> {
        let n = check_group(group)?;
        if n == 1 {
            return Ok(0.0);
        }
        let (bw, lat) = self.ring_params(group)?;
        Ok(bytes as f64 / bw + (n as f64 - 1.0) * lat)
    }

    /// AllToAll where each rank holds `bytes` total and sends `(n−1)/n` of it.
    ///
    /// MoE expert dispatch (`einsum("GSEC,GSM->EGCM")` in paper Example 8)
    /// lowers to this collective.
    pub fn alltoall(&self, group: &[usize], bytes: u64) -> Result<f64> {
        let n = check_group(group)?;
        if n == 1 {
            return Ok(0.0);
        }
        let (bw, lat) = self.ring_params(group)?;
        let nf = n as f64;
        Ok((nf - 1.0) / nf * bytes as f64 / bw + (nf - 1.0) * lat)
    }

    /// Binary-tree AllReduce: reduce up and broadcast down.
    ///
    /// Cost `2·log2(n)·(lat + bytes/bw)` — latency-optimal for small
    /// tensors where the ring's `2(n−1)` latency hops dominate.
    pub fn tree_allreduce(&self, group: &[usize], bytes: u64) -> Result<f64> {
        let n = check_group(group)?;
        if n == 1 {
            return Ok(0.0);
        }
        let (bw, lat) = self.ring_params(group)?;
        let depth = (n as f64).log2().ceil();
        Ok(2.0 * depth * (lat + bytes as f64 / bw))
    }

    /// Hierarchical AllReduce as implemented by Whale (§4): ReduceScatter +
    /// AllReduce-across-node-leaders + AllGather, with intra-node phases on
    /// the fast local links.
    ///
    /// Falls back to a flat ring when the group sits on a single node.
    pub fn hierarchical_allreduce(&self, group: &[usize], bytes: u64) -> Result<f64> {
        let n = check_group(group)?;
        if n == 1 {
            return Ok(0.0);
        }
        // Group members per node, preserving order.
        let mut per_node: Vec<(usize, Vec<usize>)> = Vec::new();
        for &id in group {
            let node = self.cluster.gpu(id)?.node;
            match per_node.iter_mut().find(|(nd, _)| *nd == node) {
                Some((_, v)) => v.push(id),
                None => per_node.push((node, vec![id])),
            }
        }
        if per_node.len() == 1 {
            return self.allreduce(group, bytes);
        }
        // Phase 1: local reduce-scatter inside each node (slowest node bounds).
        let mut local_rs: f64 = 0.0;
        let mut local_ag: f64 = 0.0;
        for (_, members) in &per_node {
            if members.len() > 1 {
                local_rs = local_rs.max(self.reduce_scatter(members, bytes)?);
                local_ag = local_ag.max(self.allgather(members, bytes / members.len() as u64)?);
            }
        }
        // Phase 2: global ring AllReduce among one leader per node. Each
        // leader carries the locally reduced shard; with symmetric nodes the
        // shard is bytes/local_size, but with asymmetric membership we bound
        // by the largest shard.
        let leaders: Vec<usize> = per_node.iter().map(|(_, m)| m[0]).collect();
        let max_shard = per_node
            .iter()
            .map(|(_, m)| bytes / m.len() as u64)
            .max()
            .unwrap_or(bytes);
        let global = self.allreduce(&leaders, max_shard)?;
        Ok(local_rs + global + local_ag)
    }

    /// AllReduce cost under an explicitly chosen algorithm.
    pub fn allreduce_with(&self, algo: AllReduceAlgo, group: &[usize], bytes: u64) -> Result<f64> {
        match algo {
            AllReduceAlgo::Ring => self.allreduce(group, bytes),
            AllReduceAlgo::Tree => self.tree_allreduce(group, bytes),
            AllReduceAlgo::Hierarchical => self.hierarchical_allreduce(group, bytes),
        }
    }

    /// Latency/bandwidth-crossover algorithm selection: evaluate every
    /// algorithm for this group size, payload, and topology and return the
    /// winner with its cost. Ties break deterministically toward ring, then
    /// hierarchical (the preference order NCCL uses when costs are equal:
    /// the bandwidth-optimal variant wins).
    ///
    /// Zero-byte payloads (compression rounding can empty a fusion bucket)
    /// are skipped rather than priced: the result is `(Ring, 0.0)` — no
    /// degenerate collective, no latency hops for bytes that never move.
    pub fn select_allreduce(&self, group: &[usize], bytes: u64) -> Result<(AllReduceAlgo, f64)> {
        Ok(self.allreduce_selector(group)?.select(bytes))
    }

    /// Precompute an [`AllReduceSelector`] for `group`: the topology walks
    /// (bottleneck links, per-node membership, leader ring) happen once here,
    /// and each subsequent payload costs three multiply-adds. Costs are
    /// bit-identical to [`CommModel::allreduce`] /
    /// [`CommModel::tree_allreduce`] / [`CommModel::hierarchical_allreduce`];
    /// the planner's comm-optimizer and the simulator's bucketed grad-sync
    /// path use this to price every fusion bucket of a group without
    /// re-deriving the topology per bucket.
    pub fn allreduce_selector(&self, group: &[usize]) -> Result<AllReduceSelector> {
        let n = check_group(group)?;
        if n == 1 {
            let membw = self.cluster.gpu(group[0])?.model.memory_bandwidth();
            return Ok(AllReduceSelector {
                n,
                ring_bw: 1.0,
                ring_lat: 0.0,
                tree_depth: 0.0,
                min_membw: membw,
                hier: None,
            });
        }
        let (ring_bw, ring_lat) = self.ring_params(group)?;
        let tree_depth = (n as f64).log2().ceil();
        let mut per_node: Vec<(usize, Vec<usize>)> = Vec::new();
        let mut min_membw = f64::INFINITY;
        for &id in group {
            let g = self.cluster.gpu(id)?;
            min_membw = min_membw.min(g.model.memory_bandwidth());
            let node = g.node;
            match per_node.iter_mut().find(|(nd, _)| *nd == node) {
                Some((_, v)) => v.push(id),
                None => per_node.push((node, vec![id])),
            }
        }
        let hier = if per_node.len() == 1 {
            None
        } else {
            let mut nodes = Vec::with_capacity(per_node.len());
            for (_, members) in &per_node {
                let (bw, lat) = if members.len() > 1 {
                    self.ring_params(members)?
                } else {
                    (1.0, 0.0)
                };
                nodes.push((members.len(), bw, lat));
            }
            let leaders: Vec<usize> = per_node.iter().map(|(_, m)| m[0]).collect();
            let (leader_bw, leader_lat) = self.ring_params(&leaders)?;
            Some(HierTopo {
                nodes,
                leaders_n: leaders.len(),
                leader_bw,
                leader_lat,
            })
        };
        Ok(AllReduceSelector {
            n,
            ring_bw,
            ring_lat,
            tree_depth,
            min_membw,
            hier,
        })
    }

    /// Cost of the cheapest AllReduce algorithm — flat ring, hierarchical
    /// two-level ring, or binary tree — which is what an NCCL-style runtime
    /// selects per tensor size and topology. Exactly
    /// [`CommModel::select_allreduce`]'s cost.
    pub fn best_allreduce(&self, group: &[usize], bytes: u64) -> Result<f64> {
        Ok(self.select_allreduce(group, bytes)?.1)
    }

    /// Dispatch on a [`Collective`] kind.
    pub fn collective(&self, kind: Collective, group: &[usize], bytes: u64) -> Result<f64> {
        match kind {
            Collective::AllReduce => self.best_allreduce(group, bytes),
            Collective::AllGather => self.allgather(group, bytes),
            Collective::ReduceScatter => self.reduce_scatter(group, bytes),
            Collective::Broadcast => self.broadcast(group, bytes),
            Collective::AllToAll => self.alltoall(group, bytes),
        }
    }
}

/// Per-group AllReduce cost evaluator with the topology precomputed — built
/// by [`CommModel::allreduce_selector`]. Evaluating a payload is pure
/// arithmetic over the cached link parameters, so pricing every bucket of a
/// fusion schedule is O(buckets), not O(buckets × group).
#[derive(Debug, Clone)]
pub struct AllReduceSelector {
    n: usize,
    ring_bw: f64,
    ring_lat: f64,
    tree_depth: f64,
    /// Slowest group member's device memory bandwidth — the bound on the
    /// elementwise quantize/dequantize passes mixed-precision collectives
    /// run around the wire transfer.
    min_membw: f64,
    /// `None` when the group sits on one node: hierarchical falls back to
    /// the flat ring there.
    hier: Option<HierTopo>,
}

#[derive(Debug, Clone)]
struct HierTopo {
    /// Per node: member count and the node-local ring `(bw, lat)` (unused
    /// placeholders for single-member nodes, which run no local phase).
    nodes: Vec<(usize, f64, f64)>,
    leaders_n: usize,
    leader_bw: f64,
    leader_lat: f64,
}

impl AllReduceSelector {
    /// Flat-ring cost; bit-identical to [`CommModel::allreduce`].
    pub fn ring(&self, bytes: u64) -> f64 {
        if self.n == 1 {
            return 0.0;
        }
        let nf = self.n as f64;
        2.0 * (nf - 1.0) / nf * bytes as f64 / self.ring_bw + 2.0 * (nf - 1.0) * self.ring_lat
    }

    /// Binary-tree cost; bit-identical to [`CommModel::tree_allreduce`].
    pub fn tree(&self, bytes: u64) -> f64 {
        if self.n == 1 {
            return 0.0;
        }
        2.0 * self.tree_depth * (self.ring_lat + bytes as f64 / self.ring_bw)
    }

    /// Two-level cost; bit-identical to
    /// [`CommModel::hierarchical_allreduce`], including the flat-ring
    /// fallback for single-node groups.
    pub fn hierarchical(&self, bytes: u64) -> f64 {
        if self.n == 1 {
            return 0.0;
        }
        let Some(h) = &self.hier else {
            return self.ring(bytes);
        };
        let mut local_rs: f64 = 0.0;
        let mut local_ag: f64 = 0.0;
        for &(m, bw, lat) in &h.nodes {
            if m > 1 {
                let mf = m as f64;
                local_rs = local_rs.max((mf - 1.0) / mf * bytes as f64 / bw + (mf - 1.0) * lat);
                let per_rank = bytes / m as u64;
                local_ag = local_ag.max((mf - 1.0) * per_rank as f64 / bw + (mf - 1.0) * lat);
            }
        }
        let max_shard = h
            .nodes
            .iter()
            .map(|&(m, _, _)| bytes / m as u64)
            .max()
            .unwrap_or(bytes);
        let nl = h.leaders_n as f64;
        let global = 2.0 * (nl - 1.0) / nl * max_shard as f64 / h.leader_bw
            + 2.0 * (nl - 1.0) * h.leader_lat;
        local_rs + global + local_ag
    }

    /// Cost under an explicitly chosen algorithm; bit-identical to
    /// [`CommModel::allreduce_with`] for non-empty payloads. Zero-byte
    /// payloads are skipped (cost `0.0`) rather than charged the
    /// algorithm's latency terms: compression rounding can produce empty
    /// buckets, and an empty bucket launches no collective at all.
    pub fn cost(&self, algo: AllReduceAlgo, bytes: u64) -> f64 {
        if bytes == 0 {
            return 0.0;
        }
        match algo {
            AllReduceAlgo::Ring => self.ring(bytes),
            AllReduceAlgo::Tree => self.tree(bytes),
            AllReduceAlgo::Hierarchical => self.hierarchical(bytes),
        }
    }

    /// The cheapest algorithm for `bytes`, with
    /// [`CommModel::select_allreduce`]'s tie-break order. Zero-byte
    /// payloads short-circuit to `(Ring, 0.0)` — see [`Self::cost`].
    pub fn select(&self, bytes: u64) -> (AllReduceAlgo, f64) {
        if bytes == 0 {
            return (AllReduceAlgo::Ring, 0.0);
        }
        let flat = self.ring(bytes);
        let hier = self.hierarchical(bytes);
        let tree = self.tree(bytes);
        if flat <= hier && flat <= tree {
            (AllReduceAlgo::Ring, flat)
        } else if hier <= tree {
            (AllReduceAlgo::Hierarchical, hier)
        } else {
            (AllReduceAlgo::Tree, tree)
        }
    }

    /// Time to quantize a `logical`-byte fp32 gradient down to `wire` bytes
    /// before the collective and dequantize the result back afterwards:
    /// two elementwise passes (read logical + write wire, then read wire +
    /// write logical), memory-bandwidth-bound on the slowest group member.
    /// Zero when nothing is scaled (`wire == logical` charges nothing —
    /// callers gate on the schedule's `wire_scaled()`), on singleton
    /// groups, and on empty payloads.
    pub fn quantize_cost(&self, logical: u64, wire: u64) -> f64 {
        if self.n == 1 || logical == 0 {
            return 0.0;
        }
        quantize_dequantize_cost(logical, wire, self.min_membw)
    }
}

/// Quantize + dequantize wall time for one rank: `2·(logical + wire)` bytes
/// of device-memory traffic at `membw` bytes/s. Shared by the selector and
/// the simulator's legacy (non-bucketed) sync path so both charge the exact
/// same term.
pub fn quantize_dequantize_cost(logical: u64, wire: u64, membw: f64) -> f64 {
    if membw <= 0.0 {
        return 0.0;
    }
    2.0 * (logical + wire) as f64 / membw
}

fn check_group(group: &[usize]) -> Result<usize> {
    if group.is_empty() {
        return Err(HardwareError::InvalidGroup("empty group".into()));
    }
    let mut sorted: Vec<usize> = group.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    if sorted.len() != group.len() {
        return Err(HardwareError::InvalidGroup(
            "duplicate rank in group".into(),
        ));
    }
    Ok(group.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::Cluster;
    use crate::gpu::GpuModel;

    const MB100: u64 = 100 << 20;

    #[test]
    fn single_rank_collectives_are_free() {
        let c = Cluster::homogeneous(GpuModel::V100_32GB, 1, 8);
        let m = CommModel::new(&c);
        assert_eq!(m.allreduce(&[0], MB100).unwrap(), 0.0);
        assert_eq!(m.allgather(&[3], MB100).unwrap(), 0.0);
        assert_eq!(m.alltoall(&[5], MB100).unwrap(), 0.0);
    }

    #[test]
    fn empty_or_duplicate_group_rejected() {
        let c = Cluster::homogeneous(GpuModel::V100_32GB, 1, 8);
        let m = CommModel::new(&c);
        assert!(m.allreduce(&[], MB100).is_err());
        assert!(m.allreduce(&[0, 0], MB100).is_err());
    }

    #[test]
    fn intra_node_nvlink_beats_cross_node() {
        let c = Cluster::homogeneous(GpuModel::V100_32GB, 2, 8);
        let m = CommModel::new(&c);
        let intra = m.allreduce(&[0, 1, 2, 3], MB100).unwrap();
        let cross = m.allreduce(&[0, 1, 8, 9], MB100).unwrap();
        assert!(cross > intra * 5.0, "cross={cross} intra={intra}");
    }

    #[test]
    fn p100_nodes_use_pcie() {
        let c = Cluster::homogeneous(GpuModel::P100_16GB, 1, 8);
        let m = CommModel::new(&c);
        assert_eq!(m.bottleneck_link(&[0, 1, 2, 3]).unwrap(), LinkKind::Pcie);
    }

    #[test]
    fn ring_allreduce_formula() {
        let c = Cluster::homogeneous(GpuModel::V100_32GB, 1, 4);
        let m = CommModel::new(&c);
        let ic = &c.interconnect;
        let t = m.allreduce(&[0, 1, 2, 3], MB100).unwrap();
        let expect = 2.0 * 3.0 / 4.0 * MB100 as f64 / ic.nvlink_bw + 6.0 * ic.nvlink_lat;
        assert!((t - expect).abs() / expect < 1e-12);
    }

    #[test]
    fn hierarchical_beats_flat_on_multi_node() {
        // 4 nodes × 8 GPUs: flat 32-way ring is bounded by the network for the
        // whole tensor; hierarchical only moves 1/8 of it across nodes.
        let c = Cluster::homogeneous(GpuModel::V100_32GB, 4, 8);
        let m = CommModel::new(&c);
        let group: Vec<usize> = (0..32).collect();
        let flat = m.allreduce(&group, MB100).unwrap();
        let hier = m.hierarchical_allreduce(&group, MB100).unwrap();
        assert!(
            hier < flat,
            "hierarchical {hier} should beat flat {flat} across nodes"
        );
        assert_eq!(m.best_allreduce(&group, MB100).unwrap(), hier.min(flat));
    }

    #[test]
    fn hierarchical_on_single_node_equals_flat() {
        let c = Cluster::homogeneous(GpuModel::V100_32GB, 1, 8);
        let m = CommModel::new(&c);
        let group: Vec<usize> = (0..8).collect();
        assert_eq!(
            m.hierarchical_allreduce(&group, MB100).unwrap(),
            m.allreduce(&group, MB100).unwrap()
        );
    }

    #[test]
    fn allreduce_scales_with_bytes_not_much_with_ranks() {
        let c = Cluster::homogeneous(GpuModel::V100_32GB, 1, 8);
        let m = CommModel::new(&c);
        let t4 = m.allreduce(&[0, 1, 2, 3], MB100).unwrap();
        let t8 = m.allreduce(&(0..8).collect::<Vec<_>>(), MB100).unwrap();
        // Ring AllReduce bandwidth term approaches 2·S/BW; 8 ranks within 17%
        // of 4 ranks.
        assert!(t8 < t4 * 1.2);
        let t_double = m.allreduce(&[0, 1, 2, 3], 2 * MB100).unwrap();
        assert!(t_double > 1.8 * t4);
    }

    #[test]
    fn tree_wins_for_tiny_tensors_ring_for_big() {
        // 64-rank single... use 4 nodes x 8 GPUs over the network where ring
        // latency (2·63 hops) dominates small payloads.
        let c = Cluster::homogeneous(GpuModel::V100_32GB, 8, 8);
        let m = CommModel::new(&c);
        let group: Vec<usize> = (0..64).collect();
        let tiny = 4 << 10; // 4 KiB
        assert!(
            m.tree_allreduce(&group, tiny).unwrap() < m.allreduce(&group, tiny).unwrap(),
            "tree should win at 4 KiB"
        );
        let big = 256 << 20;
        assert!(
            m.allreduce(&group, big).unwrap() < m.tree_allreduce(&group, big).unwrap(),
            "ring should win at 256 MiB"
        );
        // best_allreduce picks the min of all three.
        let best = m.best_allreduce(&group, tiny).unwrap();
        assert!(best <= m.tree_allreduce(&group, tiny).unwrap());
        assert!(best <= m.hierarchical_allreduce(&group, tiny).unwrap());
    }

    #[test]
    fn singleton_groups_cost_nothing_under_every_algorithm() {
        let c = Cluster::homogeneous(GpuModel::V100_32GB, 2, 8);
        let m = CommModel::new(&c);
        for algo in [
            AllReduceAlgo::Ring,
            AllReduceAlgo::Tree,
            AllReduceAlgo::Hierarchical,
        ] {
            assert_eq!(m.allreduce_with(algo, &[5], MB100).unwrap(), 0.0);
        }
        let (_, cost) = m.select_allreduce(&[5], MB100).unwrap();
        assert_eq!(cost, 0.0);
        assert_eq!(m.best_allreduce(&[5], MB100).unwrap(), 0.0);
    }

    #[test]
    fn heterogeneous_intra_and_inter_node_bandwidths_are_distinguished() {
        // Node 0: NVLink V100s; node 1: PCIe P100s. The same 4-rank group
        // costs more on PCIe than on NVLink, and a group spanning both nodes
        // is bounded by the network — strictly slower than either.
        let c = Cluster::parse("1x(8xV100)+1x(8xP100)").unwrap();
        let m = CommModel::new(&c);
        let nvlink = m.allreduce(&[0, 1, 2, 3], MB100).unwrap();
        let pcie = m.allreduce(&[8, 9, 10, 11], MB100).unwrap();
        let cross = m.allreduce(&[0, 1, 8, 9], MB100).unwrap();
        assert!(pcie > nvlink, "pcie={pcie} nvlink={nvlink}");
        assert!(cross > pcie, "cross={cross} pcie={pcie}");
        assert_eq!(m.bottleneck_link(&[8, 9, 10, 11]).unwrap(), LinkKind::Pcie);
        assert_eq!(m.bottleneck_link(&[0, 1, 8, 9]).unwrap(), LinkKind::Network);
    }

    #[test]
    fn ring_tree_crossover_is_monotone_in_payload() {
        // tree − ring cost is strictly increasing in payload on a fixed
        // group (the tree re-sends the whole tensor per level, `2·log2(n)`
        // bandwidth terms vs the ring's ~2), so the selection flips at most
        // once as the payload grows: tree wins small tensors, ring wins big
        // ones, and once the ring wins it wins at every larger payload.
        let c = Cluster::homogeneous(GpuModel::V100_32GB, 8, 8);
        let m = CommModel::new(&c);
        let group: Vec<usize> = (0..64).collect();
        let mut ring_won = false;
        let mut prev_gap = f64::NEG_INFINITY;
        for shift in 10..30 {
            let bytes = 1u64 << shift; // 1 KiB → 512 MiB
            let ring = m.allreduce(&group, bytes).unwrap();
            let tree = m.tree_allreduce(&group, bytes).unwrap();
            let gap = tree - ring;
            assert!(gap > prev_gap, "gap must grow: {prev_gap} → {gap}");
            prev_gap = gap;
            let (algo, cost) = m.select_allreduce(&group, bytes).unwrap();
            assert!(cost <= ring.min(tree));
            if ring_won {
                assert_ne!(
                    algo,
                    AllReduceAlgo::Tree,
                    "tree re-selected at {bytes} B after losing at a smaller payload"
                );
            }
            if ring < tree {
                ring_won = true;
            }
        }
        assert!(ring_won, "ring must win for large payloads");
    }

    #[test]
    fn hierarchical_single_node_fallback_matches_flat_ring_selection() {
        // On one node the hierarchical algorithm degenerates to a flat ring;
        // selection must therefore never report hierarchical as a strict
        // winner and its cost must equal the ring's at every payload.
        let c = Cluster::homogeneous(GpuModel::V100_32GB, 1, 8);
        let m = CommModel::new(&c);
        let group: Vec<usize> = (0..8).collect();
        for bytes in [4u64 << 10, 1 << 20, 256 << 20] {
            assert_eq!(
                m.allreduce_with(AllReduceAlgo::Hierarchical, &group, bytes)
                    .unwrap(),
                m.allreduce_with(AllReduceAlgo::Ring, &group, bytes)
                    .unwrap()
            );
            let (algo, cost) = m.select_allreduce(&group, bytes).unwrap();
            assert_ne!(algo, AllReduceAlgo::Hierarchical);
            assert_eq!(cost, m.best_allreduce(&group, bytes).unwrap());
        }
    }

    #[test]
    fn selection_cost_equals_chosen_algorithm_cost() {
        let c = Cluster::homogeneous(GpuModel::V100_32GB, 4, 8);
        let m = CommModel::new(&c);
        let group: Vec<usize> = (0..32).collect();
        for bytes in [1u64 << 12, 1 << 20, 25 << 20, 512 << 20] {
            let (algo, cost) = m.select_allreduce(&group, bytes).unwrap();
            assert_eq!(cost, m.allreduce_with(algo, &group, bytes).unwrap());
        }
    }

    #[test]
    fn collective_dispatch_matches_direct_calls() {
        let c = Cluster::homogeneous(GpuModel::V100_32GB, 1, 4);
        let m = CommModel::new(&c);
        let g = [0usize, 1, 2, 3];
        assert_eq!(
            m.collective(Collective::AllGather, &g, MB100).unwrap(),
            m.allgather(&g, MB100).unwrap()
        );
        assert_eq!(
            m.collective(Collective::AllToAll, &g, MB100).unwrap(),
            m.alltoall(&g, MB100).unwrap()
        );
        assert_eq!(
            m.collective(Collective::Broadcast, &g, MB100).unwrap(),
            m.broadcast(&g, MB100).unwrap()
        );
        assert_eq!(
            m.collective(Collective::ReduceScatter, &g, MB100).unwrap(),
            m.reduce_scatter(&g, MB100).unwrap()
        );
    }

    #[test]
    fn zero_byte_payloads_skip_pricing() {
        // Compression rounding can empty a fusion bucket; an empty bucket
        // launches no collective, so selection and explicit-algorithm
        // pricing must both return 0 — not the algorithm's latency terms.
        let c = Cluster::parse("2x(8xV100)+2x(8xP100)").unwrap();
        let m = CommModel::new(&c);
        let group: Vec<usize> = (0..32).collect();
        let (algo, cost) = m.select_allreduce(&group, 0).unwrap();
        assert_eq!((algo, cost), (AllReduceAlgo::Ring, 0.0));
        assert_eq!(m.best_allreduce(&group, 0).unwrap(), 0.0);
        let sel = m.allreduce_selector(&group).unwrap();
        assert_eq!(sel.select(0), (AllReduceAlgo::Ring, 0.0));
        for algo in [
            AllReduceAlgo::Ring,
            AllReduceAlgo::Tree,
            AllReduceAlgo::Hierarchical,
        ] {
            assert_eq!(sel.cost(algo, 0), 0.0);
        }
        // One byte is already a real collective again.
        assert!(sel.cost(AllReduceAlgo::Ring, 1) > 0.0);
    }

    #[test]
    fn quantize_cost_is_bound_by_the_slowest_member() {
        // V100 HBM2 is faster than P100; a mixed group pays the P100 rate.
        let c = Cluster::parse("8xV100+8xP100").unwrap();
        let m = CommModel::new(&c);
        let v100s: Vec<usize> = (0..8).collect();
        let mixed: Vec<usize> = (0..16).collect();
        let (logical, wire) = (100u64 << 20, 50u64 << 20);
        let fast = m
            .allreduce_selector(&v100s)
            .unwrap()
            .quantize_cost(logical, wire);
        let slow = m
            .allreduce_selector(&mixed)
            .unwrap()
            .quantize_cost(logical, wire);
        assert!(
            slow > fast,
            "mixed group must pay the P100 membw: {slow} vs {fast}"
        );
        let p100_bw = GpuModel::P100_16GB.memory_bandwidth();
        let expect = 2.0 * (logical + wire) as f64 / p100_bw;
        assert_eq!(slow, expect);
        assert_eq!(slow, quantize_dequantize_cost(logical, wire, p100_bw));
        // Degenerate cases are free.
        let sel = m.allreduce_selector(&mixed).unwrap();
        assert_eq!(sel.quantize_cost(0, 0), 0.0);
        assert_eq!(
            m.allreduce_selector(&[3])
                .unwrap()
                .quantize_cost(logical, wire),
            0.0
        );
    }

    #[test]
    fn selector_costs_are_bit_identical_to_direct_evaluation() {
        // Heterogeneous multi-node, single-node, and asymmetric-membership
        // groups, across payloads from 1 KB to 1 GB: the precomputed
        // selector must reproduce every direct cost exactly, and pick the
        // same winner.
        let c = Cluster::parse("2x(8xV100)+2x(8xP100)").unwrap();
        let m = CommModel::new(&c);
        let groups: Vec<Vec<usize>> = vec![
            (0..32).collect(),           // all four nodes
            (0..8).collect(),            // one NVLink node
            vec![0, 1, 2, 8, 9, 16, 24], // asymmetric membership
            vec![5],                     // singleton
            vec![0, 8, 16, 24],          // one GPU per node
        ];
        for g in &groups {
            let sel = m.allreduce_selector(g).unwrap();
            for shift in [10u64, 16, 20, 24, 27, 30] {
                let bytes = 1u64 << shift;
                assert_eq!(sel.ring(bytes), m.allreduce(g, bytes).unwrap());
                assert_eq!(sel.tree(bytes), m.tree_allreduce(g, bytes).unwrap());
                assert_eq!(
                    sel.hierarchical(bytes),
                    m.hierarchical_allreduce(g, bytes).unwrap()
                );
                for algo in [
                    AllReduceAlgo::Ring,
                    AllReduceAlgo::Tree,
                    AllReduceAlgo::Hierarchical,
                ] {
                    assert_eq!(
                        sel.cost(algo, bytes),
                        m.allreduce_with(algo, g, bytes).unwrap()
                    );
                }
                assert_eq!(sel.select(bytes), m.select_allreduce(g, bytes).unwrap());
            }
        }
    }
}
