//! Analytic cost models for collective communication.
//!
//! The paper synchronizes gradients with ring AllReduce (Horovod-style,
//! ref \[35\]) executed hierarchically: a local AllReduce inside each worker
//! node followed by a global AllReduce across workers (§4, "Gradient
//! Aggregation"). This module provides the standard α–β cost models for the
//! collectives Whale inserts: AllReduce, AllGather, ReduceScatter, Broadcast,
//! and AllToAll (used by MoE expert dispatch).
//!
//! All times are in seconds, sizes in bytes. Group members are global GPU ids
//! within a [`Cluster`].

use crate::cluster::Cluster;
use crate::error::{HardwareError, Result};
use crate::interconnect::LinkKind;
use std::collections::BTreeSet;

/// Collective operations the planner can insert.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Collective {
    /// Sum-reduce then replicate: each rank ends with the full reduced tensor.
    AllReduce,
    /// Concatenate per-rank shards: each rank ends with the full tensor.
    AllGather,
    /// Reduce then shard: each rank ends with `1/n` of the reduced tensor.
    ReduceScatter,
    /// One rank sends the full tensor to all others.
    Broadcast,
    /// Every rank exchanges a distinct shard with every other rank.
    AllToAll,
}

/// Communication cost model over a concrete cluster.
///
/// The model picks the *bottleneck link class* of the group (network if the
/// group spans nodes, otherwise NVLink/PCIe) and applies the textbook ring
/// formulas. This first-order treatment is the same one the paper's planner
/// uses to reason about communication (it never simulates packets).
#[derive(Debug, Clone)]
pub struct CommModel<'c> {
    cluster: &'c Cluster,
}

impl<'c> CommModel<'c> {
    /// Build a cost model over `cluster`.
    pub fn new(cluster: &'c Cluster) -> Self {
        Self { cluster }
    }

    /// The slowest link class used by a ring over `group`.
    pub fn bottleneck_link(&self, group: &[usize]) -> Result<LinkKind> {
        if group.len() < 2 {
            return Ok(LinkKind::Local);
        }
        let mut nodes = BTreeSet::new();
        let mut all_nvlink = true;
        for &id in group {
            let g = self.cluster.gpu(id)?;
            nodes.insert(g.node);
            all_nvlink &= g.model.has_nvlink();
        }
        Ok(if nodes.len() > 1 {
            LinkKind::Network
        } else if all_nvlink {
            LinkKind::NvLink
        } else {
            LinkKind::Pcie
        })
    }

    fn ring_params(&self, group: &[usize]) -> Result<(f64, f64)> {
        let kind = self.bottleneck_link(group)?;
        let ic = &self.cluster.interconnect;
        Ok((ic.bandwidth(kind), ic.latency(kind)))
    }

    /// Ring AllReduce over `group` of a `bytes`-sized tensor.
    ///
    /// Cost: `2·(n−1)/n · bytes / bw + 2·(n−1)·lat` — a reduce-scatter pass
    /// followed by an all-gather pass.
    pub fn allreduce(&self, group: &[usize], bytes: u64) -> Result<f64> {
        let n = check_group(group)?;
        if n == 1 {
            return Ok(0.0);
        }
        let (bw, lat) = self.ring_params(group)?;
        let nf = n as f64;
        Ok(2.0 * (nf - 1.0) / nf * bytes as f64 / bw + 2.0 * (nf - 1.0) * lat)
    }

    /// Ring AllGather: each rank contributes `bytes_per_rank`, ends with
    /// `n·bytes_per_rank`.
    pub fn allgather(&self, group: &[usize], bytes_per_rank: u64) -> Result<f64> {
        let n = check_group(group)?;
        if n == 1 {
            return Ok(0.0);
        }
        let (bw, lat) = self.ring_params(group)?;
        let nf = n as f64;
        Ok((nf - 1.0) * bytes_per_rank as f64 / bw + (nf - 1.0) * lat)
    }

    /// Ring ReduceScatter of a `bytes`-sized tensor.
    pub fn reduce_scatter(&self, group: &[usize], bytes: u64) -> Result<f64> {
        let n = check_group(group)?;
        if n == 1 {
            return Ok(0.0);
        }
        let (bw, lat) = self.ring_params(group)?;
        let nf = n as f64;
        Ok((nf - 1.0) / nf * bytes as f64 / bw + (nf - 1.0) * lat)
    }

    /// Pipelined broadcast of a `bytes`-sized tensor from one rank.
    pub fn broadcast(&self, group: &[usize], bytes: u64) -> Result<f64> {
        let n = check_group(group)?;
        if n == 1 {
            return Ok(0.0);
        }
        let (bw, lat) = self.ring_params(group)?;
        Ok(bytes as f64 / bw + (n as f64 - 1.0) * lat)
    }

    /// AllToAll where each rank holds `bytes` total and sends `(n−1)/n` of it.
    ///
    /// MoE expert dispatch (`einsum("GSEC,GSM->EGCM")` in paper Example 8)
    /// lowers to this collective.
    pub fn alltoall(&self, group: &[usize], bytes: u64) -> Result<f64> {
        let n = check_group(group)?;
        if n == 1 {
            return Ok(0.0);
        }
        let (bw, lat) = self.ring_params(group)?;
        let nf = n as f64;
        Ok((nf - 1.0) / nf * bytes as f64 / bw + (nf - 1.0) * lat)
    }

    /// Binary-tree AllReduce: reduce up and broadcast down.
    ///
    /// Cost `2·log2(n)·(lat + bytes/bw)` — latency-optimal for small
    /// tensors where the ring's `2(n−1)` latency hops dominate.
    pub fn tree_allreduce(&self, group: &[usize], bytes: u64) -> Result<f64> {
        let n = check_group(group)?;
        if n == 1 {
            return Ok(0.0);
        }
        let (bw, lat) = self.ring_params(group)?;
        let depth = (n as f64).log2().ceil();
        Ok(2.0 * depth * (lat + bytes as f64 / bw))
    }

    /// Hierarchical AllReduce as implemented by Whale (§4): ReduceScatter +
    /// AllReduce-across-node-leaders + AllGather, with intra-node phases on
    /// the fast local links.
    ///
    /// Falls back to a flat ring when the group sits on a single node.
    pub fn hierarchical_allreduce(&self, group: &[usize], bytes: u64) -> Result<f64> {
        let n = check_group(group)?;
        if n == 1 {
            return Ok(0.0);
        }
        // Group members per node, preserving order.
        let mut per_node: Vec<(usize, Vec<usize>)> = Vec::new();
        for &id in group {
            let node = self.cluster.gpu(id)?.node;
            match per_node.iter_mut().find(|(nd, _)| *nd == node) {
                Some((_, v)) => v.push(id),
                None => per_node.push((node, vec![id])),
            }
        }
        if per_node.len() == 1 {
            return self.allreduce(group, bytes);
        }
        // Phase 1: local reduce-scatter inside each node (slowest node bounds).
        let mut local_rs: f64 = 0.0;
        let mut local_ag: f64 = 0.0;
        for (_, members) in &per_node {
            if members.len() > 1 {
                local_rs = local_rs.max(self.reduce_scatter(members, bytes)?);
                local_ag = local_ag.max(self.allgather(members, bytes / members.len() as u64)?);
            }
        }
        // Phase 2: global ring AllReduce among one leader per node. Each
        // leader carries the locally reduced shard; with symmetric nodes the
        // shard is bytes/local_size, but with asymmetric membership we bound
        // by the largest shard.
        let leaders: Vec<usize> = per_node.iter().map(|(_, m)| m[0]).collect();
        let max_shard = per_node
            .iter()
            .map(|(_, m)| bytes / m.len() as u64)
            .max()
            .unwrap_or(bytes);
        let global = self.allreduce(&leaders, max_shard)?;
        Ok(local_rs + global + local_ag)
    }

    /// Cost of the cheapest AllReduce algorithm — flat ring, hierarchical
    /// two-level ring, or binary tree — which is what an NCCL-style runtime
    /// selects per tensor size and topology.
    pub fn best_allreduce(&self, group: &[usize], bytes: u64) -> Result<f64> {
        let flat = self.allreduce(group, bytes)?;
        let hier = self.hierarchical_allreduce(group, bytes)?;
        let tree = self.tree_allreduce(group, bytes)?;
        Ok(flat.min(hier).min(tree))
    }

    /// Dispatch on a [`Collective`] kind.
    pub fn collective(&self, kind: Collective, group: &[usize], bytes: u64) -> Result<f64> {
        match kind {
            Collective::AllReduce => self.best_allreduce(group, bytes),
            Collective::AllGather => self.allgather(group, bytes),
            Collective::ReduceScatter => self.reduce_scatter(group, bytes),
            Collective::Broadcast => self.broadcast(group, bytes),
            Collective::AllToAll => self.alltoall(group, bytes),
        }
    }
}

fn check_group(group: &[usize]) -> Result<usize> {
    if group.is_empty() {
        return Err(HardwareError::InvalidGroup("empty group".into()));
    }
    let mut sorted: Vec<usize> = group.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    if sorted.len() != group.len() {
        return Err(HardwareError::InvalidGroup(
            "duplicate rank in group".into(),
        ));
    }
    Ok(group.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::Cluster;
    use crate::gpu::GpuModel;

    const MB100: u64 = 100 << 20;

    #[test]
    fn single_rank_collectives_are_free() {
        let c = Cluster::homogeneous(GpuModel::V100_32GB, 1, 8);
        let m = CommModel::new(&c);
        assert_eq!(m.allreduce(&[0], MB100).unwrap(), 0.0);
        assert_eq!(m.allgather(&[3], MB100).unwrap(), 0.0);
        assert_eq!(m.alltoall(&[5], MB100).unwrap(), 0.0);
    }

    #[test]
    fn empty_or_duplicate_group_rejected() {
        let c = Cluster::homogeneous(GpuModel::V100_32GB, 1, 8);
        let m = CommModel::new(&c);
        assert!(m.allreduce(&[], MB100).is_err());
        assert!(m.allreduce(&[0, 0], MB100).is_err());
    }

    #[test]
    fn intra_node_nvlink_beats_cross_node() {
        let c = Cluster::homogeneous(GpuModel::V100_32GB, 2, 8);
        let m = CommModel::new(&c);
        let intra = m.allreduce(&[0, 1, 2, 3], MB100).unwrap();
        let cross = m.allreduce(&[0, 1, 8, 9], MB100).unwrap();
        assert!(cross > intra * 5.0, "cross={cross} intra={intra}");
    }

    #[test]
    fn p100_nodes_use_pcie() {
        let c = Cluster::homogeneous(GpuModel::P100_16GB, 1, 8);
        let m = CommModel::new(&c);
        assert_eq!(m.bottleneck_link(&[0, 1, 2, 3]).unwrap(), LinkKind::Pcie);
    }

    #[test]
    fn ring_allreduce_formula() {
        let c = Cluster::homogeneous(GpuModel::V100_32GB, 1, 4);
        let m = CommModel::new(&c);
        let ic = &c.interconnect;
        let t = m.allreduce(&[0, 1, 2, 3], MB100).unwrap();
        let expect = 2.0 * 3.0 / 4.0 * MB100 as f64 / ic.nvlink_bw + 6.0 * ic.nvlink_lat;
        assert!((t - expect).abs() / expect < 1e-12);
    }

    #[test]
    fn hierarchical_beats_flat_on_multi_node() {
        // 4 nodes × 8 GPUs: flat 32-way ring is bounded by the network for the
        // whole tensor; hierarchical only moves 1/8 of it across nodes.
        let c = Cluster::homogeneous(GpuModel::V100_32GB, 4, 8);
        let m = CommModel::new(&c);
        let group: Vec<usize> = (0..32).collect();
        let flat = m.allreduce(&group, MB100).unwrap();
        let hier = m.hierarchical_allreduce(&group, MB100).unwrap();
        assert!(
            hier < flat,
            "hierarchical {hier} should beat flat {flat} across nodes"
        );
        assert_eq!(m.best_allreduce(&group, MB100).unwrap(), hier.min(flat));
    }

    #[test]
    fn hierarchical_on_single_node_equals_flat() {
        let c = Cluster::homogeneous(GpuModel::V100_32GB, 1, 8);
        let m = CommModel::new(&c);
        let group: Vec<usize> = (0..8).collect();
        assert_eq!(
            m.hierarchical_allreduce(&group, MB100).unwrap(),
            m.allreduce(&group, MB100).unwrap()
        );
    }

    #[test]
    fn allreduce_scales_with_bytes_not_much_with_ranks() {
        let c = Cluster::homogeneous(GpuModel::V100_32GB, 1, 8);
        let m = CommModel::new(&c);
        let t4 = m.allreduce(&[0, 1, 2, 3], MB100).unwrap();
        let t8 = m.allreduce(&(0..8).collect::<Vec<_>>(), MB100).unwrap();
        // Ring AllReduce bandwidth term approaches 2·S/BW; 8 ranks within 17%
        // of 4 ranks.
        assert!(t8 < t4 * 1.2);
        let t_double = m.allreduce(&[0, 1, 2, 3], 2 * MB100).unwrap();
        assert!(t_double > 1.8 * t4);
    }

    #[test]
    fn tree_wins_for_tiny_tensors_ring_for_big() {
        // 64-rank single... use 4 nodes x 8 GPUs over the network where ring
        // latency (2·63 hops) dominates small payloads.
        let c = Cluster::homogeneous(GpuModel::V100_32GB, 8, 8);
        let m = CommModel::new(&c);
        let group: Vec<usize> = (0..64).collect();
        let tiny = 4 << 10; // 4 KiB
        assert!(
            m.tree_allreduce(&group, tiny).unwrap() < m.allreduce(&group, tiny).unwrap(),
            "tree should win at 4 KiB"
        );
        let big = 256 << 20;
        assert!(
            m.allreduce(&group, big).unwrap() < m.tree_allreduce(&group, big).unwrap(),
            "ring should win at 256 MiB"
        );
        // best_allreduce picks the min of all three.
        let best = m.best_allreduce(&group, tiny).unwrap();
        assert!(best <= m.tree_allreduce(&group, tiny).unwrap());
        assert!(best <= m.hierarchical_allreduce(&group, tiny).unwrap());
    }

    #[test]
    fn collective_dispatch_matches_direct_calls() {
        let c = Cluster::homogeneous(GpuModel::V100_32GB, 1, 4);
        let m = CommModel::new(&c);
        let g = [0usize, 1, 2, 3];
        assert_eq!(
            m.collective(Collective::AllGather, &g, MB100).unwrap(),
            m.allgather(&g, MB100).unwrap()
        );
        assert_eq!(
            m.collective(Collective::AllToAll, &g, MB100).unwrap(),
            m.alltoall(&g, MB100).unwrap()
        );
        assert_eq!(
            m.collective(Collective::Broadcast, &g, MB100).unwrap(),
            m.broadcast(&g, MB100).unwrap()
        );
        assert_eq!(
            m.collective(Collective::ReduceScatter, &g, MB100).unwrap(),
            m.reduce_scatter(&g, MB100).unwrap()
        );
    }
}
