//! Interconnect model: link classes and point-to-point transfer costs.
//!
//! The paper's cluster (§5) connects nodes with 50 Gb/s Ethernet; inside a
//! node GPUs talk over NVLink (V100/A100) or PCIe (P100 and older). The
//! simulator only needs an α–β cost model: `time = latency + bytes /
//! bandwidth`, selected by whether the endpoints share a node and whether the
//! devices have NVLink.

use crate::gpu::Gpu;

/// Classes of links between two GPUs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LinkKind {
    /// Same-node NVLink mesh.
    NvLink,
    /// Same-node PCIe 3.0 x16.
    Pcie,
    /// Cross-node network fabric (Ethernet/RoCE in the paper's cluster).
    Network,
    /// Loopback (same device); zero-cost.
    Local,
}

/// Bandwidth/latency description of the fabric connecting a cluster.
///
/// Defaults model the paper's testbed: 50 Gb/s inter-node bandwidth, NVLink at
/// 150 GB/s effective per direction, PCIe 3.0 x16 at ~12 GB/s effective.
#[derive(Debug, Clone, PartialEq)]
pub struct Interconnect {
    /// NVLink per-pair bandwidth, bytes/s.
    pub nvlink_bw: f64,
    /// PCIe per-pair bandwidth, bytes/s.
    pub pcie_bw: f64,
    /// Cross-node network bandwidth per node, bytes/s.
    pub network_bw: f64,
    /// NVLink latency, seconds.
    pub nvlink_lat: f64,
    /// PCIe latency, seconds.
    pub pcie_lat: f64,
    /// Network latency, seconds.
    pub network_lat: f64,
}

impl Default for Interconnect {
    fn default() -> Self {
        Self {
            nvlink_bw: 150e9,
            pcie_bw: 12e9,
            // 50 Gb/s = 6.25 GB/s.
            network_bw: 6.25e9,
            nvlink_lat: 3e-6,
            pcie_lat: 5e-6,
            network_lat: 20e-6,
        }
    }
}

impl Interconnect {
    /// The paper's testbed fabric: 50 Gb/s inter-node Ethernet.
    pub fn ethernet_50g() -> Interconnect {
        Interconnect::default()
    }

    /// A 100 Gb/s InfiniBand-class fabric (lower latency, 2× bandwidth).
    pub fn infiniband_100g() -> Interconnect {
        Interconnect {
            network_bw: 12.5e9,
            network_lat: 5e-6,
            ..Interconnect::default()
        }
    }

    /// A constrained 10 Gb/s fabric (older shared clusters).
    pub fn ethernet_10g() -> Interconnect {
        Interconnect {
            network_bw: 1.25e9,
            network_lat: 40e-6,
            ..Interconnect::default()
        }
    }

    /// Classify the link between two GPU instances.
    pub fn link_kind(&self, a: &Gpu, b: &Gpu) -> LinkKind {
        if a.id == b.id {
            LinkKind::Local
        } else if a.node == b.node {
            if a.model.has_nvlink() && b.model.has_nvlink() {
                LinkKind::NvLink
            } else {
                LinkKind::Pcie
            }
        } else {
            LinkKind::Network
        }
    }

    /// Bandwidth in bytes/s of a link class.
    pub fn bandwidth(&self, kind: LinkKind) -> f64 {
        match kind {
            LinkKind::NvLink => self.nvlink_bw,
            LinkKind::Pcie => self.pcie_bw,
            LinkKind::Network => self.network_bw,
            LinkKind::Local => f64::INFINITY,
        }
    }

    /// Latency in seconds of a link class.
    pub fn latency(&self, kind: LinkKind) -> f64 {
        match kind {
            LinkKind::NvLink => self.nvlink_lat,
            LinkKind::Pcie => self.pcie_lat,
            LinkKind::Network => self.network_lat,
            LinkKind::Local => 0.0,
        }
    }

    /// Point-to-point transfer time for `bytes` between two GPUs, seconds.
    pub fn p2p_time(&self, a: &Gpu, b: &Gpu, bytes: u64) -> f64 {
        let kind = self.link_kind(a, b);
        if kind == LinkKind::Local {
            return 0.0;
        }
        self.latency(kind) + bytes as f64 / self.bandwidth(kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gpu::GpuModel;

    fn gpu(id: usize, node: usize, model: GpuModel) -> Gpu {
        Gpu {
            id,
            node,
            local_rank: id % 8,
            model,
            throughput_scale: 1.0,
        }
    }

    #[test]
    fn same_device_is_free() {
        let ic = Interconnect::default();
        let a = gpu(0, 0, GpuModel::V100_32GB);
        assert_eq!(ic.p2p_time(&a, &a, 1 << 30), 0.0);
    }

    #[test]
    fn link_classification() {
        let ic = Interconnect::default();
        let v0 = gpu(0, 0, GpuModel::V100_32GB);
        let v1 = gpu(1, 0, GpuModel::V100_32GB);
        let p2 = gpu(2, 0, GpuModel::P100_16GB);
        let v3 = gpu(3, 1, GpuModel::V100_32GB);
        assert_eq!(ic.link_kind(&v0, &v1), LinkKind::NvLink);
        // Mixed NVLink/non-NVLink pair falls back to PCIe.
        assert_eq!(ic.link_kind(&v0, &p2), LinkKind::Pcie);
        assert_eq!(ic.link_kind(&v0, &v3), LinkKind::Network);
    }

    #[test]
    fn cross_node_is_slowest() {
        let ic = Interconnect::default();
        let a = gpu(0, 0, GpuModel::V100_32GB);
        let b = gpu(1, 0, GpuModel::V100_32GB);
        let c = gpu(8, 1, GpuModel::V100_32GB);
        let bytes = 100 << 20;
        assert!(ic.p2p_time(&a, &c, bytes) > ic.p2p_time(&a, &b, bytes));
    }

    #[test]
    fn transfer_time_scales_with_bytes() {
        let ic = Interconnect::default();
        let a = gpu(0, 0, GpuModel::V100_32GB);
        let b = gpu(8, 1, GpuModel::V100_32GB);
        let t1 = ic.p2p_time(&a, &b, 1 << 20);
        let t2 = ic.p2p_time(&a, &b, 2 << 20);
        assert!(t2 > t1);
        // Latency subtracted, bandwidth term should be exactly linear.
        let lat = ic.network_lat;
        let b1 = t1 - lat;
        let b2 = t2 - lat;
        assert!((b2 / b1 - 2.0).abs() < 1e-9);
    }
}
