//! Cluster change events for elastic replanning.
//!
//! Production clusters drift while a job runs: a device throttles thermally,
//! a co-tenant steals bandwidth, a node is drained or returned. Rather than
//! forcing callers to rebuild a [`Cluster`] by hand and replan from scratch,
//! each kind of drift is named by a [`ClusterDelta`] that can be applied to a
//! cluster in place — and, planner-side, mapped to the earliest compile pass
//! it invalidates, so a degradation rebalances the cached plan instead of
//! re-deriving parallelism degrees and placement.

use crate::cluster::{Cluster, ClusterBuilder};
use crate::error::{HardwareError, Result};
use crate::gpu::GpuModel;
use crate::interconnect::LinkKind;

/// One observed change to a running cluster.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ClusterDelta {
    /// GPU `id` now runs at `scale` of peak throughput (thermal throttling,
    /// noisy co-tenant). `scale` must be in `(0, 1]`.
    GpuDegraded { id: usize, scale: f64 },
    /// GPU `id` is back at full throughput.
    GpuRestored { id: usize },
    /// GPU `id` left the cluster (drained, failed). Remaining GPUs are
    /// renumbered to keep global ids dense; a node losing its last GPU is
    /// dropped.
    GpuRemoved { id: usize },
    /// A new GPU of `model` joined `node`. `node == num_nodes` appends a new
    /// single-GPU node.
    GpuAdded { node: usize, model: GpuModel },
    /// A link class changed effective bandwidth (congestion, fabric
    /// reconfiguration). `bytes_per_sec` must be positive and finite.
    LinkBandwidth { kind: LinkKind, bytes_per_sec: f64 },
}

impl ClusterDelta {
    /// Whether the delta changes cluster *structure* (device set or
    /// topology) rather than per-device or per-link rates. Structural deltas
    /// invalidate every compile pass; rate deltas keep placement and bridges.
    pub fn is_structural(&self) -> bool {
        matches!(
            self,
            ClusterDelta::GpuRemoved { .. } | ClusterDelta::GpuAdded { .. }
        )
    }

    /// Check that the delta can legally be applied to `cluster`, without
    /// mutating anything. [`Cluster::apply_delta`] runs this first, so a
    /// rejected delta leaves the cluster exactly as it was — callers (the
    /// resilient training loop, the CLI) can retry or skip a bad event
    /// without re-validating their own state.
    pub fn validate(&self, cluster: &Cluster) -> Result<()> {
        match *self {
            ClusterDelta::GpuDegraded { id, scale } => {
                if !scale.is_finite() || !(0.0..=1.0).contains(&scale) || scale == 0.0 {
                    return Err(HardwareError::ParseError(format!(
                        "degradation scale must be in (0, 1], got {scale}"
                    )));
                }
                cluster.gpu(id).map(|_| ())
            }
            ClusterDelta::GpuRestored { id } => cluster.gpu(id).map(|_| ()),
            ClusterDelta::GpuRemoved { id } => {
                cluster.gpu(id)?;
                if cluster.num_gpus() == 1 {
                    return Err(HardwareError::ParseError(
                        "cannot remove the last GPU of a cluster".into(),
                    ));
                }
                Ok(())
            }
            ClusterDelta::GpuAdded { node, .. } => {
                if node > cluster.num_nodes() {
                    return Err(HardwareError::ParseError(format!(
                        "cannot add GPU to node {node}: cluster has {} nodes",
                        cluster.num_nodes()
                    )));
                }
                Ok(())
            }
            ClusterDelta::LinkBandwidth {
                kind,
                bytes_per_sec,
            } => {
                if !(bytes_per_sec.is_finite() && bytes_per_sec > 0.0) {
                    return Err(HardwareError::ParseError(format!(
                        "link bandwidth must be positive and finite, got {bytes_per_sec}"
                    )));
                }
                if kind == LinkKind::Local {
                    return Err(HardwareError::ParseError(
                        "loopback links have no configurable bandwidth".into(),
                    ));
                }
                Ok(())
            }
        }
    }
}

impl Cluster {
    /// Apply a [`ClusterDelta`] in place.
    ///
    /// Rate deltas (`GpuDegraded`, `GpuRestored`, `LinkBandwidth`) mutate the
    /// existing cluster; structural deltas (`GpuRemoved`, `GpuAdded`) rebuild
    /// the topology with dense global ids, preserving the degradation state
    /// of every surviving device.
    ///
    /// # Examples
    ///
    /// ```
    /// use whale_hardware::{Cluster, ClusterDelta};
    /// let mut c = Cluster::parse("2x(4xV100)").unwrap();
    /// c.apply_delta(ClusterDelta::GpuDegraded { id: 5, scale: 0.5 }).unwrap();
    /// assert_eq!(c.gpu(5).unwrap().throughput_scale, 0.5);
    /// c.apply_delta(ClusterDelta::GpuRemoved { id: 0 }).unwrap();
    /// assert_eq!(c.num_gpus(), 7);
    /// // The degraded device survives renumbering (id 5 -> 4).
    /// assert_eq!(c.gpu(4).unwrap().throughput_scale, 0.5);
    /// ```
    pub fn apply_delta(&mut self, delta: ClusterDelta) -> Result<()> {
        delta.validate(self)?;
        match delta {
            ClusterDelta::GpuDegraded { id, scale } => self.degrade_gpu(id, scale),
            ClusterDelta::GpuRestored { id } => self.degrade_gpu(id, 1.0),
            ClusterDelta::GpuRemoved { id } => {
                let survivors: Vec<Vec<(GpuModel, f64)>> = self
                    .nodes()
                    .iter()
                    .map(|n| {
                        n.gpu_ids
                            .iter()
                            .filter(|&&g| g != id)
                            .map(|&g| (self.gpus()[g].model, self.gpus()[g].throughput_scale))
                            .collect::<Vec<_>>()
                    })
                    .filter(|node| !node.is_empty())
                    .collect();
                self.rebuild(survivors)
            }
            ClusterDelta::GpuAdded { node, model } => {
                let mut layout: Vec<Vec<(GpuModel, f64)>> = self
                    .nodes()
                    .iter()
                    .map(|n| {
                        n.gpu_ids
                            .iter()
                            .map(|&g| (self.gpus()[g].model, self.gpus()[g].throughput_scale))
                            .collect()
                    })
                    .collect();
                if node == layout.len() {
                    layout.push(vec![(model, 1.0)]);
                } else {
                    layout[node].push((model, 1.0));
                }
                self.rebuild(layout)
            }
            ClusterDelta::LinkBandwidth {
                kind,
                bytes_per_sec,
            } => {
                match kind {
                    LinkKind::NvLink => self.interconnect.nvlink_bw = bytes_per_sec,
                    LinkKind::Pcie => self.interconnect.pcie_bw = bytes_per_sec,
                    LinkKind::Network => self.interconnect.network_bw = bytes_per_sec,
                    // `validate` rejected Local above.
                    LinkKind::Local => unreachable!("validate rejects loopback links"),
                }
                Ok(())
            }
        }
    }

    /// Replace this cluster's topology with `layout` (per-node lists of
    /// `(model, throughput_scale)`), keeping the interconnect.
    fn rebuild(&mut self, layout: Vec<Vec<(GpuModel, f64)>>) -> Result<()> {
        let mut b = ClusterBuilder::new().interconnect(self.interconnect.clone());
        for node in &layout {
            b = b.add_node(node.iter().map(|&(m, _)| m).collect());
        }
        let mut rebuilt = b.build();
        let scales = layout.into_iter().flatten().map(|(_, s)| s);
        for (id, scale) in scales.enumerate() {
            if scale < 1.0 {
                rebuilt.degrade_gpu(id, scale)?;
            }
        }
        *self = rebuilt;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degrade_and_restore_round_trip() {
        let mut c = Cluster::parse("8xV100").unwrap();
        let before = c.fingerprint();
        c.apply_delta(ClusterDelta::GpuDegraded { id: 2, scale: 0.6 })
            .unwrap();
        assert_eq!(c.gpu(2).unwrap().throughput_scale, 0.6);
        assert_ne!(c.fingerprint(), before);
        c.apply_delta(ClusterDelta::GpuRestored { id: 2 }).unwrap();
        assert_eq!(c.fingerprint(), before);
    }

    #[test]
    fn remove_renumbers_and_drops_empty_nodes() {
        let mut c = Cluster::parse("1xV100+4xP100").unwrap();
        c.apply_delta(ClusterDelta::GpuRemoved { id: 0 }).unwrap();
        assert_eq!(c.num_gpus(), 4);
        assert_eq!(c.num_nodes(), 1, "emptied node is dropped");
        for (i, g) in c.gpus().iter().enumerate() {
            assert_eq!(g.id, i);
            assert_eq!(g.model, GpuModel::P100_16GB);
        }
    }

    #[test]
    fn remove_preserves_degradation_of_survivors() {
        let mut c = Cluster::parse("4xV100").unwrap();
        c.degrade_gpu(3, 0.7).unwrap();
        c.apply_delta(ClusterDelta::GpuRemoved { id: 1 }).unwrap();
        assert_eq!(c.gpu(2).unwrap().throughput_scale, 0.7);
        assert_eq!(c.gpu(0).unwrap().throughput_scale, 1.0);
    }

    #[test]
    fn remove_validates() {
        let mut c = Cluster::parse("2xV100").unwrap();
        assert!(c.apply_delta(ClusterDelta::GpuRemoved { id: 9 }).is_err());
        c.apply_delta(ClusterDelta::GpuRemoved { id: 0 }).unwrap();
        assert!(
            c.apply_delta(ClusterDelta::GpuRemoved { id: 0 }).is_err(),
            "cannot empty the cluster"
        );
    }

    #[test]
    fn add_to_existing_and_new_node() {
        let mut c = Cluster::parse("2xV100").unwrap();
        c.apply_delta(ClusterDelta::GpuAdded {
            node: 0,
            model: GpuModel::P100_16GB,
        })
        .unwrap();
        assert_eq!(c.num_gpus(), 3);
        assert_eq!(c.num_nodes(), 1);
        assert_eq!(c.gpu(2).unwrap().model, GpuModel::P100_16GB);
        c.apply_delta(ClusterDelta::GpuAdded {
            node: 1,
            model: GpuModel::T4,
        })
        .unwrap();
        assert_eq!(c.num_nodes(), 2);
        assert!(c
            .apply_delta(ClusterDelta::GpuAdded {
                node: 5,
                model: GpuModel::T4,
            })
            .is_err());
    }

    #[test]
    fn link_bandwidth_updates_interconnect() {
        let mut c = Cluster::parse("2x(2xV100)").unwrap();
        c.apply_delta(ClusterDelta::LinkBandwidth {
            kind: LinkKind::Network,
            bytes_per_sec: 1.25e9,
        })
        .unwrap();
        assert_eq!(c.interconnect.network_bw, 1.25e9);
        assert!(c
            .apply_delta(ClusterDelta::LinkBandwidth {
                kind: LinkKind::Local,
                bytes_per_sec: 1.0,
            })
            .is_err());
        assert!(c
            .apply_delta(ClusterDelta::LinkBandwidth {
                kind: LinkKind::Pcie,
                bytes_per_sec: -1.0,
            })
            .is_err());
    }

    #[test]
    fn degrade_rejects_bad_scales_without_mutating() {
        let mut c = Cluster::parse("2xV100").unwrap();
        let before = c.fingerprint();
        for scale in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, 0.0, -0.5, 1.5] {
            assert!(
                c.apply_delta(ClusterDelta::GpuDegraded { id: 0, scale })
                    .is_err(),
                "scale {scale} must be rejected"
            );
        }
        assert!(c
            .apply_delta(ClusterDelta::GpuDegraded { id: 7, scale: 0.5 })
            .is_err());
        assert_eq!(c.fingerprint(), before, "rejected deltas must not mutate");
    }

    #[test]
    fn restore_rejects_unknown_gpu() {
        let mut c = Cluster::parse("2xV100").unwrap();
        assert_eq!(
            c.apply_delta(ClusterDelta::GpuRestored { id: 2 }),
            Err(HardwareError::UnknownDevice(2))
        );
    }

    #[test]
    fn add_rejects_node_beyond_cluster() {
        let mut c = Cluster::parse("2x(2xV100)").unwrap();
        let before = c.fingerprint();
        assert!(c
            .apply_delta(ClusterDelta::GpuAdded {
                node: 3,
                model: GpuModel::T4,
            })
            .is_err());
        assert_eq!(c.fingerprint(), before);
    }

    #[test]
    fn link_bandwidth_rejects_non_finite_before_mutating() {
        let mut c = Cluster::parse("2x(2xV100)").unwrap();
        let before = c.interconnect.network_bw;
        for bw in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, 0.0, -1e9] {
            assert!(
                c.apply_delta(ClusterDelta::LinkBandwidth {
                    kind: LinkKind::Network,
                    bytes_per_sec: bw,
                })
                .is_err(),
                "bandwidth {bw} must be rejected"
            );
        }
        assert_eq!(c.interconnect.network_bw, before);
    }

    #[test]
    fn validate_matches_apply_delta_on_every_error_path() {
        let c = Cluster::parse("2xV100").unwrap();
        let cases = [
            ClusterDelta::GpuDegraded {
                id: 0,
                scale: f64::NAN,
            },
            ClusterDelta::GpuDegraded { id: 9, scale: 0.5 },
            ClusterDelta::GpuRestored { id: 9 },
            ClusterDelta::GpuRemoved { id: 9 },
            ClusterDelta::GpuAdded {
                node: 5,
                model: GpuModel::T4,
            },
            ClusterDelta::LinkBandwidth {
                kind: LinkKind::Local,
                bytes_per_sec: 1e9,
            },
            ClusterDelta::LinkBandwidth {
                kind: LinkKind::Pcie,
                bytes_per_sec: f64::NAN,
            },
        ];
        for delta in cases {
            let validated = delta.validate(&c);
            let mut clone = c.clone();
            assert_eq!(
                validated,
                clone.apply_delta(delta),
                "validate and apply_delta disagree on {delta:?}"
            );
            assert!(validated.is_err(), "{delta:?} should be invalid");
        }
        // Removing either GPU of a 2-GPU cluster is fine; removing the last
        // one is not.
        let mut one = Cluster::parse("1xV100").unwrap();
        let remove = ClusterDelta::GpuRemoved { id: 0 };
        assert!(remove.validate(&one).is_err());
        assert!(one.apply_delta(remove).is_err());
    }

    #[test]
    fn structural_classification() {
        assert!(ClusterDelta::GpuRemoved { id: 0 }.is_structural());
        assert!(ClusterDelta::GpuAdded {
            node: 0,
            model: GpuModel::T4
        }
        .is_structural());
        assert!(!ClusterDelta::GpuDegraded { id: 0, scale: 0.5 }.is_structural());
        assert!(!ClusterDelta::GpuRestored { id: 0 }.is_structural());
        assert!(!ClusterDelta::LinkBandwidth {
            kind: LinkKind::Pcie,
            bytes_per_sec: 1e9
        }
        .is_structural());
    }
}
