//! Operations with analytic FLOP and parameter cost functions.
//!
//! Each graph node carries an [`OpKind`] describing its semantics with enough
//! detail to compute forward FLOPs and owned parameter counts. Composite
//! kinds (e.g. [`OpKind::Lstm`], [`OpKind::MoeFfn`]) fold a structured layer
//! into one node so real models stay at hundreds — not tens of thousands — of
//! nodes, which is also how Whale's own TaskGraph abstraction avoids
//! operation-wise strategy explosion (§3.2).

/// Execution phase of an operation (§4, "TaskGraph Schedule" groups
/// operations into forward / backward / optimizer / others).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Forward computation.
    Forward,
    /// Gradient computation.
    Backward,
    /// Parameter update.
    Optimizer,
    /// Everything else (IO, bookkeeping).
    Other,
}

/// Semantic kind of an operation, with the attributes its cost depends on.
#[derive(Debug, Clone, PartialEq)]
pub enum OpKind {
    /// Graph input (a data source); no compute.
    Input,
    /// Dense matrix multiply of `[m, k] × [k, n]` (batch dims folded into
    /// `m`). `has_params` marks layer weights (vs. activation-activation
    /// matmuls inside attention).
    MatMul {
        /// Rows of the left operand (batch × sequence folded in).
        m: usize,
        /// Contraction dimension.
        k: usize,
        /// Columns of the right operand.
        n: usize,
        /// Whether the right operand is a trainable weight.
        has_params: bool,
    },
    /// 2-D convolution producing `[batch, out_c, oh, ow]`.
    Conv2d {
        /// Batch size.
        batch: usize,
        /// Input channels.
        in_c: usize,
        /// Output channels.
        out_c: usize,
        /// Kernel height and width.
        kernel: (usize, usize),
        /// Output height and width.
        out_hw: (usize, usize),
    },
    /// Embedding lookup of `tokens` rows from a `[vocab, dim]` table.
    Embedding {
        /// Vocabulary size.
        vocab: usize,
        /// Embedding dimension.
        dim: usize,
        /// Number of looked-up tokens per step.
        tokens: usize,
    },
    /// Layer normalization over `elems` activations (owns 2·`dim` params).
    LayerNorm {
        /// Activation elements normalized per step.
        elems: u64,
        /// Feature dimension (for the scale/shift parameters).
        dim: usize,
    },
    /// Softmax over `elems` activations.
    Softmax {
        /// Activation elements.
        elems: u64,
    },
    /// Generic elementwise op (add, GeLU, dropout...) over `elems`.
    Elementwise {
        /// Activation elements.
        elems: u64,
        /// FLOPs per element (1 for add, ~8 for GeLU).
        flops_per_elem: u32,
    },
    /// Pooling over an input of `elems` elements.
    Pool {
        /// Input elements.
        elems: u64,
    },
    /// Full LSTM layer unrolled over a sequence (composite).
    Lstm {
        /// Sequence length.
        seq: usize,
        /// Batch size.
        batch: usize,
        /// Input feature dimension.
        input_dim: usize,
        /// Hidden state dimension.
        hidden: usize,
    },
    /// Softmax cross-entropy loss over `[batch, classes]`.
    CrossEntropy {
        /// Batch size.
        batch: usize,
        /// Number of classes.
        classes: usize,
    },
    /// Mixture-of-Experts feed-forward layer (composite; paper Example 8).
    ///
    /// Owns `experts · 2 · hidden · intermediate` weights; each token is
    /// routed to `top_k` experts.
    MoeFfn {
        /// Tokens processed per step (batch × sequence).
        tokens: usize,
        /// Model hidden size.
        hidden: usize,
        /// Expert FFN intermediate size.
        intermediate: usize,
        /// Number of experts.
        experts: usize,
        /// Experts activated per token (2 for the paper's Top2Gating).
        top_k: usize,
    },
    /// MoE gating network: per-token routing scores over `experts`.
    Gating {
        /// Tokens per step.
        tokens: usize,
        /// Hidden size.
        hidden: usize,
        /// Number of experts.
        experts: usize,
    },
    /// Synthetic op with explicit costs (tests and micro-benchmarks).
    Synthetic {
        /// Forward FLOPs.
        flops: f64,
        /// Owned parameter count.
        params: u64,
    },
}

impl OpKind {
    /// Forward-pass FLOPs of this operation.
    pub fn forward_flops(&self) -> f64 {
        match *self {
            OpKind::Input => 0.0,
            OpKind::MatMul { m, k, n, .. } => 2.0 * m as f64 * k as f64 * n as f64,
            OpKind::Conv2d {
                batch,
                in_c,
                out_c,
                kernel: (kh, kw),
                out_hw: (oh, ow),
            } => {
                2.0 * batch as f64
                    * oh as f64
                    * ow as f64
                    * out_c as f64
                    * in_c as f64
                    * kh as f64
                    * kw as f64
            }
            // Lookup is memory-bound; model as one FLOP per fetched element.
            OpKind::Embedding { dim, tokens, .. } => dim as f64 * tokens as f64,
            OpKind::LayerNorm { elems, .. } => 8.0 * elems as f64,
            OpKind::Softmax { elems } => 5.0 * elems as f64,
            OpKind::Elementwise {
                elems,
                flops_per_elem,
            } => elems as f64 * flops_per_elem as f64,
            OpKind::Pool { elems } => elems as f64,
            // Four gates, each an input and a recurrent matmul per timestep:
            // 2·(4·(i·h + h·h)) MACs → ×2 FLOPs, times batch and seq.
            OpKind::Lstm {
                seq,
                batch,
                input_dim,
                hidden,
            } => {
                let per_step =
                    8.0 * (input_dim as f64 * hidden as f64 + hidden as f64 * hidden as f64);
                seq as f64 * batch as f64 * per_step
            }
            OpKind::CrossEntropy { batch, classes } => 5.0 * batch as f64 * classes as f64,
            // Each token visits `top_k` experts; each expert applies two
            // dense layers h→i and i→h.
            OpKind::MoeFfn {
                tokens,
                hidden,
                intermediate,
                top_k,
                ..
            } => top_k as f64 * tokens as f64 * 4.0 * hidden as f64 * intermediate as f64,
            OpKind::Gating {
                tokens,
                hidden,
                experts,
            } => 2.0 * tokens as f64 * hidden as f64 * experts as f64,
            OpKind::Synthetic { flops, .. } => flops,
        }
    }

    /// Backward-pass FLOPs (standard 2× forward estimate: gradients w.r.t.
    /// both inputs and weights).
    pub fn backward_flops(&self) -> f64 {
        match self {
            OpKind::Input => 0.0,
            _ => 2.0 * self.forward_flops(),
        }
    }

    /// Number of trainable parameters owned by this operation.
    pub fn param_count(&self) -> u64 {
        match *self {
            OpKind::MatMul {
                k, n, has_params, ..
            } if has_params => k as u64 * n as u64 + n as u64,
            OpKind::Conv2d {
                in_c,
                out_c,
                kernel: (kh, kw),
                ..
            } => in_c as u64 * out_c as u64 * kh as u64 * kw as u64 + out_c as u64,
            OpKind::Embedding { vocab, dim, .. } => vocab as u64 * dim as u64,
            OpKind::LayerNorm { dim, .. } => 2 * dim as u64,
            OpKind::Lstm {
                input_dim, hidden, ..
            } => {
                4 * (input_dim as u64 * hidden as u64
                    + hidden as u64 * hidden as u64
                    + hidden as u64)
            }
            OpKind::MoeFfn {
                hidden,
                intermediate,
                experts,
                ..
            } => {
                experts as u64
                    * (2 * hidden as u64 * intermediate as u64
                        + hidden as u64
                        + intermediate as u64)
            }
            OpKind::Gating {
                hidden, experts, ..
            } => hidden as u64 * experts as u64,
            OpKind::Synthetic { params, .. } => params,
            _ => 0,
        }
    }

    /// Whether this op carries trainable parameters.
    pub fn has_params(&self) -> bool {
        self.param_count() > 0
    }

    /// Whether the op's runtime is bounded by memory bandwidth rather than
    /// FLOPS (elementwise work, normalizations, lookups). Matmuls and
    /// convolutions at training sizes are compute-bound.
    pub fn is_bandwidth_bound(&self) -> bool {
        matches!(
            self,
            OpKind::LayerNorm { .. }
                | OpKind::Softmax { .. }
                | OpKind::Elementwise { .. }
                | OpKind::Pool { .. }
                | OpKind::Embedding { .. }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_flops_and_params() {
        let op = OpKind::MatMul {
            m: 32,
            k: 1024,
            n: 4096,
            has_params: true,
        };
        assert_eq!(op.forward_flops(), 2.0 * 32.0 * 1024.0 * 4096.0);
        assert_eq!(op.backward_flops(), 2.0 * op.forward_flops());
        assert_eq!(op.param_count(), 1024 * 4096 + 4096);

        let act = OpKind::MatMul {
            m: 32,
            k: 64,
            n: 64,
            has_params: false,
        };
        assert_eq!(act.param_count(), 0);
    }

    #[test]
    fn conv_flops_match_textbook() {
        // ResNet-50 conv1: 7×7, 3→64, output 112×112, batch 1:
        // 2·112·112·64·3·7·7 ≈ 236 MFLOPs.
        let op = OpKind::Conv2d {
            batch: 1,
            in_c: 3,
            out_c: 64,
            kernel: (7, 7),
            out_hw: (112, 112),
        };
        let expect = 2.0 * 112.0 * 112.0 * 64.0 * 3.0 * 49.0;
        assert_eq!(op.forward_flops(), expect);
        assert_eq!(op.param_count(), 3 * 64 * 49 + 64);
    }

    #[test]
    fn moe_params_hit_table1_scale() {
        // Table 1: hidden 1024, intermediate 4096, 512 experts, 24 layers
        // should give ≈100 B parameters from the expert weights alone.
        let layer = OpKind::MoeFfn {
            tokens: 1,
            hidden: 1024,
            intermediate: 4096,
            experts: 512,
            top_k: 2,
        };
        let total = 24 * layer.param_count();
        assert!(
            (95e9..110e9).contains(&(total as f64)),
            "24-layer MoE params = {total}"
        );
    }

    #[test]
    fn moe_flops_are_sparse() {
        // Compute cost is governed by top_k, not the expert count.
        let small = OpKind::MoeFfn {
            tokens: 4096,
            hidden: 1024,
            intermediate: 4096,
            experts: 512,
            top_k: 2,
        };
        let big = OpKind::MoeFfn {
            tokens: 4096,
            hidden: 1024,
            intermediate: 4096,
            experts: 960,
            top_k: 2,
        };
        assert_eq!(small.forward_flops(), big.forward_flops());
        assert!(big.param_count() > small.param_count());
    }

    #[test]
    fn lstm_costs() {
        let op = OpKind::Lstm {
            seq: 50,
            batch: 1,
            input_dim: 1024,
            hidden: 1024,
        };
        assert_eq!(op.param_count(), 4 * (1024 * 1024 * 2 + 1024));
        assert_eq!(op.forward_flops(), 50.0 * 8.0 * 2.0 * 1024.0 * 1024.0);
    }

    #[test]
    fn input_is_free() {
        assert_eq!(OpKind::Input.forward_flops(), 0.0);
        assert_eq!(OpKind::Input.backward_flops(), 0.0);
        assert!(!OpKind::Input.has_params());
    }
}

#[cfg(test)]
mod roofline_tests {
    use super::*;

    #[test]
    fn bandwidth_bound_classification() {
        assert!(OpKind::Softmax { elems: 10 }.is_bandwidth_bound());
        assert!(OpKind::LayerNorm { elems: 10, dim: 4 }.is_bandwidth_bound());
        assert!(OpKind::Elementwise {
            elems: 10,
            flops_per_elem: 1
        }
        .is_bandwidth_bound());
        assert!(!OpKind::MatMul {
            m: 2,
            k: 2,
            n: 2,
            has_params: true
        }
        .is_bandwidth_bound());
        assert!(!OpKind::Conv2d {
            batch: 1,
            in_c: 1,
            out_c: 1,
            kernel: (3, 3),
            out_hw: (4, 4)
        }
        .is_bandwidth_bound());
        assert!(!OpKind::Input.is_bandwidth_bound());
    }
}
