//! Graph statistics: the at-a-glance summary of a model's shape and cost.

use crate::graph::Graph;
use crate::op::OpKind;
use std::collections::BTreeMap;

/// Aggregated description of a model graph.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphStats {
    /// Model name.
    pub name: String,
    /// Total operation count.
    pub num_ops: usize,
    /// Count of ops per kind name.
    pub ops_by_kind: BTreeMap<String, usize>,
    /// Trainable parameters.
    pub params: u64,
    /// Forward FLOPs at the graph's build batch.
    pub forward_flops: f64,
    /// Annotated layer count.
    pub num_layers: usize,
    /// The five heaviest ops by FLOPs: `(name, flops)`.
    pub heaviest_ops: Vec<(String, f64)>,
    /// The five largest ops by parameters: `(name, params)`.
    pub largest_params: Vec<(String, u64)>,
}

fn kind_name(kind: &OpKind) -> &'static str {
    match kind {
        OpKind::Input => "Input",
        OpKind::MatMul { .. } => "MatMul",
        OpKind::Conv2d { .. } => "Conv2d",
        OpKind::Embedding { .. } => "Embedding",
        OpKind::LayerNorm { .. } => "LayerNorm",
        OpKind::Softmax { .. } => "Softmax",
        OpKind::Elementwise { .. } => "Elementwise",
        OpKind::Pool { .. } => "Pool",
        OpKind::Lstm { .. } => "Lstm",
        OpKind::CrossEntropy { .. } => "CrossEntropy",
        OpKind::MoeFfn { .. } => "MoeFfn",
        OpKind::Gating { .. } => "Gating",
        OpKind::Synthetic { .. } => "Synthetic",
    }
}

/// Compute statistics for `graph`.
pub fn graph_stats(graph: &Graph) -> GraphStats {
    let mut ops_by_kind: BTreeMap<String, usize> = BTreeMap::new();
    let mut by_flops: Vec<(String, f64)> = Vec::new();
    let mut by_params: Vec<(String, u64)> = Vec::new();
    for op in graph.ops() {
        *ops_by_kind
            .entry(kind_name(&op.kind).to_string())
            .or_insert(0) += 1;
        by_flops.push((op.name.clone(), op.forward_flops()));
        if op.param_count() > 0 {
            by_params.push((op.name.clone(), op.param_count()));
        }
    }
    by_flops.sort_by(|a, b| b.1.total_cmp(&a.1));
    by_flops.truncate(5);
    by_params.sort_by_key(|&(_, p)| std::cmp::Reverse(p));
    by_params.truncate(5);
    GraphStats {
        name: graph.name().to_string(),
        num_ops: graph.len(),
        ops_by_kind,
        params: graph.total_params(),
        forward_flops: graph.total_forward_flops(),
        num_layers: graph.per_layer_costs().len(),
        heaviest_ops: by_flops,
        largest_params: by_params,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models;

    #[test]
    fn stats_describe_bert() {
        let g = models::bert_base(4, 64).unwrap();
        let s = graph_stats(&g);
        assert_eq!(s.name, "bert");
        assert_eq!(s.num_ops, g.len());
        assert!(s.ops_by_kind["MatMul"] > 24, "many matmuls per layer");
        assert_eq!(s.ops_by_kind["Embedding"], 1);
        assert!(s.params > 100_000_000);
        assert_eq!(s.heaviest_ops.len(), 5);
        // MLM head dominates both lists.
        assert!(s.largest_params[0].0.contains("mlm_head"));
    }

    #[test]
    fn stats_find_the_dominant_fc() {
        let g = models::imagenet_100k(8).unwrap();
        let s = graph_stats(&g);
        assert!(s.largest_params[0].0.contains("fc_big"));
        assert!(s.largest_params[0].1 > 200_000_000);
    }

    #[test]
    fn moe_stats_count_expert_layers() {
        let g = models::m6_moe(models::MoeConfig::tiny(), 2).unwrap();
        let s = graph_stats(&g);
        assert_eq!(s.ops_by_kind["MoeFfn"], 2);
        assert_eq!(s.ops_by_kind["Gating"], 2);
    }
}
