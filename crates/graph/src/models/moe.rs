//! M6-MoE (Yang et al. \[45\]) — the sparse-expert model scaled to 100 B and
//! 1 T parameters in §5.2, with the exact Table 1 configurations.

use crate::builder::GraphBuilder;
use crate::graph::{Graph, GraphError};

/// M6-MoE configuration (Table 1 fields plus structural constants).
#[derive(Debug, Clone, Copy)]
pub struct MoeConfig {
    /// Encoder layers (both Table 1 models use 24).
    pub layers: usize,
    /// Hidden size (Table 1: 1024).
    pub hidden: usize,
    /// Attention heads (Table 1: 16).
    pub heads: usize,
    /// Expert FFN intermediate size (Table 1: 4096 / 21248).
    pub intermediate: usize,
    /// Number of experts (Table 1: 512 / 960).
    pub experts: usize,
    /// Experts per token (Top2Gating in Example 8).
    pub top_k: usize,
    /// Vocabulary size (shared with M6: 21128).
    pub vocab: usize,
    /// Sequence length.
    pub seq: usize,
}

impl MoeConfig {
    /// Table 1, column M6-MoE-100B.
    pub fn m6_moe_100b() -> MoeConfig {
        MoeConfig {
            layers: 24,
            hidden: 1024,
            heads: 16,
            intermediate: 4096,
            experts: 512,
            top_k: 2,
            vocab: 21128,
            seq: 512,
        }
    }

    /// Table 1, column M6-MoE-1T.
    pub fn m6_moe_1t() -> MoeConfig {
        MoeConfig {
            layers: 24,
            hidden: 1024,
            heads: 16,
            intermediate: 21248,
            experts: 960,
            top_k: 2,
            vocab: 21128,
            seq: 512,
        }
    }

    /// A depth-dominated trillion-parameter variant: the same ~1T budget as
    /// [`MoeConfig::m6_moe_1t`] spent on 1024 thin layers instead of 24 fat
    /// ones. Exercises the compile pipeline's scaling in *layer count* —
    /// graph construction, annotation, and fingerprinting all walk one op
    /// list per layer, so this member is the stress case for the interned
    /// graph core (hundreds of structurally identical blocks that intern to
    /// a handful of allocations).
    pub fn m6_moe_1t_deep() -> MoeConfig {
        MoeConfig {
            layers: 1024,
            hidden: 1024,
            heads: 16,
            intermediate: 2816,
            experts: 160,
            top_k: 2,
            vocab: 21128,
            seq: 512,
        }
    }

    /// A small configuration for tests.
    pub fn tiny() -> MoeConfig {
        MoeConfig {
            layers: 2,
            hidden: 256,
            heads: 4,
            intermediate: 512,
            experts: 8,
            top_k: 2,
            vocab: 21128,
            seq: 64,
        }
    }

    /// Closed-form parameter count (dominated by expert weights:
    /// `layers · experts · 2 · hidden · intermediate`).
    pub fn analytic_params(&self) -> u64 {
        let h = self.hidden as u64;
        let i = self.intermediate as u64;
        let e = self.experts as u64;
        let l = self.layers as u64;
        let expert = e * (2 * h * i + h + i);
        let attention = 4 * h * h + 4 * h; // QKV + output projection.
        let gating = h * e;
        let norms = 4 * h;
        l * (expert + attention + gating + norms) + self.vocab as u64 * h
    }
}

/// Build an M6-MoE training graph at the given batch size.
pub fn m6_moe(config: MoeConfig, batch: usize) -> Result<Graph, GraphError> {
    let mut b = GraphBuilder::new("m6_moe");
    let tokens = b.input("tokens", &[batch, config.seq])?;
    let mut h = b.embedding(
        "embed",
        tokens,
        config.vocab,
        config.hidden,
        batch,
        config.seq,
    )?;
    b.next_layer();
    for i in 0..config.layers {
        h = b.moe_encoder_layer(
            &format!("encoder.{i}"),
            h,
            batch,
            config.seq,
            config.hidden,
            config.heads,
            config.intermediate,
            config.experts,
            config.top_k,
        )?;
    }
    let logits = b.dense(
        "lm_head",
        h,
        batch * config.seq,
        config.hidden,
        config.vocab,
    )?;
    b.cross_entropy("loss", logits, batch * config.seq, config.vocab)?;
    Ok(b.finish())
}

/// M6-MoE-100B (Table 1) at the given batch size.
pub fn m6_moe_100b(batch: usize) -> Result<Graph, GraphError> {
    m6_moe(MoeConfig::m6_moe_100b(), batch)
}

/// M6-MoE-1T (Table 1) at the given batch size.
///
/// # Examples
///
/// ```
/// use whale_graph::models::MoeConfig;
/// // Closed form avoids building the trillion-parameter graph in doctests.
/// assert!(MoeConfig::m6_moe_1t().analytic_params() > 1_000_000_000_000);
/// ```
pub fn m6_moe_1t(batch: usize) -> Result<Graph, GraphError> {
    m6_moe(MoeConfig::m6_moe_1t(), batch)
}

/// Depth-dominated ~1T-parameter MoE (1024 thin layers; see
/// [`MoeConfig::m6_moe_1t_deep`]).
///
/// # Examples
///
/// ```
/// use whale_graph::models::MoeConfig;
/// assert!(MoeConfig::m6_moe_1t_deep().analytic_params() > 900_000_000_000);
/// ```
pub fn m6_moe_1t_deep(batch: usize) -> Result<Graph, GraphError> {
    m6_moe(MoeConfig::m6_moe_1t_deep(), batch)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_100b_parameter_count() {
        let cfg = MoeConfig::m6_moe_100b();
        let analytic = cfg.analytic_params() as f64;
        assert!((95e9..115e9).contains(&analytic), "params = {analytic}");
        // The built graph must agree with the closed form.
        let g = m6_moe(cfg, 1).unwrap();
        let built = g.total_params() as f64;
        assert!((built - analytic).abs() / analytic < 0.01);
    }

    #[test]
    fn table1_1t_parameter_count() {
        let analytic = MoeConfig::m6_moe_1t().analytic_params() as f64;
        assert!((0.95e12..1.1e12).contains(&analytic), "params = {analytic}");
    }

    #[test]
    fn deep_1t_matches_the_trillion_budget_in_depth() {
        let cfg = MoeConfig::m6_moe_1t_deep();
        let analytic = cfg.analytic_params() as f64;
        assert!((0.9e12..1.1e12).contains(&analytic), "params = {analytic}");
        assert!(cfg.layers > 40 * MoeConfig::m6_moe_1t().layers);
    }

    #[test]
    fn scaling_100b_to_1t_is_about_10x() {
        // §5.2: "We scaled model parameters by 10 times".
        let small = MoeConfig::m6_moe_100b().analytic_params() as f64;
        let big = MoeConfig::m6_moe_1t().analytic_params() as f64;
        let ratio = big / small;
        assert!((8.5..11.5).contains(&ratio), "ratio = {ratio}");
    }

    #[test]
    fn sparse_flops_grow_much_slower_than_params() {
        let g100 = m6_moe(MoeConfig::m6_moe_100b(), 1).unwrap();
        let g1t = m6_moe(MoeConfig::m6_moe_1t(), 1).unwrap();
        let param_ratio = g1t.total_params() as f64 / g100.total_params() as f64;
        let flop_ratio = g1t.total_forward_flops() / g100.total_forward_flops();
        assert!(param_ratio > 8.0);
        // FLOPs only grow with the intermediate size (~5×), not experts.
        assert!(
            flop_ratio < param_ratio * 0.75,
            "flops {flop_ratio} vs params {param_ratio}"
        );
    }

    #[test]
    fn tiny_builds_quickly() {
        let g = m6_moe(MoeConfig::tiny(), 2).unwrap();
        assert!(g.len() < 100);
        assert!(g.total_params() < 50_000_000);
    }
}
