//! ResNet-50 (He et al. \[16\]) — the DP heterogeneity workload of Fig. 17 and
//! the feature extractor of the paper's motivating hybrid example (Fig. 4).

use crate::builder::GraphBuilder;
use crate::graph::{Graph, GraphError, OpId};
use crate::op::OpKind;
use crate::tensor::TensorMeta;

/// Bottleneck-block counts and channel plan of ResNet-50.
const STAGES: [(usize, usize, usize, usize); 4] = [
    // (blocks, mid_channels, out_channels, spatial)
    (3, 64, 256, 56),
    (4, 128, 512, 28),
    (6, 256, 1024, 14),
    (3, 512, 2048, 7),
];

/// Build the ResNet-50 feature extractor (everything up to global pooling),
/// returning the builder, the final feature op, and the feature dimension.
fn features(batch: usize) -> Result<(GraphBuilder, OpId, usize), GraphError> {
    let mut b = GraphBuilder::new("resnet50");
    let x = b.input("image", &[batch, 3, 224, 224])?;
    let mut h = b.conv2d("conv1", x, batch, 3, 64, (7, 7), (112, 112))?;
    h = b.op(
        "pool1",
        OpKind::Pool {
            elems: (batch * 64 * 112 * 112) as u64,
        },
        vec![h],
        TensorMeta::f32(&[batch, 64, 56, 56]),
    )?;
    b.next_layer();

    let mut in_c = 64;
    for (stage_idx, &(blocks, mid, out_c, hw)) in STAGES.iter().enumerate() {
        for blk in 0..blocks {
            let prefix = format!("stage{}/block{}", stage_idx + 1, blk);
            let identity = h;
            let c1 = b.conv2d(
                &format!("{prefix}/conv1"),
                h,
                batch,
                in_c,
                mid,
                (1, 1),
                (hw, hw),
            )?;
            let c2 = b.conv2d(
                &format!("{prefix}/conv2"),
                c1,
                batch,
                mid,
                mid,
                (3, 3),
                (hw, hw),
            )?;
            let c3 = b.conv2d(
                &format!("{prefix}/conv3"),
                c2,
                batch,
                mid,
                out_c,
                (1, 1),
                (hw, hw),
            )?;
            // Projection shortcut on the first block of each stage.
            let skip = if blk == 0 {
                b.conv2d(
                    &format!("{prefix}/proj"),
                    identity,
                    batch,
                    in_c,
                    out_c,
                    (1, 1),
                    (hw, hw),
                )?
            } else {
                identity
            };
            h = b.elementwise(&format!("{prefix}/add_relu"), vec![c3, skip], 2)?;
            in_c = out_c;
            b.next_layer();
        }
    }
    // Global average pooling to [batch, 2048].
    let pooled = b.op(
        "gap",
        OpKind::Pool {
            elems: (batch * 2048 * 7 * 7) as u64,
        },
        vec![h],
        TensorMeta::f32(&[batch, 2048]),
    )?;
    Ok((b, pooled, 2048))
}

/// ResNet-50 with the standard 1000-class ImageNet head.
///
/// # Examples
///
/// ```
/// let g = whale_graph::models::resnet50(32).unwrap();
/// // ~25.5 M parameters.
/// assert!((24e6..28e6).contains(&(g.total_params() as f64)));
/// ```
pub fn resnet50(batch: usize) -> Result<Graph, GraphError> {
    let (mut b, feat, dim) = features(batch)?;
    let logits = b.dense("fc", feat, batch, dim, 1000)?;
    b.cross_entropy("loss", logits, batch, 1000)?;
    Ok(b.finish())
}

/// The paper's §1 motivating model: ResNet-50 features + a 100,000-class
/// fully-connected classifier (~782 MB of FC weights vs ~90 MB of features).
pub fn imagenet_100k(batch: usize) -> Result<Graph, GraphError> {
    imagenet_big_fc(batch, 100_000)
}

/// Large-classification variant with a configurable class count.
pub fn imagenet_big_fc(batch: usize, classes: usize) -> Result<Graph, GraphError> {
    let (mut b, feat, dim) = features(batch)?;
    b.next_layer();
    let logits = b.dense("fc_big", feat, batch, dim, classes)?;
    let probs = b.softmax("softmax", logits)?;
    b.cross_entropy("loss", probs, batch, classes)?;
    Ok(b.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::CostProfile;

    #[test]
    fn resnet50_parameter_count() {
        let g = resnet50(1).unwrap();
        let p = g.total_params() as f64;
        // Published ResNet-50: 25.56 M (we fold BN into conv biases, so we
        // land slightly under).
        assert!((24e6..27e6).contains(&p), "params = {p}");
    }

    #[test]
    fn resnet50_flops_per_image() {
        let g = resnet50(1).unwrap();
        let f = g.total_forward_flops();
        // Published: ~4.1 GFLOPs per 224×224 image (multiply-accumulate
        // counted as 2 FLOPs → ~8.2; conventions vary, accept 6–10 G).
        assert!((6e9..10e9).contains(&f), "flops = {f}");
    }

    #[test]
    fn hundred_k_fc_dominates_parameters() {
        let g = imagenet_100k(1).unwrap();
        let fc = g
            .ops()
            .iter()
            .find(|op| op.name == "fc_big")
            .unwrap()
            .param_count();
        // §1: FC ≈ 782 MB = ~196 M params ≥ 85% of total.
        assert!(fc as f64 * 4.0 > 750e6, "fc bytes = {}", fc * 4);
        assert!(fc as f64 / g.total_params() as f64 > 0.85);
    }

    #[test]
    fn flops_scale_with_batch() {
        let p1 = CostProfile::from_graph(&resnet50(1).unwrap(), 1);
        let p8 = CostProfile::from_graph(&resnet50(8).unwrap(), 8);
        let ratio = p8.forward_flops_per_sample / p1.forward_flops_per_sample;
        assert!((ratio - 1.0).abs() < 1e-6, "per-sample flops invariant");
    }

    #[test]
    fn layer_annotation_covers_blocks() {
        let g = resnet50(1).unwrap();
        // conv1 + 16 bottlenecks + head ⇒ ≥ 17 annotated layers.
        assert!(g.per_layer_costs().len() >= 17);
    }
}
