//! Vision Transformer (Dosovitskiy et al. \[12\], Swin \[24\]) — the vision
//! side of the scaling trend the paper's introduction motivates.

use crate::builder::GraphBuilder;
use crate::graph::{Graph, GraphError};

/// ViT configuration.
#[derive(Debug, Clone, Copy)]
pub struct VitConfig {
    /// Encoder layers.
    pub layers: usize,
    /// Hidden size.
    pub hidden: usize,
    /// Attention heads.
    pub heads: usize,
    /// MLP intermediate size.
    pub intermediate: usize,
    /// Square patch edge, pixels.
    pub patch: usize,
    /// Square input image edge, pixels.
    pub image: usize,
    /// Classification classes.
    pub classes: usize,
}

impl VitConfig {
    /// ViT-Base/16: 12 layers, hidden 768 (~86 M params).
    pub fn base16() -> VitConfig {
        VitConfig {
            layers: 12,
            hidden: 768,
            heads: 12,
            intermediate: 3072,
            patch: 16,
            image: 224,
            classes: 1000,
        }
    }

    /// ViT-Large/16: 24 layers, hidden 1024 (~304 M params).
    pub fn large16() -> VitConfig {
        VitConfig {
            layers: 24,
            hidden: 1024,
            heads: 16,
            intermediate: 4096,
            patch: 16,
            image: 224,
            classes: 1000,
        }
    }

    /// Patch tokens per image (plus one class token).
    pub fn seq_len(&self) -> usize {
        let per_side = self.image / self.patch;
        per_side * per_side + 1
    }
}

/// Build a ViT classification training graph.
pub fn vit(config: VitConfig, batch: usize) -> Result<Graph, GraphError> {
    let mut b = GraphBuilder::new("vit");
    let seq = config.seq_len();
    let patch_dim = config.patch * config.patch * 3;
    let x = b.input("image_patches", &[batch, seq, patch_dim])?;
    let mut h = b.dense("patch_proj", x, batch * seq, patch_dim, config.hidden)?;
    b.next_layer();
    for i in 0..config.layers {
        h = b.encoder_layer(
            &format!("encoder.{i}"),
            h,
            batch,
            seq,
            config.hidden,
            config.heads,
            config.intermediate,
        )?;
    }
    let logits = b.dense("head", h, batch, config.hidden, config.classes)?;
    b.cross_entropy("loss", logits, batch, config.classes)?;
    Ok(b.finish())
}

/// ViT-Large/16 at the given batch size.
///
/// # Examples
///
/// ```
/// let g = whale_graph::models::vit_large(8).unwrap();
/// assert!((g.total_params() as f64) > 250e6);
/// ```
pub fn vit_large(batch: usize) -> Result<Graph, GraphError> {
    vit(VitConfig::large16(), batch)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vit_large_parameter_count() {
        let p = vit_large(1).unwrap().total_params() as f64;
        // Published ViT-L/16: ~304 M.
        assert!((270e6..330e6).contains(&p), "params = {p}");
    }

    #[test]
    fn vit_base_parameter_count() {
        let p = vit(VitConfig::base16(), 1).unwrap().total_params() as f64;
        // Published ViT-B/16: ~86 M.
        assert!((75e6..95e6).contains(&p), "params = {p}");
    }

    #[test]
    fn sequence_length_from_patches() {
        assert_eq!(VitConfig::base16().seq_len(), 197);
        let big = VitConfig {
            image: 384,
            ..VitConfig::base16()
        };
        assert_eq!(big.seq_len(), 577);
    }
}
