//! Model zoo: every workload the paper's evaluation uses, built from the
//! graph IR with analytically correct FLOP and parameter counts.
//!
//! | Model | Paper use | Builder |
//! |---|---|---|
//! | ResNet-50 | Fig. 17 (DP hetero) | [`resnet50`] |
//! | ResNet-50 + 100k-class FC | §1 / Fig. 4 motivation | [`imagenet_100k`] |
//! | BERT-Large | Figs. 17–18 | [`bert_large`] |
//! | GNMT | Fig. 17 | [`fn@gnmt`] |
//! | T5-Large | Fig. 18 | [`t5_large`] |
//! | M6-10B | Fig. 14 (pipeline+DP scaling) | [`m6_10b`] |
//! | M6-MoE-100B / 1T | Table 1, Figs. 15–16 | [`m6_moe_100b`], [`m6_moe_1t`] |
//! | ViT-Base/Large | §1 vision-scaling motivation [12, 24] | [`vit_large`] |
//! | GPT-2 XL / GPT-3-13B | §1 dense-LM scaling motivation [8, 28] | [`gpt2_xl`] |

pub mod bert;
pub mod gnmt;
pub mod gpt;
pub mod m6;
pub mod moe;
pub mod resnet;
pub mod t5;
pub mod vit;

pub use bert::{bert, bert_base, bert_large, BertConfig};
pub use gnmt::{gnmt, gnmt_with_config, GnmtConfig};
pub use gpt::{gpt, gpt2_xl, GptConfig};
pub use m6::{m6, m6_10b, M6Config};
pub use moe::{m6_moe, m6_moe_100b, m6_moe_1t, m6_moe_1t_deep, MoeConfig};
pub use resnet::{imagenet_100k, imagenet_big_fc, resnet50};
pub use t5::{t5, t5_large, T5Config};
pub use vit::{vit, vit_large, VitConfig};
