//! GNMT (Wu et al. \[42\]) — the recurrent seq2seq workload of Fig. 17.

use crate::builder::GraphBuilder;
use crate::graph::{Graph, GraphError};

/// GNMT configuration (defaults follow the published 8+8-layer system).
#[derive(Debug, Clone, Copy)]
pub struct GnmtConfig {
    /// Encoder LSTM layers.
    pub encoder_layers: usize,
    /// Decoder LSTM layers.
    pub decoder_layers: usize,
    /// LSTM hidden size.
    pub hidden: usize,
    /// Vocabulary size (shared source/target WPM).
    pub vocab: usize,
}

impl GnmtConfig {
    /// The published GNMT: 8 encoder + 8 decoder layers, hidden 1024,
    /// 32 k WPM vocabulary.
    pub fn standard() -> GnmtConfig {
        GnmtConfig {
            encoder_layers: 8,
            decoder_layers: 8,
            hidden: 1024,
            vocab: 32_000,
        }
    }
}

/// Build a GNMT training graph at the given batch and sequence length.
pub fn gnmt_with_config(config: GnmtConfig, batch: usize, seq: usize) -> Result<Graph, GraphError> {
    let mut b = GraphBuilder::new("gnmt");
    let h = config.hidden;

    let src = b.input("src_tokens", &[batch, seq])?;
    let mut enc = b.embedding("src_embed", src, config.vocab, h, batch, seq)?;
    b.next_layer();
    for i in 0..config.encoder_layers {
        enc = b.lstm(&format!("encoder.{i}"), enc, seq, batch, h, h)?;
    }

    let tgt = b.input("tgt_tokens", &[batch, seq])?;
    let mut dec = b.embedding("tgt_embed", tgt, config.vocab, h, batch, seq)?;
    b.next_layer();
    for i in 0..config.decoder_layers {
        dec = b.lstm(&format!("decoder.{i}"), dec, seq, batch, h, h)?;
        if i == 0 {
            // Bahdanau-style attention over encoder states after the first
            // decoder layer.
            let scores = b.matmul(
                "attention/scores",
                dec,
                enc,
                batch * seq,
                h,
                seq,
                &[batch, seq, seq],
            )?;
            let probs = b.softmax("attention/probs", scores)?;
            let ctx = b.matmul(
                "attention/context",
                probs,
                enc,
                batch * seq,
                seq,
                h,
                &[batch, seq, h],
            )?;
            dec = b.elementwise("attention/combine", vec![dec, ctx], 1)?;
        }
    }
    let logits = b.dense("projection", dec, batch * seq, h, config.vocab)?;
    b.cross_entropy("loss", logits, batch * seq, config.vocab)?;
    Ok(b.finish())
}

/// Standard GNMT at the given batch and sequence length.
///
/// # Examples
///
/// ```
/// let g = whale_graph::models::gnmt(16, 50).unwrap();
/// assert!((g.total_params() as f64) > 200e6);
/// ```
pub fn gnmt(batch: usize, seq: usize) -> Result<Graph, GraphError> {
    gnmt_with_config(GnmtConfig::standard(), batch, seq)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gnmt_parameter_count() {
        let g = gnmt(1, 50).unwrap();
        let p = g.total_params() as f64;
        // Two 32 k embeddings (66 M) + 16 LSTM layers (~134 M) + 33 M
        // projection ≈ 230 M; published GNMT is ~278 M with its deeper
        // bidirectional encoder. Accept 200–300 M.
        assert!((200e6..300e6).contains(&p), "params = {p}");
    }

    #[test]
    fn flops_scale_with_sequence() {
        let short = gnmt(4, 25).unwrap().total_forward_flops();
        let long = gnmt(4, 50).unwrap().total_forward_flops();
        let ratio = long / short;
        assert!(ratio > 1.8 && ratio < 2.6, "ratio = {ratio}");
    }

    #[test]
    fn has_encoder_and_decoder_layers() {
        let g = gnmt(2, 30).unwrap();
        let enc = g
            .ops()
            .iter()
            .filter(|o| o.name.starts_with("encoder."))
            .count();
        let dec = g
            .ops()
            .iter()
            .filter(|o| o.name.starts_with("decoder."))
            .count();
        assert_eq!(enc, 8);
        assert_eq!(dec, 8);
    }
}
