//! T5 (Raffel et al. \[30\] / Xue et al. \[44\]) — the encoder-decoder workload
//! of the pipeline heterogeneity experiment (Fig. 18).

use crate::builder::GraphBuilder;
use crate::graph::{Graph, GraphError};

/// T5 configuration.
#[derive(Debug, Clone, Copy)]
pub struct T5Config {
    /// Encoder layers.
    pub encoder_layers: usize,
    /// Decoder layers.
    pub decoder_layers: usize,
    /// Hidden size.
    pub hidden: usize,
    /// Attention heads.
    pub heads: usize,
    /// FFN intermediate size.
    pub intermediate: usize,
    /// SentencePiece vocabulary size.
    pub vocab: usize,
}

impl T5Config {
    /// T5-Large: 24+24 layers, hidden 1024 (~770 M params).
    pub fn large() -> T5Config {
        T5Config {
            encoder_layers: 24,
            decoder_layers: 24,
            hidden: 1024,
            heads: 16,
            intermediate: 4096,
            vocab: 32_128,
        }
    }

    /// T5-Base: 12+12 layers, hidden 768 (~220 M params).
    pub fn base() -> T5Config {
        T5Config {
            encoder_layers: 12,
            decoder_layers: 12,
            hidden: 768,
            heads: 12,
            intermediate: 3072,
            vocab: 32_128,
        }
    }
}

/// Build a T5 training graph.
pub fn t5(
    config: T5Config,
    batch: usize,
    src_seq: usize,
    tgt_seq: usize,
) -> Result<Graph, GraphError> {
    let mut b = GraphBuilder::new("t5");
    let src = b.input("src_tokens", &[batch, src_seq])?;
    let mut enc = b.embedding("embed", src, config.vocab, config.hidden, batch, src_seq)?;
    b.next_layer();
    for i in 0..config.encoder_layers {
        enc = b.encoder_layer(
            &format!("encoder.{i}"),
            enc,
            batch,
            src_seq,
            config.hidden,
            config.heads,
            config.intermediate,
        )?;
    }
    let tgt = b.input("tgt_tokens", &[batch, tgt_seq])?;
    let mut dec = b.embedding(
        "tgt_embed",
        tgt,
        config.vocab,
        config.hidden,
        batch,
        tgt_seq,
    )?;
    b.next_layer();
    for i in 0..config.decoder_layers {
        dec = b.decoder_layer(
            &format!("decoder.{i}"),
            dec,
            enc,
            batch,
            tgt_seq,
            src_seq,
            config.hidden,
            config.heads,
            config.intermediate,
        )?;
    }
    let logits = b.dense("lm_head", dec, batch * tgt_seq, config.hidden, config.vocab)?;
    b.cross_entropy("loss", logits, batch * tgt_seq, config.vocab)?;
    Ok(b.finish())
}

/// T5-Large at the given batch and sequence lengths.
///
/// # Examples
///
/// ```
/// let g = whale_graph::models::t5_large(4, 128, 128).unwrap();
/// assert!((g.total_params() as f64) > 600e6);
/// ```
pub fn t5_large(batch: usize, src_seq: usize, tgt_seq: usize) -> Result<Graph, GraphError> {
    t5(T5Config::large(), batch, src_seq, tgt_seq)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn t5_large_parameter_count() {
        let g = t5_large(1, 128, 128).unwrap();
        let p = g.total_params() as f64;
        // Published T5-Large: ~770 M. Accept 650–850 M.
        assert!((650e6..850e6).contains(&p), "params = {p}");
    }

    #[test]
    fn encoder_and_decoder_layer_counts() {
        let g = t5(T5Config::base(), 1, 64, 64).unwrap();
        // embedding + 12 enc + embedding + 12 dec + head.
        assert!(g.per_layer_costs().len() >= 25);
    }

    #[test]
    fn decoder_heavier_than_encoder_per_layer() {
        // Cross-attention adds parameters to decoder layers.
        let g = t5(T5Config::base(), 1, 64, 64).unwrap();
        let enc0: u64 = g
            .ops()
            .iter()
            .filter(|o| o.name.starts_with("encoder.0/"))
            .map(|o| o.param_count())
            .sum();
        let dec0: u64 = g
            .ops()
            .iter()
            .filter(|o| o.name.starts_with("decoder.0/"))
            .map(|o| o.param_count())
            .sum();
        assert!(dec0 > enc0);
    }
}
