//! M6 (Lin et al. \[23\]) — the Chinese multimodal pretrainer the paper scales.
//!
//! M6-10B (§5.1) takes a visual input of length 16 and a linguistic input of
//! length 512 over a 21128-token vocabulary, with 24 encoder and 24 decoder
//! layers. The paper does not publish the hidden size; we use hidden 4096
//! with FFN 12288 (3×), which lands the dense model at ≈10 B parameters as
//! §5.1 states.

use crate::builder::GraphBuilder;
use crate::graph::{Graph, GraphError};

/// Dense M6 configuration.
#[derive(Debug, Clone, Copy)]
pub struct M6Config {
    /// Encoder layers.
    pub encoder_layers: usize,
    /// Decoder layers.
    pub decoder_layers: usize,
    /// Hidden size.
    pub hidden: usize,
    /// Attention heads.
    pub heads: usize,
    /// FFN intermediate size.
    pub intermediate: usize,
    /// Vocabulary size (§5.1: 21128).
    pub vocab: usize,
    /// Visual-token sequence length (§5.1: 16).
    pub visual_len: usize,
    /// Linguistic sequence length (§5.1: 512).
    pub text_len: usize,
}

impl M6Config {
    /// M6-10B: 24+24 layers at hidden 4096 ⇒ ≈10 B parameters.
    pub fn m6_10b() -> M6Config {
        M6Config {
            encoder_layers: 24,
            decoder_layers: 24,
            hidden: 4096,
            heads: 32,
            intermediate: 12288,
            vocab: 21128,
            visual_len: 16,
            text_len: 512,
        }
    }

    /// A scaled-down M6 for fast tests (two layers, hidden 512).
    pub fn tiny() -> M6Config {
        M6Config {
            encoder_layers: 2,
            decoder_layers: 2,
            hidden: 512,
            heads: 8,
            intermediate: 2048,
            vocab: 21128,
            visual_len: 16,
            text_len: 64,
        }
    }

    /// Combined encoder sequence length (visual + linguistic tokens).
    pub fn encoder_seq(&self) -> usize {
        self.visual_len + self.text_len
    }
}

/// Build an M6 training graph at the given batch size.
pub fn m6(config: M6Config, batch: usize) -> Result<Graph, GraphError> {
    let mut b = GraphBuilder::new("m6");
    let seq = config.encoder_seq();
    let h = config.hidden;

    // Visual patches enter via a linear projection; text via the embedding.
    let image = b.input("image_patches", &[batch, config.visual_len, 2048])?;
    let vis = b.dense("visual_proj", image, batch * config.visual_len, 2048, h)?;
    let text = b.input("text_tokens", &[batch, config.text_len])?;
    let txt = b.embedding("text_embed", text, config.vocab, h, batch, config.text_len)?;
    // Concatenate modalities along the sequence dimension.
    let mut enc = b.op(
        "concat_modalities",
        crate::op::OpKind::Elementwise {
            elems: (batch * seq * h) as u64,
            flops_per_elem: 1,
        },
        vec![vis, txt],
        crate::tensor::TensorMeta::f32(&[batch, seq, h]),
    )?;
    b.next_layer();

    for i in 0..config.encoder_layers {
        enc = b.encoder_layer(
            &format!("encoder.{i}"),
            enc,
            batch,
            seq,
            h,
            config.heads,
            config.intermediate,
        )?;
    }
    let tgt = b.input("target_tokens", &[batch, config.text_len])?;
    let mut dec = b.embedding("tgt_embed", tgt, config.vocab, h, batch, config.text_len)?;
    b.next_layer();
    for i in 0..config.decoder_layers {
        dec = b.decoder_layer(
            &format!("decoder.{i}"),
            dec,
            enc,
            batch,
            config.text_len,
            seq,
            h,
            config.heads,
            config.intermediate,
        )?;
    }
    let logits = b.dense("lm_head", dec, batch * config.text_len, h, config.vocab)?;
    b.cross_entropy("loss", logits, batch * config.text_len, config.vocab)?;
    Ok(b.finish())
}

/// M6-10B at the given batch size (§5.1's Fig. 14 workload).
///
/// # Examples
///
/// ```
/// let g = whale_graph::models::m6_10b(1).unwrap();
/// assert!((g.total_params() as f64) > 9e9);
/// ```
pub fn m6_10b(batch: usize) -> Result<Graph, GraphError> {
    m6(M6Config::m6_10b(), batch)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn m6_10b_hits_ten_billion_parameters() {
        let g = m6_10b(1).unwrap();
        let p = g.total_params() as f64;
        assert!((9e9..11.5e9).contains(&p), "params = {p}");
    }

    #[test]
    fn tiny_m6_builds_fast_and_small() {
        let g = m6(M6Config::tiny(), 2).unwrap();
        assert!(g.len() < 200);
        assert!(g.total_params() < 100_000_000);
    }

    #[test]
    fn layers_cover_encoder_and_decoder() {
        let g = m6(M6Config::tiny(), 1).unwrap();
        // input layer + 2 encoder + embed layer + 2 decoder (+ head).
        assert!(g.per_layer_costs().len() >= 5);
    }

    #[test]
    fn multimodal_inputs_present() {
        let g = m6(M6Config::tiny(), 1).unwrap();
        let names: Vec<&str> = g.ops().iter().map(|o| o.name.as_str()).collect();
        assert!(names.contains(&"image_patches"));
        assert!(names.contains(&"text_tokens"));
        assert!(names.contains(&"target_tokens"));
    }
}
