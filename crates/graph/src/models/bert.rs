//! BERT (Devlin et al. \[10\]) — used in both heterogeneity experiments
//! (Fig. 17 data parallelism, Fig. 18 pipeline parallelism).

use crate::builder::GraphBuilder;
use crate::graph::{Graph, GraphError};

/// Transformer-encoder configuration.
#[derive(Debug, Clone, Copy)]
pub struct BertConfig {
    /// Number of encoder layers.
    pub layers: usize,
    /// Hidden size.
    pub hidden: usize,
    /// Attention heads.
    pub heads: usize,
    /// FFN intermediate size.
    pub intermediate: usize,
    /// WordPiece vocabulary size.
    pub vocab: usize,
}

impl BertConfig {
    /// BERT-Large: 24 layers, hidden 1024, 16 heads (~340 M params).
    pub fn large() -> BertConfig {
        BertConfig {
            layers: 24,
            hidden: 1024,
            heads: 16,
            intermediate: 4096,
            vocab: 30522,
        }
    }

    /// BERT-Base: 12 layers, hidden 768, 12 heads (~110 M params).
    pub fn base() -> BertConfig {
        BertConfig {
            layers: 12,
            hidden: 768,
            heads: 12,
            intermediate: 3072,
            vocab: 30522,
        }
    }
}

/// Build a BERT masked-LM training graph.
pub fn bert(config: BertConfig, batch: usize, seq: usize) -> Result<Graph, GraphError> {
    let mut b = GraphBuilder::new("bert");
    let tokens = b.input("tokens", &[batch, seq])?;
    let mut h = b.embedding("embed", tokens, config.vocab, config.hidden, batch, seq)?;
    b.next_layer();
    for i in 0..config.layers {
        h = b.encoder_layer(
            &format!("encoder.{i}"),
            h,
            batch,
            seq,
            config.hidden,
            config.heads,
            config.intermediate,
        )?;
    }
    let logits = b.dense("mlm_head", h, batch * seq, config.hidden, config.vocab)?;
    b.cross_entropy("loss", logits, batch * seq, config.vocab)?;
    Ok(b.finish())
}

/// BERT-Large at the given batch and sequence length.
///
/// # Examples
///
/// ```
/// let g = whale_graph::models::bert_large(8, 128).unwrap();
/// assert!((g.total_params() as f64) > 300e6);
/// ```
pub fn bert_large(batch: usize, seq: usize) -> Result<Graph, GraphError> {
    bert(BertConfig::large(), batch, seq)
}

/// BERT-Base at the given batch and sequence length.
pub fn bert_base(batch: usize, seq: usize) -> Result<Graph, GraphError> {
    bert(BertConfig::base(), batch, seq)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bert_large_parameter_count() {
        let g = bert_large(1, 128).unwrap();
        let p = g.total_params() as f64;
        // Published: ~340 M (335 M without pooler). Accept 300–370 M (the
        // MLM head shares/adds the vocab projection depending on convention).
        assert!((300e6..380e6).contains(&p), "params = {p}");
    }

    #[test]
    fn bert_base_is_about_a_third_of_large() {
        let large = bert_large(1, 128).unwrap().total_params() as f64;
        let base = bert_base(1, 128).unwrap().total_params() as f64;
        let ratio = large / base;
        assert!((2.0..4.0).contains(&ratio), "ratio = {ratio}");
    }

    #[test]
    fn layer_structure_matches_config() {
        let g = bert(BertConfig::base(), 2, 64).unwrap();
        // embedding layer + 12 encoder layers + head layer annotations.
        assert!(g.per_layer_costs().len() >= 13);
    }

    #[test]
    fn attention_flops_grow_quadratically_with_seq() {
        let short = bert_base(1, 128).unwrap().total_forward_flops();
        let long = bert_base(1, 512).unwrap().total_forward_flops();
        // 4× sequence: linear terms grow 4×, score terms 16×; total in
        // between.
        let ratio = long / short;
        assert!(ratio > 4.0 && ratio < 16.0, "ratio = {ratio}");
    }
}
