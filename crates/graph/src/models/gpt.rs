//! GPT-style decoder-only language models (Brown et al. \[8\]) — the dense
//! giant-model family whose trillion-parameter variant \[28\] motivates
//! hybrid parallelism.

use crate::builder::GraphBuilder;
use crate::graph::{Graph, GraphError};

/// Decoder-only transformer configuration.
#[derive(Debug, Clone, Copy)]
pub struct GptConfig {
    /// Decoder layers.
    pub layers: usize,
    /// Hidden size.
    pub hidden: usize,
    /// Attention heads.
    pub heads: usize,
    /// FFN intermediate size (4× hidden for the GPT family).
    pub intermediate: usize,
    /// BPE vocabulary size.
    pub vocab: usize,
}

impl GptConfig {
    /// GPT-2 XL: 48 layers, hidden 1600 (~1.5 B params).
    pub fn gpt2_xl() -> GptConfig {
        GptConfig {
            layers: 48,
            hidden: 1600,
            heads: 25,
            intermediate: 6400,
            vocab: 50257,
        }
    }

    /// GPT-3 13B: 40 layers, hidden 5140.
    pub fn gpt3_13b() -> GptConfig {
        GptConfig {
            layers: 40,
            hidden: 5140,
            heads: 40,
            intermediate: 4 * 5140,
            vocab: 50257,
        }
    }

    /// Closed-form parameter estimate: `12·L·h² + V·h`.
    pub fn analytic_params(&self) -> u64 {
        let h = self.hidden as u64;
        let l = self.layers as u64;
        12 * l * h * h + self.vocab as u64 * h
    }
}

/// Build a GPT causal-LM training graph.
pub fn gpt(config: GptConfig, batch: usize, seq: usize) -> Result<Graph, GraphError> {
    let mut b = GraphBuilder::new("gpt");
    let tokens = b.input("tokens", &[batch, seq])?;
    let mut h = b.embedding("embed", tokens, config.vocab, config.hidden, batch, seq)?;
    b.next_layer();
    for i in 0..config.layers {
        // A decoder block without cross-attention is structurally an
        // encoder block with causal masking (same cost).
        h = b.encoder_layer(
            &format!("decoder.{i}"),
            h,
            batch,
            seq,
            config.hidden,
            config.heads,
            config.intermediate,
        )?;
    }
    let logits = b.dense("lm_head", h, batch * seq, config.hidden, config.vocab)?;
    b.cross_entropy("loss", logits, batch * seq, config.vocab)?;
    Ok(b.finish())
}

/// GPT-2 XL at the given batch and sequence length.
///
/// # Examples
///
/// ```
/// let g = whale_graph::models::gpt2_xl(1, 256).unwrap();
/// assert!((g.total_params() as f64) > 1.3e9);
/// ```
pub fn gpt2_xl(batch: usize, seq: usize) -> Result<Graph, GraphError> {
    gpt(GptConfig::gpt2_xl(), batch, seq)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gpt2_xl_parameter_count() {
        let g = gpt2_xl(1, 128).unwrap();
        let p = g.total_params() as f64;
        // Published GPT-2 XL: 1.56 B.
        assert!((1.3e9..1.8e9).contains(&p), "params = {p}");
        // Built graph tracks the closed form within 10%.
        let analytic = GptConfig::gpt2_xl().analytic_params() as f64;
        assert!((p - analytic).abs() / analytic < 0.1);
    }

    #[test]
    fn gpt3_13b_analytic() {
        let p = GptConfig::gpt3_13b().analytic_params() as f64;
        assert!((11e9..15e9).contains(&p), "params = {p}");
    }

    #[test]
    fn flops_dominated_by_matmuls() {
        // Forward FLOPs per token ≈ 2·params for a dense LM.
        let cfg = GptConfig::gpt2_xl();
        let seq = 128;
        let g = gpt(cfg, 1, seq).unwrap();
        let per_token = g.total_forward_flops() / seq as f64;
        let two_n = 2.0 * cfg.analytic_params() as f64;
        let ratio = per_token / two_n;
        assert!((0.8..1.6).contains(&ratio), "ratio = {ratio}");
    }
}
