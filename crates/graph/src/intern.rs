//! Block interner: structural sharing of repeated layer blocks.
//!
//! Deep transformer and MoE graphs are overwhelmingly made of identical
//! layer blocks — the same ~11 ops per layer, differing only in the name
//! prefix (`encoder.3/…` vs `encoder.4/…`), the id offset, and the layer
//! index. This module stores one [`BlockTemplate`] per *distinct* block
//! shape in a process-wide interner, so a thousand-layer model holds a
//! thousand `Arc` pointers to one allocation instead of a thousand op-list
//! copies, and per-block derived state (the template fingerprint, the
//! block-local adjacency) is computed once per distinct block rather than
//! once per layer.
//!
//! Interning is content-addressed with exact-equality verification, so two
//! `Arc<InternedBlock>`s are pointer-equal **iff** their templates are
//! equal — pointer comparison is a sound (not merely probabilistic) equality
//! fast path for graphs and blocks.

use std::collections::HashMap;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex, OnceLock};

use whale_fp::{Fingerprint, Fingerprinter};

use crate::fingerprint::{push_kind, push_phase, push_tensor};
use crate::graph::OpId;
use crate::op::{OpKind, Phase};
use crate::tensor::TensorMeta;

/// One input edge of a [`TemplateOp`], relative to the block.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TemplateInput {
    /// Produced by the op at this offset within the same block.
    Internal(usize),
    /// Produced outside the block; resolved through
    /// [`BlockInst::externals`] at this slot.
    External(usize),
}

/// One op of a block, with everything instantiation-dependent factored out:
/// the name keeps only the suffix after the instantiation prefix, inputs are
/// block-relative, and the layer index is relative to the instantiation's
/// layer base.
#[derive(Debug, Clone, PartialEq)]
pub struct TemplateOp {
    /// Name suffix; the instantiated name is `prefix + suffix`.
    pub suffix: String,
    /// Semantic kind with cost attributes.
    pub kind: OpKind,
    /// Block-relative data dependencies.
    pub inputs: Vec<TemplateInput>,
    /// Output tensor metadata (shapes are part of the template).
    pub output: TensorMeta,
    /// Execution phase.
    pub phase: Phase,
    /// Layer index minus the instantiation's layer base (`None` for ops
    /// without a layer index).
    pub layer_rel: Option<usize>,
}

/// The shape of one block: a straight-line run of template ops plus the
/// number of external input slots it consumes.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockTemplate {
    /// Ops in block-local topological order.
    pub ops: Vec<TemplateOp>,
    /// Number of distinct external producers referenced by
    /// [`TemplateInput::External`] slots.
    pub external_slots: usize,
}

/// Block-local adjacency, memoized once per distinct block. Edge lists are
/// recorded in the exact order a flat scan of the instantiated ops would
/// produce (ascending consumer offset, duplicate inputs preserved), so a
/// graph-level adjacency assembled from these lists is identical to one
/// rebuilt from the flat op list.
#[derive(Debug)]
pub struct BlockAdj {
    /// Consumer offsets per producer offset.
    pub internal_consumers: Vec<Vec<usize>>,
    /// Consumer offsets per external slot.
    pub external_consumers: Vec<Vec<usize>>,
    /// Whether the op at each offset is consumed within the block.
    pub consumed: Vec<bool>,
    /// Offsets of template ops with no inputs at all.
    pub sources_rel: Vec<usize>,
}

impl BlockAdj {
    fn build(template: &BlockTemplate) -> BlockAdj {
        counters::BLOCK_ADJ_BUILDS.fetch_add(1, Ordering::Relaxed);
        let n = template.ops.len();
        let mut internal_consumers = vec![Vec::new(); n];
        let mut external_consumers = vec![Vec::new(); template.external_slots];
        let mut consumed = vec![false; n];
        let mut sources_rel = Vec::new();
        for (off, op) in template.ops.iter().enumerate() {
            if op.inputs.is_empty() {
                sources_rel.push(off);
            }
            for input in &op.inputs {
                match *input {
                    TemplateInput::Internal(p) => {
                        internal_consumers[p].push(off);
                        consumed[p] = true;
                    }
                    TemplateInput::External(s) => external_consumers[s].push(off),
                }
            }
        }
        BlockAdj {
            internal_consumers,
            external_consumers,
            consumed,
            sources_rel,
        }
    }
}

/// A deduplicated block: the template plus memoized derived state. Obtained
/// only through [`intern_block`] / [`intern_block_with`], which guarantee
/// one allocation per distinct template process-wide.
#[derive(Debug)]
pub struct InternedBlock {
    template: BlockTemplate,
    fingerprint: Fingerprint,
    adj: OnceLock<BlockAdj>,
}

impl InternedBlock {
    /// The shared template.
    pub fn template(&self) -> &BlockTemplate {
        &self.template
    }

    /// Content fingerprint of the template (the interner key). Computed
    /// once per distinct block, no matter how many layers share it.
    pub fn fingerprint(&self) -> Fingerprint {
        self.fingerprint
    }

    /// Block-local adjacency, built on first use and shared by every graph
    /// that contains this block.
    pub fn adjacency(&self) -> &BlockAdj {
        self.adj.get_or_init(|| BlockAdj::build(&self.template))
    }
}

/// External producers of one block instance. Inline up to four ids (the
/// common arities: encoder layers take one, decoder layers two) so
/// instantiating a block allocates nothing; wider blocks spill to a `Vec`.
#[derive(Debug, Clone)]
pub enum Externals {
    /// `buf[..len]` holds the producers; the tail is padding.
    Inline {
        /// Number of live entries in `buf`.
        len: u8,
        /// Inline storage.
        buf: [OpId; 4],
    },
    /// Spilled storage for blocks with more than four externals.
    Heap(Vec<OpId>),
}

impl Externals {
    /// An empty list (inline, no allocation).
    pub fn new() -> Externals {
        Externals::Inline {
            len: 0,
            buf: [OpId(0); 4],
        }
    }

    /// Append a producer, spilling to the heap past the inline capacity.
    pub fn push(&mut self, id: OpId) {
        match self {
            Externals::Inline { len, buf } => {
                if (*len as usize) < buf.len() {
                    buf[*len as usize] = id;
                    *len += 1;
                } else {
                    let mut v = Vec::with_capacity(buf.len() * 2);
                    v.extend_from_slice(buf);
                    v.push(id);
                    *self = Externals::Heap(v);
                }
            }
            Externals::Heap(v) => v.push(id),
        }
    }

    /// The live entries.
    pub fn as_slice(&self) -> &[OpId] {
        match self {
            Externals::Inline { len, buf } => &buf[..*len as usize],
            Externals::Heap(v) => v,
        }
    }
}

impl Default for Externals {
    fn default() -> Externals {
        Externals::new()
    }
}

impl std::ops::Deref for Externals {
    type Target = [OpId];
    fn deref(&self) -> &[OpId] {
        self.as_slice()
    }
}

impl PartialEq for Externals {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl FromIterator<OpId> for Externals {
    fn from_iter<I: IntoIterator<Item = OpId>>(iter: I) -> Externals {
        let mut e = Externals::new();
        for id in iter {
            e.push(id);
        }
        e
    }
}

/// One placement of an interned block inside a graph: everything the
/// template factored out. The instance owns no text — the name prefix is
/// recovered by slicing `prefix_len` bytes off the instantiated first op's
/// name in the graph's flat storage — so creating one allocates nothing
/// (inline externals included). Cloning a graph (or splicing one edited
/// block) copies the untouched instances, memoized fingerprint
/// contribution included, so per-instance memos survive across graph
/// versions.
#[derive(Debug, Clone)]
pub struct BlockInst {
    /// The shared block.
    pub block: Arc<InternedBlock>,
    /// Byte length of the name prefix prepended to every template suffix
    /// (the prefix text is `flat[base].name[..prefix_len]`).
    pub prefix_len: usize,
    /// Absolute op id of the block's first op.
    pub base: usize,
    /// Layer index the template's `layer_rel` values are relative to.
    pub layer_base: usize,
    /// Absolute producers for the template's external slots.
    pub externals: Externals,
    fp_sum: OnceLock<u64>,
}

impl BlockInst {
    /// Instantiate `block` at a position in some graph.
    pub fn new(
        block: Arc<InternedBlock>,
        prefix_len: usize,
        base: usize,
        layer_base: usize,
        externals: Externals,
    ) -> BlockInst {
        assert_eq!(
            externals.len(),
            block.template().external_slots,
            "external arity must match the template"
        );
        BlockInst {
            block,
            prefix_len,
            base,
            layer_base,
            externals,
            fp_sum: OnceLock::new(),
        }
    }

    /// Number of ops this instance contributes to the graph.
    pub fn len(&self) -> usize {
        self.block.template().ops.len()
    }

    /// Whether the block is empty (never true for interned blocks in
    /// practice; present for API completeness).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The memoized fingerprint contribution, if [`BlockInst::content_sum`]
    /// has run (race-free memoization probe for tests and diagnostics).
    pub fn content_sum_cached(&self) -> Option<u64> {
        self.fp_sum.get().copied()
    }

    /// This instance's contribution to the graph fingerprint: the wrapping
    /// sum of the content hashes of its instantiated ops, bit-identical to
    /// hashing the materialized `Op`s, computed without materializing them
    /// and memoized for the lifetime of the instance. `prefix` is the
    /// instantiation's name prefix (`flat[base].name[..prefix_len]` — the
    /// instance owns no text).
    pub fn content_sum(&self, prefix: &str) -> u64 {
        debug_assert_eq!(prefix.len(), self.prefix_len);
        *self.fp_sum.get_or_init(|| {
            counters::INST_SUM_COMPUTES.fetch_add(1, Ordering::Relaxed);
            let mut sum = 0u64;
            for (off, t) in self.block.template().ops.iter().enumerate() {
                let mut fp = Fingerprinter::new("graph-op");
                fp.push_usize(self.base + off);
                // push_str(prefix + suffix) without building the String.
                fp.push_len(prefix.len() + t.suffix.len());
                fp.push_bytes(prefix.as_bytes());
                fp.push_bytes(t.suffix.as_bytes());
                push_kind(&mut fp, &t.kind);
                fp.push_len(t.inputs.len());
                for input in &t.inputs {
                    let abs = match *input {
                        TemplateInput::Internal(p) => self.base + p,
                        TemplateInput::External(s) => self.externals[s].0,
                    };
                    fp.push_usize(abs);
                }
                push_tensor(&mut fp, &t.output);
                push_phase(&mut fp, t.phase);
                match t.layer_rel {
                    Some(rel) => fp.push_bool(true).push_usize(self.layer_base + rel),
                    None => fp.push_bool(false),
                };
                sum = sum.wrapping_add(fp.finish().0);
            }
            sum
        })
    }
}

/// Content fingerprint of a template (instantiation-independent).
pub fn template_fingerprint(template: &BlockTemplate) -> Fingerprint {
    let mut fp = Fingerprinter::new("block-template");
    fp.push_len(template.ops.len());
    fp.push_usize(template.external_slots);
    for op in &template.ops {
        fp.push_str(&op.suffix);
        push_kind(&mut fp, &op.kind);
        fp.push_len(op.inputs.len());
        for input in &op.inputs {
            match *input {
                TemplateInput::Internal(p) => fp.push_tag(0).push_usize(p),
                TemplateInput::External(s) => fp.push_tag(1).push_usize(s),
            };
        }
        push_tensor(&mut fp, &op.output);
        push_phase(&mut fp, op.phase);
        match op.layer_rel {
            Some(rel) => fp.push_bool(true).push_usize(rel),
            None => fp.push_bool(false),
        };
    }
    fp.finish()
}

/// The process-wide template table: fingerprint buckets with exact-equality
/// verification inside each bucket (a hash collision degrades to a second
/// entry, never to a wrong share).
fn table() -> &'static Mutex<HashMap<u64, Vec<Arc<InternedBlock>>>> {
    static TABLE: OnceLock<Mutex<HashMap<u64, Vec<Arc<InternedBlock>>>>> = OnceLock::new();
    TABLE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Intern a template: returns the canonical `Arc` for its content, either
/// an existing allocation (the duplicate template is dropped) or a new one.
pub fn intern_block(template: BlockTemplate) -> Arc<InternedBlock> {
    let fingerprint = template_fingerprint(&template);
    let mut map = table().lock().unwrap_or_else(|p| p.into_inner());
    let bucket = map.entry(fingerprint.0).or_default();
    for block in bucket.iter() {
        if block.template == template {
            counters::INTERN_HITS.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(block);
        }
    }
    counters::INTERN_MISSES.fetch_add(1, Ordering::Relaxed);
    let block = Arc::new(InternedBlock {
        template,
        fingerprint,
        adj: OnceLock::new(),
    });
    bucket.push(Arc::clone(&block));
    block
}

/// Intern by externally computed key, building the template only on a
/// miss. This is the builder's allocation-free hot path: on a hit (every
/// layer after a model's first), recorded ops are verified against the
/// canonical template in place and no [`BlockTemplate`] is ever built.
///
/// Contract: `fingerprint` must equal [`template_fingerprint`] of the
/// template `build` returns, and `matches` must hold exactly for templates
/// equal to it — both are debug-asserted on the miss path, preserving the
/// pointer-equality ⟺ template-equality invariant.
pub fn intern_block_with(
    fingerprint: Fingerprint,
    matches: impl Fn(&BlockTemplate) -> bool,
    build: impl FnOnce() -> BlockTemplate,
) -> Arc<InternedBlock> {
    let mut map = table().lock().unwrap_or_else(|p| p.into_inner());
    let bucket = map.entry(fingerprint.0).or_default();
    for block in bucket.iter() {
        if matches(&block.template) {
            counters::INTERN_HITS.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(block);
        }
    }
    counters::INTERN_MISSES.fetch_add(1, Ordering::Relaxed);
    let template = build();
    debug_assert_eq!(
        template_fingerprint(&template),
        fingerprint,
        "key must be the built template's fingerprint"
    );
    debug_assert!(matches(&template), "matcher must accept the built template");
    let block = Arc::new(InternedBlock {
        template,
        fingerprint,
        adj: OnceLock::new(),
    });
    bucket.push(Arc::clone(&block));
    block
}

/// Number of distinct templates currently interned (diagnostics; the table
/// is append-only for the process lifetime, like a string interner).
pub fn interned_block_count() -> usize {
    table()
        .lock()
        .unwrap_or_else(|p| p.into_inner())
        .values()
        .map(|b| b.len())
        .sum()
}

/// Monotonic counters instrumenting the interner, used by incrementality
/// tests and the compile benchmark to assert work *didn't* happen (blocks
/// re-fingerprinted, adjacency rebuilt) rather than timing it.
pub mod counters {
    use std::sync::atomic::{AtomicU64, Ordering};

    pub(super) static INTERN_HITS: AtomicU64 = AtomicU64::new(0);
    pub(super) static INTERN_MISSES: AtomicU64 = AtomicU64::new(0);
    pub(super) static BLOCK_ADJ_BUILDS: AtomicU64 = AtomicU64::new(0);
    pub(super) static INST_SUM_COMPUTES: AtomicU64 = AtomicU64::new(0);

    /// Interner lookups that returned an existing allocation.
    pub fn intern_hits() -> u64 {
        INTERN_HITS.load(Ordering::Relaxed)
    }

    /// Interner lookups that created a new allocation.
    pub fn intern_misses() -> u64 {
        INTERN_MISSES.load(Ordering::Relaxed)
    }

    /// Block-local adjacency builds (once per distinct block on first use).
    pub fn block_adj_builds() -> u64 {
        BLOCK_ADJ_BUILDS.load(Ordering::Relaxed)
    }

    /// Per-instance fingerprint-contribution computations (once per block
    /// instance; cache hits on re-fingerprinting don't count).
    pub fn inst_sum_computes() -> u64 {
        INST_SUM_COMPUTES.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_template(elems: u64) -> BlockTemplate {
        BlockTemplate {
            ops: vec![
                TemplateOp {
                    suffix: "/a".into(),
                    kind: OpKind::Elementwise {
                        elems,
                        flops_per_elem: 1,
                    },
                    inputs: vec![TemplateInput::External(0)],
                    output: TensorMeta::f32(&[elems as usize]),
                    phase: Phase::Forward,
                    layer_rel: Some(0),
                },
                TemplateOp {
                    suffix: "/b".into(),
                    kind: OpKind::Elementwise {
                        elems,
                        flops_per_elem: 1,
                    },
                    inputs: vec![TemplateInput::Internal(0), TemplateInput::Internal(0)],
                    output: TensorMeta::f32(&[elems as usize]),
                    phase: Phase::Forward,
                    layer_rel: Some(0),
                },
            ],
            external_slots: 1,
        }
    }

    #[test]
    fn interning_dedups_to_pointer_equality() {
        let a = intern_block(toy_template(1717));
        let b = intern_block(toy_template(1717));
        let c = intern_block(toy_template(1718));
        assert!(Arc::ptr_eq(&a, &b));
        assert!(!Arc::ptr_eq(&a, &c));
        assert_ne!(a.fingerprint(), c.fingerprint());
    }

    #[test]
    fn block_adjacency_preserves_duplicate_edges_and_order() {
        let block = intern_block(toy_template(1719));
        let adj = block.adjacency();
        // `/b` consumes `/a` twice, mirroring a flat scan.
        assert_eq!(adj.internal_consumers[0], vec![1, 1]);
        assert!(adj.internal_consumers[1].is_empty());
        assert_eq!(adj.external_consumers[0], vec![0]);
        assert_eq!(adj.consumed, vec![true, false]);
        assert!(adj.sources_rel.is_empty());
        // The memo is shared: the same slices come back.
        assert!(std::ptr::eq(adj, block.adjacency()));
    }

    #[test]
    fn content_sum_is_memoized_per_instance() {
        let block = intern_block(toy_template(1720));
        let inst = BlockInst::new(block, 1, 1, 0, [OpId(0)].into_iter().collect());
        assert_eq!(inst.content_sum_cached(), None);
        let first = inst.content_sum("x");
        assert_eq!(inst.content_sum_cached(), Some(first));
        assert_eq!(inst.content_sum("x"), first);
    }

    #[test]
    fn externals_inline_then_spill() {
        let mut e = Externals::new();
        assert!(e.is_empty());
        for i in 0..6 {
            e.push(OpId(i));
            assert!(matches!(&e, Externals::Inline { .. }) == (i < 4));
        }
        assert_eq!(e.as_slice(), (0..6).map(OpId).collect::<Vec<_>>());
        let same: Externals = (0..6).map(OpId).collect();
        assert_eq!(e, same);
        let inline: Externals = (0..3).map(OpId).collect();
        assert_ne!(e, inline);
        // Equality ignores representation padding.
        let a: Externals = [OpId(7)].into_iter().collect();
        let mut b = Externals::new();
        b.push(OpId(9));
        assert_ne!(a, b);
    }
}
