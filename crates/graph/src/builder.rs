//! Convenience builder for assembling model graphs.
//!
//! Provides the layer-level vocabulary the model zoo is written in: dense
//! layers, convolutions, transformer encoder/decoder blocks, LSTM layers, and
//! MoE blocks. Every helper stamps the current layer index onto the ops it
//! emits so stage partitioning and checkpointing can see layer boundaries.

use crate::graph::{Graph, GraphError, OpId};
use crate::op::{OpKind, Phase};
use crate::tensor::TensorMeta;

/// Stateful graph builder.
#[derive(Debug)]
pub struct GraphBuilder {
    graph: Graph,
    layer: usize,
}

impl GraphBuilder {
    /// Start building a graph with the given name.
    pub fn new(name: impl Into<String>) -> GraphBuilder {
        GraphBuilder {
            graph: Graph::new(name),
            layer: 0,
        }
    }

    /// Set the layer index stamped on subsequently added ops.
    pub fn set_layer(&mut self, layer: usize) {
        self.layer = layer;
    }

    /// Advance to the next layer index and return it.
    pub fn next_layer(&mut self) -> usize {
        self.layer += 1;
        self.layer
    }

    /// Current layer index.
    pub fn layer(&self) -> usize {
        self.layer
    }

    /// Number of ops created so far (used by scoped annotation to attribute
    /// op ranges to scopes).
    pub fn graph_len(&self) -> usize {
        self.graph.len()
    }

    /// Finish and return the graph.
    pub fn finish(self) -> Graph {
        self.graph
    }

    /// Raw op insertion at the current layer.
    pub fn op(
        &mut self,
        name: impl Into<String>,
        kind: OpKind,
        inputs: Vec<OpId>,
        output: TensorMeta,
    ) -> Result<OpId, GraphError> {
        self.graph
            .add_op(name, kind, inputs, output, Phase::Forward, Some(self.layer))
    }

    /// Graph input of the given shape.
    pub fn input(&mut self, name: &str, dims: &[usize]) -> Result<OpId, GraphError> {
        self.op(name, OpKind::Input, vec![], TensorMeta::f32(dims))
    }

    /// Dense (fully connected) layer: `[rows, in_dim] → [rows, out_dim]`.
    pub fn dense(
        &mut self,
        name: &str,
        input: OpId,
        rows: usize,
        in_dim: usize,
        out_dim: usize,
    ) -> Result<OpId, GraphError> {
        self.op(
            name,
            OpKind::MatMul {
                m: rows,
                k: in_dim,
                n: out_dim,
                has_params: true,
            },
            vec![input],
            TensorMeta::f32(&[rows, out_dim]),
        )
    }

    /// Activation-by-activation matmul (no parameters), e.g. attention
    /// scores.
    #[allow(clippy::too_many_arguments)]
    pub fn matmul(
        &mut self,
        name: &str,
        a: OpId,
        b: OpId,
        m: usize,
        k: usize,
        n: usize,
        out_dims: &[usize],
    ) -> Result<OpId, GraphError> {
        self.op(
            name,
            OpKind::MatMul {
                m,
                k,
                n,
                has_params: false,
            },
            vec![a, b],
            TensorMeta::f32(out_dims),
        )
    }

    /// Layer normalization preserving the input shape.
    pub fn layer_norm(&mut self, name: &str, input: OpId, dim: usize) -> Result<OpId, GraphError> {
        let meta = self.graph.op(input)?.output.clone();
        let elems = meta.shape.num_elements();
        self.op(name, OpKind::LayerNorm { elems, dim }, vec![input], meta)
    }

    /// Softmax preserving the input shape.
    pub fn softmax(&mut self, name: &str, input: OpId) -> Result<OpId, GraphError> {
        let meta = self.graph.op(input)?.output.clone();
        let elems = meta.shape.num_elements();
        self.op(name, OpKind::Softmax { elems }, vec![input], meta)
    }

    /// Elementwise op (GeLU ≈ 8 FLOPs/elem, add = 1) preserving shape of the
    /// first input.
    pub fn elementwise(
        &mut self,
        name: &str,
        inputs: Vec<OpId>,
        flops_per_elem: u32,
    ) -> Result<OpId, GraphError> {
        let meta = self.graph.op(inputs[0])?.output.clone();
        let elems = meta.shape.num_elements();
        self.op(
            name,
            OpKind::Elementwise {
                elems,
                flops_per_elem,
            },
            inputs,
            meta,
        )
    }

    /// 2-D convolution (+ folded batch-norm parameters via the bias term).
    #[allow(clippy::too_many_arguments)]
    pub fn conv2d(
        &mut self,
        name: &str,
        input: OpId,
        batch: usize,
        in_c: usize,
        out_c: usize,
        kernel: (usize, usize),
        out_hw: (usize, usize),
    ) -> Result<OpId, GraphError> {
        self.op(
            name,
            OpKind::Conv2d {
                batch,
                in_c,
                out_c,
                kernel,
                out_hw,
            },
            vec![input],
            TensorMeta::f32(&[batch, out_c, out_hw.0, out_hw.1]),
        )
    }

    /// Token embedding lookup: `[batch, seq] → [batch, seq, dim]`.
    pub fn embedding(
        &mut self,
        name: &str,
        input: OpId,
        vocab: usize,
        dim: usize,
        batch: usize,
        seq: usize,
    ) -> Result<OpId, GraphError> {
        self.op(
            name,
            OpKind::Embedding {
                vocab,
                dim,
                tokens: batch * seq,
            },
            vec![input],
            TensorMeta::f32(&[batch, seq, dim]),
        )
    }

    /// Multi-head self-attention block (QKV projection, scores, context,
    /// output projection) with a residual add and layer norm.
    #[allow(clippy::too_many_arguments)]
    pub fn self_attention(
        &mut self,
        prefix: &str,
        input: OpId,
        batch: usize,
        seq: usize,
        hidden: usize,
        heads: usize,
    ) -> Result<OpId, GraphError> {
        let rows = batch * seq;
        let head_dim = hidden / heads;
        let qkv = self.dense(&format!("{prefix}/qkv"), input, rows, hidden, 3 * hidden)?;
        // Scores: per head [seq, head_dim] × [head_dim, seq].
        let scores = self.matmul(
            &format!("{prefix}/scores"),
            qkv,
            qkv,
            batch * heads * seq,
            head_dim,
            seq,
            &[batch, heads, seq, seq],
        )?;
        let probs = self.softmax(&format!("{prefix}/probs"), scores)?;
        let ctx = self.matmul(
            &format!("{prefix}/context"),
            probs,
            qkv,
            batch * heads * seq,
            seq,
            head_dim,
            &[batch, seq, hidden],
        )?;
        let proj = self.dense(&format!("{prefix}/out_proj"), ctx, rows, hidden, hidden)?;
        let residual = self.elementwise(&format!("{prefix}/residual"), vec![proj, input], 1)?;
        self.layer_norm(&format!("{prefix}/ln"), residual, hidden)
    }

    /// Cross-attention block: queries from `input`, keys/values from
    /// `memory` of length `mem_seq`.
    #[allow(clippy::too_many_arguments)]
    pub fn cross_attention(
        &mut self,
        prefix: &str,
        input: OpId,
        memory: OpId,
        batch: usize,
        seq: usize,
        mem_seq: usize,
        hidden: usize,
        heads: usize,
    ) -> Result<OpId, GraphError> {
        let rows = batch * seq;
        let head_dim = hidden / heads;
        let q = self.dense(&format!("{prefix}/q"), input, rows, hidden, hidden)?;
        let kv = self.dense(
            &format!("{prefix}/kv"),
            memory,
            batch * mem_seq,
            hidden,
            2 * hidden,
        )?;
        let scores = self.matmul(
            &format!("{prefix}/scores"),
            q,
            kv,
            batch * heads * seq,
            head_dim,
            mem_seq,
            &[batch, heads, seq, mem_seq],
        )?;
        let probs = self.softmax(&format!("{prefix}/probs"), scores)?;
        let ctx = self.matmul(
            &format!("{prefix}/context"),
            probs,
            kv,
            batch * heads * seq,
            mem_seq,
            head_dim,
            &[batch, seq, hidden],
        )?;
        let proj = self.dense(&format!("{prefix}/out_proj"), ctx, rows, hidden, hidden)?;
        let residual = self.elementwise(&format!("{prefix}/residual"), vec![proj, input], 1)?;
        self.layer_norm(&format!("{prefix}/ln"), residual, hidden)
    }

    /// Position-wise feed-forward block with GeLU, residual, and layer norm.
    pub fn ffn(
        &mut self,
        prefix: &str,
        input: OpId,
        rows: usize,
        hidden: usize,
        intermediate: usize,
    ) -> Result<OpId, GraphError> {
        let up = self.dense(&format!("{prefix}/up"), input, rows, hidden, intermediate)?;
        let act = self.elementwise(&format!("{prefix}/gelu"), vec![up], 8)?;
        let down = self.dense(&format!("{prefix}/down"), act, rows, intermediate, hidden)?;
        let residual = self.elementwise(&format!("{prefix}/residual"), vec![down, input], 1)?;
        self.layer_norm(&format!("{prefix}/ln"), residual, hidden)
    }

    /// Full transformer encoder layer (self-attention + FFN) as one model
    /// layer; bumps the layer counter.
    #[allow(clippy::too_many_arguments)]
    pub fn encoder_layer(
        &mut self,
        prefix: &str,
        input: OpId,
        batch: usize,
        seq: usize,
        hidden: usize,
        heads: usize,
        intermediate: usize,
    ) -> Result<OpId, GraphError> {
        let attn =
            self.self_attention(&format!("{prefix}/attn"), input, batch, seq, hidden, heads)?;
        let out = self.ffn(
            &format!("{prefix}/ffn"),
            attn,
            batch * seq,
            hidden,
            intermediate,
        )?;
        self.next_layer();
        Ok(out)
    }

    /// Full transformer decoder layer (self-attention + cross-attention +
    /// FFN); bumps the layer counter.
    #[allow(clippy::too_many_arguments)]
    pub fn decoder_layer(
        &mut self,
        prefix: &str,
        input: OpId,
        memory: OpId,
        batch: usize,
        seq: usize,
        mem_seq: usize,
        hidden: usize,
        heads: usize,
        intermediate: usize,
    ) -> Result<OpId, GraphError> {
        let self_attn = self.self_attention(
            &format!("{prefix}/self_attn"),
            input,
            batch,
            seq,
            hidden,
            heads,
        )?;
        let cross = self.cross_attention(
            &format!("{prefix}/cross_attn"),
            self_attn,
            memory,
            batch,
            seq,
            mem_seq,
            hidden,
            heads,
        )?;
        let out = self.ffn(
            &format!("{prefix}/ffn"),
            cross,
            batch * seq,
            hidden,
            intermediate,
        )?;
        self.next_layer();
        Ok(out)
    }

    /// MoE encoder layer: self-attention followed by gating + expert FFN
    /// (paper Fig. 15 / Example 8); bumps the layer counter.
    #[allow(clippy::too_many_arguments)]
    pub fn moe_encoder_layer(
        &mut self,
        prefix: &str,
        input: OpId,
        batch: usize,
        seq: usize,
        hidden: usize,
        heads: usize,
        intermediate: usize,
        experts: usize,
        top_k: usize,
    ) -> Result<OpId, GraphError> {
        let attn =
            self.self_attention(&format!("{prefix}/attn"), input, batch, seq, hidden, heads)?;
        let tokens = batch * seq;
        let gates = self.op(
            format!("{prefix}/gating"),
            OpKind::Gating {
                tokens,
                hidden,
                experts,
            },
            vec![attn],
            TensorMeta::f32(&[batch, seq, experts]),
        )?;
        let moe = self.op(
            format!("{prefix}/moe_ffn"),
            OpKind::MoeFfn {
                tokens,
                hidden,
                intermediate,
                experts,
                top_k,
            },
            vec![attn, gates],
            TensorMeta::f32(&[batch, seq, hidden]),
        )?;
        let residual = self.elementwise(&format!("{prefix}/residual"), vec![moe, attn], 1)?;
        let out = self.layer_norm(&format!("{prefix}/ln"), residual, hidden)?;
        self.next_layer();
        Ok(out)
    }

    /// LSTM layer as a single composite op; bumps the layer counter.
    pub fn lstm(
        &mut self,
        name: &str,
        input: OpId,
        seq: usize,
        batch: usize,
        input_dim: usize,
        hidden: usize,
    ) -> Result<OpId, GraphError> {
        let id = self.op(
            name,
            OpKind::Lstm {
                seq,
                batch,
                input_dim,
                hidden,
            },
            vec![input],
            TensorMeta::f32(&[batch, seq, hidden]),
        )?;
        self.next_layer();
        Ok(id)
    }

    /// Softmax cross-entropy loss over `[batch, classes]`, producing a
    /// scalar-per-batch loss tensor.
    pub fn cross_entropy(
        &mut self,
        name: &str,
        logits: OpId,
        batch: usize,
        classes: usize,
    ) -> Result<OpId, GraphError> {
        self.op(
            name,
            OpKind::CrossEntropy { batch, classes },
            vec![logits],
            TensorMeta::f32(&[batch]),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::CostProfile;

    #[test]
    fn encoder_layer_parameter_count() {
        // One transformer layer at h=1024, ff=4096:
        // attn: qkv 1024·3072 + out 1024·1024 (+biases) ≈ 4.20 M
        // ffn: 2·1024·4096 (+biases) ≈ 8.39 M
        // layer norms: 2·2·1024.
        let mut b = GraphBuilder::new("one_layer");
        let x = b.input("x", &[4, 128, 1024]).unwrap();
        b.encoder_layer("enc0", x, 4, 128, 1024, 16, 4096).unwrap();
        let g = b.finish();
        let params = g.total_params() as f64;
        assert!(
            (12.5e6..13.0e6).contains(&params),
            "per-layer params = {params}"
        );
    }

    #[test]
    fn decoder_layer_has_more_params_than_encoder() {
        let mut b = GraphBuilder::new("enc");
        let x = b.input("x", &[2, 64, 512]).unwrap();
        b.encoder_layer("e", x, 2, 64, 512, 8, 2048).unwrap();
        let enc = b.finish().total_params();

        let mut b = GraphBuilder::new("dec");
        let x = b.input("x", &[2, 64, 512]).unwrap();
        let m = b.input("m", &[2, 64, 512]).unwrap();
        b.decoder_layer("d", x, m, 2, 64, 64, 512, 8, 2048).unwrap();
        let dec = b.finish().total_params();
        assert!(dec > enc);
    }

    #[test]
    fn layer_counter_advances() {
        let mut b = GraphBuilder::new("layers");
        let x = b.input("x", &[2, 16, 64]).unwrap();
        assert_eq!(b.layer(), 0);
        let h = b.encoder_layer("l0", x, 2, 16, 64, 4, 256).unwrap();
        assert_eq!(b.layer(), 1);
        b.encoder_layer("l1", h, 2, 16, 64, 4, 256).unwrap();
        assert_eq!(b.layer(), 2);
        let g = b.finish();
        assert_eq!(g.per_layer_costs().len(), 2);
    }

    #[test]
    fn moe_layer_profile() {
        let mut b = GraphBuilder::new("moe");
        let x = b.input("x", &[2, 64, 1024]).unwrap();
        b.moe_encoder_layer("l0", x, 2, 64, 1024, 16, 4096, 512, 2)
            .unwrap();
        let g = b.finish();
        let p = CostProfile::from_graph(&g, 2);
        // Expert weights dominate: 512·2·1024·4096 ≈ 4.3 B params.
        assert!(p.param_count > 4_000_000_000);
        // But FLOPs stay modest (top-2 routing).
        assert!(p.forward_flops(2) < 1e13);
    }
}
