//! Convenience builder for assembling model graphs.
//!
//! Provides the layer-level vocabulary the model zoo is written in: dense
//! layers, convolutions, transformer encoder/decoder blocks, LSTM layers, and
//! MoE blocks. Every helper stamps the current layer index onto the ops it
//! emits so stage partitioning and checkpointing can see layer boundaries.
//!
//! The builder is also where block interning happens: the layer-level
//! helpers ([`GraphBuilder::encoder_layer`], [`GraphBuilder::decoder_layer`],
//! [`GraphBuilder::moe_encoder_layer`], [`GraphBuilder::lstm`]) bracket the
//! ops they emit into a block, factor out the instantiation-specific parts
//! (name prefix, id base, layer index, external inputs), and intern the
//! remaining template (see [`crate::intern`]). A 48-layer BERT therefore
//! carries one encoder-block allocation plus 48 lightweight instantiations,
//! and downstream fingerprinting/equality/adjacency reuse per-block memos.
//! Ops emitted outside the layer helpers (embeddings, heads, losses) stay
//! literal. Interning is purely representational — the finished graph's op
//! list, fingerprint, and produced plans are identical either way, which
//! `with_interning(name, false)` (and the process-wide
//! [`set_default_interning`] switch used by benchmarks) lets tests verify.

use std::sync::atomic::{AtomicBool, Ordering};

use whale_fp::{Fingerprint, Fingerprinter};

use crate::fingerprint::{push_kind, push_phase, push_tensor};
use crate::graph::{Graph, GraphError, Op, OpId, Segment};
use crate::intern::{
    intern_block_with, BlockInst, BlockTemplate, Externals, TemplateInput, TemplateOp,
};
use crate::op::{OpKind, Phase};
use crate::tensor::TensorMeta;

/// Whether builders constructed via [`GraphBuilder::new`] intern layer
/// blocks. On by default; benchmarks flip it to build the uninterned
/// baseline arm through the unmodified model-zoo constructors.
static DEFAULT_INTERNING: AtomicBool = AtomicBool::new(true);

/// Set the process-wide default for [`GraphBuilder::new`] and return the
/// previous value. Representation-only: graphs built either way are
/// semantically equal and fingerprint-identical.
pub fn set_default_interning(on: bool) -> bool {
    DEFAULT_INTERNING.swap(on, Ordering::SeqCst)
}

/// An open block bracket: the range `ops[base..]` is being recorded for
/// interning. The ops themselves live in the builder's single flat list —
/// bracketing adds no per-op storage, not even for the prefix: only its
/// byte length is kept, and the text is read back from the first recorded
/// op's name (which must start with it).
#[derive(Debug)]
struct OpenBlock {
    prefix_len: usize,
    base: usize,
    layer_base: usize,
}

/// Stateful graph builder.
#[derive(Debug)]
pub struct GraphBuilder {
    name: String,
    interning: bool,
    layer: usize,
    /// Every op, recorded exactly once in id order. This becomes the
    /// finished graph's flat storage verbatim; segments only reference
    /// ranges of it, so interning costs no op copies.
    ops: Vec<Op>,
    segments: Vec<Segment>,
    /// Start of the literal run not yet flushed into a segment.
    lit_start: usize,
    block: Option<OpenBlock>,
    /// Block nesting depth; only the outermost bracket interns.
    depth: usize,
}

impl GraphBuilder {
    /// Start building a graph with the given name.
    pub fn new(name: impl Into<String>) -> GraphBuilder {
        GraphBuilder::with_interning(name, DEFAULT_INTERNING.load(Ordering::SeqCst))
    }

    /// Start building with block interning explicitly on or off.
    pub fn with_interning(name: impl Into<String>, interning: bool) -> GraphBuilder {
        GraphBuilder {
            name: name.into(),
            interning,
            layer: 0,
            ops: Vec::new(),
            segments: Vec::new(),
            lit_start: 0,
            block: None,
            depth: 0,
        }
    }

    /// Set the layer index stamped on subsequently added ops.
    pub fn set_layer(&mut self, layer: usize) {
        self.layer = layer;
    }

    /// Advance to the next layer index and return it.
    pub fn next_layer(&mut self) -> usize {
        self.layer += 1;
        self.layer
    }

    /// Current layer index.
    pub fn layer(&self) -> usize {
        self.layer
    }

    /// Number of ops created so far (used by scoped annotation to attribute
    /// op ranges to scopes).
    pub fn graph_len(&self) -> usize {
        self.ops.len()
    }

    /// Finish and return the graph.
    pub fn finish(mut self) -> Graph {
        // An unbalanced bracket (bail-out mid-layer) simply never seals:
        // its ops are still in the literal run and stay literal.
        self.block = None;
        if self.segments.iter().any(|s| matches!(s, Segment::Block(_))) {
            self.flush_literal();
            Graph::from_segments(self.name, self.segments, self.ops)
        } else {
            // No blocks recorded (conv nets, hand-built graphs, interning
            // off): plain flat graph with zero interning overhead.
            Graph::from_flat(self.name, self.ops)
        }
    }

    fn flush_literal(&mut self) {
        if self.ops.len() > self.lit_start {
            self.segments.push(Segment::Literal {
                start: self.lit_start,
                len: self.ops.len() - self.lit_start,
            });
            self.lit_start = self.ops.len();
        }
    }

    /// Open a block bracket: ops added until the matching [`end_block`]
    /// are recorded for interning under `prefix`. Nested brackets merge
    /// into the outermost one.
    ///
    /// [`end_block`]: Self::end_block
    fn begin_block(&mut self, prefix: &str) {
        self.depth += 1;
        if self.depth > 1 || !self.interning {
            return;
        }
        self.flush_literal();
        if self.segments.capacity() == 0 {
            // One segment per layer block plus a few literals; deep models
            // (the interning sweet spot) repeat blocks dozens of times, so
            // skip the doubling ramp-up.
            self.segments.reserve(64);
        }
        self.block = Some(OpenBlock {
            prefix_len: prefix.len(),
            base: self.ops.len(),
            layer_base: self.layer,
        });
    }

    /// Close the current block bracket, interning the recorded template.
    fn end_block(&mut self) {
        debug_assert!(self.depth > 0, "unbalanced end_block");
        self.depth = self.depth.saturating_sub(1);
        if self.depth > 0 {
            return;
        }
        if let Some(block) = self.block.take() {
            self.seal_block(block);
        }
    }

    /// Seal `ops[block.base..]` as one interned block. The interner lookup
    /// is allocation-free on a hit (every layer after a model's first):
    /// the recorded ops are hashed and compared against the canonical
    /// template in place — suffixes by slicing off the prefix, inputs by
    /// arithmetic — and a [`BlockTemplate`] is only built on a miss.
    fn seal_block(&mut self, block: OpenBlock) {
        let ops = &self.ops[block.base..];
        // Ops that don't fit the template shape (foreign name prefix,
        // layer index behind the block's base) stay literal — lit_start
        // still covers them — and the graph is identical either way.
        let Some(externals) = block_externals(ops, &block) else {
            return;
        };
        let hash = block_hash(ops, &block, &externals);
        let interned = intern_block_with(
            hash,
            |template| block_matches(template, ops, &block, &externals),
            || build_template(ops, &block, &externals),
        );
        self.segments.push(Segment::Block(BlockInst::new(
            interned,
            block.prefix_len,
            block.base,
            block.layer_base,
            externals,
        )));
        self.lit_start = self.ops.len();
    }

    fn output_of(&self, id: OpId) -> Result<&TensorMeta, GraphError> {
        self.ops
            .get(id.0)
            .map(|op| &op.output)
            .ok_or(GraphError::UnknownOp(id))
    }

    fn add(
        &mut self,
        name: String,
        kind: OpKind,
        inputs: Vec<OpId>,
        output: TensorMeta,
        phase: Phase,
        layer: Option<usize>,
    ) -> Result<OpId, GraphError> {
        let id = OpId(self.ops.len());
        for &input in &inputs {
            if input.0 >= id.0 {
                return Err(GraphError::DanglingInput { op: name, input });
            }
        }
        self.ops.push(Op {
            id,
            name,
            kind,
            inputs,
            output,
            phase,
            layer,
        });
        Ok(id)
    }

    /// Raw op insertion at the current layer.
    pub fn op(
        &mut self,
        name: impl Into<String>,
        kind: OpKind,
        inputs: Vec<OpId>,
        output: TensorMeta,
    ) -> Result<OpId, GraphError> {
        self.add(
            name.into(),
            kind,
            inputs,
            output,
            Phase::Forward,
            Some(self.layer),
        )
    }

    /// Graph input of the given shape.
    pub fn input(&mut self, name: &str, dims: &[usize]) -> Result<OpId, GraphError> {
        self.op(name, OpKind::Input, vec![], TensorMeta::f32(dims))
    }

    /// Dense (fully connected) layer: `[rows, in_dim] → [rows, out_dim]`.
    pub fn dense(
        &mut self,
        name: &str,
        input: OpId,
        rows: usize,
        in_dim: usize,
        out_dim: usize,
    ) -> Result<OpId, GraphError> {
        self.op(
            name,
            OpKind::MatMul {
                m: rows,
                k: in_dim,
                n: out_dim,
                has_params: true,
            },
            vec![input],
            TensorMeta::f32(&[rows, out_dim]),
        )
    }

    /// Activation-by-activation matmul (no parameters), e.g. attention
    /// scores.
    #[allow(clippy::too_many_arguments)]
    pub fn matmul(
        &mut self,
        name: &str,
        a: OpId,
        b: OpId,
        m: usize,
        k: usize,
        n: usize,
        out_dims: &[usize],
    ) -> Result<OpId, GraphError> {
        self.op(
            name,
            OpKind::MatMul {
                m,
                k,
                n,
                has_params: false,
            },
            vec![a, b],
            TensorMeta::f32(out_dims),
        )
    }

    /// Layer normalization preserving the input shape.
    pub fn layer_norm(&mut self, name: &str, input: OpId, dim: usize) -> Result<OpId, GraphError> {
        let meta = self.output_of(input)?.clone();
        let elems = meta.shape.num_elements();
        self.op(name, OpKind::LayerNorm { elems, dim }, vec![input], meta)
    }

    /// Softmax preserving the input shape.
    pub fn softmax(&mut self, name: &str, input: OpId) -> Result<OpId, GraphError> {
        let meta = self.output_of(input)?.clone();
        let elems = meta.shape.num_elements();
        self.op(name, OpKind::Softmax { elems }, vec![input], meta)
    }

    /// Elementwise op (GeLU ≈ 8 FLOPs/elem, add = 1) preserving shape of the
    /// first input.
    pub fn elementwise(
        &mut self,
        name: &str,
        inputs: Vec<OpId>,
        flops_per_elem: u32,
    ) -> Result<OpId, GraphError> {
        let meta = self.output_of(inputs[0])?.clone();
        let elems = meta.shape.num_elements();
        self.op(
            name,
            OpKind::Elementwise {
                elems,
                flops_per_elem,
            },
            inputs,
            meta,
        )
    }

    /// 2-D convolution (+ folded batch-norm parameters via the bias term).
    #[allow(clippy::too_many_arguments)]
    pub fn conv2d(
        &mut self,
        name: &str,
        input: OpId,
        batch: usize,
        in_c: usize,
        out_c: usize,
        kernel: (usize, usize),
        out_hw: (usize, usize),
    ) -> Result<OpId, GraphError> {
        self.op(
            name,
            OpKind::Conv2d {
                batch,
                in_c,
                out_c,
                kernel,
                out_hw,
            },
            vec![input],
            TensorMeta::f32(&[batch, out_c, out_hw.0, out_hw.1]),
        )
    }

    /// Token embedding lookup: `[batch, seq] → [batch, seq, dim]`.
    pub fn embedding(
        &mut self,
        name: &str,
        input: OpId,
        vocab: usize,
        dim: usize,
        batch: usize,
        seq: usize,
    ) -> Result<OpId, GraphError> {
        self.op(
            name,
            OpKind::Embedding {
                vocab,
                dim,
                tokens: batch * seq,
            },
            vec![input],
            TensorMeta::f32(&[batch, seq, dim]),
        )
    }

    /// Multi-head self-attention block (QKV projection, scores, context,
    /// output projection) with a residual add and layer norm.
    #[allow(clippy::too_many_arguments)]
    pub fn self_attention(
        &mut self,
        prefix: &str,
        input: OpId,
        batch: usize,
        seq: usize,
        hidden: usize,
        heads: usize,
    ) -> Result<OpId, GraphError> {
        let rows = batch * seq;
        let head_dim = hidden / heads;
        let qkv = self.dense(&format!("{prefix}/qkv"), input, rows, hidden, 3 * hidden)?;
        // Scores: per head [seq, head_dim] × [head_dim, seq].
        let scores = self.matmul(
            &format!("{prefix}/scores"),
            qkv,
            qkv,
            batch * heads * seq,
            head_dim,
            seq,
            &[batch, heads, seq, seq],
        )?;
        let probs = self.softmax(&format!("{prefix}/probs"), scores)?;
        let ctx = self.matmul(
            &format!("{prefix}/context"),
            probs,
            qkv,
            batch * heads * seq,
            seq,
            head_dim,
            &[batch, seq, hidden],
        )?;
        let proj = self.dense(&format!("{prefix}/out_proj"), ctx, rows, hidden, hidden)?;
        let residual = self.elementwise(&format!("{prefix}/residual"), vec![proj, input], 1)?;
        self.layer_norm(&format!("{prefix}/ln"), residual, hidden)
    }

    /// Cross-attention block: queries from `input`, keys/values from
    /// `memory` of length `mem_seq`.
    #[allow(clippy::too_many_arguments)]
    pub fn cross_attention(
        &mut self,
        prefix: &str,
        input: OpId,
        memory: OpId,
        batch: usize,
        seq: usize,
        mem_seq: usize,
        hidden: usize,
        heads: usize,
    ) -> Result<OpId, GraphError> {
        let rows = batch * seq;
        let head_dim = hidden / heads;
        let q = self.dense(&format!("{prefix}/q"), input, rows, hidden, hidden)?;
        let kv = self.dense(
            &format!("{prefix}/kv"),
            memory,
            batch * mem_seq,
            hidden,
            2 * hidden,
        )?;
        let scores = self.matmul(
            &format!("{prefix}/scores"),
            q,
            kv,
            batch * heads * seq,
            head_dim,
            mem_seq,
            &[batch, heads, seq, mem_seq],
        )?;
        let probs = self.softmax(&format!("{prefix}/probs"), scores)?;
        let ctx = self.matmul(
            &format!("{prefix}/context"),
            probs,
            kv,
            batch * heads * seq,
            mem_seq,
            head_dim,
            &[batch, seq, hidden],
        )?;
        let proj = self.dense(&format!("{prefix}/out_proj"), ctx, rows, hidden, hidden)?;
        let residual = self.elementwise(&format!("{prefix}/residual"), vec![proj, input], 1)?;
        self.layer_norm(&format!("{prefix}/ln"), residual, hidden)
    }

    /// Position-wise feed-forward block with GeLU, residual, and layer norm.
    pub fn ffn(
        &mut self,
        prefix: &str,
        input: OpId,
        rows: usize,
        hidden: usize,
        intermediate: usize,
    ) -> Result<OpId, GraphError> {
        let up = self.dense(&format!("{prefix}/up"), input, rows, hidden, intermediate)?;
        let act = self.elementwise(&format!("{prefix}/gelu"), vec![up], 8)?;
        let down = self.dense(&format!("{prefix}/down"), act, rows, intermediate, hidden)?;
        let residual = self.elementwise(&format!("{prefix}/residual"), vec![down, input], 1)?;
        self.layer_norm(&format!("{prefix}/ln"), residual, hidden)
    }

    /// Full transformer encoder layer (self-attention + FFN) as one model
    /// layer; bumps the layer counter. Recorded as one interned block.
    #[allow(clippy::too_many_arguments)]
    pub fn encoder_layer(
        &mut self,
        prefix: &str,
        input: OpId,
        batch: usize,
        seq: usize,
        hidden: usize,
        heads: usize,
        intermediate: usize,
    ) -> Result<OpId, GraphError> {
        self.begin_block(prefix);
        let result = (|| {
            let attn =
                self.self_attention(&format!("{prefix}/attn"), input, batch, seq, hidden, heads)?;
            let out = self.ffn(
                &format!("{prefix}/ffn"),
                attn,
                batch * seq,
                hidden,
                intermediate,
            )?;
            self.next_layer();
            Ok(out)
        })();
        self.end_block();
        result
    }

    /// Full transformer decoder layer (self-attention + cross-attention +
    /// FFN); bumps the layer counter. Recorded as one interned block.
    #[allow(clippy::too_many_arguments)]
    pub fn decoder_layer(
        &mut self,
        prefix: &str,
        input: OpId,
        memory: OpId,
        batch: usize,
        seq: usize,
        mem_seq: usize,
        hidden: usize,
        heads: usize,
        intermediate: usize,
    ) -> Result<OpId, GraphError> {
        self.begin_block(prefix);
        let result = (|| {
            let self_attn = self.self_attention(
                &format!("{prefix}/self_attn"),
                input,
                batch,
                seq,
                hidden,
                heads,
            )?;
            let cross = self.cross_attention(
                &format!("{prefix}/cross_attn"),
                self_attn,
                memory,
                batch,
                seq,
                mem_seq,
                hidden,
                heads,
            )?;
            let out = self.ffn(
                &format!("{prefix}/ffn"),
                cross,
                batch * seq,
                hidden,
                intermediate,
            )?;
            self.next_layer();
            Ok(out)
        })();
        self.end_block();
        result
    }

    /// MoE encoder layer: self-attention followed by gating + expert FFN
    /// (paper Fig. 15 / Example 8); bumps the layer counter. Recorded as
    /// one interned block.
    #[allow(clippy::too_many_arguments)]
    pub fn moe_encoder_layer(
        &mut self,
        prefix: &str,
        input: OpId,
        batch: usize,
        seq: usize,
        hidden: usize,
        heads: usize,
        intermediate: usize,
        experts: usize,
        top_k: usize,
    ) -> Result<OpId, GraphError> {
        self.begin_block(prefix);
        let result = (|| {
            let attn =
                self.self_attention(&format!("{prefix}/attn"), input, batch, seq, hidden, heads)?;
            let tokens = batch * seq;
            let gates = self.op(
                format!("{prefix}/gating"),
                OpKind::Gating {
                    tokens,
                    hidden,
                    experts,
                },
                vec![attn],
                TensorMeta::f32(&[batch, seq, experts]),
            )?;
            let moe = self.op(
                format!("{prefix}/moe_ffn"),
                OpKind::MoeFfn {
                    tokens,
                    hidden,
                    intermediate,
                    experts,
                    top_k,
                },
                vec![attn, gates],
                TensorMeta::f32(&[batch, seq, hidden]),
            )?;
            let residual = self.elementwise(&format!("{prefix}/residual"), vec![moe, attn], 1)?;
            let out = self.layer_norm(&format!("{prefix}/ln"), residual, hidden)?;
            self.next_layer();
            Ok(out)
        })();
        self.end_block();
        result
    }

    /// LSTM layer as a single composite op; bumps the layer counter.
    /// Recorded as one interned block.
    pub fn lstm(
        &mut self,
        name: &str,
        input: OpId,
        seq: usize,
        batch: usize,
        input_dim: usize,
        hidden: usize,
    ) -> Result<OpId, GraphError> {
        self.begin_block(name);
        let result = self.op(
            name,
            OpKind::Lstm {
                seq,
                batch,
                input_dim,
                hidden,
            },
            vec![input],
            TensorMeta::f32(&[batch, seq, hidden]),
        );
        if result.is_ok() {
            self.next_layer();
        }
        self.end_block();
        result
    }

    /// Softmax cross-entropy loss over `[batch, classes]`, producing a
    /// scalar-per-batch loss tensor.
    pub fn cross_entropy(
        &mut self,
        name: &str,
        logits: OpId,
        batch: usize,
        classes: usize,
    ) -> Result<OpId, GraphError> {
        self.op(
            name,
            OpKind::CrossEntropy { batch, classes },
            vec![logits],
            TensorMeta::f32(&[batch]),
        )
    }
}

/// Collect the external producer list (first-reference order, matching
/// [`TemplateInput::External`] slot numbering) for a recorded block, or
/// `None` if the ops don't factor into a template (empty block, name
/// outside the prefix, layer index behind the block's layer base). The
/// prefix text is the first `prefix_len` bytes of the first op's name —
/// every op must share it, which is what makes the sliced suffixes
/// reconstructible.
fn block_externals(ops: &[Op], block: &OpenBlock) -> Option<Externals> {
    let first = ops.first()?;
    if !first.name.is_char_boundary(block.prefix_len) {
        return None;
    }
    let prefix = &first.name.as_bytes()[..block.prefix_len];
    let mut externals = Externals::new();
    for op in ops {
        // A name starting with the (valid UTF-8) prefix bytes necessarily
        // has a char boundary at `prefix_len`, so suffix slicing is safe.
        if !op.name.as_bytes().starts_with(prefix) {
            return None;
        }
        if let Some(layer) = op.layer {
            layer.checked_sub(block.layer_base)?;
        }
        for &input in &op.inputs {
            if input.0 < block.base && !externals.contains(&input) {
                externals.push(input);
            }
        }
    }
    Some(externals)
}

/// Hash a recorded block exactly as [`crate::intern::template_fingerprint`]
/// hashes the template it factors into, without building that template:
/// suffixes are name slices past the prefix, input slots are recomputed by
/// arithmetic and a scan of the (short) external list.
fn block_hash(ops: &[Op], block: &OpenBlock, externals: &[OpId]) -> Fingerprint {
    let mut fp = Fingerprinter::new("block-template");
    fp.push_len(ops.len());
    fp.push_usize(externals.len());
    for op in ops {
        fp.push_str(&op.name[block.prefix_len..]);
        push_kind(&mut fp, &op.kind);
        fp.push_len(op.inputs.len());
        for &input in &op.inputs {
            if input.0 >= block.base {
                fp.push_tag(0).push_usize(input.0 - block.base);
            } else {
                let slot = externals
                    .iter()
                    .position(|&e| e == input)
                    .expect("every external producer was collected");
                fp.push_tag(1).push_usize(slot);
            }
        }
        push_tensor(&mut fp, &op.output);
        push_phase(&mut fp, op.phase);
        match op.layer {
            Some(layer) => fp.push_bool(true).push_usize(layer - block.layer_base),
            None => fp.push_bool(false),
        };
    }
    fp.finish()
}

/// Exact structural comparison of a candidate template against recorded
/// ops — the hit-path verifier behind [`intern_block_with`]'s bucket scan.
/// Equivalent to `template == build_template(ops, ...)` without allocating.
fn block_matches(
    template: &BlockTemplate,
    ops: &[Op],
    block: &OpenBlock,
    externals: &[OpId],
) -> bool {
    if template.ops.len() != ops.len() || template.external_slots != externals.len() {
        return false;
    }
    template.ops.iter().zip(ops).all(|(t, op)| {
        t.suffix == op.name[block.prefix_len..]
            && t.kind == op.kind
            && t.output == op.output
            && t.phase == op.phase
            && t.layer_rel == op.layer.map(|layer| layer - block.layer_base)
            && t.inputs.len() == op.inputs.len()
            && t.inputs
                .iter()
                .zip(&op.inputs)
                .all(|(ti, &input)| match *ti {
                    TemplateInput::Internal(p) => input.0 == block.base + p,
                    TemplateInput::External(s) => externals.get(s) == Some(&input),
                })
    })
}

/// Build the template for a block the interner has never seen (the miss
/// path: once per distinct block shape process-wide).
fn build_template(ops: &[Op], block: &OpenBlock, externals: &[OpId]) -> BlockTemplate {
    let template_ops = ops
        .iter()
        .map(|op| TemplateOp {
            suffix: op.name[block.prefix_len..].to_string(),
            kind: op.kind.clone(),
            inputs: op
                .inputs
                .iter()
                .map(|&input| {
                    if input.0 >= block.base {
                        TemplateInput::Internal(input.0 - block.base)
                    } else {
                        let slot = externals
                            .iter()
                            .position(|&e| e == input)
                            .expect("every external producer was collected");
                        TemplateInput::External(slot)
                    }
                })
                .collect(),
            output: op.output.clone(),
            phase: op.phase,
            layer_rel: op.layer.map(|layer| layer - block.layer_base),
        })
        .collect();
    BlockTemplate {
        ops: template_ops,
        external_slots: externals.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::CostProfile;

    #[test]
    fn encoder_layer_parameter_count() {
        // One transformer layer at h=1024, ff=4096:
        // attn: qkv 1024·3072 + out 1024·1024 (+biases) ≈ 4.20 M
        // ffn: 2·1024·4096 (+biases) ≈ 8.39 M
        // layer norms: 2·2·1024.
        let mut b = GraphBuilder::new("one_layer");
        let x = b.input("x", &[4, 128, 1024]).unwrap();
        b.encoder_layer("enc0", x, 4, 128, 1024, 16, 4096).unwrap();
        let g = b.finish();
        let params = g.total_params() as f64;
        assert!(
            (12.5e6..13.0e6).contains(&params),
            "per-layer params = {params}"
        );
    }

    #[test]
    fn decoder_layer_has_more_params_than_encoder() {
        let mut b = GraphBuilder::new("enc");
        let x = b.input("x", &[2, 64, 512]).unwrap();
        b.encoder_layer("e", x, 2, 64, 512, 8, 2048).unwrap();
        let enc = b.finish().total_params();

        let mut b = GraphBuilder::new("dec");
        let x = b.input("x", &[2, 64, 512]).unwrap();
        let m = b.input("m", &[2, 64, 512]).unwrap();
        b.decoder_layer("d", x, m, 2, 64, 64, 512, 8, 2048).unwrap();
        let dec = b.finish().total_params();
        assert!(dec > enc);
    }

    #[test]
    fn layer_counter_advances() {
        let mut b = GraphBuilder::new("layers");
        let x = b.input("x", &[2, 16, 64]).unwrap();
        assert_eq!(b.layer(), 0);
        let h = b.encoder_layer("l0", x, 2, 16, 64, 4, 256).unwrap();
        assert_eq!(b.layer(), 1);
        b.encoder_layer("l1", h, 2, 16, 64, 4, 256).unwrap();
        assert_eq!(b.layer(), 2);
        let g = b.finish();
        assert_eq!(g.per_layer_costs().len(), 2);
    }

    #[test]
    fn moe_layer_profile() {
        let mut b = GraphBuilder::new("moe");
        let x = b.input("x", &[2, 64, 1024]).unwrap();
        b.moe_encoder_layer("l0", x, 2, 64, 1024, 16, 4096, 512, 2)
            .unwrap();
        let g = b.finish();
        let p = CostProfile::from_graph(&g, 2);
        // Expert weights dominate: 512·2·1024·4096 ≈ 4.3 B params.
        assert!(p.param_count > 4_000_000_000);
        // But FLOPs stay modest (top-2 routing).
        assert!(p.forward_flops(2) < 1e13);
    }

    #[test]
    fn identical_layers_share_one_interned_block() {
        let mut b = GraphBuilder::new("shared");
        let x = b.input("x", &[2, 16, 64]).unwrap();
        let h = b.encoder_layer("enc.0", x, 2, 16, 64, 4, 256).unwrap();
        b.encoder_layer("enc.1", h, 2, 16, 64, 4, 256).unwrap();
        let g = b.finish();
        assert_eq!(g.block_count(), 2);
        // Both layers resolve to the same per-layer cost — and the flat
        // view reconstructs distinct names and contiguous ids.
        let names: Vec<&str> = g.ops().iter().map(|op| op.name.as_str()).collect();
        assert!(names.contains(&"enc.0/attn/qkv"));
        assert!(names.contains(&"enc.1/attn/qkv"));
        assert!(g.ops().iter().enumerate().all(|(i, op)| op.id.0 == i));
        assert_eq!(g.per_layer_costs().len(), 2);
    }

    #[test]
    fn non_layer_ops_stay_literal() {
        let mut b = GraphBuilder::new("mixed");
        let x = b.input("x", &[2, 16]).unwrap();
        let e = b.embedding("embed", x, 100, 64, 2, 16).unwrap();
        let h = b.encoder_layer("enc.0", e, 2, 16, 64, 4, 256).unwrap();
        b.cross_entropy("loss", h, 2, 100).unwrap();
        let g = b.finish();
        assert_eq!(g.block_count(), 1);
        assert_eq!(g.ops().first().unwrap().name, "x");
        assert_eq!(g.ops().last().unwrap().name, "loss");
    }
}
