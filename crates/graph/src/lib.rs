//! Dataflow-graph IR for the Whale reproduction.
//!
//! Whale consumes TensorFlow computation graphs; this crate is the
//! reproduction's stand-in, carrying exactly the metadata Whale's planner and
//! load balancers need:
//!
//! * [`graph::Graph`] — an append-only DAG of [`op::OpKind`] nodes with
//!   analytic FLOP/parameter cost functions;
//! * [`tensor`] — shapes and dtypes for bridge-layer and communication
//!   volume reasoning;
//! * [`profile::CostProfile`] — `profile_flop` / `profile_mem` (§3.5) over
//!   graphs and subgraphs, with optimizer/AMP/recomputation-aware memory
//!   estimation;
//! * [`models`] — the paper's full workload zoo with parameter counts that
//!   match the published models (BERT-Large ≈ 340 M, M6-MoE-1T ≈ 1 T, ...).
//!
//! # Examples
//!
//! ```
//! use whale_graph::{models, profile::CostProfile};
//!
//! let g = models::bert_large(8, 128).unwrap();
//! let p = CostProfile::from_graph(&g, 8);
//! assert!(p.param_count > 300_000_000);
//! assert!(p.forward_flops(8) > 0.0);
//! ```

pub mod autodiff;
pub mod builder;
pub mod fingerprint;
pub mod graph;
pub mod intern;
pub mod models;
pub mod op;
pub mod profile;
pub mod stats;
pub mod tensor;

pub use autodiff::{derive_training_graph, TrainingGraph};
pub use builder::{set_default_interning, GraphBuilder};
pub use graph::{Graph, GraphError, Op, OpId, Segment};
pub use op::{OpKind, Phase};
pub use profile::{CostProfile, Optimizer, TrainingConfig, ZeroStage};
pub use stats::{graph_stats, GraphStats};
pub use tensor::{DType, Shape, TensorMeta};
