//! Tensor metadata: shapes and element types.
//!
//! The Whale planner never touches tensor *values*; it needs shapes and byte
//! sizes to reason about bridge layers, communication volume, and activation
//! memory. This module provides exactly that metadata.

use std::fmt;

/// Element types understood by the cost model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DType {
    /// 32-bit IEEE float (the paper's cost model is stated in fp32 FLOP).
    F32,
    /// 16-bit IEEE float (AMP training).
    F16,
    /// bfloat16.
    BF16,
    /// 32-bit signed integer (token ids, masks).
    I32,
    /// 64-bit signed integer.
    I64,
    /// Boolean mask.
    Bool,
}

impl DType {
    /// Bytes per element.
    pub fn size_bytes(self) -> u64 {
        match self {
            DType::F32 | DType::I32 => 4,
            DType::F16 | DType::BF16 => 2,
            DType::I64 => 8,
            DType::Bool => 1,
        }
    }
}

impl fmt::Display for DType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DType::F32 => "f32",
            DType::F16 => "f16",
            DType::BF16 => "bf16",
            DType::I32 => "i32",
            DType::I64 => "i64",
            DType::Bool => "bool",
        };
        f.write_str(s)
    }
}

/// A dense tensor shape. Dimension 0 is the batch dimension by convention,
/// which is what bridge layers partition and gather along (§3.4).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Shape(pub Vec<usize>);

impl Shape {
    /// Scalar shape.
    pub fn scalar() -> Shape {
        Shape(vec![])
    }

    /// Build from a slice of dimensions.
    pub fn of(dims: &[usize]) -> Shape {
        Shape(dims.to_vec())
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// Total element count (1 for scalars).
    pub fn num_elements(&self) -> u64 {
        self.0.iter().map(|&d| d as u64).product()
    }

    /// The batch (leading) dimension, if any.
    pub fn batch(&self) -> Option<usize> {
        self.0.first().copied()
    }

    /// Replace the batch dimension, returning a new shape.
    ///
    /// # Panics
    ///
    /// Panics if the shape is a scalar (no batch dimension to replace).
    pub fn with_batch(&self, batch: usize) -> Shape {
        assert!(
            !self.0.is_empty(),
            "cannot set batch dimension on a scalar shape"
        );
        let mut dims = self.0.clone();
        dims[0] = batch;
        Shape(dims)
    }

    /// Split the batch dimension into `n` near-equal parts (first `batch % n`
    /// parts get one extra element), mirroring the `Partition(n)` bridge.
    ///
    /// Returns `None` if the shape is scalar or `n == 0`.
    pub fn split_batch(&self, n: usize) -> Option<Vec<Shape>> {
        let batch = self.batch()?;
        if n == 0 {
            return None;
        }
        let base = batch / n;
        let extra = batch % n;
        Some(
            (0..n)
                .map(|i| self.with_batch(base + usize::from(i < extra)))
                .collect(),
        )
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

/// Metadata for a tensor flowing along a graph edge.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TensorMeta {
    /// Shape of the tensor.
    pub shape: Shape,
    /// Element type.
    pub dtype: DType,
}

impl TensorMeta {
    /// Build an fp32 tensor description.
    pub fn f32(dims: &[usize]) -> TensorMeta {
        TensorMeta {
            shape: Shape::of(dims),
            dtype: DType::F32,
        }
    }

    /// Total byte size.
    pub fn size_bytes(&self) -> u64 {
        self.shape.num_elements() * self.dtype.size_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn element_counts_and_bytes() {
        let t = TensorMeta::f32(&[32, 512, 1024]);
        assert_eq!(t.shape.num_elements(), 32 * 512 * 1024);
        assert_eq!(t.size_bytes(), 32 * 512 * 1024 * 4);
        assert_eq!(Shape::scalar().num_elements(), 1);
    }

    #[test]
    fn split_batch_even_and_uneven() {
        let s = Shape::of(&[32, 128]);
        let parts = s.split_batch(4).unwrap();
        assert!(parts.iter().all(|p| p.batch() == Some(8)));

        // Paper §3.5: a global batch of 32 split by FLOPS 9.3:12 gives 14/18;
        // the generic splitter splits 32 into 3 as 11/11/10.
        let parts = s.split_batch(3).unwrap();
        let batches: Vec<usize> = parts.iter().map(|p| p.batch().unwrap()).collect();
        assert_eq!(batches, vec![11, 11, 10]);
        assert_eq!(batches.iter().sum::<usize>(), 32);
    }

    #[test]
    fn split_batch_degenerate() {
        assert!(Shape::scalar().split_batch(2).is_none());
        assert!(Shape::of(&[4]).split_batch(0).is_none());
        let one = Shape::of(&[4]).split_batch(1).unwrap();
        assert_eq!(one, vec![Shape::of(&[4])]);
    }

    #[test]
    fn dtype_sizes() {
        assert_eq!(DType::F32.size_bytes(), 4);
        assert_eq!(DType::F16.size_bytes(), 2);
        assert_eq!(DType::I64.size_bytes(), 8);
        assert_eq!(DType::Bool.size_bytes(), 1);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Shape::of(&[2, 3]).to_string(), "[2, 3]");
        assert_eq!(DType::BF16.to_string(), "bf16");
    }
}
