//! Content fingerprints for graphs and training configs.
//!
//! The staged compile pipeline caches plans keyed on `(model, cluster,
//! config)`; this module contributes the model side. A fingerprint covers
//! everything the planner reads: op kinds with all cost attributes, the
//! dependency structure, tensor metadata, phases, and layer indices. Two
//! graphs hash equal iff the planner cannot distinguish them; changing one
//! op's shape or one matmul dimension changes the fingerprint.
//!
//! # Incremental composition
//!
//! The graph fingerprint is the wrapping sum of independent per-op content
//! hashes (each covering the op's id, so position is pinned and two ops can
//! never trade places unnoticed), folded into one final FNV pass together
//! with the graph name and length. Summation makes the fingerprint
//! *composable*: an interned graph adds up per-segment subtotals, where
//! each block instantiation's subtotal is memoized
//! ([`crate::intern::BlockInst::content_sum`]) and computed without
//! materializing the ops. Re-fingerprinting after a single-block edit
//! ([`crate::graph::Graph::with_block_replaced`]) therefore re-hashes only
//! the touched block — and the result is bit-identical to fingerprinting
//! the same ops stored flat, so interned and uninterned builds of one model
//! share cache keys.

use whale_fp::{Fingerprint, Fingerprinter};

use crate::graph::{Graph, Op, Rep, Segment};
use crate::op::{OpKind, Phase};
use crate::profile::TrainingConfig;
use crate::tensor::{DType, TensorMeta};

pub(crate) fn push_phase(fp: &mut Fingerprinter, phase: Phase) {
    fp.push_tag(match phase {
        Phase::Forward => 0,
        Phase::Backward => 1,
        Phase::Optimizer => 2,
        Phase::Other => 3,
    });
}

pub(crate) fn push_tensor(fp: &mut Fingerprinter, t: &TensorMeta) {
    fp.push_len(t.shape.0.len());
    for &d in &t.shape.0 {
        fp.push_usize(d);
    }
    // Explicit match (not `as u8`) so reordering the enum cannot silently
    // re-key the cache — and no per-op string allocation on the hot path.
    fp.push_tag(match t.dtype {
        DType::F32 => 0,
        DType::F16 => 1,
        DType::BF16 => 2,
        DType::I32 => 3,
        DType::I64 => 4,
        DType::Bool => 5,
    });
}

pub(crate) fn push_kind(fp: &mut Fingerprinter, kind: &OpKind) {
    match *kind {
        OpKind::Input => {
            fp.push_tag(0);
        }
        OpKind::MatMul {
            m,
            k,
            n,
            has_params,
        } => {
            fp.push_tag(1)
                .push_usize(m)
                .push_usize(k)
                .push_usize(n)
                .push_bool(has_params);
        }
        OpKind::Conv2d {
            batch,
            in_c,
            out_c,
            kernel: (kh, kw),
            out_hw: (oh, ow),
        } => {
            fp.push_tag(2)
                .push_usize(batch)
                .push_usize(in_c)
                .push_usize(out_c)
                .push_usize(kh)
                .push_usize(kw)
                .push_usize(oh)
                .push_usize(ow);
        }
        OpKind::Embedding { vocab, dim, tokens } => {
            fp.push_tag(3)
                .push_usize(vocab)
                .push_usize(dim)
                .push_usize(tokens);
        }
        OpKind::LayerNorm { elems, dim } => {
            fp.push_tag(4).push_u64(elems).push_usize(dim);
        }
        OpKind::Softmax { elems } => {
            fp.push_tag(5).push_u64(elems);
        }
        OpKind::Elementwise {
            elems,
            flops_per_elem,
        } => {
            fp.push_tag(6)
                .push_u64(elems)
                .push_u64(flops_per_elem as u64);
        }
        OpKind::Pool { elems } => {
            fp.push_tag(7).push_u64(elems);
        }
        OpKind::Lstm {
            seq,
            batch,
            input_dim,
            hidden,
        } => {
            fp.push_tag(8)
                .push_usize(seq)
                .push_usize(batch)
                .push_usize(input_dim)
                .push_usize(hidden);
        }
        OpKind::CrossEntropy { batch, classes } => {
            fp.push_tag(9).push_usize(batch).push_usize(classes);
        }
        OpKind::MoeFfn {
            tokens,
            hidden,
            intermediate,
            experts,
            top_k,
        } => {
            fp.push_tag(10)
                .push_usize(tokens)
                .push_usize(hidden)
                .push_usize(intermediate)
                .push_usize(experts)
                .push_usize(top_k);
        }
        OpKind::Gating {
            tokens,
            hidden,
            experts,
        } => {
            fp.push_tag(11)
                .push_usize(tokens)
                .push_usize(hidden)
                .push_usize(experts);
        }
        OpKind::Synthetic { flops, params } => {
            fp.push_tag(12).push_f64(flops).push_u64(params);
        }
    }
}

/// Content hash of one op. [`crate::intern::BlockInst::content_sum`] must
/// produce byte-identical pushes for instantiated template ops — that
/// equivalence is what makes the fingerprint representation-independent
/// (and is pinned by the `interned_and_flat_fingerprints_agree` test).
fn op_content_hash(op: &Op) -> u64 {
    let mut fp = Fingerprinter::new("graph-op");
    fp.push_usize(op.id.0);
    fp.push_str(&op.name);
    push_kind(&mut fp, &op.kind);
    fp.push_len(op.inputs.len());
    for input in &op.inputs {
        fp.push_usize(input.0);
    }
    push_tensor(&mut fp, &op.output);
    push_phase(&mut fp, op.phase);
    match op.layer {
        Some(layer) => fp.push_bool(true).push_usize(layer),
        None => fp.push_bool(false),
    };
    fp.finish().0
}

fn ops_content_sum(ops: &[Op]) -> u64 {
    ops.iter()
        .map(op_content_hash)
        .fold(0u64, u64::wrapping_add)
}

impl Graph {
    /// Stable content fingerprint over everything the planner reads from the
    /// graph: name, op kinds with all cost attributes, dependency edges,
    /// output tensors, phases, and layer indices.
    ///
    /// Representation-independent (interned and flat builds of the same ops
    /// agree) and subgraph-incremental: interned graphs reuse memoized
    /// per-block subtotals, so re-fingerprinting an unchanged or
    /// one-block-edited graph does not re-walk the untouched blocks.
    pub fn fingerprint(&self) -> Fingerprint {
        let sum = match self.rep() {
            Rep::Flat(ops) => ops_content_sum(ops),
            Rep::Interned { segments, flat } => segments
                .iter()
                .map(|segment| match segment {
                    Segment::Literal { start, len } => ops_content_sum(&flat[*start..start + len]),
                    Segment::Block(inst) => {
                        inst.content_sum(&flat[inst.base].name[..inst.prefix_len])
                    }
                })
                .fold(0u64, u64::wrapping_add),
        };
        let mut fp = Fingerprinter::new("whale-graph");
        fp.push_str(self.name());
        fp.push_len(self.len());
        fp.push_u64(sum);
        fp.finish()
    }
}

impl TrainingConfig {
    /// Stable content fingerprint over every training option the planner's
    /// memory and communication models consume.
    pub fn fingerprint(&self) -> Fingerprint {
        let mut fp = Fingerprinter::new("training-config");
        fp.push_tag(self.optimizer as u8)
            .push_bool(self.amp)
            .push_bool(self.recompute)
            .push_tag(self.zero as u8)
            .push_bool(self.offload)
            .push_usize(self.dp_shards);
        fp.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::models;
    use crate::profile::{Optimizer, ZeroStage};

    fn encoder(name: &str, layers: usize, intermediate: usize, interned: bool) -> Graph {
        let mut b = GraphBuilder::with_interning(name, interned);
        let mut h = b.input("x", &[2, 16, 64]).unwrap();
        for i in 0..layers {
            h = b
                .encoder_layer(&format!("enc.{i}"), h, 2, 16, 64, 4, intermediate)
                .unwrap();
        }
        b.finish()
    }

    #[test]
    fn same_model_built_twice_hashes_identically() {
        let a = models::bert_base(8, 64).unwrap();
        let b = models::bert_base(8, 64).unwrap();
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn shape_change_changes_fingerprint() {
        let a = models::bert_base(8, 64).unwrap();
        let b = models::bert_base(8, 128).unwrap();
        let c = models::bert_base(16, 64).unwrap();
        assert_ne!(a.fingerprint(), b.fingerprint(), "sequence length");
        assert_ne!(a.fingerprint(), c.fingerprint(), "batch size");
    }

    #[test]
    fn different_models_differ() {
        let a = models::resnet50(8).unwrap();
        let b = models::bert_base(8, 64).unwrap();
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn interned_and_flat_fingerprints_agree() {
        let interned = encoder("enc", 4, 256, true);
        let flat = encoder("enc", 4, 256, false);
        assert!(interned.block_count() > 0 && flat.block_count() == 0);
        assert_eq!(interned.fingerprint(), flat.fingerprint());
        assert_ne!(
            interned.fingerprint(),
            encoder("enc", 4, 512, true).fingerprint()
        );
    }

    #[test]
    fn single_block_edit_changes_fingerprint_incrementally() {
        let g = encoder("enc", 6, 256, true);
        let first = g.fingerprint();
        assert_eq!(g.clone().fingerprint(), first);

        // Splicing one edited layer changes the fingerprint, and the
        // incremental result matches a from-scratch flat hash of the
        // edited ops (the counter-exact "only one block re-hashed"
        // assertions live in tests/interning.rs, where the process is not
        // shared with unrelated concurrent tests).
        let donor = encoder("donor", 1, 512, true);
        let edited = g.with_block_replaced(3, &donor, 0).unwrap();
        let efp = edited.fingerprint();
        assert_ne!(efp, first);
        let reference = Graph::from_flat("enc".into(), edited.ops().to_vec());
        assert_eq!(efp, reference.fingerprint());
    }

    #[test]
    fn training_config_field_sensitivity() {
        let base = TrainingConfig::default();
        assert_eq!(base.fingerprint(), TrainingConfig::default().fingerprint());
        let variants = [
            TrainingConfig {
                optimizer: Optimizer::Sgd,
                ..base
            },
            TrainingConfig { amp: true, ..base },
            TrainingConfig {
                recompute: true,
                ..base
            },
            TrainingConfig {
                zero: ZeroStage::Parameters,
                ..base
            },
            TrainingConfig {
                offload: true,
                ..base
            },
            TrainingConfig {
                dp_shards: 8,
                ..base
            },
        ];
        for v in &variants {
            assert_ne!(base.fingerprint(), v.fingerprint(), "{v:?}");
        }
    }
}
