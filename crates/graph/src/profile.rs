//! Cost profiling: FLOPs, parameters, activations, and memory estimation.
//!
//! The paper's load balancers (§3.5) call `profile_flop(subgraph)` and
//! `profile_mem(subgraph)` (via an estimator in the spirit of Gao et al.
//! \[15\]). This module supplies both: [`CostProfile`] aggregates the analytic
//! per-op costs of a (sub)graph, and [`TrainingConfig::memory_bytes`] turns a
//! profile plus a batch size into a device-memory estimate covering weights,
//! gradients, optimizer states, and stored activations (with optional
//! recomputation and mixed precision).

use crate::graph::{Graph, OpId};
use crate::op::{OpKind, Phase};

/// Optimizers with their per-parameter state footprint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Optimizer {
    /// Plain SGD: no extra state.
    Sgd,
    /// SGD with momentum: one fp32 slot per parameter.
    SgdMomentum,
    /// Adam: two fp32 slots per parameter.
    Adam,
    /// Adafactor (used for M6 training, §5.1): factored second moments,
    /// roughly half a byte per parameter.
    Adafactor,
}

impl Optimizer {
    /// Optimizer-state bytes per trainable parameter.
    pub fn state_bytes_per_param(self) -> f64 {
        match self {
            Optimizer::Sgd => 0.0,
            Optimizer::SgdMomentum => 4.0,
            Optimizer::Adam => 8.0,
            Optimizer::Adafactor => 0.5,
        }
    }
}

/// ZeRO sharded-data-parallelism stages (ref \[31\], integrated by Whale §4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ZeroStage {
    /// No sharding: every replica holds full states.
    None,
    /// Stage 1: optimizer states sharded across DP ranks.
    OptimizerState,
    /// Stage 2: optimizer states + gradients sharded.
    Gradients,
    /// Stage 3: optimizer states + gradients + parameters sharded
    /// (parameters are AllGathered on demand; ~1.5× communication).
    Parameters,
}

impl ZeroStage {
    /// Whether this stage shards optimizer states.
    pub fn shards_optimizer(self) -> bool {
        self != ZeroStage::None
    }

    /// Whether this stage shards gradients.
    pub fn shards_gradients(self) -> bool {
        matches!(self, ZeroStage::Gradients | ZeroStage::Parameters)
    }

    /// Whether this stage shards parameters.
    pub fn shards_parameters(self) -> bool {
        self == ZeroStage::Parameters
    }

    /// Gradient-synchronization communication multiplier relative to a plain
    /// AllReduce (ZeRO-3 pays a reduce-scatter plus two AllGathers ≈ 1.5×).
    pub fn comm_factor(self) -> f64 {
        if self.shards_parameters() {
            1.5
        } else {
            1.0
        }
    }
}

/// Training-time options that change the memory footprint.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainingConfig {
    /// Optimizer choice.
    pub optimizer: Optimizer,
    /// Automatic mixed precision: fp16 activations/gradients with fp32
    /// master weights.
    pub amp: bool,
    /// Activation recomputation (ref \[9\]): store only layer-boundary
    /// checkpoints, recompute the rest during backward.
    pub recompute: bool,
    /// ZeRO sharding stage (ref \[31\]).
    pub zero: ZeroStage,
    /// ZeRO-Offload (ref \[34\]): optimizer states and fp32 master weights
    /// live in host memory; the device keeps fp16 parameters. Implies a
    /// PCIe transfer of gradients/updates each step (charged by the
    /// simulator).
    pub offload: bool,
    /// Data-parallel ranks the ZeRO stages shard across. Set by the planner
    /// to the gradient-sync group size; 1 disables sharding arithmetic.
    pub dp_shards: usize,
}

impl Default for TrainingConfig {
    fn default() -> Self {
        Self {
            optimizer: Optimizer::Adam,
            amp: false,
            recompute: false,
            zero: ZeroStage::None,
            offload: false,
            dp_shards: 1,
        }
    }
}

/// Fixed per-GPU runtime overhead (CUDA context + workspace), bytes.
///
/// [`TrainingConfig::memory_bytes`] includes it once; planners placing
/// several TaskGraphs on one GPU must subtract it per extra TaskGraph.
pub const RUNTIME_OVERHEAD_BYTES: u64 = 1 << 30;

impl TrainingConfig {
    /// Estimated device memory for one replica of `profile` at `batch`
    /// samples, with stored activations scaled by `act_multiplier` (1.0 for
    /// plain DP; the number of in-flight micro-batches for pipeline stages).
    pub fn memory_bytes(&self, profile: &CostProfile, batch: usize, act_multiplier: f64) -> u64 {
        let p = profile.param_count as f64;
        let d = self.dp_shards.max(1) as f64;
        // Master weights stay fp32; AMP adds an fp16 working copy. ZeRO-3
        // shards both; ZeRO-Offload moves the fp32 master copy to the host
        // (an fp16 working copy remains on device under AMP).
        let mut master = p * 4.0;
        let mut working = if self.amp { p * 2.0 } else { 0.0 };
        if self.zero.shards_parameters() {
            master /= d;
            working /= d;
        }
        if self.offload {
            master = 0.0;
            if !self.amp {
                // Without AMP the device still needs an fp32 working copy.
                working = working.max(
                    p * 4.0
                        / if self.zero.shards_parameters() {
                            d
                        } else {
                            1.0
                        },
                );
            }
        }
        let mut grads = p * if self.amp { 2.0 } else { 4.0 };
        if self.zero.shards_gradients() {
            grads /= d;
        }
        let mut opt_state = p * self.optimizer.state_bytes_per_param();
        if self.zero.shards_optimizer() {
            opt_state /= d;
        }
        if self.offload {
            opt_state = 0.0;
        }
        let act_per_sample = if self.recompute {
            profile.checkpoint_bytes_per_sample
        } else {
            profile.activation_bytes_per_sample
        };
        let act_scale = if self.amp { 0.5 } else { 1.0 };
        let activations = act_per_sample * batch as f64 * act_multiplier * act_scale;
        // Fixed runtime overhead: CUDA context + workspace, ~1 GiB.
        let overhead = RUNTIME_OVERHEAD_BYTES as f64;
        (master + working + grads + opt_state + activations + overhead) as u64
    }

    /// Host↔device bytes ZeRO-Offload moves per step: gradients down to the
    /// host and updated fp16 parameters back.
    pub fn offload_bytes_per_step(&self, profile: &CostProfile) -> u64 {
        if !self.offload {
            return 0;
        }
        let p = profile.param_count;
        let grad = if self.amp { 2 } else { 4 };
        let updated = 2; // fp16 parameters return
        p * (grad + updated) / self.dp_shards.max(1) as u64
    }

    /// FLOPs to process `batch` samples for one training step (forward +
    /// backward + recompute overhead if enabled).
    pub fn step_flops(&self, profile: &CostProfile, batch: usize) -> f64 {
        let fwd = profile.forward_flops_per_sample * batch as f64;
        // Backward ≈ 2× forward; recomputation replays the forward once more.
        let factor = if self.recompute { 4.0 } else { 3.0 };
        fwd * factor
    }
}

/// Aggregated analytic costs of a graph or subgraph, normalized per sample.
#[derive(Debug, Clone, PartialEq)]
pub struct CostProfile {
    /// Trainable parameters.
    pub param_count: u64,
    /// fp32 bytes of those parameters.
    pub param_bytes: u64,
    /// Forward FLOPs divided by the reference batch size.
    pub forward_flops_per_sample: f64,
    /// Bytes of all forward activations per sample (stored for backward).
    pub activation_bytes_per_sample: f64,
    /// Bytes of layer-boundary activations per sample (what recomputation
    /// keeps).
    pub checkpoint_bytes_per_sample: f64,
    /// Bytes read+written per sample by bandwidth-bound ops (elementwise,
    /// norms, softmax, lookups) — the roofline term the simulator charges
    /// against device memory bandwidth.
    pub memory_traffic_bytes_per_sample: f64,
    /// Batch size the source graph was built with.
    pub ref_batch: usize,
}

impl CostProfile {
    /// Profile a whole graph built at `ref_batch` samples per step.
    pub fn from_graph(graph: &Graph, ref_batch: usize) -> CostProfile {
        let ids: Vec<OpId> = graph.ops().iter().map(|op| op.id).collect();
        Self::from_ops(graph, &ids, ref_batch)
    }

    /// Profile the subgraph formed by `ids` (e.g., one TaskGraph or one
    /// pipeline stage).
    pub fn from_ops(graph: &Graph, ids: &[OpId], ref_batch: usize) -> CostProfile {
        assert!(ref_batch > 0, "reference batch must be positive");
        let mut param_count = 0u64;
        let mut fwd_flops = 0.0f64;
        let mut act_bytes = 0u64;
        let mut traffic_bytes = 0u64;
        // Last op of each layer — its output is the layer checkpoint. Ops
        // arrive grouped by layer in practice, so a tail-first scan over a
        // small vec is amortized O(1) per op (checkpoint_bytes is a u64 sum,
        // so the collection order does not affect the result).
        let mut layer_last: Vec<(usize, OpId)> = Vec::new();
        for &id in ids {
            let op = match graph.op(id) {
                Ok(op) => op,
                Err(_) => continue,
            };
            if op.phase != Phase::Forward {
                continue;
            }
            param_count += op.param_count();
            fwd_flops += op.forward_flops();
            if !matches!(op.kind, OpKind::Input) {
                act_bytes += op.output_bytes();
            }
            if op.kind.is_bandwidth_bound() {
                // Read the input(s), write the output: ~2x output bytes for
                // shape-preserving elementwise work.
                traffic_bytes += 2 * op.output_bytes();
            }
            if let Some(layer) = op.layer {
                match layer_last.iter_mut().rev().find(|(l, _)| *l == layer) {
                    Some(entry) => entry.1 = id,
                    None => layer_last.push((layer, id)),
                }
            }
        }
        let mut checkpoint_bytes = 0u64;
        for (_, id) in layer_last {
            if let Ok(op) = graph.op(id) {
                checkpoint_bytes += op.output_bytes();
            }
        }
        // A model without layer annotations keeps everything under
        // recomputation (no checkpoints identified).
        if checkpoint_bytes == 0 {
            checkpoint_bytes = act_bytes;
        }
        let rb = ref_batch as f64;
        CostProfile {
            param_count,
            param_bytes: param_count * 4,
            forward_flops_per_sample: fwd_flops / rb,
            activation_bytes_per_sample: act_bytes as f64 / rb,
            checkpoint_bytes_per_sample: checkpoint_bytes as f64 / rb,
            memory_traffic_bytes_per_sample: traffic_bytes as f64 / rb,
            ref_batch,
        }
    }

    /// Forward FLOPs at an arbitrary batch size.
    pub fn forward_flops(&self, batch: usize) -> f64 {
        self.forward_flops_per_sample * batch as f64
    }

    /// Gradient bytes synchronized per step (fp32).
    pub fn gradient_bytes(&self) -> u64 {
        self.param_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;
    use crate::op::{OpKind, Phase};
    use crate::tensor::TensorMeta;

    /// Two-layer toy model at batch 8: input → matmul(16×32) → matmul(32×8).
    fn toy() -> Graph {
        let mut g = Graph::new("toy");
        let x = g
            .add_op(
                "x",
                OpKind::Input,
                vec![],
                TensorMeta::f32(&[8, 16]),
                Phase::Forward,
                None,
            )
            .unwrap();
        let h = g
            .add_op(
                "fc1",
                OpKind::MatMul {
                    m: 8,
                    k: 16,
                    n: 32,
                    has_params: true,
                },
                vec![x],
                TensorMeta::f32(&[8, 32]),
                Phase::Forward,
                Some(0),
            )
            .unwrap();
        g.add_op(
            "fc2",
            OpKind::MatMul {
                m: 8,
                k: 32,
                n: 8,
                has_params: true,
            },
            vec![h],
            TensorMeta::f32(&[8, 8]),
            Phase::Forward,
            Some(1),
        )
        .unwrap();
        g
    }

    #[test]
    fn profile_aggregates_costs() {
        let p = CostProfile::from_graph(&toy(), 8);
        assert_eq!(p.param_count, (16 * 32 + 32) + (32 * 8 + 8));
        assert_eq!(p.param_bytes, p.param_count * 4);
        let fwd = 2.0 * 8.0 * 16.0 * 32.0 + 2.0 * 8.0 * 32.0 * 8.0;
        assert!((p.forward_flops(8) - fwd).abs() < 1e-6);
        // Input tensor excluded from activations.
        let act = (8 * 32 + 8 * 8) * 4;
        assert!((p.activation_bytes_per_sample * 8.0 - act as f64).abs() < 1e-6);
    }

    #[test]
    fn checkpoints_are_layer_boundaries() {
        let p = CostProfile::from_graph(&toy(), 8);
        // Both matmuls end their layers, so checkpoints equal activations
        // here; a deeper layer would shrink the ratio.
        assert!(p.checkpoint_bytes_per_sample <= p.activation_bytes_per_sample);
    }

    #[test]
    fn memory_scales_linearly_in_batch() {
        let p = CostProfile::from_graph(&toy(), 8);
        let cfg = TrainingConfig::default();
        let m8 = cfg.memory_bytes(&p, 8, 1.0);
        let m16 = cfg.memory_bytes(&p, 16, 1.0);
        let m24 = cfg.memory_bytes(&p, 24, 1.0);
        // Differences are exactly the activation increments.
        assert_eq!(m16 - m8, m24 - m16);
    }

    #[test]
    fn optimizer_state_ordering() {
        let p = CostProfile::from_graph(&toy(), 8);
        let mem = |opt| {
            TrainingConfig {
                optimizer: opt,
                ..TrainingConfig::default()
            }
            .memory_bytes(&p, 8, 1.0)
        };
        assert!(mem(Optimizer::Adam) > mem(Optimizer::SgdMomentum));
        assert!(mem(Optimizer::SgdMomentum) > mem(Optimizer::Sgd));
        assert!(mem(Optimizer::Adafactor) < mem(Optimizer::SgdMomentum));
    }

    #[test]
    fn recompute_and_amp_reduce_memory() {
        let p = CostProfile::from_graph(&toy(), 8);
        let base = TrainingConfig::default();
        let recompute = TrainingConfig {
            recompute: true,
            ..base
        };
        let amp = TrainingConfig { amp: true, ..base };
        assert!(recompute.memory_bytes(&p, 1024, 1.0) <= base.memory_bytes(&p, 1024, 1.0));
        assert!(amp.memory_bytes(&p, 1024, 1.0) < base.memory_bytes(&p, 1024, 1.0));
    }

    #[test]
    fn recompute_costs_an_extra_forward() {
        let p = CostProfile::from_graph(&toy(), 8);
        let base = TrainingConfig::default();
        let rc = TrainingConfig {
            recompute: true,
            ..base
        };
        let f = p.forward_flops(8);
        assert!((base.step_flops(&p, 8) - 3.0 * f).abs() < 1e-6);
        assert!((rc.step_flops(&p, 8) - 4.0 * f).abs() < 1e-6);
    }

    #[test]
    fn subgraph_profile_partitions_whole() {
        let g = toy();
        let whole = CostProfile::from_graph(&g, 8);
        let a = CostProfile::from_ops(&g, &g.op_range(0, 2).unwrap(), 8);
        let b = CostProfile::from_ops(&g, &g.op_range(2, 3).unwrap(), 8);
        assert_eq!(whole.param_count, a.param_count + b.param_count);
        assert!(
            (whole.forward_flops_per_sample
                - (a.forward_flops_per_sample + b.forward_flops_per_sample))
                .abs()
                < 1e-9
        );
    }
}

#[cfg(test)]
mod zero_tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn profile() -> CostProfile {
        let mut b = GraphBuilder::new("z");
        let x = b.input("x", &[8, 1024]).unwrap();
        b.dense("fc", x, 8, 1024, 65536).unwrap();
        CostProfile::from_graph(&b.finish(), 8)
    }

    fn mem(zero: ZeroStage, offload: bool, amp: bool, shards: usize) -> u64 {
        let cfg = TrainingConfig {
            optimizer: Optimizer::Adam,
            amp,
            recompute: false,
            zero,
            offload,
            dp_shards: shards,
        };
        cfg.memory_bytes(&profile(), 8, 1.0)
    }

    #[test]
    fn zero_stages_shrink_memory_monotonically() {
        let none = mem(ZeroStage::None, false, false, 8);
        let z1 = mem(ZeroStage::OptimizerState, false, false, 8);
        let z2 = mem(ZeroStage::Gradients, false, false, 8);
        let z3 = mem(ZeroStage::Parameters, false, false, 8);
        assert!(none > z1, "{none} > {z1}");
        assert!(z1 > z2);
        assert!(z2 > z3);
    }

    #[test]
    fn zero_is_noop_without_data_parallelism() {
        assert_eq!(
            mem(ZeroStage::Parameters, false, false, 1),
            mem(ZeroStage::None, false, false, 1)
        );
    }

    #[test]
    fn zero1_removes_exactly_the_sharded_optimizer_share() {
        // 67.2 M params, Adam = 8 B/param; sharding 8 ways saves 7/8 of it.
        let p = profile();
        let none = mem(ZeroStage::None, false, false, 8) as f64;
        let z1 = mem(ZeroStage::OptimizerState, false, false, 8) as f64;
        let expect = p.param_count as f64 * 8.0 * (7.0 / 8.0);
        assert!(
            ((none - z1) - expect).abs() < 16.0,
            "{} vs {expect}",
            none - z1
        );
    }

    #[test]
    fn offload_moves_states_off_device() {
        let on_device = mem(ZeroStage::None, false, true, 1);
        let offloaded = mem(ZeroStage::None, true, true, 1);
        // Offload drops the fp32 master weights and Adam states from the GPU.
        let p = profile();
        let saved = p.param_count as f64 * (4.0 + 8.0);
        assert!(
            ((on_device - offloaded) as f64 - saved).abs() < 16.0,
            "saved {} expected {saved}",
            on_device - offloaded
        );
    }

    #[test]
    fn offload_transfer_accounting() {
        let cfg = TrainingConfig {
            offload: true,
            amp: true,
            dp_shards: 4,
            ..TrainingConfig::default()
        };
        let p = profile();
        // fp16 grads down + fp16 params back = 4 B/param, sharded 4 ways.
        assert_eq!(cfg.offload_bytes_per_step(&p), p.param_count * 4 / 4);
        let off = TrainingConfig::default();
        assert_eq!(off.offload_bytes_per_step(&p), 0);
    }

    #[test]
    fn zero3_comm_factor() {
        assert_eq!(ZeroStage::None.comm_factor(), 1.0);
        assert_eq!(ZeroStage::Gradients.comm_factor(), 1.0);
        assert_eq!(ZeroStage::Parameters.comm_factor(), 1.5);
        assert!(ZeroStage::Parameters.shards_optimizer());
        assert!(!ZeroStage::OptimizerState.shards_gradients());
    }
}
