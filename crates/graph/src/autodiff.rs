//! Training-graph derivation: backward and optimizer phases.
//!
//! Whale groups a TaskGraph's operations into forward, backward, optimizer,
//! and other phases and schedules them with control dependencies (§4,
//! "TaskGraph Schedule"). The model zoo builds forward graphs; this module
//! derives the full training graph: one gradient op per forward op (standard
//! reverse-mode sweep, 2× forward FLOPs) wired in reversed dataflow order,
//! plus one update op per parameterized forward op.

use crate::graph::{Graph, GraphError, OpId};
use crate::op::{OpKind, Phase};
use crate::tensor::TensorMeta;

/// A forward graph extended with backward and optimizer phases.
#[derive(Debug, Clone)]
pub struct TrainingGraph {
    /// The combined graph (forward ops keep their original ids).
    pub graph: Graph,
    /// For each forward op id, the id of its gradient op (None for inputs,
    /// which receive no gradient).
    pub backward_of: Vec<Option<OpId>>,
    /// Parameter-update ops, one per parameterized forward op.
    pub optimizer_ops: Vec<OpId>,
}

impl TrainingGraph {
    /// Ids of ops in a given phase.
    pub fn phase_ops(&self, phase: Phase) -> Vec<OpId> {
        self.graph
            .ops()
            .iter()
            .filter(|op| op.phase == phase)
            .map(|op| op.id)
            .collect()
    }
}

/// Derive the training graph of `forward`.
///
/// Gradient ops are appended in reverse topological order, so the combined
/// graph remains a DAG with ids in a valid execution order: all forward ops,
/// then all backward ops, then the optimizer updates.
pub fn derive_training_graph(forward: &Graph) -> Result<TrainingGraph, GraphError> {
    let n = forward.len();
    let mut graph = forward.clone();
    let consumers = forward.consumers();
    let mut backward_of: Vec<Option<OpId>> = vec![None; n];

    // Reverse sweep: the gradient of op i depends on the gradients of all
    // its consumers (which, in reverse order, are already emitted) and on
    // the op's own saved activations.
    for i in (0..n).rev() {
        let op = forward.op(OpId(i))?;
        if matches!(op.kind, OpKind::Input) {
            continue;
        }
        let mut inputs: Vec<OpId> = vec![OpId(i)];
        for &c in &consumers[i] {
            if let Some(g) = backward_of[c.0] {
                inputs.push(g);
            }
        }
        let grad_id = graph.add_op(
            format!("grad({})", op.name),
            OpKind::Synthetic {
                flops: op.kind.backward_flops(),
                params: 0,
            },
            inputs,
            // The gradient w.r.t. the op's input has the input's shape; we
            // conservatively carry the op's output meta (same magnitude).
            op.output.clone(),
            Phase::Backward,
            op.layer,
        )?;
        backward_of[i] = Some(grad_id);
    }

    // Optimizer updates: read the accumulated gradient, write parameters.
    let mut optimizer_ops = Vec::new();
    for (i, &grad_slot) in backward_of.iter().enumerate() {
        let op = forward.op(OpId(i))?;
        let params = op.param_count();
        if params == 0 {
            continue;
        }
        let Some(grad) = grad_slot else { continue };
        let update = graph.add_op(
            format!("update({})", op.name),
            OpKind::Synthetic {
                // A few FLOPs per parameter (Adam-style update math).
                flops: 4.0 * params as f64,
                params: 0,
            },
            vec![grad],
            TensorMeta::f32(&[]),
            Phase::Optimizer,
            op.layer,
        )?;
        optimizer_ops.push(update);
    }

    Ok(TrainingGraph {
        graph,
        backward_of,
        optimizer_ops,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::models;

    fn two_layer() -> Graph {
        let mut b = GraphBuilder::new("t");
        let x = b.input("x", &[4, 8]).unwrap();
        let h = b.dense("fc1", x, 4, 8, 16).unwrap();
        b.dense("fc2", h, 4, 16, 2).unwrap();
        b.finish()
    }

    #[test]
    fn phases_partition_the_training_graph() {
        let tg = derive_training_graph(&two_layer()).unwrap();
        let fw = tg.phase_ops(Phase::Forward).len();
        let bw = tg.phase_ops(Phase::Backward).len();
        let opt = tg.phase_ops(Phase::Optimizer).len();
        assert_eq!(fw, 3);
        assert_eq!(bw, 2, "inputs get no gradient");
        assert_eq!(opt, 2, "both dense layers update");
        assert_eq!(tg.graph.len(), fw + bw + opt);
    }

    #[test]
    fn backward_flops_double_forward() {
        let fwd = two_layer();
        let fw_flops = fwd.total_forward_flops();
        let tg = derive_training_graph(&fwd).unwrap();
        let bw_flops: f64 = tg
            .phase_ops(Phase::Backward)
            .iter()
            .map(|&id| tg.graph.op(id).unwrap().forward_flops())
            .sum();
        assert!((bw_flops - 2.0 * fw_flops).abs() < 1e-6);
    }

    #[test]
    fn gradient_dataflow_is_reversed() {
        let fwd = two_layer();
        let tg = derive_training_graph(&fwd).unwrap();
        // grad(fc2) must precede grad(fc1) in id (= topological) order.
        let g1 = tg.backward_of[1].unwrap();
        let g2 = tg.backward_of[2].unwrap();
        assert!(g2.0 < g1.0, "reverse sweep emits deeper grads first");
        // grad(fc1) consumes grad(fc2).
        assert!(tg.graph.op(g1).unwrap().inputs.contains(&g2));
        // And its own forward activation.
        assert!(tg.graph.op(g1).unwrap().inputs.contains(&OpId(1)));
    }

    #[test]
    fn optimizer_ops_depend_on_gradients() {
        let tg = derive_training_graph(&two_layer()).unwrap();
        for &u in &tg.optimizer_ops {
            let op = tg.graph.op(u).unwrap();
            assert_eq!(op.phase, Phase::Optimizer);
            assert_eq!(op.inputs.len(), 1);
            let dep = tg.graph.op(op.inputs[0]).unwrap();
            assert_eq!(dep.phase, Phase::Backward);
        }
    }

    #[test]
    fn derives_real_models() {
        let fwd = models::bert_base(2, 32).unwrap();
        let tg = derive_training_graph(&fwd).unwrap();
        // Training graph is a valid DAG (construction would have failed
        // otherwise) roughly 2-3x the forward size.
        assert!(tg.graph.len() > 2 * fwd.len());
        assert!(!tg.phase_ops(Phase::Optimizer).is_empty());
        // Profiles over the forward subset are unchanged.
        let fw_ids: Vec<OpId> = (0..fwd.len()).map(OpId).collect();
        let p_before = crate::profile::CostProfile::from_ops(&fwd, &fw_ids, 2);
        let p_after = crate::profile::CostProfile::from_ops(&tg.graph, &fw_ids, 2);
        assert_eq!(p_before, p_after);
    }

    #[test]
    fn branching_graph_accumulates_consumer_grads() {
        // x → a, x → b, (a,b) → c: grad(x)... x is input (no grad), but
        // grad(a) and grad(b) each consume grad(c).
        let mut bld = GraphBuilder::new("branch");
        let x = bld.input("x", &[2, 4]).unwrap();
        let a = bld.dense("a", x, 2, 4, 4).unwrap();
        let b2 = bld.dense("b", x, 2, 4, 4).unwrap();
        bld.elementwise("c", vec![a, b2], 1).unwrap();
        let g = bld.finish();
        let tg = derive_training_graph(&g).unwrap();
        let gc = tg.backward_of[3].unwrap();
        for fw in [1usize, 2] {
            let gop = tg.graph.op(tg.backward_of[fw].unwrap()).unwrap();
            assert!(gop.inputs.contains(&gc), "grad({fw}) uses grad(c)");
        }
    }
}
