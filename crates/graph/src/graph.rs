//! The dataflow graph: nodes, edges, topological structure.
//!
//! This is the reproduction's stand-in for a TensorFlow computation graph.
//! Construction is append-only: an op's inputs must already exist, so node
//! ids are a valid topological order by construction and the graph is a DAG
//! by construction.
//!
//! Internally a graph stores its ops once, flat and in id order — the
//! `&[Op]` view the planner consumes is simply that storage, for every
//! representation. Interned graphs additionally carry a run of
//! [`Segment`]s: a metadata overlay mapping op ranges to instantiations of
//! interned layer blocks (see [`crate::intern`]). Deep models with
//! repeated layers share one block *template* allocation across all layers
//! and all graphs in the process, and fingerprinting, equality, and
//! adjacency compose from per-block memos instead of re-walking the ops.

use crate::intern::{BlockInst, TemplateInput};
use crate::op::{OpKind, Phase};
use crate::tensor::TensorMeta;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::{Arc, OnceLock};

/// Identifier of an operation within a [`Graph`]; dense in `0..graph.len()`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct OpId(pub usize);

impl fmt::Display for OpId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "%{}", self.0)
    }
}

/// One node of the computation graph.
#[derive(Debug, Clone, PartialEq)]
pub struct Op {
    /// Dense id within the graph.
    pub id: OpId,
    /// Human-readable name (`"encoder.3/attn/qkv"`).
    pub name: String,
    /// Semantic kind with cost attributes.
    pub kind: OpKind,
    /// Data dependencies (producers of this op's inputs).
    pub inputs: Vec<OpId>,
    /// Metadata of the (single) output tensor.
    pub output: TensorMeta,
    /// Execution phase.
    pub phase: Phase,
    /// Model-level layer index, used for stage partitioning diagnostics.
    pub layer: Option<usize>,
}

impl Op {
    /// Forward FLOPs of this op.
    pub fn forward_flops(&self) -> f64 {
        self.kind.forward_flops()
    }

    /// Parameter count owned by this op.
    pub fn param_count(&self) -> u64 {
        self.kind.param_count()
    }

    /// Output activation size in bytes.
    pub fn output_bytes(&self) -> u64 {
        self.output.size_bytes()
    }
}

/// Errors raised while building or slicing graphs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// An op referenced an input id that does not exist yet.
    DanglingInput {
        /// The op being added.
        op: String,
        /// The missing input id.
        input: OpId,
    },
    /// A subgraph request referenced an unknown op.
    UnknownOp(OpId),
    /// An op-range request was empty or out of bounds.
    BadRange(String),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::DanglingInput { op, input } => {
                write!(f, "op '{op}' references missing input {input}")
            }
            GraphError::UnknownOp(id) => write!(f, "unknown op {id}"),
            GraphError::BadRange(s) => write!(f, "bad op range: {s}"),
        }
    }
}

impl std::error::Error for GraphError {}

/// One run of a graph's op sequence: either verbatim ops (graph inputs,
/// embeddings, heads, losses) or one instantiation of an interned layer
/// block. Segments are an overlay over the graph's flat op storage — they
/// hold no ops themselves, only ranges and block memos.
#[derive(Debug, Clone)]
pub enum Segment {
    /// Literal ops `flat[start..start + len]` (positions are op ids).
    Literal {
        /// First op id covered by the run.
        start: usize,
        /// Number of ops in the run.
        len: usize,
    },
    /// One placement of a shared block (its ops live at
    /// `flat[inst.base..inst.base + inst.len()]`). Stored inline — the
    /// whole segment list is behind one `Arc`, so per-block indirection
    /// would buy nothing and cost an allocation per layer.
    Block(BlockInst),
}

impl Segment {
    fn len(&self) -> usize {
        match self {
            Segment::Literal { len, .. } => *len,
            Segment::Block(inst) => inst.len(),
        }
    }

    fn start(&self) -> usize {
        match self {
            Segment::Literal { start, .. } => *start,
            Segment::Block(inst) => inst.base,
        }
    }
}

/// Adjacency derived from the op list, built once on first use: the inverse
/// edge map plus the source/sink frontiers. `sources()`/`sinks()`/
/// `consumers()` used to rebuild these `Vec`s on every call — an O(V+E)
/// term per call site that planner and autodiff loops paid repeatedly.
#[derive(Debug)]
struct AdjCache {
    consumers: Vec<Vec<OpId>>,
    sources: Vec<OpId>,
    sinks: Vec<OpId>,
}

impl AdjCache {
    fn build(ops: &[Op]) -> AdjCache {
        let mut consumers = vec![Vec::new(); ops.len()];
        let mut consumed = vec![false; ops.len()];
        for op in ops {
            for &input in &op.inputs {
                consumers[input.0].push(op.id);
                consumed[input.0] = true;
            }
        }
        let sources = ops
            .iter()
            .filter(|op| op.inputs.is_empty())
            .map(|op| op.id)
            .collect();
        let sinks = ops
            .iter()
            .filter(|op| !consumed[op.id.0])
            .map(|op| op.id)
            .collect();
        AdjCache {
            consumers,
            sources,
            sinks,
        }
    }

    /// Assemble adjacency from segments without re-walking block ops:
    /// block-internal edges come from the block's memoized
    /// [`crate::intern::BlockAdj`] (built once per *distinct* block
    /// process-wide, not once per graph or clone). Edge-list ordering is
    /// identical to [`AdjCache::build`] on the flat view: segments are
    /// walked in id order and block adjacency records edges in flat-scan
    /// order.
    fn build_from_segments(segments: &[Segment], flat: &[Op]) -> AdjCache {
        let len = flat.len();
        let mut consumers: Vec<Vec<OpId>> = vec![Vec::new(); len];
        let mut consumed = vec![false; len];
        let mut sources = Vec::new();
        for segment in segments {
            match segment {
                Segment::Literal { start, len } => {
                    for op in &flat[*start..start + len] {
                        if op.inputs.is_empty() {
                            sources.push(op.id);
                        }
                        for &input in &op.inputs {
                            consumers[input.0].push(op.id);
                            consumed[input.0] = true;
                        }
                    }
                }
                Segment::Block(inst) => {
                    let adj = inst.block.adjacency();
                    let base = inst.base;
                    for &s in &adj.sources_rel {
                        sources.push(OpId(base + s));
                    }
                    for (producer, cs) in adj.internal_consumers.iter().enumerate() {
                        if cs.is_empty() {
                            continue;
                        }
                        consumed[base + producer] = true;
                        let list = &mut consumers[base + producer];
                        list.extend(cs.iter().map(|&c| OpId(base + c)));
                    }
                    for (slot, cs) in adj.external_consumers.iter().enumerate() {
                        if cs.is_empty() {
                            continue;
                        }
                        let producer = inst.externals[slot];
                        consumed[producer.0] = true;
                        let list = &mut consumers[producer.0];
                        list.extend(cs.iter().map(|&c| OpId(base + c)));
                    }
                }
            }
        }
        let sinks = (0..len).filter(|&i| !consumed[i]).map(OpId).collect();
        AdjCache {
            consumers,
            sources,
            sinks,
        }
    }
}

/// Storage backing a graph: always the flat op vector, optionally overlaid
/// with segments mapping op ranges to interned block instantiations.
#[derive(Debug, Clone)]
pub(crate) enum Rep {
    /// Every op stored verbatim, no block structure.
    Flat(Arc<Vec<Op>>),
    /// Flat ops plus the literal/block segmentation the builder recorded.
    Interned {
        segments: Arc<Vec<Segment>>,
        flat: Arc<Vec<Op>>,
    },
}

/// An append-only dataflow DAG.
///
/// Ops live behind [`Arc`]s with copy-on-write mutation, so cloning a
/// finished graph is a reference-count bump — `auto_parallel` hands one
/// built model to every candidate strategy without re-running the model
/// constructor. Value semantics are preserved: appending to a shared graph
/// copies the op list first (and collapses an interned graph to its flat
/// form, since an arbitrary append invalidates block structure).
///
/// Adjacency ([`Graph::consumers`], [`Graph::sources`], [`Graph::sinks`]) is
/// memoized behind a [`OnceLock`] and shared by clones; appending an op
/// invalidates it. For interned graphs the per-block half of that work is
/// additionally shared across *all* graphs containing the block. Equality
/// and ordering look only at the semantic `(name, ops)` content — caches
/// and representation are invisible: two graphs holding the same ops
/// compare equal whether interned or flat, with a segment/pointer fast
/// path when both sides are interned.
#[derive(Debug, Clone)]
pub struct Graph {
    name: String,
    rep: Rep,
    adj: Arc<OnceLock<AdjCache>>,
}

fn segment_eq(a: &Segment, a_flat: &[Op], b: &Segment, b_flat: &[Op]) -> bool {
    match (a, b) {
        (Segment::Literal { start: sa, len: la }, Segment::Literal { start: sb, len: lb }) => {
            sa == sb && la == lb && a_flat[*sa..sa + la] == b_flat[*sb..sb + lb]
        }
        (Segment::Block(a), Segment::Block(b)) => {
            // Interning guarantees pointer equality ⟺ template equality,
            // so this is exact, not probabilistic. Prefix text is compared
            // through the flat storage (instances own no text); blocks are
            // never empty, so `base` is in bounds.
            Arc::ptr_eq(&a.block, &b.block)
                && a.base == b.base
                && a.layer_base == b.layer_base
                && a.prefix_len == b.prefix_len
                && a.externals == b.externals
                && a_flat[a.base].name.as_bytes()[..a.prefix_len]
                    == b_flat[b.base].name.as_bytes()[..b.prefix_len]
        }
        _ => false,
    }
}

impl PartialEq for Graph {
    fn eq(&self, other: &Self) -> bool {
        if self.name != other.name || self.len() != other.len() {
            return false;
        }
        // Interned fast path: identical segment structure proves equality
        // without comparing a single block op (literal runs — a handful of
        // embeddings/heads — are compared directly).
        if let (
            Rep::Interned {
                segments: sa,
                flat: fa,
            },
            Rep::Interned {
                segments: sb,
                flat: fb,
            },
        ) = (&self.rep, &other.rep)
        {
            if Arc::ptr_eq(fa, fb) || Arc::ptr_eq(sa, sb) {
                return true;
            }
            if sa.len() == sb.len()
                && sa
                    .iter()
                    .zip(sb.iter())
                    .all(|(x, y)| segment_eq(x, fa, y, fb))
            {
                return true;
            }
            // Differently segmented graphs can still flatten identically;
            // fall through to the semantic comparison.
        }
        self.ops() == other.ops()
    }
}

/// Instantiate one block placement into `out` (which must be exactly
/// `inst.len()` ops long), used when splicing an edited block into a
/// graph's flat storage. `prefix` is the instantiation's name prefix (the
/// instance only records its length). This is the only path that rebuilds
/// ops from a template — ordinary construction records ops once and never
/// revisits them.
fn write_block_ops(inst: &BlockInst, prefix: &str, out: &mut [Op]) {
    let template = inst.block.template();
    debug_assert_eq!(out.len(), template.ops.len());
    debug_assert_eq!(prefix.len(), inst.prefix_len);
    for (off, (slot, t)) in out.iter_mut().zip(template.ops.iter()).enumerate() {
        *slot = Op {
            id: OpId(inst.base + off),
            name: format!("{prefix}{}", t.suffix),
            kind: t.kind.clone(),
            inputs: t
                .inputs
                .iter()
                .map(|input| match *input {
                    TemplateInput::Internal(p) => OpId(inst.base + p),
                    TemplateInput::External(s) => inst.externals[s],
                })
                .collect(),
            output: t.output.clone(),
            phase: t.phase,
            layer: t.layer_rel.map(|rel| inst.layer_base + rel),
        };
    }
}

impl Graph {
    /// Create an empty graph.
    pub fn new(name: impl Into<String>) -> Graph {
        Graph {
            name: name.into(),
            rep: Rep::Flat(Arc::new(Vec::new())),
            adj: Arc::new(OnceLock::new()),
        }
    }

    /// Assemble a graph from builder-produced flat ops plus the segment
    /// overlay describing which ranges are interned blocks (see
    /// [`crate::builder::GraphBuilder`]).
    pub(crate) fn from_segments(name: String, segments: Vec<Segment>, flat: Vec<Op>) -> Graph {
        debug_assert_eq!(
            segments.iter().map(Segment::len).sum::<usize>(),
            flat.len(),
            "segments must tile the op list"
        );
        debug_assert!(
            segments
                .iter()
                .scan(0usize, |pos, s| {
                    let ok = s.start() == *pos;
                    *pos += s.len();
                    Some(ok)
                })
                .all(|ok| ok),
            "segments must be contiguous and in id order"
        );
        Graph {
            name,
            rep: Rep::Interned {
                segments: Arc::new(segments),
                flat: Arc::new(flat),
            },
            adj: Arc::new(OnceLock::new()),
        }
    }

    /// Assemble a flat graph from already-validated ops (builder internal).
    pub(crate) fn from_flat(name: String, ops: Vec<Op>) -> Graph {
        debug_assert!(ops.iter().enumerate().all(|(i, op)| op.id.0 == i));
        Graph {
            name,
            rep: Rep::Flat(Arc::new(ops)),
            adj: Arc::new(OnceLock::new()),
        }
    }

    pub(crate) fn rep(&self) -> &Rep {
        &self.rep
    }

    /// Graph name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All ops, in id (= topological) order. Free for every
    /// representation: interned graphs store their flat view eagerly (the
    /// builder records each op exactly once) and share it across clones.
    pub fn ops(&self) -> &[Op] {
        match &self.rep {
            Rep::Flat(ops) => ops,
            Rep::Interned { flat, .. } => flat,
        }
    }

    /// Number of ops (cheap for every representation).
    pub fn len(&self) -> usize {
        self.ops().len()
    }

    /// Whether the graph has no ops.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of interned-block instantiations (0 for flat graphs).
    pub fn block_count(&self) -> usize {
        match &self.rep {
            Rep::Flat(_) => 0,
            Rep::Interned { segments, .. } => segments
                .iter()
                .filter(|s| matches!(s, Segment::Block(_)))
                .count(),
        }
    }

    /// Look up an op.
    pub fn op(&self, id: OpId) -> Result<&Op, GraphError> {
        self.ops().get(id.0).ok_or(GraphError::UnknownOp(id))
    }

    /// Append an op whose inputs must already exist.
    ///
    /// An arbitrary append has no block structure, so an interned graph
    /// first collapses to its flat form (block sharing with other graphs
    /// is unaffected; this graph simply stops participating).
    pub fn add_op(
        &mut self,
        name: impl Into<String>,
        kind: OpKind,
        inputs: Vec<OpId>,
        output: TensorMeta,
        phase: Phase,
        layer: Option<usize>,
    ) -> Result<OpId, GraphError> {
        let name = name.into();
        let id = OpId(self.len());
        for &input in &inputs {
            if input.0 >= id.0 {
                return Err(GraphError::DanglingInput { op: name, input });
            }
        }
        if let Rep::Interned { flat, .. } = &self.rep {
            // The flat storage already exists — collapsing just drops the
            // segment overlay (block sharing with other graphs is
            // unaffected; this graph simply stops participating).
            self.rep = Rep::Flat(Arc::clone(flat));
        }
        let Rep::Flat(ops) = &mut self.rep else {
            unreachable!("interned representation collapsed above")
        };
        Arc::make_mut(ops).push(Op {
            id,
            name,
            kind,
            inputs,
            output,
            phase,
            layer,
        });
        // Invalidate the memoized adjacency. A uniquely owned, still-empty
        // cell is cleared in place (no allocation on the builder hot path);
        // a cell shared with clones is detached so their view stays valid.
        match Arc::get_mut(&mut self.adj) {
            Some(cell) => {
                cell.take();
            }
            None => self.adj = Arc::new(OnceLock::new()),
        }
        Ok(id)
    }

    /// Replace the `index`-th block instantiation with the `donor_index`-th
    /// block of `donor`, keeping this graph's placement (prefix, id base,
    /// layer base, external wiring). This is the single-layer-edit
    /// primitive: every untouched segment is shared with `self`, so
    /// re-fingerprinting the result re-hashes only the spliced block.
    ///
    /// The donor block must have the same op count (so downstream ids do
    /// not shift) and the same external arity; the caller is responsible
    /// for shape compatibility at the block boundary.
    pub fn with_block_replaced(
        &self,
        index: usize,
        donor: &Graph,
        donor_index: usize,
    ) -> Result<Graph, GraphError> {
        fn nth_block(rep: &Rep, n: usize) -> Option<(usize, &BlockInst)> {
            let Rep::Interned { segments, .. } = rep else {
                return None;
            };
            segments
                .iter()
                .enumerate()
                .filter_map(|(i, s)| match s {
                    Segment::Block(inst) => Some((i, inst)),
                    Segment::Literal { .. } => None,
                })
                .nth(n)
        }
        let (seg_index, target) = nth_block(&self.rep, index)
            .ok_or_else(|| GraphError::BadRange(format!("graph has no interned block #{index}")))?;
        let (_, donor_inst) = nth_block(donor.rep(), donor_index).ok_or_else(|| {
            GraphError::BadRange(format!("donor has no interned block #{donor_index}"))
        })?;
        let donor_block = Arc::clone(&donor_inst.block);
        if donor_block.template().ops.len() != target.len() {
            return Err(GraphError::BadRange(format!(
                "replacement block has {} ops, target has {}",
                donor_block.template().ops.len(),
                target.len()
            )));
        }
        if donor_block.template().external_slots != target.externals.len() {
            return Err(GraphError::BadRange(format!(
                "replacement block takes {} externals, target wires {}",
                donor_block.template().external_slots,
                target.externals.len()
            )));
        }
        let Rep::Interned { segments, flat } = &self.rep else {
            unreachable!("nth_block succeeded on self above")
        };
        let new_inst = BlockInst::new(
            donor_block,
            target.prefix_len,
            target.base,
            target.layer_base,
            target.externals.clone(),
        );
        // Splice: clone the flat storage, rewrite only the replaced range.
        // The replacement keeps the target's prefix text, read from the
        // original storage before the range is overwritten.
        let prefix = &flat[target.base].name[..target.prefix_len];
        let mut new_flat: Vec<Op> = flat.as_ref().clone();
        let range = new_inst.base..new_inst.base + new_inst.len();
        write_block_ops(&new_inst, prefix, &mut new_flat[range]);
        let mut new_segments: Vec<Segment> = segments.as_ref().clone();
        new_segments[seg_index] = Segment::Block(new_inst);
        Ok(Graph::from_segments(
            self.name.clone(),
            new_segments,
            new_flat,
        ))
    }

    fn adjacency(&self) -> &AdjCache {
        self.adj.get_or_init(|| match &self.rep {
            Rep::Flat(ops) => AdjCache::build(ops),
            Rep::Interned { segments, flat } => AdjCache::build_from_segments(segments, flat),
        })
    }

    /// Ids of ops with no data dependencies (the graph inputs). Memoized;
    /// the first call after construction builds the adjacency cache.
    pub fn sources(&self) -> &[OpId] {
        &self.adjacency().sources
    }

    /// Ids of ops nothing consumes (the graph outputs). Memoized.
    pub fn sinks(&self) -> &[OpId] {
        &self.adjacency().sinks
    }

    /// Consumers of each op, indexed by producer id. Memoized — repeated
    /// calls return the same slices without rebuilding the edge map.
    pub fn consumers(&self) -> &[Vec<OpId>] {
        &self.adjacency().consumers
    }

    /// Total forward FLOPs over all ops.
    pub fn total_forward_flops(&self) -> f64 {
        self.ops().iter().map(|op| op.forward_flops()).sum()
    }

    /// Total trainable parameter count.
    pub fn total_params(&self) -> u64 {
        self.ops().iter().map(|op| op.param_count()).sum()
    }

    /// Per-layer aggregation: `(layer, flops, params)` for ops that carry a
    /// layer index, ordered by layer.
    pub fn per_layer_costs(&self) -> Vec<(usize, f64, u64)> {
        let mut agg: BTreeMap<usize, (f64, u64)> = BTreeMap::new();
        for op in self.ops().iter() {
            if let Some(layer) = op.layer {
                let e = agg.entry(layer).or_insert((0.0, 0));
                e.0 += op.forward_flops();
                e.1 += op.param_count();
            }
        }
        agg.into_iter().map(|(l, (f, p))| (l, f, p)).collect()
    }

    /// Cut the op-id range `[start, end)` out as a list of ids, validating
    /// bounds. Because ids are topologically ordered, a contiguous range is a
    /// convex subgraph — exactly what pipeline stages are.
    pub fn op_range(&self, start: usize, end: usize) -> Result<Vec<OpId>, GraphError> {
        if start >= end || end > self.len() {
            return Err(GraphError::BadRange(format!(
                "[{start}, {end}) of {} ops",
                self.len()
            )));
        }
        Ok((start..end).map(OpId).collect())
    }

    /// Tensors crossing from inside `ids` to outside (the *exit* tensors of a
    /// TaskGraph, §4 "TaskGraph Schedule"), as `(producer, total bytes)`.
    pub fn boundary_outputs(&self, ids: &[OpId]) -> Vec<(OpId, u64)> {
        let ops = self.ops();
        let inside: Vec<bool> = {
            let mut v = vec![false; ops.len()];
            for &id in ids {
                if id.0 < v.len() {
                    v[id.0] = true;
                }
            }
            v
        };
        let mut out = Vec::new();
        for op in ops.iter() {
            if inside[op.id.0] {
                continue;
            }
            for &input in &op.inputs {
                if inside[input.0] && !out.iter().any(|(p, _)| *p == input) {
                    out.push((input, ops[input.0].output_bytes()));
                }
            }
        }
        out
    }

    /// Export in Graphviz DOT format (for debugging and docs).
    pub fn to_dot(&self) -> String {
        let mut s = format!("digraph \"{}\" {{\n", self.name);
        for op in self.ops().iter() {
            s.push_str(&format!(
                "  n{} [label=\"{}\\n{:?}\"];\n",
                op.id.0, op.name, op.phase
            ));
            for &input in &op.inputs {
                s.push_str(&format!("  n{} -> n{};\n", input.0, op.id.0));
            }
        }
        s.push_str("}\n");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::tensor::TensorMeta;

    fn mk_chain(n: usize) -> Graph {
        let mut g = Graph::new("chain");
        let mut prev: Option<OpId> = None;
        for i in 0..n {
            let inputs = prev.map(|p| vec![p]).unwrap_or_default();
            let kind = if i == 0 {
                OpKind::Input
            } else {
                OpKind::MatMul {
                    m: 8,
                    k: 16,
                    n: 16,
                    has_params: true,
                }
            };
            prev = Some(
                g.add_op(
                    format!("op{i}"),
                    kind,
                    inputs,
                    TensorMeta::f32(&[8, 16]),
                    Phase::Forward,
                    Some(i),
                )
                .unwrap(),
            );
        }
        g
    }

    fn mk_encoder(name: &str, layers: usize, interned: bool) -> Graph {
        let mut b = GraphBuilder::with_interning(name, interned);
        let mut h = b.input("x", &[2, 16, 64]).unwrap();
        for i in 0..layers {
            h = b
                .encoder_layer(&format!("enc.{i}"), h, 2, 16, 64, 4, 256)
                .unwrap();
        }
        b.finish()
    }

    #[test]
    fn append_only_topology() {
        let g = mk_chain(5);
        assert_eq!(g.len(), 5);
        assert_eq!(g.sources(), vec![OpId(0)]);
        assert_eq!(g.sinks(), vec![OpId(4)]);
        // Consumers are the inverse of inputs.
        let cons = g.consumers();
        assert_eq!(cons[0], vec![OpId(1)]);
        assert!(cons[4].is_empty());
    }

    #[test]
    fn adjacency_is_memoized_and_invalidated_on_append() {
        let mut g = mk_chain(3);
        // Same backing storage on repeated calls: the cache is built once.
        assert!(std::ptr::eq(g.consumers(), g.consumers()));
        assert_eq!(g.sinks(), vec![OpId(2)]);

        // Appending invalidates: the new op shows up in the adjacency.
        g.add_op(
            "tail",
            OpKind::MatMul {
                m: 8,
                k: 16,
                n: 16,
                has_params: true,
            },
            vec![OpId(2)],
            TensorMeta::f32(&[8, 16]),
            Phase::Forward,
            Some(3),
        )
        .unwrap();
        assert_eq!(g.sinks(), vec![OpId(3)]);
        assert_eq!(g.consumers()[2], vec![OpId(3)]);

        // A clone that shares an initialized cache stays correct when the
        // original mutates (the mutated graph detaches, the clone keeps its
        // own view).
        let clone = g.clone();
        let _ = clone.consumers();
        g.add_op(
            "tail2",
            OpKind::Input,
            vec![],
            TensorMeta::f32(&[1]),
            Phase::Forward,
            None,
        )
        .unwrap();
        assert_eq!(clone.sinks(), vec![OpId(3)]);
        assert_eq!(g.sinks(), vec![OpId(3), OpId(4)]);
        // Equality ignores the cache.
        assert_eq!(clone, clone.clone());
    }

    #[test]
    fn interned_adjacency_matches_flat_rebuild() {
        let interned = mk_encoder("enc", 3, true);
        let flat = mk_encoder("enc", 3, false);
        assert!(interned.block_count() > 0);
        assert_eq!(flat.block_count(), 0);
        // The segment-assembled adjacency is elementwise identical to a
        // flat scan: same consumer lists (order and duplicates included),
        // same frontiers.
        let rebuilt = AdjCache::build(interned.ops());
        assert_eq!(interned.consumers(), rebuilt.consumers);
        assert_eq!(interned.sources(), rebuilt.sources);
        assert_eq!(interned.sinks(), rebuilt.sinks);
        assert_eq!(flat.consumers(), interned.consumers());
    }

    #[test]
    fn interned_and_flat_builds_are_equal() {
        let interned = mk_encoder("enc", 2, true);
        let flat = mk_encoder("enc", 2, false);
        assert_eq!(interned.ops(), flat.ops());
        assert_eq!(interned, flat);
        assert_eq!(flat, interned);
        assert_eq!(interned, interned.clone());
        assert_ne!(interned, mk_encoder("enc", 3, true));
    }

    #[test]
    fn append_to_interned_graph_collapses_but_stays_correct() {
        let mut g = mk_encoder("enc", 2, true);
        let flat_before = g.ops().to_vec();
        let last = OpId(g.len() - 1);
        g.add_op(
            "tail",
            OpKind::Elementwise {
                elems: 4,
                flops_per_elem: 1,
            },
            vec![last],
            TensorMeta::f32(&[4]),
            Phase::Forward,
            None,
        )
        .unwrap();
        assert_eq!(g.block_count(), 0);
        assert_eq!(g.len(), flat_before.len() + 1);
        assert_eq!(&g.ops()[..flat_before.len()], flat_before.as_slice());
        assert_eq!(
            *g.consumers()[last.0].last().unwrap(),
            OpId(flat_before.len())
        );
    }

    #[test]
    fn block_replacement_validates_shape() {
        let g = mk_encoder("enc", 3, true);
        // Donor with a different FFN width: same op count, same externals.
        let mut b = GraphBuilder::new("donor");
        let x = b.input("x", &[2, 16, 64]).unwrap();
        b.encoder_layer("d", x, 2, 16, 64, 4, 512).unwrap();
        let donor = b.finish();

        let edited = g.with_block_replaced(1, &donor, 0).unwrap();
        assert_eq!(edited.len(), g.len());
        assert_ne!(edited, g);
        // Only the middle layer changed; names keep the target prefix.
        let changed: Vec<_> = g
            .ops()
            .iter()
            .zip(edited.ops())
            .filter(|(a, b)| a != b)
            .collect();
        assert!(!changed.is_empty());
        assert!(changed
            .iter()
            .all(|(a, b)| { a.name.starts_with("enc.1/") && b.name.starts_with("enc.1/") }));

        assert!(g.with_block_replaced(7, &donor, 0).is_err());
        assert!(g.with_block_replaced(0, &mk_chain(3), 0).is_err());
    }

    #[test]
    fn dangling_input_rejected() {
        let mut g = Graph::new("bad");
        let err = g
            .add_op(
                "op0",
                OpKind::Input,
                vec![OpId(7)],
                TensorMeta::f32(&[1]),
                Phase::Forward,
                None,
            )
            .unwrap_err();
        assert!(matches!(err, GraphError::DanglingInput { .. }));
    }

    #[test]
    fn totals_accumulate() {
        let g = mk_chain(3);
        // Two parameterized matmuls: each 2·8·16·16 FLOPs, 16·16+16 params.
        assert_eq!(g.total_forward_flops(), 2.0 * 2.0 * 8.0 * 16.0 * 16.0);
        assert_eq!(g.total_params(), 2 * (16 * 16 + 16));
        let layers = g.per_layer_costs();
        assert_eq!(layers.len(), 3);
        assert_eq!(layers[0].1, 0.0); // Input layer has no FLOPs.
    }

    #[test]
    fn boundary_outputs_find_stage_cuts() {
        let g = mk_chain(4);
        // Ops 0-1 as one stage: its only exit tensor is op1's output.
        let stage = g.op_range(0, 2).unwrap();
        let exits = g.boundary_outputs(&stage);
        assert_eq!(exits.len(), 1);
        assert_eq!(exits[0].0, OpId(1));
        assert_eq!(exits[0].1, 8 * 16 * 4);
        // The whole graph has no exit tensors.
        let all = g.op_range(0, 4).unwrap();
        assert!(g.boundary_outputs(&all).is_empty());
    }

    #[test]
    fn op_range_validation() {
        let g = mk_chain(4);
        assert!(g.op_range(2, 2).is_err());
        assert!(g.op_range(0, 5).is_err());
        assert_eq!(g.op_range(1, 3).unwrap(), vec![OpId(1), OpId(2)]);
    }

    #[test]
    fn dot_export_contains_edges() {
        let g = mk_chain(2);
        let dot = g.to_dot();
        assert!(dot.contains("n0 -> n1"));
        assert!(dot.contains("digraph"));
    }
}
