//! The dataflow graph: nodes, edges, topological structure.
//!
//! This is the reproduction's stand-in for a TensorFlow computation graph.
//! Construction is append-only: an op's inputs must already exist, so node
//! ids are a valid topological order by construction and the graph is a DAG
//! by construction.

use crate::op::{OpKind, Phase};
use crate::tensor::TensorMeta;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::{Arc, OnceLock};

/// Identifier of an operation within a [`Graph`]; dense in `0..graph.len()`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct OpId(pub usize);

impl fmt::Display for OpId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "%{}", self.0)
    }
}

/// One node of the computation graph.
#[derive(Debug, Clone, PartialEq)]
pub struct Op {
    /// Dense id within the graph.
    pub id: OpId,
    /// Human-readable name (`"encoder.3/attn/qkv"`).
    pub name: String,
    /// Semantic kind with cost attributes.
    pub kind: OpKind,
    /// Data dependencies (producers of this op's inputs).
    pub inputs: Vec<OpId>,
    /// Metadata of the (single) output tensor.
    pub output: TensorMeta,
    /// Execution phase.
    pub phase: Phase,
    /// Model-level layer index, used for stage partitioning diagnostics.
    pub layer: Option<usize>,
}

impl Op {
    /// Forward FLOPs of this op.
    pub fn forward_flops(&self) -> f64 {
        self.kind.forward_flops()
    }

    /// Parameter count owned by this op.
    pub fn param_count(&self) -> u64 {
        self.kind.param_count()
    }

    /// Output activation size in bytes.
    pub fn output_bytes(&self) -> u64 {
        self.output.size_bytes()
    }
}

/// Errors raised while building or slicing graphs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// An op referenced an input id that does not exist yet.
    DanglingInput {
        /// The op being added.
        op: String,
        /// The missing input id.
        input: OpId,
    },
    /// A subgraph request referenced an unknown op.
    UnknownOp(OpId),
    /// An op-range request was empty or out of bounds.
    BadRange(String),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::DanglingInput { op, input } => {
                write!(f, "op '{op}' references missing input {input}")
            }
            GraphError::UnknownOp(id) => write!(f, "unknown op {id}"),
            GraphError::BadRange(s) => write!(f, "bad op range: {s}"),
        }
    }
}

impl std::error::Error for GraphError {}

/// Adjacency derived from the op list, built once on first use: the inverse
/// edge map plus the source/sink frontiers. `sources()`/`sinks()`/
/// `consumers()` used to rebuild these `Vec`s on every call — an O(V+E)
/// term per call site that planner and autodiff loops paid repeatedly.
#[derive(Debug)]
struct AdjCache {
    consumers: Vec<Vec<OpId>>,
    sources: Vec<OpId>,
    sinks: Vec<OpId>,
}

impl AdjCache {
    fn build(ops: &[Op]) -> AdjCache {
        let mut consumers = vec![Vec::new(); ops.len()];
        let mut consumed = vec![false; ops.len()];
        for op in ops {
            for &input in &op.inputs {
                consumers[input.0].push(op.id);
                consumed[input.0] = true;
            }
        }
        let sources = ops
            .iter()
            .filter(|op| op.inputs.is_empty())
            .map(|op| op.id)
            .collect();
        let sinks = ops
            .iter()
            .filter(|op| !consumed[op.id.0])
            .map(|op| op.id)
            .collect();
        AdjCache {
            consumers,
            sources,
            sinks,
        }
    }
}

/// An append-only dataflow DAG.
///
/// Ops live behind an [`Arc`] with copy-on-write mutation, so cloning a
/// finished graph is a reference-count bump — `auto_parallel` hands one
/// built model to every candidate strategy without re-running the model
/// constructor. Value semantics are preserved: appending to a shared graph
/// copies the op list first.
///
/// Adjacency ([`Graph::consumers`], [`Graph::sources`], [`Graph::sinks`]) is
/// memoized behind a [`OnceLock`] and shared by clones; appending an op
/// invalidates it. Equality and ordering look only at `(name, ops)` — the
/// cache is pure derived state.
#[derive(Debug, Clone)]
pub struct Graph {
    name: String,
    ops: Arc<Vec<Op>>,
    adj: Arc<OnceLock<AdjCache>>,
}

impl PartialEq for Graph {
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name && self.ops == other.ops
    }
}

impl Graph {
    /// Create an empty graph.
    pub fn new(name: impl Into<String>) -> Graph {
        Graph {
            name: name.into(),
            ops: Arc::new(Vec::new()),
            adj: Arc::new(OnceLock::new()),
        }
    }

    /// Graph name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All ops, in id (= topological) order.
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// Number of ops.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the graph has no ops.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Look up an op.
    pub fn op(&self, id: OpId) -> Result<&Op, GraphError> {
        self.ops.get(id.0).ok_or(GraphError::UnknownOp(id))
    }

    /// Append an op whose inputs must already exist.
    pub fn add_op(
        &mut self,
        name: impl Into<String>,
        kind: OpKind,
        inputs: Vec<OpId>,
        output: TensorMeta,
        phase: Phase,
        layer: Option<usize>,
    ) -> Result<OpId, GraphError> {
        let name = name.into();
        let id = OpId(self.ops.len());
        for &input in &inputs {
            if input.0 >= id.0 {
                return Err(GraphError::DanglingInput { op: name, input });
            }
        }
        Arc::make_mut(&mut self.ops).push(Op {
            id,
            name,
            kind,
            inputs,
            output,
            phase,
            layer,
        });
        // Invalidate the memoized adjacency. A uniquely owned, still-empty
        // cell is cleared in place (no allocation on the builder hot path);
        // a cell shared with clones is detached so their view stays valid.
        match Arc::get_mut(&mut self.adj) {
            Some(cell) => {
                cell.take();
            }
            None => self.adj = Arc::new(OnceLock::new()),
        }
        Ok(id)
    }

    fn adjacency(&self) -> &AdjCache {
        self.adj.get_or_init(|| AdjCache::build(&self.ops))
    }

    /// Ids of ops with no data dependencies (the graph inputs). Memoized;
    /// the first call after construction builds the adjacency cache.
    pub fn sources(&self) -> &[OpId] {
        &self.adjacency().sources
    }

    /// Ids of ops nothing consumes (the graph outputs). Memoized.
    pub fn sinks(&self) -> &[OpId] {
        &self.adjacency().sinks
    }

    /// Consumers of each op, indexed by producer id. Memoized — repeated
    /// calls return the same slices without rebuilding the edge map.
    pub fn consumers(&self) -> &[Vec<OpId>] {
        &self.adjacency().consumers
    }

    /// Total forward FLOPs over all ops.
    pub fn total_forward_flops(&self) -> f64 {
        self.ops.iter().map(|op| op.forward_flops()).sum()
    }

    /// Total trainable parameter count.
    pub fn total_params(&self) -> u64 {
        self.ops.iter().map(|op| op.param_count()).sum()
    }

    /// Per-layer aggregation: `(layer, flops, params)` for ops that carry a
    /// layer index, ordered by layer.
    pub fn per_layer_costs(&self) -> Vec<(usize, f64, u64)> {
        let mut agg: BTreeMap<usize, (f64, u64)> = BTreeMap::new();
        for op in self.ops.iter() {
            if let Some(layer) = op.layer {
                let e = agg.entry(layer).or_insert((0.0, 0));
                e.0 += op.forward_flops();
                e.1 += op.param_count();
            }
        }
        agg.into_iter().map(|(l, (f, p))| (l, f, p)).collect()
    }

    /// Cut the op-id range `[start, end)` out as a list of ids, validating
    /// bounds. Because ids are topologically ordered, a contiguous range is a
    /// convex subgraph — exactly what pipeline stages are.
    pub fn op_range(&self, start: usize, end: usize) -> Result<Vec<OpId>, GraphError> {
        if start >= end || end > self.ops.len() {
            return Err(GraphError::BadRange(format!(
                "[{start}, {end}) of {} ops",
                self.ops.len()
            )));
        }
        Ok((start..end).map(OpId).collect())
    }

    /// Tensors crossing from inside `ids` to outside (the *exit* tensors of a
    /// TaskGraph, §4 "TaskGraph Schedule"), as `(producer, total bytes)`.
    pub fn boundary_outputs(&self, ids: &[OpId]) -> Vec<(OpId, u64)> {
        let inside: Vec<bool> = {
            let mut v = vec![false; self.ops.len()];
            for &id in ids {
                if id.0 < v.len() {
                    v[id.0] = true;
                }
            }
            v
        };
        let mut out = Vec::new();
        for op in self.ops.iter() {
            if inside[op.id.0] {
                continue;
            }
            for &input in &op.inputs {
                if inside[input.0] && !out.iter().any(|(p, _)| *p == input) {
                    out.push((input, self.ops[input.0].output_bytes()));
                }
            }
        }
        out
    }

    /// Export in Graphviz DOT format (for debugging and docs).
    pub fn to_dot(&self) -> String {
        let mut s = format!("digraph \"{}\" {{\n", self.name);
        for op in self.ops.iter() {
            s.push_str(&format!(
                "  n{} [label=\"{}\\n{:?}\"];\n",
                op.id.0, op.name, op.phase
            ));
            for &input in &op.inputs {
                s.push_str(&format!("  n{} -> n{};\n", input.0, op.id.0));
            }
        }
        s.push_str("}\n");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::TensorMeta;

    fn mk_chain(n: usize) -> Graph {
        let mut g = Graph::new("chain");
        let mut prev: Option<OpId> = None;
        for i in 0..n {
            let inputs = prev.map(|p| vec![p]).unwrap_or_default();
            let kind = if i == 0 {
                OpKind::Input
            } else {
                OpKind::MatMul {
                    m: 8,
                    k: 16,
                    n: 16,
                    has_params: true,
                }
            };
            prev = Some(
                g.add_op(
                    format!("op{i}"),
                    kind,
                    inputs,
                    TensorMeta::f32(&[8, 16]),
                    Phase::Forward,
                    Some(i),
                )
                .unwrap(),
            );
        }
        g
    }

    #[test]
    fn append_only_topology() {
        let g = mk_chain(5);
        assert_eq!(g.len(), 5);
        assert_eq!(g.sources(), vec![OpId(0)]);
        assert_eq!(g.sinks(), vec![OpId(4)]);
        // Consumers are the inverse of inputs.
        let cons = g.consumers();
        assert_eq!(cons[0], vec![OpId(1)]);
        assert!(cons[4].is_empty());
    }

    #[test]
    fn adjacency_is_memoized_and_invalidated_on_append() {
        let mut g = mk_chain(3);
        // Same backing storage on repeated calls: the cache is built once.
        assert!(std::ptr::eq(g.consumers(), g.consumers()));
        assert_eq!(g.sinks(), vec![OpId(2)]);

        // Appending invalidates: the new op shows up in the adjacency.
        g.add_op(
            "tail",
            OpKind::MatMul {
                m: 8,
                k: 16,
                n: 16,
                has_params: true,
            },
            vec![OpId(2)],
            TensorMeta::f32(&[8, 16]),
            Phase::Forward,
            Some(3),
        )
        .unwrap();
        assert_eq!(g.sinks(), vec![OpId(3)]);
        assert_eq!(g.consumers()[2], vec![OpId(3)]);

        // A clone that shares an initialized cache stays correct when the
        // original mutates (the mutated graph detaches, the clone keeps its
        // own view).
        let clone = g.clone();
        let _ = clone.consumers();
        g.add_op(
            "tail2",
            OpKind::Input,
            vec![],
            TensorMeta::f32(&[1]),
            Phase::Forward,
            None,
        )
        .unwrap();
        assert_eq!(clone.sinks(), vec![OpId(3)]);
        assert_eq!(g.sinks(), vec![OpId(3), OpId(4)]);
        // Equality ignores the cache.
        assert_eq!(clone, clone.clone());
    }

    #[test]
    fn dangling_input_rejected() {
        let mut g = Graph::new("bad");
        let err = g
            .add_op(
                "op0",
                OpKind::Input,
                vec![OpId(7)],
                TensorMeta::f32(&[1]),
                Phase::Forward,
                None,
            )
            .unwrap_err();
        assert!(matches!(err, GraphError::DanglingInput { .. }));
    }

    #[test]
    fn totals_accumulate() {
        let g = mk_chain(3);
        // Two parameterized matmuls: each 2·8·16·16 FLOPs, 16·16+16 params.
        assert_eq!(g.total_forward_flops(), 2.0 * 2.0 * 8.0 * 16.0 * 16.0);
        assert_eq!(g.total_params(), 2 * (16 * 16 + 16));
        let layers = g.per_layer_costs();
        assert_eq!(layers.len(), 3);
        assert_eq!(layers[0].1, 0.0); // Input layer has no FLOPs.
    }

    #[test]
    fn boundary_outputs_find_stage_cuts() {
        let g = mk_chain(4);
        // Ops 0-1 as one stage: its only exit tensor is op1's output.
        let stage = g.op_range(0, 2).unwrap();
        let exits = g.boundary_outputs(&stage);
        assert_eq!(exits.len(), 1);
        assert_eq!(exits[0].0, OpId(1));
        assert_eq!(exits[0].1, 8 * 16 * 4);
        // The whole graph has no exit tensors.
        let all = g.op_range(0, 4).unwrap();
        assert!(g.boundary_outputs(&all).is_empty());
    }

    #[test]
    fn op_range_validation() {
        let g = mk_chain(4);
        assert!(g.op_range(2, 2).is_err());
        assert!(g.op_range(0, 5).is_err());
        assert_eq!(g.op_range(1, 3).unwrap(), vec![OpId(1), OpId(2)]);
    }

    #[test]
    fn dot_export_contains_edges() {
        let g = mk_chain(2);
        let dot = g.to_dot();
        assert!(dot.contains("n0 -> n1"));
        assert!(dot.contains("digraph"));
    }
}
