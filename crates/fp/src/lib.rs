//! Stable content fingerprints for plan-cache keys.
//!
//! The staged compile pipeline caches `ExecutionPlan`s keyed on the exact
//! *content* of its three inputs — model IR, cluster, planner config. Rust's
//! default `Hash`/`SipHash` pair is unsuitable for that key: it is randomly
//! seeded per process, so fingerprints would not be stable across runs, and
//! `f64` (ubiquitous in the cost model) does not implement `Hash` at all.
//! This crate provides the one primitive the cache needs instead: an
//! explicit, seed-free FNV-1a accumulator with typed `push_*` methods, the
//! same FNV used by the planner's `EstimateCache` (collision-attack
//! resistance buys nothing against keys we produce ourselves).
//!
//! Conventions that keep fingerprints honest:
//!
//! * every variable-length sequence is prefixed with its length
//!   ([`Fingerprinter::push_len`]) so `["ab","c"]` and `["a","bc"]` differ;
//! * enums push a discriminant tag before their payload;
//! * floats hash their IEEE bit pattern ([`Fingerprinter::push_f64`]), so
//!   `0.45` and `0.4500000001` differ and `-0.0 != 0.0` (exactness matters
//!   more than float-equality semantics for cache keys);
//! * `Option`s push a presence byte first.
//!
//! # Examples
//!
//! ```
//! use whale_fp::Fingerprinter;
//!
//! let mut a = Fingerprinter::new("cluster");
//! a.push_u64(16).push_f64(15.7e12).push_str("V100-32GB");
//! let mut b = Fingerprinter::new("cluster");
//! b.push_u64(16).push_f64(15.7e12).push_str("V100-32GB");
//! assert_eq!(a.finish(), b.finish());
//!
//! let mut c = Fingerprinter::new("cluster");
//! c.push_u64(16).push_f64(9.3e12).push_str("V100-32GB");
//! assert_ne!(a.finish(), c.finish());
//! ```

use std::fmt;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x100_0000_01b3;

/// A 64-bit content fingerprint. Stable across processes, platforms, and
/// builds: it depends only on the byte stream pushed into the
/// [`Fingerprinter`] that produced it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fingerprint(pub u64);

impl fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// Incremental FNV-1a accumulator with typed push methods.
///
/// Construction takes a domain tag so fingerprints of different *kinds* of
/// objects never collide by construction (`Fingerprinter::new("graph")` and
/// `Fingerprinter::new("cluster")` diverge before the first push).
#[derive(Debug, Clone)]
pub struct Fingerprinter {
    state: u64,
}

impl Fingerprinter {
    /// Start a fingerprint in the given domain (e.g. `"graph"`,
    /// `"cluster"`, `"planner-config"`).
    pub fn new(domain: &str) -> Fingerprinter {
        let mut fp = Fingerprinter { state: FNV_OFFSET };
        fp.push_str(domain);
        fp
    }

    /// Feed raw bytes.
    pub fn push_bytes(&mut self, bytes: &[u8]) -> &mut Self {
        let mut h = self.state;
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(FNV_PRIME);
        }
        self.state = h;
        self
    }

    /// Feed a `u64` (little-endian bytes).
    pub fn push_u64(&mut self, v: u64) -> &mut Self {
        self.push_bytes(&v.to_le_bytes())
    }

    /// Feed a `usize` widened to `u64` so 32- and 64-bit builds agree.
    pub fn push_usize(&mut self, v: usize) -> &mut Self {
        self.push_u64(v as u64)
    }

    /// Feed an `f64` as its IEEE-754 bit pattern.
    pub fn push_f64(&mut self, v: f64) -> &mut Self {
        self.push_u64(v.to_bits())
    }

    /// Feed a boolean as one byte.
    pub fn push_bool(&mut self, v: bool) -> &mut Self {
        self.push_bytes(&[v as u8])
    }

    /// Feed a string: length prefix, then UTF-8 bytes.
    pub fn push_str(&mut self, s: &str) -> &mut Self {
        self.push_u64(s.len() as u64);
        self.push_bytes(s.as_bytes())
    }

    /// Feed a sequence-length prefix (call before iterating the sequence).
    pub fn push_len(&mut self, len: usize) -> &mut Self {
        self.push_u64(len as u64)
    }

    /// Feed an enum discriminant tag (call before the variant payload).
    pub fn push_tag(&mut self, tag: u8) -> &mut Self {
        self.push_bytes(&[tag])
    }

    /// Feed a nested, already-finished fingerprint.
    pub fn push_fingerprint(&mut self, fp: Fingerprint) -> &mut Self {
        self.push_u64(fp.0)
    }

    /// Finalize. The accumulator is unchanged, so pushes can continue and a
    /// later `finish` yields the extended fingerprint.
    pub fn finish(&self) -> Fingerprint {
        Fingerprint(self.state)
    }
}

/// Compose already-finished fingerprints into one, under a fresh domain.
///
/// This is the primitive behind subgraph-incremental keys: a container
/// fingerprints each part once (and memoizes it), then derives its own
/// fingerprint from the part fingerprints instead of re-walking the parts.
/// The parts are length-prefixed, so `compose("k", [a, b])` and
/// `compose("k", [a])` followed by `b` elsewhere cannot collide by
/// concatenation.
///
/// ```
/// use whale_fp::{compose, Fingerprinter};
///
/// let graph = Fingerprinter::new("graph").push_u64(7).finish();
/// let cluster = Fingerprinter::new("cluster").push_u64(9).finish();
/// let key = compose("plan-key", [graph, cluster]);
/// assert_eq!(key, compose("plan-key", [graph, cluster]));
/// assert_ne!(key, compose("plan-key", [cluster, graph]));
/// ```
pub fn compose(domain: &str, parts: impl IntoIterator<Item = Fingerprint>) -> Fingerprint {
    let mut fp = Fingerprinter::new(domain);
    let mut n = 0usize;
    for part in parts {
        fp.push_fingerprint(part);
        n += 1;
    }
    fp.push_len(n);
    fp.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = Fingerprinter::new("t");
        a.push_u64(1).push_str("x").push_f64(0.5);
        let mut b = Fingerprinter::new("t");
        b.push_u64(1).push_str("x").push_f64(0.5);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn domains_separate() {
        let a = Fingerprinter::new("graph").finish();
        let b = Fingerprinter::new("cluster").finish();
        assert_ne!(a, b);
    }

    #[test]
    fn length_prefix_prevents_concatenation_collisions() {
        let mut a = Fingerprinter::new("t");
        a.push_str("ab").push_str("c");
        let mut b = Fingerprinter::new("t");
        b.push_str("a").push_str("bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn float_bits_distinguish_near_values() {
        let mut a = Fingerprinter::new("t");
        a.push_f64(0.45);
        let mut b = Fingerprinter::new("t");
        b.push_f64(0.45 + f64::EPSILON);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn single_bit_flip_changes_fingerprint() {
        let mut a = Fingerprinter::new("t");
        a.push_u64(0b1000);
        let mut b = Fingerprinter::new("t");
        b.push_u64(0b1001);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn display_is_hex() {
        assert_eq!(Fingerprint(0xdead_beef).to_string(), "00000000deadbeef");
    }

    #[test]
    fn compose_is_order_and_arity_sensitive() {
        let a = Fingerprinter::new("a").finish();
        let b = Fingerprinter::new("b").finish();
        assert_eq!(compose("k", [a, b]), compose("k", [a, b]));
        assert_ne!(compose("k", [a, b]), compose("k", [b, a]));
        assert_ne!(compose("k", [a]), compose("k", [a, a]));
        assert_ne!(compose("k", [a]), compose("j", [a]));
    }

    #[test]
    fn finish_is_non_consuming_and_extendable() {
        let mut fp = Fingerprinter::new("t");
        fp.push_u64(1);
        let first = fp.finish();
        fp.push_u64(2);
        let second = fp.finish();
        assert_ne!(first, second);
        assert_eq!(fp.finish(), second);
    }
}
