//! Automatic parallelism (paper Example 6: `wh.auto_parallel()`).
//!
//! Without user annotations, Whale explores parallel strategies itself. The
//! reproduction enumerates candidate strategies (pure DP, auto pipelines at
//! several micro-batch counts, pipeline+DP when the cluster has several
//! nodes), plans each, discards memory-infeasible ones, simulates the rest,
//! and returns the plan with the highest throughput.

use std::sync::Arc;

use whale_graph::Graph;
use whale_planner::ExecutionPlan;
use whale_sim::StepStats;

use crate::error::{Result, WhaleError};
use crate::session::Session;
use crate::strategies;

/// Why a candidate was rejected — structured so callers can branch on the
/// cause (and render it) without parsing strings.
#[derive(Debug, Clone, PartialEq)]
pub enum RejectReason {
    /// The plan needs more bytes on some GPU than that GPU has.
    MemoryInfeasible {
        /// Peak bytes on the worst offending GPU.
        need: u64,
        /// That GPU's capacity, bytes.
        have: u64,
    },
    /// The strategy is structurally unrealizable on this workload: it asks
    /// for more micro batches than its per-replica batch has samples, so no
    /// plan can give every micro batch even one sample. Detected before
    /// planning; not a prune (no bound involved).
    DegenerateMicro {
        /// Micro batches the strategy requested.
        num_micro: usize,
        /// Samples available per replica group.
        group_batch: usize,
    },
    /// Planning itself failed.
    PlanError(String),
    /// The simulator failed on a planned candidate.
    SimError(String),
    /// Bounded away: the candidate's admissible lower bound on step time
    /// (`bound`, seconds) already meets or exceeds the incumbent
    /// (`incumbent`, seconds), so it cannot win.
    Pruned {
        /// Lower bound on this candidate's step time, seconds.
        bound: f64,
        /// Step time of the incumbent it lost to, seconds.
        incumbent: f64,
    },
}

impl std::fmt::Display for RejectReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RejectReason::MemoryInfeasible { need, have } => write!(
                f,
                "out of memory (need {:.1} GiB, have {:.1} GiB)",
                *need as f64 / (1u64 << 30) as f64,
                *have as f64 / (1u64 << 30) as f64
            ),
            RejectReason::DegenerateMicro {
                num_micro,
                group_batch,
            } => write!(
                f,
                "unrealizable ({num_micro} micro batches for {group_batch} samples per replica)"
            ),
            RejectReason::PlanError(e) => write!(f, "planning failed: {e}"),
            RejectReason::SimError(e) => write!(f, "simulation failed: {e}"),
            RejectReason::Pruned { bound, incumbent } => {
                write!(f, "pruned (bound {bound:.4}s vs incumbent {incumbent:.4}s)")
            }
        }
    }
}

/// One evaluated candidate.
#[derive(Debug, Clone, PartialEq)]
pub struct Candidate {
    /// Human-readable strategy name.
    pub name: String,
    /// The plan, if planning succeeded (shared with the plan cache).
    pub plan: Option<Arc<ExecutionPlan>>,
    /// Step statistics, if simulation succeeded and memory fit.
    pub stats: Option<StepStats>,
    /// Why the candidate was rejected, if it was.
    pub rejected: Option<RejectReason>,
}

/// Pruning counters of one branch-and-bound search (present on
/// [`AutoReport::search`] when the report came from
/// [`crate::search::auto_parallel_search`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SearchStats {
    /// Level-1 structure nodes considered.
    pub structures_expanded: usize,
    /// Structures whose entire leaf set was bounded away at level 1.
    pub structures_pruned: usize,
    /// Leaf strategies generated (every (structure, micro, schedule) cell).
    pub nodes_expanded: usize,
    /// Leaves pruned by the pre-plan structural bound (never planned).
    pub nodes_bounded: usize,
    /// Leaves that paid for a full plan.
    pub nodes_planned: usize,
    /// Planned leaves pruned by the post-plan bound (never simulated).
    pub nodes_pruned_planned: usize,
    /// Leaves that paid for a full simulation.
    pub nodes_simulated: usize,
}

impl SearchStats {
    /// Fraction of expanded leaves that never reached full plan+simulate
    /// (the headline pruning metric `search_bench` gates on).
    pub fn bounded_fraction(&self) -> f64 {
        if self.nodes_expanded == 0 {
            return 0.0;
        }
        (self.nodes_expanded - self.nodes_simulated) as f64 / self.nodes_expanded as f64
    }
}

/// The auto-parallel decision.
#[derive(Debug, Clone, PartialEq)]
pub struct AutoReport {
    /// Winning strategy name.
    pub chosen: String,
    /// Winning plan (shared with the plan cache and the winning candidate).
    pub plan: Arc<ExecutionPlan>,
    /// Winning step stats.
    pub stats: StepStats,
    /// All candidates in evaluation order.
    pub candidates: Vec<Candidate>,
    /// Pruning counters (`None` for the narrow enumeration, `Some` for the
    /// branch-and-bound search).
    pub search: Option<SearchStats>,
}

/// Knobs of the candidate search; [`AutoOptions::default`] is the fast
/// path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AutoOptions {
    /// Worker threads for the planning and simulation phases. `0` sizes to
    /// [`std::thread::available_parallelism`]; `1` reproduces the serial
    /// search exactly (any thread count returns an identical report — see
    /// `tests/fastpath_determinism.rs`).
    pub search_threads: usize,
    /// Memoize planner cost terms and share one estimator cache across
    /// candidates. Bit-identical results either way; `false` is the
    /// pre-fast-path baseline `fastpath_bench` measures against.
    pub memoize: bool,
    /// Simulate candidates with the polling reference scheduler instead of
    /// the event-driven one (golden baseline; timelines are bit-identical).
    pub reference_sim: bool,
}

impl Default for AutoOptions {
    fn default() -> Self {
        Self {
            search_threads: 0,
            memoize: true,
            reference_sim: false,
        }
    }
}

impl AutoOptions {
    fn effective_threads(&self, work_items: usize) -> usize {
        effective_threads(self.search_threads, work_items)
    }
}

/// Resolve a `search_threads` knob (0 = all cores) against the number of
/// work items.
pub(crate) fn effective_threads(requested: usize, work_items: usize) -> usize {
    let requested = if requested == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        requested
    };
    requested.min(work_items).max(1)
}

/// Structure probe shared by the narrow enumeration and the
/// branch-and-bound search: pattern-match MoE layers and a dominant
/// fully-connected classifier (the paper's planner likewise
/// pattern-matches these shapes, §4 "TaskGraph Partition").
pub(crate) struct GraphProbe {
    pub has_moe: bool,
    pub dominant_fc: Option<String>,
}

pub(crate) fn probe_graph(graph: &Graph) -> GraphProbe {
    let has_moe = graph
        .ops()
        .iter()
        .any(|op| matches!(op.kind, whale_graph::OpKind::MoeFfn { .. }));
    let total_params = graph.total_params().max(1);
    let dominant_fc: Option<String> = graph
        .ops()
        .iter()
        .filter(|op| {
            matches!(
                op.kind,
                whale_graph::OpKind::MatMul {
                    has_params: true,
                    ..
                }
            ) && op.param_count() * 2 > total_params
        })
        .map(|op| op.name.clone())
        .next();
    GraphProbe {
        has_moe,
        dominant_fc,
    }
}

/// Structured memory rejection for `plan` on `cluster`: the worst
/// overcommitted GPU's (need, have) pair, or the busiest GPU when the
/// ledger itself stays under capacity.
pub(crate) fn memory_reject(
    plan: &ExecutionPlan,
    cluster: &whale_hardware::Cluster,
) -> RejectReason {
    let (need, have) = plan
        .memory_per_gpu()
        .iter()
        .map(|(&gpu, &bytes)| {
            let cap = cluster.gpu(gpu).map(|g| g.memory_bytes()).unwrap_or(0);
            (bytes, cap)
        })
        .max_by_key(|&(bytes, cap)| (bytes.saturating_sub(cap), bytes))
        .unwrap_or((0, 0));
    RejectReason::MemoryInfeasible { need, have }
}

/// Run `f` over `items`, fanning across `threads` scoped workers when
/// `threads > 1`. Items are pre-split into contiguous chunks and workers
/// steal whole chunks from a shared counter, so the hot path (one item)
/// acquires no lock — each chunk's mutexes are touched exactly twice, at
/// claim and at publish. Results come back in item order no matter which
/// worker ran which chunk, and each item is processed exactly once, so the
/// output is identical to the serial loop.
pub(crate) fn fan_out<T: Send, R: Send>(
    threads: usize,
    items: Vec<T>,
    f: impl Fn(T) -> R + Sync,
) -> Vec<R> {
    if threads <= 1 || items.len() <= 1 {
        return items.into_iter().map(f).collect();
    }
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;
    let n = items.len();
    // ~4 chunks per worker keeps stealing granular enough to absorb uneven
    // item costs (one slow simulate does not serialize the tail) without
    // per-item synchronization.
    let num_chunks = (threads * 4).min(n).max(1);
    let chunk_len = n.div_ceil(num_chunks);
    let mut work: Vec<Mutex<Option<Vec<T>>>> = Vec::with_capacity(num_chunks);
    {
        let mut items = items.into_iter();
        loop {
            let chunk: Vec<T> = items.by_ref().take(chunk_len).collect();
            if chunk.is_empty() {
                break;
            }
            work.push(Mutex::new(Some(chunk)));
        }
    }
    let slots: Vec<Mutex<Option<Vec<R>>>> = (0..work.len()).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads.min(work.len()) {
            scope.spawn(|| loop {
                let c = next.fetch_add(1, Ordering::Relaxed);
                if c >= work.len() {
                    break;
                }
                let chunk = work[c]
                    .lock()
                    .expect("work mutex poisoned")
                    .take()
                    .expect("each chunk claimed exactly once");
                // Lock-free hot path: the whole chunk runs between the
                // claim above and the publish below.
                let results: Vec<R> = chunk.into_iter().map(&f).collect();
                *slots[c].lock().expect("slot mutex poisoned") = Some(results);
            });
        }
    });
    slots
        .into_iter()
        .flat_map(|slot| {
            slot.into_inner()
                .expect("slot mutex poisoned")
                .expect("every chunk published before scope exit")
        })
        .collect()
}

/// Explore strategies for `graph` on the session's cluster and pick the
/// fastest memory-feasible one.
///
/// `build` must be able to rebuild the graph for each candidate (annotation
/// consumes it); a closure over the model constructor does this naturally.
pub fn auto_parallel(
    session: &Session,
    global_batch: usize,
    build: impl Fn() -> Result<Graph> + Sync,
) -> Result<AutoReport> {
    auto_parallel_opts(session, global_batch, &AutoOptions::default(), build)
}

/// [`auto_parallel`] with explicit search options.
pub fn auto_parallel_opts(
    session: &Session,
    global_batch: usize,
    opts: &AutoOptions,
    build: impl Fn() -> Result<Graph> + Sync,
) -> Result<AutoReport> {
    let baseline_session;
    let session = if opts.memoize {
        session
    } else {
        baseline_session = session.clone().memoize(false);
        &baseline_session
    };
    let n_gpus = session.cluster().num_gpus();
    let n_nodes = session.cluster().num_nodes();

    // Probe the model structure once to propose structure-specific
    // strategies (the paper's planner likewise pattern-matches MoE and
    // large-classification graphs, §4 "TaskGraph Partition").
    let probe = build()?;
    let GraphProbe {
        has_moe,
        dominant_fc,
    } = probe_graph(&probe);
    // On the fast path the probe doubles as the candidate template: `Graph`
    // clones are an O(1) Arc bump, so every candidate reuses the one built
    // model instead of re-running the model constructor (the dominant cost
    // of the seed search). The uncached baseline rebuilds per candidate,
    // reproducing seed behavior for `fastpath_bench`'s "before" arm.
    let template = if opts.memoize { Some(probe) } else { None };

    type IrBuilder = Box<dyn Fn(Graph) -> Result<whale_ir::WhaleIr> + Send + Sync>;
    let mut specs: Vec<(String, IrBuilder)> = vec![(
        "data-parallel".to_string(),
        Box::new(move |g| strategies::data_parallel(g, global_batch)),
    )];
    if n_gpus > 1 {
        for micro in [4usize, 8, 16] {
            specs.push((
                format!("pipeline(micro={micro})"),
                Box::new(move |g| strategies::pipeline_only(g, global_batch, micro)),
            ));
        }
    }
    if n_nodes > 1 && n_gpus.is_multiple_of(n_nodes) && n_gpus / n_nodes > 1 {
        for micro in [8usize, 16] {
            specs.push((
                format!("pipeline+dp(micro={micro})"),
                Box::new(move |g| strategies::pipeline_with_dp(g, global_batch, micro)),
            ));
        }
    }
    if has_moe && n_gpus > 1 {
        specs.push((
            "moe(split experts + dp)".to_string(),
            Box::new(move |g| strategies::moe_hybrid(g, global_batch)),
        ));
    }
    if let Some(fc) = dominant_fc {
        if n_gpus > 1 {
            specs.push((
                format!("dp+split({fc})"),
                Box::new(move |g| strategies::feature_dp_classifier_split(g, global_batch, &fc)),
            ));
        }
    }

    // Two-phase evaluation: plan everything, rank by the analytic estimator,
    // and only simulate candidates within 4x of the best estimate (the
    // estimator provably preserves ordering on these workloads; see
    // tests/estimator_agreement.rs). Planning and simulation fan out over
    // `search_threads` workers; the merge is by candidate index, so the
    // report is independent of worker scheduling.
    let threads = opts.effective_threads(specs.len());
    type Planned = (Arc<ExecutionPlan>, whale_fp::Fingerprint);
    let planned: Vec<(String, std::result::Result<Planned, String>)> =
        fan_out(threads, specs, |(name, mk_ir)| {
            let graph = match &template {
                Some(g) => Ok(g.clone()),
                None => build(),
            };
            let plan = graph
                .and_then(&mk_ir)
                .and_then(|ir| {
                    // The IR fingerprint composes from memoized block sums,
                    // so this is a table walk, not a graph re-hash; it keys
                    // the whole-step estimate memo below.
                    let fp = ir.fingerprint();
                    session.plan(&ir).map(|p| (p, fp))
                })
                .map_err(|e| e.to_string());
            (name, plan)
        });

    // The estimator is cheap; it runs serially so every candidate can share
    // one memoized cache (stages repeated across candidates are priced
    // once). The whole-step memo is keyed by the same content-fingerprint
    // triple as the plan cache, so a repeated search over unchanged inputs
    // reduces each estimate to a single map lookup.
    let env_fp = [
        session.cluster().fingerprint(),
        session.planner_config().fingerprint(),
    ];
    let mut cache = whale_planner::EstimateCache::new(session.cluster());
    let estimates: Vec<Option<f64>> = planned
        .iter()
        .map(|(_, p)| {
            p.as_ref().ok().and_then(|(plan, ir_fp)| {
                let estimate = if opts.memoize {
                    let key =
                        whale_fp::compose("auto-step-estimate", [*ir_fp, env_fp[0], env_fp[1]]);
                    whale_planner::estimate_step_keyed(plan, key, &mut cache)
                } else {
                    whale_planner::estimate_step(plan, session.cluster())
                };
                estimate.ok().map(|e| e.step_time)
            })
        })
        .collect();
    let best_estimate = estimates
        .iter()
        .flatten()
        .fold(f64::INFINITY, |a, &b| a.min(b));

    // Candidates that survive pruning go to the simulator (the expensive
    // phase), again fanned out and merged by index.
    enum Pending {
        Done(Candidate),
        Simulate(String, Arc<ExecutionPlan>),
    }
    let pending: Vec<Pending> = planned
        .into_iter()
        .zip(estimates)
        .map(|((name, plan), estimate)| match plan {
            Err(e) => Pending::Done(Candidate {
                name,
                plan: None,
                stats: None,
                rejected: Some(RejectReason::PlanError(e)),
            }),
            Ok((plan, _)) => match estimate {
                Some(est) if est > 4.0 * best_estimate && best_estimate.is_finite() => {
                    // The narrow enumeration's 4x-estimate cut: `bound` is
                    // this candidate's estimate, `incumbent` the best one.
                    Pending::Done(Candidate {
                        name,
                        plan: Some(plan),
                        stats: None,
                        rejected: Some(RejectReason::Pruned {
                            bound: est,
                            incumbent: best_estimate,
                        }),
                    })
                }
                _ => Pending::Simulate(name, plan),
            },
        })
        .collect();
    let candidates: Vec<Candidate> = fan_out(threads, pending, |p| match p {
        Pending::Done(c) => c,
        Pending::Simulate(name, plan) => evaluate_plan(session, &name, plan, opts.reference_sim),
    });

    // Pick the winner by index, then clone exactly one candidate's fields
    // (cloning every candidate's name/plan/stats just to run `max_by` would
    // copy the whole field even for losers).
    let best = candidates
        .iter()
        .enumerate()
        .filter(|(_, c)| c.stats.is_some())
        .max_by(|(_, a), (_, b)| {
            let (sa, sb) = (a.stats.as_ref().unwrap(), b.stats.as_ref().unwrap());
            sa.throughput.total_cmp(&sb.throughput)
        })
        .map(|(i, _)| i);
    match best {
        Some(i) => {
            let winner = &candidates[i];
            match (&winner.plan, &winner.stats) {
                (Some(plan), Some(stats)) => Ok(AutoReport {
                    chosen: winner.name.clone(),
                    plan: plan.clone(),
                    stats: stats.clone(),
                    candidates,
                    search: None,
                }),
                _ => Err(WhaleError::NoFeasibleStrategy),
            }
        }
        None => Err(WhaleError::NoFeasibleStrategy),
    }
}

pub(crate) fn evaluate_plan(
    session: &Session,
    name: &str,
    plan: Arc<ExecutionPlan>,
    reference_sim: bool,
) -> Candidate {
    let outcome = if reference_sim {
        session.step_plan_reference(&plan)
    } else {
        session.step_plan(&plan)
    };
    let outcome = match outcome {
        Ok(o) => o,
        Err(e) => {
            return Candidate {
                name: name.into(),
                plan: Some(plan),
                stats: None,
                rejected: Some(RejectReason::SimError(e.to_string())),
            }
        }
    };
    if outcome.stats.has_oom() {
        let rejected = Some(memory_reject(&plan, session.cluster()));
        return Candidate {
            name: name.into(),
            plan: Some(plan),
            stats: None,
            rejected,
        };
    }
    Candidate {
        name: name.into(),
        plan: Some(plan),
        stats: Some(outcome.stats),
        rejected: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use whale_graph::models;

    #[test]
    fn auto_parallel_picks_dp_for_small_models() {
        // ResNet-50 fits everywhere; DP avoids pipeline bubbles and wins.
        let s = Session::on_cluster("1x(4xV100)").unwrap();
        let report = auto_parallel(&s, 128, || Ok(models::resnet50(128).unwrap())).unwrap();
        assert_eq!(report.chosen, "data-parallel");
        assert!(report.candidates.len() >= 4);
    }

    #[test]
    fn auto_parallel_proposes_moe_strategy_for_moe_models() {
        let s = Session::on_cluster("1x(8xV100)").unwrap();
        let report = auto_parallel(&s, 64, || {
            Ok(models::m6_moe(models::MoeConfig::tiny(), 64).unwrap())
        })
        .unwrap();
        assert!(
            report.candidates.iter().any(|c| c.name.contains("moe")),
            "candidates: {:?}",
            report
                .candidates
                .iter()
                .map(|c| &c.name)
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn auto_parallel_proposes_split_for_dominant_fc() {
        let s = Session::on_cluster("1x(4xV100)").unwrap();
        let report = auto_parallel(&s, 64, || Ok(models::imagenet_100k(64).unwrap())).unwrap();
        let split = report
            .candidates
            .iter()
            .find(|c| c.name.starts_with("dp+split"))
            .expect("100k-class FC dominates parameters → split candidate");
        assert!(split.rejected.is_none() || split.stats.is_some() || split.plan.is_some());
    }

    #[test]
    fn auto_parallel_rejects_oom_candidates_for_giant_models() {
        // M6-10B replicas cannot fit on a single 32 GB V100: pure DP must be
        // rejected and a pipeline chosen.
        let s = Session::on_cluster("2x(4xV100)").unwrap();
        let report = auto_parallel(&s, 32, || Ok(models::m6_10b(32).unwrap())).unwrap();
        let dp = report
            .candidates
            .iter()
            .find(|c| c.name == "data-parallel")
            .unwrap();
        assert!(dp.rejected.is_some(), "10B DP replica must OOM");
        assert!(
            report.chosen.contains("pipeline"),
            "chose {}",
            report.chosen
        );
    }
}
