//! Whale (Rust reproduction): efficient giant-model training over
//! heterogeneous GPUs.
//!
//! This crate is the public façade over the reproduction of Jia et al.'s
//! Whale (USENIX ATC 2022). It re-exports the substrates and adds:
//!
//! * [`Session`] — the annotate → plan → simulate driver (Fig. 5's system
//!   flow);
//! * [`strategies`] — canned annotations mirroring the paper's code
//!   Examples 1–8;
//! * [`auto_parallel`] — Example 6's automatic strategy exploration.
//!
//! Real GPUs, TensorFlow graphs, and NCCL are replaced by analytic models
//! (see DESIGN.md §2); every Whale-specific mechanism — the four parallel
//! primitives, TaskGraphs, bridge fusion, PSVF, hardware-aware DP/pipeline
//! partitioning, backward-first scheduling, hierarchical gradient AllReduce
//! — is implemented in full.
//!
//! # Examples
//!
//! Train ResNet-50 data-parallel on the paper's heterogeneous testbed
//! (8 V100 + 8 P100, Fig. 17):
//!
//! ```
//! use whale::{strategies, Session};
//! use whale_graph::models;
//!
//! let session = Session::on_cluster("8xV100+8xP100").unwrap();
//! let ir = strategies::data_parallel(models::resnet50(512).unwrap(), 512).unwrap();
//! let out = session.step(&ir).unwrap();
//! assert!(out.stats.throughput > 0.0);
//!
//! // The baseline (uniform batches) is slower:
//! let baseline = Session::on_cluster("8xV100+8xP100").unwrap().hardware_aware(false);
//! let ir2 = strategies::data_parallel(models::resnet50(512).unwrap(), 512).unwrap();
//! let base = baseline.step(&ir2).unwrap();
//! assert!(base.stats.step_time > out.stats.step_time);
//! ```

pub mod auto;
pub mod error;
pub mod resilient;
pub mod search;
pub mod session;
pub mod strategies;

pub use auto::{
    auto_parallel, auto_parallel_opts, AutoOptions, AutoReport, Candidate, RejectReason,
    SearchStats,
};
pub use error::{Result, WhaleError};
pub use resilient::{RecoveryEvent, RecoveryPolicy, RecoveryStats, ReplanPath, ResilientRun};
pub use search::{auto_parallel_search, SearchOptions};
pub use session::Session;

// Re-export the substrate crates under stable names.
pub use whale_graph as graph;
pub use whale_hardware as hardware;
pub use whale_ir as ir;
pub use whale_planner as planner;
pub use whale_sim as sim;

// Frequently used items at the crate root.
pub use whale_graph::{models, CostProfile, Graph, Optimizer, TrainingConfig, ZeroStage};
pub use whale_hardware::{Cluster, ClusterDelta, CommModel, GpuModel, VirtualDevice};
pub use whale_ir::{Annotator, PipelineSpec, Primitive, ScopedBuilder, TaskGraph, WhaleIr};
pub use whale_planner::{
    CacheStats, CommConfig, DeviceAssignment, ExecutionPlan, GradDtype, GradSyncSchedule,
    LedgerComponent, MemoryLedger, PassId, PlanCache, PlanService, PlannerConfig, ScheduleKind,
    SyncMode,
};
pub use whale_sim::{
    ascii_timeline, simulate_step, simulate_training, LossModel, SimConfig, StepOutcome, StepStats,
};
