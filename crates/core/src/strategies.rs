//! Canned parallel strategies mirroring the paper's Examples 1–8.
//!
//! Each function wraps a finished model graph in the annotations of one
//! paper example, producing [`WhaleIr`] ready for [`crate::Session::plan`].

use whale_graph::{Graph, OpId};
use whale_ir::{Annotator, Primitive, WhaleIr};

use crate::error::Result;

/// Example 1: pure data parallelism — replicate the whole model.
pub fn data_parallel(graph: Graph, global_batch: usize) -> Result<WhaleIr> {
    Ok(Annotator::new(graph, global_batch)
        .replicate_all()?
        .finish()?)
}

/// Example 2: vanilla model parallelism — split the graph at `cut` (op
/// index) into two stages executed sequentially on different devices.
pub fn vanilla_model_parallel(graph: Graph, global_batch: usize, cut: usize) -> Result<WhaleIr> {
    let n = graph.len();
    Ok(Annotator::new(graph, global_batch)
        .annotate_range(0, cut, vec![Primitive::Stage])?
        .annotate_range(cut, n, vec![Primitive::Stage])?
        .finish()?)
}

/// Example 4: hybrid of *auto* pipeline parallelism and data parallelism —
/// the planner partitions stages with the hardware-aware balanced cut and
/// replicates the whole pipeline.
pub fn pipeline_with_dp(graph: Graph, global_batch: usize, num_micro: usize) -> Result<WhaleIr> {
    Ok(Annotator::new(graph, global_batch)
        .outer_replica()
        .auto_pipeline(num_micro)?
        .finish()?)
}

/// Auto pipeline without outer data parallelism.
pub fn pipeline_only(graph: Graph, global_batch: usize, num_micro: usize) -> Result<WhaleIr> {
    Ok(Annotator::new(graph, global_batch)
        .auto_pipeline(num_micro)?
        .finish()?)
}

/// Example 5 / Fig. 4: data parallelism on the feature extractor plus tensor
/// model parallelism on a named classifier (`split_marker` selects the split
/// ops by substring, e.g. `"fc_big"`).
pub fn feature_dp_classifier_split(
    graph: Graph,
    global_batch: usize,
    split_marker: &str,
) -> Result<WhaleIr> {
    Ok(Annotator::new(graph, global_batch)
        .annotate_named(split_marker, vec![Primitive::Split])?
        .set_default(Primitive::Replica)
        .finish()?)
}

/// Example 8: MoE — expert layers split across devices, everything else
/// data-parallel via the default scope (`wh.set_default_scope(wh.replica)`).
pub fn moe_hybrid(graph: Graph, global_batch: usize) -> Result<WhaleIr> {
    // Each layer's expert computation (gating + MoE FFN) becomes its own
    // split TaskGraph, keeping the split TaskGraphs disjoint per layer so
    // the replica/split interleaving matches Fig. 15. One pass collects the
    // MoE FFN ops in id order and claims each by id, keeping annotation
    // linear in graph size; matching each layer's name against every op
    // (the previous formulation) was O(layers × ops) and dominated deep-MoE
    // cold compiles.
    let moe_ops: Vec<OpId> = graph
        .ops()
        .iter()
        .filter(|op| op.name.ends_with("/moe_ffn"))
        .map(|op| op.id)
        .collect();
    let mut annot = Annotator::new(graph, global_batch).set_default(Primitive::Replica);
    for id in moe_ops {
        annot = annot.annotate_ops(vec![id], vec![Primitive::Split])?;
    }
    Ok(annot.finish()?)
}

/// [`moe_hybrid`] with plan-level data parallelism on top: the cluster is
/// carved into replica groups (`Session::outer_dp` picks how many) and the
/// expert layers are split *within* each group, so the expert-parallel
/// degree becomes `num_gpus / outer_dp`. The branch-and-bound search sweeps
/// that degree; the narrow enumeration only ever proposed the full-cluster
/// split ([`moe_hybrid`]).
pub fn moe_hybrid_ep(graph: Graph, global_batch: usize) -> Result<WhaleIr> {
    let moe_ops: Vec<OpId> = graph
        .ops()
        .iter()
        .filter(|op| op.name.ends_with("/moe_ffn"))
        .map(|op| op.id)
        .collect();
    let mut annot = Annotator::new(graph, global_batch)
        .outer_replica()
        .set_default(Primitive::Replica);
    for id in moe_ops {
        annot = annot.annotate_ops(vec![id], vec![Primitive::Split])?;
    }
    Ok(annot.finish()?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use whale_graph::models;

    #[test]
    fn example1_ir_shape() {
        let ir = data_parallel(models::resnet50(32).unwrap(), 32).unwrap();
        assert_eq!(ir.num_task_graphs(), 1);
        assert!(!ir.outer_replica);
    }

    #[test]
    fn example2_ir_shape() {
        let g = models::bert_base(8, 64).unwrap();
        let n = g.len();
        let ir = vanilla_model_parallel(g, 8, n / 2).unwrap();
        assert_eq!(ir.num_task_graphs(), 2);
    }

    #[test]
    fn example4_ir_shape() {
        let ir = pipeline_with_dp(models::bert_base(32, 64).unwrap(), 32, 8).unwrap();
        assert!(ir.outer_replica);
        assert!(ir.auto_partition);
        assert_eq!(ir.pipeline.unwrap().num_micro_batches, 8);
    }

    #[test]
    fn example5_ir_shape() {
        let ir =
            feature_dp_classifier_split(models::imagenet_100k(32).unwrap(), 32, "fc_big").unwrap();
        assert!(ir
            .task_graphs
            .iter()
            .any(|tg| tg.innermost() == Primitive::Split));
    }
}

#[cfg(test)]
mod moe_tests {
    use super::*;
    use whale_graph::models::{self, MoeConfig};

    #[test]
    fn moe_ep_ir_shape() {
        let g = models::m6_moe(MoeConfig::tiny(), 8).unwrap();
        let ir = moe_hybrid_ep(g, 8).unwrap();
        assert!(ir.outer_replica, "EP variant adds plan-level DP");
        let splits = ir
            .task_graphs
            .iter()
            .filter(|tg| tg.innermost() == Primitive::Split)
            .count();
        assert_eq!(splits, 2, "expert layers still split within each group");
    }

    #[test]
    fn example8_ir_shape() {
        let g = models::m6_moe(MoeConfig::tiny(), 8).unwrap();
        let ir = moe_hybrid(g, 8).unwrap();
        let splits = ir
            .task_graphs
            .iter()
            .filter(|tg| tg.innermost() == Primitive::Split)
            .count();
        assert_eq!(splits, 2, "one split TaskGraph per tiny-MoE layer");
        // Replica and split TaskGraphs interleave (Fig. 15).
        assert!(ir.num_task_graphs() >= 4);
        assert_eq!(ir.default_strategy, Some(Primitive::Replica));
    }
}
