//! Unified error type for the façade crate.

use std::fmt;

/// Errors surfaced by the high-level API.
#[derive(Debug, Clone, PartialEq)]
pub enum WhaleError {
    /// Hardware-model failure.
    Hardware(String),
    /// Graph construction failure.
    Graph(String),
    /// Annotation/IR failure.
    Ir(String),
    /// Planning failure.
    Plan(String),
    /// Simulation failure.
    Sim(String),
    /// The plan does not fit device memory on the listed GPUs.
    OutOfMemory(Vec<usize>),
    /// Auto-parallel found no feasible strategy.
    NoFeasibleStrategy,
    /// A fault-recovery run aborted: surviving cluster capacity (as a
    /// fraction of the starting capacity) fell below the policy floor.
    InsufficientCapacity {
        /// Surviving capacity fraction.
        available: f64,
        /// The [`crate::resilient::RecoveryPolicy::min_capacity`] floor.
        required: f64,
    },
}

impl fmt::Display for WhaleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WhaleError::Hardware(s) => write!(f, "hardware: {s}"),
            WhaleError::Graph(s) => write!(f, "graph: {s}"),
            WhaleError::Ir(s) => write!(f, "ir: {s}"),
            WhaleError::Plan(s) => write!(f, "plan: {s}"),
            WhaleError::Sim(s) => write!(f, "simulation: {s}"),
            WhaleError::OutOfMemory(gpus) => write!(f, "out of memory on GPUs {gpus:?}"),
            WhaleError::NoFeasibleStrategy => write!(f, "auto-parallel found no feasible strategy"),
            WhaleError::InsufficientCapacity {
                available,
                required,
            } => write!(
                f,
                "cluster capacity fell to {:.0}% of the starting fleet, below the {:.0}% floor",
                available * 100.0,
                required * 100.0
            ),
        }
    }
}

impl std::error::Error for WhaleError {}

impl From<whale_hardware::HardwareError> for WhaleError {
    fn from(e: whale_hardware::HardwareError) -> Self {
        WhaleError::Hardware(e.to_string())
    }
}

impl From<whale_graph::GraphError> for WhaleError {
    fn from(e: whale_graph::GraphError) -> Self {
        WhaleError::Graph(e.to_string())
    }
}

impl From<whale_ir::IrError> for WhaleError {
    fn from(e: whale_ir::IrError) -> Self {
        WhaleError::Ir(e.to_string())
    }
}

impl From<whale_planner::PlanError> for WhaleError {
    fn from(e: whale_planner::PlanError) -> Self {
        WhaleError::Plan(e.to_string())
    }
}

impl From<whale_sim::SimError> for WhaleError {
    fn from(e: whale_sim::SimError) -> Self {
        WhaleError::Sim(e.to_string())
    }
}

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, WhaleError>;
