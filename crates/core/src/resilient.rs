//! Self-healing training runs over delta replanning.
//!
//! PR 2 built the machinery for reacting to cluster drift —
//! [`ClusterDelta`](whale_hardware::ClusterDelta),
//! [`Session::replan`], `check_replan` — but nothing drove it under
//! adversarial schedules. This module closes the loop: given a deterministic
//! [`FaultTrace`], [`Session::train_resilient`] runs the training simulation
//! in segments between fault events and, on each event, walks the recovery
//! state machine
//!
//! ```text
//! detect  →  rollback  →  replan  →  resume
//! ```
//!
//! * **detect** — the runtime notices the fault `detection_latency_s`
//!   seconds after it strikes; that time is pure downtime.
//! * **rollback** — training restarts from the last periodic checkpoint;
//!   every sample committed since is lost and must be re-earned.
//! * **replan** — the delta is applied through the session's delta-
//!   invalidation fast path (only the invalidated compile-pass suffix
//!   re-runs). The replanned plan is verified with
//!   [`whale_sim::check_replan`]; if verification fails, the runtime falls
//!   back to a full from-scratch recompile. Recovery attempts for
//!   *transient* faults (degradation, congestion, restore) are retried with
//!   bounded exponential backoff; permanent faults fail fast.
//! * **resume** — training continues under the new plan. If the surviving
//!   capacity has dropped below [`RecoveryPolicy::min_capacity`] of the
//!   starting cluster, the run aborts with
//!   [`WhaleError::InsufficientCapacity`] instead of limping.
//!
//! [`Session::train_restart_baseline`] is the foil: a conventional static
//! runtime that cannot replan. It ignores rate faults (and stalls behind the
//! resulting stragglers) and reacts to membership changes the only way it
//! can — restart from scratch, losing all progress. `fault_bench` compares
//! the two on goodput.

use std::sync::Arc;

use whale_ir::WhaleIr;
use whale_planner::{plan as cold_plan, CacheStats, ExecutionPlan};
use whale_sim::{check_replan, simulate_training, FaultEvent, FaultTrace, LossModel, TrainPoint};

use crate::error::{Result, WhaleError};
use crate::session::Session;

// The recovery data types moved to `whale_sim::recovery` so the fleet
// simulator can share them; re-exported here to keep `whale::resilient::*`
// and `whale::{RecoveryPolicy, ...}` stable.
pub use whale_sim::recovery::{RecoveryEvent, RecoveryPolicy, RecoveryStats, ReplanPath};

/// A completed run under fault injection: the loss curve actually committed
/// plus the recovery accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct ResilientRun {
    /// Curve points at segment boundaries. `samples` is *committed*
    /// progress, so a value can regress right after a rollback — that is
    /// the point.
    pub points: Vec<TrainPoint>,
    /// Recovery accounting.
    pub stats: RecoveryStats,
}

/// How the training loop reacts to faults.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RecoveryMode {
    /// Checkpoint + delta-replan (the tentpole runtime).
    Resilient,
    /// Static plan: ignore rate faults (and straggle), restart from sample
    /// zero on membership changes.
    RestartFromScratch,
}

/// Mutable bookkeeping of one run.
struct LoopState {
    committed: f64,
    processed: f64,
    wall_s: f64,
    training_s: f64,
    downtime_s: f64,
    lost: f64,
    points: Vec<TrainPoint>,
    faults: Vec<RecoveryEvent>,
    replans_cached: u64,
    replans_full: u64,
}

impl LoopState {
    fn new() -> LoopState {
        LoopState {
            committed: 0.0,
            processed: 0.0,
            wall_s: 0.0,
            training_s: 0.0,
            downtime_s: 0.0,
            lost: 0.0,
            points: Vec::new(),
            faults: Vec::new(),
            replans_cached: 0,
            replans_full: 0,
        }
    }

    fn into_stats(self) -> RecoveryStats {
        RecoveryStats {
            committed_samples: self.committed,
            processed_samples: self.processed,
            samples_lost: self.lost,
            wall_seconds: self.wall_s,
            training_seconds: self.training_s,
            downtime_seconds: self.downtime_s,
            goodput: ratio(self.committed, self.wall_s),
            raw_throughput: ratio(self.processed, self.training_s),
            availability: ratio(self.training_s, self.wall_s),
            replans_cached: self.replans_cached,
            replans_full: self.replans_full,
            faults: self.faults,
        }
    }
}

fn ratio(a: f64, b: f64) -> f64 {
    if b > 0.0 {
        a / b
    } else {
        0.0
    }
}

impl Session {
    /// Train to `total_samples` committed samples while the faults in
    /// `trace` strike, recovering per `policy`. See the module docs for the
    /// recovery state machine. Deterministic: the trace is data, the
    /// simulator is seedless here (curve points carry no noise), so equal
    /// inputs give bit-identical [`RecoveryStats`].
    ///
    /// The session's cluster tracks every applied delta; after the run it
    /// reflects the final topology.
    pub fn train_resilient(
        &mut self,
        ir: &WhaleIr,
        loss: &LossModel,
        total_samples: f64,
        trace: &FaultTrace,
        policy: &RecoveryPolicy,
    ) -> Result<ResilientRun> {
        self.run_under_faults(
            ir,
            loss,
            total_samples,
            trace,
            policy,
            RecoveryMode::Resilient,
        )
    }

    /// The restart-from-scratch foil for [`Session::train_resilient`]: a
    /// static runtime that cannot replan. Rate faults are ridden out with
    /// the original plan (stragglers and all); membership changes force a
    /// cold recompile and lose **all** committed progress. Same policy
    /// semantics otherwise (detection latency, capacity floor).
    pub fn train_restart_baseline(
        &mut self,
        ir: &WhaleIr,
        loss: &LossModel,
        total_samples: f64,
        trace: &FaultTrace,
        policy: &RecoveryPolicy,
    ) -> Result<ResilientRun> {
        self.run_under_faults(
            ir,
            loss,
            total_samples,
            trace,
            policy,
            RecoveryMode::RestartFromScratch,
        )
    }

    fn run_under_faults(
        &mut self,
        ir: &WhaleIr,
        loss: &LossModel,
        total_samples: f64,
        trace: &FaultTrace,
        policy: &RecoveryPolicy,
        mode: RecoveryMode,
    ) -> Result<ResilientRun> {
        let capacity0 = self.cluster().total_flops();
        let mut plan = self.plan(ir)?;
        let mut state = LoopState::new();

        for event in &trace.events {
            if state.committed >= total_samples {
                break;
            }
            // Train up to the fault (or to completion, whichever is first).
            let to_event = event.at_samples - state.processed;
            let to_done = total_samples - state.committed;
            let seg = to_event.min(to_done);
            if seg > 0.0 {
                self.run_segment(&plan, loss, seg, &mut state)?;
            }
            if state.committed >= total_samples {
                break;
            }

            // The fault strikes.
            match mode {
                RecoveryMode::Resilient => {
                    plan = self.recover(ir, event, policy, &mut state)?;
                }
                RecoveryMode::RestartFromScratch => {
                    plan = self.react_static(ir, plan, event, policy, &mut state)?;
                }
            }
            let capacity = self.cluster().total_flops();
            if capacity < policy.min_capacity * capacity0 {
                return Err(WhaleError::InsufficientCapacity {
                    available: capacity / capacity0,
                    required: policy.min_capacity,
                });
            }
        }

        let remaining = total_samples - state.committed;
        if remaining > 0.0 {
            self.run_segment(&plan, loss, remaining, &mut state)?;
        }
        Ok(ResilientRun {
            points: std::mem::take(&mut state.points),
            stats: state.into_stats(),
        })
    }

    /// Simulate `seg_samples` of training under `plan`, charging wall-clock
    /// and emitting one curve point at the segment end.
    fn run_segment(
        &self,
        plan: &ExecutionPlan,
        loss: &LossModel,
        seg_samples: f64,
        state: &mut LoopState,
    ) -> Result<()> {
        let run = simulate_training(
            plan,
            self.cluster(),
            self.sim_config(),
            loss,
            seg_samples,
            2,
            0,
        )?;
        let elapsed = run.total_seconds();
        state.processed += seg_samples;
        state.committed += seg_samples;
        state.wall_s += elapsed;
        state.training_s += elapsed;
        state.points.push(TrainPoint {
            step: (state.committed / plan.global_batch as f64).ceil() as u64,
            samples: state.committed,
            wall_seconds: state.wall_s,
            loss: loss.loss_at(state.committed),
        });
        Ok(())
    }

    /// The resilient recovery state machine for one fault event.
    fn recover(
        &mut self,
        ir: &WhaleIr,
        event: &FaultEvent,
        policy: &RecoveryPolicy,
        state: &mut LoopState,
    ) -> Result<Arc<ExecutionPlan>> {
        let old_plan = self.plan(ir)?;
        let mut downtime = policy.detection_latency_s;

        // Rollback: committed progress returns to the last checkpoint.
        let interval = policy.checkpoint_interval.max(1.0);
        let checkpoint = (state.committed / interval).floor() * interval;
        let lost = state.committed - checkpoint;
        state.committed = checkpoint;
        state.lost += lost;

        // Replan through the delta-invalidation fast path, retrying
        // transient faults with bounded exponential backoff.
        let mut retries = 0u32;
        let (new_plan, mut path) = loop {
            let before = self.cache_stats();
            match self.replan(ir, event.delta) {
                Ok(p) => break (p, classify(before, self.cache_stats())),
                Err(e) => {
                    if event.kind.is_transient() && retries < policy.max_retries {
                        retries += 1;
                        downtime += policy.backoff_s(retries);
                    } else {
                        state.wall_s += downtime;
                        state.downtime_s += downtime;
                        return Err(e);
                    }
                }
            }
        };

        // Verify the shortcut; fall back to a full recompile if it broke
        // the plan. Structural deltas legitimately change stage shapes, so
        // they are checked for executability rather than against the old
        // plan.
        let reference = if event.delta.is_structural() {
            &new_plan
        } else {
            &old_plan
        };
        let report = check_replan(reference, &new_plan, self.cluster(), self.sim_config());
        let (final_plan, outcome) = if report.is_consistent() {
            (
                new_plan,
                report.outcome.expect("consistent reports simulate"),
            )
        } else {
            let cold = Arc::new(cold_plan(ir, self.cluster(), self.planner_config())?);
            let audit = check_replan(&cold, &cold, self.cluster(), self.sim_config());
            if !audit.is_consistent() {
                state.wall_s += downtime;
                state.downtime_s += downtime;
                return Err(WhaleError::Plan(format!(
                    "recovery failed verification even after a full recompile:\n{audit}"
                )));
            }
            path = ReplanPath::Full;
            (cold, audit.outcome.expect("consistent reports simulate"))
        };

        match path {
            ReplanPath::CachedSuffix => state.replans_cached += 1,
            ReplanPath::Full => state.replans_full += 1,
        }
        state.wall_s += downtime;
        state.downtime_s += downtime;
        state.faults.push(RecoveryEvent {
            kind: event.kind,
            at_samples: event.at_samples,
            samples_lost: lost,
            downtime_s: downtime,
            time_to_recover_s: downtime + ratio(lost, outcome.stats.throughput),
            retries,
            replan: path,
        });
        Ok(final_plan)
    }

    /// The static baseline's reaction: straggle through rate faults,
    /// restart from scratch on membership changes.
    fn react_static(
        &mut self,
        ir: &WhaleIr,
        current: Arc<ExecutionPlan>,
        event: &FaultEvent,
        policy: &RecoveryPolicy,
        state: &mut LoopState,
    ) -> Result<Arc<ExecutionPlan>> {
        if !event.delta.is_structural() {
            // The static runtime never even notices: the plan stays, the
            // cluster slows underneath it and the fast GPUs wait on the
            // straggler.
            self.cluster_mut().apply_delta(event.delta)?;
            return Ok(current);
        }
        // Membership changed: the only move a static runtime has is a full
        // restart — recompile cold, lose everything.
        let lost = state.committed;
        state.committed = 0.0;
        state.lost += lost;
        state.wall_s += policy.detection_latency_s;
        state.downtime_s += policy.detection_latency_s;
        self.cluster_mut().apply_delta(event.delta)?;
        let plan = Arc::new(cold_plan(ir, self.cluster(), self.planner_config())?);
        let audit = check_replan(&plan, &plan, self.cluster(), self.sim_config());
        let throughput = audit
            .outcome
            .as_ref()
            .map(|o| o.stats.throughput)
            .unwrap_or(0.0);
        state.replans_full += 1;
        state.faults.push(RecoveryEvent {
            kind: event.kind,
            at_samples: event.at_samples,
            samples_lost: lost,
            downtime_s: policy.detection_latency_s,
            time_to_recover_s: policy.detection_latency_s + ratio(lost, throughput),
            retries: 0,
            replan: ReplanPath::Full,
        });
        Ok(plan)
    }
}

/// Decide which path a `Session::replan` took from the cache counters: a
/// partial hit (suffix re-run) or a pure hit (post-delta state already
/// cached, e.g. a restore back to a known topology) count as the fast path.
fn classify(before: Option<CacheStats>, after: Option<CacheStats>) -> ReplanPath {
    match (before, after) {
        (Some(b), Some(a)) if a.partial_hits > b.partial_hits || a.hits > b.hits => {
            ReplanPath::CachedSuffix
        }
        _ => ReplanPath::Full,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use whale_graph::models;
    use whale_hardware::{ClusterDelta, LinkKind};
    use whale_ir::Annotator;
    use whale_sim::{FaultKind, FaultModel};

    fn dp_ir(batch: usize) -> WhaleIr {
        let g = models::resnet50(batch).unwrap();
        Annotator::new(g, batch)
            .replicate_all()
            .unwrap()
            .finish()
            .unwrap()
    }

    fn policy() -> RecoveryPolicy {
        RecoveryPolicy {
            checkpoint_interval: 1e4,
            ..RecoveryPolicy::default()
        }
    }

    fn event(at: f64, kind: FaultKind, delta: ClusterDelta) -> FaultEvent {
        FaultEvent {
            at_samples: at,
            kind,
            delta,
        }
    }

    #[test]
    fn fault_free_run_matches_plain_training() {
        let ir = dp_ir(64);
        let mut s = Session::on_cluster("4xV100").unwrap();
        let loss = LossModel::for_params(25e6);
        let run = s
            .train_resilient(&ir, &loss, 1e5, &FaultTrace::default(), &policy())
            .unwrap();
        assert_eq!(run.stats.samples_lost, 0.0);
        assert_eq!(run.stats.committed_samples, 1e5);
        assert_eq!(run.stats.availability, 1.0);
        assert!(run.stats.faults.is_empty());
        assert!((run.stats.goodput - run.stats.raw_throughput).abs() < 1e-9);
    }

    #[test]
    fn degradation_recovers_via_cached_suffix_and_loses_bounded_samples() {
        let ir = dp_ir(64);
        let mut s = Session::on_cluster("4xV100").unwrap();
        s.plan(&ir).unwrap();
        let loss = LossModel::for_params(25e6);
        let trace = FaultTrace {
            events: vec![event(
                2.5e4,
                FaultKind::Degrade,
                ClusterDelta::GpuDegraded { id: 1, scale: 0.5 },
            )],
        };
        let run = s
            .train_resilient(&ir, &loss, 1e5, &trace, &policy())
            .unwrap();
        assert_eq!(run.stats.faults.len(), 1);
        let f = run.stats.faults[0];
        assert_eq!(f.replan, ReplanPath::CachedSuffix);
        assert_eq!(f.retries, 0);
        // Struck at 25k with 10k checkpoints → exactly 5k lost.
        assert!((f.samples_lost - 5e3).abs() < 1e-6, "{f:?}");
        assert_eq!(run.stats.replans_cached, 1);
        assert_eq!(run.stats.replans_full, 0);
        assert!((run.stats.committed_samples - 1e5).abs() < 1e-6);
        assert!(
            (run.stats.processed_samples - (1e5 + 5e3)).abs() < 1e-6,
            "lost samples are re-earned"
        );
        assert!(run.stats.goodput < run.stats.raw_throughput);
        assert!(run.stats.availability < 1.0);
        // The session tracked the delta.
        assert_eq!(s.cluster().gpu(1).unwrap().throughput_scale, 0.5);
    }

    #[test]
    fn crash_recovers_and_capacity_floor_aborts() {
        let ir = dp_ir(64);
        let loss = LossModel::for_params(25e6);
        let crash = |id| event(3e4, FaultKind::Crash, ClusterDelta::GpuRemoved { id });

        let mut s = Session::on_cluster("4xV100").unwrap();
        let trace = FaultTrace {
            events: vec![crash(3)],
        };
        let run = s
            .train_resilient(&ir, &loss, 1e5, &trace, &policy())
            .unwrap();
        assert_eq!(s.cluster().num_gpus(), 3);
        assert_eq!(run.stats.faults[0].kind, FaultKind::Crash);

        // Losing 3 of 4 GPUs leaves 25% capacity — below a 0.3 floor (and
        // exactly *at* the default 0.25 floor, which deliberately does not
        // abort: the gate is strict).
        let mut s = Session::on_cluster("4xV100").unwrap();
        let trace = FaultTrace {
            events: vec![crash(3), crash(2), crash(1)],
        };
        let strict = RecoveryPolicy {
            min_capacity: 0.3,
            ..policy()
        };
        match s.train_resilient(&ir, &loss, 1e7, &trace, &strict) {
            Err(WhaleError::InsufficientCapacity {
                available,
                required,
            }) => {
                assert!(available <= 0.25 + 1e-9, "{available}");
                assert_eq!(required, 0.3);
            }
            other => panic!("expected capacity abort, got {other:?}"),
        }
    }

    #[test]
    fn transient_recovery_failure_is_retried_then_fatal() {
        let ir = dp_ir(64);
        let loss = LossModel::for_params(25e6);
        // A restore for a GPU that does not exist can never apply.
        let bad = event(
            1e4,
            FaultKind::Restore,
            ClusterDelta::GpuRestored { id: 17 },
        );
        let mut s = Session::on_cluster("4xV100").unwrap();
        let trace = FaultTrace { events: vec![bad] };
        let err = s
            .train_resilient(&ir, &loss, 1e5, &trace, &policy())
            .unwrap_err();
        // Surfaced through the planner's replan path as a Plan error.
        assert!(err.to_string().contains("unknown device"), "{err}");

        // A permanent fault with an invalid target fails without retries.
        let mut s = Session::on_cluster("4xV100").unwrap();
        let trace = FaultTrace {
            events: vec![event(
                1e4,
                FaultKind::Crash,
                ClusterDelta::GpuRemoved { id: 17 },
            )],
        };
        assert!(s
            .train_resilient(&ir, &loss, 1e5, &trace, &policy())
            .is_err());
    }

    #[test]
    fn congestion_and_restore_round_trip() {
        let ir = dp_ir(64);
        let loss = LossModel::for_params(25e6);
        let mut s = Session::on_cluster("2x(2xV100)").unwrap();
        let base_bw = s.cluster().interconnect.network_bw;
        let trace = FaultTrace {
            events: vec![
                event(
                    2e4,
                    FaultKind::Congestion,
                    ClusterDelta::LinkBandwidth {
                        kind: LinkKind::Network,
                        bytes_per_sec: base_bw * 0.3,
                    },
                ),
                event(
                    5e4,
                    FaultKind::Restore,
                    ClusterDelta::LinkBandwidth {
                        kind: LinkKind::Network,
                        bytes_per_sec: base_bw,
                    },
                ),
            ],
        };
        let run = s
            .train_resilient(&ir, &loss, 1e5, &trace, &policy())
            .unwrap();
        assert_eq!(run.stats.faults.len(), 2);
        assert_eq!(s.cluster().interconnect.network_bw, base_bw);
    }

    #[test]
    fn restart_baseline_loses_everything_on_a_crash() {
        let ir = dp_ir(64);
        let loss = LossModel::for_params(25e6);
        let trace = FaultTrace {
            events: vec![event(
                8e4,
                FaultKind::Crash,
                ClusterDelta::GpuRemoved { id: 3 },
            )],
        };
        let mut resilient = Session::on_cluster("4xV100").unwrap();
        let res = resilient
            .train_resilient(&ir, &loss, 1e5, &trace, &policy())
            .unwrap();
        let mut naive = Session::on_cluster("4xV100").unwrap();
        let base = naive
            .train_restart_baseline(&ir, &loss, 1e5, &trace, &policy())
            .unwrap();
        // Baseline lost all 80k committed samples; resilient lost < 10k.
        assert!((base.stats.samples_lost - 8e4).abs() < 1e-6, "{base:?}");
        assert!(res.stats.samples_lost <= 1e4);
        assert!(res.stats.goodput > base.stats.goodput);
    }

    #[test]
    fn stats_json_round_trips() {
        let ir = dp_ir(64);
        let loss = LossModel::for_params(25e6);
        let cluster = whale_hardware::Cluster::parse("4xV100").unwrap();
        let trace = FaultTrace::generate(
            &cluster,
            &FaultModel {
                mtbf_samples: 3e4,
                mttr_samples: 1e4,
                seed: 9,
            },
            1.5e5,
        );
        let mut s = Session::new(cluster);
        let run = s
            .train_resilient(&ir, &loss, 1.5e5, &trace, &policy())
            .unwrap();
        let text = run.stats.to_json().to_string_pretty();
        let parsed = whale_sim::json::parse(&text).unwrap();
        assert_eq!(
            parsed.get("faults").as_array().unwrap().len(),
            run.stats.faults.len()
        );
        assert_eq!(parsed.get("goodput").as_f64().unwrap(), run.stats.goodput);
    }

    #[test]
    fn resilient_run_is_deterministic() {
        let ir = dp_ir(64);
        let loss = LossModel::for_params(25e6);
        let cluster = whale_hardware::Cluster::parse("2x(4xV100)").unwrap();
        let model = FaultModel {
            mtbf_samples: 4e4,
            mttr_samples: 2e4,
            seed: 1234,
        };
        let run = |_| {
            let trace = FaultTrace::generate(&cluster, &model, 3e5);
            let mut s = Session::new(cluster.clone());
            s.train_resilient(&ir, &loss, 3e5, &trace, &policy())
                .unwrap()
        };
        let a = run(());
        let b = run(());
        assert_eq!(a, b, "same seed ⇒ identical run and RecoveryStats");
        assert!(!a.stats.faults.is_empty());
    }
}
