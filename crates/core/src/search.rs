//! Branch-and-bound auto-parallel search over a nested hybrid strategy
//! space (ROADMAP item 2; Piper-style two-level decomposition with
//! DAPPLE-style micro-batch/schedule choice).
//!
//! The narrow enumeration in [`crate::auto`] hand-writes ~7 candidates.
//! This module instead *generates* the space
//!
//! ```text
//! strategy   ::= structure × micro-batch count × schedule
//! structure  ::= dp                                    (replica degree n)
//!              | pipeline(r)      r | n, depth d = n/r (replica × stage)
//!              | moe(r)           r | n, experts split n/r-wide per group
//!              | dp+split(op)                          (replica × split)
//! micro      ::= {2, 3, 4, 6, 8, 12, 16, 20, 24, 32, 40, 48, 64, 96, 128}
//! schedule   ::= backward-first (1F1B) | GPipe flush
//! ```
//!
//! and prunes it with *admissible* lower bounds from the planner's
//! closed-form estimator (`whale_planner::estimate`): a node is discarded
//! only when even its most optimistic step time cannot strictly beat the
//! incumbent, so the search provably never loses to the enumeration on any
//! workload whose candidates it contains (all of them).
//!
//! Two levels, three gates:
//!
//! 1. **structure bound** — the cheapest leaf bound of a structure; prunes
//!    whole subtrees before any per-leaf work;
//! 2. **pre-plan leaf bound** — [`whale_planner::structural_lower_bound`]
//!    from cluster aggregates (work conservation, fastest-GPU critical
//!    chain, stage-bottleneck averaging); prunes before paying for a plan;
//! 3. **post-plan bound** — [`whale_planner::estimate_step_lower_bound`]
//!    from the planned stages' real rooflines; prunes before paying for a
//!    simulation.
//!
//! Determinism: structures and leaves are ordered best-bound-first with
//! generation-index tie-breaks, leaves are evaluated in fixed-size waves
//! (independent of `search_threads`), every prune/incumbent decision runs
//! serially between the fanned-out plan/simulate phases, and the fan-out
//! merges by index — so any thread count returns the identical
//! [`AutoReport`] (see `tests/search_determinism.rs`).

use std::collections::BTreeMap;
use std::sync::Arc;

use whale_graph::Graph;
use whale_planner::{
    estimate_step_lower_bound, pipeline_leaf_bound, structural_lower_bound_keyed, EstimateCache,
    ExecutionPlan, ScheduleKind, StructuralBound,
};

use crate::auto::{
    effective_threads, evaluate_plan, fan_out, memory_reject, probe_graph, AutoReport, Candidate,
    GraphProbe, RejectReason, SearchStats,
};
use crate::error::{Result, WhaleError};
use crate::session::Session;
use crate::strategies;

/// Micro-batch counts the generator sweeps (clipped to the global batch and
/// [`SearchOptions::max_micro`]). Superset of the narrow enumeration's
/// {4, 8, 16}, so the widened space contains every old candidate.
const MICRO_GRID: [usize; 15] = [2, 3, 4, 6, 8, 12, 16, 20, 24, 32, 40, 48, 64, 96, 128];

/// Knobs of the branch-and-bound search;
/// [`SearchOptions::default`] is the production configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SearchOptions {
    /// Worker threads for the plan and simulate fan-outs. `0` sizes to
    /// [`std::thread::available_parallelism`]; any value returns an
    /// identical report.
    pub search_threads: usize,
    /// Memoize planner cost terms and reuse one built graph template across
    /// leaves (bit-identical results either way).
    pub memoize: bool,
    /// Simulate with the polling reference scheduler instead of the
    /// event-driven one.
    pub reference_sim: bool,
    /// Leaves evaluated per wave. The wave is the determinism unit: bounds
    /// and the incumbent are re-read serially between waves, never inside
    /// one, so the report does not depend on worker scheduling.
    pub wave: usize,
    /// Largest micro-batch count the generator proposes.
    pub max_micro: usize,
    /// Include the GPipe flush schedule next to backward-first (1F1B).
    pub gpipe: bool,
    /// Disable all three pruning gates: plan *and* simulate every leaf.
    /// Exists for the admissibility test and for auditing the bounds; the
    /// winner must match the pruned search.
    pub exhaustive: bool,
}

impl Default for SearchOptions {
    fn default() -> Self {
        Self {
            search_threads: 0,
            memoize: true,
            reference_sim: false,
            wave: 8,
            max_micro: 128,
            gpipe: true,
            exhaustive: false,
        }
    }
}

/// How a leaf builds its IR (the generator's closed strategy vocabulary).
#[derive(Debug, Clone)]
enum LeafKind {
    /// Whole-model replication over every GPU.
    Dp,
    /// `replicas` pipeline groups, one stage per group GPU, `micro` micro
    /// batches (`replicas == 1` = single full-depth pipeline).
    Pipeline { replicas: usize, micro: usize },
    /// MoE: experts split `n/replicas`-wide inside each of `replicas`
    /// plan-level replica groups.
    Moe { replicas: usize },
    /// Replicated feature extractor + split classifier (`marker` names the
    /// dominant FC).
    Split { marker: String },
}

/// One fully specified strategy (a level-2 leaf).
#[derive(Debug, Clone)]
struct Leaf {
    name: String,
    kind: LeafKind,
    schedule: ScheduleKind,
    /// Admissible pre-plan lower bound on step time, seconds.
    lb: f64,
    /// Structurally unrealizable on this workload (more micro batches than
    /// per-replica samples): rejected up front, never planned, and excluded
    /// from structure bounds and probe selection.
    degenerate: bool,
}

/// A level-1 node: a family of leaves sharing replica degree and shape.
struct Structure {
    /// Cheapest leaf bound (the structure's own admissible bound).
    lb: f64,
    /// Exploration-order key: `lb` plus a gradient-sync cost heuristic for
    /// the structure's replica degree. The admissible bound ignores
    /// communication, which makes DP-heavy structures look exactly as
    /// cheap as deep pipelines; the heuristic restores the real ranking so
    /// a strong incumbent lands early. Pruning never reads this key — a
    /// bad guess costs time, never the optimum.
    key: f64,
    leaves: Vec<Leaf>,
}

fn schedule_label(s: ScheduleKind) -> &'static str {
    match s {
        ScheduleKind::BackwardFirst => "1f1b",
        ScheduleKind::GPipe => "gpipe",
        ScheduleKind::AsyncNoFlush => "async",
    }
}

/// Ascending divisors of `n`.
fn divisors(n: usize) -> Vec<usize> {
    (1..=n).filter(|d| n.is_multiple_of(*d)).collect()
}

/// Build the leaf's IR from a fresh graph clone.
fn build_ir(kind: &LeafKind, graph: Graph, global_batch: usize) -> Result<whale_ir::WhaleIr> {
    match kind {
        LeafKind::Dp => strategies::data_parallel(graph, global_batch),
        LeafKind::Pipeline { replicas, micro } => {
            if *replicas > 1 {
                strategies::pipeline_with_dp(graph, global_batch, *micro)
            } else {
                strategies::pipeline_only(graph, global_batch, *micro)
            }
        }
        LeafKind::Moe { replicas } => {
            if *replicas > 1 {
                strategies::moe_hybrid_ep(graph, global_batch)
            } else {
                strategies::moe_hybrid(graph, global_batch)
            }
        }
        LeafKind::Split { marker } => {
            strategies::feature_dp_classifier_split(graph, global_batch, marker)
        }
    }
}

/// The per-leaf session: the shared session with this leaf's schedule and
/// plan-level DP degree applied. Clones share the caller's `PlanService`,
/// so identical (ir, cluster, config) keys across leaves plan once.
fn leaf_session(base: &Session, leaf: &Leaf) -> Session {
    let replicas = match &leaf.kind {
        LeafKind::Pipeline { replicas, .. } | LeafKind::Moe { replicas } => *replicas,
        _ => 1,
    };
    let mut s = base.clone().schedule(leaf.schedule);
    if replicas > 1 {
        s = s.outer_dp(replicas);
    }
    s
}

/// Explore the nested hybrid strategy space for `graph` and pick the
/// fastest memory-feasible strategy, pruning with admissible bounds.
///
/// Drop-in widening of [`crate::auto::auto_parallel`]: same signature plus
/// [`SearchOptions`], same [`AutoReport`] (with
/// [`AutoReport::search`] populated). The search overrides the session's
/// pipeline schedule per leaf — schedule choice is a search dimension here.
pub fn auto_parallel_search(
    session: &Session,
    global_batch: usize,
    opts: &SearchOptions,
    build: impl Fn() -> Result<Graph> + Sync,
) -> Result<AutoReport> {
    let baseline_session;
    let session = if opts.memoize {
        session
    } else {
        baseline_session = session.clone().memoize(false);
        &baseline_session
    };
    let n_gpus = session.cluster().num_gpus();

    let probe = build()?;
    let GraphProbe {
        has_moe,
        dominant_fc,
    } = probe_graph(&probe);
    let probe_stats = whale_graph::graph_stats(&probe);
    let fw_flops_per_sample = probe_stats.forward_flops / global_batch.max(1) as f64;
    let param_bytes = probe_stats.params as f64 * 4.0;
    let template = if opts.memoize { Some(probe) } else { None };

    // Slowest pairwise link in the cluster, as an effective bandwidth: the
    // denominator of the exploration-order sync heuristic (see
    // [`Structure::key`]). Measured through the same `p2p_time` model the
    // engine prices transfers with, so the ranking tracks the cost model.
    let sync_bw = {
        let probe_bytes: u64 = 64 << 20;
        let mut worst = 0.0_f64;
        for a in session.cluster().gpus() {
            for b in session.cluster().gpus() {
                worst = worst.max(session.cluster().interconnect.p2p_time(a, b, probe_bytes));
            }
        }
        if worst > 0.0 {
            probe_bytes as f64 / worst
        } else {
            f64::INFINITY
        }
    };
    // Ring-allreduce wire time for one replica group's gradients: each of
    // the `depth` stage groups syncs `params/depth`, groups in parallel.
    let sync_heur = |replicas: usize, depth: usize| -> f64 {
        if replicas < 2 {
            return 0.0;
        }
        let r = replicas as f64;
        2.0 * (r - 1.0) / r * param_bytes / (depth.max(1) as f64 * sync_bw)
    };

    let cfg = session.planner_config();
    let (amp, recompute, efficiency) = (cfg.training.amp, cfg.training.recompute, cfg.efficiency);
    let mut cache = EstimateCache::new(session.cluster());
    let mut bound_for = |replicas: usize, depth: usize, num_micro: usize, stage_width: usize| {
        structural_lower_bound_keyed(
            &StructuralBound {
                fw_flops_per_sample,
                global_batch,
                replicas,
                depth,
                num_micro,
                stage_width,
                amp,
                recompute,
                efficiency,
            },
            &mut cache,
        )
    };

    // ---- generate the space -------------------------------------------
    let mut schedules = vec![ScheduleKind::BackwardFirst];
    if opts.gpipe {
        schedules.push(ScheduleKind::GPipe);
    }
    let micro_grid: Vec<usize> = MICRO_GRID
        .iter()
        .copied()
        .filter(|&m| m <= opts.max_micro && m <= global_batch)
        .collect();

    let mut structures: Vec<Structure> = Vec::new();
    // Pure DP (replica degree n, no pipeline, no schedule dimension).
    structures.push(Structure {
        lb: bound_for(n_gpus, 1, 1, 1),
        key: bound_for(n_gpus, 1, 1, 1) + sync_heur(n_gpus, 1),
        leaves: vec![Leaf {
            name: "dp".into(),
            kind: LeafKind::Dp,
            schedule: ScheduleKind::BackwardFirst,
            lb: bound_for(n_gpus, 1, 1, 1),
            degenerate: false,
        }],
    });
    // Pipelines: one structure per replica degree r | n with depth n/r ≥ 2.
    if n_gpus > 1 {
        for r in divisors(n_gpus) {
            let depth = n_gpus / r;
            if depth < 2 || r > global_batch {
                continue;
            }
            let mut leaves = Vec::new();
            for &micro in &micro_grid {
                for &schedule in &schedules {
                    // GPipe differs from backward-first only when a flush
                    // actually reorders work: more than one micro batch.
                    if schedule == ScheduleKind::GPipe && micro < 2 {
                        continue;
                    }
                    let name = if r > 1 {
                        format!(
                            "pipeline+dp(r={r},micro={micro},{})",
                            schedule_label(schedule)
                        )
                    } else {
                        format!("pipeline(micro={micro},{})", schedule_label(schedule))
                    };
                    leaves.push(Leaf {
                        name,
                        kind: LeafKind::Pipeline { replicas: r, micro },
                        schedule,
                        lb: bound_for(r, depth, micro, 1),
                        // A replica group owning `global_batch / r` samples
                        // cannot feed more micro batches than that.
                        degenerate: micro > global_batch / r,
                    });
                }
            }
            if leaves.is_empty() {
                continue;
            }
            // The structure's bound covers only leaves it could ever plan;
            // degenerate leaves are rejected outright, so their (optimistic,
            // large-micro) bounds must not dilute it.
            let lb = leaves
                .iter()
                .filter(|l| !l.degenerate)
                .map(|l| l.lb)
                .fold(f64::INFINITY, f64::min);
            let key = lb + sync_heur(r, depth);
            structures.push(Structure { lb, key, leaves });
        }
    }
    // MoE: one structure per expert-parallel degree n/r ≥ 2.
    if has_moe && n_gpus > 1 {
        for r in divisors(n_gpus) {
            let ep = n_gpus / r;
            if ep < 2 || r > global_batch {
                continue;
            }
            let lb = bound_for(r, 1, 1, ep);
            let key = lb + sync_heur(r, 1);
            let name = if r > 1 {
                format!("moe+dp(r={r},ep={ep})")
            } else {
                format!("moe(ep={ep})")
            };
            structures.push(Structure {
                lb,
                key,
                leaves: vec![Leaf {
                    name,
                    kind: LeafKind::Moe { replicas: r },
                    schedule: ScheduleKind::BackwardFirst,
                    lb,
                    degenerate: false,
                }],
            });
        }
    }
    // Dominant-classifier split.
    if let Some(fc) = dominant_fc {
        if n_gpus > 1 {
            let lb = bound_for(1, 1, 1, n_gpus);
            structures.push(Structure {
                lb,
                key: lb + sync_heur(n_gpus, 1),
                leaves: vec![Leaf {
                    name: format!("dp+split({fc})"),
                    kind: LeafKind::Split { marker: fc },
                    schedule: ScheduleKind::BackwardFirst,
                    lb,
                    degenerate: false,
                }],
            });
        }
    }

    // ---- order best-key-first with index tie-breaks -------------------
    let mut order: Vec<usize> = (0..structures.len()).collect();
    order.sort_by(|&a, &b| {
        structures[a]
            .key
            .total_cmp(&structures[b].key)
            .then(a.cmp(&b))
    });

    // ---- two-level branch-and-bound drive -----------------------------
    let wave = opts.wave.max(1);
    let batch = global_batch as f64;
    let mut stats = SearchStats::default();
    // (throughput, step_time) of the best simulated candidate so far; only
    // updated serially at wave boundaries.
    let mut incumbent: Option<(f64, f64)> = None;

    // A leaf cannot *strictly* beat the incumbent when even its lower
    // bound's throughput is no better.
    let beaten = |lb: f64, incumbent: &Option<(f64, f64)>| match incumbent {
        Some((tp, _)) if !lb.is_nan() && lb > 0.0 => batch / lb <= *tp,
        _ => false,
    };

    // Each structure's probe: the cheapest leaf to *simulate* among those
    // whose bound sits within 5% of the structure's best (first on ties).
    // Simulation cost grows with the micro-batch count (more tasks per
    // timeline), while the bound plateaus once the pipeline bubble is
    // amortized — near the plateau a small-micro leaf buys almost the same
    // incumbent for a fraction of the simulation time. The probe choice is
    // a heuristic: it steers which leaf seeds the incumbent, never what the
    // bound gates may discard, so admissibility is untouched.
    let probe_of: Vec<usize> = structures
        .iter()
        .map(|st| {
            let min_lb = st
                .leaves
                .iter()
                .filter(|l| !l.degenerate)
                .map(|l| l.lb)
                .fold(f64::INFINITY, f64::min);
            let mut best = 0;
            let mut best_cost = f64::INFINITY;
            for (i, l) in st.leaves.iter().enumerate() {
                if l.degenerate || l.lb > min_lb * 1.05 {
                    continue;
                }
                let cost = match &l.kind {
                    LeafKind::Pipeline { micro, .. } => *micro as f64,
                    _ => 1.0,
                };
                if cost < best_cost {
                    best = i;
                    best_cost = cost;
                }
            }
            best
        })
        .collect();

    // Resolved candidates by (structure, leaf) generation index. Two
    // sweeps fill it: sweep 0 probes the single cheapest-bound leaf of
    // every structure — the admissible bounds are communication-blind, so
    // bound-order alone can leave the incumbent weak while an expensive
    // sync-heavy family plans and simulates; after the probes the
    // incumbent already sits at the best structure's plateau, and the
    // bound gates cut the bulk of the space before it is ever planned.
    // Sweep 1 drives the remaining leaves through the same gates. Each
    // leaf is planned and simulated at most once across both sweeps.
    let mut resolved: BTreeMap<(usize, usize), Candidate> = BTreeMap::new();

    // Degenerate leaves resolve up front (a validity check, not a prune —
    // active in exhaustive mode too): they never plan, never simulate, and
    // never occupy a probe or wave slot.
    for (si, st) in structures.iter().enumerate() {
        for (li, leaf) in st.leaves.iter().enumerate() {
            if !leaf.degenerate {
                continue;
            }
            let (num_micro, group_batch) = match &leaf.kind {
                LeafKind::Pipeline { replicas, micro } => (*micro, global_batch / *replicas),
                _ => unreachable!("only pipeline leaves can be degenerate"),
            };
            resolved.insert(
                (si, li),
                Candidate {
                    name: leaf.name.clone(),
                    plan: None,
                    stats: None,
                    rejected: Some(RejectReason::DegenerateMicro {
                        num_micro,
                        group_batch,
                    }),
                },
            );
        }
    }

    for pass in 0..2usize {
        for &si in &order {
            let st = &structures[si];
            let lis: Vec<usize> = if pass == 0 {
                if opts.exhaustive {
                    // Exhaustive mode evaluates everything anyway; probes
                    // would only reorder identical work.
                    continue;
                }
                vec![probe_of[si]]
                    .into_iter()
                    .filter(|i| !resolved.contains_key(&(si, *i)))
                    .collect()
            } else {
                (0..st.leaves.len())
                    .filter(|i| !resolved.contains_key(&(si, *i)))
                    .collect()
            };
            if pass == 1 {
                stats.structures_expanded += 1;
                stats.nodes_expanded += st.leaves.len();
                if !opts.exhaustive && beaten(st.lb, &incumbent) && !lis.is_empty() {
                    // Level-1 prune: every unresolved leaf dies at once. The
                    // structure counts as pruned-whole only when its probe
                    // produced no simulation either.
                    if !matches!(
                        resolved.get(&(si, probe_of[si])),
                        Some(Candidate { stats: Some(_), .. })
                    ) {
                        stats.structures_pruned += 1;
                    }
                    let inc_time = incumbent.map(|(_, t)| t).unwrap_or(f64::INFINITY);
                    for li in lis {
                        stats.nodes_bounded += 1;
                        resolved.insert(
                            (si, li),
                            Candidate {
                                name: st.leaves[li].name.clone(),
                                plan: None,
                                stats: None,
                                rejected: Some(RejectReason::Pruned {
                                    bound: st.leaves[li].lb,
                                    incumbent: inc_time,
                                }),
                            },
                        );
                    }
                    continue;
                }
            }
            if lis.is_empty() {
                continue;
            }

            // Phase 1 (serial): pre-plan bound gate. The generator's
            // structural bound goes first (free); a pipeline leaf it cannot
            // kill gets the partition-seeded bound — the exact cuts and
            // profiles its plan would use, a memo hit after the structure's
            // first plan — which sees heterogeneous stage rates, partition
            // imbalance, and memory traffic, and typically reaches within
            // transfers-and-syncs of the post-plan bound at ~1/10 the cost
            // of planning. A bound-call error falls through to planning,
            // which reports the same failure as a `PlanError` row.
            let mut to_plan: Vec<(usize, Leaf, Session)> = Vec::new();
            for li in lis {
                let leaf = &st.leaves[li];
                let mut lb = leaf.lb;
                if !opts.exhaustive && !beaten(lb, &incumbent) {
                    if let (LeafKind::Pipeline { replicas, micro }, Some(g)) =
                        (&leaf.kind, &template)
                    {
                        let refined = pipeline_leaf_bound(
                            g,
                            session.cluster(),
                            session.planner_config(),
                            *replicas,
                            *micro,
                            leaf.schedule == ScheduleKind::GPipe,
                            global_batch,
                        )
                        .ok()
                        .flatten();
                        if let Some(r) = refined {
                            lb = lb.max(r);
                        }
                    }
                }
                if !opts.exhaustive && beaten(lb, &incumbent) {
                    stats.nodes_bounded += 1;
                    resolved.insert(
                        (si, li),
                        Candidate {
                            name: leaf.name.clone(),
                            plan: None,
                            stats: None,
                            rejected: Some(RejectReason::Pruned {
                                bound: lb,
                                incumbent: incumbent.map(|(_, t)| t).unwrap_or(f64::INFINITY),
                            }),
                        },
                    );
                } else {
                    to_plan.push((li, leaf.clone(), leaf_session(session, leaf)));
                }
            }

            // Phase 2 (parallel): plan every surviving leaf of the sweep at
            // once; the merge is by index, so thread count cannot reorder
            // it.
            let threads = effective_threads(opts.search_threads, to_plan.len());
            type PlanOut = (
                usize,
                Leaf,
                Session,
                std::result::Result<Arc<ExecutionPlan>, String>,
            );
            let planned: Vec<PlanOut> = fan_out(threads, to_plan, |(i, leaf, ls)| {
                let graph = match &template {
                    Some(g) => Ok(g.clone()),
                    None => build(),
                };
                let plan = graph
                    .and_then(|g| build_ir(&leaf.kind, g, global_batch))
                    .and_then(|ir| ls.plan(&ir))
                    .map_err(|e| e.to_string());
                (i, leaf, ls, plan)
            });

            // Phase 3 (serial): the post-plan bound, which both gates the
            // leaf and orders the simulation frontier — the release-time
            // sync term makes it tight enough that a separate closed-form
            // estimate would not rank leaves any better. The memory gate
            // waits until the wave drain: most planned leaves die on the
            // bound there, and a dead leaf's memory model is never priced.
            struct SimLeaf {
                index: usize,
                lb: f64,
                name: String,
                plan: Arc<ExecutionPlan>,
                session: Session,
            }
            let mut frontier: Vec<SimLeaf> = Vec::new();
            for (i, leaf, ls, plan) in planned {
                match plan {
                    Err(e) => {
                        resolved.insert(
                            (si, i),
                            Candidate {
                                name: leaf.name,
                                plan: None,
                                stats: None,
                                rejected: Some(RejectReason::PlanError(e)),
                            },
                        );
                    }
                    Ok(plan) => {
                        stats.nodes_planned += 1;
                        let lb = estimate_step_lower_bound(&plan, &mut cache)
                            .map_err(|e| WhaleError::Plan(e.to_string()))?;
                        frontier.push(SimLeaf {
                            index: i,
                            lb,
                            name: leaf.name,
                            plan,
                            session: ls,
                        });
                    }
                }
            }

            // Phase 4: simulate in bound-sorted waves. The first wave
            // almost always contains the sweep's true optimum, so its
            // result makes the incumbent tight and the bound gate
            // (re-checked between waves, serially) kills the rest of the
            // frontier. Order steers *time* only — pruning still uses the
            // admissible bound, so a bad ordering costs waves, never the
            // optimum.
            frontier.sort_by(|a, b| a.lb.total_cmp(&b.lb).then(a.index.cmp(&b.index)));
            let mut frontier = frontier.into_iter().peekable();
            while frontier.peek().is_some() {
                let mut batch_leaves: Vec<SimLeaf> = Vec::new();
                while batch_leaves.len() < wave {
                    let Some(leaf) = frontier.next() else { break };
                    if !opts.exhaustive && beaten(leaf.lb, &incumbent) {
                        stats.nodes_pruned_planned += 1;
                        resolved.insert(
                            (si, leaf.index),
                            Candidate {
                                name: leaf.name,
                                plan: Some(leaf.plan),
                                stats: None,
                                rejected: Some(RejectReason::Pruned {
                                    bound: leaf.lb,
                                    incumbent: incumbent.map(|(_, t)| t).unwrap_or(f64::INFINITY),
                                }),
                            },
                        );
                    } else if !leaf
                        .plan
                        .memory_feasible(session.cluster())
                        .map_err(|e| WhaleError::Plan(e.to_string()))?
                    {
                        let rejected = Some(memory_reject(&leaf.plan, session.cluster()));
                        resolved.insert(
                            (si, leaf.index),
                            Candidate {
                                name: leaf.name,
                                plan: Some(leaf.plan),
                                stats: None,
                                rejected,
                            },
                        );
                    } else {
                        batch_leaves.push(leaf);
                    }
                }
                let threads = effective_threads(opts.search_threads, batch_leaves.len());
                let evaluated: Vec<(usize, Candidate)> = fan_out(threads, batch_leaves, |l| {
                    (
                        l.index,
                        evaluate_plan(&l.session, &l.name, l.plan, opts.reference_sim),
                    )
                });
                // Serial merge in wave order: the incumbent moves only here.
                for (i, cand) in evaluated {
                    stats.nodes_simulated += 1;
                    if let Some(s) = &cand.stats {
                        let better = match incumbent {
                            Some((tp, _)) => s.throughput > tp,
                            None => true,
                        };
                        if better {
                            incumbent = Some((s.throughput, s.step_time));
                        }
                    }
                    resolved.insert((si, i), cand);
                }
            }
        }
    }
    // ---- assemble the report -----------------------------------------
    // Structures in exploration order, leaves in generation order; the
    // winner is the first candidate reaching the best throughput in report
    // order. The probe sweep cannot reorder rows — it only fills them.
    let mut candidates: Vec<Candidate> = Vec::new();
    let mut winner: Option<usize> = None;
    for &si in &order {
        for li in 0..structures[si].leaves.len() {
            let cand = resolved.remove(&(si, li)).expect("every leaf resolved");
            if let Some(s) = &cand.stats {
                let better = match winner {
                    Some(w) => {
                        s.throughput
                            > candidates[w]
                                .stats
                                .as_ref()
                                .expect("winner simulated")
                                .throughput
                    }
                    None => true,
                };
                if better {
                    winner = Some(candidates.len());
                }
            }
            candidates.push(cand);
        }
    }

    match winner {
        Some(i) => {
            let w = &candidates[i];
            match (&w.plan, &w.stats) {
                (Some(plan), Some(s)) => Ok(AutoReport {
                    chosen: w.name.clone(),
                    plan: plan.clone(),
                    stats: s.clone(),
                    candidates,
                    search: Some(stats),
                }),
                _ => Err(WhaleError::NoFeasibleStrategy),
            }
        }
        None => Err(WhaleError::NoFeasibleStrategy),
    }
}

impl Session {
    /// [`auto_parallel_search`] on this session — the wide, bounded search
    /// (the narrow enumeration stays available as
    /// [`crate::auto_parallel`]).
    pub fn auto_search(
        &self,
        global_batch: usize,
        opts: &SearchOptions,
        build: impl Fn() -> Result<Graph> + Sync,
    ) -> Result<AutoReport> {
        auto_parallel_search(self, global_batch, opts, build)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use whale_graph::models;

    #[test]
    fn search_space_contains_the_enumerations_candidates() {
        // Every strategy the narrow enumeration proposes must appear in the
        // widened space (that containment is what makes "never worse than
        // the old winner" a theorem rather than a hope).
        let s = Session::on_cluster("2x(4xV100)").unwrap();
        let report = auto_parallel_search(&s, 64, &SearchOptions::default(), || {
            Ok(models::bert_base(64, 64).unwrap())
        })
        .unwrap();
        let names: Vec<&str> = report.candidates.iter().map(|c| c.name.as_str()).collect();
        assert!(names.contains(&"dp"));
        for micro in [4, 8, 16] {
            assert!(
                names.contains(&format!("pipeline(micro={micro},1f1b)").as_str()),
                "missing pipeline micro={micro} in {names:?}"
            );
            assert!(names.contains(&format!("pipeline+dp(r=2,micro={micro},1f1b)").as_str()));
        }
        let st = report.search.expect("search stats present");
        assert_eq!(
            st.nodes_expanded,
            report.candidates.len(),
            "one candidate row per expanded leaf"
        );
        assert!(st.nodes_simulated >= 1);
    }

    #[test]
    fn search_beats_or_matches_the_enumeration() {
        let s = Session::on_cluster("4xV100,4xP100").unwrap();
        let build = || Ok(models::bert_base(128, 64).unwrap());
        let narrow = crate::auto::auto_parallel(&s, 128, build).unwrap();
        let wide = auto_parallel_search(&s, 128, &SearchOptions::default(), build).unwrap();
        assert!(
            wide.stats.throughput >= narrow.stats.throughput,
            "wide {} < narrow {}",
            wide.stats.throughput,
            narrow.stats.throughput
        );
    }

    #[test]
    fn moe_graphs_get_expert_parallel_degrees() {
        let s = Session::on_cluster("1x(8xV100)").unwrap();
        let report = auto_parallel_search(&s, 64, &SearchOptions::default(), || {
            Ok(models::m6_moe(models::MoeConfig::tiny(), 64).unwrap())
        })
        .unwrap();
        let names: Vec<&str> = report.candidates.iter().map(|c| c.name.as_str()).collect();
        assert!(
            names.contains(&"moe(ep=8)"),
            "full-cluster split: {names:?}"
        );
        assert!(
            names.contains(&"moe+dp(r=2,ep=4)"),
            "plan-level DP over 4-wide experts: {names:?}"
        );
    }
}
