//! The end-to-end driver: model + annotations + cluster → plan → simulation.
//!
//! [`Session`] is the reproduction's equivalent of Whale's outermost
//! `wh.cluster()` scope plus the runtime: it owns the cluster, the planner
//! configuration, and the simulator configuration, and drives the
//! annotate → plan → transform → execute path of Fig. 5.

use std::sync::Arc;

use whale_graph::TrainingConfig;
use whale_hardware::{Cluster, ClusterDelta};
use whale_ir::WhaleIr;
use whale_planner::{
    plan, CacheStats, CommConfig, DeviceAssignment, ExecutionPlan, PlanService, PlannerConfig,
    ScheduleKind,
};
use whale_sim::{
    simulate_step, simulate_step_reference, simulate_training, LossModel, SimConfig, StepOutcome,
    TrainingRun,
};

use crate::error::{Result, WhaleError};

/// A configured training session over one cluster.
///
/// Repeated [`Session::plan`] calls for the same (model, cluster, config)
/// triple are served from a shared content-addressed [`PlanService`] — a
/// sharded, single-flight plan cache. Clones of a session (e.g. the
/// per-candidate sessions of the auto-parallel search, or per-thread clones
/// of a serving loop) share the same service, so a hit anywhere in the
/// clone family is an `Arc` refcount bump, never a plan copy, and
/// concurrent misses for one key compile once. [`Session::replan`] reacts
/// to a [`ClusterDelta`] by re-running only the invalidated compile passes.
#[derive(Debug, Clone)]
pub struct Session {
    cluster: Cluster,
    planner: PlannerConfig,
    sim: SimConfig,
    cache: Option<Arc<PlanService>>,
}

impl Session {
    /// Start a session on an explicit cluster.
    pub fn new(cluster: Cluster) -> Session {
        Session {
            cluster,
            planner: PlannerConfig::default(),
            sim: SimConfig::default(),
            cache: Some(Arc::new(PlanService::default())),
        }
    }

    /// Start a session from a cluster-spec string
    /// (`"2x(8xV100)+2x(8xP100)"`).
    pub fn on_cluster(spec: &str) -> Result<Session> {
        Ok(Session::new(Cluster::parse(spec)?))
    }

    /// The session's cluster.
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// Toggle §3.5's hardware-aware load balancing (off = paper baselines).
    pub fn hardware_aware(mut self, on: bool) -> Session {
        self.planner.hardware_aware = on;
        self
    }

    /// Set the training options (optimizer, AMP, recomputation).
    pub fn training(mut self, cfg: TrainingConfig) -> Session {
        self.planner.training = cfg;
        self
    }

    /// Set the compute efficiency `α` of the cost model `t = MF/(GF·α)`.
    pub fn efficiency(mut self, alpha: f64) -> Session {
        self.planner.efficiency = alpha;
        self
    }

    /// Select the pipeline schedule (backward-first is Whale's default, §4).
    pub fn schedule(mut self, schedule: ScheduleKind) -> Session {
        self.planner.schedule = schedule;
        self.sim.schedule = schedule;
        self
    }

    /// Set the plan-level DP degree used with `outer_replica` IRs.
    pub fn outer_dp(mut self, degree: usize) -> Session {
        self.planner.outer_dp = degree;
        self
    }

    /// Provide explicit virtual devices, one per TaskGraph
    /// (the paper's `cluster()` slicing).
    pub fn devices(mut self, assignment: DeviceAssignment) -> Session {
        self.planner.devices = assignment;
        self
    }

    /// Set the fraction of backward compute available to hide gradient sync.
    /// Only consulted by the legacy sync model — with bucketed fusion on
    /// (see [`Session::comm`]) overlap emerges from per-bucket events.
    pub fn sync_overlap(mut self, fraction: f64) -> Session {
        self.sim.sync_overlap = fraction;
        self
    }

    /// Configure the communication optimizer: gradient fusion buckets and
    /// per-group collective algorithm selection. Default = disabled
    /// (legacy monolithic sync); `CommConfig::fused()` is the recommended
    /// production setting.
    pub fn comm(mut self, cfg: CommConfig) -> Session {
        self.planner.comm = cfg;
        self
    }

    /// Set the gradient wire dtype (fp32/bf16/fp8) on top of whatever comm
    /// config is active: sub-fp32 dtypes shrink every AllReduce payload,
    /// re-run per-bucket algorithm selection at the smaller size, charge
    /// quantize/dequantize compute, and account fp32 master weights +
    /// loss-scaling state in the memory ledger.
    pub fn grad_dtype(mut self, dtype: whale_planner::GradDtype) -> Session {
        self.planner.comm.grad_dtype = dtype;
        self
    }

    /// Set the gradient compression factor in `(0, 1]` (1.0 = off) on top
    /// of the dtype scaling; values below 1 also charge an error-feedback
    /// residual in the memory ledger.
    pub fn compress_ratio(mut self, ratio: f64) -> Session {
        self.planner.comm.compress_ratio = ratio;
        self
    }

    /// Toggle the planner's per-stage cost memoization (on by default;
    /// results are bit-identical either way — `off` exists so benchmarks
    /// can measure the pre-fast-path planner).
    pub fn memoize(mut self, on: bool) -> Session {
        self.planner.memoize = on;
        self
    }

    /// Toggle the content-addressed plan cache (on by default). `off`
    /// exists for benchmarks that must measure cold planning on every call.
    pub fn plan_cache(mut self, on: bool) -> Session {
        self.cache = if on {
            Some(Arc::new(PlanService::default()))
        } else {
            None
        };
        self
    }

    /// The shared plan service behind this session's clone family (`None`
    /// when the cache is disabled). Exposed so serving front ends can issue
    /// keyed requests or inspect shard occupancy directly.
    pub fn plan_service(&self) -> Option<&Arc<PlanService>> {
        self.cache.as_ref()
    }

    /// The active planner configuration.
    pub fn planner_config(&self) -> &PlannerConfig {
        &self.planner
    }

    /// The active simulator configuration (for the resilient runtime).
    pub(crate) fn sim_config(&self) -> &SimConfig {
        &self.sim
    }

    /// Mutate the cluster directly, bypassing the replan path — the
    /// restart-from-scratch baseline needs a runtime that *doesn't* replan.
    pub(crate) fn cluster_mut(&mut self) -> &mut Cluster {
        &mut self.cluster
    }

    /// Plan-cache counters (`None` when the cache is disabled). Clones of a
    /// session share one cache, so auto-parallel searches report here too.
    pub fn cache_stats(&self) -> Option<CacheStats> {
        self.cache.as_ref().map(|c| c.stats())
    }

    /// Zero the plan-cache counters, keeping cached entries.
    pub fn reset_cache_stats(&self) {
        if let Some(c) = &self.cache {
            c.reset_stats();
        }
    }

    /// Produce the distributed execution plan for `ir`.
    ///
    /// With the cache enabled (default), a repeated request for the same
    /// (model, cluster, config) content returns a shared handle to the
    /// stored plan — an `Arc` refcount bump, no compile pass and no copy.
    pub fn plan(&self, ir: &WhaleIr) -> Result<Arc<ExecutionPlan>> {
        match &self.cache {
            Some(service) => Ok(service.plan(ir, &self.cluster, &self.planner)?),
            None => Ok(Arc::new(plan(ir, &self.cluster, &self.planner)?)),
        }
    }

    /// Apply a cluster change and re-plan, re-running only the compile
    /// passes the delta invalidates (see `whale_planner::invalidation_start`
    /// for the matrix). The session's cluster is updated to the post-delta
    /// topology.
    pub fn replan(&mut self, ir: &WhaleIr, delta: ClusterDelta) -> Result<Arc<ExecutionPlan>> {
        match &self.cache {
            Some(service) => {
                let (p, after) = service.replan(ir, &self.cluster, &self.planner, delta)?;
                self.cluster = after;
                Ok(p)
            }
            None => {
                self.cluster.apply_delta(delta)?;
                Ok(Arc::new(plan(ir, &self.cluster, &self.planner)?))
            }
        }
    }

    /// Plan and simulate one training step.
    pub fn step(&self, ir: &WhaleIr) -> Result<StepOutcome> {
        let p = self.plan(ir)?;
        Ok(simulate_step(&p, &self.cluster, &self.sim)?)
    }

    /// Simulate one step of an existing plan.
    pub fn step_plan(&self, p: &ExecutionPlan) -> Result<StepOutcome> {
        Ok(simulate_step(p, &self.cluster, &self.sim)?)
    }

    /// [`Session::step_plan`] through the polling reference scheduler — the
    /// golden baseline the equivalence tests and `fastpath_bench` compare
    /// the event-driven engine against.
    #[doc(hidden)]
    pub fn step_plan_reference(&self, p: &ExecutionPlan) -> Result<StepOutcome> {
        Ok(simulate_step_reference(p, &self.cluster, &self.sim)?)
    }

    /// Plan and simulate a training run to `total_samples`.
    pub fn train(
        &self,
        ir: &WhaleIr,
        loss: &LossModel,
        total_samples: f64,
        checkpoints: usize,
        seed: u64,
    ) -> Result<TrainingRun> {
        let p = self.plan(ir)?;
        Ok(simulate_training(
            &p,
            &self.cluster,
            &self.sim,
            loss,
            total_samples,
            checkpoints,
            seed,
        )?)
    }

    /// Fail unless the plan fits in device memory (useful in examples).
    pub fn check_memory(&self, p: &ExecutionPlan) -> Result<()> {
        if !p.memory_feasible(&self.cluster)? {
            return Err(WhaleError::OutOfMemory(
                p.memory_per_gpu()
                    .into_iter()
                    .filter(|&(gpu, bytes)| {
                        self.cluster
                            .gpu(gpu)
                            .map(|g| bytes > g.memory_bytes())
                            .unwrap_or(true)
                    })
                    .map(|(gpu, _)| gpu)
                    .collect(),
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use whale_graph::models;
    use whale_ir::Annotator;

    #[test]
    fn session_end_to_end_dp() {
        let g = models::resnet50(64).unwrap();
        let ir = Annotator::new(g, 64)
            .replicate_all()
            .unwrap()
            .finish()
            .unwrap();
        let s = Session::on_cluster("8xV100+8xP100").unwrap();
        let out = s.step(&ir).unwrap();
        assert!(out.stats.throughput > 0.0);
        assert_eq!(out.stats.per_gpu.len(), 16);
    }

    #[test]
    fn builder_options_apply() {
        let s = Session::on_cluster("4xV100")
            .unwrap()
            .hardware_aware(false)
            .efficiency(0.6)
            .sync_overlap(0.5)
            .outer_dp(2);
        assert!(!s.planner_config().hardware_aware);
        assert_eq!(s.planner_config().efficiency, 0.6);
        assert_eq!(s.planner_config().outer_dp, 2);
    }

    #[test]
    fn repeated_plans_hit_the_cache() {
        let g = models::resnet50(64).unwrap();
        let ir = Annotator::new(g, 64)
            .replicate_all()
            .unwrap()
            .finish()
            .unwrap();
        let s = Session::on_cluster("4xV100").unwrap();
        let a = s.plan(&ir).unwrap();
        let b = s.plan(&ir).unwrap();
        assert_eq!(a, b);
        let stats = s.cache_stats().unwrap();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        // Clones share the cache.
        let clone = s.clone();
        clone.plan(&ir).unwrap();
        assert_eq!(s.cache_stats().unwrap().hits, 2);
        // Disabling the cache reports no stats.
        assert!(s.plan_cache(false).cache_stats().is_none());
    }

    #[test]
    fn replan_rebalances_on_degradation() {
        use whale_hardware::ClusterDelta;
        let g = models::resnet50(64).unwrap();
        let ir = Annotator::new(g, 64)
            .replicate_all()
            .unwrap()
            .finish()
            .unwrap();
        let mut s = Session::on_cluster("4xV100").unwrap();
        let cold = s.plan(&ir).unwrap();
        let replanned = s
            .replan(&ir, ClusterDelta::GpuDegraded { id: 0, scale: 0.4 })
            .unwrap();
        // Session cluster tracks the delta; the slow GPU sheds samples.
        assert_eq!(s.cluster().gpu(0).unwrap().throughput_scale, 0.4);
        assert!(
            replanned.stages[0].devices[0].samples_per_step
                < cold.stages[0].devices[0].samples_per_step
        );
        let stats = s.cache_stats().unwrap();
        assert_eq!(stats.partial_hits, 1);
    }

    #[test]
    fn memory_check_reports_oom_gpus() {
        let g = models::bert_large(1024, 128).unwrap();
        let ir = Annotator::new(g, 1024)
            .replicate_all()
            .unwrap()
            .finish()
            .unwrap();
        let s = Session::on_cluster("2xP100").unwrap().hardware_aware(false);
        let p = s.plan(&ir).unwrap();
        match s.check_memory(&p) {
            Err(WhaleError::OutOfMemory(gpus)) => assert!(!gpus.is_empty()),
            other => panic!("expected OOM, got {other:?}"),
        }
    }
}
