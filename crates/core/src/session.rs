//! The end-to-end driver: model + annotations + cluster → plan → simulation.
//!
//! [`Session`] is the reproduction's equivalent of Whale's outermost
//! `wh.cluster()` scope plus the runtime: it owns the cluster, the planner
//! configuration, and the simulator configuration, and drives the
//! annotate → plan → transform → execute path of Fig. 5.

use whale_graph::TrainingConfig;
use whale_hardware::Cluster;
use whale_ir::WhaleIr;
use whale_planner::{plan, DeviceAssignment, ExecutionPlan, PlannerConfig, ScheduleKind};
use whale_sim::{
    simulate_step, simulate_step_reference, simulate_training, LossModel, SimConfig, StepOutcome,
    TrainingRun,
};

use crate::error::{Result, WhaleError};

/// A configured training session over one cluster.
#[derive(Debug, Clone)]
pub struct Session {
    cluster: Cluster,
    planner: PlannerConfig,
    sim: SimConfig,
}

impl Session {
    /// Start a session on an explicit cluster.
    pub fn new(cluster: Cluster) -> Session {
        Session {
            cluster,
            planner: PlannerConfig::default(),
            sim: SimConfig::default(),
        }
    }

    /// Start a session from a cluster-spec string
    /// (`"2x(8xV100)+2x(8xP100)"`).
    pub fn on_cluster(spec: &str) -> Result<Session> {
        Ok(Session::new(Cluster::parse(spec)?))
    }

    /// The session's cluster.
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// Toggle §3.5's hardware-aware load balancing (off = paper baselines).
    pub fn hardware_aware(mut self, on: bool) -> Session {
        self.planner.hardware_aware = on;
        self
    }

    /// Set the training options (optimizer, AMP, recomputation).
    pub fn training(mut self, cfg: TrainingConfig) -> Session {
        self.planner.training = cfg;
        self
    }

    /// Set the compute efficiency `α` of the cost model `t = MF/(GF·α)`.
    pub fn efficiency(mut self, alpha: f64) -> Session {
        self.planner.efficiency = alpha;
        self
    }

    /// Select the pipeline schedule (backward-first is Whale's default, §4).
    pub fn schedule(mut self, schedule: ScheduleKind) -> Session {
        self.planner.schedule = schedule;
        self.sim.schedule = schedule;
        self
    }

    /// Set the plan-level DP degree used with `outer_replica` IRs.
    pub fn outer_dp(mut self, degree: usize) -> Session {
        self.planner.outer_dp = degree;
        self
    }

    /// Provide explicit virtual devices, one per TaskGraph
    /// (the paper's `cluster()` slicing).
    pub fn devices(mut self, assignment: DeviceAssignment) -> Session {
        self.planner.devices = assignment;
        self
    }

    /// Set the fraction of backward compute available to hide gradient sync.
    pub fn sync_overlap(mut self, fraction: f64) -> Session {
        self.sim.sync_overlap = fraction;
        self
    }

    /// Toggle the planner's per-stage cost memoization (on by default;
    /// results are bit-identical either way — `off` exists so benchmarks
    /// can measure the pre-fast-path planner).
    pub fn memoize(mut self, on: bool) -> Session {
        self.planner.memoize = on;
        self
    }

    /// The active planner configuration.
    pub fn planner_config(&self) -> &PlannerConfig {
        &self.planner
    }

    /// Produce the distributed execution plan for `ir`.
    pub fn plan(&self, ir: &WhaleIr) -> Result<ExecutionPlan> {
        Ok(plan(ir, &self.cluster, &self.planner)?)
    }

    /// Plan and simulate one training step.
    pub fn step(&self, ir: &WhaleIr) -> Result<StepOutcome> {
        let p = self.plan(ir)?;
        Ok(simulate_step(&p, &self.cluster, &self.sim)?)
    }

    /// Simulate one step of an existing plan.
    pub fn step_plan(&self, p: &ExecutionPlan) -> Result<StepOutcome> {
        Ok(simulate_step(p, &self.cluster, &self.sim)?)
    }

    /// [`Session::step_plan`] through the polling reference scheduler — the
    /// golden baseline the equivalence tests and `fastpath_bench` compare
    /// the event-driven engine against.
    #[doc(hidden)]
    pub fn step_plan_reference(&self, p: &ExecutionPlan) -> Result<StepOutcome> {
        Ok(simulate_step_reference(p, &self.cluster, &self.sim)?)
    }

    /// Plan and simulate a training run to `total_samples`.
    pub fn train(
        &self,
        ir: &WhaleIr,
        loss: &LossModel,
        total_samples: f64,
        checkpoints: usize,
        seed: u64,
    ) -> Result<TrainingRun> {
        let p = self.plan(ir)?;
        Ok(simulate_training(
            &p,
            &self.cluster,
            &self.sim,
            loss,
            total_samples,
            checkpoints,
            seed,
        )?)
    }

    /// Fail unless the plan fits in device memory (useful in examples).
    pub fn check_memory(&self, p: &ExecutionPlan) -> Result<()> {
        if !p.memory_feasible(&self.cluster)? {
            return Err(WhaleError::OutOfMemory(
                p.memory_per_gpu()
                    .into_iter()
                    .filter(|&(gpu, bytes)| {
                        self.cluster
                            .gpu(gpu)
                            .map(|g| bytes > g.memory_bytes())
                            .unwrap_or(true)
                    })
                    .map(|(gpu, _)| gpu)
                    .collect(),
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use whale_graph::models;
    use whale_ir::Annotator;

    #[test]
    fn session_end_to_end_dp() {
        let g = models::resnet50(64).unwrap();
        let ir = Annotator::new(g, 64)
            .replicate_all()
            .unwrap()
            .finish()
            .unwrap();
        let s = Session::on_cluster("8xV100+8xP100").unwrap();
        let out = s.step(&ir).unwrap();
        assert!(out.stats.throughput > 0.0);
        assert_eq!(out.stats.per_gpu.len(), 16);
    }

    #[test]
    fn builder_options_apply() {
        let s = Session::on_cluster("4xV100")
            .unwrap()
            .hardware_aware(false)
            .efficiency(0.6)
            .sync_overlap(0.5)
            .outer_dp(2);
        assert!(!s.planner_config().hardware_aware);
        assert_eq!(s.planner_config().efficiency, 0.6);
        assert_eq!(s.planner_config().outer_dp, 2);
    }

    #[test]
    fn memory_check_reports_oom_gpus() {
        let g = models::bert_large(1024, 128).unwrap();
        let ir = Annotator::new(g, 1024)
            .replicate_all()
            .unwrap()
            .finish()
            .unwrap();
        let s = Session::on_cluster("2xP100").unwrap().hardware_aware(false);
        let p = s.plan(&ir).unwrap();
        match s.check_memory(&p) {
            Err(WhaleError::OutOfMemory(gpus)) => assert!(!gpus.is_empty()),
            other => panic!("expected OOM, got {other:?}"),
        }
    }
}
