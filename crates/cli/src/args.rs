//! Minimal dependency-free argument parsing for the CLI.

use std::collections::BTreeMap;

/// Parsed command line: a subcommand plus `--key value` / `--flag` options.
#[derive(Debug, Clone, Default)]
pub struct Args {
    /// First positional argument.
    pub command: Option<String>,
    options: BTreeMap<String, String>,
    flags: Vec<String>,
}

impl Args {
    /// Parse from an iterator of arguments (excluding argv\[0\]).
    pub fn parse(argv: impl IntoIterator<Item = String>) -> Result<Args, String> {
        let mut out = Args::default();
        let mut it = argv.into_iter().peekable();
        while let Some(a) = it.next() {
            if let Some(key) = a.strip_prefix("--") {
                // `--key value` unless the next token is another option or
                // missing → boolean flag.
                match it.peek() {
                    Some(v) if !v.starts_with("--") => {
                        let v = it.next().expect("peeked");
                        out.options.insert(key.to_string(), v);
                    }
                    _ => out.flags.push(key.to_string()),
                }
            } else if out.command.is_none() {
                out.command = Some(a);
            } else {
                return Err(format!("unexpected positional argument '{a}'"));
            }
        }
        Ok(out)
    }

    /// String option.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(|s| s.as_str())
    }

    /// String option with a default.
    pub fn get_or<'a>(&'a self, key: &str, default: &'a str) -> &'a str {
        self.get(key).unwrap_or(default)
    }

    /// Parsed numeric option with a default.
    pub fn get_num<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{key} expects a number, got '{v}'")),
        }
    }

    /// Boolean flag presence.
    pub fn flag(&self, key: &str) -> bool {
        self.flags.iter().any(|f| f == key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(String::from)).unwrap()
    }

    #[test]
    fn commands_options_flags() {
        let a = parse("simulate --cluster 8xV100 --batch 64 --amp --micro 8");
        assert_eq!(a.command.as_deref(), Some("simulate"));
        assert_eq!(a.get("cluster"), Some("8xV100"));
        assert_eq!(a.get_num("batch", 0usize).unwrap(), 64);
        assert_eq!(a.get_num("micro", 1usize).unwrap(), 8);
        assert!(a.flag("amp"));
        assert!(!a.flag("recompute"));
    }

    #[test]
    fn defaults_apply() {
        let a = parse("plan");
        assert_eq!(a.get_or("model", "resnet50"), "resnet50");
        assert_eq!(a.get_num("batch", 32usize).unwrap(), 32);
    }

    #[test]
    fn bad_number_reports_key() {
        let a = parse("plan --batch many");
        assert!(a.get_num("batch", 0usize).unwrap_err().contains("--batch"));
    }

    #[test]
    fn extra_positional_rejected() {
        assert!(Args::parse(["a".into(), "b".into()]).is_err());
    }
}
