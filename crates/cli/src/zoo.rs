//! Model registry mapping CLI names to zoo builders.

use whale::models;
use whale_graph::Graph;

/// Known models: `(name, description)`.
pub const MODELS: &[(&str, &str)] = &[
    ("resnet50", "ResNet-50 image classifier (~25M params)"),
    (
        "imagenet100k",
        "ResNet-50 + 100,000-class FC (Fig. 4 motivation)",
    ),
    ("bert-base", "BERT-Base encoder (~110M params)"),
    ("bert-large", "BERT-Large encoder (~340M params)"),
    ("gnmt", "GNMT 8+8-layer LSTM seq2seq (~230M params)"),
    ("t5-large", "T5-Large encoder-decoder (~740M params)"),
    ("vit-large", "ViT-Large/16 (~300M params)"),
    ("gpt2-xl", "GPT-2 XL decoder-only LM (~1.5B params)"),
    ("m6-10b", "M6-10B multimodal encoder-decoder (§5.1)"),
    ("m6-tiny", "shrunken M6 for fast experiments"),
    ("m6-moe-100b", "M6-MoE-100B sparse-expert model (Table 1)"),
    ("m6-moe-1t", "M6-MoE-1T sparse-expert model (Table 1)"),
    (
        "m6-moe-1t-deep",
        "depth-dominated ~1T MoE (1024 thin layers; compile stress case)",
    ),
    ("moe-tiny", "shrunken MoE for fast experiments"),
];

/// Build a model by CLI name at `batch` samples with `seq` tokens (ignored
/// by vision models).
pub fn build(name: &str, batch: usize, seq: usize) -> Result<Graph, String> {
    let g = match name {
        "resnet50" => models::resnet50(batch),
        "imagenet100k" => models::imagenet_100k(batch),
        "bert-base" => models::bert_base(batch, seq),
        "bert-large" => models::bert_large(batch, seq),
        "gnmt" => models::gnmt(batch, seq.min(200)),
        "t5-large" => models::t5_large(batch, seq, seq),
        "vit-large" => models::vit_large(batch),
        "gpt2-xl" => models::gpt2_xl(batch, seq),
        "m6-10b" => models::m6_10b(batch),
        "m6-tiny" => models::m6(models::M6Config::tiny(), batch),
        "m6-moe-100b" => models::m6_moe_100b(batch),
        "m6-moe-1t" => models::m6_moe_1t(batch),
        "m6-moe-1t-deep" => models::m6_moe_1t_deep(batch),
        "moe-tiny" => models::m6_moe(models::MoeConfig::tiny(), batch),
        other => {
            return Err(format!(
                "unknown model '{other}'; run `whale-cli models` for the list"
            ))
        }
    };
    g.map_err(|e| format!("building {name}: {e}"))
}

/// Whether the model is a mixture-of-experts (selects the MoE strategy).
pub fn is_moe(name: &str) -> bool {
    name.contains("moe")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_listed_model_builds() {
        for (name, _) in MODELS {
            // Tiny batch/seq keeps this fast even for the 1T model.
            let g = build(name, 1, 32).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(g.len() > 1, "{name} produced an empty graph");
        }
    }

    #[test]
    fn unknown_model_is_a_clear_error() {
        let err = build("alexnet", 1, 32).unwrap_err();
        assert!(err.contains("alexnet"));
    }

    #[test]
    fn moe_detection() {
        assert!(is_moe("m6-moe-100b"));
        assert!(!is_moe("m6-10b"));
    }
}
