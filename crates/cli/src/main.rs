//! `whale-cli` — plan and simulate giant-model training from the shell.
//!
//! ```console
//! $ whale-cli simulate --cluster "8xV100+8xP100" --model bert-large \
//!       --batch 256 --strategy dp
//! $ whale-cli plan --cluster "1x(8xV100)" --model m6-10b --strategy pipeline \
//!       --micro 35 --recompute
//! $ whale-cli auto --cluster "2x(8xV100)" --model gpt2-xl --batch 64
//! $ whale-cli models
//! $ whale-cli gpus
//! ```

mod args;
mod zoo;

use args::Args;
use whale::{
    auto_parallel, strategies, ClusterDelta, CommConfig, GradDtype, Optimizer, RecoveryPolicy,
    ScheduleKind, Session, SimConfig, TrainingConfig, WhaleIr, ZeroStage,
};
use whale_hardware::GpuModel;
use whale_planner::PlanKey;
use whale_sim::{ascii_timeline, check_replan, FaultModel, FaultTrace, LossModel};

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match run(argv) {
        Ok(()) => {}
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("run `whale-cli help` for usage");
            std::process::exit(1);
        }
    }
}

fn run(argv: Vec<String>) -> Result<(), String> {
    let args = Args::parse(argv)?;
    match args.command.as_deref() {
        Some("models") => cmd_models(),
        Some("gpus") => cmd_gpus(),
        Some("plan") => cmd_plan(&args, false),
        Some("simulate") => cmd_plan(&args, true),
        Some("compile") => cmd_compile(&args),
        Some("faults") => cmd_faults(&args),
        Some("fleet") => cmd_fleet(&args),
        Some("auto") => cmd_auto(&args),
        Some("dot") => cmd_dot(&args),
        Some("inspect") => cmd_inspect(&args),
        Some("help") | None => {
            print_help();
            Ok(())
        }
        Some(other) => Err(format!("unknown command '{other}'")),
    }
}

fn print_help() {
    println!(
        "whale-cli — plan and simulate giant-model training (Whale reproduction)

USAGE:
  whale-cli <command> [options]

COMMANDS:
  models     list the model zoo
  gpus       list the GPU catalog
  plan       build and print a distributed execution plan
  simulate   plan, then simulate one training step (adds a timeline)
  compile    run the staged compile pipeline, show cache keys and counters
  faults     train under injected faults, printing the recovery timeline
  fleet      run a multi-tenant fleet over a shared pool under churn
  auto       explore strategies automatically and pick the fastest
  dot        emit the annotated IR as Graphviz DOT (Fig. 6 style)
  inspect    print a model's op/parameter/FLOP statistics

COMMON OPTIONS:
  --cluster SPEC     cluster spec, e.g. \"2x(8xV100)+2x(8xP100)\"  [1x(8xV100)]
  --model NAME       zoo model (see `models`)                    [resnet50]
  --batch N          global batch size                           [64]
  --seq N            sequence length for text models             [128]
  --strategy S       dp | pipeline | pipeline-dp | moe | split-classifier [dp]
  --micro N          micro batches for pipelines                 [8]
  --optimizer O      sgd | momentum | adam | adafactor           [adam]
  --zero N           ZeRO stage 0-3                              [0]
  --baseline         disable hardware-aware load balancing
  --gpipe            GPipe flush schedule instead of 1F1B
  --fusion-mb N      fuse gradients into ~N MB buckets with per-bucket
                     AllReduce algorithm selection (0 = monolithic)   [0]
  --grad-dtype D     gradient wire dtype: fp32 | bf16 | fp8          [fp32]
                     (sub-fp32 shrinks AllReduce payloads, re-selects
                     per-bucket algorithms, and accounts fp32 master
                     weights + loss scaling in the memory ledger)
  --compress-ratio F compress gradients to fraction F in (0,1]        [1.0]
  --amp --recompute --offload
  --json             (simulate) emit step stats as JSON

COMPILE OPTIONS:
  --repeat N         plan N times through the cache (default 2)
  --degrade ID:S     then degrade GPU ID to throughput scale S and replan,
                     re-running only the invalidated passes; exits non-zero
                     if the replanned plan fails the consistency check
  --cache-stats      print plan-cache hit/miss/partial-hit counters

FAULTS OPTIONS:
  --samples N          committed samples to train to                 [1e6]
  --mtbf N             mean samples between faults                   [2e5]
  --mttr N             mean samples until a transient fault heals    [5e4]
  --seed N             fault-trace seed (same seed = same timeline)  [0]
  --checkpoint-every N committed samples between checkpoints         [5e4]
  --min-capacity F     abort below this fraction of starting FLOPS   [0.25]
  --json               emit RecoveryStats as JSON instead of text

AUTO OPTIONS:
  --search           branch-and-bound search over the nested hybrid space
                     (per-stage replicas × pipeline depth × micro batches ×
                     schedule, + expert-parallel degree on MoE graphs)
                     instead of the narrow fixed enumeration
  --threads N        search worker threads (0 = all cores)            [0]
  --wave N           leaves evaluated per deterministic wave          [8]
  --max-micro N      largest micro-batch count generated              [128]
  --no-gpipe         drop the GPipe schedule dimension (1F1B only)
  --exhaustive       disable pruning: plan and simulate every leaf

FLEET OPTIONS:
  --pool SPEC          shared GPU pool spec             [2x(4xV100)+2x(4xP100)]
  --horizon N          wall-clock seconds to simulate                [20000]
  --arrival N          mean seconds between job arrivals             [600]
  --mtbf N             mean seconds between pool faults              [1500]
  --mttr N             mean seconds until a transient fault heals    [600]
  --seed N             workload seed (fault seed is seed+1)          [0]
  --queue N            admission queue bound                         [16]
  --checkpoint-every N committed samples between tenant checkpoints  [5e4]
  --baseline           kill-and-requeue fleet instead of elastic resizing
  --json               emit FleetStats as JSON instead of text
"
    );
}

fn cmd_models() -> Result<(), String> {
    println!("{:<14} description", "name");
    for (name, desc) in zoo::MODELS {
        println!("{name:<14} {desc}");
    }
    Ok(())
}

fn cmd_gpus() -> Result<(), String> {
    println!(
        "{:<11} {:>12} {:>9} {:>10} {:>7} {:>6}",
        "model", "fp32 TFLOPS", "mem GiB", "membw GB/s", "nvlink", "amp x"
    );
    for m in GpuModel::ALL {
        println!(
            "{:<11} {:>12.1} {:>9} {:>10.0} {:>7} {:>6.1}",
            m.to_string(),
            m.flops() / 1e12,
            m.memory_bytes() >> 30,
            m.memory_bandwidth() / 1e9,
            if m.has_nvlink() { "yes" } else { "no" },
            m.amp_speedup()
        );
    }
    Ok(())
}

fn session_from(args: &Args) -> Result<Session, String> {
    let cluster = args.get_or("cluster", "1x(8xV100)");
    let zero = match args.get_num("zero", 0u8)? {
        0 => ZeroStage::None,
        1 => ZeroStage::OptimizerState,
        2 => ZeroStage::Gradients,
        3 => ZeroStage::Parameters,
        n => return Err(format!("--zero must be 0-3, got {n}")),
    };
    let optimizer = match args.get_or("optimizer", "adam") {
        "sgd" => Optimizer::Sgd,
        "momentum" => Optimizer::SgdMomentum,
        "adam" => Optimizer::Adam,
        "adafactor" => Optimizer::Adafactor,
        o => return Err(format!("unknown optimizer '{o}'")),
    };
    let training = TrainingConfig {
        optimizer,
        amp: args.flag("amp"),
        recompute: args.flag("recompute"),
        zero,
        offload: args.flag("offload"),
        dp_shards: 1,
    };
    let schedule = if args.flag("gpipe") {
        ScheduleKind::GPipe
    } else {
        ScheduleKind::BackwardFirst
    };
    let fusion_mb = args.get_num("fusion-mb", 0u64)?;
    let grad_dtype = match args.get("grad-dtype") {
        None => GradDtype::Fp32,
        Some(s) => GradDtype::parse(s)
            .ok_or_else(|| format!("--grad-dtype must be fp32|bf16|fp8, got '{s}'"))?,
    };
    let compress_ratio = args.get_num("compress-ratio", 1.0f64)?;
    if !(compress_ratio > 0.0 && compress_ratio <= 1.0) {
        return Err(format!(
            "--compress-ratio must be in (0, 1], got {compress_ratio}"
        ));
    }
    let comm = CommConfig {
        fusion_bytes: fusion_mb << 20,
        auto_algorithm: fusion_mb > 0,
        grad_dtype,
        compress_ratio,
    };
    Ok(Session::on_cluster(cluster)
        .map_err(|e| e.to_string())?
        .training(training)
        .schedule(schedule)
        .comm(comm)
        .hardware_aware(!args.flag("baseline")))
}

fn ir_from(args: &Args) -> Result<WhaleIr, String> {
    let model = args.get_or("model", "resnet50");
    let batch = args.get_num("batch", 64usize)?;
    let seq = args.get_num("seq", 128usize)?;
    let micro = args.get_num("micro", 8usize)?;
    let graph = zoo::build(model, batch, seq)?;
    let default_strategy = if zoo::is_moe(model) { "moe" } else { "dp" };
    let strategy = args.get_or("strategy", default_strategy);
    let ir = match strategy {
        "dp" => strategies::data_parallel(graph, batch),
        "pipeline" => strategies::pipeline_only(graph, batch, micro),
        "pipeline-dp" => strategies::pipeline_with_dp(graph, batch, micro),
        "moe" => strategies::moe_hybrid(graph, batch),
        "split-classifier" => strategies::feature_dp_classifier_split(graph, batch, "fc_big"),
        s => return Err(format!("unknown strategy '{s}'")),
    };
    ir.map_err(|e| e.to_string())
}

fn cmd_plan(args: &Args, simulate: bool) -> Result<(), String> {
    let session = session_from(args)?;
    let ir = ir_from(args)?;
    let plan = session.plan(&ir).map_err(|e| e.to_string())?;

    // Full stage detail only for small plans; big ones get the summary line
    // per stage from the library renderer trimmed to stage headers.
    let rendered = whale_planner::render_plan(&plan, session.cluster());
    if plan.all_gpus().len() <= 16 {
        print!("{rendered}");
    } else {
        for line in rendered
            .lines()
            .filter(|l| !l.trim_start().starts_with("gpu"))
        {
            println!("{line}");
        }
    }
    let mem_ok = plan
        .memory_feasible(session.cluster())
        .map_err(|e| e.to_string())?;
    println!(
        "  memory: {}",
        if mem_ok { "fits" } else { "OUT OF MEMORY" }
    );

    if simulate {
        let out = session.step_plan(&plan).map_err(|e| e.to_string())?;
        let s = &out.stats;
        if args.flag("json") {
            println!("{}", s.to_json().to_string_pretty());
            return Ok(());
        }
        println!("\nsimulated step:");
        println!("  step time    {:.4} s", s.step_time);
        println!("  throughput   {:.1} samples/s", s.throughput);
        println!(
            "  sync         {:.4} s total, {:.4} s exposed",
            s.sync_time_total, s.sync_time_exposed
        );
        println!("  bubble       {:.1} %", s.bubble_ratio() * 100.0);
        for (model, util) in s.utilization_by_model() {
            println!("  utilization  {model}: {util:.2}");
        }
        if plan.stages.len() > 1 && plan.num_micro_batches <= 16 {
            println!("\ntimeline (F = forward, B = backward):");
            print!("{}", ascii_timeline(&out, 100));
        }
    }
    Ok(())
}

fn cmd_compile(args: &Args) -> Result<(), String> {
    let mut session = session_from(args)?;
    let ir = ir_from(args)?;
    let repeat = args.get_num("repeat", 2usize)?.max(1);

    let key = PlanKey::new(&ir, session.cluster(), session.planner_config());
    println!("cache key (ir/cluster/config): {key}");

    let mut plan = session.plan(&ir).map_err(|e| e.to_string())?;
    for _ in 1..repeat {
        plan = session.plan(&ir).map_err(|e| e.to_string())?;
    }
    println!(
        "plan: {} stage(s) x {} micro batch(es) on {} GPU(s), global batch {}",
        plan.stages.len(),
        plan.num_micro_batches,
        plan.all_gpus().len(),
        plan.global_batch
    );

    if let Some(spec) = args.get("degrade") {
        let (id, scale) = spec
            .split_once(':')
            .and_then(|(id, s)| Some((id.parse::<usize>().ok()?, s.parse::<f64>().ok()?)))
            .ok_or_else(|| format!("--degrade expects GPU:SCALE (e.g. 0:0.5), got '{spec}'"))?;
        let old = plan.clone();
        let new = session
            .replan(&ir, ClusterDelta::GpuDegraded { id, scale })
            .map_err(|e| e.to_string())?;
        let report = check_replan(&old, &new, session.cluster(), &SimConfig::default());
        println!("\nreplan after degrading gpu {id} to {scale:.2}x:");
        let moved = old
            .stages
            .iter()
            .zip(new.stages.iter())
            .flat_map(|(o, n)| o.devices.iter().zip(&n.devices))
            .filter(|(o, n)| o.gpu == n.gpu && o.samples_per_step != n.samples_per_step)
            .count();
        println!("  rebalanced samples on {moved} GPU(s)");
        for line in report.to_string().lines() {
            println!("  {line}");
        }
        if !report.is_consistent() {
            return Err(format!(
                "replan after degrading gpu {id} is inconsistent ({} issue(s))",
                report.issues.len()
            ));
        }
    }

    if args.flag("cache-stats") {
        match session.cache_stats() {
            Some(stats) => println!("\ncache: {stats}"),
            None => println!("\ncache: disabled"),
        }
    }
    Ok(())
}

fn cmd_faults(args: &Args) -> Result<(), String> {
    let mut session = session_from(args)?;
    let ir = ir_from(args)?;
    let samples = args.get_num("samples", 1e6)?;
    let model = FaultModel {
        mtbf_samples: args.get_num("mtbf", 2e5)?,
        mttr_samples: args.get_num("mttr", 5e4)?,
        seed: args.get_num("seed", 0u64)?,
    };
    let policy = RecoveryPolicy {
        checkpoint_interval: args.get_num("checkpoint-every", 5e4)?,
        min_capacity: args.get_num("min-capacity", 0.25)?,
        ..RecoveryPolicy::default()
    };
    // The horizon covers re-earned samples too: a rollback pushes processed
    // past `samples`, so leave headroom for late faults.
    let trace = FaultTrace::generate(session.cluster(), &model, samples * 1.5);
    let params = {
        let batch = args.get_num("batch", 64usize)?;
        let seq = args.get_num("seq", 128usize)?;
        let graph = zoo::build(args.get_or("model", "resnet50"), batch, seq)?;
        whale_graph::graph_stats(&graph).params as f64
    };
    let loss = LossModel::for_params(params);

    println!(
        "fault injection: mtbf {:.0} mttr {:.0} seed {} over {} event(s)",
        model.mtbf_samples,
        model.mttr_samples,
        model.seed,
        trace.len()
    );
    let run = session
        .train_resilient(&ir, &loss, samples, &trace, &policy)
        .map_err(|e| e.to_string())?;

    if args.flag("json") {
        println!("{}", run.stats.to_json().to_string_pretty());
        return Ok(());
    }

    println!("\nrecovery timeline:");
    if run.stats.faults.is_empty() {
        println!("  (no faults struck before the run completed)");
    }
    for f in &run.stats.faults {
        println!(
            "  @{:>10.0}  {:<10}  lost {:>8.0}  down {:>6.1}s  recover {:>7.1}s  {} replan{}",
            f.at_samples,
            f.kind.name(),
            f.samples_lost,
            f.downtime_s,
            f.time_to_recover_s,
            f.replan.name(),
            if f.retries > 0 {
                format!(" ({} retries)", f.retries)
            } else {
                String::new()
            }
        );
    }
    let s = &run.stats;
    println!("\nrun summary:");
    println!("  committed    {:.0} samples", s.committed_samples);
    println!(
        "  lost         {:.0} samples rolled back ({:.0} processed)",
        s.samples_lost, s.processed_samples
    );
    println!(
        "  wall clock   {:.1} s ({:.1} s downtime)",
        s.wall_seconds, s.downtime_seconds
    );
    println!("  goodput      {:.1} samples/s", s.goodput);
    println!("  raw rate     {:.1} samples/s while up", s.raw_throughput);
    println!("  availability {:.1} %", s.availability * 100.0);
    println!(
        "  replans      {} cached-suffix, {} full",
        s.replans_cached, s.replans_full
    );
    Ok(())
}

fn cmd_fleet(args: &Args) -> Result<(), String> {
    use whale_sim::{default_templates, FleetConfig, FleetSim};

    let pool = whale_hardware::Cluster::parse(args.get_or("pool", "2x(4xV100)+2x(4xP100)"))
        .map_err(|e| e.to_string())?;
    let seed = args.get_num("seed", 0u64)?;
    let cfg = FleetConfig {
        seed,
        horizon_s: args.get_num("horizon", 20_000.0)?,
        arrival_mean_s: args.get_num("arrival", 600.0)?,
        max_queue: args.get_num("queue", 16usize)?,
        elastic: !args.flag("baseline"),
        policy: RecoveryPolicy {
            checkpoint_interval: args.get_num("checkpoint-every", 5e4)?,
            min_capacity: 0.05,
            ..RecoveryPolicy::default()
        },
        faults: FaultModel {
            mtbf_samples: args.get_num("mtbf", 1500.0)?,
            mttr_samples: args.get_num("mttr", 600.0)?,
            seed: seed + 1,
        },
        ..FleetConfig::default()
    };
    let sim = FleetSim::new(pool, default_templates(), cfg).map_err(|e| e.to_string())?;
    println!(
        "fleet: {} fault event(s) queued over {:.0}s, {} mode",
        sim.trace().len(),
        args.get_num("horizon", 20_000.0)?,
        if args.flag("baseline") {
            "kill-and-requeue"
        } else {
            "elastic"
        }
    );
    let report = sim.run().map_err(|e| e.to_string())?;

    if args.flag("json") {
        println!("{}", report.stats.to_json().to_string_pretty());
        return Ok(());
    }

    println!("\njobs (arrival order):");
    println!(
        "  {:<4} {:<13} {:>3} {:>5} {:>10} {:>9} {:>7} {:>7} {:>6}",
        "id", "template", "pri", "gpus", "phase", "progress", "wait s", "down s", "slo"
    );
    for j in &report.jobs {
        println!(
            "  {:<4} {:<13} {:>3} {:>2}/{:<2} {:>10} {:>8.0}% {:>7.0} {:>7.1} {:>6}",
            j.id,
            j.template,
            j.priority,
            j.allocated_gpus,
            j.requested_gpus,
            j.phase.name(),
            100.0 * j.committed_samples / j.total_samples.max(1.0),
            j.queue_wait_s,
            j.downtime_s,
            match j.slo_met {
                Some(true) => "met",
                Some(false) => "missed",
                None => "-",
            }
        );
    }
    let s = &report.stats;
    println!("\nfleet summary:");
    println!(
        "  jobs         {} submitted / {} completed / {} rejected / {} failed",
        s.submitted, s.completed, s.rejected, s.failed
    );
    println!(
        "  still going  {} running, {} queued at the horizon",
        s.running_at_end, s.queued_at_end
    );
    println!(
        "  resizing     {} shrinks, {} expands, {} preemptions, {} kills",
        s.shrinks, s.expands, s.preemptions, s.kills
    );
    println!(
        "  churn        {} fault event(s), {} insufficient-capacity stall(s)",
        s.fault_events, s.insufficient_events
    );
    println!(
        "  goodput      {:.1} samples/s committed fleet-wide",
        s.goodput
    );
    println!("  queue wait   {:.1} s mean", s.mean_queue_wait_s);
    println!("  slo          {} met / {} missed", s.slo_met, s.slo_missed);
    if let (Some(p50), Some(p99)) = (s.recovery.ttr_p50(), s.recovery.ttr_p99()) {
        println!("  ttr          p50 {p50:.1} s, p99 {p99:.1} s");
    }
    println!(
        "  replans      {} cached-suffix, {} full",
        s.recovery.replans_cached, s.recovery.replans_full
    );
    println!(
        "  compile      {} hits, {} misses, {} partial, {} coalesced, {} evicted",
        s.cache.hits, s.cache.misses, s.cache.partial_hits, s.cache.coalesced, s.cache.evictions
    );
    Ok(())
}

fn cmd_auto(args: &Args) -> Result<(), String> {
    let session = session_from(args)?;
    let model = args.get_or("model", "resnet50").to_string();
    let batch = args.get_num("batch", 64usize)?;
    let seq = args.get_num("seq", 128usize)?;
    let build = || zoo::build(&model, batch, seq).map_err(whale::WhaleError::Graph);
    let report = if args.flag("search") {
        let opts = whale::SearchOptions {
            search_threads: args.get_num("threads", 0usize)?,
            wave: args.get_num("wave", whale::SearchOptions::default().wave)?,
            max_micro: args.get_num("max-micro", whale::SearchOptions::default().max_micro)?,
            gpipe: !args.flag("no-gpipe"),
            exhaustive: args.flag("exhaustive"),
            ..whale::SearchOptions::default()
        };
        whale::auto_parallel_search(&session, batch, &opts, build)
    } else {
        auto_parallel(&session, batch, build)
    }
    .map_err(|e| e.to_string())?;
    println!("auto-parallel over {model} (batch {batch}):");
    for c in &report.candidates {
        match (&c.stats, &c.rejected) {
            (Some(s), _) => println!(
                "  {:<32} step {:>9.3} s   {:>9.1} samples/s",
                c.name, s.step_time, s.throughput
            ),
            (_, Some(why)) => println!("  {:<32} rejected: {why}", c.name),
            _ => {}
        }
    }
    if let Some(st) = &report.search {
        println!(
            "search: {} structures ({} pruned whole), {} nodes — {} bounded, \
             {} planned, {} pruned post-plan, {} simulated ({:.0}% never simulated)",
            st.structures_expanded,
            st.structures_pruned,
            st.nodes_expanded,
            st.nodes_bounded,
            st.nodes_planned,
            st.nodes_pruned_planned,
            st.nodes_simulated,
            st.bounded_fraction() * 100.0
        );
    }
    println!("chosen: {}", report.chosen);
    Ok(())
}

fn cmd_dot(args: &Args) -> Result<(), String> {
    let ir = ir_from(args)?;
    print!("{}", whale::ir::to_dot(&ir));
    Ok(())
}

fn cmd_inspect(args: &Args) -> Result<(), String> {
    let model = args.get_or("model", "resnet50");
    let batch = args.get_num("batch", 8usize)?;
    let seq = args.get_num("seq", 128usize)?;
    let graph = zoo::build(model, batch, seq)?;
    let s = whale_graph::graph_stats(&graph);
    println!("{} @ batch {batch}:", s.name);
    println!("  ops        {} across {} layers", s.num_ops, s.num_layers);
    println!("  parameters {:.2}M", s.params as f64 / 1e6);
    println!(
        "  fwd flops  {:.2} GFLOP/step ({:.2} GFLOP/sample)",
        s.forward_flops / 1e9,
        s.forward_flops / 1e9 / batch as f64
    );
    println!("  op census:");
    for (kind, n) in &s.ops_by_kind {
        println!("    {kind:<12} {n}");
    }
    println!("  heaviest ops (FLOPs):");
    for (name, f) in &s.heaviest_ops {
        println!("    {name:<40} {:.2} GFLOP", f / 1e9);
    }
    println!("  largest parameters:");
    for (name, p) in &s.largest_params {
        println!("    {name:<40} {:.2}M", *p as f64 / 1e6);
    }
    Ok(())
}
