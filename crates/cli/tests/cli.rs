//! End-to-end CLI tests: run the real binary and check its output.

use std::process::Command;

fn run(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(env!("CARGO_BIN_EXE_whale-cli"))
        .args(args)
        .output()
        .expect("launch whale-cli");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

#[test]
fn help_lists_commands() {
    let (stdout, _, ok) = run(&["help"]);
    assert!(ok);
    for cmd in [
        "models", "gpus", "plan", "simulate", "auto", "dot", "inspect", "faults",
    ] {
        assert!(stdout.contains(cmd), "help missing '{cmd}'");
    }
}

#[test]
fn models_and_gpus_tables() {
    let (stdout, _, ok) = run(&["models"]);
    assert!(ok);
    assert!(stdout.contains("m6-moe-1t"));
    let (stdout, _, ok) = run(&["gpus"]);
    assert!(ok);
    assert!(stdout.contains("V100-32GB"));
    assert!(stdout.contains("P100-16GB"));
}

#[test]
fn simulate_dp_reports_throughput() {
    let (stdout, _, ok) = run(&[
        "simulate",
        "--cluster",
        "2xV100,2xP100",
        "--model",
        "resnet50",
        "--batch",
        "64",
    ]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("throughput"));
    assert!(stdout.contains("memory: fits"));
    assert!(stdout.contains("P100-16GB"));
}

#[test]
fn simulate_json_is_parseable() {
    let (stdout, _, ok) = run(&[
        "simulate",
        "--cluster",
        "4xV100",
        "--model",
        "bert-base",
        "--batch",
        "32",
        "--seq",
        "64",
        "--json",
    ]);
    assert!(ok);
    let json_start = stdout.find('{').expect("json in output");
    let v = whale_sim::json::parse(stdout[json_start..].trim()).expect("valid json");
    assert!(v.get("step_time").as_f64().unwrap() > 0.0);
    assert_eq!(v.get("per_gpu").as_array().unwrap().len(), 4);
}

#[test]
fn dot_output_is_graphviz() {
    let (stdout, _, ok) = run(&["dot", "--model", "moe-tiny", "--batch", "8"]);
    assert!(ok);
    assert!(stdout.starts_with("digraph"));
    assert!(stdout.contains("cluster_tg"));
}

#[test]
fn inspect_prints_census() {
    let (stdout, _, ok) = run(&["inspect", "--model", "vit-large", "--batch", "2"]);
    assert!(ok);
    assert!(stdout.contains("parameters"));
    assert!(stdout.contains("MatMul"));
}

#[test]
fn bad_inputs_fail_with_messages() {
    let (_, stderr, ok) = run(&["plan", "--model", "alexnet"]);
    assert!(!ok);
    assert!(stderr.contains("alexnet"));
    let (_, stderr, ok) = run(&["frobnicate"]);
    assert!(!ok);
    assert!(stderr.contains("unknown command"));
    let (_, stderr, ok) = run(&["plan", "--zero", "7"]);
    assert!(!ok);
    assert!(stderr.contains("zero"));
}

#[test]
fn faults_prints_timeline_and_summary() {
    let args = [
        "faults",
        "--cluster",
        "8xV100",
        "--model",
        "resnet50",
        "--batch",
        "128",
        "--samples",
        "300000",
        "--mtbf",
        "80000",
        "--seed",
        "11",
    ];
    let (stdout, _, ok) = run(&args);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("recovery timeline:"));
    assert!(stdout.contains("goodput"));
    assert!(stdout.contains("replans"));
    // Same seed reproduces the run verbatim.
    let (again, _, ok) = run(&args);
    assert!(ok);
    assert_eq!(stdout, again, "fault runs must be deterministic");
}

#[test]
fn faults_json_reports_recovery_stats() {
    let (stdout, _, ok) = run(&[
        "faults",
        "--cluster",
        "4xV100,4xP100",
        "--model",
        "resnet50",
        "--batch",
        "128",
        "--samples",
        "200000",
        "--mtbf",
        "60000",
        "--seed",
        "3",
        "--json",
    ]);
    assert!(ok, "{stdout}");
    let json_start = stdout.find('{').expect("json in output");
    let v = whale_sim::json::parse(stdout[json_start..].trim()).expect("valid json");
    assert_eq!(v.get("committed_samples").as_f64().unwrap(), 200000.0);
    assert!(v.get("goodput").as_f64().unwrap() > 0.0);
    assert!(v.get("faults").as_array().is_some());
}

#[test]
fn compile_degrade_checks_consistency() {
    let (stdout, _, ok) = run(&[
        "compile",
        "--cluster",
        "4xV100",
        "--model",
        "resnet50",
        "--batch",
        "64",
        "--degrade",
        "0:0.5",
        "--cache-stats",
    ]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("OK ("), "{stdout}");
    assert!(stdout.contains("partial 1"), "{stdout}");
    // Degrading a GPU that does not exist fails with a non-zero exit.
    let (_, stderr, ok) = run(&["compile", "--cluster", "4xV100", "--degrade", "17:0.5"]);
    assert!(!ok);
    assert!(stderr.contains("unknown device"), "{stderr}");
}

#[test]
fn baseline_flag_slows_hetero_dp() {
    let step_time = |extra: &[&str]| {
        let mut args = vec![
            "simulate",
            "--cluster",
            "4xV100,4xP100",
            "--model",
            "resnet50",
            "--batch",
            "256",
            "--json",
        ];
        args.extend_from_slice(extra);
        let (stdout, _, ok) = run(&args);
        assert!(ok);
        let json_start = stdout.find('{').unwrap();
        let v = whale_sim::json::parse(stdout[json_start..].trim()).unwrap();
        v.get("step_time").as_f64().unwrap()
    };
    let aware = step_time(&[]);
    let baseline = step_time(&["--baseline"]);
    assert!(
        baseline > aware * 1.2,
        "baseline {baseline} vs aware {aware}"
    );
}
