//! Whale IR: the annotated computation graph handed to the parallel planner.

use crate::error::{IrError, Result};
use crate::primitive::{PipelineSpec, Primitive};
use crate::taskgraph::TaskGraph;
use whale_graph::Graph;

/// The augmented computation graph of §3.1: the local model plus parallel
/// annotations (strategy per TaskGraph, optional pipeline schedule, optional
/// plan-level data parallelism).
#[derive(Debug, Clone)]
pub struct WhaleIr {
    /// The local model.
    pub graph: Graph,
    /// Annotated, disjoint TaskGraphs in execution order.
    pub task_graphs: Vec<TaskGraph>,
    /// Pipeline schedule over the TaskGraphs, if any.
    pub pipeline: Option<PipelineSpec>,
    /// Plan-level data parallelism: the whole arrangement (including any
    /// pipeline) is replicated, as in Examples 3–5's outer `replica`.
    pub outer_replica: bool,
    /// Strategy assumed for ops not claimed by any TaskGraph
    /// (`set_default_scope` in Example 8).
    pub default_strategy: Option<Primitive>,
    /// Reference (global) batch size the graph was built with.
    pub global_batch: usize,
    /// When true and `task_graphs` is empty under a pipeline, the planner
    /// auto-partitions stages (Example 4).
    pub auto_partition: bool,
}

impl WhaleIr {
    /// Validate structural invariants:
    ///
    /// * TaskGraphs are disjoint;
    /// * every op is covered (after [`WhaleIr::fill_default`] or when a
    ///   default strategy / auto-partition is declared);
    /// * pipeline micro-batch count is positive;
    /// * pipeline stages are convex.
    pub fn validate(&self) -> Result<()> {
        let mut owner = vec![None::<usize>; self.graph.len()];
        for tg in &self.task_graphs {
            if tg.ops.is_empty() {
                return Err(IrError::EmptyTaskGraph);
            }
            for &id in &tg.ops {
                let slot = owner
                    .get_mut(id.0)
                    .ok_or_else(|| IrError::Graph(format!("op {id} out of range")))?;
                if slot.is_some() {
                    return Err(IrError::OverlappingTaskGraphs(id));
                }
                *slot = Some(tg.index);
            }
            if self.pipeline.is_some() && !tg.is_convex() {
                return Err(IrError::NonConvexStage(tg.index));
            }
        }
        let uncovered = owner.iter().filter(|o| o.is_none()).count();
        if uncovered > 0 && self.default_strategy.is_none() && !self.auto_partition {
            return Err(IrError::UncoveredOps(uncovered));
        }
        if let Some(p) = &self.pipeline {
            if p.num_micro_batches == 0 {
                return Err(IrError::BadMicroBatches(0));
            }
        }
        Ok(())
    }

    /// Assign every unclaimed op to a TaskGraph.
    ///
    /// Unclaimed ops are grouped into maximal contiguous id-runs; each run
    /// becomes a TaskGraph with the default strategy (or [`Primitive::Stage`]
    /// if none was set). Afterward every op is covered and TaskGraphs are
    /// renumbered in topological order of their first op.
    pub fn fill_default(&mut self) {
        let mut claimed = vec![false; self.graph.len()];
        for tg in &self.task_graphs {
            for &id in &tg.ops {
                if id.0 < claimed.len() {
                    claimed[id.0] = true;
                }
            }
        }
        let strategy = self.default_strategy.unwrap_or(Primitive::Stage);
        let mut run: Vec<whale_graph::OpId> = Vec::new();
        let mut new_tgs: Vec<Vec<whale_graph::OpId>> = Vec::new();
        for (i, &c) in claimed.iter().enumerate() {
            if c {
                if !run.is_empty() {
                    new_tgs.push(std::mem::take(&mut run));
                }
            } else {
                run.push(whale_graph::OpId(i));
            }
        }
        if !run.is_empty() {
            new_tgs.push(run);
        }
        for ops in new_tgs {
            self.task_graphs
                .push(TaskGraph::new(0, ops, vec![strategy]));
        }
        // Renumber by first-op order so pipeline stage order is topological.
        self.task_graphs
            .sort_by_key(|tg| tg.ops.iter().map(|id| id.0).min().unwrap_or(usize::MAX));
        for (i, tg) in self.task_graphs.iter_mut().enumerate() {
            tg.index = i;
        }
    }

    /// Number of TaskGraphs.
    pub fn num_task_graphs(&self) -> usize {
        self.task_graphs.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use whale_graph::{GraphBuilder, OpId};

    fn chain(n: usize) -> Graph {
        let mut b = GraphBuilder::new("chain");
        let mut prev = b.input("x", &[4, 8]).unwrap();
        for i in 1..n {
            prev = b.dense(&format!("fc{i}"), prev, 4, 8, 8).unwrap();
        }
        b.finish()
    }

    fn ir(graph: Graph, tgs: Vec<TaskGraph>) -> WhaleIr {
        WhaleIr {
            graph,
            task_graphs: tgs,
            pipeline: None,
            outer_replica: false,
            default_strategy: None,
            global_batch: 4,
            auto_partition: false,
        }
    }

    #[test]
    fn overlap_detected() {
        let g = chain(3);
        let tgs = vec![
            TaskGraph::new(0, vec![OpId(0), OpId(1)], vec![Primitive::Replica]),
            TaskGraph::new(1, vec![OpId(1), OpId(2)], vec![Primitive::Split]),
        ];
        assert_eq!(
            ir(g, tgs).validate().unwrap_err(),
            IrError::OverlappingTaskGraphs(OpId(1))
        );
    }

    #[test]
    fn uncovered_ops_need_default() {
        let g = chain(3);
        let tgs = vec![TaskGraph::new(0, vec![OpId(0)], vec![Primitive::Replica])];
        let mut w = ir(g, tgs);
        assert_eq!(w.validate().unwrap_err(), IrError::UncoveredOps(2));
        w.default_strategy = Some(Primitive::Replica);
        w.validate().unwrap();
    }

    #[test]
    fn fill_default_covers_and_renumbers() {
        let g = chain(5);
        let tgs = vec![TaskGraph::new(7, vec![OpId(2)], vec![Primitive::Split])];
        let mut w = ir(g, tgs);
        w.default_strategy = Some(Primitive::Replica);
        w.fill_default();
        w.validate().unwrap();
        assert_eq!(w.num_task_graphs(), 3);
        // [0,1] replica, [2] split, [3,4] replica — renumbered 0..3.
        assert_eq!(w.task_graphs[0].ops, vec![OpId(0), OpId(1)]);
        assert_eq!(w.task_graphs[0].innermost(), Primitive::Replica);
        assert_eq!(w.task_graphs[1].ops, vec![OpId(2)]);
        assert_eq!(w.task_graphs[1].innermost(), Primitive::Split);
        assert_eq!(w.task_graphs[2].ops, vec![OpId(3), OpId(4)]);
        for (i, tg) in w.task_graphs.iter().enumerate() {
            assert_eq!(tg.index, i);
        }
    }

    #[test]
    fn pipeline_requires_convex_stages() {
        let g = chain(4);
        let tgs = vec![
            TaskGraph::new(0, vec![OpId(0), OpId(2)], vec![Primitive::Stage]),
            TaskGraph::new(1, vec![OpId(1), OpId(3)], vec![Primitive::Stage]),
        ];
        let mut w = ir(g, tgs);
        w.pipeline = Some(PipelineSpec::new(4).unwrap());
        assert!(matches!(
            w.validate().unwrap_err(),
            IrError::NonConvexStage(_)
        ));
    }

    #[test]
    fn empty_taskgraph_rejected() {
        let g = chain(2);
        let tgs = vec![TaskGraph::new(0, vec![], vec![Primitive::Replica])];
        assert_eq!(ir(g, tgs).validate().unwrap_err(), IrError::EmptyTaskGraph);
    }
}
