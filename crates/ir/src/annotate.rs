//! Post-hoc annotation: attach parallel primitives to a built graph.
//!
//! The paper's primitives are Python context managers wrapped around model
//! code. Our model zoo returns complete graphs, so the ergonomic equivalent
//! is to select op sets of the finished graph — by id range, layer range, or
//! name predicate — and annotate each selection. Exactly like Whale,
//! unannotated ops inherit the default scope (`set_default_scope`,
//! Example 8) and `pipeline` without explicit `stage`s requests automatic
//! balanced partitioning (Example 4).

use crate::error::{IrError, Result};
use crate::primitive::{PipelineSpec, Primitive};
use crate::taskgraph::TaskGraph;
use crate::whale_ir::WhaleIr;
use whale_graph::{Graph, OpId};

/// Builder that turns a [`Graph`] plus annotations into [`WhaleIr`].
#[derive(Debug)]
pub struct Annotator {
    graph: Graph,
    global_batch: usize,
    task_graphs: Vec<TaskGraph>,
    claimed: Vec<bool>,
    pipeline: Option<PipelineSpec>,
    outer_replica: bool,
    default_strategy: Option<Primitive>,
    auto_partition: bool,
}

impl Annotator {
    /// Start annotating `graph`, which was built at `global_batch` samples.
    pub fn new(graph: Graph, global_batch: usize) -> Annotator {
        let claimed = vec![false; graph.len()];
        Annotator {
            graph,
            global_batch,
            task_graphs: Vec::new(),
            claimed,
            pipeline: None,
            outer_replica: false,
            default_strategy: None,
            auto_partition: false,
        }
    }

    /// Example 8's `set_default_scope`: unannotated ops get `strategy`.
    pub fn set_default(mut self, strategy: Primitive) -> Annotator {
        self.default_strategy = Some(strategy);
        self
    }

    /// Example 3/5's outer `replica`: replicate the entire arrangement.
    pub fn outer_replica(mut self) -> Annotator {
        self.outer_replica = true;
        self
    }

    /// Example 3's `pipeline(num_micro_batch=n)` over the annotated stages.
    pub fn pipeline(mut self, num_micro_batches: usize) -> Result<Annotator> {
        if self.pipeline.is_some() {
            return Err(IrError::NestedPipeline);
        }
        self.pipeline = Some(PipelineSpec::new(num_micro_batches)?);
        Ok(self)
    }

    /// Example 4's auto pipeline: stages are derived by the planner's
    /// hardware-aware balanced partition instead of explicit `stage` scopes.
    pub fn auto_pipeline(mut self, num_micro_batches: usize) -> Result<Annotator> {
        if self.pipeline.is_some() {
            return Err(IrError::NestedPipeline);
        }
        self.pipeline = Some(PipelineSpec::new(num_micro_batches)?);
        self.auto_partition = true;
        Ok(self)
    }

    fn claim(&mut self, ops: &[OpId]) -> Result<()> {
        if ops.is_empty() {
            return Err(IrError::EmptyTaskGraph);
        }
        for &id in ops {
            let slot = self
                .claimed
                .get_mut(id.0)
                .ok_or_else(|| IrError::Graph(format!("op {id} out of range")))?;
            if *slot {
                return Err(IrError::OverlappingTaskGraphs(id));
            }
            *slot = true;
        }
        Ok(())
    }

    /// Annotate an explicit op set with nested strategies (innermost first).
    pub fn annotate_ops(mut self, ops: Vec<OpId>, strategies: Vec<Primitive>) -> Result<Annotator> {
        self.claim(&ops)?;
        let index = self.task_graphs.len();
        self.task_graphs
            .push(TaskGraph::new(index, ops, strategies));
        Ok(self)
    }

    /// Annotate the ops of graph-id range `[start, end)`.
    pub fn annotate_range(
        self,
        start: usize,
        end: usize,
        strategies: Vec<Primitive>,
    ) -> Result<Annotator> {
        let ops = self.graph.op_range(start, end)?;
        self.annotate_ops(ops, strategies)
    }

    /// Annotate all ops whose layer index lies in `[first, last)`.
    pub fn annotate_layers(
        self,
        first: usize,
        last: usize,
        strategies: Vec<Primitive>,
    ) -> Result<Annotator> {
        let ops: Vec<OpId> = self
            .graph
            .ops()
            .iter()
            .filter(|op| op.layer.map(|l| l >= first && l < last).unwrap_or(false))
            .map(|op| op.id)
            .collect();
        self.annotate_ops(ops, strategies)
    }

    /// Annotate all unclaimed ops whose name contains `needle` (how the MoE
    /// example wraps only the expert computation in `split`).
    pub fn annotate_named(self, needle: &str, strategies: Vec<Primitive>) -> Result<Annotator> {
        let ops: Vec<OpId> = self
            .graph
            .ops()
            .iter()
            .filter(|op| op.name.contains(needle) && !self.claimed[op.id.0])
            .map(|op| op.id)
            .collect();
        self.annotate_ops(ops, strategies)
    }

    /// Partition the model's annotated layers into `num_stages` contiguous
    /// `stage` TaskGraphs of near-equal layer counts — manual pipeline
    /// staging without naming op ranges. Ops without a layer index join the
    /// nearest preceding stage via id order.
    pub fn stage_layers_evenly(mut self, num_stages: usize) -> Result<Annotator> {
        if num_stages == 0 {
            return Err(IrError::EmptyTaskGraph);
        }
        let max_layer = self
            .graph
            .ops()
            .iter()
            .filter_map(|op| op.layer)
            .max()
            .unwrap_or(0);
        let layers = max_layer + 1;
        if layers < num_stages {
            return Err(IrError::Graph(format!(
                "{layers} layers cannot fill {num_stages} stages"
            )));
        }
        // Cut layer ranges, then convert to contiguous op-id ranges so the
        // stages stay convex under pipelines.
        let mut cuts = Vec::with_capacity(num_stages + 1);
        for s in 0..=num_stages {
            cuts.push(s * layers / num_stages);
        }
        let mut op_cuts = vec![0usize; num_stages + 1];
        op_cuts[num_stages] = self.graph.len();
        for s in 1..num_stages {
            let boundary_layer = cuts[s];
            // First op whose layer reaches the boundary starts stage s.
            let idx = self
                .graph
                .ops()
                .iter()
                .position(|op| op.layer.map(|l| l >= boundary_layer).unwrap_or(false))
                .unwrap_or(self.graph.len());
            op_cuts[s] = idx;
        }
        for s in 0..num_stages {
            if op_cuts[s] >= op_cuts[s + 1] {
                return Err(IrError::Graph(format!(
                    "stage {s} would be empty (layer boundaries collide)"
                )));
            }
            self = self.annotate_range(op_cuts[s], op_cuts[s + 1], vec![Primitive::Stage])?;
        }
        Ok(self)
    }

    /// Example 1: `replica` over the entire model.
    pub fn replicate_all(self) -> Result<Annotator> {
        let ops: Vec<OpId> = self.graph.ops().iter().map(|op| op.id).collect();
        self.annotate_ops(ops, vec![Primitive::Replica])
    }

    /// Finish: fill defaults, validate, and return the IR.
    pub fn finish(self) -> Result<WhaleIr> {
        let mut ir = WhaleIr {
            graph: self.graph,
            task_graphs: self.task_graphs,
            pipeline: self.pipeline,
            outer_replica: self.outer_replica,
            default_strategy: self.default_strategy,
            global_batch: self.global_batch,
            auto_partition: self.auto_partition,
        };
        // Auto-partitioned pipelines leave op assignment to the planner.
        if !(ir.auto_partition && ir.task_graphs.is_empty()) {
            ir.fill_default();
        }
        ir.validate()?;
        Ok(ir)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use whale_graph::GraphBuilder;

    fn two_part_model() -> Graph {
        let mut b = GraphBuilder::new("two_part");
        let x = b.input("x", &[8, 16]).unwrap();
        let f = b.dense("features/fc", x, 8, 16, 32).unwrap();
        b.next_layer();
        let logits = b.dense("classifier/fc", f, 8, 32, 100).unwrap();
        b.softmax("classifier/softmax", logits).unwrap();
        b.finish()
    }

    #[test]
    fn example1_pure_dp() {
        let ir = Annotator::new(two_part_model(), 8)
            .replicate_all()
            .unwrap()
            .finish()
            .unwrap();
        assert_eq!(ir.num_task_graphs(), 1);
        assert_eq!(ir.task_graphs[0].innermost(), Primitive::Replica);
        assert!(!ir.outer_replica);
    }

    #[test]
    fn example5_hybrid_dp_plus_split() {
        // replica { replica(features), split(classifier) }.
        let ir = Annotator::new(two_part_model(), 8)
            .outer_replica()
            .annotate_named("features", vec![Primitive::Replica])
            .unwrap()
            .annotate_named("classifier", vec![Primitive::Split])
            .unwrap()
            .set_default(Primitive::Replica)
            .finish()
            .unwrap();
        assert!(ir.outer_replica);
        assert_eq!(ir.task_graphs.len(), 3); // input op fell into a default TG
        let split_tg = ir
            .task_graphs
            .iter()
            .find(|tg| tg.innermost() == Primitive::Split)
            .unwrap();
        assert_eq!(split_tg.ops.len(), 2);
    }

    #[test]
    fn example3_pipeline_with_manual_stages() {
        let ir = Annotator::new(two_part_model(), 8)
            .outer_replica()
            .pipeline(4)
            .unwrap()
            .annotate_range(0, 2, vec![Primitive::Stage])
            .unwrap()
            .annotate_range(2, 4, vec![Primitive::Stage])
            .unwrap()
            .finish()
            .unwrap();
        assert_eq!(ir.pipeline.unwrap().num_micro_batches, 4);
        assert_eq!(ir.num_task_graphs(), 2);
    }

    #[test]
    fn example4_auto_pipeline() {
        let ir = Annotator::new(two_part_model(), 8)
            .auto_pipeline(4)
            .unwrap()
            .finish()
            .unwrap();
        assert!(ir.auto_partition);
        assert!(ir.task_graphs.is_empty());
    }

    #[test]
    fn double_pipeline_rejected() {
        let err = Annotator::new(two_part_model(), 8)
            .pipeline(4)
            .unwrap()
            .pipeline(2)
            .unwrap_err();
        assert_eq!(err, IrError::NestedPipeline);
    }

    #[test]
    fn overlapping_annotation_rejected() {
        let err = Annotator::new(two_part_model(), 8)
            .annotate_range(0, 3, vec![Primitive::Replica])
            .unwrap()
            .annotate_range(2, 4, vec![Primitive::Split])
            .unwrap_err();
        assert!(matches!(err, IrError::OverlappingTaskGraphs(_)));
    }

    #[test]
    fn layer_annotation_selects_by_layer() {
        let ir = Annotator::new(two_part_model(), 8)
            .annotate_layers(0, 1, vec![Primitive::Replica])
            .unwrap()
            .set_default(Primitive::Split)
            .finish()
            .unwrap();
        // Layer 0 ops replicated; layer-1 ops split by default fill.
        assert!(ir
            .task_graphs
            .iter()
            .any(|tg| tg.innermost() == Primitive::Split));
    }
}

#[cfg(test)]
mod stage_layer_tests {
    use super::*;
    use whale_graph::models;

    #[test]
    fn even_layer_staging_covers_and_balances() {
        let g = models::bert_base(8, 64).unwrap();
        let n = g.len();
        let ir = Annotator::new(g, 8)
            .pipeline(4)
            .unwrap()
            .stage_layers_evenly(4)
            .unwrap()
            .finish()
            .unwrap();
        assert_eq!(ir.num_task_graphs(), 4);
        let total: usize = ir.task_graphs.iter().map(|tg| tg.ops.len()).sum();
        assert_eq!(total, n);
        for tg in &ir.task_graphs {
            assert!(tg.is_convex());
            assert_eq!(tg.innermost(), Primitive::Stage);
        }
    }

    #[test]
    fn too_many_stages_rejected() {
        let g = models::m6(models::M6Config::tiny(), 2).unwrap();
        let err = Annotator::new(g, 2).stage_layers_evenly(100).unwrap_err();
        assert!(matches!(err, IrError::Graph(_)));
        let g = models::m6(models::M6Config::tiny(), 2).unwrap();
        assert!(Annotator::new(g, 2).stage_layers_evenly(0).is_err());
    }
}
