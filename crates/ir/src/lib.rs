//! Whale IR: parallel primitives, TaskGraphs, and annotation APIs (§3.2-3.3).
//!
//! This crate turns a local model ([`whale_graph::Graph`]) into the paper's
//! intermediate representation: a set of disjoint [`TaskGraph`]s, each
//! annotated with one or more of the four primitives (`replica`, `split`,
//! `stage`, `pipeline`), plus plan-level modifiers (outer data parallelism,
//! default scope, auto-partitioned pipelines).
//!
//! Two annotation styles are provided:
//!
//! * [`ScopedBuilder`] — closure scopes that mirror the paper's Python
//!   context managers one-to-one (Examples 1-8);
//! * [`Annotator`] — post-hoc selection over a finished graph by op range,
//!   layer range, or name predicate, which is the practical style for the
//!   model zoo.
//!
//! # Examples
//!
//! ```
//! use whale_graph::models;
//! use whale_ir::{Annotator, Primitive};
//!
//! // Example 5 on the real motivating model: DP features + split classifier.
//! let g = models::imagenet_100k(32).unwrap();
//! let ir = Annotator::new(g, 32)
//!     .annotate_named("fc_big", vec![Primitive::Split])
//!     .unwrap()
//!     .set_default(Primitive::Replica)
//!     .finish()
//!     .unwrap();
//! assert!(ir.task_graphs.iter().any(|tg| tg.innermost() == Primitive::Split));
//! ```

pub mod annotate;
pub mod error;
pub mod fingerprint;
pub mod primitive;
pub mod scope;
pub mod taskgraph;
pub mod viz;
pub mod whale_ir;

pub use annotate::Annotator;
pub use error::{IrError, Result};
pub use primitive::{PipelineSpec, Primitive};
pub use scope::ScopedBuilder;
pub use taskgraph::TaskGraph;
pub use viz::to_dot;
pub use whale_ir::WhaleIr;
