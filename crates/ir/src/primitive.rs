//! The four parallel primitives of §3.3.

use std::fmt;

/// A parallel primitive annotating a TaskGraph.
///
/// * [`Primitive::Replica`] — data parallelism: the TaskGraph is replicated
///   once per GPU of its virtual device.
/// * [`Primitive::Split`] — tensor model parallelism: the TaskGraph is
///   sharded across the GPUs of its virtual device.
/// * [`Primitive::Stage`] — manual grouping: the TaskGraph is kept whole on
///   its virtual device (vanilla model parallelism / pipeline stages).
///
/// `pipeline` is not a per-TaskGraph strategy but a schedule over a sequence
/// of TaskGraphs; it is carried separately as [`PipelineSpec`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Primitive {
    /// Replicate the TaskGraph (data parallelism).
    Replica,
    /// Shard the TaskGraph (tensor model parallelism).
    Split,
    /// Group operations without replication or sharding.
    Stage,
}

impl fmt::Display for Primitive {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Primitive::Replica => "replica",
            Primitive::Split => "split",
            Primitive::Stage => "stage",
        };
        f.write_str(s)
    }
}

/// The `pipeline` primitive: schedule the annotated TaskGraphs as an
/// interleaved pipeline over micro batches (§2.1, §3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipelineSpec {
    /// Number of micro batches each mini batch is split into (M6-10B uses
    /// 35, §5.1).
    pub num_micro_batches: usize,
}

impl PipelineSpec {
    /// Build a spec, validating the micro-batch count.
    pub fn new(num_micro_batches: usize) -> crate::error::Result<PipelineSpec> {
        if num_micro_batches == 0 {
            return Err(crate::error::IrError::BadMicroBatches(0));
        }
        Ok(PipelineSpec { num_micro_batches })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipeline_spec_validation() {
        assert!(PipelineSpec::new(0).is_err());
        assert_eq!(PipelineSpec::new(35).unwrap().num_micro_batches, 35);
    }

    #[test]
    fn primitive_display() {
        assert_eq!(Primitive::Replica.to_string(), "replica");
        assert_eq!(Primitive::Split.to_string(), "split");
        assert_eq!(Primitive::Stage.to_string(), "stage");
    }
}
