//! Visualization of annotated IR: Graphviz DOT with TaskGraph clusters.
//!
//! Reproduces the style of the paper's Fig. 6(a): the computation graph
//! partitioned into colored TaskGraphs, one subgraph cluster per TaskGraph,
//! labeled with its strategies.

use crate::primitive::Primitive;
use crate::whale_ir::WhaleIr;

fn color(p: Primitive) -> &'static str {
    match p {
        Primitive::Replica => "lightblue",
        Primitive::Split => "lightsalmon",
        Primitive::Stage => "lightgray",
    }
}

/// Render the IR as Graphviz DOT: TaskGraphs become colored clusters;
/// unclaimed ops (default scope) stay uncolored.
pub fn to_dot(ir: &WhaleIr) -> String {
    let mut claimed = vec![None::<usize>; ir.graph.len()];
    for tg in &ir.task_graphs {
        for &id in &tg.ops {
            if id.0 < claimed.len() {
                claimed[id.0] = Some(tg.index);
            }
        }
    }
    let mut s = format!("digraph \"{}\" {{\n  rankdir=TB;\n", ir.graph.name());
    if let Some(p) = ir.pipeline {
        s.push_str(&format!(
            "  label=\"pipeline({} micro batches){}\";\n",
            p.num_micro_batches,
            if ir.outer_replica {
                " inside outer replica"
            } else {
                ""
            },
        ));
    }
    for tg in &ir.task_graphs {
        let strategies: Vec<String> = tg.strategies.iter().map(|p| p.to_string()).collect();
        s.push_str(&format!(
            "  subgraph cluster_tg{} {{\n    label=\"TG{} [{}]\";\n    style=filled;\n    color={};\n",
            tg.index,
            tg.index,
            strategies.join("∘"),
            color(tg.innermost()),
        ));
        for &id in &tg.ops {
            if let Ok(op) = ir.graph.op(id) {
                s.push_str(&format!("    n{} [label=\"{}\"];\n", id.0, op.name));
            }
        }
        s.push_str("  }\n");
    }
    // Unclaimed ops and all edges.
    for op in ir.graph.ops() {
        if claimed[op.id.0].is_none() {
            s.push_str(&format!("  n{} [label=\"{}\"];\n", op.id.0, op.name));
        }
        for &input in &op.inputs {
            s.push_str(&format!("  n{} -> n{};\n", input.0, op.id.0));
        }
    }
    s.push_str("}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::annotate::Annotator;
    use whale_graph::GraphBuilder;

    fn ir() -> WhaleIr {
        let mut b = GraphBuilder::new("viz");
        let x = b.input("x", &[4, 8]).unwrap();
        let f = b.dense("features", x, 4, 8, 8).unwrap();
        b.dense("classifier", f, 4, 8, 100).unwrap();
        Annotator::new(b.finish(), 4)
            .annotate_named("classifier", vec![Primitive::Split])
            .unwrap()
            .set_default(Primitive::Replica)
            .finish()
            .unwrap()
    }

    #[test]
    fn dot_contains_clusters_and_edges() {
        let dot = to_dot(&ir());
        assert!(dot.contains("subgraph cluster_tg0"));
        assert!(dot.contains("subgraph cluster_tg1"));
        assert!(dot.contains("lightsalmon"), "split cluster colored");
        assert!(dot.contains("lightblue"), "replica cluster colored");
        assert!(dot.contains("n1 -> n2"));
        assert!(dot.contains("[replica]") || dot.contains("[split]"));
    }

    #[test]
    fn nested_strategies_join_labels() {
        let mut b = GraphBuilder::new("nested");
        let x = b.input("x", &[4, 8]).unwrap();
        b.dense("fc", x, 4, 8, 8).unwrap();
        let ir = Annotator::new(b.finish(), 4)
            .annotate_range(0, 2, vec![Primitive::Split, Primitive::Replica])
            .unwrap()
            .finish()
            .unwrap();
        let dot = to_dot(&ir);
        assert!(dot.contains("split∘replica"), "{dot}");
    }
}
