//! Scoped model building: the paper's context-manager API in Rust closures.
//!
//! Whale's primitives are Python `with` scopes wrapped around model code
//! (§3.3 Examples 1–8). The closure-based [`ScopedBuilder`] mirrors them:
//!
//! ```
//! use whale_ir::ScopedBuilder;
//!
//! // Example 3: hybrid of pipeline parallelism and data parallelism.
//! let mut sb = ScopedBuilder::new("model", 8);
//! sb.replica(|sb| {
//!     sb.pipeline(4, |sb| {
//!         sb.stage(|sb| {
//!             sb.ops(|b| {
//!                 let x = b.input("x", &[8, 16])?;
//!                 b.dense("part1", x, 8, 16, 16)
//!             })
//!         })?;
//!         sb.stage(|sb| {
//!             sb.ops(|b| {
//!                 let prev = whale_graph::OpId(1);
//!                 b.dense("part2", prev, 8, 16, 16)
//!             })
//!         })
//!     })
//! }).unwrap();
//! let ir = sb.finish().unwrap();
//! assert!(ir.outer_replica);
//! assert_eq!(ir.pipeline.unwrap().num_micro_batches, 4);
//! assert_eq!(ir.num_task_graphs(), 2);
//! ```

use crate::error::{IrError, Result};
use crate::primitive::{PipelineSpec, Primitive};
use crate::taskgraph::TaskGraph;
use crate::whale_ir::WhaleIr;
use whale_graph::{GraphBuilder, OpId};

#[derive(Debug)]
enum FrameKind {
    Primitive(Primitive),
    Pipeline,
}

#[derive(Debug)]
struct Frame {
    kind: FrameKind,
    /// Ops created directly in this scope (not in child scopes).
    direct_ops: Vec<OpId>,
    /// Indices into `task_graphs` spawned by closed child scopes.
    child_tgs: Vec<usize>,
}

/// Closure-scoped builder producing [`WhaleIr`] directly.
#[derive(Debug)]
pub struct ScopedBuilder {
    builder: GraphBuilder,
    global_batch: usize,
    stack: Vec<Frame>,
    task_graphs: Vec<TaskGraph>,
    pipeline: Option<PipelineSpec>,
    outer_replica: bool,
    default_strategy: Option<Primitive>,
    auto_partition: bool,
}

impl ScopedBuilder {
    /// Start building a model named `name` at `global_batch` samples.
    pub fn new(name: impl Into<String>, global_batch: usize) -> ScopedBuilder {
        ScopedBuilder {
            builder: GraphBuilder::new(name),
            global_batch,
            stack: Vec::new(),
            task_graphs: Vec::new(),
            pipeline: None,
            outer_replica: false,
            default_strategy: None,
            auto_partition: false,
        }
    }

    /// `wh.set_default_scope(...)` (Example 8).
    pub fn set_default(&mut self, strategy: Primitive) {
        self.default_strategy = Some(strategy);
    }

    /// Create ops inside the current scope; new ops are attributed to it.
    pub fn ops<R>(
        &mut self,
        f: impl FnOnce(&mut GraphBuilder) -> std::result::Result<R, whale_graph::GraphError>,
    ) -> Result<R> {
        let before = self.builder_len();
        let r = f(&mut self.builder).map_err(IrError::from)?;
        let after = self.builder_len();
        if let Some(frame) = self.stack.last_mut() {
            frame.direct_ops.extend((before..after).map(OpId));
        }
        Ok(r)
    }

    fn builder_len(&self) -> usize {
        self.builder.graph_len()
    }

    fn enter(&mut self, kind: FrameKind) {
        self.stack.push(Frame {
            kind,
            direct_ops: Vec::new(),
            child_tgs: Vec::new(),
        });
    }

    fn exit(&mut self) -> Result<()> {
        let frame = self
            .stack
            .pop()
            .ok_or_else(|| IrError::ScopeMismatch("exit without enter".into()))?;
        match frame.kind {
            FrameKind::Pipeline => {
                // Direct ops under `pipeline` with no `stage` scopes request
                // automatic partitioning (Example 4).
                if !frame.direct_ops.is_empty() && frame.child_tgs.is_empty() {
                    self.auto_partition = true;
                } else if !frame.direct_ops.is_empty() {
                    return Err(IrError::ScopeMismatch(
                        "pipeline scope mixes direct ops with stage scopes".into(),
                    ));
                }
                // Child TGs are already recorded in order as the stages.
            }
            FrameKind::Primitive(p) => {
                let spawned = if frame.direct_ops.is_empty() {
                    None
                } else {
                    let idx = self.task_graphs.len();
                    self.task_graphs
                        .push(TaskGraph::new(idx, frame.direct_ops, vec![p]));
                    Some(idx)
                };
                match (spawned, frame.child_tgs.len()) {
                    // Pure leaf scope.
                    (Some(idx), 0) => self.bubble_tg(idx),
                    // Scope wrapping exactly one child TG and no direct ops:
                    // nesting — append this primitive (Fig. 6 TG4).
                    (None, 1) => {
                        let child = frame.child_tgs[0];
                        self.task_graphs[child].strategies.push(p);
                        self.bubble_tg(child);
                    }
                    // Scope wrapping several children (or a pipeline): the
                    // combination pattern. An outermost replica becomes
                    // plan-level data parallelism (Examples 3–5).
                    (None, _) => {
                        if p == Primitive::Replica && self.stack.is_empty() {
                            self.outer_replica = true;
                        } else if p == Primitive::Replica {
                            for &child in &frame.child_tgs {
                                self.task_graphs[child].strategies.push(p);
                            }
                        } else if frame.child_tgs.is_empty() {
                            // Scope with neither ops nor children: ignore
                            // unless it wrapped the pipeline (handled above).
                            if self.pipeline.is_none() {
                                return Err(IrError::EmptyTaskGraph);
                            }
                            if p == Primitive::Replica {
                                self.outer_replica = true;
                            }
                        } else {
                            return Err(IrError::ScopeMismatch(format!(
                                "{p} scope cannot wrap multiple TaskGraphs"
                            )));
                        }
                        for &child in &frame.child_tgs {
                            self.bubble_tg(child);
                        }
                    }
                    // Scope with both direct ops and children: direct ops are
                    // their own TG alongside the children.
                    (Some(idx), _) => {
                        self.bubble_tg(idx);
                        for &child in &frame.child_tgs {
                            self.bubble_tg(child);
                        }
                    }
                }
            }
        }
        Ok(())
    }

    fn bubble_tg(&mut self, idx: usize) {
        if let Some(parent) = self.stack.last_mut() {
            parent.child_tgs.push(idx);
        }
    }

    /// `with wh.replica():`.
    pub fn replica<R>(&mut self, f: impl FnOnce(&mut Self) -> Result<R>) -> Result<R> {
        self.enter(FrameKind::Primitive(Primitive::Replica));
        let r = f(self)?;
        self.exit()?;
        Ok(r)
    }

    /// `with wh.split():`.
    pub fn split<R>(&mut self, f: impl FnOnce(&mut Self) -> Result<R>) -> Result<R> {
        self.enter(FrameKind::Primitive(Primitive::Split));
        let r = f(self)?;
        self.exit()?;
        Ok(r)
    }

    /// `with wh.stage():`.
    pub fn stage<R>(&mut self, f: impl FnOnce(&mut Self) -> Result<R>) -> Result<R> {
        self.enter(FrameKind::Primitive(Primitive::Stage));
        let r = f(self)?;
        self.exit()?;
        Ok(r)
    }

    /// `with wh.pipeline(num_micro_batch=n):`.
    pub fn pipeline<R>(
        &mut self,
        num_micro_batches: usize,
        f: impl FnOnce(&mut Self) -> Result<R>,
    ) -> Result<R> {
        if self.pipeline.is_some() {
            return Err(IrError::NestedPipeline);
        }
        self.pipeline = Some(PipelineSpec::new(num_micro_batches)?);
        self.enter(FrameKind::Pipeline);
        let r = f(self)?;
        self.exit()?;
        Ok(r)
    }

    /// Finish: fill defaults, validate, return IR.
    pub fn finish(self) -> Result<WhaleIr> {
        if !self.stack.is_empty() {
            return Err(IrError::ScopeMismatch(format!(
                "{} scopes left open",
                self.stack.len()
            )));
        }
        let mut ir = WhaleIr {
            graph: self.builder.finish(),
            task_graphs: self.task_graphs,
            pipeline: self.pipeline,
            outer_replica: self.outer_replica,
            default_strategy: self.default_strategy,
            global_batch: self.global_batch,
            auto_partition: self.auto_partition,
        };
        if !(ir.auto_partition && ir.task_graphs.is_empty()) {
            ir.fill_default();
        }
        ir.validate()?;
        Ok(ir)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Example 2: vanilla model parallelism with two stages.
    #[test]
    fn example2_vanilla_mp() {
        let mut sb = ScopedBuilder::new("mp", 8);
        sb.stage(|sb| {
            sb.ops(|b| {
                let x = b.input("x", &[8, 16])?;
                b.dense("part1", x, 8, 16, 16)
            })
        })
        .unwrap();
        sb.stage(|sb| sb.ops(|b| b.dense("part2", OpId(1), 8, 16, 16)))
            .unwrap();
        let ir = sb.finish().unwrap();
        assert_eq!(ir.num_task_graphs(), 2);
        assert!(ir
            .task_graphs
            .iter()
            .all(|tg| tg.innermost() == Primitive::Stage));
        assert!(ir.pipeline.is_none());
    }

    /// Example 4: auto pipeline — ops directly under `pipeline`.
    #[test]
    fn example4_auto_pipeline() {
        let mut sb = ScopedBuilder::new("auto", 8);
        sb.replica(|sb| {
            sb.pipeline(4, |sb| {
                sb.ops(|b| {
                    let x = b.input("x", &[8, 16])?;
                    b.dense("model", x, 8, 16, 16)
                })
            })
        })
        .unwrap();
        let ir = sb.finish().unwrap();
        assert!(ir.auto_partition);
        assert!(ir.outer_replica);
        assert!(ir.task_graphs.is_empty());
    }

    /// Fig. 6 TG4: split nested inside replica gives [Split, Replica].
    #[test]
    fn nested_replica_of_split() {
        let mut sb = ScopedBuilder::new("nest", 8);
        sb.replica(|sb| {
            sb.split(|sb| {
                sb.ops(|b| {
                    let x = b.input("x", &[8, 16])?;
                    b.dense("fc", x, 8, 16, 16)
                })
            })
        })
        .unwrap();
        let ir = sb.finish().unwrap();
        assert_eq!(ir.num_task_graphs(), 1);
        assert_eq!(
            ir.task_graphs[0].strategies,
            vec![Primitive::Split, Primitive::Replica]
        );
        assert!(!ir.outer_replica);
    }

    /// Example 5: outer replica over a replica+split combination.
    #[test]
    fn example5_outer_replica_combination() {
        let mut sb = ScopedBuilder::new("hybrid", 8);
        sb.replica(|sb| {
            sb.replica(|sb| {
                sb.ops(|b| {
                    let x = b.input("in", &[8, 16])?;
                    b.dense("features", x, 8, 16, 32)
                })
            })?;
            sb.split(|sb| sb.ops(|b| b.dense("classifier", OpId(1), 8, 32, 100)))
        })
        .unwrap();
        let ir = sb.finish().unwrap();
        assert!(ir.outer_replica);
        assert_eq!(ir.num_task_graphs(), 2);
        assert_eq!(ir.task_graphs[0].innermost(), Primitive::Replica);
        assert_eq!(ir.task_graphs[1].innermost(), Primitive::Split);
    }

    #[test]
    fn mixed_ops_and_stages_in_pipeline_rejected() {
        let mut sb = ScopedBuilder::new("bad", 8);
        let err = sb
            .pipeline(4, |sb| {
                sb.ops(|b| b.input("x", &[8, 16]))?;
                sb.stage(|sb| sb.ops(|b| b.dense("p", OpId(0), 8, 16, 16)))
            })
            .unwrap_err();
        assert!(matches!(err, IrError::ScopeMismatch(_)));
    }

    #[test]
    fn nested_pipeline_rejected() {
        let mut sb = ScopedBuilder::new("bad", 8);
        let err = sb
            .pipeline(4, |sb| sb.pipeline(2, |sb| sb.ops(|b| b.input("x", &[1]))))
            .unwrap_err();
        assert_eq!(err, IrError::NestedPipeline);
    }

    #[test]
    fn default_scope_fills_unclaimed_ops() {
        let mut sb = ScopedBuilder::new("moe_like", 8);
        sb.set_default(Primitive::Replica);
        sb.ops(|b| {
            let x = b.input("x", &[8, 16])?;
            b.dense("attn", x, 8, 16, 16)
        })
        .unwrap();
        sb.split(|sb| sb.ops(|b| b.dense("moe", OpId(1), 8, 16, 16)))
            .unwrap();
        let ir = sb.finish().unwrap();
        assert_eq!(ir.num_task_graphs(), 2);
        assert_eq!(ir.task_graphs[0].innermost(), Primitive::Replica);
        assert_eq!(ir.task_graphs[1].innermost(), Primitive::Split);
    }
}
