//! Content fingerprint for [`WhaleIr`].
//!
//! The model side of the plan-cache key. Covers the underlying graph
//! (delegated to [`whale_graph::Graph::fingerprint`]) plus every parallel
//! annotation the planner reads: TaskGraph membership and strategies, the
//! pipeline spec, outer replication, default strategy, global batch, and
//! auto-partition.

use whale_fp::{Fingerprint, Fingerprinter};

use crate::primitive::Primitive;
use crate::whale_ir::WhaleIr;

fn primitive_tag(p: Primitive) -> u8 {
    match p {
        Primitive::Replica => 0,
        Primitive::Split => 1,
        Primitive::Stage => 2,
    }
}

impl WhaleIr {
    /// Stable content fingerprint over the graph and all annotations.
    pub fn fingerprint(&self) -> Fingerprint {
        let mut fp = Fingerprinter::new("whale-ir");
        fp.push_fingerprint(self.graph.fingerprint());
        fp.push_len(self.task_graphs.len());
        for tg in &self.task_graphs {
            fp.push_usize(tg.index).push_len(tg.ops.len());
            for &id in &tg.ops {
                fp.push_usize(id.0);
            }
            fp.push_len(tg.strategies.len());
            for &s in &tg.strategies {
                fp.push_tag(primitive_tag(s));
            }
        }
        match &self.pipeline {
            Some(p) => fp.push_tag(1).push_usize(p.num_micro_batches),
            None => fp.push_tag(0),
        };
        fp.push_bool(self.outer_replica);
        match self.default_strategy {
            Some(s) => fp.push_tag(1).push_tag(primitive_tag(s)),
            None => fp.push_tag(0),
        };
        fp.push_usize(self.global_batch);
        fp.push_bool(self.auto_partition);
        fp.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::annotate::Annotator;
    use crate::primitive::PipelineSpec;
    use whale_graph::models;

    fn bert_ir() -> WhaleIr {
        let g = models::bert_base(8, 64).unwrap();
        Annotator::new(g, 8)
            .set_default(Primitive::Replica)
            .finish()
            .unwrap()
    }

    #[test]
    fn same_ir_built_twice_hashes_identically() {
        assert_eq!(bert_ir().fingerprint(), bert_ir().fingerprint());
    }

    #[test]
    fn annotation_changes_change_fingerprint() {
        let base = bert_ir();
        let mut pipelined = bert_ir();
        pipelined.pipeline = Some(PipelineSpec::new(4).unwrap());
        assert_ne!(base.fingerprint(), pipelined.fingerprint(), "pipeline");

        let mut outer = bert_ir();
        outer.outer_replica = true;
        assert_ne!(base.fingerprint(), outer.fingerprint(), "outer replica");

        let mut batch = bert_ir();
        batch.global_batch = 16;
        assert_ne!(base.fingerprint(), batch.fingerprint(), "global batch");

        let mut strategy = bert_ir();
        strategy.task_graphs[0].strategies = vec![Primitive::Split];
        assert_ne!(base.fingerprint(), strategy.fingerprint(), "strategy");
    }

    #[test]
    fn micro_batch_count_matters() {
        let mut a = bert_ir();
        a.pipeline = Some(PipelineSpec::new(4).unwrap());
        let mut b = bert_ir();
        b.pipeline = Some(PipelineSpec::new(8).unwrap());
        assert_ne!(a.fingerprint(), b.fingerprint());
    }
}
