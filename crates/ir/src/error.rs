//! Error type for IR construction and validation.

use std::fmt;
use whale_graph::OpId;

/// Errors raised while annotating a model or validating Whale IR.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IrError {
    /// An op was claimed by two TaskGraphs.
    OverlappingTaskGraphs(OpId),
    /// After default-filling, some ops belong to no TaskGraph.
    UncoveredOps(usize),
    /// A TaskGraph was annotated over an empty op set.
    EmptyTaskGraph,
    /// `pipeline` requires at least one micro batch.
    BadMicroBatches(usize),
    /// A second `pipeline` scope was opened (Whale forbids connecting
    /// TaskGraphs after a pipeline, §3.4).
    NestedPipeline,
    /// A scope was closed that was never opened, or left open at finish.
    ScopeMismatch(String),
    /// Graph-level inconsistency surfaced during annotation.
    Graph(String),
    /// `stage` TaskGraphs must be convex (contiguous in topological order)
    /// to be schedulable as pipeline stages.
    NonConvexStage(usize),
}

impl fmt::Display for IrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IrError::OverlappingTaskGraphs(id) => {
                write!(f, "op {id} claimed by more than one TaskGraph")
            }
            IrError::UncoveredOps(n) => write!(f, "{n} ops not covered by any TaskGraph"),
            IrError::EmptyTaskGraph => write!(f, "TaskGraph has no ops"),
            IrError::BadMicroBatches(n) => write!(f, "pipeline needs ≥1 micro batch, got {n}"),
            IrError::NestedPipeline => write!(f, "pipeline scopes cannot nest"),
            IrError::ScopeMismatch(s) => write!(f, "scope mismatch: {s}"),
            IrError::Graph(s) => write!(f, "graph error: {s}"),
            IrError::NonConvexStage(i) => {
                write!(
                    f,
                    "stage TaskGraph {i} is not contiguous in topological order"
                )
            }
        }
    }
}

impl std::error::Error for IrError {}

impl From<whale_graph::GraphError> for IrError {
    fn from(e: whale_graph::GraphError) -> Self {
        IrError::Graph(e.to_string())
    }
}

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, IrError>;
