//! TaskGraph: the unit of parallel annotation and execution (§3.2).

use crate::primitive::Primitive;
use whale_graph::{CostProfile, Graph, OpId};

/// A non-overlapping subgraph annotated with one or more parallel strategies.
///
/// `strategies` is ordered innermost-first: Fig. 6's TG4 — `split` nested
/// inside `replica` — is `[Split, Replica]`, meaning the TaskGraph is first
/// sharded and the sharded group is then replicated across the remaining
/// GPUs of its virtual device.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskGraph {
    /// Index within the IR's TaskGraph list (execution order for pipelines).
    pub index: usize,
    /// Member op ids.
    pub ops: Vec<OpId>,
    /// Parallel strategies, innermost first. Empty means "inherit default".
    pub strategies: Vec<Primitive>,
}

impl TaskGraph {
    /// Build a TaskGraph.
    pub fn new(index: usize, ops: Vec<OpId>, strategies: Vec<Primitive>) -> TaskGraph {
        TaskGraph {
            index,
            ops,
            strategies,
        }
    }

    /// Innermost strategy (defaulting to [`Primitive::Stage`] when
    /// unannotated).
    pub fn innermost(&self) -> Primitive {
        self.strategies.first().copied().unwrap_or(Primitive::Stage)
    }

    /// Whether this TaskGraph is contiguous in topological (id) order —
    /// required of pipeline stages.
    pub fn is_convex(&self) -> bool {
        if self.ops.is_empty() {
            return true;
        }
        let mut sorted: Vec<usize> = self.ops.iter().map(|id| id.0).collect();
        sorted.sort_unstable();
        sorted.windows(2).all(|w| w[1] == w[0] + 1)
    }

    /// Cost profile of this TaskGraph's ops at the graph's reference batch.
    pub fn profile(&self, graph: &Graph, ref_batch: usize) -> CostProfile {
        CostProfile::from_ops(graph, &self.ops, ref_batch)
    }

    /// Exit tensors: `(producer op, bytes)` pairs consumed outside this
    /// TaskGraph (§4, "TaskGraph Schedule" adds control edges on these).
    pub fn exit_tensors(&self, graph: &Graph) -> Vec<(OpId, u64)> {
        graph.boundary_outputs(&self.ops)
    }

    /// Entrance tensors: producers outside this TaskGraph whose outputs feed
    /// ops inside, as `(producer op, bytes)`.
    pub fn entrance_tensors(&self, graph: &Graph) -> Vec<(OpId, u64)> {
        let inside: std::collections::BTreeSet<OpId> = self.ops.iter().copied().collect();
        let mut seen = std::collections::BTreeSet::new();
        let mut out = Vec::new();
        for &id in &self.ops {
            let op = match graph.op(id) {
                Ok(op) => op,
                Err(_) => continue,
            };
            for &input in &op.inputs {
                if !inside.contains(&input) && seen.insert(input) {
                    if let Ok(producer) = graph.op(input) {
                        out.push((input, producer.output_bytes()));
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use whale_graph::{GraphBuilder, OpId};

    fn chain4() -> Graph {
        let mut b = GraphBuilder::new("chain");
        let x = b.input("x", &[4, 8]).unwrap();
        let h1 = b.dense("fc1", x, 4, 8, 8).unwrap();
        let h2 = b.dense("fc2", h1, 4, 8, 8).unwrap();
        b.dense("fc3", h2, 4, 8, 8).unwrap();
        b.finish()
    }

    #[test]
    fn convexity() {
        let contiguous = TaskGraph::new(0, vec![OpId(1), OpId(2)], vec![]);
        assert!(contiguous.is_convex());
        let gap = TaskGraph::new(0, vec![OpId(0), OpId(2)], vec![]);
        assert!(!gap.is_convex());
        let empty = TaskGraph::new(0, vec![], vec![]);
        assert!(empty.is_convex());
    }

    #[test]
    fn entrance_and_exit_tensors() {
        let g = chain4();
        let tg = TaskGraph::new(0, vec![OpId(1), OpId(2)], vec![Primitive::Stage]);
        let entr = tg.entrance_tensors(&g);
        assert_eq!(entr.len(), 1);
        assert_eq!(entr[0].0, OpId(0));
        let exit = tg.exit_tensors(&g);
        assert_eq!(exit.len(), 1);
        assert_eq!(exit[0].0, OpId(2));
        assert_eq!(exit[0].1, 4 * 8 * 4);
    }

    #[test]
    fn innermost_defaults_to_stage() {
        let tg = TaskGraph::new(0, vec![OpId(0)], vec![]);
        assert_eq!(tg.innermost(), Primitive::Stage);
        let nested = TaskGraph::new(0, vec![OpId(0)], vec![Primitive::Split, Primitive::Replica]);
        assert_eq!(nested.innermost(), Primitive::Split);
    }

    #[test]
    fn profile_covers_only_member_ops() {
        let g = chain4();
        let tg = TaskGraph::new(0, vec![OpId(1)], vec![]);
        let p = tg.profile(&g, 4);
        assert_eq!(p.param_count, 8 * 8 + 8);
    }
}
