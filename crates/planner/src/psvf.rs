//! Peak Shaving and Valley Filling — Algorithm 1 of the paper.
//!
//! PSVF repairs out-of-memory assignments produced by the computation-
//! balanced partition: it repeatedly moves one *unit of work* (a sample for
//! data parallelism, an operation for pipelines) from the device with the
//! highest memory utilization (the *peak*) to the device with the lowest
//! FLOP utilization that still has memory headroom (the *valley*), reverting
//! and disqualifying valleys that would themselves overflow.
//!
//! The algorithm is generic over a [`Workload`] so the same loop drives both
//! `shift_batch` (Algorithm 2) and `shift_op` (Algorithm 3), exactly like the
//! paper's `shift_func` parameter.

use crate::error::{PlanError, Result};

/// The mutable assignment PSVF rebalances.
///
/// Implementors expose per-device memory and FLOP profiles under the current
/// assignment plus a shift primitive; PSVF owns the search loop.
pub trait Workload {
    /// Number of devices (= subgraphs) in the assignment.
    fn len(&self) -> usize;

    /// Whether the workload has no devices.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Estimated model memory on device `i` under the current assignment,
    /// bytes (the paper's `profile_mem`).
    fn mem_bytes(&self, i: usize) -> u64;

    /// Device `i`'s memory capacity, bytes.
    fn mem_capacity(&self, i: usize) -> u64;

    /// Estimated FLOP assigned to device `i` (the paper's `profile_flop`).
    fn flops(&self, i: usize) -> f64;

    /// Device `i`'s peak FLOPS.
    fn flops_capacity(&self, i: usize) -> f64;

    /// Move one unit of work from device `from` to device `to`.
    ///
    /// Returns `false` when no unit can be moved (e.g. the source would
    /// become empty); PSVF then treats the pair as unshiftable.
    fn shift(&mut self, from: usize, to: usize) -> bool;
}

/// One executed PSVF step, for reporting (Fig. 10's step-by-step walk).
#[derive(Debug, Clone, PartialEq)]
pub struct PsvfStep {
    /// Peak device index work was taken from.
    pub peak: usize,
    /// Valley device index work was given to.
    pub valley: usize,
    /// Memory ratios after the step. Empty under [`psvf`] (`Vec::new()`
    /// allocates nothing); filled with all `n` per-device ratios only under
    /// [`psvf_traced`], which Fig. 10's step-by-step walk uses.
    pub mem_ratios: Vec<f64>,
}

/// Outcome of a PSVF run.
#[derive(Debug, Clone, PartialEq)]
pub struct PsvfReport {
    /// Executed shifts in order.
    pub steps: Vec<PsvfStep>,
    /// Final memory ratios.
    pub mem_ratios: Vec<f64>,
    /// Final FLOP ratios.
    pub flop_ratios: Vec<f64>,
}

impl PsvfReport {
    /// Whether every device fits in memory.
    pub fn feasible(&self) -> bool {
        self.mem_ratios.iter().all(|&r| r <= 1.0)
    }
}

fn mem_ratio(w: &impl Workload, i: usize) -> f64 {
    let bytes = w.mem_bytes(i);
    // Avoid 0/0 = NaN for empty devices with zero capacity.
    if bytes == 0 {
        return 0.0;
    }
    bytes as f64 / w.mem_capacity(i) as f64
}

fn flop_ratio(w: &impl Workload, i: usize) -> f64 {
    w.flops(i) / w.flops_capacity(i)
}

/// Run Algorithm 1 to completion.
///
/// Returns the step-by-step report. Fails with [`PlanError::Infeasible`] when
/// devices remain out of memory after every candidate valley is exhausted —
/// the paper's termination condition `flop_ratios = ∅` with OOM remaining.
///
/// Steps record only `(peak, valley)`; their `mem_ratios` stay empty so the
/// steady-state loop allocates nothing per step beyond the step entry itself
/// (snapshotting all `n` device ratios per step is O(steps·n) on large
/// clusters). Use [`psvf_traced`] when the per-step ratio walk is wanted.
pub fn psvf(workload: &mut impl Workload) -> Result<PsvfReport> {
    run(workload, false)
}

/// [`psvf`] with full per-step memory-ratio snapshots, for Fig. 10's
/// step-by-step visualization (`fig10_psvf_steps`). Each executed step's
/// [`PsvfStep::mem_ratios`] holds all `n` device ratios *after* the shift,
/// at O(steps·n) allocation cost.
pub fn psvf_traced(workload: &mut impl Workload) -> Result<PsvfReport> {
    run(workload, true)
}

fn run(workload: &mut impl Workload, traced: bool) -> Result<PsvfReport> {
    let n = workload.len();
    if n == 0 {
        return Err(PlanError::BadConfig("PSVF over zero devices".into()));
    }
    let mut steps = Vec::new();
    // Devices still eligible as valleys (line 5/12 remove them as they are
    // disqualified).
    let mut candidates: Vec<bool> = vec![true; n];
    // Bound the loop: each unit of work can move at most n times.
    let mut guard = 0usize;
    let max_steps = 64 * n * n + 4096;
    // Scratch buffers reused across iterations so the steady-state loop
    // allocates nothing beyond the per-step report entries.
    let mut ratios = vec![0.0f64; n];
    let mut flop_ratios = vec![0.0f64; n];
    let mut valleys: Vec<usize> = Vec::with_capacity(n);

    loop {
        for (i, r) in ratios.iter_mut().enumerate() {
            *r = mem_ratio(workload, i);
        }
        let peak = match ratios
            .iter()
            .enumerate()
            .filter(|(_, &r)| r > 1.0)
            .max_by(|a, b| a.1.total_cmp(b.1))
        {
            Some((p, _)) => p,
            // All devices fit: done.
            None => break,
        };
        // Line 5: the peak cannot be its own valley.
        candidates[peak] = false;

        // Line 6: candidate valleys sorted by ascending FLOP utilization.
        // The sort keys are computed once per device, not once per
        // comparison — the workload state does not change during the sort,
        // so the order is exactly the one a lazy comparator would produce.
        for (i, r) in flop_ratios.iter_mut().enumerate() {
            *r = flop_ratio(workload, i);
        }
        valleys.clear();
        valleys.extend((0..n).filter(|&i| candidates[i] && i != peak));
        valleys.sort_by(|&a, &b| flop_ratios[a].total_cmp(&flop_ratios[b]));
        if valleys.is_empty() {
            return Err(PlanError::Infeasible(format!(
                "device {peak} remains out of memory (ratio {:.2}) and no valley can absorb work",
                ratios[peak]
            )));
        }

        let mut shifted = false;
        for &v in &valleys {
            // Line 8: shift one unit from peak to valley.
            if !workload.shift(peak, v) {
                continue;
            }
            // Lines 9-12: revert if the valley itself overflows, and remove
            // it from the candidate set.
            if mem_ratio(workload, v) > 1.0 {
                let ok = workload.shift(v, peak);
                debug_assert!(ok, "revert shift must succeed");
                candidates[v] = false;
                continue;
            }
            steps.push(PsvfStep {
                peak,
                valley: v,
                mem_ratios: if traced {
                    (0..n).map(|i| mem_ratio(workload, i)).collect()
                } else {
                    Vec::new()
                },
            });
            shifted = true;
            break;
        }
        if !shifted {
            return Err(PlanError::Infeasible(format!(
                "device {peak} is out of memory and every valley would overflow"
            )));
        }
        // Once the former peak fits again it may serve as a valley for other
        // peaks in later iterations.
        if mem_ratio(workload, peak) <= 1.0 {
            candidates[peak] = true;
        }
        guard += 1;
        if guard > max_steps {
            return Err(PlanError::Infeasible(
                "PSVF did not converge within the step budget".into(),
            ));
        }
    }

    Ok(PsvfReport {
        steps,
        mem_ratios: (0..n).map(|i| mem_ratio(workload, i)).collect(),
        flop_ratios: (0..n).map(|i| flop_ratio(workload, i)).collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy DP workload: each unit of work costs `unit_mem` bytes and
    /// `unit_flops`; device capacities vary.
    struct Toy {
        units: Vec<u64>,
        unit_mem: u64,
        fixed_mem: u64,
        mem_cap: Vec<u64>,
        flop_cap: Vec<f64>,
    }

    impl Workload for Toy {
        fn len(&self) -> usize {
            self.units.len()
        }
        fn mem_bytes(&self, i: usize) -> u64 {
            self.fixed_mem + self.units[i] * self.unit_mem
        }
        fn mem_capacity(&self, i: usize) -> u64 {
            self.mem_cap[i]
        }
        fn flops(&self, i: usize) -> f64 {
            self.units[i] as f64
        }
        fn flops_capacity(&self, i: usize) -> f64 {
            self.flop_cap[i]
        }
        fn shift(&mut self, from: usize, to: usize) -> bool {
            if self.units[from] == 0 {
                return false;
            }
            self.units[from] -= 1;
            self.units[to] += 1;
            true
        }
    }

    #[test]
    fn already_feasible_is_a_no_op() {
        let mut w = Toy {
            units: vec![4, 4],
            unit_mem: 1,
            fixed_mem: 0,
            mem_cap: vec![10, 10],
            flop_cap: vec![1.0, 1.0],
        };
        let r = psvf(&mut w).unwrap();
        assert!(r.steps.is_empty());
        assert!(r.feasible());
        assert_eq!(w.units, vec![4, 4]);
    }

    #[test]
    fn paper_p100_p40_example() {
        // §3.5's worked example: global batch 32 split 14/18 by FLOPS between
        // a 12 GB P100 and a 24 GB P40; 1 GB per sample + 2 GB fixed means
        // the P100 needs 16 GB — PSVF must move 4 samples to the P40.
        let gib = 1u64 << 30;
        let mut w = Toy {
            units: vec![14, 18],
            unit_mem: gib,
            fixed_mem: 2 * gib,
            mem_cap: vec![12 * gib, 24 * gib],
            // FLOP ratio uses assigned units over capacity; relative caps
            // follow the 9.3 vs 12 TFLOPS of the example.
            flop_cap: vec![9.3, 12.0],
        };
        let r = psvf(&mut w).unwrap();
        assert!(r.feasible());
        assert_eq!(w.units[0] + w.units[1], 32, "global batch preserved");
        assert_eq!(w.units[0], 10, "P100 sheds down to its capacity");
        assert_eq!(w.units[1], 22);
        assert_eq!(r.steps.len(), 4);
        assert!(r.steps.iter().all(|s| s.peak == 0 && s.valley == 1));
    }

    #[test]
    fn traced_fills_ratios_untraced_stays_lean() {
        let gib = 1u64 << 30;
        let mk = || Toy {
            units: vec![14, 18],
            unit_mem: gib,
            fixed_mem: 2 * gib,
            mem_cap: vec![12 * gib, 24 * gib],
            flop_cap: vec![9.3, 12.0],
        };
        let (mut lean_w, mut traced_w) = (mk(), mk());
        let lean = psvf(&mut lean_w).unwrap();
        let traced = psvf_traced(&mut traced_w).unwrap();
        // Same shifts, same final state — tracing only adds snapshots.
        assert_eq!(lean_w.units, traced_w.units);
        assert_eq!(lean.steps.len(), traced.steps.len());
        assert_eq!(lean.mem_ratios, traced.mem_ratios);
        assert!(lean.steps.iter().all(|s| s.mem_ratios.is_empty()));
        for (i, s) in traced.steps.iter().enumerate() {
            assert_eq!(s.mem_ratios.len(), 2, "step {i} snapshots all devices");
        }
        // The last snapshot matches the final ratios.
        assert_eq!(traced.steps.last().unwrap().mem_ratios, traced.mem_ratios);
    }

    #[test]
    fn infeasible_when_total_exceeds_capacity() {
        let mut w = Toy {
            units: vec![8, 8],
            unit_mem: 1,
            fixed_mem: 0,
            mem_cap: vec![4, 4],
            flop_cap: vec![1.0, 1.0],
        };
        assert!(matches!(psvf(&mut w), Err(PlanError::Infeasible(_))));
    }

    #[test]
    fn valley_choice_prefers_lowest_flop_ratio() {
        // Peak device 0; valleys 1 (busy) and 2 (idle). The idle one must be
        // filled first.
        let mut w = Toy {
            units: vec![6, 4, 1],
            unit_mem: 1,
            fixed_mem: 0,
            mem_cap: vec![4, 100, 100],
            flop_cap: vec![1.0, 1.0, 1.0],
        };
        let r = psvf(&mut w).unwrap();
        assert!(r.feasible());
        assert!(
            r.steps.iter().all(|s| s.valley == 2),
            "steps: {:?}",
            r.steps
        );
        assert_eq!(w.units, vec![4, 4, 3]);
    }

    #[test]
    fn overflowing_valley_is_reverted_and_disqualified() {
        // Valley 1 has the lowest flop ratio but zero headroom; PSVF must
        // revert the trial shift and settle on valley 2.
        let mut w = Toy {
            units: vec![6, 0, 3],
            unit_mem: 1,
            fixed_mem: 0,
            mem_cap: vec![5, 0, 100],
            flop_cap: vec![1.0, 1.0, 1.0],
        };
        let r = psvf(&mut w).unwrap();
        assert!(r.feasible());
        assert_eq!(w.units[1], 0, "zero-capacity device stays empty");
        assert_eq!(w.units[0], 5);
        assert_eq!(w.units[2], 4);
    }

    #[test]
    fn multiple_peaks_resolved_in_severity_order() {
        let mut w = Toy {
            units: vec![10, 10, 0, 0],
            unit_mem: 1,
            fixed_mem: 0,
            mem_cap: vec![8, 6, 20, 20],
            flop_cap: vec![1.0; 4],
        };
        let r = psvf(&mut w).unwrap();
        assert!(r.feasible());
        assert_eq!(w.units.iter().sum::<u64>(), 20);
        // Device 1 (ratio 10/6) is shaved before device 0 (10/8).
        assert_eq!(r.steps[0].peak, 1);
    }

    #[test]
    fn empty_workload_rejected() {
        struct Empty;
        impl Workload for Empty {
            fn len(&self) -> usize {
                0
            }
            fn mem_bytes(&self, _: usize) -> u64 {
                0
            }
            fn mem_capacity(&self, _: usize) -> u64 {
                1
            }
            fn flops(&self, _: usize) -> f64 {
                0.0
            }
            fn flops_capacity(&self, _: usize) -> f64 {
                1.0
            }
            fn shift(&mut self, _: usize, _: usize) -> bool {
                false
            }
        }
        assert!(psvf(&mut Empty).is_err());
    }
}

#[cfg(test)]
mod psvf_property_tests {
    use super::*;

    /// Tiny xorshift64* PRNG so the property sweep needs no registry deps
    /// (the planner cannot depend on `whale-sim`'s SplitMix64 — the
    /// dependency points the other way).
    struct XorShift(u64);

    impl XorShift {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }

        fn below(&mut self, n: u64) -> u64 {
            self.next() % n
        }
    }

    #[derive(Debug)]
    struct RandomDp {
        units: Vec<u64>,
        caps: Vec<u64>,
        flops: Vec<f64>,
    }

    impl Workload for RandomDp {
        fn len(&self) -> usize {
            self.units.len()
        }
        fn mem_bytes(&self, i: usize) -> u64 {
            self.units[i]
        }
        fn mem_capacity(&self, i: usize) -> u64 {
            self.caps[i]
        }
        fn flops(&self, i: usize) -> f64 {
            self.units[i] as f64
        }
        fn flops_capacity(&self, i: usize) -> f64 {
            self.flops[i]
        }
        fn shift(&mut self, from: usize, to: usize) -> bool {
            if self.units[from] == 0 {
                return false;
            }
            self.units[from] -= 1;
            self.units[to] += 1;
            true
        }
    }

    /// Whenever the total work fits the total capacity with any per-device
    /// assignment, PSVF either converges to a feasible assignment
    /// (conserving total units) or reports Infeasible — it never loses or
    /// invents work, and never panics. 128 seeded random cases.
    #[test]
    fn psvf_conserves_units_and_terminates() {
        let mut rng = XorShift(0x9E3779B97F4A7C15);
        for _ in 0..128 {
            let n = 2 + rng.below(8) as usize;
            let mut w = RandomDp {
                units: (0..n).map(|_| rng.below(40)).collect(),
                caps: (0..n).map(|_| 1 + rng.below(59)).collect(),
                flops: (0..n).map(|_| 1.0 + rng.below(19) as f64).collect(),
            };
            let total_before: u64 = w.units.iter().sum();
            match psvf(&mut w) {
                Ok(report) => {
                    assert!(report.feasible());
                    assert_eq!(w.units.iter().sum::<u64>(), total_before);
                    // Steps and final ratios are consistent.
                    for r in &report.mem_ratios {
                        assert!(*r <= 1.0 + 1e-12);
                    }
                }
                Err(PlanError::Infeasible(_)) => {
                    // A greedy unit-shift search may legitimately fail; it is
                    // mandatory when total work exceeds total capacity.
                    assert_eq!(
                        w.units.iter().sum::<u64>(),
                        total_before,
                        "even failed searches must conserve work"
                    );
                }
                Err(other) => panic!("unexpected error {other:?}"),
            }
        }
    }
}
