//! The Whale parallel planner (§3.4-3.5).
//!
//! Transforms annotated Whale IR into a distributed [`ExecutionPlan`]:
//!
//! * [`bridge`] — Partition/Gather/Identity bridge layers with fusion
//!   (Figs. 7-9);
//! * [`partition`] — computation-balanced proportional splitting;
//! * [`psvf`](mod@psvf) — the Peak-Shaving-and-Valley-Filling loop (Algorithm 1);
//! * [`dp_balance`] — hardware-aware data-parallel partition (Algorithm 2);
//! * [`pipe_balance`] — hardware-aware pipeline partition with `shift_op`
//!   (Algorithm 3, Fig. 11);
//! * [`shard`] — split-pattern matching (MoE / Megatron / large-FC);
//! * [`planner`] — plan assembly: device mapping, degree inference, bridges,
//!   gradient-sync groups.
//!
//! # Examples
//!
//! ```
//! use whale_graph::models;
//! use whale_hardware::Cluster;
//! use whale_ir::Annotator;
//! use whale_planner::{plan, PlannerConfig};
//!
//! let g = models::resnet50(64).unwrap();
//! let ir = Annotator::new(g, 64).replicate_all().unwrap().finish().unwrap();
//! let cluster = Cluster::parse("8xV100+8xP100").unwrap();
//! let p = plan(&ir, &cluster, &PlannerConfig::default()).unwrap();
//! // Hardware-aware DP gives V100 replicas bigger batches than P100's.
//! assert!(p.stages[0].devices[0].samples_per_step
//!     > p.stages[0].devices[8].samples_per_step);
//! ```

pub(crate) mod balance_memo;
pub mod bridge;
pub mod cache;
pub mod commopt;
pub mod dp_balance;
pub mod error;
pub mod estimate;
pub mod ledger;
pub mod partition;
pub mod pipe_balance;
pub mod pipeline;
pub mod plan;
pub mod planner;
pub mod psvf;
pub mod render;
pub mod service;
pub mod shard;

pub use cache::{replan_from_seed, CacheStats, PlanCache, PlanKey};
pub use commopt::{
    CommConfig, CommOpt, GradBucket, GradDtype, GradSyncSchedule, SyncMode, DEFAULT_FUSION_BYTES,
};
pub use dp_balance::{dp_partition, dp_partition_traced, DpPartition};
pub use error::{PlanError, Result};
pub use estimate::{
    estimate_step, estimate_step_cached, estimate_step_keyed, estimate_step_lower_bound,
    structural_lower_bound, structural_lower_bound_keyed, EstimateCache, StepEstimate,
    StructuralBound,
};
pub use ledger::{LedgerComponent, LedgerEntry, MemoryLedger, LOSS_SCALING_STATE_BYTES};
pub use pipe_balance::{
    in_flight_micro_batches, pipeline_leaf_bound, pipeline_partition, pipeline_partition_opts,
    stage_flops, PipePartition,
};
pub use pipeline::{
    compile, invalidation_start, replan, BalancedStages, BridgedPlan, CompilePipeline,
    CompileState, InferredDegrees, PassContext, PassId, PlacedTaskGraphs, PlannerPass,
};
pub use plan::{CollectiveTask, DeviceWork, ExecutionPlan, PlannedStage};
pub use planner::{plan, DeviceAssignment, PlannerConfig, ScheduleKind};
pub use psvf::{psvf, psvf_traced, PsvfReport, PsvfStep, Workload};
pub use render::{digest, render_plan};
pub use service::PlanService;
pub use shard::{match_split_pattern, SplitPattern, SplitPlan};
