//! The execution plan: the distributed computation the simulator runs.
//!
//! A plan is the output of the parallel planner (§3.4): an ordered list of
//! [`PlannedStage`]s (one per TaskGraph; several when a pipeline is
//! requested), per-device work assignments with batch sizes and memory
//! estimates, the collectives each stage launches per micro batch, and the
//! gradient-synchronization collectives run at the end of every step (§4).

use std::sync::Arc;

use whale_graph::TrainingConfig;
use whale_hardware::{Cluster, Collective};

use crate::error::{PlanError, Result};

/// Work assigned to one GPU within a stage.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceWork {
    /// Global GPU id.
    pub gpu: usize,
    /// Forward FLOPs this GPU executes per micro batch.
    pub fw_flops_per_micro: f64,
    /// Bytes moved through device memory per micro batch by
    /// bandwidth-bound ops (roofline term).
    pub mem_traffic_per_micro: f64,
    /// Estimated device memory, bytes.
    pub mem_bytes: u64,
    /// Samples this GPU contributes per training step (diagnostics; equals
    /// its DP batch share, or the full micro-batch trail for stages/shards).
    pub samples_per_step: usize,
}

/// A collective launched by the plan.
#[derive(Debug, Clone, PartialEq)]
pub struct CollectiveTask {
    /// Which collective.
    pub kind: Collective,
    /// Participating GPU ids.
    pub group: Vec<usize>,
    /// Payload bytes (full logical tensor).
    pub bytes: u64,
    /// Human-readable origin (`"moe alltoall"`, `"bridge tg0→tg1"`, ...).
    pub label: String,
    /// Stage whose parameters/tensors this collective serves; gradient
    /// syncs use it to start as soon as that stage's backward drains.
    pub stage: Option<usize>,
}

/// One planned TaskGraph (a pipeline stage when a pipeline is scheduled).
#[derive(Debug, Clone, PartialEq)]
pub struct PlannedStage {
    /// Stage index in execution order.
    pub index: usize,
    /// Per-GPU work. Replicated TaskGraphs list every replica; split
    /// TaskGraphs list every shard.
    pub devices: Vec<DeviceWork>,
    /// Activation bytes sent to the next stage per micro batch (0 for the
    /// last stage).
    pub send_bytes_per_micro: u64,
    /// Collectives executed once per micro batch inside this stage
    /// (split-pattern communication and unfused bridges).
    pub collectives_per_micro: Vec<CollectiveTask>,
    /// Trainable-parameter bytes held by this stage (one logical copy).
    pub param_bytes: u64,
    /// GPUs holding a full copy of this stage's parameters (the gradient
    /// sync fan-in); ZeRO shards states across this many ranks.
    pub dp_degree: usize,
}

impl PlannedStage {
    /// GPU ids participating in this stage.
    pub fn gpu_ids(&self) -> Vec<usize> {
        self.devices.iter().map(|d| d.gpu).collect()
    }
}

/// The distributed execution plan.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecutionPlan {
    /// Model name this plan was derived from.
    pub name: String,
    /// Global batch size per training step.
    pub global_batch: usize,
    /// Micro batches per step (1 = no pipelining).
    pub num_micro_batches: usize,
    /// Stages in execution order. Shared (`Arc`) with the pipeline's
    /// `Balance` artifact so a `Schedule`-only replan assembles the plan
    /// without cloning per-stage device and collective vectors.
    pub stages: Arc<Vec<PlannedStage>>,
    /// Gradient synchronization collectives at the end of each step.
    /// Shared with the `Balance` artifact for the same reason as `stages`.
    pub grad_syncs: Arc<Vec<CollectiveTask>>,
    /// Bucketed grad-sync schedule from the `CommOpt` pass (`None` on
    /// hand-assembled plans; the simulator then uses its legacy model).
    pub grad_sync_schedule: Option<crate::commopt::GradSyncSchedule>,
    /// Training options the memory estimates assumed.
    pub training: TrainingConfig,
    /// Compute efficiency `α` used to convert FLOPs to time
    /// (`t = MF / (GF · α)`).
    pub efficiency: f64,
}

impl ExecutionPlan {
    /// All distinct GPU ids the plan touches, sorted.
    pub fn all_gpus(&self) -> Vec<usize> {
        let mut ids: Vec<usize> = self
            .stages
            .iter()
            .flat_map(|s| s.devices.iter().map(|d| d.gpu))
            .collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// Estimated peak memory per GPU, bytes: the [`memory_ledger`]'s
    /// per-GPU totals. Co-located stages sum their model memory, but the
    /// fixed runtime overhead (CUDA context + workspace) is charged once
    /// per GPU, not once per stage. Plans whose grad-sync schedule
    /// communicates in a sub-fp32 dtype (or compresses) additionally carry
    /// fp32 master weights, loss-scaling state, and error-feedback
    /// residuals — see [`crate::ledger`].
    ///
    /// [`memory_ledger`]: ExecutionPlan::memory_ledger
    pub fn memory_per_gpu(&self) -> std::collections::BTreeMap<usize, u64> {
        self.memory_ledger().per_gpu()
    }

    /// Itemized per-GPU memory accounting (model state, runtime overhead,
    /// and — under mixed-precision or compressed gradient collectives —
    /// master weights, loss-scaling state, and compression residuals).
    pub fn memory_ledger(&self) -> crate::ledger::MemoryLedger {
        crate::ledger::build_ledger(self)
    }

    /// Validate the plan against a cluster: GPU ids exist, stage and
    /// collective groups are sane, micro-batch count is positive.
    pub fn validate(&self, cluster: &Cluster) -> Result<()> {
        if self.num_micro_batches == 0 {
            return Err(PlanError::BadConfig("0 micro batches".into()));
        }
        if self.stages.is_empty() {
            return Err(PlanError::BadIr("plan has no stages".into()));
        }
        for stage in self.stages.iter() {
            if stage.devices.is_empty() {
                return Err(PlanError::BadDeviceAssignment(format!(
                    "stage {} has no devices",
                    stage.index
                )));
            }
            for d in &stage.devices {
                cluster.gpu(d.gpu)?;
            }
            for c in &stage.collectives_per_micro {
                for &g in &c.group {
                    cluster.gpu(g)?;
                }
            }
        }
        for c in self.grad_syncs.iter() {
            if c.group.is_empty() {
                return Err(PlanError::BadConfig(format!(
                    "empty gradient-sync group '{}'",
                    c.label
                )));
            }
            for &g in &c.group {
                cluster.gpu(g)?;
            }
        }
        Ok(())
    }

    /// Whether any GPU exceeds its memory capacity under this plan.
    pub fn memory_feasible(&self, cluster: &Cluster) -> Result<bool> {
        for (gpu, bytes) in self.memory_per_gpu() {
            if bytes > cluster.gpu(gpu)?.memory_bytes() {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// Total gradient bytes synchronized per step.
    pub fn grad_sync_bytes(&self) -> u64 {
        self.grad_syncs.iter().map(|c| c.bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use whale_hardware::GpuModel;

    fn plan_with(stage_gpus: Vec<Vec<usize>>) -> ExecutionPlan {
        ExecutionPlan {
            name: "test".into(),
            global_batch: 32,
            num_micro_batches: 4,
            stages: Arc::new(
                stage_gpus
                    .into_iter()
                    .enumerate()
                    .map(|(i, gpus)| PlannedStage {
                        index: i,
                        devices: gpus
                            .into_iter()
                            .map(|gpu| DeviceWork {
                                gpu,
                                fw_flops_per_micro: 1e9,
                                mem_traffic_per_micro: 0.0,
                                mem_bytes: 1 << 30,
                                samples_per_step: 8,
                            })
                            .collect(),
                        send_bytes_per_micro: 1 << 20,
                        collectives_per_micro: vec![],
                        param_bytes: 1 << 20,
                        dp_degree: 1,
                    })
                    .collect(),
            ),
            grad_syncs: Arc::new(vec![]),
            grad_sync_schedule: None,
            training: TrainingConfig::default(),
            efficiency: 0.45,
        }
    }

    #[test]
    fn all_gpus_dedup_sorted() {
        let p = plan_with(vec![vec![2, 0], vec![1, 2]]);
        assert_eq!(p.all_gpus(), vec![0, 1, 2]);
    }

    #[test]
    fn validate_against_cluster() {
        let c = Cluster::homogeneous(GpuModel::V100_32GB, 1, 4);
        assert!(plan_with(vec![vec![0, 1], vec![2, 3]]).validate(&c).is_ok());
        assert!(plan_with(vec![vec![0, 9]]).validate(&c).is_err());
        let mut empty = plan_with(vec![vec![0]]);
        empty.num_micro_batches = 0;
        assert!(empty.validate(&c).is_err());
    }

    #[test]
    fn memory_feasibility() {
        let c = Cluster::homogeneous(GpuModel::V100_32GB, 1, 2);
        let mut p = plan_with(vec![vec![0], vec![1]]);
        assert!(p.memory_feasible(&c).unwrap());
        Arc::make_mut(&mut p.stages)[0].devices[0].mem_bytes = 33 << 30;
        assert!(!p.memory_feasible(&c).unwrap());
    }

    #[test]
    fn colocated_stages_sum_memory_with_single_overhead() {
        // Two co-located 1-GiB stages: model memory (1 GiB − overhead = 0)
        // sums, but the fixed runtime overhead is charged once.
        let p = plan_with(vec![vec![0], vec![0]]);
        let overhead = whale_graph::profile::RUNTIME_OVERHEAD_BYTES;
        assert_eq!(p.memory_per_gpu()[&0], overhead);

        let mut big = plan_with(vec![vec![0], vec![0]]);
        for s in Arc::make_mut(&mut big.stages) {
            s.devices[0].mem_bytes = 3 << 30;
        }
        // (3 − 1) + (3 − 1) + 1 = 5 GiB.
        assert_eq!(big.memory_per_gpu()[&0], 5 << 30);
    }
}
